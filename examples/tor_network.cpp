// Tor across the paper's deployment phases (§3.2).
//
// Walks all four deployments: the vulnerable baseline (tampering exit,
// plaintext-snooping exit, subverted directory authority — all succeed),
// SGX directories, incremental SGX relays with automatic admission, and
// the fully-SGX directory-less design over a Chord DHT.
//
// Run: ./build/examples/tor_network
#include <cstdio>

#include "tor/network.h"

using namespace tenet;
using namespace tenet::tor;

namespace {

std::vector<size_t> indices(size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

void banner(const char* text) { std::printf("\n== %s ==\n", text); }

}  // namespace

int main() {
  TorNetworkConfig cfg;
  cfg.n_authorities = 3;
  cfg.n_relays = 5;
  cfg.n_clients = 1;

  // -------------------------------------------------------------------
  banner("phase 0: today's Tor (no SGX)");
  {
    cfg.phase = Phase::kBaseline;
    TorNetwork net(cfg);
    core::EnclaveNode& evil = net.add_tampering_exit();
    core::EnclaveNode& snoop = net.add_snooping_exit();

    const auto auths = indices(net.authority_count());
    net.publish_descriptors(auths);
    for (const size_t i : auths) net.approve_all_pending(i);  // manual!
    net.run_vote(1, auths);
    (void)net.fetch_consensus(0, net.authority(0).id());

    (void)net.build_circuit(0, net.relay(0).id(), net.relay(1).id(), evil.id());
    const auto tampered = net.request(0, "transfer $100 to alice");
    std::printf("  circuit through tampering exit: sent \"transfer $100 to "
                "alice\"\n  received: \"%s\"   <-- ATTACK SUCCEEDED\n",
                tampered.value_or("<none>").c_str());

    (void)net.client(0).control(kCtlTeardown);
    net.sim().run();
    (void)net.build_circuit(0, net.relay(0).id(), net.relay(1).id(), snoop.id());
    (void)net.request(0, "who-is-the-dissident");
    const auto log = net.dump_snoop_log(snoop);
    std::printf("  snooping exit logged %zu plaintext item(s): \"%s\"\n",
                log.size(),
                log.empty() ? "" : crypto::to_string(log[0]).c_str());
  }

  // -------------------------------------------------------------------
  banner("phase 1: SGX-enabled directory authorities");
  {
    cfg.phase = Phase::kSgxDirectories;
    TorNetwork net(cfg);
    core::EnclaveNode& evil_auth = net.add_subverted_authority(/*planted=*/777);
    const auto honest = indices(3);
    net.attest_authority_mesh(indices(4));  // subverted one fails to join
    net.publish_descriptors(honest);
    for (const size_t i : honest) net.approve_all_pending(i);
    net.run_vote(1, honest);

    const bool from_evil = net.fetch_consensus(0, evil_auth.id());
    std::printf("  client fetch from subverted authority: %s\n",
                from_evil ? "accepted (BUG)" : "REJECTED (failed attestation)");
    (void)net.fetch_consensus(0, net.authority(0).id());
    const Consensus c =
        Consensus::deserialize(net.client(0).control(kCtlGetConsensus));
    std::printf("  consensus from attested authority: %zu relays, planted "
                "relay present: %s\n",
                c.relays.size(), c.find(777) != nullptr ? "yes (BUG)" : "no");
    std::printf("  client attestations: %llu (= number of authorities, "
                "Table 3)\n",
                static_cast<unsigned long long>(net.client_attestations(0)));
  }

  // -------------------------------------------------------------------
  banner("phase 2: incremental SGX relays (automatic admission)");
  {
    cfg.phase = Phase::kSgxRelays;
    TorNetwork net(cfg);
    core::EnclaveNode& evil = net.add_tampering_exit();
    const auto auths = indices(3);
    net.attest_authority_mesh(auths);
    net.publish_descriptors(auths);  // NO manual approvals anywhere
    net.run_vote(1, auths);
    const auto consensus = net.consensus_of(0);
    std::printf("  auto-admitted relays: %zu of %zu uploads (patched relay "
                "excluded: %s)\n",
                consensus->relays.size(), net.relay_count(),
                consensus->find(evil.id()) == nullptr ? "yes" : "NO (BUG)");
    (void)net.fetch_consensus(0, net.authority(0).id());
    (void)net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                            net.relay(2).id());
    const auto reply = net.request(0, "hello");
    std::printf("  clean circuit still works: \"%s\"\n",
                reply.value_or("<none>").c_str());
  }

  // -------------------------------------------------------------------
  banner("phase 3: fully SGX-enabled, directory-less (Chord DHT)");
  {
    cfg.phase = Phase::kFullySgx;
    TorNetwork net(cfg);
    core::EnclaveNode& evil = net.add_tampering_exit();
    net.join_ring_all();
    net.ring().check_invariants();
    std::printf("  %zu relays in the Chord ring (no directory authorities "
                "exist)\n", net.ring().size());
    const auto lookup = net.ring().find_relay(net.relay(2).id());
    std::printf("  DHT lookup for relay-2: found=%s in %zu hops\n",
                lookup.descriptor.has_value() ? "yes" : "no", lookup.hops);

    (void)net.install_directory_from_ring(0);
    const bool bad = net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                       evil.id());
    std::printf("  circuit through patched relay: %s\n",
                bad ? "built (BUG)" : "REFUSED (client attestation failed)");
    (void)net.client(0).control(kCtlTeardown);
    net.sim().run();
    const bool good = net.build_circuit(0, net.relay(0).id(),
                                        net.relay(1).id(), net.relay(2).id());
    const auto reply = good ? net.request(0, "dht!") : std::nullopt;
    std::printf("  circuit through attested relays: \"%s\"\n",
                reply.value_or("<none>").c_str());
    std::printf("  client attestations: %llu (one per relay used)\n",
                static_cast<unsigned long long>(net.client_attestations(0)));
  }

  std::printf("\nall phases behaved exactly as SS3.2 predicts.\n");
  return 0;
}
