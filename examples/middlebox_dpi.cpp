// Secure in-network functions (§3.3): TLS through an attested DPI
// middlebox.
//
// Shows the full arc: TLS blinds the middlebox -> endpoints attest it and
// provision session keys over the attestation-derived channel -> the
// enclave DPI inspects plaintext while the wire stays encrypted -> a
// rogue middlebox build gets nothing -> IPS mode blocks a signature.
//
// Run: ./build/examples/middlebox_dpi
#include <cstdio>

#include "mbox/scenario.h"

using namespace tenet;
using namespace tenet::mbox;

int main() {
  std::printf("== TLS-aware middlebox with SGX (paper SS3.3) ==\n\n");

  MboxScenarioConfig cfg;
  cfg.n_middleboxes = 2;  // an enterprise chain: IDS then egress filter
  cfg.patterns = {"EXPLOIT", "exfiltrate"};
  cfg.policy.require_both_endpoints = true;

  MboxDeployment dep(cfg);
  std::printf("topology: tls-client -> mbox-0 -> mbox-1 -> tls-server\n\n");

  const uint32_t sid = dep.open_session();
  std::printf("TLS handshake through the chain: %s\n",
              dep.established(sid) ? "established" : "FAILED");

  dep.send(sid, "request with EXPLOIT inside");
  std::printf("before provisioning: mbox-0 inspected %llu records, "
              "%llu alerts (blind: %llu opaque forwards)\n",
              static_cast<unsigned long long>(dep.inspected(0)),
              static_cast<unsigned long long>(dep.alerts(0)),
              static_cast<unsigned long long>(dep.opaque_forwarded(0)));

  std::printf("\nboth endpoints attest the middleboxes and provision the "
              "session key...\n");
  dep.provision_from_client(sid);
  dep.provision_from_server(sid);
  std::printf("client attestations: %llu (= number of in-path middleboxes, "
              "Table 3)\n",
              static_cast<unsigned long long>(dep.client_attestations()));
  std::printf("mbox-0 DPI active for session: %s\n",
              dep.session_active(0, sid) ? "yes" : "no");

  dep.send(sid, "second request with EXPLOIT inside");
  std::printf("after provisioning: mbox-0 alerts = %llu, mbox-1 alerts = "
              "%llu\n",
              static_cast<unsigned long long>(dep.alerts(0)),
              static_cast<unsigned long long>(dep.alerts(1)));
  std::printf("server still received everything: %zu messages, last = "
              "\"%s\"\n",
              dep.server_received(sid).size(),
              dep.server_received(sid).back().c_str());

  // Rogue middlebox: same API, patched build -> attestation fails.
  std::printf("\n-- rogue middlebox build --\n");
  MboxScenarioConfig rogue_cfg = cfg;
  rogue_cfg.n_middleboxes = 1;
  rogue_cfg.rogue_index = 0;
  rogue_cfg.policy.require_both_endpoints = false;
  MboxDeployment rogue(rogue_cfg);
  const uint32_t rsid = rogue.open_session();
  rogue.provision_from_client(rsid);
  rogue.send(rsid, "EXPLOIT passes the rogue box encrypted");
  std::printf("rogue mbox active: %s, inspected: %llu, traffic delivered: "
              "%s\n",
              rogue.session_active(0, rsid) ? "yes (BUG)" : "no",
              static_cast<unsigned long long>(rogue.inspected(0)),
              rogue.server_received(rsid).empty() ? "no" : "yes");

  // IPS mode: block on match (unilateral enterprise deployment).
  std::printf("\n-- IPS mode (unilateral enterprise outsourcing) --\n");
  MboxScenarioConfig ips_cfg;
  ips_cfg.n_middleboxes = 1;
  ips_cfg.patterns = {"ransom"};
  ips_cfg.policy.require_both_endpoints = false;  // enterprise egress alone
  ips_cfg.policy.block_on_match = true;
  MboxDeployment ips(ips_cfg);
  const uint32_t isid = ips.open_session();
  ips.provision_from_client(isid);
  ips.send(isid, "normal business email");
  ips.send(isid, "pay the ransom at midnight");
  std::printf("sent 2 records; server received %zu (blocked: %llu)\n",
              ips.server_received(isid).size(),
              static_cast<unsigned long long>(ips.blocked(0)));
  return 0;
}
