// Quickstart: the paper's core mechanism in ~100 lines.
//
// Two machines, each with an SGX platform. An enclave on machine B serves
// a tiny key-value store; a challenger enclave on machine A remote-attests
// it (Figure 1), bootstraps a secure channel from the DH exchange, and
// talks to it privately. A third, *patched* build of the same service is
// then rejected by attestation.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/node.h"
#include "core/open_project.h"
#include "core/ports.h"
#include "sgx/adversary.h"

using namespace tenet;

namespace {

/// The trusted service: a private key-value store. Control subfn 1 sends
/// "set k v" / "get k" commands to an attested peer over the secure
/// channel; the store answers on the same channel.
class KvApp final : public core::SecureApp {
 public:
  using SecureApp::SecureApp;

  void on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                         crypto::BytesView payload) override {
    const std::string text = crypto::to_string(payload);
    if (text.rfind("set ", 0) == 0) {
      const size_t space = text.find(' ', 4);
      store_[text.substr(4, space - 4)] = text.substr(space + 1);
      ctx.send_secure(peer, crypto::to_bytes("ok"));
    } else if (text.rfind("get ", 0) == 0) {
      const auto it = store_.find(text.substr(4));
      ctx.send_secure(peer, crypto::to_bytes(
                                it != store_.end() ? it->second : "<missing>"));
    } else if (text.rfind("reply:", 0) == 0) {
      last_reply_ = text.substr(6);
    }
  }

  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override {
    if (subfn == 1) {  // send a command to a peer
      crypto::Reader r(arg);
      const netsim::NodeId peer = r.u32();
      ctx.send_secure(peer, r.lv());
    }
    if (subfn == 2) return crypto::to_bytes(last_reply_);
    return {};
  }

 private:
  std::map<std::string, std::string> store_;
  std::string last_reply_;
};

/// Client side: forwards replies to the host via the "reply:" convention.
class KvClientApp final : public core::SecureApp {
 public:
  using SecureApp::SecureApp;
  void on_secure_message(core::Ctx&, netsim::NodeId,
                         crypto::BytesView payload) override {
    last_reply_ = crypto::to_string(payload);
  }
  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override {
    if (subfn == 1) {
      crypto::Reader r(arg);
      const netsim::NodeId peer = r.u32();
      ctx.send_secure(peer, r.lv());
    }
    if (subfn == 2) return crypto::to_bytes(last_reply_);
    return {};
  }

 private:
  std::string last_reply_;
};

crypto::Bytes command(netsim::NodeId peer, std::string_view text) {
  crypto::Bytes arg;
  crypto::append_u32(arg, peer);
  crypto::append_lv(arg, crypto::to_bytes(text));
  return arg;
}

}  // namespace

int main() {
  std::printf("== tenet quickstart: attest, bootstrap, communicate ==\n\n");

  // One simulated network, one attestation authority ("Intel").
  netsim::Simulator sim;
  sgx::Authority authority;

  // An open-source project with a deterministic build (§4): everyone can
  // compute the expected enclave measurement from the published source.
  core::OpenProject kv_project(
      "kv-store", "tenet kv store v1\naudited: answers only over attested channels\n",
      nullptr);
  const sgx::Authority* auth = &authority;
  sgx::AttestationConfig policy = kv_project.policy();  // expects this build

  sgx::EnclaveImage server_image = kv_project.build();
  server_image.factory = [auth, policy] {
    return std::make_unique<KvApp>(*auth, policy);
  };
  sgx::EnclaveImage client_image = kv_project.build();
  client_image.factory = [auth, policy] {
    return std::make_unique<KvClientApp>(*auth, policy);
  };

  // Two machines on the network, each its own SGX platform.
  core::EnclaveNode server(sim, authority, "machine-B", kv_project.foundation(),
                           server_image);
  core::EnclaveNode client(sim, authority, "machine-A", kv_project.foundation(),
                           client_image);
  server.start();
  client.start();

  std::printf("expected measurement : %s...\n",
              crypto::hex_encode(crypto::BytesView(
                                     kv_project.measurement().data(), 8))
                  .c_str());

  // Remote attestation (Figure 1) + DH secure-channel bootstrap.
  client.connect_to(server.id());
  sim.run();
  std::printf("attestation complete : %llu peer(s) attested by client\n",
              static_cast<unsigned long long>(
                  client.query(core::kQueryAttestedPeerCount)));

  // Private communication over the bootstrapped channel.
  (void)client.control(1, command(server.id(), "set password hunter2"));
  (void)client.control(1, command(server.id(), "get password"));
  sim.run();
  std::printf("kv reply over channel: \"%s\"\n",
              crypto::to_string(client.control(2)).c_str());

  // Instruction accounting, the paper's measurement currency.
  const auto cost = client.enclave().cost().snapshot();
  std::printf("client enclave cost  : %llu SGX(U) instr, %llu normal instr\n",
              static_cast<unsigned long long>(cost.sgx_user),
              static_cast<unsigned long long>(cost.normal));

  // A patched build fails attestation: same API, different measurement.
  std::printf("\n-- patched service build --\n");
  sgx::EnclaveImage evil = sgx::adversary::patch_image(
      server_image, "also log every stored value");
  core::EnclaveNode rogue(sim, authority, "machine-C", kv_project.foundation(),
                          evil);
  rogue.start();
  client.connect_to(rogue.id());
  sim.run();
  const bool rejected = client.query(core::kQueryAttestedPeerCount) == 1;
  std::printf("patched build        : %s\n",
              rejected ? "REJECTED by attestation (as designed)"
                       : "accepted (BUG!)");
  return rejected ? 0 : 1;
}
