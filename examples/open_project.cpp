// Secure execution of shared code (§4).
//
// "Thanks to modern code management systems, such as git, virtually
// everyone can validate the integrity of the entire project... users now
// can privately and securely run the program as long as they share the
// private key for the attestation."
//
// This example plays out the whole §4 story: a community project with
// deterministic builds, volunteers running it on their own (untrusted)
// machines, anyone verifying any instance against the published
// measurement, a security release rotating the fleet, and a volunteer's
// patched build being caught.
//
// Run: ./build/examples/open_project
#include <cstdio>

#include "core/node.h"
#include "core/open_project.h"
#include "core/ports.h"
#include "sgx/adversary.h"

using namespace tenet;

namespace {

/// A tiny "community service": counts the messages it has served.
class CounterApp final : public core::SecureApp {
 public:
  using SecureApp::SecureApp;
  void on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                         crypto::BytesView) override {
    ++served_;
    crypto::Bytes reply;
    crypto::append_u64(reply, served_);
    ctx.send_secure(peer, reply);
  }
  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override {
    if (subfn == 1) {
      crypto::Reader r(arg);
      const netsim::NodeId peer = r.u32();
      ctx.send_secure(peer, r.lv());
    }
    return {};
  }

 private:
  uint64_t served_ = 0;
};

}  // namespace

int main() {
  std::printf("== open-project shared-code attestation (paper SS4) ==\n\n");

  netsim::Simulator sim;
  sgx::Authority authority;
  const sgx::Authority* auth = &authority;

  // The community-audited project. The "source" is public; the build is
  // deterministic; measurement and release certificate are published.
  core::OpenProject project(
      "community-service",
      "community service v1.0\naudited by the community\nleaks nothing\n",
      nullptr);
  std::printf("published measurement: %s...\n",
              crypto::hex_encode(
                  crypto::BytesView(project.measurement().data(), 8))
                  .c_str());
  std::printf("release certificate verifies: %s\n\n",
              sgx::Vendor::verify(project.release()) ? "yes" : "NO");

  // Three volunteers, each on their own machine, build and run it.
  const sgx::AttestationConfig policy = project.policy();
  auto make_image = [&] {
    sgx::EnclaveImage image = project.build();
    image.factory = [auth, policy] {
      return std::make_unique<CounterApp>(*auth, policy);
    };
    return image;
  };
  std::vector<std::unique_ptr<core::EnclaveNode>> volunteers;
  for (int i = 0; i < 3; ++i) {
    volunteers.push_back(std::make_unique<core::EnclaveNode>(
        sim, authority, "volunteer-" + std::to_string(i),
        project.foundation(), make_image()));
    volunteers.back()->start();
  }

  // A user (also running the audited client build — here the same app)
  // verifies EVERY instance with nothing but the published policy.
  core::EnclaveNode user(sim, authority, "user", project.foundation(),
                         make_image());
  user.start();
  for (auto& v : volunteers) user.connect_to(v->id());
  sim.run();
  std::printf("user attested %llu of 3 volunteer instances\n",
              static_cast<unsigned long long>(
                  user.query(core::kQueryAttestedPeerCount)));

  // One volunteer gets curious and patches the build.
  sgx::EnclaveImage evil = sgx::adversary::patch_image(
      make_image(), "log every request for analytics");
  core::EnclaveNode curious(sim, authority, "curious-volunteer",
                            project.foundation(), evil);
  curious.start();
  user.connect_to(curious.id());
  sim.run();
  std::printf("patched instance attested: %s\n",
              user.query(core::kQueryAttestedPeerCount) == 3
                  ? "no (rejected, as designed)"
                  : "YES (bug!)");

  // The project ships a security release; the policy's minimum security
  // version moves, so old builds stop being trusted.
  std::printf("\n-- security release v1.1 --\n");
  project.publish_revision(
      "community service v1.1\nfixes CVE-2015-1234\nleaks nothing\n");
  const sgx::AttestationConfig new_policy = project.policy();
  // What a still-running v1.0 instance would present in its quote:
  core::OpenProject old_project(
      "community-service-old",
      "community service v1.0\naudited by the community\nleaks nothing\n",
      nullptr);
  sgx::Report old_build;
  old_build.mr_enclave = old_project.measurement();
  old_build.mr_signer = project.foundation().signer_id();
  old_build.security_version = 1;
  std::printf("old v1.0 build admitted under the new policy: %s\n",
              new_policy.expect.admits(old_build) ? "YES (bug!)" : "no");
  std::printf("new measurement: %s...\n",
              crypto::hex_encode(
                  crypto::BytesView(project.measurement().data(), 8))
                  .c_str());

  std::printf("\nanyone holding the published artifacts can reproduce every "
              "check above —\nno trust in the volunteers required.\n");
  return 0;
}
