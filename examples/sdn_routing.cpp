// SDN inter-domain routing with policy privacy (§3.1, Figure 2).
//
// Recreates the paper's prototype: 30 ASes with hypothetical business
// relationships submit their private BGP-like policies to an enclave-
// hosted inter-domain controller over attested channels; the controller
// computes everyone's routes and returns to each AS only its own. A
// SPIDeR-style predicate is then verified inside the enclave, and the
// native (no SGX) baseline is run for the Table 4 comparison.
//
// Run: ./build/examples/sdn_routing
#include <cstdio>

#include "routing/scenario.h"

using namespace tenet;
using namespace tenet::routing;

int main() {
  std::printf("== SDN inter-domain routing with SGX (paper SS3.1) ==\n\n");

  ScenarioConfig config;
  config.n_ases = 30;  // the paper's topology size
  config.seed = 2015;
  config.use_sgx = true;

  std::printf("building a random topology with %zu ASes...\n", config.n_ases);
  RoutingDeployment deployment(config);
  std::printf("nodes: 1 inter-domain controller + %zu AS-local controllers, "
              "all in enclaves\n\n", deployment.as_count());

  std::printf("phase 1: every AS attests the controller and opens a secure "
              "channel\n");
  deployment.run_attestation_phase();
  std::printf("  attestations performed: %llu (Table 3: one per AS "
              "controller)\n\n",
              static_cast<unsigned long long>(deployment.total_attestations()));

  std::printf("phase 2: policy submission -> in-enclave BGP computation -> "
              "route distribution\n");
  deployment.run_routing_phase();

  // Show one AS's view: it sees its own routes and nothing else.
  const AsNumber sample_as = deployment.policies().begin()->first;
  const RoutingTable table = deployment.table_of(sample_as);
  std::printf("  AS %u received %zu routes; e.g.:\n", sample_as, table.size());
  int shown = 0;
  for (const auto& [prefix, route] : table) {
    if (++shown > 3) break;
    std::string path;
    for (const AsNumber hop : route.as_path) {
      path += " " + std::to_string(hop);
    }
    std::printf("    prefix %-3u via AS path:%s (%s route)\n", prefix,
                path.c_str(), to_string(route.learned_from));
  }

  // Validate against the independent distributed-BGP oracle.
  const ComputationResult truth = BgpComputation::compute(deployment.policies());
  ReferenceBgp::check_stable(deployment.policies(), truth.tables);
  std::printf("  routes validated against the distributed BGP oracle\n\n");

  // Policy verification (SPIDeR-style, inside the enclave).
  std::printf("policy verification: \"is the route announced by A most "
              "preferred by B?\"\n");
  AsNumber a = 0, b = 0;
  for (const auto& [asn, t] : truth.tables) {
    for (const auto& [prefix, route] : t) {
      if (route.path_length() == 1) {
        b = asn;
        a = route.next_hop();
        break;
      }
    }
    if (a != 0) break;
  }
  const Predicate promise = Predicate::most_preferred_via(b, a, a);
  deployment.register_predicate(a, 1, promise);
  deployment.register_predicate(b, 1, promise);
  const VerifyStatus verdict = deployment.request_verification(a, 1);
  std::printf("  AS %u and AS %u agreed on the predicate; controller says: "
              "%s\n\n",
              a, b, verdict == VerifyStatus::kHolds ? "PROMISE KEPT"
                                                    : "promise violated");

  // Table 4 comparison: steady-state instruction counts vs native.
  std::printf("Table 4 reproduction (steady state, attestation excluded):\n");
  ScenarioConfig native = config;
  native.use_sgx = false;
  const ScenarioResult sgx_result = run_routing_scenario(config);
  const ScenarioResult nat_result = run_routing_scenario(native);

  const auto pct = [](uint64_t with_sgx, uint64_t without) {
    return without == 0 ? 0.0
                        : 100.0 * (static_cast<double>(with_sgx) - without) /
                              static_cast<double>(without);
  };
  std::printf("  inter-domain controller: %8.2fM normal instr native, "
              "%8.2fM with SGX (+%.0f%%), %llu SGX(U) instr\n",
              nat_result.controller_steady.normal / 1e6,
              sgx_result.controller_steady.normal / 1e6,
              pct(sgx_result.controller_steady.normal,
                  nat_result.controller_steady.normal),
              static_cast<unsigned long long>(
                  sgx_result.controller_steady.sgx_user));
  const auto sgx_as = sgx_result.as_steady_avg();
  const auto nat_as = nat_result.as_steady_avg();
  std::printf("  AS-local (avg of %zu)  : %8.2fM normal instr native, "
              "%8.2fM with SGX (+%.0f%%), %llu SGX(U) instr\n",
              config.n_ases, nat_as.normal / 1e6, sgx_as.normal / 1e6,
              pct(sgx_as.normal, nat_as.normal),
              static_cast<unsigned long long>(sgx_as.sgx_user));
  std::printf("\nthe private policies never left the enclaves in cleartext; "
              "run the test\nsuite's wiretap checks for the proof.\n");
  return 0;
}
