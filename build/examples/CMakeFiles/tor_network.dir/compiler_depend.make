# Empty compiler generated dependencies file for tor_network.
# This may be replaced when dependencies are built.
