file(REMOVE_RECURSE
  "CMakeFiles/tor_network.dir/tor_network.cpp.o"
  "CMakeFiles/tor_network.dir/tor_network.cpp.o.d"
  "tor_network"
  "tor_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tor_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
