# Empty dependencies file for sdn_routing.
# This may be replaced when dependencies are built.
