file(REMOVE_RECURSE
  "CMakeFiles/sdn_routing.dir/sdn_routing.cpp.o"
  "CMakeFiles/sdn_routing.dir/sdn_routing.cpp.o.d"
  "sdn_routing"
  "sdn_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
