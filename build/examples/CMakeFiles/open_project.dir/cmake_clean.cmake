file(REMOVE_RECURSE
  "CMakeFiles/open_project.dir/open_project.cpp.o"
  "CMakeFiles/open_project.dir/open_project.cpp.o.d"
  "open_project"
  "open_project.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_project.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
