# Empty compiler generated dependencies file for open_project.
# This may be replaced when dependencies are built.
