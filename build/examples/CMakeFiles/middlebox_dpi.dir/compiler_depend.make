# Empty compiler generated dependencies file for middlebox_dpi.
# This may be replaced when dependencies are built.
