file(REMOVE_RECURSE
  "CMakeFiles/middlebox_dpi.dir/middlebox_dpi.cpp.o"
  "CMakeFiles/middlebox_dpi.dir/middlebox_dpi.cpp.o.d"
  "middlebox_dpi"
  "middlebox_dpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middlebox_dpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
