# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;9;tenet_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_open_project "/root/repo/build/examples/open_project")
set_tests_properties(example_open_project PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;tenet_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sdn_routing "/root/repo/build/examples/sdn_routing")
set_tests_properties(example_sdn_routing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;tenet_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tor_network "/root/repo/build/examples/tor_network")
set_tests_properties(example_tor_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;tenet_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_middlebox_dpi "/root/repo/build/examples/middlebox_dpi")
set_tests_properties(example_middlebox_dpi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;tenet_example;/root/repo/examples/CMakeLists.txt;0;")
