# Empty dependencies file for bench_table4_routing.
# This may be replaced when dependencies are built.
