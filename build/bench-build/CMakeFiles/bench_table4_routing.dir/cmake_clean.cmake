file(REMOVE_RECURSE
  "../bench/bench_table4_routing"
  "../bench/bench_table4_routing.pdb"
  "CMakeFiles/bench_table4_routing.dir/bench_table4_routing.cpp.o"
  "CMakeFiles/bench_table4_routing.dir/bench_table4_routing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
