# Empty dependencies file for bench_table1_attestation.
# This may be replaced when dependencies are built.
