file(REMOVE_RECURSE
  "../bench/bench_table1_attestation"
  "../bench/bench_table1_attestation.pdb"
  "CMakeFiles/bench_table1_attestation.dir/bench_table1_attestation.cpp.o"
  "CMakeFiles/bench_table1_attestation.dir/bench_table1_attestation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
