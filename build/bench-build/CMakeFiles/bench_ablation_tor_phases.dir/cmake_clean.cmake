file(REMOVE_RECURSE
  "../bench/bench_ablation_tor_phases"
  "../bench/bench_ablation_tor_phases.pdb"
  "CMakeFiles/bench_ablation_tor_phases.dir/bench_ablation_tor_phases.cpp.o"
  "CMakeFiles/bench_ablation_tor_phases.dir/bench_ablation_tor_phases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tor_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
