file(REMOVE_RECURSE
  "../bench/bench_ablation_dh_bits"
  "../bench/bench_ablation_dh_bits.pdb"
  "CMakeFiles/bench_ablation_dh_bits.dir/bench_ablation_dh_bits.cpp.o"
  "CMakeFiles/bench_ablation_dh_bits.dir/bench_ablation_dh_bits.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dh_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
