# Empty dependencies file for bench_ablation_dh_bits.
# This may be replaced when dependencies are built.
