# Empty dependencies file for bench_ablation_attest_cache.
# This may be replaced when dependencies are built.
