file(REMOVE_RECURSE
  "../bench/bench_ablation_attest_cache"
  "../bench/bench_ablation_attest_cache.pdb"
  "CMakeFiles/bench_ablation_attest_cache.dir/bench_ablation_attest_cache.cpp.o"
  "CMakeFiles/bench_ablation_attest_cache.dir/bench_ablation_attest_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_attest_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
