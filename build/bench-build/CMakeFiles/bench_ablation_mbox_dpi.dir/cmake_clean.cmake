file(REMOVE_RECURSE
  "../bench/bench_ablation_mbox_dpi"
  "../bench/bench_ablation_mbox_dpi.pdb"
  "CMakeFiles/bench_ablation_mbox_dpi.dir/bench_ablation_mbox_dpi.cpp.o"
  "CMakeFiles/bench_ablation_mbox_dpi.dir/bench_ablation_mbox_dpi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mbox_dpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
