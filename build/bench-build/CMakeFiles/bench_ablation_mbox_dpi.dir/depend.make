# Empty dependencies file for bench_ablation_mbox_dpi.
# This may be replaced when dependencies are built.
