
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_primitives.cpp" "bench-build/CMakeFiles/bench_micro_primitives.dir/bench_micro_primitives.cpp.o" "gcc" "bench-build/CMakeFiles/bench_micro_primitives.dir/bench_micro_primitives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/tenet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/tor/CMakeFiles/tenet_tor.dir/DependInfo.cmake"
  "/root/repo/build/src/mbox/CMakeFiles/tenet_mbox.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tenet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/tenet_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/tenet_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tenet_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
