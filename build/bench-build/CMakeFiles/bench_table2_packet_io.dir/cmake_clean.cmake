file(REMOVE_RECURSE
  "../bench/bench_table2_packet_io"
  "../bench/bench_table2_packet_io.pdb"
  "CMakeFiles/bench_table2_packet_io.dir/bench_table2_packet_io.cpp.o"
  "CMakeFiles/bench_table2_packet_io.dir/bench_table2_packet_io.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_packet_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
