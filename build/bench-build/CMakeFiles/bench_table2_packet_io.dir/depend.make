# Empty dependencies file for bench_table2_packet_io.
# This may be replaced when dependencies are built.
