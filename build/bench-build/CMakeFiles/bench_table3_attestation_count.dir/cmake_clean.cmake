file(REMOVE_RECURSE
  "../bench/bench_table3_attestation_count"
  "../bench/bench_table3_attestation_count.pdb"
  "CMakeFiles/bench_table3_attestation_count.dir/bench_table3_attestation_count.cpp.o"
  "CMakeFiles/bench_table3_attestation_count.dir/bench_table3_attestation_count.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_attestation_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
