# Empty compiler generated dependencies file for bench_table3_attestation_count.
# This may be replaced when dependencies are built.
