file(REMOVE_RECURSE
  "libtenet_core.a"
)
