# Empty dependencies file for tenet_core.
# This may be replaced when dependencies are built.
