file(REMOVE_RECURSE
  "CMakeFiles/tenet_core.dir/node.cpp.o"
  "CMakeFiles/tenet_core.dir/node.cpp.o.d"
  "CMakeFiles/tenet_core.dir/open_project.cpp.o"
  "CMakeFiles/tenet_core.dir/open_project.cpp.o.d"
  "CMakeFiles/tenet_core.dir/secure_app.cpp.o"
  "CMakeFiles/tenet_core.dir/secure_app.cpp.o.d"
  "libtenet_core.a"
  "libtenet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
