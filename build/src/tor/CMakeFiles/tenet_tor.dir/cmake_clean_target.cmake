file(REMOVE_RECURSE
  "libtenet_tor.a"
)
