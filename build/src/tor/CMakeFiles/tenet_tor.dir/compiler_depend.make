# Empty compiler generated dependencies file for tenet_tor.
# This may be replaced when dependencies are built.
