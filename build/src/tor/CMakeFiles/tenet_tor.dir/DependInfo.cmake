
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tor/cell.cpp" "src/tor/CMakeFiles/tenet_tor.dir/cell.cpp.o" "gcc" "src/tor/CMakeFiles/tenet_tor.dir/cell.cpp.o.d"
  "/root/repo/src/tor/client.cpp" "src/tor/CMakeFiles/tenet_tor.dir/client.cpp.o" "gcc" "src/tor/CMakeFiles/tenet_tor.dir/client.cpp.o.d"
  "/root/repo/src/tor/common.cpp" "src/tor/CMakeFiles/tenet_tor.dir/common.cpp.o" "gcc" "src/tor/CMakeFiles/tenet_tor.dir/common.cpp.o.d"
  "/root/repo/src/tor/dht.cpp" "src/tor/CMakeFiles/tenet_tor.dir/dht.cpp.o" "gcc" "src/tor/CMakeFiles/tenet_tor.dir/dht.cpp.o.d"
  "/root/repo/src/tor/directory.cpp" "src/tor/CMakeFiles/tenet_tor.dir/directory.cpp.o" "gcc" "src/tor/CMakeFiles/tenet_tor.dir/directory.cpp.o.d"
  "/root/repo/src/tor/network.cpp" "src/tor/CMakeFiles/tenet_tor.dir/network.cpp.o" "gcc" "src/tor/CMakeFiles/tenet_tor.dir/network.cpp.o.d"
  "/root/repo/src/tor/relay.cpp" "src/tor/CMakeFiles/tenet_tor.dir/relay.cpp.o" "gcc" "src/tor/CMakeFiles/tenet_tor.dir/relay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tenet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/tenet_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/tenet_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tenet_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
