file(REMOVE_RECURSE
  "CMakeFiles/tenet_tor.dir/cell.cpp.o"
  "CMakeFiles/tenet_tor.dir/cell.cpp.o.d"
  "CMakeFiles/tenet_tor.dir/client.cpp.o"
  "CMakeFiles/tenet_tor.dir/client.cpp.o.d"
  "CMakeFiles/tenet_tor.dir/common.cpp.o"
  "CMakeFiles/tenet_tor.dir/common.cpp.o.d"
  "CMakeFiles/tenet_tor.dir/dht.cpp.o"
  "CMakeFiles/tenet_tor.dir/dht.cpp.o.d"
  "CMakeFiles/tenet_tor.dir/directory.cpp.o"
  "CMakeFiles/tenet_tor.dir/directory.cpp.o.d"
  "CMakeFiles/tenet_tor.dir/network.cpp.o"
  "CMakeFiles/tenet_tor.dir/network.cpp.o.d"
  "CMakeFiles/tenet_tor.dir/relay.cpp.o"
  "CMakeFiles/tenet_tor.dir/relay.cpp.o.d"
  "libtenet_tor.a"
  "libtenet_tor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenet_tor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
