# Empty dependencies file for tenet_netsim.
# This may be replaced when dependencies are built.
