file(REMOVE_RECURSE
  "libtenet_netsim.a"
)
