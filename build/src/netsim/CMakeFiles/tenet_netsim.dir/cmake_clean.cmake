file(REMOVE_RECURSE
  "CMakeFiles/tenet_netsim.dir/fragment.cpp.o"
  "CMakeFiles/tenet_netsim.dir/fragment.cpp.o.d"
  "CMakeFiles/tenet_netsim.dir/secure_channel.cpp.o"
  "CMakeFiles/tenet_netsim.dir/secure_channel.cpp.o.d"
  "CMakeFiles/tenet_netsim.dir/sim.cpp.o"
  "CMakeFiles/tenet_netsim.dir/sim.cpp.o.d"
  "libtenet_netsim.a"
  "libtenet_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenet_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
