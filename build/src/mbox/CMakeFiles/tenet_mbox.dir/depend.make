# Empty dependencies file for tenet_mbox.
# This may be replaced when dependencies are built.
