file(REMOVE_RECURSE
  "libtenet_mbox.a"
)
