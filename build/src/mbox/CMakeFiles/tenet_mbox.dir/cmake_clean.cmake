file(REMOVE_RECURSE
  "CMakeFiles/tenet_mbox.dir/apps.cpp.o"
  "CMakeFiles/tenet_mbox.dir/apps.cpp.o.d"
  "CMakeFiles/tenet_mbox.dir/dpi.cpp.o"
  "CMakeFiles/tenet_mbox.dir/dpi.cpp.o.d"
  "CMakeFiles/tenet_mbox.dir/scenario.cpp.o"
  "CMakeFiles/tenet_mbox.dir/scenario.cpp.o.d"
  "CMakeFiles/tenet_mbox.dir/tls.cpp.o"
  "CMakeFiles/tenet_mbox.dir/tls.cpp.o.d"
  "libtenet_mbox.a"
  "libtenet_mbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenet_mbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
