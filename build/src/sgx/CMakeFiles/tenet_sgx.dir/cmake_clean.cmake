file(REMOVE_RECURSE
  "CMakeFiles/tenet_sgx.dir/adversary.cpp.o"
  "CMakeFiles/tenet_sgx.dir/adversary.cpp.o.d"
  "CMakeFiles/tenet_sgx.dir/apps.cpp.o"
  "CMakeFiles/tenet_sgx.dir/apps.cpp.o.d"
  "CMakeFiles/tenet_sgx.dir/attestation.cpp.o"
  "CMakeFiles/tenet_sgx.dir/attestation.cpp.o.d"
  "CMakeFiles/tenet_sgx.dir/cost_model.cpp.o"
  "CMakeFiles/tenet_sgx.dir/cost_model.cpp.o.d"
  "CMakeFiles/tenet_sgx.dir/enclave.cpp.o"
  "CMakeFiles/tenet_sgx.dir/enclave.cpp.o.d"
  "CMakeFiles/tenet_sgx.dir/epc.cpp.o"
  "CMakeFiles/tenet_sgx.dir/epc.cpp.o.d"
  "CMakeFiles/tenet_sgx.dir/image.cpp.o"
  "CMakeFiles/tenet_sgx.dir/image.cpp.o.d"
  "CMakeFiles/tenet_sgx.dir/platform.cpp.o"
  "CMakeFiles/tenet_sgx.dir/platform.cpp.o.d"
  "CMakeFiles/tenet_sgx.dir/quote.cpp.o"
  "CMakeFiles/tenet_sgx.dir/quote.cpp.o.d"
  "CMakeFiles/tenet_sgx.dir/report.cpp.o"
  "CMakeFiles/tenet_sgx.dir/report.cpp.o.d"
  "CMakeFiles/tenet_sgx.dir/sealing.cpp.o"
  "CMakeFiles/tenet_sgx.dir/sealing.cpp.o.d"
  "libtenet_sgx.a"
  "libtenet_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenet_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
