file(REMOVE_RECURSE
  "libtenet_sgx.a"
)
