
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgx/adversary.cpp" "src/sgx/CMakeFiles/tenet_sgx.dir/adversary.cpp.o" "gcc" "src/sgx/CMakeFiles/tenet_sgx.dir/adversary.cpp.o.d"
  "/root/repo/src/sgx/apps.cpp" "src/sgx/CMakeFiles/tenet_sgx.dir/apps.cpp.o" "gcc" "src/sgx/CMakeFiles/tenet_sgx.dir/apps.cpp.o.d"
  "/root/repo/src/sgx/attestation.cpp" "src/sgx/CMakeFiles/tenet_sgx.dir/attestation.cpp.o" "gcc" "src/sgx/CMakeFiles/tenet_sgx.dir/attestation.cpp.o.d"
  "/root/repo/src/sgx/cost_model.cpp" "src/sgx/CMakeFiles/tenet_sgx.dir/cost_model.cpp.o" "gcc" "src/sgx/CMakeFiles/tenet_sgx.dir/cost_model.cpp.o.d"
  "/root/repo/src/sgx/enclave.cpp" "src/sgx/CMakeFiles/tenet_sgx.dir/enclave.cpp.o" "gcc" "src/sgx/CMakeFiles/tenet_sgx.dir/enclave.cpp.o.d"
  "/root/repo/src/sgx/epc.cpp" "src/sgx/CMakeFiles/tenet_sgx.dir/epc.cpp.o" "gcc" "src/sgx/CMakeFiles/tenet_sgx.dir/epc.cpp.o.d"
  "/root/repo/src/sgx/image.cpp" "src/sgx/CMakeFiles/tenet_sgx.dir/image.cpp.o" "gcc" "src/sgx/CMakeFiles/tenet_sgx.dir/image.cpp.o.d"
  "/root/repo/src/sgx/platform.cpp" "src/sgx/CMakeFiles/tenet_sgx.dir/platform.cpp.o" "gcc" "src/sgx/CMakeFiles/tenet_sgx.dir/platform.cpp.o.d"
  "/root/repo/src/sgx/quote.cpp" "src/sgx/CMakeFiles/tenet_sgx.dir/quote.cpp.o" "gcc" "src/sgx/CMakeFiles/tenet_sgx.dir/quote.cpp.o.d"
  "/root/repo/src/sgx/report.cpp" "src/sgx/CMakeFiles/tenet_sgx.dir/report.cpp.o" "gcc" "src/sgx/CMakeFiles/tenet_sgx.dir/report.cpp.o.d"
  "/root/repo/src/sgx/sealing.cpp" "src/sgx/CMakeFiles/tenet_sgx.dir/sealing.cpp.o" "gcc" "src/sgx/CMakeFiles/tenet_sgx.dir/sealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/tenet_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
