# Empty dependencies file for tenet_sgx.
# This may be replaced when dependencies are built.
