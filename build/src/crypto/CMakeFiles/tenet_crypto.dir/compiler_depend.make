# Empty compiler generated dependencies file for tenet_crypto.
# This may be replaced when dependencies are built.
