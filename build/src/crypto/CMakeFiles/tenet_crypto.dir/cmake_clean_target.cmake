file(REMOVE_RECURSE
  "libtenet_crypto.a"
)
