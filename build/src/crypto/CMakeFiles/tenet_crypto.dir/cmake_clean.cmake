file(REMOVE_RECURSE
  "CMakeFiles/tenet_crypto.dir/aead.cpp.o"
  "CMakeFiles/tenet_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/tenet_crypto.dir/aes.cpp.o"
  "CMakeFiles/tenet_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/tenet_crypto.dir/bignum.cpp.o"
  "CMakeFiles/tenet_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/tenet_crypto.dir/bytes.cpp.o"
  "CMakeFiles/tenet_crypto.dir/bytes.cpp.o.d"
  "CMakeFiles/tenet_crypto.dir/dh.cpp.o"
  "CMakeFiles/tenet_crypto.dir/dh.cpp.o.d"
  "CMakeFiles/tenet_crypto.dir/hmac.cpp.o"
  "CMakeFiles/tenet_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/tenet_crypto.dir/rng.cpp.o"
  "CMakeFiles/tenet_crypto.dir/rng.cpp.o.d"
  "CMakeFiles/tenet_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/tenet_crypto.dir/schnorr.cpp.o.d"
  "CMakeFiles/tenet_crypto.dir/sha256.cpp.o"
  "CMakeFiles/tenet_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/tenet_crypto.dir/work.cpp.o"
  "CMakeFiles/tenet_crypto.dir/work.cpp.o.d"
  "libtenet_crypto.a"
  "libtenet_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenet_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
