# Empty compiler generated dependencies file for tenet_routing.
# This may be replaced when dependencies are built.
