file(REMOVE_RECURSE
  "CMakeFiles/tenet_routing.dir/apps.cpp.o"
  "CMakeFiles/tenet_routing.dir/apps.cpp.o.d"
  "CMakeFiles/tenet_routing.dir/bgp.cpp.o"
  "CMakeFiles/tenet_routing.dir/bgp.cpp.o.d"
  "CMakeFiles/tenet_routing.dir/messages.cpp.o"
  "CMakeFiles/tenet_routing.dir/messages.cpp.o.d"
  "CMakeFiles/tenet_routing.dir/predicates.cpp.o"
  "CMakeFiles/tenet_routing.dir/predicates.cpp.o.d"
  "CMakeFiles/tenet_routing.dir/scenario.cpp.o"
  "CMakeFiles/tenet_routing.dir/scenario.cpp.o.d"
  "CMakeFiles/tenet_routing.dir/topology.cpp.o"
  "CMakeFiles/tenet_routing.dir/topology.cpp.o.d"
  "libtenet_routing.a"
  "libtenet_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenet_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
