file(REMOVE_RECURSE
  "libtenet_routing.a"
)
