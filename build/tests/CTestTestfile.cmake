# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/sgx_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/tor_test[1]_include.cmake")
include("/root/repo/build/tests/mbox_test[1]_include.cmake")
