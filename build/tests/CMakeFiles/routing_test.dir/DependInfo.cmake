
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/routing/bgp_test.cpp" "tests/CMakeFiles/routing_test.dir/routing/bgp_test.cpp.o" "gcc" "tests/CMakeFiles/routing_test.dir/routing/bgp_test.cpp.o.d"
  "/root/repo/tests/routing/live_update_test.cpp" "tests/CMakeFiles/routing_test.dir/routing/live_update_test.cpp.o" "gcc" "tests/CMakeFiles/routing_test.dir/routing/live_update_test.cpp.o.d"
  "/root/repo/tests/routing/predicates_test.cpp" "tests/CMakeFiles/routing_test.dir/routing/predicates_test.cpp.o" "gcc" "tests/CMakeFiles/routing_test.dir/routing/predicates_test.cpp.o.d"
  "/root/repo/tests/routing/scenario_test.cpp" "tests/CMakeFiles/routing_test.dir/routing/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/routing_test.dir/routing/scenario_test.cpp.o.d"
  "/root/repo/tests/routing/topology_test.cpp" "tests/CMakeFiles/routing_test.dir/routing/topology_test.cpp.o" "gcc" "tests/CMakeFiles/routing_test.dir/routing/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/tenet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tenet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/tenet_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/tenet_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tenet_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
