file(REMOVE_RECURSE
  "CMakeFiles/tor_test.dir/tor/cell_test.cpp.o"
  "CMakeFiles/tor_test.dir/tor/cell_test.cpp.o.d"
  "CMakeFiles/tor_test.dir/tor/dht_test.cpp.o"
  "CMakeFiles/tor_test.dir/tor/dht_test.cpp.o.d"
  "CMakeFiles/tor_test.dir/tor/network_test.cpp.o"
  "CMakeFiles/tor_test.dir/tor/network_test.cpp.o.d"
  "CMakeFiles/tor_test.dir/tor/persistence_test.cpp.o"
  "CMakeFiles/tor_test.dir/tor/persistence_test.cpp.o.d"
  "tor_test"
  "tor_test.pdb"
  "tor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
