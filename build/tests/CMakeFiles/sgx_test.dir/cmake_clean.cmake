file(REMOVE_RECURSE
  "CMakeFiles/sgx_test.dir/sgx/attestation_test.cpp.o"
  "CMakeFiles/sgx_test.dir/sgx/attestation_test.cpp.o.d"
  "CMakeFiles/sgx_test.dir/sgx/cost_model_test.cpp.o"
  "CMakeFiles/sgx_test.dir/sgx/cost_model_test.cpp.o.d"
  "CMakeFiles/sgx_test.dir/sgx/enclave_test.cpp.o"
  "CMakeFiles/sgx_test.dir/sgx/enclave_test.cpp.o.d"
  "CMakeFiles/sgx_test.dir/sgx/epc_test.cpp.o"
  "CMakeFiles/sgx_test.dir/sgx/epc_test.cpp.o.d"
  "CMakeFiles/sgx_test.dir/sgx/image_test.cpp.o"
  "CMakeFiles/sgx_test.dir/sgx/image_test.cpp.o.d"
  "CMakeFiles/sgx_test.dir/sgx/packet_io_test.cpp.o"
  "CMakeFiles/sgx_test.dir/sgx/packet_io_test.cpp.o.d"
  "CMakeFiles/sgx_test.dir/sgx/paging_test.cpp.o"
  "CMakeFiles/sgx_test.dir/sgx/paging_test.cpp.o.d"
  "CMakeFiles/sgx_test.dir/sgx/report_quote_test.cpp.o"
  "CMakeFiles/sgx_test.dir/sgx/report_quote_test.cpp.o.d"
  "CMakeFiles/sgx_test.dir/sgx/sealing_test.cpp.o"
  "CMakeFiles/sgx_test.dir/sgx/sealing_test.cpp.o.d"
  "sgx_test"
  "sgx_test.pdb"
  "sgx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
