
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sgx/attestation_test.cpp" "tests/CMakeFiles/sgx_test.dir/sgx/attestation_test.cpp.o" "gcc" "tests/CMakeFiles/sgx_test.dir/sgx/attestation_test.cpp.o.d"
  "/root/repo/tests/sgx/cost_model_test.cpp" "tests/CMakeFiles/sgx_test.dir/sgx/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/sgx_test.dir/sgx/cost_model_test.cpp.o.d"
  "/root/repo/tests/sgx/enclave_test.cpp" "tests/CMakeFiles/sgx_test.dir/sgx/enclave_test.cpp.o" "gcc" "tests/CMakeFiles/sgx_test.dir/sgx/enclave_test.cpp.o.d"
  "/root/repo/tests/sgx/epc_test.cpp" "tests/CMakeFiles/sgx_test.dir/sgx/epc_test.cpp.o" "gcc" "tests/CMakeFiles/sgx_test.dir/sgx/epc_test.cpp.o.d"
  "/root/repo/tests/sgx/image_test.cpp" "tests/CMakeFiles/sgx_test.dir/sgx/image_test.cpp.o" "gcc" "tests/CMakeFiles/sgx_test.dir/sgx/image_test.cpp.o.d"
  "/root/repo/tests/sgx/packet_io_test.cpp" "tests/CMakeFiles/sgx_test.dir/sgx/packet_io_test.cpp.o" "gcc" "tests/CMakeFiles/sgx_test.dir/sgx/packet_io_test.cpp.o.d"
  "/root/repo/tests/sgx/paging_test.cpp" "tests/CMakeFiles/sgx_test.dir/sgx/paging_test.cpp.o" "gcc" "tests/CMakeFiles/sgx_test.dir/sgx/paging_test.cpp.o.d"
  "/root/repo/tests/sgx/report_quote_test.cpp" "tests/CMakeFiles/sgx_test.dir/sgx/report_quote_test.cpp.o" "gcc" "tests/CMakeFiles/sgx_test.dir/sgx/report_quote_test.cpp.o.d"
  "/root/repo/tests/sgx/sealing_test.cpp" "tests/CMakeFiles/sgx_test.dir/sgx/sealing_test.cpp.o" "gcc" "tests/CMakeFiles/sgx_test.dir/sgx/sealing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sgx/CMakeFiles/tenet_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tenet_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
