
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/aead_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/aead_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/aead_test.cpp.o.d"
  "/root/repo/tests/crypto/aes_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/aes_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/aes_test.cpp.o.d"
  "/root/repo/tests/crypto/bignum_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/bignum_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/bignum_test.cpp.o.d"
  "/root/repo/tests/crypto/bytes_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/bytes_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/bytes_test.cpp.o.d"
  "/root/repo/tests/crypto/dh_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/dh_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/dh_test.cpp.o.d"
  "/root/repo/tests/crypto/hmac_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/hmac_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/hmac_test.cpp.o.d"
  "/root/repo/tests/crypto/property_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/property_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/property_test.cpp.o.d"
  "/root/repo/tests/crypto/rng_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/rng_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/rng_test.cpp.o.d"
  "/root/repo/tests/crypto/schnorr_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/schnorr_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/schnorr_test.cpp.o.d"
  "/root/repo/tests/crypto/sha256_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/sha256_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/sha256_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/tenet_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
