// Internal: AVX512-IFMA radix-52 Montgomery multiplication kernels.
//
// On CPUs with AVX512F+IFMA (vpmadd52luq/vpmadd52huq), a k-limb Montgomery
// multiply runs as an "almost Montgomery multiply" (AMM) over l = ⌈(64k+2)/52⌉
// 52-bit limbs held in 64-bit lanes: the 52x52->104 multiply-adds have no
// carry chain, so the whole row is data-parallel across zmm lanes and only
// the per-row m-digit is scalar. Values stay in a redundant range [0, 2n)
// between operations (R52 = 2^(52l) >= 4n keeps AMM closed over that range);
// a single conditional subtraction canonicalizes at domain exit.
//
// This header is backend-neutral (no intrinsics); the kernels live in
// bignum_ifma.cpp behind a runtime CPU check. When the CPU or the build
// target lacks IFMA, init() leaves the context empty and Montgomery::exp
// stays on the scalar CIOS/FIOS path. Work-meter charges are applied by the
// caller using the canonical 64-bit-limb cost model, so metered counts are
// identical with and without the IFMA backend (see DESIGN.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tenet::crypto::ifma {

/// True when the running CPU supports the AVX512F+IFMA kernels (cached).
bool available();

/// 52-bit limb count for a k x 64-bit-limb modulus: smallest l with
/// 2^(52l) >= 2^(64k+2) (so R52 >= 4n for any n of k limbs).
size_t limbs52(size_t k);

/// Radix-52 context for one odd modulus. Default-constructed (chunks == 0)
/// means "IFMA path disabled" — unsupported size or no CPU support.
struct Ctx {
  size_t l = 0;   ///< real 52-bit limbs (rows per multiply)
  size_t lp = 0;  ///< l rounded up to a multiple of 8 (zmm lanes)
  int nc = 0;     ///< zmm chunks = lp/8; 0 disables the IFMA path
  uint64_t n0inv52 = 0;           ///< -n^{-1} mod 2^52
  std::vector<uint64_t> n52;      ///< modulus, canonical 52-bit limbs (lp)
  std::vector<uint64_t> r52sq;    ///< R52^2 mod n, canonical 52-bit limbs
  std::vector<uint64_t> one_dom;  ///< R52 mod n = 1 in the R52 domain

  explicit operator bool() const { return nc != 0; }
};

/// Splits k 64-bit limbs into lp 52-bit limbs (canonical, zero-padded).
void to52(const uint64_t* x64, size_t k, uint64_t* out52, size_t lp);
/// Packs canonical 52-bit limbs back into k 64-bit limbs. The value must
/// fit in 64k bits (callers reduce below n first).
void from52(const uint64_t* x52, size_t lp, uint64_t* out64, size_t k);

/// Builds the context. `n64` is the modulus (k limbs, odd), `n0inv64` is
/// -n^{-1} mod 2^64, `r52sq64` is R52^2 mod n as k limbs. Returns false and
/// leaves `c` disabled when the CPU or the modulus size is unsupported.
bool init(Ctx& c, const uint64_t* n64, size_t k, uint64_t n0inv64,
          const uint64_t* r52sq64);

/// out = a*b*R52^{-1} mod n, almost-reduced: inputs and output are
/// canonical 52-bit limb vectors with value < 2n. `out` may alias inputs.
/// Requires c.nc != 0.
void amm(const Ctx& c, const uint64_t* a, const uint64_t* b, uint64_t* out);

/// One conditional subtraction of n: maps [0, 2n) to [0, n).
void reduce_once(const Ctx& c, uint64_t* x);

}  // namespace tenet::crypto::ifma
