#include "crypto/multibuf.h"

#include <cstring>

#include "crypto/work.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define TENET_AESNI_KERNEL 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace tenet::crypto::mb {

namespace {

Backend g_backend = Backend::kBatched;

#if defined(TENET_AESNI_KERNEL)

bool cpu_has_aesni() {
  static const bool ok = [] {
    unsigned a = 0, b = 0, c = 0, d = 0;
    if (!__get_cpuid(1, &a, &b, &c, &d)) return false;
    return (c & bit_AES) != 0;
  }();
  return ok;
}

// Counter block bytes are [nonce BE64 | counter BE64]; as two little-endian
// u64 lanes that is (bswap(nonce), bswap(counter)).
__attribute__((target("aes,sse2"))) inline __m128i ctr_block(
    uint64_t nonce_sw, uint64_t counter) {
  return _mm_set_epi64x(
      static_cast<long long>(__builtin_bswap64(counter)),
      static_cast<long long>(nonce_sw));
}

__attribute__((target("aes,sse2"))) void ctr_xor_aesni(
    const std::array<std::array<uint8_t, 16>, 11>& schedule,
    std::span<const CtrJob> jobs) {
  __m128i rk[11];
  for (int i = 0; i < 11; ++i) {
    rk[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(schedule[static_cast<size_t>(i)].data()));
  }

  for (const CtrJob& job : jobs) {
    const uint64_t nonce_sw = __builtin_bswap64(job.nonce);
    uint64_t ctr = job.counter;
    uint8_t* p = job.data;
    size_t blocks = job.len / 16;
    const size_t tail = job.len % 16;

    // Four counter blocks in flight per iteration: enough to cover the
    // aesenc latency on every core that has the instruction.
    while (blocks >= 4) {
      __m128i b0 = _mm_xor_si128(ctr_block(nonce_sw, ctr + 0), rk[0]);
      __m128i b1 = _mm_xor_si128(ctr_block(nonce_sw, ctr + 1), rk[0]);
      __m128i b2 = _mm_xor_si128(ctr_block(nonce_sw, ctr + 2), rk[0]);
      __m128i b3 = _mm_xor_si128(ctr_block(nonce_sw, ctr + 3), rk[0]);
      for (int r = 1; r < 10; ++r) {
        b0 = _mm_aesenc_si128(b0, rk[r]);
        b1 = _mm_aesenc_si128(b1, rk[r]);
        b2 = _mm_aesenc_si128(b2, rk[r]);
        b3 = _mm_aesenc_si128(b3, rk[r]);
      }
      b0 = _mm_aesenclast_si128(b0, rk[10]);
      b1 = _mm_aesenclast_si128(b1, rk[10]);
      b2 = _mm_aesenclast_si128(b2, rk[10]);
      b3 = _mm_aesenclast_si128(b3, rk[10]);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(p + 0),
          _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<__m128i*>(p + 0)), b0));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(p + 16),
          _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<__m128i*>(p + 16)), b1));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(p + 32),
          _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<__m128i*>(p + 32)), b2));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(p + 48),
          _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<__m128i*>(p + 48)), b3));
      ctr += 4;
      p += 64;
      blocks -= 4;
    }
    while (blocks > 0) {
      __m128i b = _mm_xor_si128(ctr_block(nonce_sw, ctr), rk[0]);
      for (int r = 1; r < 10; ++r) b = _mm_aesenc_si128(b, rk[r]);
      b = _mm_aesenclast_si128(b, rk[10]);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(p),
          _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<__m128i*>(p)), b));
      ++ctr;
      p += 16;
      --blocks;
    }
    if (tail > 0) {
      __m128i b = _mm_xor_si128(ctr_block(nonce_sw, ctr), rk[0]);
      for (int r = 1; r < 10; ++r) b = _mm_aesenc_si128(b, rk[r]);
      b = _mm_aesenclast_si128(b, rk[10]);
      alignas(16) uint8_t ks[16];
      _mm_store_si128(reinterpret_cast<__m128i*>(ks), b);
      for (size_t i = 0; i < tail; ++i) p[i] ^= ks[i];
    }
  }
}

#endif  // TENET_AESNI_KERNEL

}  // namespace

Backend backend() { return g_backend; }

Backend set_backend(Backend b) {
  const Backend prev = g_backend;
  g_backend = b;
  return prev;
}

bool aesni_available() {
#if defined(TENET_AESNI_KERNEL)
  return cpu_has_aesni();
#else
  return false;
#endif
}

void ctr_xor_batch(const Aes128& key, std::span<const CtrJob> jobs) {
#if defined(TENET_AESNI_KERNEL)
  if (g_backend == Backend::kBatched && aesni_available()) {
    // Canonical charge first: ⌈len/16⌉ blocks per job, exactly what the
    // per-job scalar path would charge.
    uint64_t total_blocks = 0;
    for (const CtrJob& job : jobs) total_blocks += (job.len + 15) / 16;
    work::charge_aes_blocks(total_blocks);
    ctr_xor_aesni(key.round_key_bytes(), jobs);
    return;
  }
#endif
  for (const CtrJob& job : jobs) {
    key.ctr_xor(job.nonce, job.counter, job.data, job.len);
  }
}

void hmac_batch(const HmacKey& key, std::span<const MacJob> jobs) {
  // Both backends share the midstate path: the batching win is the cached
  // ipad/opad states plus whichever sha256_kernel backend is active. Kept
  // as one loop so the tag bytes and charges cannot diverge by backend.
  for (const MacJob& job : jobs) {
    const Digest d = key.mac_parts({job.a, job.b});
    std::memcpy(job.tag_out, d.data(), job.tag_len);
  }
}

}  // namespace tenet::crypto::mb
