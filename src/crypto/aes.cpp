#include "crypto/aes.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "crypto/work.h"

namespace tenet::crypto {

namespace {

constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

uint8_t inv_sbox_at(uint8_t v) {
  // Inverse S-box computed once at startup from kSbox.
  static const auto inv = [] {
    std::array<uint8_t, 256> t{};
    for (int i = 0; i < 256; ++i) t[kSbox[i]] = static_cast<uint8_t>(i);
    return t;
  }();
  return inv[v];
}

constexpr uint8_t xtime(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

// T-table encryption (classic Rijndael "Te" tables): each table maps one
// state byte to the 32-bit column contribution of SubBytes + MixColumns, so
// a round is 16 loads + 16 XORs instead of byte-wise GF(2^8) arithmetic.
// Te0[x] packs {2s, s, s, 3s} big-endian; Te1..Te3 are byte rotations of
// Te0, matching the byte's row position after ShiftRows.
constexpr std::array<uint32_t, 256> make_te0() {
  std::array<uint32_t, 256> t{};
  for (int i = 0; i < 256; ++i) {
    const uint8_t s = kSbox[i];
    const uint8_t s2 = xtime(s);
    const uint8_t s3 = static_cast<uint8_t>(s2 ^ s);
    t[static_cast<size_t>(i)] = (static_cast<uint32_t>(s2) << 24) |
                                (static_cast<uint32_t>(s) << 16) |
                                (static_cast<uint32_t>(s) << 8) |
                                static_cast<uint32_t>(s3);
  }
  return t;
}

constexpr std::array<uint32_t, 256> rotr_each(
    const std::array<uint32_t, 256>& in, int r) {
  std::array<uint32_t, 256> t{};
  for (size_t i = 0; i < 256; ++i) t[i] = (in[i] >> r) | (in[i] << (32 - r));
  return t;
}

constexpr auto kTe0 = make_te0();
constexpr auto kTe1 = rotr_each(kTe0, 8);
constexpr auto kTe2 = rotr_each(kTe0, 16);
constexpr auto kTe3 = rotr_each(kTe0, 24);

inline uint8_t gmul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

}  // namespace

Aes128::Aes128(const AesKey128& key) {
  work::charge_aes_key_schedule(1);
  std::memcpy(round_keys_[0].data(), key.data(), 16);
  for (int r = 1; r <= 10; ++r) {
    const auto& prev = round_keys_[r - 1];
    auto& rk = round_keys_[r];
    // First word: RotWord + SubWord + Rcon.
    rk[0] = static_cast<uint8_t>(prev[0] ^ kSbox[prev[13]] ^ kRcon[r]);
    rk[1] = static_cast<uint8_t>(prev[1] ^ kSbox[prev[14]]);
    rk[2] = static_cast<uint8_t>(prev[2] ^ kSbox[prev[15]]);
    rk[3] = static_cast<uint8_t>(prev[3] ^ kSbox[prev[12]]);
    for (int i = 4; i < 16; ++i) {
      rk[i] = static_cast<uint8_t>(prev[i] ^ rk[i - 4]);
    }
  }
  for (int r = 0; r <= 10; ++r) {
    const auto& rk = round_keys_[static_cast<size_t>(r)];
    for (int c = 0; c < 4; ++c) {
      enc_keys_[static_cast<size_t>(4 * r + c)] =
          (static_cast<uint32_t>(rk[static_cast<size_t>(4 * c)]) << 24) |
          (static_cast<uint32_t>(rk[static_cast<size_t>(4 * c + 1)]) << 16) |
          (static_cast<uint32_t>(rk[static_cast<size_t>(4 * c + 2)]) << 8) |
          static_cast<uint32_t>(rk[static_cast<size_t>(4 * c + 3)]);
    }
  }
}

void Aes128::encrypt_words(uint32_t s[4]) const {
  uint32_t s0 = s[0] ^ enc_keys_[0];
  uint32_t s1 = s[1] ^ enc_keys_[1];
  uint32_t s2 = s[2] ^ enc_keys_[2];
  uint32_t s3 = s[3] ^ enc_keys_[3];
  for (int round = 1; round <= 9; ++round) {
    const uint32_t* rk = &enc_keys_[static_cast<size_t>(4 * round)];
    const uint32_t t0 = kTe0[s0 >> 24] ^ kTe1[(s1 >> 16) & 0xff] ^
                        kTe2[(s2 >> 8) & 0xff] ^ kTe3[s3 & 0xff] ^ rk[0];
    const uint32_t t1 = kTe0[s1 >> 24] ^ kTe1[(s2 >> 16) & 0xff] ^
                        kTe2[(s3 >> 8) & 0xff] ^ kTe3[s0 & 0xff] ^ rk[1];
    const uint32_t t2 = kTe0[s2 >> 24] ^ kTe1[(s3 >> 16) & 0xff] ^
                        kTe2[(s0 >> 8) & 0xff] ^ kTe3[s1 & 0xff] ^ rk[2];
    const uint32_t t3 = kTe0[s3 >> 24] ^ kTe1[(s0 >> 16) & 0xff] ^
                        kTe2[(s1 >> 8) & 0xff] ^ kTe3[s2 & 0xff] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }
  // Final round: SubBytes + ShiftRows only (no MixColumns).
  const uint32_t* rk = &enc_keys_[40];
  s[0] = ((static_cast<uint32_t>(kSbox[s0 >> 24]) << 24) |
          (static_cast<uint32_t>(kSbox[(s1 >> 16) & 0xff]) << 16) |
          (static_cast<uint32_t>(kSbox[(s2 >> 8) & 0xff]) << 8) |
          static_cast<uint32_t>(kSbox[s3 & 0xff])) ^
         rk[0];
  s[1] = ((static_cast<uint32_t>(kSbox[s1 >> 24]) << 24) |
          (static_cast<uint32_t>(kSbox[(s2 >> 16) & 0xff]) << 16) |
          (static_cast<uint32_t>(kSbox[(s3 >> 8) & 0xff]) << 8) |
          static_cast<uint32_t>(kSbox[s0 & 0xff])) ^
         rk[1];
  s[2] = ((static_cast<uint32_t>(kSbox[s2 >> 24]) << 24) |
          (static_cast<uint32_t>(kSbox[(s3 >> 16) & 0xff]) << 16) |
          (static_cast<uint32_t>(kSbox[(s0 >> 8) & 0xff]) << 8) |
          static_cast<uint32_t>(kSbox[s1 & 0xff])) ^
         rk[2];
  s[3] = ((static_cast<uint32_t>(kSbox[s3 >> 24]) << 24) |
          (static_cast<uint32_t>(kSbox[(s0 >> 16) & 0xff]) << 16) |
          (static_cast<uint32_t>(kSbox[(s1 >> 8) & 0xff]) << 8) |
          static_cast<uint32_t>(kSbox[s2 & 0xff])) ^
         rk[3];
}

void Aes128::encrypt_block(AesBlock& b) const {
  work::charge_aes_blocks(1);
  uint32_t s[4];
  for (int c = 0; c < 4; ++c) {
    s[c] = (static_cast<uint32_t>(b[static_cast<size_t>(4 * c)]) << 24) |
           (static_cast<uint32_t>(b[static_cast<size_t>(4 * c + 1)]) << 16) |
           (static_cast<uint32_t>(b[static_cast<size_t>(4 * c + 2)]) << 8) |
           static_cast<uint32_t>(b[static_cast<size_t>(4 * c + 3)]);
  }
  encrypt_words(s);
  for (int c = 0; c < 4; ++c) {
    b[static_cast<size_t>(4 * c)] = static_cast<uint8_t>(s[c] >> 24);
    b[static_cast<size_t>(4 * c + 1)] = static_cast<uint8_t>(s[c] >> 16);
    b[static_cast<size_t>(4 * c + 2)] = static_cast<uint8_t>(s[c] >> 8);
    b[static_cast<size_t>(4 * c + 3)] = static_cast<uint8_t>(s[c]);
  }
}

void Aes128::decrypt_block(AesBlock& b) const {
  work::charge_aes_blocks(1);
  auto add_round_key = [&](int r) {
    for (int i = 0; i < 16; ++i) b[i] ^= round_keys_[static_cast<size_t>(r)][i];
  };
  auto inv_sub_bytes = [&] {
    for (auto& v : b) v = inv_sbox_at(v);
  };
  auto inv_shift_rows = [&] {
    AesBlock t = b;
    for (int r = 1; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) {
        b[static_cast<size_t>(r + 4 * ((c + r) % 4))] = t[static_cast<size_t>(r + 4 * c)];
      }
    }
  };
  auto inv_mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      uint8_t* col = &b[static_cast<size_t>(4 * c)];
      const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9));
      col[1] = static_cast<uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13));
      col[2] = static_cast<uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11));
      col[3] = static_cast<uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14));
    }
  };

  add_round_key(10);
  for (int round = 9; round >= 1; --round) {
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(round);
    inv_mix_columns();
  }
  inv_shift_rows();
  inv_sub_bytes();
  add_round_key(0);
}

Bytes Aes128::ecb_encrypt(BytesView plaintext) const {
  if (plaintext.size() % 16 != 0) {
    throw std::invalid_argument("Aes128::ecb_encrypt: size not multiple of 16");
  }
  Bytes out(plaintext.begin(), plaintext.end());
  for (size_t off = 0; off < out.size(); off += 16) {
    AesBlock block;
    std::memcpy(block.data(), out.data() + off, 16);
    encrypt_block(block);
    std::memcpy(out.data() + off, block.data(), 16);
  }
  return out;
}

Bytes Aes128::ecb_decrypt(BytesView ciphertext) const {
  if (ciphertext.size() % 16 != 0) {
    throw std::invalid_argument("Aes128::ecb_decrypt: size not multiple of 16");
  }
  Bytes out(ciphertext.begin(), ciphertext.end());
  for (size_t off = 0; off < out.size(); off += 16) {
    AesBlock block;
    std::memcpy(block.data(), out.data() + off, 16);
    decrypt_block(block);
    std::memcpy(out.data() + off, block.data(), 16);
  }
  return out;
}

Bytes Aes128::ecb_encrypt_padded(BytesView plaintext) const {
  const size_t pad = 16 - (plaintext.size() % 16);
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<uint8_t>(pad));
  return ecb_encrypt(padded);
}

Bytes Aes128::ecb_decrypt_padded(BytesView ciphertext) const {
  if (ciphertext.empty()) throw std::invalid_argument("ecb_decrypt_padded: empty");
  Bytes padded = ecb_decrypt(ciphertext);
  const uint8_t pad = padded.back();
  if (pad == 0 || pad > 16 || pad > padded.size()) {
    throw std::invalid_argument("ecb_decrypt_padded: bad padding");
  }
  for (size_t i = padded.size() - pad; i < padded.size(); ++i) {
    if (padded[i] != pad) throw std::invalid_argument("ecb_decrypt_padded: bad padding");
  }
  padded.resize(padded.size() - pad);
  return padded;
}

Bytes Aes128::ctr_crypt(uint64_t nonce, uint64_t initial_counter,
                        BytesView data) const {
  Bytes out(data.begin(), data.end());
  ctr_xor(nonce, initial_counter, out.data(), out.size());
  return out;
}

void Aes128::ctr_xor(uint64_t nonce, uint64_t initial_counter, uint8_t* data,
                     size_t len) const {
  work::charge_aes_blocks((len + 15) / 16);
  // The counter block as column words: the nonce occupies words 0-1 and is
  // invariant across the buffer; the block counter occupies words 2-3.
  const uint32_t n0 = static_cast<uint32_t>(nonce >> 32);
  const uint32_t n1 = static_cast<uint32_t>(nonce);
  uint64_t counter = initial_counter;
  for (size_t off = 0; off < len; off += 16, ++counter) {
    uint32_t s[4] = {n0, n1, static_cast<uint32_t>(counter >> 32),
                     static_cast<uint32_t>(counter)};
    encrypt_words(s);
    uint8_t ks[16];
    for (int c = 0; c < 4; ++c) {
      ks[4 * c] = static_cast<uint8_t>(s[c] >> 24);
      ks[4 * c + 1] = static_cast<uint8_t>(s[c] >> 16);
      ks[4 * c + 2] = static_cast<uint8_t>(s[c] >> 8);
      ks[4 * c + 3] = static_cast<uint8_t>(s[c]);
    }
    const size_t n = std::min<size_t>(16, len - off);
    for (size_t i = 0; i < n; ++i) data[off + i] ^= ks[i];
  }
}

}  // namespace tenet::crypto
