#include "crypto/hmac.h"

#include <stdexcept>

#include "crypto/work.h"

namespace tenet::crypto {

namespace {

struct HmacKeyPads {
  std::array<uint8_t, 64> ipad;
  std::array<uint8_t, 64> opad;
};

HmacKeyPads make_pads(BytesView key) {
  std::array<uint8_t, 64> k{};
  if (key.size() > 64) {
    const Digest d = Sha256::hash(key);
    std::copy(d.begin(), d.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  HmacKeyPads pads{};
  for (int i = 0; i < 64; ++i) {
    pads.ipad[i] = static_cast<uint8_t>(k[i] ^ 0x36);
    pads.opad[i] = static_cast<uint8_t>(k[i] ^ 0x5c);
  }
  return pads;
}

}  // namespace

HmacKey::HmacKey(BytesView key) {
  const HmacKeyPads pads = make_pads(key);
  inner_ = sha256_kernel::kInitState;
  outer_ = sha256_kernel::kInitState;
  // Uncharged: the canonical per-MAC cost is charged by mac_parts() so the
  // cached and uncached paths stay meter-identical.
  sha256_kernel::compress(inner_, pads.ipad.data(), 1);
  sha256_kernel::compress(outer_, pads.opad.data(), 1);
}

Digest HmacKey::mac_parts(std::initializer_list<BytesView> parts) const {
  // The skipped ipad/opad compressions, charged to keep costs canonical.
  work::charge_sha256_blocks(2);
  Sha256 inner = Sha256::resume(inner_, 64);
  for (const auto& p : parts) inner.update(p);
  const Digest inner_digest = inner.finish();

  Sha256 outer = Sha256::resume(outer_, 64);
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Digest hmac_sha256_parts(BytesView key, std::initializer_list<BytesView> parts) {
  const HmacKeyPads pads = make_pads(key);
  Sha256 inner;
  inner.update(BytesView(pads.ipad.data(), pads.ipad.size()));
  for (const auto& p : parts) inner.update(p);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(BytesView(pads.opad.data(), pads.opad.size()));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Digest hmac_sha256(BytesView key, BytesView data) {
  return hmac_sha256_parts(key, {data});
}

bool hmac_verify(BytesView key, BytesView data, BytesView mac) {
  const Digest expected = hmac_sha256(key, data);
  return ct_equal(BytesView(expected.data(), expected.size()), mac);
}

Digest hkdf_extract(BytesView salt, BytesView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(const Digest& prk, BytesView info, size_t length) {
  if (length > 255 * 32) throw std::invalid_argument("hkdf_expand: too long");
  Bytes out;
  out.reserve(length);
  Digest t{};
  size_t t_len = 0;
  uint8_t counter = 1;
  while (out.size() < length) {
    const uint8_t ctr_byte = counter++;
    const Digest block = hmac_sha256_parts(
        BytesView(prk.data(), prk.size()),
        {BytesView(t.data(), t_len), info, BytesView(&ctr_byte, 1)});
    t = block;
    t_len = 32;
    const size_t take = std::min<size_t>(32, length - out.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<ptrdiff_t>(take));
  }
  return out;
}

Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

}  // namespace tenet::crypto
