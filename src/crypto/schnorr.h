// Schnorr signatures over the prime-order subgroup of a safe-prime group.
//
// Real SGX quotes are signed with Intel's EPID group-signature scheme; we
// substitute classic Schnorr (see DESIGN.md §2): same message flow, a real
// verifiable signature, and a comparable modexp cost profile. A GroupSigner
// wrapper models the EPID property that one *group* verification key covers
// a fleet of platforms.
#pragma once

#include <optional>

#include "crypto/bignum.h"
#include "crypto/bytes.h"
#include "crypto/dh.h"
#include "crypto/sha256.h"

namespace tenet::crypto {

class Drbg;

/// A Schnorr signature (e, s), both reduced mod q.
struct SchnorrSignature {
  BigInt e;
  BigInt s;

  [[nodiscard]] Bytes serialize(const DhGroup& group) const;
  static SchnorrSignature deserialize(const DhGroup& group, BytesView wire);
};

/// Verification half of a key pair: y = g^x mod p.
class SchnorrPublicKey {
 public:
  SchnorrPublicKey(const DhGroup& group, BigInt y);

  [[nodiscard]] const DhGroup& group() const { return *group_; }
  [[nodiscard]] const BigInt& y() const { return y_; }
  [[nodiscard]] Bytes serialize() const;
  static SchnorrPublicKey deserialize(const DhGroup& group, BytesView wire);

  [[nodiscard]] bool verify(BytesView message, const SchnorrSignature& sig) const;

 private:
  const DhGroup* group_;
  BigInt y_;
};

/// Signing key. The private exponent never leaves this object; in the SGX
/// emulator the platform's signing key lives inside the (emulated) CPU
/// package, matching the paper's threat model.
class SchnorrKeyPair {
 public:
  /// Generates x uniform in [1, q) over the given group.
  SchnorrKeyPair(const DhGroup& group, Drbg& rng);
  /// Deterministic keygen from a seed label (used to derive per-platform
  /// keys from a fused root, like EGETKEY does).
  static SchnorrKeyPair derive(const DhGroup& group, BytesView seed);

  [[nodiscard]] const SchnorrPublicKey& public_key() const { return public_; }

  [[nodiscard]] SchnorrSignature sign(BytesView message, Drbg& rng) const;
  /// RFC6979-style deterministic nonce variant (no RNG needed at sign time).
  [[nodiscard]] SchnorrSignature sign_deterministic(BytesView message) const;

 private:
  SchnorrKeyPair(const DhGroup& group, BigInt x);

  const DhGroup* group_;
  BigInt x_;
  SchnorrPublicKey public_;
};

/// EPID stand-in: a "group" key pair whose public half verifies signatures
/// produced by any member. Members hold the same signing exponent but bind
/// their platform identity into the signed message, which preserves the
/// protocol-visible property of EPID (verifier learns "a genuine platform
/// signed this", not which one, unless the message discloses it).
class GroupSigner {
 public:
  GroupSigner(const DhGroup& group, Drbg& rng) : key_(group, rng) {}

  [[nodiscard]] const SchnorrPublicKey& group_public_key() const {
    return key_.public_key();
  }
  [[nodiscard]] SchnorrSignature sign_as_member(BytesView platform_id,
                                                BytesView message) const;
  [[nodiscard]] bool verify_member(BytesView platform_id, BytesView message,
                                   const SchnorrSignature& sig) const;

 private:
  SchnorrKeyPair key_;
};

}  // namespace tenet::crypto
