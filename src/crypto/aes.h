// AES-128 (FIPS 197), from scratch: ECB block operations and CTR mode.
//
// The paper's prototype uses "AES-ECB mode as a symmetric key operation
// with 128-bit key using polarssl" (§5). We provide the same ECB primitive
// for the Table 1/2 reproductions and CTR for the secure channel (ECB is
// not semantically secure; the paper used it only as a cost proxy — see
// DESIGN.md).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.h"

namespace tenet::crypto {

using AesKey128 = std::array<uint8_t, 16>;
using AesBlock = std::array<uint8_t, 16>;

/// AES-128 with an expanded key schedule. Construction performs the key
/// expansion (charged to the work meter as one key schedule).
class Aes128 {
 public:
  explicit Aes128(const AesKey128& key);

  /// Encrypts/decrypts a single 16-byte block in place.
  void encrypt_block(AesBlock& block) const;
  void decrypt_block(AesBlock& block) const;

  /// ECB over a whole buffer; size must be a multiple of 16.
  /// Throws std::invalid_argument otherwise.
  Bytes ecb_encrypt(BytesView plaintext) const;
  Bytes ecb_decrypt(BytesView ciphertext) const;

  /// PKCS#7-padded ECB (so arbitrary-length app payloads round-trip).
  Bytes ecb_encrypt_padded(BytesView plaintext) const;
  /// Throws std::invalid_argument on bad padding.
  Bytes ecb_decrypt_padded(BytesView ciphertext) const;

  /// CTR keystream XOR; encryption and decryption are the same operation.
  /// `nonce` occupies the first 8 bytes of the counter block; the counter
  /// is a 64-bit big-endian value in the last 8 bytes starting at
  /// `initial_counter`.
  Bytes ctr_crypt(uint64_t nonce, uint64_t initial_counter,
                  BytesView data) const;

  /// In-place CTR keystream XOR over `data` (same counter-block layout as
  /// ctr_crypt). The work meter is charged once for the whole buffer —
  /// ⌈len/16⌉ blocks, the same total as per-block charging.
  void ctr_xor(uint64_t nonce, uint64_t initial_counter, uint8_t* data,
               size_t len) const;

  /// Raw expanded schedule (11 round keys x 16 bytes) for the multi-buffer
  /// AES-NI kernels (multibuf.cpp), which load round keys as whole blocks.
  const std::array<std::array<uint8_t, 16>, 11>& round_key_bytes() const {
    return round_keys_;
  }

 private:
  // One encryption pass over the state as four big-endian column words,
  // using the T-tables; no work-meter charge (callers charge).
  void encrypt_words(uint32_t s[4]) const;

  // 11 round keys x 16 bytes.
  std::array<std::array<uint8_t, 16>, 11> round_keys_{};
  // The same schedule packed as big-endian column words (enc_keys_[4r+c] =
  // round_keys_[r] column c) for the T-table encryption path.
  std::array<uint32_t, 44> enc_keys_{};
};

}  // namespace tenet::crypto
