// Byte-buffer utilities shared by every tenet library.
//
// The whole code base traffics in `Bytes` (a std::vector<uint8_t>): network
// messages, enclave memory pages, keys, signatures. This header keeps the
// helpers small and allocation-honest; nothing here charges the cost model.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tenet::crypto {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

/// Builds a Bytes from a string literal / std::string payload.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte buffer as text (for tests and examples).
inline std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

/// Lower-case hex encoding.
std::string hex_encode(BytesView data);

/// Strict hex decoding; throws std::invalid_argument on bad input.
/// Whitespace is permitted (so RFC-formatted constants paste cleanly).
Bytes hex_decode(std::string_view hex);

/// Constant-time comparison for secrets (length leak is acceptable: all
/// callers compare fixed-size MACs/digests).
bool ct_equal(BytesView a, BytesView b);

/// Appends `src` to `dst`.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Appends a 32-bit big-endian integer (wire format helper).
void append_u32(Bytes& dst, uint32_t v);

/// Appends a 64-bit big-endian integer.
void append_u64(Bytes& dst, uint64_t v);

/// Reads a 32-bit big-endian integer at `off`; throws std::out_of_range.
uint32_t read_u32(BytesView src, size_t off);

/// Reads a 64-bit big-endian integer at `off`; throws std::out_of_range.
uint64_t read_u64(BytesView src, size_t off);

/// Appends a length-prefixed (u32) byte string.
void append_lv(Bytes& dst, BytesView src);

/// Cursor for decoding length-prefixed wire messages produced by append_lv
/// and friends. Throws std::out_of_range on truncated input, which message
/// handlers treat as a malformed peer message.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  uint32_t u32() {
    const uint32_t v = read_u32(data_, off_);
    off_ += 4;
    return v;
  }
  uint64_t u64() {
    const uint64_t v = read_u64(data_, off_);
    off_ += 8;
    return v;
  }
  uint8_t u8() {
    if (off_ >= data_.size()) throw std::out_of_range("Reader::u8");
    return data_[off_++];
  }
  /// Reads a u32 length prefix then that many bytes.
  Bytes lv() {
    const uint32_t n = u32();
    return take(n);
  }
  Bytes take(size_t n) {
    if (off_ + n > data_.size()) throw std::out_of_range("Reader::take");
    Bytes out(data_.begin() + static_cast<ptrdiff_t>(off_),
              data_.begin() + static_cast<ptrdiff_t>(off_ + n));
    off_ += n;
    return out;
  }
  /// Zero-copy variants: views into the underlying buffer, valid only as
  /// long as the buffer the Reader was constructed over stays alive.
  BytesView lv_view() {
    const uint32_t n = u32();
    return view(n);
  }
  BytesView view(size_t n) {
    if (off_ + n > data_.size()) throw std::out_of_range("Reader::view");
    BytesView out = data_.subspan(off_, n);
    off_ += n;
    return out;
  }
  [[nodiscard]] size_t remaining() const { return data_.size() - off_; }
  [[nodiscard]] bool done() const { return off_ == data_.size(); }

 private:
  BytesView data_;
  size_t off_ = 0;
};

}  // namespace tenet::crypto
