#include "crypto/sha256.h"

#include <bit>
#include <cstring>

#include "crypto/work.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define TENET_SHANI_KERNEL 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace tenet::crypto {

namespace {

constexpr std::array<uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t rotr(uint32_t x, int n) { return std::rotr(x, n); }

void compress_portable(std::array<uint32_t, 8>& state, const uint8_t* blocks,
                       size_t n) {
  for (size_t blk = 0; blk < n; ++blk) {
    const uint8_t* block = blocks + blk * 64;
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
             (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
             (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
             static_cast<uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const uint32_t ch = (e & f) ^ (~e & g);
      const uint32_t t1 = h + s1 + ch + kK[i] + w[i];
      const uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#if defined(TENET_SHANI_KERNEL)

__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani(
    std::array<uint32_t, 8>& state, const uint8_t* blocks, size_t n) {
  const __m128i bswap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Pack {a..h} into the ABEF/CDGH lane order the SHA extension expects.
  __m128i tmp =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data()));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data() + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);

  for (size_t blk = 0; blk < n; ++blk) {
    const uint8_t* block = blocks + blk * 64;
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i m[4];
    for (int i = 0; i < 4; ++i) {
      m[i] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16 * i)),
          bswap);
    }

    for (int i = 0; i < 16; ++i) {
      __m128i wk = _mm_add_epi32(
          m[i & 3],
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * i])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
      wk = _mm_shuffle_epi32(wk, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, wk);
      if (i >= 3 && i < 15) {
        const __m128i w_minus_7 = _mm_alignr_epi8(m[i & 3], m[(i + 3) & 3], 4);
        m[(i + 1) & 3] = _mm_sha256msg2_epu32(
            _mm_add_epi32(_mm_sha256msg1_epu32(m[(i + 1) & 3], m[(i + 2) & 3]),
                          w_minus_7),
            m[i & 3]);
      }
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state.data()), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state.data() + 4), state1);
}

bool cpu_has_shani() {
  static const bool ok = [] {
    unsigned a = 0, b = 0, c = 0, d = 0;
    if (!__get_cpuid_count(7, 0, &a, &b, &c, &d)) return false;
    return (b & bit_SHA) != 0;
  }();
  return ok;
}

#endif  // TENET_SHANI_KERNEL

bool g_force_portable = false;

}  // namespace

namespace sha256_kernel {

const std::array<uint32_t, 8> kInitState = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                            0xa54ff53a, 0x510e527f, 0x9b05688c,
                                            0x1f83d9ab, 0x5be0cd19};

bool accelerated() {
#if defined(TENET_SHANI_KERNEL)
  return cpu_has_shani() && !g_force_portable;
#else
  return false;
#endif
}

bool force_portable(bool on) {
  const bool prev = g_force_portable;
  g_force_portable = on;
  return prev;
}

void compress(std::array<uint32_t, 8>& state, const uint8_t* blocks, size_t n) {
#if defined(TENET_SHANI_KERNEL)
  if (accelerated()) {
    compress_shani(state, blocks, n);
    return;
  }
#endif
  compress_portable(state, blocks, n);
}

}  // namespace sha256_kernel

void Sha256::reset() {
  state_ = sha256_kernel::kInitState;
  total_len_ = 0;
  buf_len_ = 0;
}

Sha256 Sha256::resume(const std::array<uint32_t, 8>& state,
                      uint64_t bytes_done) {
  Sha256 h;
  h.state_ = state;
  h.total_len_ = bytes_done;
  return h;
}

void Sha256::compress(const uint8_t block[64]) {
  work::charge_sha256_blocks(1);
  sha256_kernel::compress(state_, block, 1);
}

void Sha256::update(BytesView data) {
  total_len_ += data.size();
  size_t off = 0;
  if (buf_len_ > 0) {
    const size_t take = std::min(data.size(), 64 - buf_len_);
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off = take;
    if (buf_len_ == 64) {
      compress(buf_.data());
      buf_len_ = 0;
    }
  }
  if (off + 64 <= data.size()) {
    const size_t nblocks = (data.size() - off) / 64;
    work::charge_sha256_blocks(nblocks);
    sha256_kernel::compress(state_, data.data() + off, nblocks);
    off += nblocks * 64;
  }
  if (off < data.size()) {
    std::memcpy(buf_.data(), data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

Digest Sha256::finish() {
  const uint64_t bit_len = total_len_ * 8;
  const uint8_t pad80 = 0x80;
  update(BytesView(&pad80, 1));
  const uint8_t zero = 0;
  while (buf_len_ != 56) update(BytesView(&zero, 1));
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(BytesView(len_be, 8));

  Digest out{};
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Digest Sha256::hash(BytesView data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Digest Sha256::hash_parts(std::initializer_list<BytesView> parts) {
  Sha256 h;
  for (const auto& p : parts) h.update(p);
  return h.finish();
}

}  // namespace tenet::crypto
