#include "crypto/work.h"

namespace tenet::crypto::work {

namespace {
thread_local WorkCounters* g_sink = nullptr;
}

WorkCounters* install(WorkCounters* sink) {
  WorkCounters* prev = g_sink;
  g_sink = sink;
  return prev;
}

WorkCounters* current() { return g_sink; }

void charge_sha256_blocks(uint64_t n) {
  if (g_sink != nullptr) g_sink->sha256_blocks += n;
}
void charge_aes_blocks(uint64_t n) {
  if (g_sink != nullptr) g_sink->aes_blocks += n;
}
void charge_aes_key_schedule(uint64_t n) {
  if (g_sink != nullptr) g_sink->aes_key_schedules += n;
}
void charge_chacha_blocks(uint64_t n) {
  if (g_sink != nullptr) g_sink->chacha_blocks += n;
}
void charge_limb_muladds(uint64_t n) {
  if (g_sink != nullptr) g_sink->limb_muladds += n;
}
void charge_bytes_moved(uint64_t n) {
  if (g_sink != nullptr) g_sink->bytes_moved += n;
}
void charge_alu(uint64_t n) {
  if (g_sink != nullptr) g_sink->alu_ops += n;
}

}  // namespace tenet::crypto::work
