#include "crypto/work.h"

namespace tenet::crypto::work {

namespace {
thread_local WorkCounters* g_sink = nullptr;
Observer g_observer = nullptr;

inline void observe(Kind kind, uint64_t n) {
  if (g_observer != nullptr) g_observer(kind, n);
}
}  // namespace

Observer set_observer(Observer obs) {
  Observer prev = g_observer;
  g_observer = obs;
  return prev;
}

WorkCounters* install(WorkCounters* sink) {
  WorkCounters* prev = g_sink;
  g_sink = sink;
  return prev;
}

WorkCounters* current() { return g_sink; }

void charge_sha256_blocks(uint64_t n) {
  if (g_sink != nullptr) {
    g_sink->sha256_blocks += n;
    observe(Kind::kSha256Block, n);
  }
}
void charge_aes_blocks(uint64_t n) {
  if (g_sink != nullptr) {
    g_sink->aes_blocks += n;
    observe(Kind::kAesBlock, n);
  }
}
void charge_aes_key_schedule(uint64_t n) {
  if (g_sink != nullptr) {
    g_sink->aes_key_schedules += n;
    observe(Kind::kAesKeySchedule, n);
  }
}
void charge_chacha_blocks(uint64_t n) {
  if (g_sink != nullptr) {
    g_sink->chacha_blocks += n;
    observe(Kind::kChachaBlock, n);
  }
}
void charge_limb_muladds(uint64_t n) {
  if (g_sink != nullptr) {
    g_sink->limb_muladds += n;
    observe(Kind::kLimbMuladd, n);
  }
}
void charge_bytes_moved(uint64_t n) {
  if (g_sink != nullptr) {
    g_sink->bytes_moved += n;
    observe(Kind::kByteMoved, n);
  }
}
void charge_alu(uint64_t n) {
  if (g_sink != nullptr) {
    g_sink->alu_ops += n;
    observe(Kind::kAluOp, n);
  }
}

}  // namespace tenet::crypto::work
