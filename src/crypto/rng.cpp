#include "crypto/rng.h"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "crypto/hmac.h"
#include "crypto/work.h"

namespace tenet::crypto {

namespace {

inline void quarter_round(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

void chacha20_block(const std::array<uint32_t, 16>& input,
                    std::array<uint8_t, 64>& out) {
  work::charge_chacha_blocks(1);
  std::array<uint32_t, 16> x = input;
  for (int i = 0; i < 10; ++i) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const uint32_t v = x[static_cast<size_t>(i)] + input[static_cast<size_t>(i)];
    out[static_cast<size_t>(i * 4)] = static_cast<uint8_t>(v);
    out[static_cast<size_t>(i * 4 + 1)] = static_cast<uint8_t>(v >> 8);
    out[static_cast<size_t>(i * 4 + 2)] = static_cast<uint8_t>(v >> 16);
    out[static_cast<size_t>(i * 4 + 3)] = static_cast<uint8_t>(v >> 24);
  }
}

}  // namespace

Drbg::Drbg(const Seed& seed) {
  static constexpr std::array<uint32_t, 4> kSigma = {0x61707865, 0x3320646e,
                                                     0x79622d32, 0x6b206574};
  for (int i = 0; i < 4; ++i) state_[static_cast<size_t>(i)] = kSigma[static_cast<size_t>(i)];
  for (int i = 0; i < 8; ++i) {
    uint32_t w = 0;
    std::memcpy(&w, seed.data() + i * 4, 4);  // little-endian host assumed (x86)
    state_[static_cast<size_t>(4 + i)] = w;
  }
  state_[12] = 0;  // block counter
  state_[13] = 0;
  state_[14] = 0;  // nonce
  state_[15] = 0;
}

Drbg Drbg::from_label(uint64_t n, std::string_view label) {
  Bytes ikm;
  append_u64(ikm, n);
  const Digest d = hmac_sha256(to_bytes(label), ikm);
  Seed seed{};
  std::copy(d.begin(), d.end(), seed.begin());
  return Drbg(seed);
}

void Drbg::refill() {
  chacha20_block(state_, block_);
  pos_ = 0;
  // 64-bit counter across words 12..13.
  if (++state_[12] == 0) ++state_[13];
}

void Drbg::fill(std::span<uint8_t> out) {
  size_t off = 0;
  while (off < out.size()) {
    if (pos_ == 64) refill();
    const size_t take = std::min<size_t>(64 - pos_, out.size() - off);
    std::memcpy(out.data() + off, block_.data() + pos_, take);
    pos_ += take;
    off += take;
  }
}

Bytes Drbg::bytes(size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

uint64_t Drbg::next_u64() {
  std::array<uint8_t, 8> b{};
  fill(b);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[static_cast<size_t>(i)];
  return v;
}

uint64_t Drbg::uniform(uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Drbg::uniform: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - (UINT64_MAX % bound);
  uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

double Drbg::uniform_real() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Drbg Drbg::fork(std::string_view label) {
  Bytes ikm = bytes(32);
  const Digest d = hmac_sha256(to_bytes(label), ikm);
  Seed seed{};
  std::copy(d.begin(), d.end(), seed.begin());
  return Drbg(seed);
}

}  // namespace tenet::crypto
