#include "crypto/bignum.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "crypto/rng.h"
#include "crypto/work.h"

namespace tenet::crypto {

using u128 = unsigned __int128;

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt::BigInt(uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

BigInt BigInt::from_hex(std::string_view hex) {
  return from_bytes_be(hex_decode(hex));
}

BigInt BigInt::from_bytes_be(BytesView bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 7) / 8, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    // byte i (from MSB) lands at bit position 8*(size-1-i).
    const size_t bitpos = 8 * (bytes.size() - 1 - i);
    out.limbs_[bitpos / 64] |= static_cast<uint64_t>(bytes[i]) << (bitpos % 64);
  }
  out.trim();
  return out;
}

Bytes BigInt::to_bytes_be() const {
  const size_t bits = bit_length();
  return to_bytes_be((bits + 7) / 8);
}

Bytes BigInt::to_bytes_be(size_t width) const {
  if (bit_length() > width * 8) {
    throw std::invalid_argument("BigInt::to_bytes_be: value too wide");
  }
  Bytes out(width, 0);
  for (size_t i = 0; i < width; ++i) {
    const size_t bitpos = 8 * (width - 1 - i);
    const size_t limb = bitpos / 64;
    if (limb < limbs_.size()) {
      out[i] = static_cast<uint8_t>(limbs_[limb] >> (bitpos % 64));
    }
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = hex_encode(to_bytes_be());
  const size_t nz = s.find_first_not_of('0');
  return s.substr(nz);
}

size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const uint64_t top = limbs_.back();
  return (limbs_.size() - 1) * 64 + (64 - static_cast<size_t>(__builtin_clzll(top)));
}

bool BigInt::bit(size_t i) const {
  const size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigInt::cmp(const BigInt& o) const {
  if (limbs_.size() != o.limbs_.size()) {
    return limbs_.size() < o.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::add(const BigInt& o) const {
  BigInt out;
  const size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.assign(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    const u128 sum = static_cast<u128>(i < limbs_.size() ? limbs_[i] : 0) +
                     (i < o.limbs_.size() ? o.limbs_[i] : 0) + carry;
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.trim();
  return out;
}

BigInt BigInt::sub(const BigInt& o) const {
  if (cmp(o) < 0) throw std::underflow_error("BigInt::sub: negative result");
  BigInt out;
  out.limbs_.assign(limbs_.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t rhs = i < o.limbs_.size() ? o.limbs_[i] : 0;
    const uint64_t lhs = limbs_[i];
    uint64_t diff = lhs - rhs;
    const uint64_t borrow1 = lhs < rhs ? 1u : 0u;
    const uint64_t diff2 = diff - borrow;
    const uint64_t borrow2 = diff < borrow ? 1u : 0u;
    out.limbs_[i] = diff2;
    borrow = borrow1 + borrow2;
  }
  out.trim();
  return out;
}

BigInt BigInt::mul(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt{};
  BigInt out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  work::charge_limb_muladds(static_cast<uint64_t>(limbs_.size()) * o.limbs_.size());
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < o.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(limbs_[i]) * o.limbs_[j] +
                       out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limbs_[i + o.limbs_.size()] = carry;
  }
  out.trim();
  return out;
}

BigInt BigInt::shl(size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const size_t limb_shift = bits / 64;
  const size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift == 0 ? limbs_[i] : (limbs_[i] << bit_shift);
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::shr(size_t bits) const {
  const size_t limb_shift = bits / 64;
  const size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigInt{};
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = bit_shift == 0 ? limbs_[i + limb_shift]
                                   : (limbs_[i + limb_shift] >> bit_shift);
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

DivRem BigInt::div_rem(const BigInt& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigInt::div_rem: divide by zero");
  if (cmp(divisor) < 0) return {BigInt{}, *this};

  const size_t shift = bit_length() - divisor.bit_length();
  BigInt rem = *this;
  BigInt quot;
  quot.limbs_.assign(shift / 64 + 1, 0);
  BigInt d = divisor.shl(shift);
  for (size_t i = shift + 1; i-- > 0;) {
    if (rem.cmp(d) >= 0) {
      rem = rem.sub(d);
      quot.limbs_[i / 64] |= uint64_t{1} << (i % 64);
    }
    d = d.shr(1);
  }
  quot.trim();
  return {quot, rem};
}

BigInt BigInt::mod(const BigInt& m) const { return div_rem(m).remainder; }

BigInt BigInt::mod_mul(const BigInt& a, const BigInt& b, const BigInt& m) {
  const Montgomery ctx(m);
  return ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
}

BigInt BigInt::mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  const Montgomery ctx(m);
  return ctx.exp(base, exp);
}

BigInt BigInt::random_range(Drbg& rng, const BigInt& lo, const BigInt& hi) {
  if (lo.cmp(hi) >= 0) throw std::invalid_argument("BigInt::random_range: lo >= hi");
  const BigInt span = hi.sub(lo);
  const size_t bytes = (span.bit_length() + 7) / 8;
  // Rejection sampling over the minimal byte width.
  for (;;) {
    BigInt candidate = from_bytes_be(rng.bytes(bytes));
    if (candidate.cmp(span) < 0) return lo.add(candidate);
  }
}

bool BigInt::probably_prime(const BigInt& n, int rounds, Drbg& rng) {
  const BigInt one(1), two(2), three(3);
  if (n.cmp(two) < 0) return false;
  if (n == two || n == three) return true;
  if (!n.is_odd()) return false;

  // Quick trial division by small primes.
  static constexpr uint64_t kSmallPrimes[] = {3,  5,  7,  11, 13, 17, 19, 23,
                                              29, 31, 37, 41, 43, 47, 53, 59};
  for (uint64_t p : kSmallPrimes) {
    const BigInt bp(p);
    if (n == bp) return true;
    if (n.mod(bp).is_zero()) return false;
  }

  // n - 1 = d * 2^s with d odd.
  const BigInt n_minus_1 = n.sub(one);
  BigInt d = n_minus_1;
  size_t s = 0;
  while (!d.is_odd()) {
    d = d.shr(1);
    ++s;
  }

  const Montgomery ctx(n);
  // n-1 in the Montgomery domain, so the squaring chain never has to
  // convert back: x == n-1 iff mont(x) == mont(n-1).
  const BigInt n_minus_1_m = ctx.to_mont(n_minus_1);
  for (int round = 0; round < rounds; ++round) {
    const BigInt a = random_range(rng, two, n_minus_1);
    const BigInt x = ctx.exp(a, d);
    if (x == one || x == n_minus_1) continue;
    BigInt xm = ctx.to_mont(x);
    bool composite = true;
    for (size_t i = 0; i + 1 < s; ++i) {
      xm = ctx.sqr(xm);
      if (xm == n_minus_1_m) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Montgomery
// ---------------------------------------------------------------------------

Montgomery::Montgomery(const BigInt& modulus) : n_(modulus) {
  if (!n_.is_odd() || n_.bit_length() < 2) {
    throw std::invalid_argument("Montgomery: modulus must be odd and > 1");
  }
  k_ = n_.limbs_.size();

  // n0_inv = -n^{-1} mod 2^64 via Newton iteration (converges in 6 steps).
  const uint64_t n0 = n_.limbs_[0];
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
  n0_inv_ = ~inv + 1;  // -inv mod 2^64

  // One-time context setup is not metered (per-operation accounting starts
  // at mul/sqr/exp; see DESIGN.md "Performance kernels").
  work::Scope no_meter(nullptr);

  // In-place modular doubling on a k_-limb buffer holding a value < n.
  const uint64_t* nl = n_.limbs_.data();
  const auto dbl_mod = [&](uint64_t* v) {
    uint64_t carry = 0;
    for (size_t i = 0; i < k_; ++i) {
      const uint64_t next = v[i] >> 63;
      v[i] = (v[i] << 1) | carry;
      carry = next;
    }
    bool ge = carry != 0;
    if (!ge) {
      ge = true;
      for (size_t i = k_; i-- > 0;) {
        if (v[i] != nl[i]) {
          ge = v[i] > nl[i];
          break;
        }
      }
    }
    if (ge) {
      uint64_t borrow = 0;
      for (size_t i = 0; i < k_; ++i) {
        const uint64_t lhs = v[i];
        const uint64_t diff = lhs - nl[i];
        v[i] = diff - borrow;
        borrow = (lhs < nl[i]) + (diff < borrow);
      }
    }
  };

  // R mod n, R = 2^(64k): start from 2^(bits-1) (already < n) and double
  // the remaining 64k - (bits-1) times — at most ~127 cheap limb passes
  // instead of 64k BigInt rounds.
  const size_t bits = n_.bit_length();
  std::vector<uint64_t> r(k_, 0);
  r[(bits - 1) / 64] = uint64_t{1} << ((bits - 1) % 64);
  for (size_t i = bits - 1; i < 64 * k_; ++i) dbl_mod(r.data());
  r_mod_n_ = from_limbs(r.data());

  // R^2 mod n via the identity mont_mul(2^(64k+a), 2^(64k+b)) = 2^(64k+a+b)
  // mod n: square-and-double the offset up from 0 to 64k in log2(64k) steps.
  const size_t target = 64 * k_;
  std::vector<uint64_t> g = r;
  for (size_t bit = size_t{1} << (std::bit_width(target) - 1); bit != 0;
       bit >>= 1) {
    mont_mul_limbs(g.data(), g.data(), g.data());  // offset j -> 2j
    if (target & bit) dbl_mod(g.data());           // offset 2j -> 2j + 1
  }
  r2_mod_n_ = from_limbs(g.data());

  // Radix-52 IFMA backend, when the CPU and the modulus size support it.
  if (ifma::available() && k_ >= 8) {
    // R52 = 2^(52 l) mod n, reached from R = 2^(64k) mod n by doubling
    // the remaining 52l - 64k (< 64) times.
    std::vector<uint64_t> r52 = r;
    for (size_t i = 64 * k_; i < 52 * ifma::limbs52(k_); ++i)
      dbl_mod(r52.data());
    const BigInt r52sq = mul_mod(from_limbs(r52.data()), from_limbs(r52.data()));
    std::vector<uint64_t> n64(k_, 0), r52sq64(k_, 0);
    load_limbs(n_, n64.data());
    load_limbs(r52sq, r52sq64.data());
    ifma::init(ifma_, n64.data(), k_, n0_inv_, r52sq64.data());
  }
}

namespace {

// Reusable per-thread limb scratch so the hot kernels never heap-allocate
// in steady state. Montgomery contexts are shared (DhGroup statics), so the
// scratch cannot live on the context itself.
uint64_t* scratch_limbs(size_t n) {
  thread_local std::vector<uint64_t> buf;
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

// Exponent digit d_w: bits [4w, 4w+3] of e.
uint64_t exp_digit(const BigInt& e, size_t w) {
  uint64_t d = 0;
  for (size_t b = 0; b < 4; ++b) {
    if (e.bit(4 * w + b)) d |= uint64_t{1} << b;
  }
  return d;
}

}  // namespace

void Montgomery::load_limbs(const BigInt& x, uint64_t* out) const {
  const size_t n = std::min(x.limbs_.size(), k_);
  std::fill(out + n, out + k_, 0);
  std::copy_n(x.limbs_.begin(), n, out);
}

BigInt Montgomery::from_limbs(const uint64_t* x) const {
  BigInt out;
  out.limbs_.assign(x, x + k_);
  out.trim();
  return out;
}

void Montgomery::mont_mul_limbs(const uint64_t* a, const uint64_t* b,
                                uint64_t* out) const {
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication.
  work::charge_limb_muladds(2 * static_cast<uint64_t>(k_) * k_ + 2 * k_);

  uint64_t* t = scratch_limbs(k_ + 2);
  std::fill(t, t + k_ + 2, 0);
  const uint64_t* n = n_.limbs_.data();

  for (size_t i = 0; i < k_; ++i) {
    const uint64_t ai = a[i];
    // t += ai * b
    uint64_t carry = 0;
    for (size_t j = 0; j < k_; ++j) {
      const u128 cur = static_cast<u128>(ai) * b[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    {
      const u128 cur = static_cast<u128>(t[k_]) + carry;
      t[k_] = static_cast<uint64_t>(cur);
      t[k_ + 1] = static_cast<uint64_t>(cur >> 64);
    }
    // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
    const uint64_t m = t[0] * n0_inv_;
    {
      const u128 cur = static_cast<u128>(m) * n[0] + t[0];
      carry = static_cast<uint64_t>(cur >> 64);
    }
    for (size_t j = 1; j < k_; ++j) {
      const u128 cur = static_cast<u128>(m) * n[j] + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    {
      const u128 cur = static_cast<u128>(t[k_]) + carry;
      t[k_ - 1] = static_cast<uint64_t>(cur);
      t[k_] = t[k_ + 1] + static_cast<uint64_t>(cur >> 64);
      t[k_ + 1] = 0;
    }
  }

  // Result is in t[0..k_]; one conditional subtraction brings it below n.
  bool ge = t[k_] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = k_; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    uint64_t borrow = 0;
    for (size_t i = 0; i < k_; ++i) {
      const uint64_t lhs = t[i];
      const uint64_t diff = lhs - n[i];
      const uint64_t out_limb = diff - borrow;
      borrow = (lhs < n[i]) + (diff < borrow);
      out[i] = out_limb;
    }
  } else {
    std::copy(t, t + k_, out);
  }
}

void Montgomery::mont_sqr_limbs(const uint64_t* a, uint64_t* out) const {
  // Symmetric product (k(k+1)/2 multiplies) + separated Montgomery
  // reduction (k^2 + k multiplies) — ~0.75x the multiplies of mul().
  work::charge_limb_muladds(static_cast<uint64_t>(k_) * (k_ + 1) / 2 +
                            static_cast<uint64_t>(k_) * k_ + k_);

  uint64_t* t = scratch_limbs(2 * k_ + 1 + k_ + 2) + k_ + 2;  // after mul scratch
  std::fill(t, t + 2 * k_ + 1, 0);
  const uint64_t* n = n_.limbs_.data();

  // Cross products a_i * a_j for i < j.
  for (size_t i = 0; i + 1 < k_; ++i) {
    uint64_t carry = 0;
    for (size_t j = i + 1; j < k_; ++j) {
      const u128 cur = static_cast<u128>(a[i]) * a[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    t[i + k_] = carry;  // first write at this position (see loop bounds)
  }
  // Double the cross products: t <<= 1.
  uint64_t shift_carry = 0;
  for (size_t i = 0; i < 2 * k_; ++i) {
    const uint64_t next_carry = t[i] >> 63;
    t[i] = (t[i] << 1) | shift_carry;
    shift_carry = next_carry;
  }
  // Add the diagonal squares a_i^2 at position 2i.
  uint64_t carry = 0;
  for (size_t i = 0; i < k_; ++i) {
    const u128 lo = static_cast<u128>(a[i]) * a[i] + t[2 * i] + carry;
    t[2 * i] = static_cast<uint64_t>(lo);
    const u128 hi = static_cast<u128>(t[2 * i + 1]) +
                    static_cast<uint64_t>(lo >> 64);
    t[2 * i + 1] = static_cast<uint64_t>(hi);
    carry = static_cast<uint64_t>(hi >> 64);
  }
  // carry is zero here: a^2 < R^2 fits exactly in 2k limbs.

  // Montgomery reduction of the 2k-limb product.
  for (size_t i = 0; i < k_; ++i) {
    const uint64_t m = t[i] * n0_inv_;
    uint64_t c = 0;
    for (size_t j = 0; j < k_; ++j) {
      const u128 cur = static_cast<u128>(m) * n[j] + t[i + j] + c;
      t[i + j] = static_cast<uint64_t>(cur);
      c = static_cast<uint64_t>(cur >> 64);
    }
    for (size_t idx = i + k_; c != 0; ++idx) {
      const u128 cur = static_cast<u128>(t[idx]) + c;
      t[idx] = static_cast<uint64_t>(cur);
      c = static_cast<uint64_t>(cur >> 64);
    }
  }

  // Result is t[k_..2k_] (2k_ inclusive for the possible top carry).
  const uint64_t* r = t + k_;
  bool ge = t[2 * k_] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = k_; i-- > 0;) {
      if (r[i] != n[i]) {
        ge = r[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    uint64_t borrow = 0;
    for (size_t i = 0; i < k_; ++i) {
      const uint64_t lhs = r[i];
      const uint64_t diff = lhs - n[i];
      const uint64_t out_limb = diff - borrow;
      borrow = (lhs < n[i]) + (diff < borrow);
      out[i] = out_limb;
    }
  } else {
    std::copy(r, r + k_, out);
  }
}

// Scratch layout (single allocation, indices into one thread-local buffer):
//   [0, k+2)          mont_mul_limbs working row
//   [k+2, 3k+3)       mont_sqr_limbs 2k+1-limb product
//   [3k+3, 4k+3)      staged operand a
//   [4k+3, 5k+3)      staged operand b
// The kernels only ever request prefixes of the same buffer, so pointers
// taken after the initial full-size request stay valid.

BigInt Montgomery::mul(const BigInt& a_mont, const BigInt& b_mont) const {
  uint64_t* buf = scratch_limbs(5 * k_ + 3);
  uint64_t* a = buf + 3 * k_ + 3;
  uint64_t* b = buf + 4 * k_ + 3;
  load_limbs(a_mont, a);
  load_limbs(b_mont, b);
  mont_mul_limbs(a, b, a);
  return from_limbs(a);
}

BigInt Montgomery::sqr(const BigInt& a_mont) const {
  uint64_t* a = scratch_limbs(5 * k_ + 3) + 3 * k_ + 3;
  load_limbs(a_mont, a);
  mont_sqr_limbs(a, a);
  return from_limbs(a);
}

BigInt Montgomery::to_mont(const BigInt& x) const {
  BigInt reduced = x.cmp(n_) >= 0 ? x.mod(n_) : x;
  return mul(reduced, r2_mod_n_);
}

BigInt Montgomery::from_mont(const BigInt& x) const {
  return mul(x, BigInt(1));
}

BigInt Montgomery::mul_mod(const BigInt& a, const BigInt& b) const {
  return from_mont(mul(to_mont(a), to_mont(b)));
}

BigInt Montgomery::exp(const BigInt& base, const BigInt& e) const {
  if (e.is_zero()) return BigInt(1).mod(n_);
  if (ifma_) return exp_ifma(base, e);

  // Fixed 4-bit-window ladder: precompute base^0..base^15 in the
  // Montgomery domain, then per window 4 dedicated squarings plus at most
  // one multiply. Vs. binary square-and-multiply this trades ~bits/2
  // multiplies for 14 table entries and runs every inner op on raw limb
  // buffers (no BigInt allocation in the loop).
  const BigInt base_m = to_mont(base);
  std::vector<uint64_t> table(16 * k_);
  load_limbs(r_mod_n_, table.data());  // base^0 = 1 in the Montgomery domain
  load_limbs(base_m, table.data() + k_);
  for (size_t d = 2; d < 16; ++d) {
    mont_mul_limbs(table.data() + (d - 1) * k_, table.data() + k_,
                   table.data() + d * k_);
  }

  const size_t nwin = (e.bit_length() + 3) / 4;
  std::vector<uint64_t> acc(k_);
  // Top window is non-zero (it contains the exponent's MSB).
  std::copy_n(table.data() + exp_digit(e, nwin - 1) * k_, k_, acc.data());
  for (size_t w = nwin - 1; w-- > 0;) {
    mont_sqr_limbs(acc.data(), acc.data());
    mont_sqr_limbs(acc.data(), acc.data());
    mont_sqr_limbs(acc.data(), acc.data());
    mont_sqr_limbs(acc.data(), acc.data());
    const uint64_t d = exp_digit(e, w);
    if (d != 0) mont_mul_limbs(acc.data(), table.data() + d * k_, acc.data());
  }
  return from_mont(from_limbs(acc.data()));
}

BigInt Montgomery::exp_ifma(const BigInt& base, const BigInt& e) const {
  // Same 4-bit-window ladder as the scalar path, but every Montgomery
  // operation is one radix-52 AMM on the vector backend. The work meter is
  // charged with the canonical 64-bit-limb costs (2k^2+2k per multiply,
  // k(k+1)/2+k^2+k per squaring) so counts are identical to the scalar
  // path — the meter models algorithmic work, not the backend (DESIGN.md).
  const uint64_t c_mul = 2 * static_cast<uint64_t>(k_) * k_ + 2 * k_;
  const uint64_t c_sqr = static_cast<uint64_t>(k_) * (k_ + 1) / 2 +
                         static_cast<uint64_t>(k_) * k_ + k_;
  const size_t lp = ifma_.lp;

  // table[d] = base^d in the R52 Montgomery domain, values in [0, 2n).
  std::vector<uint64_t> table(16 * lp), x52(lp, 0);
  std::copy(ifma_.one_dom.begin(), ifma_.one_dom.end(), table.begin());
  {
    const BigInt reduced = base.cmp(n_) >= 0 ? base.mod(n_) : base;
    std::vector<uint64_t> x64(k_, 0);
    load_limbs(reduced, x64.data());
    ifma::to52(x64.data(), k_, x52.data(), lp);
  }
  work::charge_limb_muladds(c_mul);  // domain entry (to_mont analogue)
  ifma::amm(ifma_, x52.data(), ifma_.r52sq.data(), table.data() + lp);
  for (size_t d = 2; d < 16; ++d) {
    work::charge_limb_muladds(c_mul);
    ifma::amm(ifma_, table.data() + (d - 1) * lp, table.data() + lp,
              table.data() + d * lp);
  }

  const size_t nwin = (e.bit_length() + 3) / 4;
  std::vector<uint64_t> acc(lp);
  std::copy_n(table.data() + exp_digit(e, nwin - 1) * lp, lp, acc.data());
  for (size_t w = nwin - 1; w-- > 0;) {
    work::charge_limb_muladds(4 * c_sqr);
    for (int s = 0; s < 4; ++s) ifma::amm(ifma_, acc.data(), acc.data(), acc.data());
    const uint64_t d = exp_digit(e, w);
    if (d != 0) {
      work::charge_limb_muladds(c_mul);
      ifma::amm(ifma_, acc.data(), table.data() + d * lp, acc.data());
    }
  }

  // Domain exit (from_mont analogue), then canonicalize from [0, 2n).
  work::charge_limb_muladds(c_mul);
  std::fill(x52.begin(), x52.end(), 0);
  x52[0] = 1;
  ifma::amm(ifma_, acc.data(), x52.data(), acc.data());
  ifma::reduce_once(ifma_, acc.data());
  std::vector<uint64_t> out64(k_, 0);
  ifma::from52(acc.data(), lp, out64.data(), k_);
  return from_limbs(out64.data());
}

// ---------------------------------------------------------------------------
// FixedBaseTable
// ---------------------------------------------------------------------------

FixedBaseTable::FixedBaseTable(const Montgomery& ctx, const BigInt& base,
                               size_t max_exp_bits)
    : ctx_(&ctx), base_(base), windows_((max_exp_bits + 3) / 4) {
  // One-time setup: like Montgomery-context construction, precomputation is
  // not charged to the work meter (per-operation accounting starts at
  // power(); see DESIGN.md "Performance kernels").
  work::Scope no_meter(nullptr);

  if (ctx.ifma_) {
    // Build the table directly in the radix-52 domain.
    const ifma::Ctx& fc = ctx.ifma_;
    const size_t lp = fc.lp;
    table52_.assign(windows_ * 16 * lp, 0);
    std::vector<uint64_t> base52(lp, 0);
    {
      const BigInt reduced =
          base.cmp(ctx.modulus()) >= 0 ? base.mod(ctx.modulus()) : base;
      std::vector<uint64_t> b64(ctx.limbs(), 0);
      ctx.load_limbs(reduced, b64.data());
      ifma::to52(b64.data(), ctx.limbs(), base52.data(), lp);
    }
    for (size_t w = 0; w < windows_; ++w) {
      uint64_t* slot = table52_.data() + w * 16 * lp;
      std::copy_n(fc.one_dom.data(), lp, slot);  // d = 0
      if (w == 0) {
        ifma::amm(fc, base52.data(), fc.r52sq.data(), slot + lp);
      } else {
        const uint64_t* prev = entry52(w - 1, 1);
        std::copy_n(prev, lp, slot + lp);
        for (int s = 0; s < 4; ++s)
          ifma::amm(fc, slot + lp, slot + lp, slot + lp);
      }
      for (uint64_t d = 2; d < 16; ++d) {
        ifma::amm(fc, slot + (d - 1) * lp, slot + lp, slot + d * lp);
      }
    }
    return;
  }

  const size_t k = ctx.limbs();
  table_.assign(windows_ * 16 * k, 0);
  std::vector<uint64_t> one(k), base_m(k);
  ctx.load_limbs(ctx.r_mod_n_, one.data());
  ctx.load_limbs(ctx.to_mont(base), base_m.data());

  for (size_t w = 0; w < windows_; ++w) {
    uint64_t* slot = table_.data() + w * 16 * k;
    std::copy_n(one.data(), k, slot);  // d = 0
    if (w == 0) {
      std::copy_n(base_m.data(), k, slot + k);
    } else {
      // base^(16^w) = (base^(16^(w-1)))^16: four squarings.
      const uint64_t* prev = entry(w - 1, 1);
      std::copy_n(prev, k, slot + k);
      for (int s = 0; s < 4; ++s) ctx.mont_sqr_limbs(slot + k, slot + k);
    }
    for (uint64_t d = 2; d < 16; ++d) {
      ctx.mont_mul_limbs(slot + (d - 1) * k, slot + k, slot + d * k);
    }
  }
}

BigInt FixedBaseTable::power(const BigInt& e) const {
  if ((e.bit_length() + 3) / 4 > windows_) return ctx_->exp(base_, e);
  if (e.is_zero()) return BigInt(1).mod(ctx_->modulus());
  const size_t nwin = (e.bit_length() + 3) / 4;

  if (ctx_->ifma_) {
    const ifma::Ctx& fc = ctx_->ifma_;
    const uint64_t c_mul = 2 * static_cast<uint64_t>(ctx_->k_) * ctx_->k_ +
                           2 * ctx_->k_;
    std::vector<uint64_t> acc(fc.lp);
    std::copy_n(fc.one_dom.data(), fc.lp, acc.data());
    for (size_t w = 0; w < nwin; ++w) {
      const uint64_t d = exp_digit(e, w);
      if (d != 0) {
        work::charge_limb_muladds(c_mul);
        ifma::amm(fc, acc.data(), entry52(w, d), acc.data());
      }
    }
    work::charge_limb_muladds(c_mul);  // domain exit (from_mont analogue)
    std::vector<uint64_t> one(fc.lp, 0);
    one[0] = 1;
    ifma::amm(fc, acc.data(), one.data(), acc.data());
    ifma::reduce_once(fc, acc.data());
    std::vector<uint64_t> out64(ctx_->k_, 0);
    ifma::from52(acc.data(), fc.lp, out64.data(), ctx_->k_);
    return ctx_->from_limbs(out64.data());
  }

  const size_t k = ctx_->limbs();
  std::vector<uint64_t> acc(k);
  ctx_->load_limbs(ctx_->r_mod_n_, acc.data());
  for (size_t w = 0; w < nwin; ++w) {
    const uint64_t d = exp_digit(e, w);
    if (d != 0) ctx_->mont_mul_limbs(acc.data(), entry(w, d), acc.data());
  }
  return ctx_->from_mont(ctx_->from_limbs(acc.data()));
}

}  // namespace tenet::crypto
