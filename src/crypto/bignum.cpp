#include "crypto/bignum.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/rng.h"
#include "crypto/work.h"

namespace tenet::crypto {

using u128 = unsigned __int128;

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt::BigInt(uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

BigInt BigInt::from_hex(std::string_view hex) {
  return from_bytes_be(hex_decode(hex));
}

BigInt BigInt::from_bytes_be(BytesView bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 7) / 8, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    // byte i (from MSB) lands at bit position 8*(size-1-i).
    const size_t bitpos = 8 * (bytes.size() - 1 - i);
    out.limbs_[bitpos / 64] |= static_cast<uint64_t>(bytes[i]) << (bitpos % 64);
  }
  out.trim();
  return out;
}

Bytes BigInt::to_bytes_be() const {
  const size_t bits = bit_length();
  return to_bytes_be((bits + 7) / 8);
}

Bytes BigInt::to_bytes_be(size_t width) const {
  if (bit_length() > width * 8) {
    throw std::invalid_argument("BigInt::to_bytes_be: value too wide");
  }
  Bytes out(width, 0);
  for (size_t i = 0; i < width; ++i) {
    const size_t bitpos = 8 * (width - 1 - i);
    const size_t limb = bitpos / 64;
    if (limb < limbs_.size()) {
      out[i] = static_cast<uint8_t>(limbs_[limb] >> (bitpos % 64));
    }
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = hex_encode(to_bytes_be());
  const size_t nz = s.find_first_not_of('0');
  return s.substr(nz);
}

size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const uint64_t top = limbs_.back();
  return (limbs_.size() - 1) * 64 + (64 - static_cast<size_t>(__builtin_clzll(top)));
}

bool BigInt::bit(size_t i) const {
  const size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigInt::cmp(const BigInt& o) const {
  if (limbs_.size() != o.limbs_.size()) {
    return limbs_.size() < o.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::add(const BigInt& o) const {
  BigInt out;
  const size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.assign(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    const u128 sum = static_cast<u128>(i < limbs_.size() ? limbs_[i] : 0) +
                     (i < o.limbs_.size() ? o.limbs_[i] : 0) + carry;
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.trim();
  return out;
}

BigInt BigInt::sub(const BigInt& o) const {
  if (cmp(o) < 0) throw std::underflow_error("BigInt::sub: negative result");
  BigInt out;
  out.limbs_.assign(limbs_.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t rhs = i < o.limbs_.size() ? o.limbs_[i] : 0;
    const uint64_t lhs = limbs_[i];
    uint64_t diff = lhs - rhs;
    const uint64_t borrow1 = lhs < rhs ? 1u : 0u;
    const uint64_t diff2 = diff - borrow;
    const uint64_t borrow2 = diff < borrow ? 1u : 0u;
    out.limbs_[i] = diff2;
    borrow = borrow1 + borrow2;
  }
  out.trim();
  return out;
}

BigInt BigInt::mul(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt{};
  BigInt out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  work::charge_limb_muladds(static_cast<uint64_t>(limbs_.size()) * o.limbs_.size());
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < o.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(limbs_[i]) * o.limbs_[j] +
                       out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limbs_[i + o.limbs_.size()] = carry;
  }
  out.trim();
  return out;
}

BigInt BigInt::shl(size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const size_t limb_shift = bits / 64;
  const size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift == 0 ? limbs_[i] : (limbs_[i] << bit_shift);
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::shr(size_t bits) const {
  const size_t limb_shift = bits / 64;
  const size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigInt{};
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = bit_shift == 0 ? limbs_[i + limb_shift]
                                   : (limbs_[i + limb_shift] >> bit_shift);
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

DivRem BigInt::div_rem(const BigInt& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigInt::div_rem: divide by zero");
  if (cmp(divisor) < 0) return {BigInt{}, *this};

  const size_t shift = bit_length() - divisor.bit_length();
  BigInt rem = *this;
  BigInt quot;
  quot.limbs_.assign(shift / 64 + 1, 0);
  BigInt d = divisor.shl(shift);
  for (size_t i = shift + 1; i-- > 0;) {
    if (rem.cmp(d) >= 0) {
      rem = rem.sub(d);
      quot.limbs_[i / 64] |= uint64_t{1} << (i % 64);
    }
    d = d.shr(1);
  }
  quot.trim();
  return {quot, rem};
}

BigInt BigInt::mod(const BigInt& m) const { return div_rem(m).remainder; }

BigInt BigInt::mod_mul(const BigInt& a, const BigInt& b, const BigInt& m) {
  const Montgomery ctx(m);
  return ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
}

BigInt BigInt::mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  const Montgomery ctx(m);
  return ctx.exp(base, exp);
}

BigInt BigInt::random_range(Drbg& rng, const BigInt& lo, const BigInt& hi) {
  if (lo.cmp(hi) >= 0) throw std::invalid_argument("BigInt::random_range: lo >= hi");
  const BigInt span = hi.sub(lo);
  const size_t bytes = (span.bit_length() + 7) / 8;
  // Rejection sampling over the minimal byte width.
  for (;;) {
    BigInt candidate = from_bytes_be(rng.bytes(bytes));
    if (candidate.cmp(span) < 0) return lo.add(candidate);
  }
}

bool BigInt::probably_prime(const BigInt& n, int rounds, Drbg& rng) {
  const BigInt one(1), two(2), three(3);
  if (n.cmp(two) < 0) return false;
  if (n == two || n == three) return true;
  if (!n.is_odd()) return false;

  // Quick trial division by small primes.
  static constexpr uint64_t kSmallPrimes[] = {3,  5,  7,  11, 13, 17, 19, 23,
                                              29, 31, 37, 41, 43, 47, 53, 59};
  for (uint64_t p : kSmallPrimes) {
    const BigInt bp(p);
    if (n == bp) return true;
    if (n.mod(bp).is_zero()) return false;
  }

  // n - 1 = d * 2^s with d odd.
  const BigInt n_minus_1 = n.sub(one);
  BigInt d = n_minus_1;
  size_t s = 0;
  while (!d.is_odd()) {
    d = d.shr(1);
    ++s;
  }

  const Montgomery ctx(n);
  for (int round = 0; round < rounds; ++round) {
    const BigInt a = random_range(rng, two, n_minus_1);
    BigInt x = ctx.exp(a, d);
    if (x == one || x == n_minus_1) continue;
    bool composite = true;
    for (size_t i = 0; i + 1 < s; ++i) {
      x = ctx.from_mont(ctx.mul(ctx.to_mont(x), ctx.to_mont(x)));
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Montgomery
// ---------------------------------------------------------------------------

Montgomery::Montgomery(const BigInt& modulus) : n_(modulus) {
  if (!n_.is_odd() || n_.bit_length() < 2) {
    throw std::invalid_argument("Montgomery: modulus must be odd and > 1");
  }
  k_ = n_.limbs_.size();

  // n0_inv = -n^{-1} mod 2^64 via Newton iteration (converges in 6 steps).
  const uint64_t n0 = n_.limbs_[0];
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
  n0_inv_ = ~inv + 1;  // -inv mod 2^64

  // R mod n by repeated doubling of 1: R = 2^(64k).
  BigInt r(1);
  for (size_t i = 0; i < 64 * k_; ++i) {
    r = r.shl(1);
    if (r.cmp(n_) >= 0) r = r.sub(n_);
  }
  r_mod_n_ = r;
  // R^2 mod n: double 64k more times.
  for (size_t i = 0; i < 64 * k_; ++i) {
    r = r.shl(1);
    if (r.cmp(n_) >= 0) r = r.sub(n_);
  }
  r2_mod_n_ = r;
}

BigInt Montgomery::mul(const BigInt& a_mont, const BigInt& b_mont) const {
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication.
  work::charge_limb_muladds(2 * static_cast<uint64_t>(k_) * k_ + 2 * k_);

  std::vector<uint64_t> t(k_ + 2, 0);
  const auto limb = [](const BigInt& x, size_t i) {
    return i < x.limbs_.size() ? x.limbs_[i] : 0;
  };

  for (size_t i = 0; i < k_; ++i) {
    const uint64_t ai = limb(a_mont, i);
    // t += ai * b
    uint64_t carry = 0;
    for (size_t j = 0; j < k_; ++j) {
      const u128 cur = static_cast<u128>(ai) * limb(b_mont, j) + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    {
      const u128 cur = static_cast<u128>(t[k_]) + carry;
      t[k_] = static_cast<uint64_t>(cur);
      t[k_ + 1] = static_cast<uint64_t>(cur >> 64);
    }
    // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
    const uint64_t m = t[0] * n0_inv_;
    carry = 0;
    {
      const u128 cur = static_cast<u128>(m) * n_.limbs_[0] + t[0];
      carry = static_cast<uint64_t>(cur >> 64);
    }
    for (size_t j = 1; j < k_; ++j) {
      const u128 cur = static_cast<u128>(m) * n_.limbs_[j] + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    {
      const u128 cur = static_cast<u128>(t[k_]) + carry;
      t[k_ - 1] = static_cast<uint64_t>(cur);
      t[k_] = t[k_ + 1] + static_cast<uint64_t>(cur >> 64);
      t[k_ + 1] = 0;
    }
  }

  BigInt out;
  out.limbs_.assign(t.begin(), t.begin() + static_cast<ptrdiff_t>(k_ + 1));
  out.trim();
  if (out.cmp(n_) >= 0) out = out.sub(n_);
  return out;
}

BigInt Montgomery::to_mont(const BigInt& x) const {
  BigInt reduced = x.cmp(n_) >= 0 ? x.mod(n_) : x;
  return mul(reduced, r2_mod_n_);
}

BigInt Montgomery::from_mont(const BigInt& x) const {
  return mul(x, BigInt(1));
}

BigInt Montgomery::exp(const BigInt& base, const BigInt& e) const {
  if (e.is_zero()) return BigInt(1).mod(n_);
  const BigInt base_m = to_mont(base);
  BigInt acc = r_mod_n_;  // 1 in the Montgomery domain
  for (size_t i = e.bit_length(); i-- > 0;) {
    acc = mul(acc, acc);
    if (e.bit(i)) acc = mul(acc, base_m);
  }
  return from_mont(acc);
}

}  // namespace tenet::crypto
