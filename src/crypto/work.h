// Primitive-operation work accounting.
//
// The paper's evaluation metric is *instruction counts*, measured by the
// OpenSGX emulator. We reproduce the same metric at library level: every
// crypto primitive reports the algorithmic work it actually performed
// (compression-function blocks, cipher blocks, bignum limb multiply-adds,
// bytes moved). The SGX cost model (sgx/cost_model.h) installs a thread-
// local WorkCounters sink and later converts these counts into "normal
// instructions" using calibrated per-op constants.
//
// Layering: crypto knows nothing about SGX; it only increments whichever
// sink is installed. With no sink installed, charging is a no-op.
#pragma once

#include <cstdint>

namespace tenet::crypto {

/// Raw operation counts reported by the crypto substrate.
struct WorkCounters {
  uint64_t sha256_blocks = 0;       ///< 64-byte compression invocations
  uint64_t aes_blocks = 0;          ///< 16-byte block encryptions
  uint64_t aes_key_schedules = 0;   ///< AES-128 key expansions
  uint64_t chacha_blocks = 0;       ///< 64-byte ChaCha20 blocks
  uint64_t limb_muladds = 0;        ///< 64x64->128 multiply-accumulates
  uint64_t bytes_moved = 0;         ///< bulk byte copies inside primitives
  uint64_t alu_ops = 0;             ///< generic application compute steps

  WorkCounters& operator+=(const WorkCounters& o) {
    sha256_blocks += o.sha256_blocks;
    aes_blocks += o.aes_blocks;
    aes_key_schedules += o.aes_key_schedules;
    chacha_blocks += o.chacha_blocks;
    limb_muladds += o.limb_muladds;
    bytes_moved += o.bytes_moved;
    alu_ops += o.alu_ops;
    return *this;
  }
};

namespace work {

/// One field of WorkCounters, for observers.
enum class Kind : uint8_t {
  kSha256Block,
  kAesBlock,
  kAesKeySchedule,
  kChachaBlock,
  kLimbMuladd,
  kByteMoved,
  kAluOp,
};

/// Optional process-wide observer, invoked for every charge that lands in
/// an installed sink (never when accounting is off). Crypto stays ignorant
/// of the consumer: the SGX cost layer installs one to mirror work into
/// the telemetry tracer. Returns the previous observer.
using Observer = void (*)(Kind kind, uint64_t n);
Observer set_observer(Observer obs);

/// Installs `sink` as the current thread's accounting target and returns
/// the previous sink (restore it when done). Pass nullptr to disable.
WorkCounters* install(WorkCounters* sink);

/// Current sink (nullptr when accounting is off).
WorkCounters* current();

void charge_sha256_blocks(uint64_t n);
void charge_aes_blocks(uint64_t n);
void charge_aes_key_schedule(uint64_t n);
void charge_chacha_blocks(uint64_t n);
void charge_limb_muladds(uint64_t n);
void charge_bytes_moved(uint64_t n);
void charge_alu(uint64_t n);

/// RAII: installs a sink for the current scope.
class Scope {
 public:
  explicit Scope(WorkCounters* sink) : prev_(install(sink)) {}
  ~Scope() { install(prev_); }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  WorkCounters* prev_;
};

}  // namespace work
}  // namespace tenet::crypto
