#include "crypto/bytes.h"

#include <cctype>
#include <stdexcept>

namespace tenet::crypto {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string hex_encode(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Bytes hex_decode(std::string_view hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  int hi = -1;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const int nib = hex_nibble(c);
    if (nib < 0) throw std::invalid_argument("hex_decode: bad digit");
    if (hi < 0) {
      hi = nib;
    } else {
      out.push_back(static_cast<uint8_t>((hi << 4) | nib));
      hi = -1;
    }
  }
  if (hi >= 0) throw std::invalid_argument("hex_decode: odd length");
  return out;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

void append_u32(Bytes& dst, uint32_t v) {
  dst.push_back(static_cast<uint8_t>(v >> 24));
  dst.push_back(static_cast<uint8_t>(v >> 16));
  dst.push_back(static_cast<uint8_t>(v >> 8));
  dst.push_back(static_cast<uint8_t>(v));
}

void append_u64(Bytes& dst, uint64_t v) {
  append_u32(dst, static_cast<uint32_t>(v >> 32));
  append_u32(dst, static_cast<uint32_t>(v));
}

uint32_t read_u32(BytesView src, size_t off) {
  if (off + 4 > src.size()) throw std::out_of_range("read_u32");
  return (static_cast<uint32_t>(src[off]) << 24) |
         (static_cast<uint32_t>(src[off + 1]) << 16) |
         (static_cast<uint32_t>(src[off + 2]) << 8) |
         static_cast<uint32_t>(src[off + 3]);
}

uint64_t read_u64(BytesView src, size_t off) {
  return (static_cast<uint64_t>(read_u32(src, off)) << 32) |
         read_u32(src, off + 4);
}

void append_lv(Bytes& dst, BytesView src) {
  append_u32(dst, static_cast<uint32_t>(src.size()));
  append(dst, src);
}

}  // namespace tenet::crypto
