#include "crypto/schnorr.h"

#include <stdexcept>

#include "crypto/hmac.h"
#include "crypto/rng.h"

namespace tenet::crypto {

namespace {

/// Hash (R || message) and reduce mod q (challenge derivation).
BigInt challenge(const DhGroup& group, const BigInt& r, BytesView message) {
  const Bytes r_bytes = r.to_bytes_be((group.bits() + 7) / 8);
  const Digest d = Sha256::hash_parts({BytesView(r_bytes), message});
  return BigInt::from_bytes_be(BytesView(d.data(), d.size())).mod(group.q());
}

}  // namespace

Bytes SchnorrSignature::serialize(const DhGroup& group) const {
  const size_t w = (group.q().bit_length() + 7) / 8;
  Bytes out;
  append_lv(out, e.to_bytes_be(w));
  append_lv(out, s.to_bytes_be(w));
  return out;
}

SchnorrSignature SchnorrSignature::deserialize(const DhGroup& group,
                                               BytesView wire) {
  Reader r(wire);
  SchnorrSignature sig;
  sig.e = BigInt::from_bytes_be(r.lv());
  sig.s = BigInt::from_bytes_be(r.lv());
  if (sig.e.cmp(group.q()) >= 0 || sig.s.cmp(group.q()) >= 0) {
    throw std::invalid_argument("SchnorrSignature: value out of range");
  }
  return sig;
}

SchnorrPublicKey::SchnorrPublicKey(const DhGroup& group, BigInt y)
    : group_(&group), y_(std::move(y)) {
  if (!group.valid_public(y_)) {
    throw std::invalid_argument("SchnorrPublicKey: invalid y");
  }
}

Bytes SchnorrPublicKey::serialize() const {
  return y_.to_bytes_be((group_->bits() + 7) / 8);
}

SchnorrPublicKey SchnorrPublicKey::deserialize(const DhGroup& group,
                                               BytesView wire) {
  return SchnorrPublicKey(group, BigInt::from_bytes_be(wire));
}

bool SchnorrPublicKey::verify(BytesView message,
                              const SchnorrSignature& sig) const {
  const BigInt& q = group_->q();
  if (sig.e.cmp(q) >= 0 || sig.s.cmp(q) >= 0) return false;
  // R' = g^s * y^(q - e) mod p  (y^(q-e) == y^{-e} since y has order q).
  const BigInt gs = group_->power(sig.s);  // fixed-base fast path
  const BigInt ye = group_->power_of(y_, q.sub(sig.e));
  const BigInt r_prime = group_->mont_p().mul_mod(gs, ye);
  return challenge(*group_, r_prime, message) == sig.e;
}

namespace {
SchnorrPublicKey make_public(const DhGroup& group, const BigInt& x) {
  if (x.is_zero() || x.cmp(group.q()) >= 0) {
    throw std::invalid_argument("SchnorrKeyPair: x out of range");
  }
  return SchnorrPublicKey(group, group.power(x));
}
}  // namespace

SchnorrKeyPair::SchnorrKeyPair(const DhGroup& group, BigInt x)
    : group_(&group), x_(std::move(x)), public_(make_public(group, x_)) {}

SchnorrKeyPair::SchnorrKeyPair(const DhGroup& group, Drbg& rng)
    : SchnorrKeyPair(group, BigInt::random_range(rng, BigInt(1), group.q())) {}

SchnorrKeyPair SchnorrKeyPair::derive(const DhGroup& group, BytesView seed) {
  // Expand the seed to enough bytes to make the mod-q bias negligible.
  const size_t w = (group.q().bit_length() + 7) / 8 + 16;
  const Bytes wide = hkdf(to_bytes("tenet.schnorr.derive"), seed,
                          to_bytes("x"), w);
  BigInt x = BigInt::from_bytes_be(wide).mod(group.q());
  if (x.is_zero()) x = BigInt(1);
  return SchnorrKeyPair(group, std::move(x));
}

SchnorrSignature SchnorrKeyPair::sign(BytesView message, Drbg& rng) const {
  const BigInt k = BigInt::random_range(rng, BigInt(1), group_->q());
  const BigInt r = group_->power(k);
  SchnorrSignature sig;
  sig.e = challenge(*group_, r, message);
  // s = k + e*x mod q.
  // e, x < q, so e*x mod q via the group's cached context and one
  // conditional subtraction for the final reduction (k + ex < 2q).
  const BigInt ex = group_->mont_q().mul_mod(sig.e, x_);
  BigInt s = k.add(ex);
  if (s.cmp(group_->q()) >= 0) s = s.sub(group_->q());
  sig.s = s;
  return sig;
}

SchnorrSignature SchnorrKeyPair::sign_deterministic(BytesView message) const {
  // Nonce = HKDF(x, message), reduced mod q — RFC 6979 in spirit.
  const Bytes x_bytes = x_.to_bytes_be((group_->q().bit_length() + 7) / 8);
  const size_t w = (group_->q().bit_length() + 7) / 8 + 16;
  const Bytes wide = hkdf(x_bytes, message, to_bytes("tenet.schnorr.k"), w);
  BigInt k = BigInt::from_bytes_be(wide).mod(group_->q());
  if (k.is_zero()) k = BigInt(1);

  const BigInt r = group_->power(k);
  SchnorrSignature sig;
  sig.e = challenge(*group_, r, message);
  // e, x < q, so e*x mod q via the group's cached context and one
  // conditional subtraction for the final reduction (k + ex < 2q).
  const BigInt ex = group_->mont_q().mul_mod(sig.e, x_);
  BigInt s = k.add(ex);
  if (s.cmp(group_->q()) >= 0) s = s.sub(group_->q());
  sig.s = s;
  return sig;
}

SchnorrSignature GroupSigner::sign_as_member(BytesView platform_id,
                                             BytesView message) const {
  const Digest bound = Sha256::hash_parts({platform_id, message});
  return key_.sign_deterministic(BytesView(bound.data(), bound.size()));
}

bool GroupSigner::verify_member(BytesView platform_id, BytesView message,
                                const SchnorrSignature& sig) const {
  const Digest bound = Sha256::hash_parts({platform_id, message});
  return key_.public_key().verify(BytesView(bound.data(), bound.size()), sig);
}

}  // namespace tenet::crypto
