#include "crypto/aead.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/multibuf.h"

namespace tenet::crypto {

namespace {

AesKey128 split_aes_key(BytesView key) {
  if (key.size() != Aead::kKeySize) {
    throw std::invalid_argument("Aead: key must be 32 bytes");
  }
  AesKey128 k{};
  std::copy(key.begin(), key.begin() + 16, k.begin());
  return k;
}

inline void store_u64_be(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(v >> (56 - 8 * i));
  }
}

}  // namespace

Aead::Aead(BytesView key)
    : cipher_(split_aes_key(key)), mac_key_(key.subspan(16)) {}

void Aead::seal_into(uint64_t nonce, uint64_t seq, BytesView plaintext,
                     BytesView aad, std::span<uint8_t> out) const {
  if (out.size() != sealed_size(plaintext.size())) {
    throw std::invalid_argument("Aead::seal_into: bad output size");
  }
  store_u64_be(out.data(), nonce);
  store_u64_be(out.data() + 8, seq);
  if (!plaintext.empty()) {
    std::memcpy(out.data() + kHeaderSize, plaintext.data(), plaintext.size());
  }
  // CTR counter starts at seq * 2^20 so records never overlap keystream as
  // long as each record is < 16 MiB. Encrypt in place after the header.
  cipher_.ctr_xor(nonce, seq << 20, out.data() + kHeaderSize,
                  plaintext.size());

  const Digest mac = mac_key_.mac_parts(
      {aad, BytesView(out.data(), kHeaderSize + plaintext.size())});
  std::memcpy(out.data() + kHeaderSize + plaintext.size(), mac.data(),
              kTagSize);
}

Bytes Aead::seal(uint64_t nonce, uint64_t seq, BytesView plaintext,
                 BytesView aad) const {
  Bytes record(sealed_size(plaintext.size()));
  seal_into(nonce, seq, plaintext, aad, std::span<uint8_t>(record));
  return record;
}

void Aead::seal_batch(std::span<const SealJob> jobs) const {
  // Phase 1: headers + plaintext staged into every output buffer.
  for (const SealJob& job : jobs) {
    store_u64_be(job.out, job.nonce);
    store_u64_be(job.out + 8, job.seq);
    if (!job.plaintext.empty()) {
      std::memcpy(job.out + kHeaderSize, job.plaintext.data(),
                  job.plaintext.size());
    }
  }

  // Phase 2: all counter-mode work in one multi-buffer dispatch.
  std::vector<mb::CtrJob> ctr;
  ctr.reserve(jobs.size());
  for (const SealJob& job : jobs) {
    ctr.push_back(mb::CtrJob{job.nonce, job.seq << 20, job.out + kHeaderSize,
                             job.plaintext.size()});
  }
  mb::ctr_xor_batch(cipher_, ctr);

  // Phase 3: all MACs in one dispatch, tags written straight after each
  // ciphertext.
  std::vector<mb::MacJob> macs;
  macs.reserve(jobs.size());
  for (const SealJob& job : jobs) {
    const size_t body = kHeaderSize + job.plaintext.size();
    macs.push_back(mb::MacJob{job.aad, BytesView(job.out, body),
                              job.out + body, kTagSize});
  }
  mb::hmac_batch(mac_key_, macs);
}

std::optional<Bytes> Aead::open(BytesView record, BytesView aad) const {
  if (record.size() < kOverhead) return std::nullopt;
  const BytesView body = record.first(record.size() - kTagSize);
  const BytesView tag = record.subspan(record.size() - kTagSize);

  const Digest mac = mac_key_.mac_parts({aad, body});
  if (!ct_equal(BytesView(mac.data(), kTagSize), tag)) return std::nullopt;

  const uint64_t nonce = read_u64(record, 0);
  const uint64_t seq = read_u64(record, 8);
  const BytesView ct = body.subspan(kHeaderSize);
  Bytes plain(ct.begin(), ct.end());
  cipher_.ctr_xor(nonce, seq << 20, plain.data(), plain.size());
  return plain;
}

std::optional<size_t> Aead::open_in_place(std::span<uint8_t> record,
                                          BytesView aad) const {
  if (record.size() < kOverhead) return std::nullopt;
  const size_t body_len = record.size() - kTagSize;
  const Digest mac =
      mac_key_.mac_parts({aad, BytesView(record.data(), body_len)});
  if (!ct_equal(BytesView(mac.data(), kTagSize),
                BytesView(record.data() + body_len, kTagSize))) {
    return std::nullopt;
  }

  const uint64_t nonce = read_u64(record, 0);
  const uint64_t seq = read_u64(record, 8);
  const size_t pt_len = body_len - kHeaderSize;
  cipher_.ctr_xor(nonce, seq << 20, record.data() + kHeaderSize, pt_len);
  return pt_len;
}

void Aead::verify_batch(std::span<const OpenJob> jobs,
                        std::span<uint8_t> ok) const {
  if (ok.size() != jobs.size()) {
    throw std::invalid_argument("Aead::verify_batch: ok size mismatch");
  }
  // Every parseable record's MAC in one multi-buffer dispatch
  // (encrypt-then-MAC: nothing is decrypted until its tag verifies).
  std::vector<Digest> tags(jobs.size());
  std::vector<mb::MacJob> macs;
  macs.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    const OpenJob& job = jobs[i];
    ok[i] = 0;
    if (job.record.size() < kOverhead) continue;
    const size_t body_len = job.record.size() - kTagSize;
    macs.push_back(mb::MacJob{job.aad, BytesView(job.record.data(), body_len),
                              tags[i].data(), tags[i].size()});
  }
  mb::hmac_batch(mac_key_, macs);
  for (size_t i = 0; i < jobs.size(); ++i) {
    const OpenJob& job = jobs[i];
    if (job.record.size() < kOverhead) continue;
    const size_t body_len = job.record.size() - kTagSize;
    ok[i] = ct_equal(BytesView(tags[i].data(), kTagSize),
                     BytesView(job.record.data() + body_len, kTagSize))
                ? 1
                : 0;
  }
}

void Aead::decrypt_batch(std::span<const std::span<uint8_t>> records) const {
  std::vector<mb::CtrJob> ctr;
  ctr.reserve(records.size());
  for (const std::span<uint8_t> record : records) {
    const BytesView view(record.data(), record.size());
    const uint64_t nonce = read_u64(view, 0);
    const uint64_t seq = read_u64(view, 8);
    ctr.push_back(mb::CtrJob{nonce, seq << 20, record.data() + kHeaderSize,
                             record.size() - kOverhead});
  }
  mb::ctr_xor_batch(cipher_, ctr);
}

void Aead::open_batch(std::span<const OpenJob> jobs,
                      std::span<std::optional<size_t>> results) const {
  if (results.size() != jobs.size()) {
    throw std::invalid_argument("Aead::open_batch: results size mismatch");
  }
  std::vector<uint8_t> ok(jobs.size(), 0);
  verify_batch(jobs, ok);
  std::vector<std::span<uint8_t>> accepted;
  accepted.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (ok[i] == 0) {
      results[i] = std::nullopt;
      continue;
    }
    results[i] = jobs[i].record.size() - kOverhead;
    accepted.push_back(jobs[i].record);
  }
  decrypt_batch(accepted);
}

uint64_t Aead::record_seq(BytesView record) {
  return read_u64(record, 8);
}

}  // namespace tenet::crypto
