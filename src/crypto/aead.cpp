#include "crypto/aead.h"

#include <stdexcept>

#include "crypto/hmac.h"

namespace tenet::crypto {

namespace {
AesKey128 split_aes_key(BytesView key) {
  if (key.size() != Aead::kKeySize) {
    throw std::invalid_argument("Aead: key must be 32 bytes");
  }
  AesKey128 k{};
  std::copy(key.begin(), key.begin() + 16, k.begin());
  return k;
}
}  // namespace

Aead::Aead(BytesView key)
    : cipher_(split_aes_key(key)), mac_key_(key.begin() + 16, key.end()) {}

Bytes Aead::seal(uint64_t nonce, uint64_t seq, BytesView plaintext,
                 BytesView aad) const {
  Bytes record;
  record.reserve(kOverhead + plaintext.size());
  append_u64(record, nonce);
  append_u64(record, seq);
  // CTR counter starts at seq * 2^20 so records never overlap keystream as
  // long as each record is < 16 MiB. Encrypt in place after the header.
  record.insert(record.end(), plaintext.begin(), plaintext.end());
  cipher_.ctr_xor(nonce, seq << 20, record.data() + kHeaderSize,
                  plaintext.size());

  const Digest mac = hmac_sha256_parts(mac_key_, {aad, BytesView(record)});
  record.insert(record.end(), mac.begin(), mac.begin() + kTagSize);
  return record;
}

std::optional<Bytes> Aead::open(BytesView record, BytesView aad) const {
  if (record.size() < kOverhead) return std::nullopt;
  const BytesView body = record.first(record.size() - kTagSize);
  const BytesView tag = record.subspan(record.size() - kTagSize);

  const Digest mac = hmac_sha256_parts(mac_key_, {aad, body});
  if (!ct_equal(BytesView(mac.data(), kTagSize), tag)) return std::nullopt;

  const uint64_t nonce = read_u64(record, 0);
  const uint64_t seq = read_u64(record, 8);
  const BytesView ct = body.subspan(kHeaderSize);
  Bytes plain(ct.begin(), ct.end());
  cipher_.ctr_xor(nonce, seq << 20, plain.data(), plain.size());
  return plain;
}

uint64_t Aead::record_seq(BytesView record) {
  return read_u64(record, 8);
}

}  // namespace tenet::crypto
