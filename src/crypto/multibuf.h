// Multi-buffer record kernels: N independent AES-CTR / HMAC-SHA256 jobs per
// dispatch.
//
// The secure-channel record path seals one record per call today; at a
// million sessions the per-call overhead (counter-block setup, pad schedule,
// dispatch) dominates. These kernels take a whole batch of independent jobs
// and run them through one dispatch: the AES-NI backend pipelines four
// counter blocks per iteration, and the HMAC path resumes from per-key
// cached ipad/opad midstates (HmacKey). Both backends write byte-identical
// output and charge identical canonical work-meter costs — the same
// contract as the PR1 bignum backends — so the PR3/PR5/PR6 replay and
// cost-attribution invariants hold no matter which backend ran.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/aes.h"
#include "crypto/bytes.h"
#include "crypto/hmac.h"

namespace tenet::crypto::mb {

enum class Backend : uint8_t {
  kScalar,   ///< per-job loop over the single-buffer primitives
  kBatched,  ///< multi-buffer dispatch (AES-NI / SHA-NI when available)
};

/// Currently selected backend (default kBatched).
Backend backend();
/// Sets the backend (test hook for equivalence suites); returns previous.
Backend set_backend(Backend b);
/// True when the AES-NI counter-mode kernel is compiled in and supported.
bool aesni_available();

/// One CTR keystream job: XORs keystream(nonce, counter…) into
/// data[0..len). Identical semantics to Aes128::ctr_xor.
struct CtrJob {
  uint64_t nonce = 0;
  uint64_t counter = 0;
  uint8_t* data = nullptr;
  size_t len = 0;
};

/// Runs every job under one dispatch. Byte-identical to calling
/// key.ctr_xor per job; charges the same ⌈len/16⌉ aes_blocks per job.
void ctr_xor_batch(const Aes128& key, std::span<const CtrJob> jobs);

/// One MAC job over the concatenation a‖b (records MAC aad ‖ header ‖
/// ciphertext with aad and record in separate buffers).
struct MacJob {
  BytesView a;
  BytesView b;
  uint8_t* tag_out = nullptr;  ///< first tag_len digest bytes written here
  size_t tag_len = 0;
};

/// MACs every job with the cached key. Byte-identical (per job) to
/// hmac_sha256_parts(key, {a, b}) truncated to tag_len; charges the same
/// canonical sha256_blocks per job.
void hmac_batch(const HmacKey& key, std::span<const MacJob> jobs);

}  // namespace tenet::crypto::mb
