// Authenticated encryption: AES-128-CTR + HMAC-SHA256, encrypt-then-MAC.
//
// This is the record protection used on every secure channel the paper's
// designs bootstrap out of remote attestation (controller<->AS, Tor links,
// endpoint<->middlebox key provisioning).
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/aes.h"
#include "crypto/bytes.h"
#include "crypto/sha256.h"

namespace tenet::crypto {

/// Sealed record layout: [8B nonce | 8B seq | ciphertext | 16B tag].
class Aead {
 public:
  static constexpr size_t kKeySize = 32;  // 16B AES key + 16B MAC key seed
  static constexpr size_t kTagSize = 16;
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kOverhead = kHeaderSize + kTagSize;

  /// `key` must be kKeySize bytes; throws std::invalid_argument otherwise.
  explicit Aead(BytesView key);

  /// Seals `plaintext` with the given nonce/sequence pair; (nonce, seq)
  /// must never repeat under one key — callers use a per-direction nonce
  /// and a monotone sequence number. `aad` is authenticated but not
  /// encrypted.
  [[nodiscard]] Bytes seal(uint64_t nonce, uint64_t seq, BytesView plaintext,
                           BytesView aad = {}) const;

  /// Opens a sealed record; returns nullopt on any authentication failure.
  [[nodiscard]] std::optional<Bytes> open(BytesView record,
                                          BytesView aad = {}) const;

  /// Sequence number carried by a sealed record (for replay windows).
  static uint64_t record_seq(BytesView record);

 private:
  Aes128 cipher_;
  Bytes mac_key_;
};

}  // namespace tenet::crypto
