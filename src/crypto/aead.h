// Authenticated encryption: AES-128-CTR + HMAC-SHA256, encrypt-then-MAC.
//
// This is the record protection used on every secure channel the paper's
// designs bootstrap out of remote attestation (controller<->AS, Tor links,
// endpoint<->middlebox key provisioning).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/aes.h"
#include "crypto/bytes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace tenet::crypto {

/// Sealed record layout: [8B nonce | 8B seq | ciphertext | 16B tag].
class Aead {
 public:
  static constexpr size_t kKeySize = 32;  // 16B AES key + 16B MAC key seed
  static constexpr size_t kTagSize = 16;
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kOverhead = kHeaderSize + kTagSize;

  /// `key` must be kKeySize bytes; throws std::invalid_argument otherwise.
  explicit Aead(BytesView key);

  /// Seals `plaintext` with the given nonce/sequence pair; (nonce, seq)
  /// must never repeat under one key — callers use a per-direction nonce
  /// and a monotone sequence number. `aad` is authenticated but not
  /// encrypted.
  [[nodiscard]] Bytes seal(uint64_t nonce, uint64_t seq, BytesView plaintext,
                           BytesView aad = {}) const;

  /// Opens a sealed record; returns nullopt on any authentication failure.
  [[nodiscard]] std::optional<Bytes> open(BytesView record,
                                          BytesView aad = {}) const;

  /// Exact sealed length for a plaintext of `plaintext_len` bytes.
  static constexpr size_t sealed_size(size_t plaintext_len) {
    return kOverhead + plaintext_len;
  }

  /// Seals into caller-provided storage — `out` must be exactly
  /// sealed_size(plaintext.size()) bytes. Byte-identical to seal(); this is
  /// the zero-copy hook: callers point `out` at a ring-slot or pooled
  /// payload tail instead of allocating an intermediate record.
  void seal_into(uint64_t nonce, uint64_t seq, BytesView plaintext,
                 BytesView aad, std::span<uint8_t> out) const;

  /// One record of a batched seal. `out` must hold
  /// sealed_size(plaintext.size()) bytes.
  struct SealJob {
    uint64_t nonce = 0;
    uint64_t seq = 0;
    BytesView plaintext;
    BytesView aad;
    uint8_t* out = nullptr;
  };

  /// Seals every job through one multi-buffer dispatch (multibuf.h).
  /// Byte-identical to calling seal_into per job, in order, and charges the
  /// same canonical work — only the wall-clock cost is amortized.
  void seal_batch(std::span<const SealJob> jobs) const;

  /// In-place open: on success returns the plaintext length and leaves the
  /// plaintext at record[kHeaderSize .. kHeaderSize+len). The buffer is only
  /// modified after the MAC verifies (encrypt-then-MAC order).
  [[nodiscard]] std::optional<size_t> open_in_place(std::span<uint8_t> record,
                                                    BytesView aad = {}) const;

  /// One record of a batched in-place open.
  struct OpenJob {
    std::span<uint8_t> record;
    BytesView aad;
  };

  /// Opens every job through one multi-buffer MAC dispatch followed by one
  /// CTR dispatch over the records that authenticated. `results` must be
  /// jobs.size() long; results[i] equals open_in_place(jobs[i].record,
  /// jobs[i].aad) — same acceptance, same buffer effects (a failed record
  /// is never modified), same canonical work — only wall clock amortizes.
  void open_batch(std::span<const OpenJob> jobs,
                  std::span<std::optional<size_t>> results) const;

  /// MAC-only half of a batched open: one multi-buffer dispatch, ok[i] != 0
  /// iff jobs[i] authenticates (records shorter than kOverhead stay 0). No
  /// buffer is modified — callers interleave their own acceptance logic
  /// (e.g. SecureChannel's replay window) before decrypting.
  void verify_batch(std::span<const OpenJob> jobs,
                    std::span<uint8_t> ok) const;

  /// CTR half: decrypts records whose tags already verified, in place, in
  /// one dispatch (plaintext lands at record[kHeaderSize..size-kTagSize)).
  void decrypt_batch(std::span<const std::span<uint8_t>> records) const;

  /// Sequence number carried by a sealed record (for replay windows).
  static uint64_t record_seq(BytesView record);

 private:
  Aes128 cipher_;
  HmacKey mac_key_;
};

}  // namespace tenet::crypto
