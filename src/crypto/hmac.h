// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// Every MAC in the system (REPORT MACs, secure-channel records, TLS
// transcript MACs) and every key derivation (EGETKEY, attestation session
// keys) goes through these two primitives.
#pragma once

#include "crypto/bytes.h"
#include "crypto/sha256.h"

namespace tenet::crypto {

/// A prepared HMAC-SHA256 key: the ipad/opad chaining states are computed
/// once at construction, so each MAC skips two compressions. To keep cost
/// traces byte-identical with the uncached path, mac_parts() still charges
/// the two canonical blocks it skipped (the precompute itself is uncharged) —
/// same canonical-cost rule as the PR1 kernel backends.
class HmacKey {
 public:
  HmacKey() = default;
  explicit HmacKey(BytesView key);

  /// HMAC over the concatenation of fragments; byte-identical to
  /// hmac_sha256_parts(key, parts) and charges the same canonical work.
  Digest mac_parts(std::initializer_list<BytesView> parts) const;
  Digest mac(BytesView data) const { return mac_parts({data}); }

  /// Midstates for the multi-buffer kernels (multibuf.h).
  const std::array<uint32_t, 8>& inner_state() const { return inner_; }
  const std::array<uint32_t, 8>& outer_state() const { return outer_; }

 private:
  std::array<uint32_t, 8> inner_{};
  std::array<uint32_t, 8> outer_{};
};

/// HMAC-SHA256 over `data` with `key` (any key length).
Digest hmac_sha256(BytesView key, BytesView data);

/// HMAC over the concatenation of fragments (avoids copies on hot paths).
Digest hmac_sha256_parts(BytesView key, std::initializer_list<BytesView> parts);

/// Verifies an HMAC in constant time.
bool hmac_verify(BytesView key, BytesView data, BytesView mac);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Digest hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: derives `length` bytes from PRK with context `info`.
/// length <= 255*32.
Bytes hkdf_expand(const Digest& prk, BytesView info, size_t length);

/// Extract-then-expand convenience.
Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, size_t length);

}  // namespace tenet::crypto
