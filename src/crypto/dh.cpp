#include "crypto/dh.h"

#include <stdexcept>

#include "crypto/rng.h"

namespace tenet::crypto {

namespace {

// RFC 2409 §6.1 — First Oakley Group (768-bit).
constexpr std::string_view kGroup1P =
    "FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1"
    "29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD"
    "EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245"
    "E485B576 625E7EC6 F44C42E9 A63A3620 FFFFFFFF FFFFFFFF";

// RFC 2409 §6.2 — Second Oakley Group (1024-bit). The paper's DH size.
constexpr std::string_view kGroup2P =
    "FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1"
    "29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD"
    "EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245"
    "E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED"
    "EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE65381"
    "FFFFFFFF FFFFFFFF";

// RFC 3526 §2 — 1536-bit MODP Group.
constexpr std::string_view kGroup5P =
    "FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1"
    "29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD"
    "EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245"
    "E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED"
    "EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D"
    "C2007CB8 A163BF05 98DA4836 1C55D39A 69163FA8 FD24CF5F"
    "83655D23 DCA3AD96 1C62F356 208552BB 9ED52907 7096966D"
    "670C354E 4ABC9804 F1746C08 CA237327 FFFFFFFF FFFFFFFF";

// RFC 3526 §3 — 2048-bit MODP Group.
constexpr std::string_view kGroup14P =
    "FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1"
    "29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD"
    "EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245"
    "E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED"
    "EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D"
    "C2007CB8 A163BF05 98DA4836 1C55D39A 69163FA8 FD24CF5F"
    "83655D23 DCA3AD96 1C62F356 208552BB 9ED52907 7096966D"
    "670C354E 4ABC9804 F1746C08 CA18217C 32905E46 2E36CE3B"
    "E39E772C 180E8603 9B2783A2 EC07A28F B5C55DF0 6F4C52C9"
    "DE2BCBF6 95581718 3995497C EA956AE5 15D22618 98FA0510"
    "15728E5A 8AACAA68 FFFFFFFF FFFFFFFF";

}  // namespace

DhGroup::DhGroup(std::string name, BigInt p, BigInt g)
    : name_(std::move(name)),
      p_(std::move(p)),
      g_(std::move(g)),
      q_(p_.sub(BigInt(1)).shr(1)),
      mont_p_(p_),
      mont_q_(q_),
      // Sized for any exponent < p; verification paths exponentiate by
      // values up to q < p (e.g. y^(q-e) in Schnorr).
      g_pow_(mont_p_, g_, p_.bit_length()) {}

bool DhGroup::valid_public(const BigInt& y) const {
  const BigInt one(1);
  const BigInt p_minus_1 = p_.sub(one);
  return y.cmp(one) > 0 && y.cmp(p_minus_1) < 0;
}

const DhGroup& DhGroup::oakley_group1() {
  static const DhGroup* g =
      new DhGroup("oakley-group1-768", BigInt::from_hex(kGroup1P), BigInt(2));
  return *g;
}

const DhGroup& DhGroup::oakley_group2() {
  static const DhGroup* g =
      new DhGroup("oakley-group2-1024", BigInt::from_hex(kGroup2P), BigInt(2));
  return *g;
}

const DhGroup& DhGroup::modp_group5() {
  static const DhGroup* g =
      new DhGroup("modp-group5-1536", BigInt::from_hex(kGroup5P), BigInt(2));
  return *g;
}

const DhGroup& DhGroup::modp_group14() {
  static const DhGroup* g =
      new DhGroup("modp-group14-2048", BigInt::from_hex(kGroup14P), BigInt(2));
  return *g;
}

DhKeyPair::DhKeyPair(const DhGroup& group, Drbg& rng)
    : group_(&group),
      private_(BigInt::random_range(rng, BigInt(2), group.q())),
      public_(group.power(private_)) {}

Bytes DhKeyPair::public_bytes() const {
  return public_.to_bytes_be((group_->bits() + 7) / 8);
}

Bytes DhKeyPair::shared_secret(const BigInt& peer_public) const {
  if (!group_->valid_public(peer_public)) {
    throw std::invalid_argument("DhKeyPair: invalid peer public value");
  }
  const BigInt secret = group_->power_of(peer_public, private_);
  return secret.to_bytes_be((group_->bits() + 7) / 8);
}

Bytes DhKeyPair::shared_secret(BytesView peer_public_bytes) const {
  return shared_secret(BigInt::from_bytes_be(peer_public_bytes));
}

}  // namespace tenet::crypto
