// SHA-256 (FIPS 180-4), from scratch.
//
// Used for enclave measurements (the SGX "identity" of §2.1 is a SHA-256
// digest of enclave contents), HMAC, HKDF and Schnorr challenges.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.h"

namespace tenet::crypto {

using Digest = std::array<uint8_t, 32>;

/// The raw compression kernel behind Sha256. Split out so the multi-buffer
/// record path (multibuf.h) and the cached-HMAC midstates can drive it
/// directly. The kernel never touches the work meter — callers charge the
/// canonical one-block cost themselves, so the portable and SHA-NI backends
/// stay cost-identical (same rule as the PR1 bignum backends).
namespace sha256_kernel {

/// FIPS 180-4 §5.3.3 initial chaining value.
extern const std::array<uint32_t, 8> kInitState;

/// True when the SHA-NI backend is compiled in and the CPU supports it.
bool accelerated();

/// Test hook: force the portable kernel even when SHA-NI is available.
/// Returns the previous setting.
bool force_portable(bool on);

/// Compresses `n` consecutive 64-byte blocks into `state`. Uncharged.
void compress(std::array<uint32_t, 8>& state, const uint8_t* blocks, size_t n);

}  // namespace sha256_kernel

/// Incremental SHA-256. Streaming interface so large enclave images are
/// measured page-by-page without concatenation.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  /// Finalizes and returns the digest; the object must be reset() before
  /// further use.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(BytesView data);
  /// One-shot over the concatenation of several fragments.
  static Digest hash_parts(std::initializer_list<BytesView> parts);

  /// Resumes hashing from a saved chaining state with `bytes_done` bytes
  /// already absorbed (must be a multiple of 64). This is the midstate hook
  /// behind HmacKey: the ipad/opad compressions are precomputed once per key
  /// and every MAC resumes from them.
  static Sha256 resume(const std::array<uint32_t, 8>& state, uint64_t bytes_done);

 private:
  void compress(const uint8_t block[64]);

  std::array<uint32_t, 8> state_{};
  uint64_t total_len_ = 0;
  std::array<uint8_t, 64> buf_{};
  size_t buf_len_ = 0;
};

/// Digest as a Bytes (wire format helper).
inline Bytes digest_bytes(const Digest& d) { return Bytes(d.begin(), d.end()); }

/// Digest as hex (log/debug helper).
inline std::string digest_hex(const Digest& d) {
  return hex_encode(BytesView(d.data(), d.size()));
}

}  // namespace tenet::crypto
