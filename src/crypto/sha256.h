// SHA-256 (FIPS 180-4), from scratch.
//
// Used for enclave measurements (the SGX "identity" of §2.1 is a SHA-256
// digest of enclave contents), HMAC, HKDF and Schnorr challenges.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.h"

namespace tenet::crypto {

using Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256. Streaming interface so large enclave images are
/// measured page-by-page without concatenation.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  /// Finalizes and returns the digest; the object must be reset() before
  /// further use.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(BytesView data);
  /// One-shot over the concatenation of several fragments.
  static Digest hash_parts(std::initializer_list<BytesView> parts);

 private:
  void compress(const uint8_t block[64]);

  std::array<uint32_t, 8> state_{};
  uint64_t total_len_ = 0;
  std::array<uint8_t, 64> buf_{};
  size_t buf_len_ = 0;
};

/// Digest as a Bytes (wire format helper).
inline Bytes digest_bytes(const Digest& d) { return Bytes(d.begin(), d.end()); }

/// Digest as hex (log/debug helper).
inline std::string digest_hex(const Digest& d) {
  return hex_encode(BytesView(d.data(), d.size()));
}

}  // namespace tenet::crypto
