// Deterministic random number generation.
//
// Simulations must be reproducible (the benches print paper-style tables
// whose values should not wobble run-to-run), so all randomness in the
// system flows through a seedable ChaCha20-based DRBG. Nodes derive their
// own independent streams from a scenario seed.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "crypto/bytes.h"

namespace tenet::crypto {

/// ChaCha20 block function based DRBG (deterministic, fork-able).
class Drbg {
 public:
  using Seed = std::array<uint8_t, 32>;

  /// Seeds from 32 bytes of entropy.
  explicit Drbg(const Seed& seed);

  /// Convenience: seed derived from a small integer + label (tests, sims).
  static Drbg from_label(uint64_t n, std::string_view label = "tenet.drbg");

  /// Fills `out` with pseudo-random bytes.
  void fill(std::span<uint8_t> out);

  /// Returns `n` pseudo-random bytes.
  Bytes bytes(size_t n);

  /// Uniform u64.
  uint64_t next_u64();

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t uniform(uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform_real();

  /// Derives an independent child generator (e.g., one per simulated node).
  Drbg fork(std::string_view label);

 private:
  void refill();

  std::array<uint32_t, 16> state_{};
  std::array<uint8_t, 64> block_{};
  size_t pos_ = 64;  // forces refill on first use
};

}  // namespace tenet::crypto
