// Arbitrary-precision unsigned integers with Montgomery modular arithmetic.
//
// Backs the 1024-bit Diffie-Hellman exchange the paper performs during
// remote attestation (§2.2, Table 1) and the Schnorr signatures we use as
// the EPID stand-in for QUOTE verification. Limb multiply-accumulate
// operations are reported to the work meter, which is how DH comes to
// dominate the attestation cycle counts exactly as in the paper.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "crypto/bytes.h"

namespace tenet::crypto {

class Drbg;
struct DivRem;

/// Non-negative big integer; little-endian 64-bit limbs, always normalized
/// (no high zero limbs; zero is an empty limb vector).
class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(uint64_t v);

  static BigInt from_hex(std::string_view hex);
  static BigInt from_bytes_be(BytesView bytes);

  /// Minimal-length big-endian encoding (empty for zero).
  [[nodiscard]] Bytes to_bytes_be() const;
  /// Fixed-width big-endian encoding, left-padded with zeros.
  /// Throws std::invalid_argument if the value does not fit.
  [[nodiscard]] Bytes to_bytes_be(size_t width) const;
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  [[nodiscard]] size_t bit_length() const;
  [[nodiscard]] bool bit(size_t i) const;
  [[nodiscard]] size_t limb_count() const { return limbs_.size(); }
  [[nodiscard]] uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  /// Three-way compare: -1, 0, +1.
  [[nodiscard]] int cmp(const BigInt& o) const;
  bool operator==(const BigInt& o) const { return limbs_ == o.limbs_; }
  bool operator!=(const BigInt& o) const { return !(*this == o); }
  bool operator<(const BigInt& o) const { return cmp(o) < 0; }
  bool operator<=(const BigInt& o) const { return cmp(o) <= 0; }
  bool operator>(const BigInt& o) const { return cmp(o) > 0; }
  bool operator>=(const BigInt& o) const { return cmp(o) >= 0; }

  [[nodiscard]] BigInt add(const BigInt& o) const;
  /// Subtraction; throws std::underflow_error if o > *this.
  [[nodiscard]] BigInt sub(const BigInt& o) const;
  /// Schoolbook multiplication (work-metered).
  [[nodiscard]] BigInt mul(const BigInt& o) const;
  [[nodiscard]] BigInt shl(size_t bits) const;
  [[nodiscard]] BigInt shr(size_t bits) const;

  /// Binary long division; throws std::domain_error on divide-by-zero.
  /// O(n * bits) — fine for protocol-rate use, not for inner loops
  /// (modexp uses Montgomery reduction instead).
  [[nodiscard]] DivRem div_rem(const BigInt& divisor) const;
  [[nodiscard]] BigInt mod(const BigInt& m) const;

  /// (a * b) mod m for odd m (Montgomery under the hood).
  static BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m);
  /// (base ^ exp) mod m for odd m > 1.
  static BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m);

  /// Uniform value in [lo, hi); requires lo < hi.
  static BigInt random_range(Drbg& rng, const BigInt& lo, const BigInt& hi);

  /// Miller-Rabin probabilistic primality test with `rounds` random bases.
  static bool probably_prime(const BigInt& n, int rounds, Drbg& rng);

 private:
  friend class Montgomery;
  void trim();

  std::vector<uint64_t> limbs_;
};

/// Quotient/remainder pair returned by BigInt::div_rem.
struct DivRem {
  BigInt quotient;
  BigInt remainder;
};

/// Montgomery context for a fixed odd modulus. Constructing one is O(bits)
/// work; reuse it (DhGroup and SchnorrGroup each keep theirs).
class Montgomery {
 public:
  /// Throws std::invalid_argument unless `modulus` is odd and > 1.
  explicit Montgomery(const BigInt& modulus);

  [[nodiscard]] const BigInt& modulus() const { return n_; }

  /// Converts into / out of the Montgomery domain.
  [[nodiscard]] BigInt to_mont(const BigInt& x) const;
  [[nodiscard]] BigInt from_mont(const BigInt& x) const;

  /// Montgomery product of two Montgomery-domain values (CIOS).
  [[nodiscard]] BigInt mul(const BigInt& a_mont, const BigInt& b_mont) const;

  /// (base ^ exp) mod n; inputs/outputs in the normal domain.
  [[nodiscard]] BigInt exp(const BigInt& base, const BigInt& e) const;

 private:
  BigInt n_;
  size_t k_;         // limb count of the modulus
  uint64_t n0_inv_;  // -n^{-1} mod 2^64
  BigInt r_mod_n_;   // R mod n, R = 2^(64k)
  BigInt r2_mod_n_;  // R^2 mod n
};

}  // namespace tenet::crypto
