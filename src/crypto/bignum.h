// Arbitrary-precision unsigned integers with Montgomery modular arithmetic.
//
// Backs the 1024-bit Diffie-Hellman exchange the paper performs during
// remote attestation (§2.2, Table 1) and the Schnorr signatures we use as
// the EPID stand-in for QUOTE verification. Limb multiply-accumulate
// operations are reported to the work meter, which is how DH comes to
// dominate the attestation cycle counts exactly as in the paper.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "crypto/bignum_ifma.h"
#include "crypto/bytes.h"

namespace tenet::crypto {

class Drbg;
struct DivRem;

/// Non-negative big integer; little-endian 64-bit limbs, always normalized
/// (no high zero limbs; zero is an empty limb vector).
class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(uint64_t v);

  static BigInt from_hex(std::string_view hex);
  static BigInt from_bytes_be(BytesView bytes);

  /// Minimal-length big-endian encoding (empty for zero).
  [[nodiscard]] Bytes to_bytes_be() const;
  /// Fixed-width big-endian encoding, left-padded with zeros.
  /// Throws std::invalid_argument if the value does not fit.
  [[nodiscard]] Bytes to_bytes_be(size_t width) const;
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  [[nodiscard]] size_t bit_length() const;
  [[nodiscard]] bool bit(size_t i) const;
  [[nodiscard]] size_t limb_count() const { return limbs_.size(); }
  [[nodiscard]] uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  /// Three-way compare: -1, 0, +1.
  [[nodiscard]] int cmp(const BigInt& o) const;
  bool operator==(const BigInt& o) const { return limbs_ == o.limbs_; }
  bool operator!=(const BigInt& o) const { return !(*this == o); }
  bool operator<(const BigInt& o) const { return cmp(o) < 0; }
  bool operator<=(const BigInt& o) const { return cmp(o) <= 0; }
  bool operator>(const BigInt& o) const { return cmp(o) > 0; }
  bool operator>=(const BigInt& o) const { return cmp(o) >= 0; }

  [[nodiscard]] BigInt add(const BigInt& o) const;
  /// Subtraction; throws std::underflow_error if o > *this.
  [[nodiscard]] BigInt sub(const BigInt& o) const;
  /// Schoolbook multiplication (work-metered).
  [[nodiscard]] BigInt mul(const BigInt& o) const;
  [[nodiscard]] BigInt shl(size_t bits) const;
  [[nodiscard]] BigInt shr(size_t bits) const;

  /// Binary long division; throws std::domain_error on divide-by-zero.
  /// O(n * bits) — fine for protocol-rate use, not for inner loops
  /// (modexp uses Montgomery reduction instead).
  [[nodiscard]] DivRem div_rem(const BigInt& divisor) const;
  [[nodiscard]] BigInt mod(const BigInt& m) const;

  /// (a * b) mod m for odd m (Montgomery under the hood).
  static BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m);
  /// (base ^ exp) mod m for odd m > 1.
  static BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m);

  /// Uniform value in [lo, hi); requires lo < hi.
  static BigInt random_range(Drbg& rng, const BigInt& lo, const BigInt& hi);

  /// Miller-Rabin probabilistic primality test with `rounds` random bases.
  static bool probably_prime(const BigInt& n, int rounds, Drbg& rng);

 private:
  friend class Montgomery;
  void trim();

  std::vector<uint64_t> limbs_;
};

/// Quotient/remainder pair returned by BigInt::div_rem.
struct DivRem {
  BigInt quotient;
  BigInt remainder;
};

/// Montgomery context for a fixed odd modulus. Constructing one is O(bits)
/// work; reuse it (DhGroup keeps one for p and one for q, FixedBaseTable
/// borrows the group's).
///
/// Work metering: mul charges 2k^2 + 2k limb multiply-adds (CIOS), sqr
/// charges k(k+1)/2 + k^2 + k (symmetric product + separated reduction) —
/// both are the multiply counts the kernels actually execute, so windowed
/// exponentiation shows up in the meter as genuinely fewer operations.
class Montgomery {
 public:
  /// Throws std::invalid_argument unless `modulus` is odd and > 1.
  explicit Montgomery(const BigInt& modulus);

  [[nodiscard]] const BigInt& modulus() const { return n_; }
  [[nodiscard]] size_t limbs() const { return k_; }

  /// Converts into / out of the Montgomery domain.
  [[nodiscard]] BigInt to_mont(const BigInt& x) const;
  [[nodiscard]] BigInt from_mont(const BigInt& x) const;

  /// Montgomery product of two Montgomery-domain values (CIOS).
  [[nodiscard]] BigInt mul(const BigInt& a_mont, const BigInt& b_mont) const;

  /// Montgomery square (dedicated path: ~0.75x the multiplies of mul).
  [[nodiscard]] BigInt sqr(const BigInt& a_mont) const;

  /// (a * b) mod n for normal-domain inputs/outputs.
  [[nodiscard]] BigInt mul_mod(const BigInt& a, const BigInt& b) const;

  /// (base ^ exp) mod n; inputs/outputs in the normal domain. Fixed
  /// 4-bit-window ladder over allocation-free limb kernels; on CPUs with
  /// AVX512-IFMA and moduli of >= 8 limbs the ladder runs on the radix-52
  /// vector backend instead (same results, same metered counts).
  [[nodiscard]] BigInt exp(const BigInt& base, const BigInt& e) const;

 private:
  friend class FixedBaseTable;

  // Windowed ladder on the radix-52 IFMA backend (requires ifma_).
  [[nodiscard]] BigInt exp_ifma(const BigInt& base, const BigInt& e) const;

  // Raw-limb kernels. Operands are k_-limb little-endian buffers; `out`
  // may alias an input (results are staged through thread-local scratch).
  void mont_mul_limbs(const uint64_t* a, const uint64_t* b, uint64_t* out) const;
  void mont_sqr_limbs(const uint64_t* a, uint64_t* out) const;
  // Copies x (must be < n) into a k_-limb zero-padded buffer.
  void load_limbs(const BigInt& x, uint64_t* out) const;
  [[nodiscard]] BigInt from_limbs(const uint64_t* x) const;

  BigInt n_;
  size_t k_;         // limb count of the modulus
  uint64_t n0_inv_;  // -n^{-1} mod 2^64
  BigInt r_mod_n_;   // R mod n, R = 2^(64k)
  BigInt r2_mod_n_;  // R^2 mod n
  ifma::Ctx ifma_;   // radix-52 backend; empty when unsupported
};

/// Precomputed radix-16 power table for one fixed base: entry (w, d) holds
/// base^(d * 16^w) in the Montgomery domain, so base^e is one Montgomery
/// multiply per non-zero 4-bit digit of e — no squarings at all. This is
/// the fast path for g^x in every DH handshake (the generator is fixed
/// across all remote attestations).
///
/// Construction is one-time setup (like building a Montgomery context) and
/// is deliberately not charged to the work meter; evaluation charges the
/// multiplies it actually performs. See DESIGN.md "Performance kernels".
class FixedBaseTable {
 public:
  /// `ctx` must outlive the table. Supports exponents up to max_exp_bits.
  FixedBaseTable(const Montgomery& ctx, const BigInt& base, size_t max_exp_bits);

  /// base^e mod n. Falls back to generic ctx.exp for oversized exponents.
  [[nodiscard]] BigInt power(const BigInt& e) const;

  [[nodiscard]] size_t windows() const { return windows_; }

 private:
  [[nodiscard]] const uint64_t* entry(size_t window, uint64_t digit) const {
    return table_.data() + (window * 16 + digit) * ctx_->limbs();
  }
  [[nodiscard]] const uint64_t* entry52(size_t window, uint64_t digit) const {
    return table52_.data() + (window * 16 + digit) * ctx_->ifma_.lp;
  }

  const Montgomery* ctx_;
  BigInt base_;
  size_t windows_;
  // Exactly one of these is populated: table52_ when the context has the
  // radix-52 IFMA backend, table_ otherwise.
  std::vector<uint64_t> table_;    // windows_ x 16 x k 64-bit limbs
  std::vector<uint64_t> table52_;  // windows_ x 16 x lp 52-bit limbs
};

}  // namespace tenet::crypto
