#include "crypto/bignum_ifma.h"

#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define TENET_IFMA_KERNELS 1
#include <immintrin.h>
#endif

namespace tenet::crypto::ifma {

namespace {
constexpr uint64_t kMask52 = (uint64_t{1} << 52) - 1;
}  // namespace

bool available() {
#ifdef TENET_IFMA_KERNELS
  static const bool ok = __builtin_cpu_supports("avx512f") &&
                         __builtin_cpu_supports("avx512ifma");
  return ok;
#else
  return false;
#endif
}

size_t limbs52(size_t k) { return (64 * k + 2 + 51) / 52; }

void to52(const uint64_t* x64, size_t k, uint64_t* out52, size_t lp) {
  for (size_t j = 0; j < lp; ++j) {
    const size_t bit = 52 * j;
    const size_t w = bit / 64, off = bit % 64;
    uint64_t v = 0;
    if (w < k) {
      v = x64[w] >> off;
      // A 52-bit limb spans two 64-bit limbs when fewer than 52 bits
      // remain in the current one (off > 64 - 52).
      if (off > 12 && w + 1 < k) v |= x64[w + 1] << (64 - off);
    }
    out52[j] = v & kMask52;
  }
}

void from52(const uint64_t* x52, size_t lp, uint64_t* out64, size_t k) {
  std::memset(out64, 0, k * 8);
  for (size_t j = 0; j < lp; ++j) {
    const size_t bit = 52 * j;
    const size_t w = bit / 64, off = bit % 64;
    if (w < k) out64[w] |= x52[j] << off;
    if (off > 12 && w + 1 < k) out64[w + 1] |= x52[j] >> (64 - off);
  }
}

#ifdef TENET_IFMA_KERNELS

namespace {

// One AMM: out = a*b/2^(52l) mod n, redundant-range closed over [0, 2n).
//
// Row structure (operand scanning, one row per a-limb): add the low halves
// of a_i*b and m*n into the accumulator, shift the accumulator down one
// limb (the freed weight-2^0 position is exactly zero mod 2^52), then add
// the high halves — which post-shift land on the same lanes as their
// weight-52(j+1) positions, so no second shifted register set is needed.
// Accumulator lanes grow by at most 4*(2^52-1) per row and migrate down one
// lane per row, so they stay far below 2^64 for any supported size.
template <int NC>
__attribute__((target("avx512f,avx512ifma"))) void amm_t(
    const uint64_t* a, const uint64_t* b, const uint64_t* n, uint64_t n0inv52,
    int l, uint64_t* out) {
  __m512i acc[NC], bv[NC], nv[NC];
  const __m512i zero = _mm512_setzero_si512();
  for (int c = 0; c < NC; ++c) {
    acc[c] = zero;
    bv[c] = _mm512_loadu_si512(b + 8 * c);
    nv[c] = _mm512_loadu_si512(n + 8 * c);
  }
  for (int i = 0; i < l; ++i) {
    const __m512i ai = _mm512_set1_epi64(static_cast<long long>(a[i]));
    for (int c = 0; c < NC; ++c)
      acc[c] = _mm512_madd52lo_epu64(acc[c], ai, bv[c]);
    const uint64_t acc0 = static_cast<uint64_t>(
        _mm_cvtsi128_si64(_mm512_castsi512_si128(acc[0])));
    const uint64_t m = (acc0 * n0inv52) & kMask52;
    const __m512i mv = _mm512_set1_epi64(static_cast<long long>(m));
    for (int c = 0; c < NC; ++c)
      acc[c] = _mm512_madd52lo_epu64(acc[c], mv, nv[c]);
    // Lane 0 is now 0 mod 2^52; its upper bits carry into the next limb.
    const uint64_t lo0 = static_cast<uint64_t>(
        _mm_cvtsi128_si64(_mm512_castsi512_si128(acc[0])));
    const uint64_t carry = lo0 >> 52;
    for (int c = 0; c < NC; ++c) {
      const __m512i next = (c + 1 < NC) ? acc[c + 1] : zero;
      acc[c] = _mm512_alignr_epi64(next, acc[c], 1);
    }
    acc[0] = _mm512_mask_add_epi64(
        acc[0], 1, acc[0], _mm512_set1_epi64(static_cast<long long>(carry)));
    for (int c = 0; c < NC; ++c)
      acc[c] = _mm512_madd52hi_epu64(acc[c], ai, bv[c]);
    for (int c = 0; c < NC; ++c)
      acc[c] = _mm512_madd52hi_epu64(acc[c], mv, nv[c]);
  }
  // Carry-propagate the redundant lanes to canonical 52-bit limbs.
  alignas(64) uint64_t tmp[8 * NC];
  for (int c = 0; c < NC; ++c) _mm512_storeu_si512(tmp + 8 * c, acc[c]);
  uint64_t cy = 0;
  for (int j = 0; j < 8 * NC; ++j) {
    const uint64_t v = tmp[j] + cy;
    out[j] = v & kMask52;
    cy = v >> 52;
  }
}

}  // namespace

#endif  // TENET_IFMA_KERNELS

void amm(const Ctx& c, const uint64_t* a, const uint64_t* b, uint64_t* out) {
#ifdef TENET_IFMA_KERNELS
  const uint64_t* n = c.n52.data();
  const int l = static_cast<int>(c.l);
  switch (c.nc) {
    case 2: amm_t<2>(a, b, n, c.n0inv52, l, out); return;
    case 3: amm_t<3>(a, b, n, c.n0inv52, l, out); return;
    case 4: amm_t<4>(a, b, n, c.n0inv52, l, out); return;
    case 5: amm_t<5>(a, b, n, c.n0inv52, l, out); return;
    case 6: amm_t<6>(a, b, n, c.n0inv52, l, out); return;
    case 7: amm_t<7>(a, b, n, c.n0inv52, l, out); return;
    case 8: amm_t<8>(a, b, n, c.n0inv52, l, out); return;
    default: break;
  }
#else
  (void)c;
  (void)a;
  (void)b;
  (void)out;
#endif
  // Callers gate on Ctx's boolean; an empty context never reaches here.
}

void reduce_once(const Ctx& c, uint64_t* x) {
  bool ge = true;
  for (size_t j = c.lp; j-- > 0;) {
    if (x[j] != c.n52[j]) {
      ge = x[j] > c.n52[j];
      break;
    }
  }
  if (!ge) return;
  uint64_t borrow = 0;
  for (size_t j = 0; j < c.lp; ++j) {
    const uint64_t d = x[j] - c.n52[j] - borrow;
    borrow = d >> 63;
    x[j] = d & kMask52;
  }
}

bool init(Ctx& c, const uint64_t* n64, size_t k, uint64_t n0inv64,
          const uint64_t* r52sq64) {
  c = Ctx{};
  if (!available()) return false;
  const size_t l = limbs52(k);
  const size_t lp = (l + 7) & ~size_t{7};
  const int nc = static_cast<int>(lp / 8);
  if (nc < 2 || nc > 8) return false;  // below: scalar wins; above: untested
  c.l = l;
  c.lp = lp;
  c.nc = nc;
  c.n0inv52 = n0inv64 & kMask52;  // valid mod 2^52 since it holds mod 2^64
  c.n52.assign(lp, 0);
  to52(n64, k, c.n52.data(), lp);
  c.r52sq.assign(lp, 0);
  to52(r52sq64, k, c.r52sq.data(), lp);
  // 1 * R52 mod n, the ladder's identity element.
  std::vector<uint64_t> one(lp, 0);
  one[0] = 1;
  c.one_dom.assign(lp, 0);
  amm(c, c.r52sq.data(), one.data(), c.one_dom.data());
  reduce_once(c, c.one_dom.data());
  return true;
}

}  // namespace tenet::crypto::ifma
