// Finite-field Diffie-Hellman over the RFC 2409 / RFC 3526 MODP groups.
//
// The paper bootstraps a secure channel during remote attestation with a
// 1024-bit DH exchange (§2.2, Table 1); group 2 below is exactly that
// parameter size. Larger/smaller groups feed the DH-modulus ablation bench.
#pragma once

#include <memory>

#include "crypto/bignum.h"
#include "crypto/bytes.h"

namespace tenet::crypto {

class Drbg;

/// A multiplicative group mod a safe prime p = 2q + 1 with generator g.
/// Shared, immutable; obtain instances from the named accessors (contexts
/// are expensive to build, so they are constructed once and cached).
class DhGroup {
 public:
  DhGroup(std::string name, BigInt p, BigInt g);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const BigInt& p() const { return p_; }
  [[nodiscard]] const BigInt& g() const { return g_; }
  /// Subgroup order q = (p-1)/2.
  [[nodiscard]] const BigInt& q() const { return q_; }
  [[nodiscard]] size_t bits() const { return p_.bit_length(); }
  [[nodiscard]] const Montgomery& mont_p() const { return mont_p_; }
  /// Cached context for arithmetic mod q (Schnorr scalar ops). q is odd for
  /// every safe-prime group (p ≡ 3 mod 4).
  [[nodiscard]] const Montgomery& mont_q() const { return mont_q_; }

  /// g^x mod p via the precomputed fixed-base table (the fast path every
  /// handshake keygen takes; the generator never changes).
  [[nodiscard]] BigInt power(const BigInt& x) const { return g_pow_.power(x); }
  /// base^x mod p (generic windowed exponentiation).
  [[nodiscard]] BigInt power_of(const BigInt& base, const BigInt& x) const {
    return mont_p_.exp(base, x);
  }

  /// Checks 1 < y < p-1 (rejects trivial-subgroup public values).
  [[nodiscard]] bool valid_public(const BigInt& y) const;

  // Named standard groups (constructed once, never destroyed).
  static const DhGroup& oakley_group1();  ///< 768-bit  (RFC 2409)
  static const DhGroup& oakley_group2();  ///< 1024-bit (RFC 2409) - paper's choice
  static const DhGroup& modp_group5();    ///< 1536-bit (RFC 3526)
  static const DhGroup& modp_group14();   ///< 2048-bit (RFC 3526)

 private:
  std::string name_;
  BigInt p_;
  BigInt g_;
  BigInt q_;
  Montgomery mont_p_;
  Montgomery mont_q_;
  FixedBaseTable g_pow_;  // g^(d·16^w) table; exponents go up to p's width
};

/// One party's ephemeral DH state.
class DhKeyPair {
 public:
  /// Samples a private exponent in [2, q).
  DhKeyPair(const DhGroup& group, Drbg& rng);

  [[nodiscard]] const DhGroup& group() const { return *group_; }
  [[nodiscard]] const BigInt& public_value() const { return public_; }
  /// Fixed-width wire encoding of the public value.
  [[nodiscard]] Bytes public_bytes() const;

  /// Computes the shared secret with the peer's public value and returns
  /// it as fixed-width big-endian bytes (hash it before use as a key).
  /// Throws std::invalid_argument on an invalid peer value.
  [[nodiscard]] Bytes shared_secret(const BigInt& peer_public) const;
  [[nodiscard]] Bytes shared_secret(BytesView peer_public_bytes) const;

 private:
  const DhGroup* group_;
  BigInt private_;
  BigInt public_;
};

}  // namespace tenet::crypto
