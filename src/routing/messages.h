// Wire messages between AS-local controllers and the inter-domain
// controller. The same encodings travel over the attested secure channel
// (SGX deployment) and in cleartext (native baseline) so Table 4 compares
// runtimes, not serialization formats.
#pragma once

#include "routing/bgp.h"
#include "routing/predicates.h"

namespace tenet::routing {

enum class MsgType : uint8_t {
  kPolicySubmission = 1,    // AS -> controller: RoutingPolicy
  kRouteAdvertisement = 2,  // controller -> AS: that AS's RoutingTable
  kRegisterPredicate = 3,   // AS -> controller: u32 pred_id | predicate
  kVerifyRequest = 4,       // AS -> controller: u32 pred_id
  kVerifyResponse = 5,      // controller -> AS: u32 pred_id | u8 status
};

/// kVerifyResponse status byte.
enum class VerifyStatus : uint8_t {
  kHolds = 1,          // predicate evaluated true
  kViolated = 2,       // predicate evaluated false — promise broken
  kNotAgreed = 3,      // the two parties have not both registered it
  kNotReady = 4,       // routes not computed yet
  kNotAParty = 5,      // requester is not covered by the predicate
};

crypto::Bytes encode_policy_submission(const RoutingPolicy& policy);
crypto::Bytes encode_route_advertisement(const RoutingTable& table);
crypto::Bytes encode_register_predicate(uint32_t pred_id, const Predicate& p);
crypto::Bytes encode_verify_request(uint32_t pred_id);
crypto::Bytes encode_verify_response(uint32_t pred_id, VerifyStatus status);

/// Peeks the type tag; throws std::invalid_argument on empty input.
MsgType message_type(crypto::BytesView wire);
/// Payload after the tag byte.
crypto::BytesView message_body(crypto::BytesView wire);

crypto::Bytes encode_routing_table(const RoutingTable& table);
RoutingTable decode_routing_table(crypto::BytesView wire);

}  // namespace tenet::routing
