// The two controller roles of Figure 2, in both deployments:
//   * SGX (InterDomainControllerApp / AsLocalControllerApp) — enclave apps
//     over the core framework: mutual attestation, secure channels, policy
//     privacy end-to-end;
//   * native (NativeInterDomainController / NativeAsController) — the
//     paper's "w/o SGX" baseline: identical logic and wire formats,
//     cleartext network, no enclave.
// Both share BgpComputation, so Table 4 measures only the runtime delta.
#pragma once

#include <optional>
#include <set>

#include "core/node.h"
#include "core/secure_app.h"
#include "routing/messages.h"

namespace tenet::routing {

/// Host-side control sub-functions for the AS-local controller.
enum AsControl : uint32_t {
  kCtlConnectController = 1,   // payload: u32 controller node id
  kCtlSubmitPolicy = 2,        // payload: empty (policy was baked in)
  kCtlGetOwnTable = 3,         // -> serialized RoutingTable (operator-only view)
  kCtlRegisterPredicate = 4,   // payload: u32 pred_id | LV predicate
  kCtlRequestVerify = 5,       // payload: u32 pred_id
  kCtlLastVerdict = 6,         // -> u32 pred_id | u8 VerifyStatus (or empty)
  kCtlHasRoutes = 7,           // -> u8 0/1
  kCtlUpdateLocalPref = 8,     // payload: u32 neighbor | u32 new pref
};

/// Host-side control sub-functions for the inter-domain controller.
enum ControllerControl : uint32_t {
  kCtlPoliciesReceived = 1,  // -> u64 count
  kCtlComputed = 2,          // -> u8 0/1
  kCtlCandidateCount = 3,    // -> u64 (aggregate; leaks no per-AS data)
  kCtlConfigureShard = 4,    // payload: serialized core::ShardConfig
  kCtlBeginShardJoin = 5,    // payload: empty (rejoin after restart)
  kCtlShardReachable = 6,    // payload: u32 shard | u8 up (host liveness hint)
  kCtlSubmissionsDropped = 7,  // -> u64 (fail-closed drops while minority)
};

/// Inter-domain controller (enclave). Collects policies from attested
/// AS-local controllers, computes all routes, returns each AS exactly its
/// own table, and answers mutually-agreed verification predicates.
class InterDomainControllerApp final : public core::SecureApp {
 public:
  /// `expected_ases`: compute as soon as this many distinct ASes submit.
  InterDomainControllerApp(const sgx::Authority& authority,
                           sgx::AttestationConfig config,
                           size_t expected_ases);

 protected:
  void on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                         crypto::BytesView payload) override;
  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override;

  /// Checkpoint = the submitted policy set plus the node↔ASN bindings, so
  /// a restarted controller resumes from the last full picture instead of
  /// waiting for every AS to re-submit from scratch.
  crypto::Bytes on_checkpoint(core::Ctx& ctx) override;
  void on_restore(core::Ctx& ctx, crypto::BytesView state) override;

  /// Sharded deployments: flush route tables held for an AS that attested
  /// (or re-attested after failover) to this shard.
  void on_peer_attested(core::Ctx& ctx, netsim::NodeId peer) override;

 private:
  struct Registration {
    Predicate predicate;
    std::set<AsNumber> registered_by;
  };

  /// Which shard admitted an AS's policy (and the AS's node). The
  /// admitting shard both fronts the AS (distributes its table) and owns
  /// the slice of the BGP fixpoint for the prefixes the AS originates.
  struct AdmittedBy {
    uint32_t shard = 0;
    netsim::NodeId node = netsim::kInvalidNode;
  };

  /// One sender-shard's contribution to one of our fronted ASes: the rows
  /// (and candidate routes) for the prefixes that shard's slice covered.
  struct PartialRows {
    RoutingTable chosen;
    std::map<Prefix, std::vector<Route>> candidates;
  };

  void handle_submission(core::Ctx& ctx, netsim::NodeId peer,
                         crypto::BytesView body);
  void handle_register(core::Ctx& ctx, netsim::NodeId peer,
                       crypto::BytesView body);
  void handle_verify(core::Ctx& ctx, netsim::NodeId peer,
                     crypto::BytesView body);
  void maybe_compute(core::Ctx& ctx);
  [[nodiscard]] std::optional<AsNumber> asn_of(netsim::NodeId peer) const;

  // Shard-group integration (see DESIGN.md §14). No-ops when unsharded.
  //
  // Sharded computation: policies are flooded to every replica (ring
  // broadcast), but the BGP fixpoint is *partitioned* — each shard runs
  // only the per-prefix fixpoints for the ASes it fronts, then exchanges
  // the resulting rows shard-to-shard (kAggPartial, direct channels).
  // A shard distributes a table to a fronted AS once its own slice is
  // computed and every reachable member's partial has arrived. This is
  // what makes controller throughput scale with the shard count: the
  // dominant cost (the fixpoint) divides by N while the flood adds only
  // linear message relay work.
  void configure_shard(core::Ctx& ctx, core::ShardConfig cfg);
  /// Returns true when the stored policy / admitting shard / node binding
  /// actually changed (an unchanged re-store must not invalidate slices).
  bool store_policy(core::Ctx& ctx, uint32_t admitting_shard,
                    netsim::NodeId node, RoutingPolicy policy);
  void shard_apply(core::Ctx& ctx, uint32_t origin, uint64_t key,
                   crypto::BytesView entry);
  [[nodiscard]] crypto::Bytes shard_snapshot(core::Ctx& ctx);
  bool shard_install(core::Ctx& ctx, crypto::BytesView state);
  void shard_app(core::Ctx& ctx, uint32_t from, crypto::BytesView inner);
  /// Broadcasts a batch of admitted policies (each with its admitting
  /// shard) to every other replica — the flood that keeps all policy sets
  /// identical. Batched because the ring relay pays per-message enclave
  /// transitions at every hop: one broadcast carrying a shard's whole
  /// admission set costs ~1/16th of per-policy floods.
  void flood_policies(core::Ctx& ctx, const std::vector<AsNumber>& asns);
  /// Flushes the pending first-admission flood batch once every attested
  /// AS client has submitted (or the policy set is already complete).
  /// Only *first* admissions batch; changes to an existing admission
  /// (policy updates, failover re-admissions) flood immediately — other
  /// shards act on those bindings, so they must not sit in a buffer.
  void maybe_flush_floods(core::Ctx& ctx);
  [[nodiscard]] bool is_shard_member_node(netsim::NodeId node) const;
  /// Recomputes this shard's slice of the fixpoint if invalidated, sends
  /// partial rows to the other members, then tries to distribute.
  void maybe_compute_sharded(core::Ctx& ctx);
  /// Sends our slice's rows for the ASes each member fronts (all members,
  /// or just `only` when targeting a rejoined shard).
  void send_partials(core::Ctx& ctx,
                     uint32_t only = 0xFFFFFFFFu /* kInvalidShard */);
  /// Once every reachable member's partial is in, assembles complete
  /// tables for our fronted ASes and pushes them out.
  void maybe_distribute_sharded(core::Ctx& ctx);
  /// Membership changed: deterministically re-assign ASes fronted by dead
  /// shards (ring-successor fallback — the same rule the untrusted router
  /// applies, so the AS re-points exactly where its slice moved).
  void reforward_admitted(core::Ctx& ctx);
  void on_shard_down(core::Ctx& ctx, uint32_t shard_id);
  void on_shard_up(core::Ctx& ctx, uint32_t shard_id);
  [[nodiscard]] bool shard_active() const;
  /// Charges enclave heap growth for the fixpoint's working set. SGX1 heap
  /// pages are EAUG'd once and the in-enclave allocator reuses the freed
  /// arena on recompute, so only the high-water *increment* adds pages.
  void charge_compute_arena(core::Ctx& ctx, size_t bytes);

  size_t expected_ases_;
  std::map<AsNumber, RoutingPolicy> policies_;
  std::map<netsim::NodeId, AsNumber> node_to_asn_;
  std::map<AsNumber, netsim::NodeId> asn_to_node_;
  std::map<uint32_t, Registration> predicates_;
  std::optional<ComputationResult> result_;
  std::map<AsNumber, AdmittedBy> admitted_by_;
  std::map<netsim::NodeId, crypto::Bytes> pending_tables_;
  uint64_t submissions_dropped_ = 0;

  size_t compute_arena_ = 0;  // fixpoint working-set high-water (bytes)

  // Sharded-computation state (unused when unsharded).
  std::vector<AsNumber> pending_flood_;  // first admissions not yet flooded
  std::set<netsim::NodeId> attested_clients_;  // non-shard attested peers
  bool slice_valid_ = false;
  std::optional<ComputationResult> slice_;  // fixpoint over our origins
  std::map<uint32_t, std::map<AsNumber, PartialRows>> partials_;
  std::map<netsim::NodeId, crypto::Bytes> sent_tables_;  // de-dup re-sends
};

/// AS-local controller (enclave). Keeps its AS's policy private, attests
/// the inter-domain controller before releasing it, receives back only its
/// own routes.
class AsLocalControllerApp final : public core::SecureApp {
 public:
  AsLocalControllerApp(const sgx::Authority& authority,
                       sgx::AttestationConfig config, RoutingPolicy policy);

 protected:
  void on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                         crypto::BytesView payload) override;
  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override;

  /// After a controller restart the re-handshake lands here: if this AS
  /// had already released its policy, release it again so the recovered
  /// controller rebuilds the full set without operator intervention.
  void on_peer_attested(core::Ctx& ctx, netsim::NodeId peer) override;

 private:
  RoutingPolicy policy_;
  netsim::NodeId controller_ = netsim::kInvalidNode;
  RoutingTable routes_;
  bool has_routes_ = false;
  bool submitted_ = false;  // policy released at least once
  crypto::Bytes last_verdict_;  // pred_id | status
};

// ---------------------------------------------------------------------------
// Native baseline (w/o SGX)
// ---------------------------------------------------------------------------

class NativeInterDomainController final : public core::PlainApp {
 public:
  explicit NativeInterDomainController(size_t expected_ases)
      : expected_ases_(expected_ases) {}

  void on_message(core::NativeNode& node, netsim::NodeId src, uint32_t port,
                  crypto::BytesView payload) override;
  crypto::Bytes on_control(core::NativeNode& node, uint32_t subfn,
                           crypto::BytesView payload) override;

 private:
  size_t expected_ases_;
  std::map<AsNumber, RoutingPolicy> policies_;
  std::map<AsNumber, netsim::NodeId> asn_to_node_;
  std::optional<ComputationResult> result_;
};

class NativeAsController final : public core::PlainApp {
 public:
  explicit NativeAsController(RoutingPolicy policy)
      : policy_(std::move(policy)) {}

  void on_message(core::NativeNode& node, netsim::NodeId src, uint32_t port,
                  crypto::BytesView payload) override;
  crypto::Bytes on_control(core::NativeNode& node, uint32_t subfn,
                           crypto::BytesView payload) override;

 private:
  RoutingPolicy policy_;
  netsim::NodeId controller_ = netsim::kInvalidNode;
  RoutingTable routes_;
  bool has_routes_ = false;
};

}  // namespace tenet::routing
