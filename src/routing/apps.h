// The two controller roles of Figure 2, in both deployments:
//   * SGX (InterDomainControllerApp / AsLocalControllerApp) — enclave apps
//     over the core framework: mutual attestation, secure channels, policy
//     privacy end-to-end;
//   * native (NativeInterDomainController / NativeAsController) — the
//     paper's "w/o SGX" baseline: identical logic and wire formats,
//     cleartext network, no enclave.
// Both share BgpComputation, so Table 4 measures only the runtime delta.
#pragma once

#include <optional>
#include <set>

#include "core/node.h"
#include "core/secure_app.h"
#include "routing/messages.h"

namespace tenet::routing {

/// Host-side control sub-functions for the AS-local controller.
enum AsControl : uint32_t {
  kCtlConnectController = 1,   // payload: u32 controller node id
  kCtlSubmitPolicy = 2,        // payload: empty (policy was baked in)
  kCtlGetOwnTable = 3,         // -> serialized RoutingTable (operator-only view)
  kCtlRegisterPredicate = 4,   // payload: u32 pred_id | LV predicate
  kCtlRequestVerify = 5,       // payload: u32 pred_id
  kCtlLastVerdict = 6,         // -> u32 pred_id | u8 VerifyStatus (or empty)
  kCtlHasRoutes = 7,           // -> u8 0/1
  kCtlUpdateLocalPref = 8,     // payload: u32 neighbor | u32 new pref
};

/// Host-side control sub-functions for the inter-domain controller.
enum ControllerControl : uint32_t {
  kCtlPoliciesReceived = 1,  // -> u64 count
  kCtlComputed = 2,          // -> u8 0/1
  kCtlCandidateCount = 3,    // -> u64 (aggregate; leaks no per-AS data)
};

/// Inter-domain controller (enclave). Collects policies from attested
/// AS-local controllers, computes all routes, returns each AS exactly its
/// own table, and answers mutually-agreed verification predicates.
class InterDomainControllerApp final : public core::SecureApp {
 public:
  /// `expected_ases`: compute as soon as this many distinct ASes submit.
  InterDomainControllerApp(const sgx::Authority& authority,
                           sgx::AttestationConfig config,
                           size_t expected_ases);

 protected:
  void on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                         crypto::BytesView payload) override;
  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override;

  /// Checkpoint = the submitted policy set plus the node↔ASN bindings, so
  /// a restarted controller resumes from the last full picture instead of
  /// waiting for every AS to re-submit from scratch.
  crypto::Bytes on_checkpoint(core::Ctx& ctx) override;
  void on_restore(core::Ctx& ctx, crypto::BytesView state) override;

 private:
  struct Registration {
    Predicate predicate;
    std::set<AsNumber> registered_by;
  };

  void handle_submission(core::Ctx& ctx, netsim::NodeId peer,
                         crypto::BytesView body);
  void handle_register(core::Ctx& ctx, netsim::NodeId peer,
                       crypto::BytesView body);
  void handle_verify(core::Ctx& ctx, netsim::NodeId peer,
                     crypto::BytesView body);
  void maybe_compute(core::Ctx& ctx);
  [[nodiscard]] std::optional<AsNumber> asn_of(netsim::NodeId peer) const;

  size_t expected_ases_;
  std::map<AsNumber, RoutingPolicy> policies_;
  std::map<netsim::NodeId, AsNumber> node_to_asn_;
  std::map<AsNumber, netsim::NodeId> asn_to_node_;
  std::map<uint32_t, Registration> predicates_;
  std::optional<ComputationResult> result_;
};

/// AS-local controller (enclave). Keeps its AS's policy private, attests
/// the inter-domain controller before releasing it, receives back only its
/// own routes.
class AsLocalControllerApp final : public core::SecureApp {
 public:
  AsLocalControllerApp(const sgx::Authority& authority,
                       sgx::AttestationConfig config, RoutingPolicy policy);

 protected:
  void on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                         crypto::BytesView payload) override;
  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override;

  /// After a controller restart the re-handshake lands here: if this AS
  /// had already released its policy, release it again so the recovered
  /// controller rebuilds the full set without operator intervention.
  void on_peer_attested(core::Ctx& ctx, netsim::NodeId peer) override;

 private:
  RoutingPolicy policy_;
  netsim::NodeId controller_ = netsim::kInvalidNode;
  RoutingTable routes_;
  bool has_routes_ = false;
  bool submitted_ = false;  // policy released at least once
  crypto::Bytes last_verdict_;  // pred_id | status
};

// ---------------------------------------------------------------------------
// Native baseline (w/o SGX)
// ---------------------------------------------------------------------------

class NativeInterDomainController final : public core::PlainApp {
 public:
  explicit NativeInterDomainController(size_t expected_ases)
      : expected_ases_(expected_ases) {}

  void on_message(core::NativeNode& node, netsim::NodeId src, uint32_t port,
                  crypto::BytesView payload) override;
  crypto::Bytes on_control(core::NativeNode& node, uint32_t subfn,
                           crypto::BytesView payload) override;

 private:
  size_t expected_ases_;
  std::map<AsNumber, RoutingPolicy> policies_;
  std::map<AsNumber, netsim::NodeId> asn_to_node_;
  std::optional<ComputationResult> result_;
};

class NativeAsController final : public core::PlainApp {
 public:
  explicit NativeAsController(RoutingPolicy policy)
      : policy_(std::move(policy)) {}

  void on_message(core::NativeNode& node, netsim::NodeId src, uint32_t port,
                  crypto::BytesView payload) override;
  crypto::Bytes on_control(core::NativeNode& node, uint32_t subfn,
                           crypto::BytesView payload) override;

 private:
  RoutingPolicy policy_;
  netsim::NodeId controller_ = netsim::kInvalidNode;
  RoutingTable routes_;
  bool has_routes_ = false;
};

}  // namespace tenet::routing
