// AS-level topology with business relationships.
//
// §5: "we create a random topology with 30 ASes with hypothetical business
// relationships. We model export rules according to their business
// relationship (i.e., peer, customer, and provider) and assume each AS has
// a local preference."
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/rng.h"

namespace tenet::routing {

using AsNumber = uint32_t;
/// Simplified address block identifier; by convention AS n originates
/// prefix n (one prefix per AS unless a policy says otherwise).
using Prefix = uint32_t;

/// The neighbor's role from the perspective of the AS holding the entry:
/// kCustomer = "this neighbor pays me", kProvider = "I pay this neighbor".
enum class Relationship : uint8_t { kCustomer = 0, kPeer = 1, kProvider = 2 };

const char* to_string(Relationship r);
/// The same edge seen from the other side.
Relationship inverse(Relationship r);

/// Undirected business-annotated AS graph.
class AsGraph {
 public:
  void add_as(AsNumber asn);
  /// Adds a link where `customer` buys transit from `provider`.
  void add_customer_provider(AsNumber customer, AsNumber provider);
  /// Adds a settlement-free peering link.
  void add_peering(AsNumber a, AsNumber b);

  [[nodiscard]] bool has_as(AsNumber asn) const;
  [[nodiscard]] bool has_link(AsNumber a, AsNumber b) const;
  /// Relationship of `neighbor` from `asn`'s perspective; nullopt if no link.
  [[nodiscard]] std::optional<Relationship> relationship(
      AsNumber asn, AsNumber neighbor) const;

  [[nodiscard]] std::vector<AsNumber> ases() const;
  [[nodiscard]] std::vector<std::pair<AsNumber, Relationship>> neighbors(
      AsNumber asn) const;
  [[nodiscard]] size_t as_count() const { return adj_.size(); }
  [[nodiscard]] size_t link_count() const;
  [[nodiscard]] bool connected() const;

  /// Generates a three-tier Internet-like topology: a clique of tier-1
  /// providers, mid-tier transit ASes multihomed to tier-1s (with some
  /// lateral peering), and stub ASes buying from the mid tier. Always
  /// connected; AS numbers are 1..n.
  static AsGraph random(crypto::Drbg& rng, size_t n_ases,
                        double extra_peering_prob = 0.15);

 private:
  void add_link(AsNumber a, Relationship rel_of_b_from_a, AsNumber b);
  std::map<AsNumber, std::map<AsNumber, Relationship>> adj_;
};

/// One AS's private routing inputs — exactly what the paper says must not
/// leave the enclave ("ISPs do not want to disclose their routing
/// policies", §1).
struct RoutingPolicy {
  AsNumber asn = 0;
  /// Business relationship with each neighbor (from this AS's view).
  std::map<AsNumber, Relationship> neighbor_rel;
  /// Local preference tweak per neighbor (added within the relationship
  /// class; relationship classes still dominate, Gao-Rexford style).
  std::map<AsNumber, uint32_t> local_pref;
  /// Prefixes this AS originates.
  std::vector<Prefix> prefixes;

  [[nodiscard]] crypto::Bytes serialize() const;
  static RoutingPolicy deserialize(crypto::BytesView wire);

  /// Extracts every AS's policy from a topology, assigning deterministic
  /// pseudo-random local preferences and one self-prefix per AS.
  static std::map<AsNumber, RoutingPolicy> from_graph(const AsGraph& graph,
                                                      crypto::Drbg& rng);
};

}  // namespace tenet::routing
