#include "routing/predicates.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace tenet::routing {

Predicate Predicate::most_preferred_via(AsNumber subject_b, AsNumber via_a,
                                        Prefix prefix) {
  Predicate p;
  p.kind_ = Kind::kMostPreferredVia;
  p.subject_ = subject_b;
  p.object_ = via_a;
  p.prefix_ = prefix;
  return p;
}

Predicate Predicate::received_from(AsNumber subject_b, AsNumber from_a,
                                   Prefix prefix) {
  Predicate p;
  p.kind_ = Kind::kReceivedFrom;
  p.subject_ = subject_b;
  p.object_ = from_a;
  p.prefix_ = prefix;
  return p;
}

Predicate Predicate::path_length_at_most(AsNumber subject_b, Prefix prefix,
                                         uint32_t k) {
  Predicate p;
  p.kind_ = Kind::kPathLengthAtMost;
  p.subject_ = subject_b;
  p.prefix_ = prefix;
  p.k_ = k;
  return p;
}

Predicate Predicate::route_traverses(AsNumber subject_b, Prefix prefix,
                                     AsNumber through) {
  Predicate p;
  p.kind_ = Kind::kRouteTraverses;
  p.subject_ = subject_b;
  p.object_ = through;
  p.prefix_ = prefix;
  return p;
}

Predicate Predicate::uses_customer_route(AsNumber subject_b, Prefix prefix) {
  Predicate p;
  p.kind_ = Kind::kUsesCustomerRoute;
  p.subject_ = subject_b;
  p.prefix_ = prefix;
  return p;
}

Predicate Predicate::land(Predicate a, Predicate b) {
  Predicate p;
  p.kind_ = Kind::kAnd;
  p.children_.push_back(std::move(a));
  p.children_.push_back(std::move(b));
  return p;
}

Predicate Predicate::lor(Predicate a, Predicate b) {
  Predicate p;
  p.kind_ = Kind::kOr;
  p.children_.push_back(std::move(a));
  p.children_.push_back(std::move(b));
  return p;
}

Predicate Predicate::lnot(Predicate a) {
  Predicate p;
  p.kind_ = Kind::kNot;
  p.children_.push_back(std::move(a));
  return p;
}

bool Predicate::evaluate(const ComputationResult& result) const {
  switch (kind_) {
    case Kind::kMostPreferredVia: {
      const Route* chosen = result.route_of(subject_, prefix_);
      return chosen != nullptr && chosen->next_hop() == object_;
    }
    case Kind::kReceivedFrom: {
      const auto it = result.candidates.find(subject_);
      if (it == result.candidates.end()) return false;
      const auto jt = it->second.find(prefix_);
      if (jt == it->second.end()) return false;
      return std::any_of(jt->second.begin(), jt->second.end(),
                         [this](const Route& r) {
                           return r.next_hop() == object_;
                         });
    }
    case Kind::kPathLengthAtMost: {
      const Route* chosen = result.route_of(subject_, prefix_);
      return chosen != nullptr && chosen->path_length() <= k_;
    }
    case Kind::kRouteTraverses: {
      const Route* chosen = result.route_of(subject_, prefix_);
      return chosen != nullptr &&
             std::find(chosen->as_path.begin(), chosen->as_path.end(),
                       object_) != chosen->as_path.end();
    }
    case Kind::kUsesCustomerRoute: {
      const Route* chosen = result.route_of(subject_, prefix_);
      return chosen != nullptr &&
             chosen->learned_from == Relationship::kCustomer;
    }
    case Kind::kAnd:
      return children_[0].evaluate(result) && children_[1].evaluate(result);
    case Kind::kOr:
      return children_[0].evaluate(result) || children_[1].evaluate(result);
    case Kind::kNot:
      return !children_[0].evaluate(result);
  }
  return false;
}

std::vector<AsNumber> Predicate::parties() const {
  std::set<AsNumber> set;
  std::vector<const Predicate*> stack{this};
  while (!stack.empty()) {
    const Predicate* p = stack.back();
    stack.pop_back();
    if (p->subject_ != 0) set.insert(p->subject_);
    if (p->object_ != 0) set.insert(p->object_);
    for (const Predicate& c : p->children_) stack.push_back(&c);
  }
  return {set.begin(), set.end()};
}

crypto::Bytes Predicate::serialize() const {
  crypto::Bytes out;
  out.push_back(static_cast<uint8_t>(kind_));
  crypto::append_u32(out, subject_);
  crypto::append_u32(out, object_);
  crypto::append_u32(out, prefix_);
  crypto::append_u32(out, k_);
  crypto::append_u32(out, static_cast<uint32_t>(children_.size()));
  for (const Predicate& c : children_) crypto::append_lv(out, c.serialize());
  return out;
}

Predicate Predicate::deserialize(crypto::BytesView wire) {
  crypto::Reader r(wire);
  Predicate p;
  const uint8_t kind = r.u8();
  switch (static_cast<Kind>(kind)) {
    case Kind::kMostPreferredVia:
    case Kind::kReceivedFrom:
    case Kind::kPathLengthAtMost:
    case Kind::kRouteTraverses:
    case Kind::kUsesCustomerRoute:
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      break;
    default:
      throw std::invalid_argument("Predicate: unknown kind");
  }
  p.kind_ = static_cast<Kind>(kind);
  p.subject_ = r.u32();
  p.object_ = r.u32();
  p.prefix_ = r.u32();
  p.k_ = r.u32();
  const uint32_t n = r.u32();
  const uint32_t expected = p.kind_ == Kind::kAnd || p.kind_ == Kind::kOr ? 2
                            : p.kind_ == Kind::kNot                       ? 1
                                                                          : 0;
  if (n != expected) throw std::invalid_argument("Predicate: bad arity");
  for (uint32_t i = 0; i < n; ++i) {
    p.children_.push_back(deserialize(r.lv()));
  }
  return p;
}

bool Predicate::equals(const Predicate& other) const {
  return serialize() == other.serialize();
}

}  // namespace tenet::routing
