#include "routing/scenario.h"

#include <stdexcept>

namespace tenet::routing {

namespace {

constexpr std::string_view kControllerSource =
    "tenet sdn inter-domain controller v1\n"
    "community-inspected: forwards no policy bytes to any output other\n"
    "than per-AS route advertisements over attested secure channels\n";

constexpr std::string_view kAsLocalSource =
    "tenet as-local controller v1\n"
    "holds the AS policy; releases it only to an attested controller\n";

sgx::CostModel::Snapshot add(const sgx::CostModel::Snapshot& a,
                             const sgx::CostModel::Snapshot& b) {
  return {a.sgx_user + b.sgx_user, a.sgx_priv + b.sgx_priv,
          a.normal + b.normal};
}

sgx::CostModel::Snapshot sub(const sgx::CostModel::Snapshot& a,
                             const sgx::CostModel::Snapshot& b) {
  return {a.sgx_user - b.sgx_user, a.sgx_priv - b.sgx_priv,
          a.normal - b.normal};
}

}  // namespace

sgx::CostModel::Snapshot ScenarioResult::as_steady_avg() const {
  sgx::CostModel::Snapshot avg;
  if (as_steady.empty()) return avg;
  for (const auto& s : as_steady) avg = add(avg, s);
  avg.sgx_user /= as_steady.size();
  avg.sgx_priv /= as_steady.size();
  avg.normal /= as_steady.size();
  return avg;
}

RoutingDeployment::RoutingDeployment(const ScenarioConfig& config)
    : config_(config), sim_(config.seed) {
  // Pre-size for the AS topology and scale the run() safety cap with it
  // (tens-of-thousands-of-ASes graphs exceed the paper-scale default).
  sim_.reserve_nodes(config.n_ases + 4 + config.shards);
  sim_.set_run_cap(std::max<size_t>(1'000'000, 2'000 * config.n_ases));
  crypto::Drbg rng = crypto::Drbg::from_label(config.seed, "routing.scenario");
  const AsGraph graph =
      AsGraph::random(rng, config.n_ases, config.extra_peering_prob);
  policies_ = RoutingPolicy::from_graph(graph, rng);
  for (const auto& [asn, p] : policies_) as_order_.push_back(asn);

  if (config.use_sgx) {
    // Build the two open projects. Measurements are interdependent only
    // through the attestation configs, which are created after both
    // projects exist.
    controller_project_ = std::make_unique<core::OpenProject>(
        "sdn-inter-domain-controller", std::string(kControllerSource),
        nullptr);
    as_project_ = std::make_unique<core::OpenProject>(
        "sdn-as-local-controller", std::string(kAsLocalSource), nullptr);

    // Controller: mutual attestation, verifying AS-local challengers.
    sgx::AttestationConfig controller_cfg = as_project_->policy(/*mutual=*/true);
    if (config.shards > 1) {
      // Shard-group deployments: controllers also attest each other for
      // ring replication, so sibling controllers are acceptable peers too.
      // Two acceptable builds come from two different foundations, so the
      // single-signer pin cannot express the policy — the measurement list
      // (which subsumes it) is the gate.
      controller_cfg.expect.also_accept(controller_project_->measurement());
      controller_cfg.expect.mr_signer.reset();
    }
    // AS-local: mutual attestation, verifying the controller target.
    sgx::AttestationConfig as_cfg = controller_project_->policy(/*mutual=*/true);

    const sgx::Authority* auth = &authority_;
    const size_t n = config.n_ases;
    const bool robust = config.robust;
    const netsim::RetryPolicy retry = config.retry;

    sgx::EnclaveImage controller_image = controller_project_->build();
    controller_image.factory = [auth, controller_cfg, n, robust, retry] {
      auto app = std::make_unique<InterDomainControllerApp>(*auth,
                                                            controller_cfg, n);
      if (robust) app->enable_recovery(retry);
      return app;
    };
    controller_sgx_ = std::make_unique<core::EnclaveNode>(
        sim_, authority_, "inter-domain-controller",
        controller_project_->foundation(), controller_image);
    controller_sgx_->start();
    for (size_t i = 1; i < config.shards; ++i) {
      auto node = std::make_unique<core::EnclaveNode>(
          sim_, authority_, "inter-domain-controller-" + std::to_string(i),
          controller_project_->foundation(), controller_image);
      node->start();
      extra_shards_.push_back(std::move(node));
    }
    if (config.shards > 1) configure_shards();

    for (const auto& [asn, policy] : policies_) {
      sgx::EnclaveImage as_image = as_project_->build();
      const RoutingPolicy p = policy;
      as_image.factory = [auth, as_cfg, p, robust, retry] {
        auto app = std::make_unique<AsLocalControllerApp>(*auth, as_cfg, p);
        if (robust) app->enable_recovery(retry);
        return app;
      };
      auto node = std::make_unique<core::EnclaveNode>(
          sim_, authority_, "as-" + std::to_string(asn),
          as_project_->foundation(), as_image);
      node->start();
      sgx_by_asn_[asn] = node.get();
      as_sgx_.push_back(std::move(node));
    }
  } else {
    controller_native_ = std::make_unique<core::NativeNode>(
        sim_, "inter-domain-controller",
        std::make_unique<NativeInterDomainController>(config.n_ases));
    controller_native_->start();
    for (const auto& [asn, policy] : policies_) {
      auto node = std::make_unique<core::NativeNode>(
          sim_, "as-" + std::to_string(asn),
          std::make_unique<NativeAsController>(policy));
      node->start();
      native_by_asn_[asn] = node.get();
      as_native_.push_back(std::move(node));
    }
  }
}

void RoutingDeployment::control_as(AsNumber asn, uint32_t subfn,
                                   crypto::BytesView payload) {
  (void)query_as(asn, subfn, payload);
}

crypto::Bytes RoutingDeployment::query_as(AsNumber asn, uint32_t subfn,
                                          crypto::BytesView payload) {
  if (config_.use_sgx) {
    const auto it = sgx_by_asn_.find(asn);
    if (it == sgx_by_asn_.end()) throw std::invalid_argument("unknown ASN");
    return it->second->control(subfn, payload);
  }
  const auto it = native_by_asn_.find(asn);
  if (it == native_by_asn_.end()) throw std::invalid_argument("unknown ASN");
  return it->second->control(subfn, payload);
}

void RoutingDeployment::run_attestation_phase() {
  const netsim::NodeId controller_id = config_.use_sgx
                                           ? controller_sgx_->id()
                                           : controller_native_->id();
  for (const AsNumber asn : as_order_) {
    crypto::Bytes arg;
    if (shard_count() > 1) {
      const uint32_t home = router_.route_shard(asn);
      as_home_[asn] = home;
      crypto::append_u32(arg, router_.map().node(home));
    } else {
      crypto::append_u32(arg, controller_id);
    }
    control_as(asn, kCtlConnectController, arg);
  }
  sim_.run();
  if (config_.use_sgx) {
    // Every AS must have completed attestation.
    for (const AsNumber asn : as_order_) {
      if (sgx_by_asn_.at(asn)->query(core::kQueryAttestedPeerCount) != 1) {
        throw std::runtime_error("attestation failed for AS " +
                                 std::to_string(asn));
      }
    }
  }
}

void RoutingDeployment::run_routing_phase() {
  for (const AsNumber asn : as_order_) {
    control_as(asn, kCtlSubmitPolicy, {});
  }
  sim_.run();
  for (const AsNumber asn : as_order_) {
    if (!as_has_routes(asn)) {
      throw std::runtime_error("AS " + std::to_string(asn) +
                               " did not receive routes");
    }
  }
}

sgx::CostModel::Snapshot RoutingDeployment::controller_cost() const {
  if (config_.use_sgx) return controller_sgx_->cost_snapshot();
  // NativeNode::cost is non-const accessor; go through the pointer.
  return controller_native_->cost().snapshot();
}

sgx::CostModel::Snapshot RoutingDeployment::as_cost(size_t index) const {
  const AsNumber asn = as_order_.at(index);
  if (config_.use_sgx) return sgx_by_asn_.at(asn)->cost_snapshot();
  return native_by_asn_.at(asn)->cost().snapshot();
}

RoutingTable RoutingDeployment::table_of(AsNumber asn) {
  return decode_routing_table(query_as(asn, kCtlGetOwnTable));
}

bool RoutingDeployment::as_has_routes(AsNumber asn) {
  const crypto::Bytes out = query_as(asn, kCtlHasRoutes);
  return !out.empty() && out[0] == 1;
}

void RoutingDeployment::register_predicate(AsNumber asn, uint32_t pred_id,
                                           const Predicate& p) {
  crypto::Bytes arg;
  crypto::append_u32(arg, pred_id);
  crypto::append_lv(arg, p.serialize());
  control_as(asn, kCtlRegisterPredicate, arg);
  sim_.run();
}

VerifyStatus RoutingDeployment::request_verification(AsNumber asn,
                                                     uint32_t pred_id) {
  crypto::Bytes arg;
  crypto::append_u32(arg, pred_id);
  control_as(asn, kCtlRequestVerify, arg);
  sim_.run();
  const crypto::Bytes verdict = query_as(asn, kCtlLastVerdict);
  if (verdict.size() < 5 || crypto::read_u32(verdict, 0) != pred_id) {
    throw std::runtime_error("no verification verdict received");
  }
  return static_cast<VerifyStatus>(verdict[4]);
}

uint64_t RoutingDeployment::total_attestations() {
  if (!config_.use_sgx) return 0;
  uint64_t n = 0;
  for (auto& node : as_sgx_) {
    n += node->query(core::kQueryAttestationsInitiated);
  }
  return n;
}

bool RoutingDeployment::crash_and_recover_controller() {
  if (!config_.use_sgx || !controller_sgx_) return false;
  core::EnclaveNode& node = *controller_sgx_;
  node.checkpoint();
  node.inject_fault();
  return node.recover();
}

core::EnclaveNode* RoutingDeployment::as_node(AsNumber asn) {
  const auto it = sgx_by_asn_.find(asn);
  return it != sgx_by_asn_.end() ? it->second : nullptr;
}

// ---------------------------------------------------------------------------
// Shard-group deployment
// ---------------------------------------------------------------------------

core::EnclaveNode* RoutingDeployment::shard_node(size_t i) {
  if (i == 0) return controller_sgx_.get();
  return i - 1 < extra_shards_.size() ? extra_shards_[i - 1].get() : nullptr;
}

uint32_t RoutingDeployment::shard_of_as(AsNumber asn) const {
  return router_.route_shard(asn);
}

void RoutingDeployment::configure_shards() {
  members_.clear();
  members_.push_back(core::ShardMember{0, controller_sgx_->id()});
  for (size_t i = 0; i < extra_shards_.size(); ++i) {
    members_.push_back(core::ShardMember{static_cast<uint32_t>(i + 1),
                                         extra_shards_[i]->id()});
  }
  router_ = core::ShardRouter(core::ShardMap(members_));
  for (size_t i = 0; i < shard_count(); ++i) {
    core::ShardConfig cfg;
    cfg.self = static_cast<uint32_t>(i);
    cfg.replication = config_.shard_replication;
    cfg.members = members_;
    shard_node(i)->control(kCtlConfigureShard, cfg.serialize());
  }
}

void RoutingDeployment::repoint_ases() {
  for (const AsNumber asn : as_order_) {
    const uint32_t now = router_.route_shard(asn);
    const auto home = as_home_.find(asn);
    if (home != as_home_.end() && home->second == now) continue;
    as_home_[asn] = now;
    crypto::Bytes arg;
    crypto::append_u32(arg, router_.map().node(now));
    control_as(asn, kCtlConnectController, arg);
  }
}

bool RoutingDeployment::kill_shard(size_t i) {
  if (shard_count() <= 1 || i >= shard_count()) return false;
  core::EnclaveNode& node = *shard_node(i);
  node.checkpoint();
  node.inject_fault();
  // Untrusted liveness hints: the router stops fronting the dead shard and
  // the survivors re-forward what they replicate on its behalf.
  router_.set_down(static_cast<uint32_t>(i), true);
  crypto::Bytes hint;
  crypto::append_u32(hint, static_cast<uint32_t>(i));
  hint.push_back(0);
  for (size_t s = 0; s < shard_count(); ++s) {
    if (s != i) shard_node(s)->control(kCtlShardReachable, hint);
  }
  repoint_ases();
  return true;
}

bool RoutingDeployment::heal_shard(size_t i) {
  if (shard_count() <= 1 || i >= shard_count()) return false;
  core::EnclaveNode& node = *shard_node(i);
  if (!node.recover()) return false;
  // Fresh enclave: re-issue the shard config (which replays the sealed
  // version vector the restore stashed) and start the attested rejoin.
  core::ShardConfig cfg;
  cfg.self = static_cast<uint32_t>(i);
  cfg.replication = config_.shard_replication;
  cfg.members = members_;
  node.control(kCtlConfigureShard, cfg.serialize());
  node.control(kCtlBeginShardJoin, {});
  router_.set_down(static_cast<uint32_t>(i), false);
  crypto::Bytes hint;
  crypto::append_u32(hint, static_cast<uint32_t>(i));
  hint.push_back(1);
  for (size_t s = 0; s < shard_count(); ++s) {
    if (s != i) shard_node(s)->control(kCtlShardReachable, hint);
  }
  repoint_ases();
  return true;
}

ScenarioResult run_routing_scenario(const ScenarioConfig& config) {
  RoutingDeployment dep(config);
  ScenarioResult result;
  result.policies = dep.policies();

  dep.run_attestation_phase();
  result.controller_attest = dep.controller_cost();
  result.attestations = dep.total_attestations();

  std::vector<sgx::CostModel::Snapshot> as_before;
  for (size_t i = 0; i < config.n_ases; ++i) as_before.push_back(dep.as_cost(i));
  const auto controller_before = dep.controller_cost();

  dep.run_routing_phase();

  result.controller_steady = sub(dep.controller_cost(), controller_before);
  for (size_t i = 0; i < config.n_ases; ++i) {
    result.as_steady.push_back(sub(dep.as_cost(i), as_before[i]));
  }
  for (const auto& [asn, policy] : result.policies) {
    result.received_tables[asn] = dep.table_of(asn);
  }
  result.sim_seconds = dep.sim().now();
  result.messages = dep.sim().total_messages_delivered();
  return result;
}

}  // namespace tenet::routing
