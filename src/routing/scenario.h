// End-to-end scenario driver for the SDN inter-domain routing case study.
//
// Builds the full Figure 2 deployment (one inter-domain controller + one
// AS-local controller per AS) over the network simulator, runs the
// attestation phase, then the policy-submission/compute/distribute phase,
// and reports per-phase instruction counts. Powers the Table 3/Table 4/
// Figure 3 benches, the integration tests and the sdn_routing example.
#pragma once

#include <algorithm>
#include <memory>

#include "core/node.h"
#include "core/open_project.h"
#include "core/shard_group.h"
#include "routing/apps.h"

namespace tenet::routing {

struct ScenarioConfig {
  size_t n_ases = 30;      // the paper's Table 4 size
  uint64_t seed = 2015;
  bool use_sgx = true;     // false = native baseline (w/o SGX)
  double extra_peering_prob = 0.15;
  /// Opt every enclave app into fault recovery (attestation retry with
  /// backoff, re-handshake after controller restart). SGX only.
  bool robust = false;
  netsim::RetryPolicy retry;  // used when robust
  /// Inter-domain controller shard count (SGX only). 1 = the classic
  /// single-controller deployment, byte-identical to before sharding
  /// existed; >1 = a replicated shard group (DESIGN.md §14) with ASes
  /// partitioned across shards by ASN.
  size_t shards = 1;
  uint32_t shard_replication = 2;
};

struct ScenarioResult {
  /// Steady-state cost (post-attestation snapshot deltas, matching the
  /// paper's "exclude enclave initialization and remote attestation").
  sgx::CostModel::Snapshot controller_steady;
  std::vector<sgx::CostModel::Snapshot> as_steady;

  /// Attestation-phase cost and counts (Table 3).
  sgx::CostModel::Snapshot controller_attest;
  uint64_t attestations = 0;

  /// Each AS's own routing table as received from the controller.
  std::map<AsNumber, RoutingTable> received_tables;

  /// Ground truth for validation.
  std::map<AsNumber, RoutingPolicy> policies;

  double sim_seconds = 0;
  uint64_t messages = 0;

  [[nodiscard]] sgx::CostModel::Snapshot as_steady_avg() const;
};

/// Runs a complete scenario. Throws on any protocol failure (an AS not
/// receiving routes, computation not triggering, etc.).
ScenarioResult run_routing_scenario(const ScenarioConfig& config);

/// The deployment object itself, for tests that need to poke at nodes
/// (verification queries, adversarial ASes) between phases.
class RoutingDeployment {
 public:
  explicit RoutingDeployment(const ScenarioConfig& config);

  /// Phase 1 (SGX only): every AS attests the controller. No-op natively.
  void run_attestation_phase();
  /// Phase 2: submit policies; controller computes and distributes.
  void run_routing_phase();

  [[nodiscard]] netsim::Simulator& sim() { return sim_; }
  [[nodiscard]] size_t as_count() const { return as_sgx_.size() + as_native_.size(); }
  [[nodiscard]] const std::map<AsNumber, RoutingPolicy>& policies() const {
    return policies_;
  }

  /// Per-role cost snapshots (aggregated enclave+host for SGX nodes).
  [[nodiscard]] sgx::CostModel::Snapshot controller_cost() const;
  [[nodiscard]] sgx::CostModel::Snapshot as_cost(size_t index) const;

  /// The routing table AS `asn` received (queried from its node).
  [[nodiscard]] RoutingTable table_of(AsNumber asn);
  [[nodiscard]] bool as_has_routes(AsNumber asn);

  /// Verification workflow (SGX deployment only).
  void register_predicate(AsNumber asn, uint32_t pred_id, const Predicate& p);
  VerifyStatus request_verification(AsNumber asn, uint32_t pred_id);

  [[nodiscard]] uint64_t total_attestations();
  [[nodiscard]] core::EnclaveNode* controller_node() {
    return controller_sgx_.get();
  }
  [[nodiscard]] core::EnclaveNode* as_node(AsNumber asn);

  /// Fault drill (SGX only): checkpoint the controller, inject a real EPC
  /// fault (the enclave dies), restart it from its image and restore the
  /// sealed checkpoint. ASes re-attest and re-submit on their next secure
  /// send. Returns true if the checkpoint was restored.
  bool crash_and_recover_controller();

  // --- Shard-group deployment (config_.shards > 1, SGX only) ---

  [[nodiscard]] size_t shard_count() const {
    return config_.use_sgx ? std::max<size_t>(1, config_.shards) : 1;
  }
  /// Controller node hosting shard `i` (0 = controller_node()).
  [[nodiscard]] core::EnclaveNode* shard_node(size_t i);
  /// Untrusted key->shard router (valid once constructed with shards > 1).
  [[nodiscard]] core::ShardRouter& router() { return router_; }
  /// Which shard currently fronts `asn` per the router.
  [[nodiscard]] uint32_t shard_of_as(AsNumber asn) const;

  /// Kills shard `i` mid-run (checkpoint + EPC fault — the enclave dies),
  /// tells the router and the surviving shards, and re-points the dead
  /// shard's ASes at the successor-order fallback shard (they re-attest
  /// and re-submit automatically when robust). Returns false unsharded.
  bool kill_shard(size_t i);
  /// Restarts shard `i` from its image + sealed checkpoint, reissues the
  /// shard config, starts the attested rejoin, and points its ASes back.
  bool heal_shard(size_t i);

 private:
  void configure_shards();
  /// Re-points every AS whose routed shard changed (after a kill or heal)
  /// at its new front-end; robust ASes re-attest and re-submit on their own.
  void repoint_ases();
  void control_as(AsNumber asn, uint32_t subfn, crypto::BytesView payload);
  crypto::Bytes query_as(AsNumber asn, uint32_t subfn,
                         crypto::BytesView payload = {});

  ScenarioConfig config_;
  netsim::Simulator sim_;
  sgx::Authority authority_;
  std::map<AsNumber, RoutingPolicy> policies_;
  std::vector<AsNumber> as_order_;  // index -> asn

  // SGX deployment.
  std::unique_ptr<core::OpenProject> controller_project_;
  std::unique_ptr<core::OpenProject> as_project_;
  std::unique_ptr<core::EnclaveNode> controller_sgx_;
  std::vector<std::unique_ptr<core::EnclaveNode>> extra_shards_;  // shards 1..
  core::ShardRouter router_;
  std::vector<core::ShardMember> members_;
  std::map<AsNumber, uint32_t> as_home_;  // asn -> shard it was pointed at
  std::vector<std::unique_ptr<core::EnclaveNode>> as_sgx_;
  std::map<AsNumber, core::EnclaveNode*> sgx_by_asn_;

  // Native deployment.
  std::unique_ptr<core::NativeNode> controller_native_;
  std::vector<std::unique_ptr<core::NativeNode>> as_native_;
  std::map<AsNumber, core::NativeNode*> native_by_asn_;
};

}  // namespace tenet::routing
