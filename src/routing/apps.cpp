#include "routing/apps.h"

#include "core/ports.h"
#include "crypto/work.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace tenet::routing {

namespace {

/// Local-processing work both deployments perform identically: an AS-local
/// controller validates and installs every route it receives into its
/// local RIB/FIB, and prepares/validates its policy before submission.
/// (This is the "13M normal instructions" of work the paper's AS-local
/// controllers do natively; without it the baseline would be a no-op and
/// the SGX overhead ratio meaningless.)
void charge_route_install(const RoutingTable& table) {
  for (const auto& [prefix, route] : table) {
    crypto::work::charge_alu(2'000 + 120 * route.as_path.size());
  }
}

void charge_policy_preparation(const RoutingPolicy& policy) {
  crypto::work::charge_alu(1'500 + 600 * policy.neighbor_rel.size() +
                           300 * policy.prefixes.size());
}

/// Memory-accounting estimate for storing a policy/table in the enclave.
size_t retained_size(const RoutingPolicy& p) {
  return 64 + p.neighbor_rel.size() * 24 + p.prefixes.size() * 8;
}
size_t retained_size(const RoutingTable& t) {
  size_t s = 64;
  for (const auto& [prefix, route] : t) s += 48 + route.as_path.size() * 8;
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// InterDomainControllerApp
// ---------------------------------------------------------------------------

InterDomainControllerApp::InterDomainControllerApp(
    const sgx::Authority& authority, sgx::AttestationConfig config,
    size_t expected_ases)
    : SecureApp(authority, config), expected_ases_(expected_ases) {}

void InterDomainControllerApp::on_secure_message(core::Ctx& ctx,
                                                 netsim::NodeId peer,
                                                 crypto::BytesView payload) {
  switch (message_type(payload)) {
    case MsgType::kPolicySubmission:
      handle_submission(ctx, peer, message_body(payload));
      break;
    case MsgType::kRegisterPredicate:
      handle_register(ctx, peer, message_body(payload));
      break;
    case MsgType::kVerifyRequest:
      handle_verify(ctx, peer, message_body(payload));
      break;
    default:
      break;  // unknown message: ignore (peer is attested but confused)
  }
}

void InterDomainControllerApp::handle_submission(core::Ctx& ctx,
                                                 netsim::NodeId peer,
                                                 crypto::BytesView body) {
  TENET_COUNT("app.routing.policy_submissions");
  RoutingPolicy policy;
  try {
    policy = RoutingPolicy::deserialize(body);
  } catch (const std::exception&) {
    return;
  }
  // One node speaks for one AS; re-submission replaces (policy update).
  const auto existing = asn_to_node_.find(policy.asn);
  if (existing != asn_to_node_.end() && existing->second != peer) {
    return;  // another (attested) node already claims this ASN
  }
  ctx.alloc(retained_size(policy));
  node_to_asn_[peer] = policy.asn;
  asn_to_node_[policy.asn] = peer;
  policies_[policy.asn] = std::move(policy);
  maybe_compute(ctx);
}

void InterDomainControllerApp::maybe_compute(core::Ctx& ctx) {
  // Recompute whenever a full policy set is present — including after a
  // live policy *update* from an AS (re-submission replaces the stored
  // policy and triggers fresh routes for everyone).
  if (policies_.size() < expected_ases_) return;
  // All parties submitted: run the BGP-equivalent computation inside the
  // enclave and return to each AS exactly its own routes.
  ComputationResult result = BgpComputation::compute(policies_);
  size_t retained = 0;
  size_t candidates = 0;
  for (const auto& [asn, table] : result.tables) retained += retained_size(table);
  for (const auto& [asn, per_prefix] : result.candidates) {
    for (const auto& [p, v] : per_prefix) candidates += v.size();
  }
  // The computation's transient allocations (candidate Route objects,
  // path vectors) hit the enclave heap — "dynamic memory allocation that
  // causes context switches" is exactly where Table 4 says the overhead
  // comes from. Natively the same allocations are near-free.
  ctx.alloc(retained + candidates * 1'792);
  result_ = std::move(result);
  for (const auto& [asn, node] : asn_to_node_) {
    // After a restore the bindings are back but the channels are not: an
    // AS that has not re-attested yet gets its table on the recompute its
    // own re-submission triggers.
    if (!is_attested(node)) continue;
    const auto it = result_->tables.find(asn);
    static const RoutingTable kEmpty;
    const RoutingTable& table = it != result_->tables.end() ? it->second : kEmpty;
    ctx.send_secure(node, encode_route_advertisement(table));
  }
}

void InterDomainControllerApp::handle_register(core::Ctx& ctx,
                                               netsim::NodeId peer,
                                               crypto::BytesView body) {
  TENET_COUNT("app.routing.predicate_registrations");
  const auto asn = asn_of(peer);
  if (!asn.has_value()) return;
  crypto::Reader r(body);
  uint32_t pred_id = 0;
  Predicate predicate = Predicate::path_length_at_most(0, 0, 0);
  try {
    pred_id = r.u32();
    predicate = Predicate::deserialize(r.lv());
  } catch (const std::exception&) {
    return;
  }
  // Only the ASes named by the predicate may participate in it.
  const std::vector<AsNumber> parties = predicate.parties();
  if (std::find(parties.begin(), parties.end(), *asn) == parties.end()) {
    return;
  }
  auto it = predicates_.find(pred_id);
  if (it == predicates_.end()) {
    ctx.alloc(128);
    predicates_.emplace(pred_id, Registration{std::move(predicate), {*asn}});
    return;
  }
  // Second party must register a structurally identical predicate — that
  // is the "agreed upon by the two ASes" condition.
  if (!it->second.predicate.equals(predicate)) return;
  it->second.registered_by.insert(*asn);
}

void InterDomainControllerApp::handle_verify(core::Ctx& ctx,
                                             netsim::NodeId peer,
                                             crypto::BytesView body) {
  TENET_COUNT("app.routing.verify_requests");
  const auto asn = asn_of(peer);
  if (!asn.has_value()) return;
  uint32_t pred_id = 0;
  try {
    pred_id = crypto::read_u32(body, 0);
  } catch (const std::exception&) {
    return;
  }
  auto respond = [&](VerifyStatus status) {
    ctx.send_secure(peer, encode_verify_response(pred_id, status));
  };

  const auto it = predicates_.find(pred_id);
  if (it == predicates_.end()) return respond(VerifyStatus::kNotAgreed);
  const Registration& reg = it->second;

  const std::vector<AsNumber> parties = reg.predicate.parties();
  if (std::find(parties.begin(), parties.end(), *asn) == parties.end()) {
    return respond(VerifyStatus::kNotAParty);
  }
  // Every named party must have countersigned (registered) the predicate.
  for (const AsNumber p : parties) {
    if (!reg.registered_by.contains(p)) return respond(VerifyStatus::kNotAgreed);
  }
  if (!result_.has_value()) return respond(VerifyStatus::kNotReady);
  respond(reg.predicate.evaluate(*result_) ? VerifyStatus::kHolds
                                           : VerifyStatus::kViolated);
}

crypto::Bytes InterDomainControllerApp::on_checkpoint(core::Ctx&) {
  // Predicates and the computed result are deliberately excluded: the
  // result is recomputed from the policies, and predicates must be
  // re-agreed by their parties after a restart (conservative choice).
  crypto::Bytes state;
  crypto::append_u32(state, static_cast<uint32_t>(policies_.size()));
  for (const auto& [asn, policy] : policies_) {
    const auto node = asn_to_node_.find(asn);
    crypto::append_u32(state,
                       node != asn_to_node_.end() ? node->second
                                                  : netsim::kInvalidNode);
    crypto::append_lv(state, policy.serialize());
  }
  return state;
}

void InterDomainControllerApp::on_restore(core::Ctx& ctx,
                                          crypto::BytesView state) {
  try {
    crypto::Reader r(state);
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) {
      const netsim::NodeId node = r.u32();
      RoutingPolicy policy = RoutingPolicy::deserialize(r.lv());
      if (node != netsim::kInvalidNode) {
        node_to_asn_[node] = policy.asn;
        asn_to_node_[policy.asn] = node;
      }
      ctx.alloc(retained_size(policy));
      policies_[policy.asn] = std::move(policy);
    }
  } catch (const std::exception&) {
    return;  // partial restore: remaining policies arrive by re-submission
  }
  // Recompute locally so kCtlComputed/verification answer again, but do
  // NOT push advertisements: the restarted enclave has no attested
  // channels yet. Each AS re-submits after re-attesting, and that
  // re-submission triggers a fresh (authenticated) distribution.
  if (policies_.size() >= expected_ases_) {
    result_ = BgpComputation::compute(policies_);
  }
}

std::optional<AsNumber> InterDomainControllerApp::asn_of(
    netsim::NodeId peer) const {
  const auto it = node_to_asn_.find(peer);
  if (it == node_to_asn_.end()) return std::nullopt;
  return it->second;
}

crypto::Bytes InterDomainControllerApp::on_control(core::Ctx&, uint32_t subfn,
                                                   crypto::BytesView) {
  crypto::Bytes out;
  switch (subfn) {
    case kCtlPoliciesReceived:
      crypto::append_u64(out, policies_.size());
      return out;
    case kCtlComputed:
      out.push_back(result_.has_value() ? 1 : 0);
      return out;
    case kCtlCandidateCount: {
      uint64_t n = 0;
      if (result_.has_value()) {
        for (const auto& [asn, per_prefix] : result_->candidates) {
          for (const auto& [p, v] : per_prefix) n += v.size();
        }
      }
      crypto::append_u64(out, n);
      return out;
    }
    default:
      return out;
  }
}

// ---------------------------------------------------------------------------
// AsLocalControllerApp
// ---------------------------------------------------------------------------

AsLocalControllerApp::AsLocalControllerApp(const sgx::Authority& authority,
                                           sgx::AttestationConfig config,
                                           RoutingPolicy policy)
    : SecureApp(authority, config), policy_(std::move(policy)) {}

void AsLocalControllerApp::on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                                             crypto::BytesView payload) {
  if (peer != controller_) return;  // only the attested controller talks to us
  switch (message_type(payload)) {
    case MsgType::kRouteAdvertisement: {
      RoutingTable table;
      try {
        table = decode_routing_table(message_body(payload));
      } catch (const std::exception&) {
        return;
      }
      ctx.alloc(retained_size(table));
      charge_route_install(table);
      routes_ = std::move(table);
      has_routes_ = true;
      return;
    }
    case MsgType::kVerifyResponse: {
      const crypto::BytesView body = message_body(payload);
      last_verdict_.assign(body.begin(), body.end());
      return;
    }
    default:
      return;
  }
}

void AsLocalControllerApp::on_peer_attested(core::Ctx& ctx,
                                            netsim::NodeId peer) {
  // First attestation: the host drives submission via kCtlSubmitPolicy, so
  // submitted_ is still false here and nothing is sent. Re-attestation
  // after a controller restart (or a fault-window re-handshake): release
  // the policy again so the controller regains the full set.
  if (peer == controller_ && submitted_) {
    charge_policy_preparation(policy_);
    ctx.send_secure(peer, encode_policy_submission(policy_));
  }
}

crypto::Bytes AsLocalControllerApp::on_control(core::Ctx& ctx, uint32_t subfn,
                                               crypto::BytesView arg) {
  switch (subfn) {
    case kCtlConnectController:
      controller_ = crypto::read_u32(arg, 0);
      ctx.connect(controller_);
      return {};
    case kCtlSubmitPolicy: {
      TENET_TRACE_ROOT("routing", "submit_policy");
      // The policy leaves the enclave ONLY through the attested channel.
      charge_policy_preparation(policy_);
      submitted_ = true;
      ctx.send_secure(controller_, encode_policy_submission(policy_));
      return {};
    }
    case kCtlUpdateLocalPref: {
      // Operator reconfiguration: adjust this AS's preference for one
      // neighbor. Takes effect at the controller on the next submission.
      crypto::Reader r(arg);
      const AsNumber neighbor = r.u32();
      const uint32_t pref = r.u32();
      if (policy_.neighbor_rel.contains(neighbor)) {
        policy_.local_pref[neighbor] = pref;
      }
      return {};
    }
    case kCtlGetOwnTable:
      return encode_routing_table(routes_);
    case kCtlRegisterPredicate: {
      crypto::Bytes msg(arg.begin(), arg.end());
      crypto::Reader r(arg);
      const uint32_t pred_id = r.u32();
      const Predicate p = Predicate::deserialize(r.lv());
      ctx.send_secure(controller_, encode_register_predicate(pred_id, p));
      return {};
    }
    case kCtlRequestVerify:
      ctx.send_secure(controller_,
                      encode_verify_request(crypto::read_u32(arg, 0)));
      return {};
    case kCtlLastVerdict:
      return last_verdict_;
    case kCtlHasRoutes: {
      crypto::Bytes out;
      out.push_back(has_routes_ ? 1 : 0);
      return out;
    }
    default:
      return {};
  }
}

// ---------------------------------------------------------------------------
// Native baseline
// ---------------------------------------------------------------------------

void NativeInterDomainController::on_message(core::NativeNode& node,
                                             netsim::NodeId src, uint32_t,
                                             crypto::BytesView payload) {
  switch (message_type(payload)) {
    case MsgType::kPolicySubmission: {
      RoutingPolicy policy;
      try {
        policy = RoutingPolicy::deserialize(message_body(payload));
      } catch (const std::exception&) {
        return;
      }
      asn_to_node_[policy.asn] = src;
      policies_[policy.asn] = std::move(policy);
      if (!result_.has_value() && policies_.size() >= expected_ases_) {
        result_ = BgpComputation::compute(policies_);
        for (const auto& [asn, dst] : asn_to_node_) {
          const auto it = result_->tables.find(asn);
          static const RoutingTable kEmpty;
          node.send_app(dst, core::kPortPlain,
                        encode_route_advertisement(
                            it != result_->tables.end() ? it->second : kEmpty));
        }
      }
      return;
    }
    default:
      return;
  }
}

crypto::Bytes NativeInterDomainController::on_control(core::NativeNode&,
                                                      uint32_t subfn,
                                                      crypto::BytesView) {
  crypto::Bytes out;
  if (subfn == kCtlPoliciesReceived) {
    crypto::append_u64(out, policies_.size());
  } else if (subfn == kCtlComputed) {
    out.push_back(result_.has_value() ? 1 : 0);
  }
  return out;
}

void NativeAsController::on_message(core::NativeNode&, netsim::NodeId src,
                                    uint32_t, crypto::BytesView payload) {
  if (src != controller_) return;
  if (message_type(payload) == MsgType::kRouteAdvertisement) {
    try {
      RoutingTable table = decode_routing_table(message_body(payload));
      charge_route_install(table);
      routes_ = std::move(table);
      has_routes_ = true;
    } catch (const std::exception&) {
    }
  }
}

crypto::Bytes NativeAsController::on_control(core::NativeNode& node,
                                             uint32_t subfn,
                                             crypto::BytesView arg) {
  switch (subfn) {
    case kCtlConnectController:
      controller_ = crypto::read_u32(arg, 0);
      return {};
    case kCtlSubmitPolicy:
      charge_policy_preparation(policy_);
      node.send_app(controller_, core::kPortPlain,
                    encode_policy_submission(policy_));
      return {};
    case kCtlGetOwnTable:
      return encode_routing_table(routes_);
    case kCtlHasRoutes: {
      crypto::Bytes out;
      out.push_back(has_routes_ ? 1 : 0);
      return out;
    }
    default:
      return {};
  }
}

}  // namespace tenet::routing
