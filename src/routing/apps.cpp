#include "routing/apps.h"

#include "core/ports.h"
#include "crypto/work.h"
#include "telemetry/events.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace tenet::routing {

namespace {

/// Local-processing work both deployments perform identically: an AS-local
/// controller validates and installs every route it receives into its
/// local RIB/FIB, and prepares/validates its policy before submission.
/// (This is the "13M normal instructions" of work the paper's AS-local
/// controllers do natively; without it the baseline would be a no-op and
/// the SGX overhead ratio meaningless.)
void charge_route_install(const RoutingTable& table) {
  for (const auto& [prefix, route] : table) {
    crypto::work::charge_alu(2'000 + 120 * route.as_path.size());
  }
}

void charge_policy_preparation(const RoutingPolicy& policy) {
  crypto::work::charge_alu(1'500 + 600 * policy.neighbor_rel.size() +
                           300 * policy.prefixes.size());
}

/// Memory-accounting estimate for storing a policy/table in the enclave.
size_t retained_size(const RoutingPolicy& p) {
  return 64 + p.neighbor_rel.size() * 24 + p.prefixes.size() * 8;
}
size_t retained_size(const RoutingTable& t) {
  size_t s = 64;
  for (const auto& [prefix, route] : t) s += 48 + route.as_path.size() * 8;
  return s;
}

/// Cross-shard application messages (inner payloads of core::kShardApp).
enum AggMsg : uint8_t {
  kAggPolicy = 1,   // u32 admitting_shard | u32 as_node | LV policy
  // u32 from_shard | u32 n | n × (u32 asn | u32 n_rows | rows… |
  //                              u32 n_cands | cands…), each route LV-coded.
  kAggPartial = 3,
};

}  // namespace

// ---------------------------------------------------------------------------
// InterDomainControllerApp
// ---------------------------------------------------------------------------

InterDomainControllerApp::InterDomainControllerApp(
    const sgx::Authority& authority, sgx::AttestationConfig config,
    size_t expected_ases)
    : SecureApp(authority, config), expected_ases_(expected_ases) {}

void InterDomainControllerApp::on_secure_message(core::Ctx& ctx,
                                                 netsim::NodeId peer,
                                                 crypto::BytesView payload) {
  switch (message_type(payload)) {
    case MsgType::kPolicySubmission:
      handle_submission(ctx, peer, message_body(payload));
      break;
    case MsgType::kRegisterPredicate:
      handle_register(ctx, peer, message_body(payload));
      break;
    case MsgType::kVerifyRequest:
      handle_verify(ctx, peer, message_body(payload));
      break;
    default:
      break;  // unknown message: ignore (peer is attested but confused)
  }
}

void InterDomainControllerApp::handle_submission(core::Ctx& ctx,
                                                 netsim::NodeId peer,
                                                 crypto::BytesView body) {
  TENET_COUNT("app.routing.policy_submissions");
  if (shard_active() && !shard()->serving()) {
    // Fail-closed: a minority partition must not admit state that the
    // majority side could be admitting differently.
    ++submissions_dropped_;
    TENET_COUNT("app.routing.submissions_dropped");
    return;
  }
  RoutingPolicy policy;
  try {
    policy = RoutingPolicy::deserialize(body);
  } catch (const std::exception&) {
    return;
  }
  // One node speaks for one AS; re-submission replaces (policy update).
  const auto existing = asn_to_node_.find(policy.asn);
  if (existing != asn_to_node_.end() && existing->second != peer) {
    return;  // another (attested) node already claims this ASN
  }
  const AsNumber asn = policy.asn;
  const uint32_t self =
      shard_active() ? shard()->self_shard() : uint32_t{0};
  const bool first_admission = policies_.find(asn) == policies_.end();
  const bool changed = store_policy(ctx, self, peer, std::move(policy));
  if (shard_active()) {
    // The admission is durable once replicated: the ring successor holds a
    // copy before any other shard ever sees it, so a shard death at any
    // point loses nothing that was admitted.
    crypto::Bytes entry;
    crypto::append_u32(entry, peer);
    crypto::append_lv(entry, policies_.at(asn).serialize());
    shard()->admit(ctx, asn, entry);
    // Every replica needs every policy: the fixpoint is sharded by origin
    // and each shard computes its slice over the full policy set. First
    // admissions batch into one broadcast (initial fill is bursty and
    // nobody can compute until the set is complete anyway); changes to an
    // existing admission flood immediately — peers act on the binding.
    if (changed && first_admission) {
      pending_flood_.push_back(asn);
      maybe_flush_floods(ctx);
    } else if (changed) {
      flood_policies(ctx, {asn});
    }
  }
  maybe_compute(ctx);
}

void InterDomainControllerApp::maybe_compute(core::Ctx& ctx) {
  // Recompute whenever a full policy set is present — including after a
  // live policy *update* from an AS (re-submission replaces the stored
  // policy and triggers fresh routes for everyone). In a shard group the
  // fixpoint is partitioned by origin instead of run whole.
  if (shard_active()) {
    maybe_compute_sharded(ctx);
    return;
  }
  if (policies_.size() < expected_ases_) return;
  // All parties submitted: run the BGP-equivalent computation inside the
  // enclave and return to each AS exactly its own routes.
  ComputationResult result = BgpComputation::compute(policies_);
  size_t retained = 0;
  size_t candidates = 0;
  for (const auto& [asn, table] : result.tables) retained += retained_size(table);
  for (const auto& [asn, per_prefix] : result.candidates) {
    for (const auto& [p, v] : per_prefix) candidates += v.size();
  }
  // The computation's transient allocations (candidate Route objects,
  // path vectors) hit the enclave heap — "dynamic memory allocation that
  // causes context switches" is exactly where Table 4 says the overhead
  // comes from. Natively the same allocations are near-free.
  charge_compute_arena(ctx, retained + candidates * 1'792);
  result_ = std::move(result);
  for (const auto& [asn, node] : asn_to_node_) {
    const auto it = result_->tables.find(asn);
    static const RoutingTable kEmpty;
    const RoutingTable& table = it != result_->tables.end() ? it->second : kEmpty;
    if (is_attested(node)) {
      ctx.send_secure(node, encode_route_advertisement(table));
    }
    // After a restore the bindings are back but the channels are not: an
    // AS that has not re-attested yet gets its table on the recompute its
    // own re-submission triggers.
  }
}

void InterDomainControllerApp::maybe_compute_sharded(core::Ctx& ctx) {
  maybe_flush_floods(ctx);
  if (policies_.size() < expected_ases_) return;
  if (!slice_valid_) {
    // The compute partition is deliberately decoupled from fronting:
    // fronting follows the (hash-based, sticky) admission assignment, but
    // hashing 96 dense keys over 8 buckets leaves the largest bucket ~2×
    // the fair share — and the slowest slice bounds controller
    // throughput. Round-robin over the sorted policy set is perfectly
    // balanced, and every replica derives the same partition from state
    // it already shares (the flooded policy set + the host's liveness
    // hints), so no coordination message is needed.
    const uint32_t self = shard()->self_shard();
    std::vector<uint32_t> live;
    for (const core::ShardMember& m : shard()->members()) {
      if (shard()->is_reachable(m.shard)) live.push_back(m.shard);
    }
    size_t my_rank = 0;
    for (size_t i = 0; i < live.size(); ++i) {
      if (live[i] == self) my_rank = i;
    }
    std::set<AsNumber> origins;
    size_t index = 0;
    for (const auto& [asn, policy] : policies_) {
      if (index++ % live.size() == my_rank) origins.insert(asn);
    }
    ComputationResult slice = BgpComputation::compute(policies_, origins);
    size_t retained = 0;
    size_t candidates = 0;
    for (const auto& [asn, table] : slice.tables) {
      retained += retained_size(table);
    }
    for (const auto& [asn, per_prefix] : slice.candidates) {
      for (const auto& [p, v] : per_prefix) candidates += v.size();
    }
    charge_compute_arena(ctx, retained + candidates * 1'792);
    slice_ = std::move(slice);
    slice_valid_ = true;
    send_partials(ctx);
  }
  maybe_distribute_sharded(ctx);
}

void InterDomainControllerApp::send_partials(core::Ctx& ctx, uint32_t only) {
  if (!slice_valid_ || !slice_.has_value()) return;
  const uint32_t self = shard()->self_shard();
  for (const core::ShardMember& m : shard()->members()) {
    if (m.shard == self || !shard()->is_reachable(m.shard)) continue;
    if (only != core::kInvalidShard && m.shard != only) continue;
    // Bundle our slice's rows for every AS this member fronts. An empty
    // bundle still goes out: the receiver counts senders, not rows.
    std::vector<AsNumber> fronted;
    for (const auto& [asn, ab] : admitted_by_) {
      if (ab.shard == m.shard) fronted.push_back(asn);
    }
    crypto::Bytes inner;
    inner.push_back(kAggPartial);
    crypto::append_u32(inner, self);
    crypto::append_u32(inner, static_cast<uint32_t>(fronted.size()));
    for (const AsNumber asn : fronted) {
      crypto::append_u32(inner, asn);
      const auto t = slice_->tables.find(asn);
      const uint32_t n_rows =
          t != slice_->tables.end() ? static_cast<uint32_t>(t->second.size())
                                    : 0;
      crypto::append_u32(inner, n_rows);
      if (t != slice_->tables.end()) {
        for (const auto& [p, route] : t->second) {
          crypto::append_lv(inner, route.serialize());
        }
      }
      const auto c = slice_->candidates.find(asn);
      uint32_t n_cands = 0;
      if (c != slice_->candidates.end()) {
        for (const auto& [p, v] : c->second) {
          n_cands += static_cast<uint32_t>(v.size());
        }
      }
      crypto::append_u32(inner, n_cands);
      if (c != slice_->candidates.end()) {
        for (const auto& [p, v] : c->second) {
          for (const Route& r : v) crypto::append_lv(inner, r.serialize());
        }
      }
    }
    shard()->send_app_direct(ctx, m.shard, inner);
  }
}

void InterDomainControllerApp::maybe_distribute_sharded(core::Ctx& ctx) {
  if (!slice_valid_ || !slice_.has_value()) return;
  const uint32_t self = shard()->self_shard();
  for (const core::ShardMember& m : shard()->members()) {
    if (m.shard == self) continue;
    if (shard()->is_reachable(m.shard) && !partials_.contains(m.shard)) {
      return;  // a live member's slice is still in flight
    }
  }
  // Assemble complete tables for our fronted ASes: our slice's rows plus
  // every member's partial (slices partition the prefix space, so the
  // union is the full table; merge order is deterministic — own slice,
  // then senders in shard-id order).
  ComputationResult mine;
  for (const auto& [asn, ab] : admitted_by_) {
    if (ab.shard != self) continue;
    RoutingTable table;
    std::map<Prefix, std::vector<Route>> cands;
    const auto t = slice_->tables.find(asn);
    if (t != slice_->tables.end()) table = t->second;
    const auto c = slice_->candidates.find(asn);
    if (c != slice_->candidates.end()) cands = c->second;
    for (const auto& [sender, rows] : partials_) {
      const auto pr = rows.find(asn);
      if (pr == rows.end()) continue;
      for (const auto& [p, route] : pr->second.chosen) table[p] = route;
      for (const auto& [p, v] : pr->second.candidates) {
        auto& dst = cands[p];
        dst.insert(dst.end(), v.begin(), v.end());
      }
    }
    mine.tables[asn] = std::move(table);
    mine.candidates[asn] = std::move(cands);
  }
  result_ = std::move(mine);
  for (const auto& [asn, ab] : admitted_by_) {
    if (ab.shard != self || ab.node == netsim::kInvalidNode) continue;
    const auto it = result_->tables.find(asn);
    static const RoutingTable kEmpty;
    const RoutingTable& table =
        it != result_->tables.end() ? it->second : kEmpty;
    crypto::Bytes advert = encode_route_advertisement(table);
    auto& last = sent_tables_[ab.node];
    if (last == advert) continue;  // unchanged since the last push
    if (is_attested(ab.node)) {
      ctx.send_secure(ab.node, advert);
    } else {
      // Not (re-)attested to this shard yet — hold the table; it flushes
      // from on_peer_attested when the AS's handshake lands.
      ctx.alloc(advert.size());
      pending_tables_[ab.node] = advert;
    }
    last = std::move(advert);
  }
}

// ---------------------------------------------------------------------------
// InterDomainControllerApp: shard-group integration
// ---------------------------------------------------------------------------

bool InterDomainControllerApp::shard_active() const {
  return shard() != nullptr && shard()->active();
}

void InterDomainControllerApp::charge_compute_arena(core::Ctx& ctx,
                                                    size_t bytes) {
  if (bytes <= compute_arena_) return;
  ctx.alloc(bytes - compute_arena_);
  compute_arena_ = bytes;
}

bool InterDomainControllerApp::store_policy(core::Ctx& ctx,
                                            uint32_t admitting_shard,
                                            netsim::NodeId node,
                                            RoutingPolicy policy) {
  // Change detection: floods, replication appends and re-submissions all
  // re-present policies a replica usually already holds — an unchanged
  // store must not invalidate every shard's computed slice.
  const auto existing = policies_.find(policy.asn);
  const auto ab = admitted_by_.find(policy.asn);
  if (existing != policies_.end() && ab != admitted_by_.end() &&
      ab->second.shard == admitting_shard && ab->second.node == node &&
      existing->second.serialize() == policy.serialize()) {
    return false;
  }
  ctx.alloc(retained_size(policy));
  node_to_asn_[node] = policy.asn;
  asn_to_node_[policy.asn] = node;
  admitted_by_[policy.asn] = AdmittedBy{admitting_shard, node};
  policies_[policy.asn] = std::move(policy);
  slice_valid_ = false;  // every shard's slice depends on the full set
  return true;
}

void InterDomainControllerApp::flood_policies(
    core::Ctx& ctx, const std::vector<AsNumber>& asns) {
  if (!shard_active()) return;
  crypto::Bytes inner;
  inner.push_back(kAggPolicy);
  uint32_t count = 0;
  crypto::Bytes body;
  for (const AsNumber asn : asns) {
    const auto ab = admitted_by_.find(asn);
    const auto policy = policies_.find(asn);
    if (ab == admitted_by_.end() || policy == policies_.end()) continue;
    crypto::append_u32(body, ab->second.shard);
    crypto::append_u32(body, ab->second.node);
    crypto::append_lv(body, policy->second.serialize());
    ++count;
  }
  if (count == 0) return;
  crypto::append_u32(inner, count);
  inner.insert(inner.end(), body.begin(), body.end());
  shard()->send_app(ctx, core::kShardBroadcast, inner);
}

bool InterDomainControllerApp::is_shard_member_node(
    netsim::NodeId node) const {
  if (shard() == nullptr) return false;
  for (const core::ShardMember& m : shard()->members()) {
    if (m.node == node) return true;
  }
  return false;
}

void InterDomainControllerApp::maybe_flush_floods(core::Ctx& ctx) {
  if (pending_flood_.empty()) return;
  if (policies_.size() < expected_ases_) {
    // Hold the batch until every AS that attested to this shard has
    // submitted — each client that finished its handshake will send its
    // policy, so the batch is only ever waiting on traffic already in
    // flight (no timer, no host signal). A straggler's own admission
    // re-evaluates this, so late attachers cannot strand the batch.
    for (const netsim::NodeId client : attested_clients_) {
      if (node_to_asn_.find(client) == node_to_asn_.end()) return;
    }
  }
  std::vector<AsNumber> batch;
  batch.swap(pending_flood_);
  flood_policies(ctx, batch);
}

void InterDomainControllerApp::configure_shard(core::Ctx& ctx,
                                               core::ShardConfig cfg) {
  core::ShardReplica::Hooks hooks;
  hooks.apply = [this](core::Ctx& c, uint32_t origin, uint64_t key,
                       crypto::BytesView entry) {
    shard_apply(c, origin, key, entry);
  };
  hooks.snapshot = [this](core::Ctx& c) { return shard_snapshot(c); };
  hooks.install = [this](core::Ctx& c, crypto::BytesView state) {
    return shard_install(c, state);
  };
  hooks.app_message = [this](core::Ctx& c, uint32_t from,
                             crypto::BytesView inner) {
    shard_app(c, from, inner);
  };
  hooks.shard_down = [this](core::Ctx& c, uint32_t s) { on_shard_down(c, s); };
  hooks.shard_up = [this](core::Ctx& c, uint32_t s) { on_shard_up(c, s); };
  enable_sharding(ctx, std::move(cfg), std::move(hooks));
  if (shard_active()) {
    // Pre-attest the full member mesh: partial exchange rides direct
    // channels, and a lazy handshake would otherwise land in the middle
    // of the first computation round (and on the heal critical path).
    for (const core::ShardMember& m : shard()->members()) {
      if (m.shard != shard()->self_shard() && !is_attested(m.node)) {
        ctx.connect(m.node);
      }
    }
  }
  // A healed replica is re-configured with its restored policy set already
  // in place; kick the slice machinery so it re-enters the exchange.
  maybe_compute(ctx);
}

void InterDomainControllerApp::on_shard_down(core::Ctx& ctx,
                                             uint32_t shard_id) {
  // The dead member's rows are void and the compute partition is derived
  // from the live set — drop the stale partial and recompute our (now
  // larger) slice.
  partials_.erase(shard_id);
  slice_valid_ = false;
  reforward_admitted(ctx);
}

void InterDomainControllerApp::on_shard_up(core::Ctx& ctx,
                                           uint32_t shard_id) {
  // The live set grew: the partition shifts, and the rejoined replica
  // (which lost every partial) gets fresh rows from the recompute's
  // send_partials.
  (void)shard_id;
  slice_valid_ = false;
  reforward_admitted(ctx);
}

void InterDomainControllerApp::shard_apply(core::Ctx& ctx, uint32_t origin,
                                           uint64_t key,
                                           crypto::BytesView entry) {
  try {
    crypto::Reader r(entry);
    const netsim::NodeId node = r.u32();
    RoutingPolicy policy = RoutingPolicy::deserialize(r.lv());
    if (policy.asn != key) return;  // entry/key mismatch: refuse
    store_policy(ctx, origin, node, std::move(policy));
  } catch (const std::exception&) {
    return;
  }
}

crypto::Bytes InterDomainControllerApp::shard_snapshot(core::Ctx&) {
  crypto::Bytes state;
  crypto::append_u32(state, static_cast<uint32_t>(policies_.size()));
  for (const auto& [asn, policy] : policies_) {
    const auto node = asn_to_node_.find(asn);
    const auto ab = admitted_by_.find(asn);
    crypto::append_u32(state, node != asn_to_node_.end()
                                  ? node->second
                                  : netsim::kInvalidNode);
    crypto::append_u32(state,
                       ab != admitted_by_.end() ? ab->second.shard : 0);
    crypto::append_lv(state, policy.serialize());
  }
  return state;
}

bool InterDomainControllerApp::shard_install(core::Ctx& ctx,
                                             crypto::BytesView state) {
  // Merge, don't replace: the donor only observed its slice of origins
  // (ring replication), so clobbering local maps would drop policies the
  // donor never saw. Parse everything before touching state so a
  // malformed snapshot changes nothing.
  struct Parsed {
    netsim::NodeId node;
    uint32_t admitting_shard;
    RoutingPolicy policy;
  };
  std::vector<Parsed> parsed;
  try {
    crypto::Reader r(state);
    const uint32_t n = r.u32();
    parsed.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      const netsim::NodeId node = r.u32();
      const uint32_t admitting_shard = r.u32();
      RoutingPolicy policy = RoutingPolicy::deserialize(r.lv());
      parsed.push_back(Parsed{node, admitting_shard, std::move(policy)});
    }
  } catch (const std::exception&) {
    return false;
  }
  size_t retained = 0;
  for (const Parsed& p : parsed) retained += retained_size(p.policy);
  ctx.alloc(retained);
  for (Parsed& p : parsed) {
    if (p.node != netsim::kInvalidNode) {
      node_to_asn_[p.node] = p.policy.asn;
      asn_to_node_[p.policy.asn] = p.node;
    }
    admitted_by_[p.policy.asn] = AdmittedBy{p.admitting_shard, p.node};
    policies_[p.policy.asn] = std::move(p.policy);
  }
  // The merged picture may shift our slice; recompute through the slice
  // machinery (sends go only to member shards — safe before any AS has
  // re-attested).
  slice_valid_ = false;
  if (shard_active()) maybe_compute(ctx);
  return true;
}

void InterDomainControllerApp::shard_app(core::Ctx& ctx, uint32_t from,
                                         crypto::BytesView inner) {
  try {
    crypto::Reader r(inner);
    const auto tag = static_cast<AggMsg>(r.u8());
    if (tag == kAggPolicy) {
      const uint32_t count = r.u32();
      for (uint32_t i = 0; i < count; ++i) {
        const uint32_t admitting_shard = r.u32();
        const netsim::NodeId node = r.u32();
        RoutingPolicy policy = RoutingPolicy::deserialize(r.lv());
        store_policy(ctx, admitting_shard, node, std::move(policy));
      }
      // One compute per batch: a 16-policy flood invalidates the slice
      // once, not sixteen times.
      maybe_compute(ctx);
      return;
    }
    if (tag == kAggPartial) {
      const uint32_t sender = r.u32();
      const uint32_t n = r.u32();
      std::map<AsNumber, PartialRows> rows;
      for (uint32_t i = 0; i < n; ++i) {
        const AsNumber asn = r.u32();
        PartialRows pr;
        const uint32_t n_rows = r.u32();
        for (uint32_t j = 0; j < n_rows; ++j) {
          Route route = Route::deserialize(r.lv());
          pr.chosen[route.prefix] = std::move(route);
        }
        const uint32_t n_cands = r.u32();
        for (uint32_t j = 0; j < n_cands; ++j) {
          Route route = Route::deserialize(r.lv());
          pr.candidates[route.prefix].push_back(std::move(route));
        }
        rows[asn] = std::move(pr);
      }
      ctx.alloc(inner.size());
      partials_[sender] = std::move(rows);
      maybe_compute(ctx);
      return;
    }
  } catch (const std::exception&) {
    return;
  }
  (void)from;
}

void InterDomainControllerApp::reforward_admitted(core::Ctx& ctx) {
  if (!shard_active() || !shard()->serving()) return;
  // The failover span covers the whole adoption: relabeling, the adoption
  // broadcast, and the recompute kick — trace_analyze.py surfaces it as
  // its own phase so heal latency is attributable, not "compute".
  TENET_SPAN("failover", "reforward_admitted");
  TENET_SPAN_SHARD(shard()->self_shard());
  const uint32_t self = shard()->self_shard();
  std::vector<AsNumber> adopted;
  std::map<uint32_t, uint64_t> adopted_from;  // dead shard -> entries taken
  bool changed = false;
  for (auto& [asn, ab] : admitted_by_) {
    if (shard()->is_reachable(ab.shard)) continue;
    const uint32_t dead = ab.shard;
    // Deterministic adoption: the dead shard's ASes move to its first
    // reachable ring successor — the same fallback rule the untrusted
    // router applies, so every survivor re-assigns identically (the slice
    // partition stays a partition) and the AS re-points exactly where its
    // table will be computed. Terminates: self is always reachable.
    uint32_t adopter = shard()->map().successor(ab.shard);
    while (adopter != ab.shard && !shard()->is_reachable(adopter)) {
      adopter = shard()->map().successor(adopter);
    }
    ab.shard = adopter;
    changed = true;
    // The adopter owns the re-announcement; everyone else just relabels.
    if (adopter == self) {
      adopted.push_back(asn);
      ++adopted_from[dead];
    }
  }
  for (const auto& [dead, n] : adopted_from) {
    // node = adopting shard, a = the dead shard, b = admissions adopted.
    TENET_EVENT(kFailoverAdopted, self, dead, n);
  }
  flood_policies(ctx, adopted);  // one broadcast for the whole adoption
  if (changed) slice_valid_ = false;
  maybe_compute(ctx);
}

void InterDomainControllerApp::on_peer_attested(core::Ctx& ctx,
                                                netsim::NodeId peer) {
  if (!is_shard_member_node(peer)) attested_clients_.insert(peer);
  const auto it = pending_tables_.find(peer);
  if (it == pending_tables_.end()) return;
  ctx.send_secure(peer, it->second);
  pending_tables_.erase(it);
}

void InterDomainControllerApp::handle_register(core::Ctx& ctx,
                                               netsim::NodeId peer,
                                               crypto::BytesView body) {
  TENET_COUNT("app.routing.predicate_registrations");
  const auto asn = asn_of(peer);
  if (!asn.has_value()) return;
  crypto::Reader r(body);
  uint32_t pred_id = 0;
  Predicate predicate = Predicate::path_length_at_most(0, 0, 0);
  try {
    pred_id = r.u32();
    predicate = Predicate::deserialize(r.lv());
  } catch (const std::exception&) {
    return;
  }
  // Only the ASes named by the predicate may participate in it.
  const std::vector<AsNumber> parties = predicate.parties();
  if (std::find(parties.begin(), parties.end(), *asn) == parties.end()) {
    return;
  }
  auto it = predicates_.find(pred_id);
  if (it == predicates_.end()) {
    ctx.alloc(128);
    predicates_.emplace(pred_id, Registration{std::move(predicate), {*asn}});
    return;
  }
  // Second party must register a structurally identical predicate — that
  // is the "agreed upon by the two ASes" condition.
  if (!it->second.predicate.equals(predicate)) return;
  it->second.registered_by.insert(*asn);
}

void InterDomainControllerApp::handle_verify(core::Ctx& ctx,
                                             netsim::NodeId peer,
                                             crypto::BytesView body) {
  TENET_COUNT("app.routing.verify_requests");
  const auto asn = asn_of(peer);
  if (!asn.has_value()) return;
  uint32_t pred_id = 0;
  try {
    pred_id = crypto::read_u32(body, 0);
  } catch (const std::exception&) {
    return;
  }
  auto respond = [&](VerifyStatus status) {
    ctx.send_secure(peer, encode_verify_response(pred_id, status));
  };

  const auto it = predicates_.find(pred_id);
  if (it == predicates_.end()) return respond(VerifyStatus::kNotAgreed);
  const Registration& reg = it->second;

  const std::vector<AsNumber> parties = reg.predicate.parties();
  if (std::find(parties.begin(), parties.end(), *asn) == parties.end()) {
    return respond(VerifyStatus::kNotAParty);
  }
  // Every named party must have countersigned (registered) the predicate.
  for (const AsNumber p : parties) {
    if (!reg.registered_by.contains(p)) return respond(VerifyStatus::kNotAgreed);
  }
  if (!result_.has_value()) return respond(VerifyStatus::kNotReady);
  respond(reg.predicate.evaluate(*result_) ? VerifyStatus::kHolds
                                           : VerifyStatus::kViolated);
}

crypto::Bytes InterDomainControllerApp::on_checkpoint(core::Ctx&) {
  // Predicates and the computed result are deliberately excluded: the
  // result is recomputed from the policies, and predicates must be
  // re-agreed by their parties after a restart (conservative choice).
  crypto::Bytes state;
  crypto::append_u32(state, static_cast<uint32_t>(policies_.size()));
  for (const auto& [asn, policy] : policies_) {
    const auto node = asn_to_node_.find(asn);
    crypto::append_u32(state,
                       node != asn_to_node_.end() ? node->second
                                                  : netsim::kInvalidNode);
    crypto::append_lv(state, policy.serialize());
  }
  // Trailing flag: was this controller part of an active shard group? A
  // restored shard must NOT run the whole fixpoint at restore time (its
  // slice machinery recomputes after re-configuration) — that full
  // compute is exactly the cost sharding removes from the heal path.
  state.push_back(shard_active() ? 1 : 0);
  return state;
}

void InterDomainControllerApp::on_restore(core::Ctx& ctx,
                                          crypto::BytesView state) {
  bool was_sharded = false;
  try {
    crypto::Reader r(state);
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) {
      const netsim::NodeId node = r.u32();
      RoutingPolicy policy = RoutingPolicy::deserialize(r.lv());
      if (node != netsim::kInvalidNode) {
        node_to_asn_[node] = policy.asn;
        asn_to_node_[policy.asn] = node;
      }
      ctx.alloc(retained_size(policy));
      policies_[policy.asn] = std::move(policy);
    }
    was_sharded = r.remaining() >= 1 && r.u8() != 0;
  } catch (const std::exception&) {
    return;  // partial restore: remaining policies arrive by re-submission
  }
  // Unsharded: recompute locally so kCtlComputed/verification answer
  // again, but do NOT push advertisements — the restarted enclave has no
  // attested channels yet; each AS re-submits after re-attesting and that
  // triggers a fresh (authenticated) distribution. Sharded: skip the full
  // fixpoint entirely — the slice machinery recomputes this shard's part
  // after the host re-issues the shard config.
  if (!was_sharded && policies_.size() >= expected_ases_) {
    result_ = BgpComputation::compute(policies_);
  }
}

std::optional<AsNumber> InterDomainControllerApp::asn_of(
    netsim::NodeId peer) const {
  const auto it = node_to_asn_.find(peer);
  if (it == node_to_asn_.end()) return std::nullopt;
  return it->second;
}

crypto::Bytes InterDomainControllerApp::on_control(core::Ctx& ctx,
                                                   uint32_t subfn,
                                                   crypto::BytesView arg) {
  crypto::Bytes out;
  switch (subfn) {
    case kCtlPoliciesReceived:
      crypto::append_u64(out, policies_.size());
      return out;
    case kCtlComputed:
      out.push_back(result_.has_value() ? 1 : 0);
      return out;
    case kCtlConfigureShard: {
      configure_shard(ctx, core::ShardConfig::deserialize(arg));
      return out;
    }
    case kCtlBeginShardJoin:
      if (shard() != nullptr) shard()->begin_join(ctx);
      return out;
    case kCtlShardReachable: {
      if (shard() != nullptr && arg.size() >= 5) {
        shard()->set_reachable(ctx, crypto::read_u32(arg, 0), arg[4] != 0);
      }
      return out;
    }
    case kCtlSubmissionsDropped:
      crypto::append_u64(out, submissions_dropped_);
      return out;
    case kCtlCandidateCount: {
      uint64_t n = 0;
      if (result_.has_value()) {
        for (const auto& [asn, per_prefix] : result_->candidates) {
          for (const auto& [p, v] : per_prefix) n += v.size();
        }
      }
      crypto::append_u64(out, n);
      return out;
    }
    default:
      return out;
  }
}

// ---------------------------------------------------------------------------
// AsLocalControllerApp
// ---------------------------------------------------------------------------

AsLocalControllerApp::AsLocalControllerApp(const sgx::Authority& authority,
                                           sgx::AttestationConfig config,
                                           RoutingPolicy policy)
    : SecureApp(authority, config), policy_(std::move(policy)) {}

void AsLocalControllerApp::on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                                             crypto::BytesView payload) {
  if (peer != controller_) return;  // only the attested controller talks to us
  switch (message_type(payload)) {
    case MsgType::kRouteAdvertisement: {
      RoutingTable table;
      try {
        table = decode_routing_table(message_body(payload));
      } catch (const std::exception&) {
        return;
      }
      ctx.alloc(retained_size(table));
      charge_route_install(table);
      routes_ = std::move(table);
      has_routes_ = true;
      return;
    }
    case MsgType::kVerifyResponse: {
      const crypto::BytesView body = message_body(payload);
      last_verdict_.assign(body.begin(), body.end());
      return;
    }
    default:
      return;
  }
}

void AsLocalControllerApp::on_peer_attested(core::Ctx& ctx,
                                            netsim::NodeId peer) {
  // First attestation: the host drives submission via kCtlSubmitPolicy, so
  // submitted_ is still false here and nothing is sent. Re-attestation
  // after a controller restart (or a fault-window re-handshake): release
  // the policy again so the controller regains the full set.
  if (peer == controller_ && submitted_) {
    charge_policy_preparation(policy_);
    ctx.send_secure(peer, encode_policy_submission(policy_));
  }
}

crypto::Bytes AsLocalControllerApp::on_control(core::Ctx& ctx, uint32_t subfn,
                                               crypto::BytesView arg) {
  switch (subfn) {
    case kCtlConnectController:
      controller_ = crypto::read_u32(arg, 0);
      ctx.connect(controller_);
      return {};
    case kCtlSubmitPolicy: {
      TENET_TRACE_ROOT("routing", "submit_policy");
      // The policy leaves the enclave ONLY through the attested channel.
      charge_policy_preparation(policy_);
      submitted_ = true;
      ctx.send_secure(controller_, encode_policy_submission(policy_));
      return {};
    }
    case kCtlUpdateLocalPref: {
      // Operator reconfiguration: adjust this AS's preference for one
      // neighbor. Takes effect at the controller on the next submission.
      crypto::Reader r(arg);
      const AsNumber neighbor = r.u32();
      const uint32_t pref = r.u32();
      if (policy_.neighbor_rel.contains(neighbor)) {
        policy_.local_pref[neighbor] = pref;
      }
      return {};
    }
    case kCtlGetOwnTable:
      return encode_routing_table(routes_);
    case kCtlRegisterPredicate: {
      crypto::Bytes msg(arg.begin(), arg.end());
      crypto::Reader r(arg);
      const uint32_t pred_id = r.u32();
      const Predicate p = Predicate::deserialize(r.lv());
      ctx.send_secure(controller_, encode_register_predicate(pred_id, p));
      return {};
    }
    case kCtlRequestVerify:
      ctx.send_secure(controller_,
                      encode_verify_request(crypto::read_u32(arg, 0)));
      return {};
    case kCtlLastVerdict:
      return last_verdict_;
    case kCtlHasRoutes: {
      crypto::Bytes out;
      out.push_back(has_routes_ ? 1 : 0);
      return out;
    }
    default:
      return {};
  }
}

// ---------------------------------------------------------------------------
// Native baseline
// ---------------------------------------------------------------------------

void NativeInterDomainController::on_message(core::NativeNode& node,
                                             netsim::NodeId src, uint32_t,
                                             crypto::BytesView payload) {
  switch (message_type(payload)) {
    case MsgType::kPolicySubmission: {
      RoutingPolicy policy;
      try {
        policy = RoutingPolicy::deserialize(message_body(payload));
      } catch (const std::exception&) {
        return;
      }
      asn_to_node_[policy.asn] = src;
      policies_[policy.asn] = std::move(policy);
      if (!result_.has_value() && policies_.size() >= expected_ases_) {
        result_ = BgpComputation::compute(policies_);
        for (const auto& [asn, dst] : asn_to_node_) {
          const auto it = result_->tables.find(asn);
          static const RoutingTable kEmpty;
          node.send_app(dst, core::kPortPlain,
                        encode_route_advertisement(
                            it != result_->tables.end() ? it->second : kEmpty));
        }
      }
      return;
    }
    default:
      return;
  }
}

crypto::Bytes NativeInterDomainController::on_control(core::NativeNode&,
                                                      uint32_t subfn,
                                                      crypto::BytesView) {
  crypto::Bytes out;
  if (subfn == kCtlPoliciesReceived) {
    crypto::append_u64(out, policies_.size());
  } else if (subfn == kCtlComputed) {
    out.push_back(result_.has_value() ? 1 : 0);
  }
  return out;
}

void NativeAsController::on_message(core::NativeNode&, netsim::NodeId src,
                                    uint32_t, crypto::BytesView payload) {
  if (src != controller_) return;
  if (message_type(payload) == MsgType::kRouteAdvertisement) {
    try {
      RoutingTable table = decode_routing_table(message_body(payload));
      charge_route_install(table);
      routes_ = std::move(table);
      has_routes_ = true;
    } catch (const std::exception&) {
    }
  }
}

crypto::Bytes NativeAsController::on_control(core::NativeNode& node,
                                             uint32_t subfn,
                                             crypto::BytesView arg) {
  switch (subfn) {
    case kCtlConnectController:
      controller_ = crypto::read_u32(arg, 0);
      return {};
    case kCtlSubmitPolicy:
      charge_policy_preparation(policy_);
      node.send_app(controller_, core::kPortPlain,
                    encode_policy_submission(policy_));
      return {};
    case kCtlGetOwnTable:
      return encode_routing_table(routes_);
    case kCtlHasRoutes: {
      crypto::Bytes out;
      out.push_back(has_routes_ ? 1 : 0);
      return out;
    }
    default:
      return {};
  }
}

}  // namespace tenet::routing
