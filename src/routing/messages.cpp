#include "routing/messages.h"

#include <algorithm>
#include <stdexcept>

namespace tenet::routing {

namespace {
crypto::Bytes with_tag(MsgType t, crypto::BytesView body) {
  crypto::Bytes out(1 + body.size());
  out[0] = static_cast<uint8_t>(t);
  std::copy(body.begin(), body.end(), out.begin() + 1);
  return out;
}
}  // namespace

crypto::Bytes encode_policy_submission(const RoutingPolicy& policy) {
  return with_tag(MsgType::kPolicySubmission, policy.serialize());
}

crypto::Bytes encode_route_advertisement(const RoutingTable& table) {
  return with_tag(MsgType::kRouteAdvertisement, encode_routing_table(table));
}

crypto::Bytes encode_register_predicate(uint32_t pred_id, const Predicate& p) {
  crypto::Bytes body;
  crypto::append_u32(body, pred_id);
  crypto::append_lv(body, p.serialize());
  return with_tag(MsgType::kRegisterPredicate, body);
}

crypto::Bytes encode_verify_request(uint32_t pred_id) {
  crypto::Bytes body;
  crypto::append_u32(body, pred_id);
  return with_tag(MsgType::kVerifyRequest, body);
}

crypto::Bytes encode_verify_response(uint32_t pred_id, VerifyStatus status) {
  crypto::Bytes body;
  crypto::append_u32(body, pred_id);
  body.push_back(static_cast<uint8_t>(status));
  return with_tag(MsgType::kVerifyResponse, body);
}

MsgType message_type(crypto::BytesView wire) {
  if (wire.empty()) throw std::invalid_argument("message_type: empty message");
  return static_cast<MsgType>(wire[0]);
}

crypto::BytesView message_body(crypto::BytesView wire) {
  if (wire.empty()) throw std::invalid_argument("message_body: empty message");
  return wire.subspan(1);
}

crypto::Bytes encode_routing_table(const RoutingTable& table) {
  crypto::Bytes out;
  crypto::append_u32(out, static_cast<uint32_t>(table.size()));
  for (const auto& [prefix, route] : table) {
    crypto::append_lv(out, route.serialize());
  }
  return out;
}

RoutingTable decode_routing_table(crypto::BytesView wire) {
  crypto::Reader r(wire);
  RoutingTable table;
  const uint32_t n = r.u32();
  for (uint32_t i = 0; i < n; ++i) {
    Route route = Route::deserialize(r.lv());
    table[route.prefix] = std::move(route);
  }
  return table;
}

}  // namespace tenet::routing
