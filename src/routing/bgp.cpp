#include "routing/bgp.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <set>
#include <stdexcept>

#include "crypto/work.h"

namespace tenet::routing {

namespace {

/// Work charged per candidate-route evaluation: models the parse/compare/
/// copy instructions a BGP decision step executes.
constexpr uint64_t kAluPerCandidate = 3'000;
constexpr uint64_t kAluPerPathHop = 150;

void validate_consistency(const std::map<AsNumber, RoutingPolicy>& policies) {
  for (const auto& [asn, policy] : policies) {
    if (policy.asn != asn) {
      throw std::invalid_argument("BgpComputation: policy/key mismatch");
    }
    for (const auto& [nbr, rel] : policy.neighbor_rel) {
      const auto it = policies.find(nbr);
      if (it == policies.end()) {
        throw std::invalid_argument("BgpComputation: neighbor has no policy");
      }
      const auto back = it->second.neighbor_rel.find(asn);
      if (back == it->second.neighbor_rel.end() ||
          back->second != inverse(rel)) {
        throw std::invalid_argument(
            "BgpComputation: inconsistent relationship annotation");
      }
    }
  }
}

uint32_t local_pref_of(const RoutingPolicy& p, AsNumber nbr) {
  const auto it = p.local_pref.find(nbr);
  return it != p.local_pref.end() ? it->second : 0;
}

}  // namespace

crypto::Bytes Route::serialize() const {
  crypto::Bytes out;
  crypto::append_u32(out, prefix);
  crypto::append_u32(out, static_cast<uint32_t>(as_path.size()));
  for (const AsNumber a : as_path) crypto::append_u32(out, a);
  out.push_back(static_cast<uint8_t>(learned_from));
  crypto::append_u32(out, pref);
  out.push_back(self_originated ? 1 : 0);
  return out;
}

Route Route::deserialize(crypto::BytesView wire) {
  crypto::Reader r(wire);
  Route route;
  route.prefix = r.u32();
  const uint32_t n = r.u32();
  for (uint32_t i = 0; i < n; ++i) route.as_path.push_back(r.u32());
  route.learned_from = static_cast<Relationship>(r.u8());
  route.pref = r.u32();
  route.self_originated = r.u8() != 0;
  return route;
}

bool Route::better_than(const Route& other) const {
  if (pref != other.pref) return pref > other.pref;
  if (as_path.size() != other.as_path.size()) {
    return as_path.size() < other.as_path.size();
  }
  return next_hop() < other.next_hop();
}

const Route* ComputationResult::route_of(AsNumber asn, Prefix p) const {
  const auto it = tables.find(asn);
  if (it == tables.end()) return nullptr;
  const auto jt = it->second.find(p);
  return jt != it->second.end() ? &jt->second : nullptr;
}

uint32_t BgpComputation::import_pref(Relationship rel, uint32_t lp) {
  // Relationship class dominates: customer 300+, peer 200+, provider 100+.
  const uint32_t base = rel == Relationship::kCustomer ? 300
                        : rel == Relationship::kPeer   ? 200
                                                       : 100;
  return base + std::min<uint32_t>(lp, 99);
}

bool BgpComputation::exportable(Relationship learned_from, Relationship to) {
  // Valley-free: customer-learned routes go everywhere; peer/provider
  // routes only down to customers.
  if (learned_from == Relationship::kCustomer) return true;
  return to == Relationship::kCustomer;
}

ComputationResult BgpComputation::compute(
    const std::map<AsNumber, RoutingPolicy>& policies) {
  return compute_filtered(policies, nullptr);
}

ComputationResult BgpComputation::compute(
    const std::map<AsNumber, RoutingPolicy>& policies,
    const std::set<AsNumber>& origin_ases) {
  return compute_filtered(policies, &origin_ases);
}

ComputationResult BgpComputation::compute_filtered(
    const std::map<AsNumber, RoutingPolicy>& policies,
    const std::set<AsNumber>* origin_filter) {
  validate_consistency(policies);

  ComputationResult result;
  // Collect origins (restricted to the filter's ASes when slicing).
  std::vector<std::pair<Prefix, AsNumber>> origins;
  for (const auto& [asn, policy] : policies) {
    if (origin_filter != nullptr && !origin_filter->contains(asn)) continue;
    for (const Prefix p : policy.prefixes) origins.emplace_back(p, asn);
  }

  for (const auto& [prefix, origin] : origins) {
    // best[asn] = current best route (absent = unreachable so far).
    std::map<AsNumber, Route> best;
    Route self;
    self.prefix = prefix;
    self.pref = 1000;
    self.self_originated = true;
    best[origin] = self;

    // Synchronous best-response sweeps: each round, every AS re-chooses
    // its best route from what its neighbors *currently* hold (not a
    // monotone-improvement relaxation — a neighbor switching paths can
    // make a previously heard route disappear). Gao-Rexford-consistent
    // policies are safe: this converges to the unique stable solution.
    bool changed = true;
    size_t iterations = 0;
    while (changed) {
      changed = false;
      if (++iterations > policies.size() + 8) {
        throw std::runtime_error("BgpComputation: failed to converge");
      }
      std::map<AsNumber, Route> next = {{origin, self}};
      for (const auto& [v, pv] : policies) {
        if (v == origin) continue;
        const Route* best_cand = nullptr;
        Route best_route;
        for (const auto& [u, rel_u_from_v] : pv.neighbor_rel) {
          const auto it = best.find(u);
          if (it == best.end()) continue;
          const Route& route_u = it->second;
          const Relationship rel_v_from_u = policies.at(u).neighbor_rel.at(v);
          if (!route_u.self_originated &&
              !exportable(route_u.learned_from, rel_v_from_u)) {
            continue;
          }
          crypto::work::charge_alu(kAluPerCandidate +
                                   kAluPerPathHop * route_u.as_path.size());
          if (std::find(route_u.as_path.begin(), route_u.as_path.end(), v) !=
              route_u.as_path.end()) {
            continue;  // loop
          }
          Route cand;
          cand.prefix = prefix;
          cand.as_path.reserve(route_u.as_path.size() + 1);
          cand.as_path.push_back(u);
          cand.as_path.insert(cand.as_path.end(), route_u.as_path.begin(),
                              route_u.as_path.end());
          cand.learned_from = rel_u_from_v;
          cand.pref = import_pref(rel_u_from_v, local_pref_of(pv, u));
          if (best_cand == nullptr || cand.better_than(best_route)) {
            best_route = std::move(cand);
            best_cand = &best_route;
          }
        }
        if (best_cand != nullptr) next[v] = std::move(best_route);
      }
      auto equal = [](const std::map<AsNumber, Route>& a,
                      const std::map<AsNumber, Route>& b) {
        if (a.size() != b.size()) return false;
        for (const auto& [k, r] : a) {
          const auto it = b.find(k);
          if (it == b.end() || it->second.as_path != r.as_path ||
              it->second.pref != r.pref) {
            return false;
          }
        }
        return true;
      };
      changed = !equal(next, best);
      best = std::move(next);
    }

    // Final pass: record converged tables and the candidate sets (what
    // each AS hears from each neighbor in the converged state).
    for (const auto& [asn, route] : best) {
      if (!route.self_originated) result.tables[asn][prefix] = route;
    }
    for (const auto& [u, route_u] : best) {
      const RoutingPolicy& pu = policies.at(u);
      for (const auto& [v, rel_v_from_u] : pu.neighbor_rel) {
        if (!route_u.self_originated &&
            !exportable(route_u.learned_from, rel_v_from_u)) {
          continue;
        }
        if (v == origin ||
            std::find(route_u.as_path.begin(), route_u.as_path.end(), v) !=
                route_u.as_path.end()) {
          continue;
        }
        const RoutingPolicy& pv = policies.at(v);
        Route cand;
        cand.prefix = prefix;
        cand.as_path.push_back(u);
        cand.as_path.insert(cand.as_path.end(), route_u.as_path.begin(),
                            route_u.as_path.end());
        cand.learned_from = pv.neighbor_rel.at(u);
        cand.pref = import_pref(cand.learned_from, local_pref_of(pv, u));
        result.candidates[v][prefix].push_back(std::move(cand));
        crypto::work::charge_alu(kAluPerCandidate);
      }
    }
  }
  return result;
}

std::map<AsNumber, RoutingTable> ReferenceBgp::compute(
    const std::map<AsNumber, RoutingPolicy>& policies) {
  validate_consistency(policies);

  // Distributed BGP: each AS holds an Adj-RIB-In per neighbor and reacts
  // to update messages. Withdrawals are unnecessary (static topology,
  // monotone improvement within a neighbor's stream is not assumed — a
  // neighbor's new announcement replaces its old one).
  struct Update {
    AsNumber from, to;
    bool withdraw;
    Route route;  // as seen by the *sender* (path starts at sender's hop)
  };
  std::map<AsNumber, std::map<AsNumber, std::map<Prefix, Route>>> rib_in;
  std::map<AsNumber, std::map<Prefix, Route>> loc_rib;  // chosen (non-self)
  std::deque<Update> queue;  // FIFO preserves per-link message order

  auto announce_to_neighbors = [&](AsNumber u, const Route& chosen) {
    const RoutingPolicy& pu = policies.at(u);
    for (const auto& [v, rel_v] : pu.neighbor_rel) {
      if (!chosen.self_originated &&
          !BgpComputation::exportable(chosen.learned_from, rel_v)) {
        // Export no longer permitted toward v: withdraw any earlier
        // announcement (the chosen route changed relationship class).
        Update w{u, v, /*withdraw=*/true, Route{}};
        w.route.prefix = chosen.prefix;
        queue.push_back(std::move(w));
        continue;
      }
      Route advert;
      advert.prefix = chosen.prefix;
      advert.as_path.push_back(u);
      advert.as_path.insert(advert.as_path.end(), chosen.as_path.begin(),
                            chosen.as_path.end());
      queue.push_back(Update{u, v, /*withdraw=*/false, std::move(advert)});
    }
  };

  // Bootstrap: origins announce their prefixes.
  for (const auto& [asn, policy] : policies) {
    for (const Prefix p : policy.prefixes) {
      Route self;
      self.prefix = p;
      self.self_originated = true;
      self.pref = 1000;
      announce_to_neighbors(asn, self);
    }
  }

  size_t processed = 0;
  while (!queue.empty()) {
    if (++processed > 4'000'000) {
      throw std::runtime_error("ReferenceBgp: update storm (no convergence)");
    }
    Update up = std::move(queue.front());
    queue.pop_front();
    const RoutingPolicy& pv = policies.at(up.to);
    const Prefix prefix = up.route.prefix;

    // Ignore announcements for prefixes we originate.
    if (std::find(pv.prefixes.begin(), pv.prefixes.end(), prefix) !=
        pv.prefixes.end()) {
      continue;
    }

    if (up.withdraw) {
      rib_in[up.to][up.from].erase(prefix);
    } else if (std::find(up.route.as_path.begin(), up.route.as_path.end(),
                         up.to) != up.route.as_path.end()) {
      // Loop: treat as an implicit withdrawal of this neighbor's offer.
      rib_in[up.to][up.from].erase(prefix);
    } else {
      Route imported = up.route;
      imported.learned_from = pv.neighbor_rel.at(up.from);
      imported.pref = BgpComputation::import_pref(imported.learned_from,
                                                  local_pref_of(pv, up.from));
      rib_in[up.to][up.from][prefix] = std::move(imported);
    }

    // Decision process over all of Adj-RIB-In.
    const Route* best = nullptr;
    for (const auto& [nbr, routes] : rib_in[up.to]) {
      const auto it = routes.find(prefix);
      if (it == routes.end()) continue;
      if (best == nullptr || it->second.better_than(*best)) {
        best = &it->second;
      }
    }
    auto& current = loc_rib[up.to];
    const auto cur_it = current.find(prefix);
    if (best == nullptr) {
      if (cur_it != current.end()) {
        // Lost all routes: withdraw everywhere.
        current.erase(cur_it);
        for (const auto& [v, rel_v] : pv.neighbor_rel) {
          Update w{up.to, v, /*withdraw=*/true, Route{}};
          w.route.prefix = prefix;
          queue.push_back(std::move(w));
        }
      }
      continue;
    }
    const bool changed = cur_it == current.end() ||
                         !(cur_it->second.as_path == best->as_path &&
                           cur_it->second.pref == best->pref);
    if (changed) {
      current[prefix] = *best;
      announce_to_neighbors(up.to, *best);
    }
  }

  std::map<AsNumber, RoutingTable> tables;
  for (auto& [asn, routes] : loc_rib) {
    for (auto& [p, r] : routes) tables[asn][p] = r;
  }
  return tables;
}

void ReferenceBgp::check_stable(
    const std::map<AsNumber, RoutingPolicy>& policies,
    const std::map<AsNumber, RoutingTable>& tables) {
  auto fail = [](const std::string& why) { throw std::logic_error(why); };

  for (const auto& [asn, table] : tables) {
    const RoutingPolicy& pa = policies.at(asn);
    for (const auto& [prefix, route] : table) {
      // Path structure: non-empty, loop-free, ends at an originator.
      if (route.as_path.empty()) fail("empty path");
      std::set<AsNumber> seen{asn};
      for (const AsNumber hop : route.as_path) {
        if (!seen.insert(hop).second) fail("loop in path");
      }
      const RoutingPolicy& porigin = policies.at(route.as_path.back());
      if (std::find(porigin.prefixes.begin(), porigin.prefixes.end(),
                    prefix) == porigin.prefixes.end()) {
        fail("path does not end at the prefix origin");
      }
      // Links exist; path is valley-free under export rules.
      AsNumber prev = asn;
      for (size_t i = 0; i < route.as_path.size(); ++i) {
        const AsNumber hop = route.as_path[i];
        if (!policies.at(prev).neighbor_rel.contains(hop)) {
          fail("path uses a non-existent link");
        }
        if (i + 1 < route.as_path.size()) {
          const RoutingPolicy& phop = policies.at(hop);
          const Relationship learned = phop.neighbor_rel.at(route.as_path[i + 1]);
          const Relationship to = phop.neighbor_rel.at(prev);
          if (!BgpComputation::exportable(learned, to)) {
            fail("path violates export (valley-free) rules");
          }
        }
        prev = hop;
      }
      // Next-hop consistency: our path through v extends v's chosen path.
      const AsNumber v = route.as_path.front();
      if (route.as_path.size() > 1) {
        const auto vt = tables.find(v);
        if (vt == tables.end()) fail("next hop has no routing table");
        const auto& vtable = vt->second;
        const auto vr = vtable.find(prefix);
        if (vr == vtable.end()) fail("next hop has no route");
        std::vector<AsNumber> expected{route.as_path.begin() + 1,
                                       route.as_path.end()};
        if (vr->second.as_path != expected) {
          fail("path does not extend next hop's chosen path");
        }
      }
      // Stability: no strictly better offer exists among neighbors'
      // chosen routes (best-response condition).
      for (const auto& [nbr, rel_nbr] : pa.neighbor_rel) {
        Route offer;
        bool offered = false;
        const RoutingPolicy& pn = policies.at(nbr);
        if (std::find(pn.prefixes.begin(), pn.prefixes.end(), prefix) !=
            pn.prefixes.end()) {
          offer.as_path = {nbr};
          offered = true;
        } else {
          const auto nt = tables.find(nbr);
          if (nt != tables.end()) {
            const auto nr = nt->second.find(prefix);
            if (nr != nt->second.end() &&
                BgpComputation::exportable(nr->second.learned_from,
                                           pn.neighbor_rel.at(asn))) {
              offer.as_path.push_back(nbr);
              offer.as_path.insert(offer.as_path.end(),
                                   nr->second.as_path.begin(),
                                   nr->second.as_path.end());
              offered = true;
            }
          }
        }
        if (!offered) continue;
        if (std::find(offer.as_path.begin(), offer.as_path.end(), asn) !=
            offer.as_path.end()) {
          continue;  // loopy offer; not usable
        }
        offer.prefix = prefix;
        offer.learned_from = rel_nbr;
        offer.pref = BgpComputation::import_pref(offer.learned_from,
                                                 local_pref_of(pa, nbr));
        if (offer.better_than(route)) {
          fail("instability: a neighbor offers a strictly better route");
        }
      }
    }
  }
}

}  // namespace tenet::routing
