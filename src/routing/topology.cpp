#include "routing/topology.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace tenet::routing {

const char* to_string(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return "customer";
    case Relationship::kPeer: return "peer";
    case Relationship::kProvider: return "provider";
  }
  return "?";
}

Relationship inverse(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return Relationship::kProvider;
    case Relationship::kProvider: return Relationship::kCustomer;
    case Relationship::kPeer: return Relationship::kPeer;
  }
  return Relationship::kPeer;
}

void AsGraph::add_as(AsNumber asn) { adj_[asn]; }

void AsGraph::add_link(AsNumber a, Relationship rel_of_b_from_a, AsNumber b) {
  if (a == b) throw std::invalid_argument("AsGraph: self link");
  adj_[a][b] = rel_of_b_from_a;
  adj_[b][a] = inverse(rel_of_b_from_a);
}

void AsGraph::add_customer_provider(AsNumber customer, AsNumber provider) {
  add_link(customer, Relationship::kProvider, provider);
}

void AsGraph::add_peering(AsNumber a, AsNumber b) {
  add_link(a, Relationship::kPeer, b);
}

bool AsGraph::has_as(AsNumber asn) const { return adj_.contains(asn); }

bool AsGraph::has_link(AsNumber a, AsNumber b) const {
  const auto it = adj_.find(a);
  return it != adj_.end() && it->second.contains(b);
}

std::optional<Relationship> AsGraph::relationship(AsNumber asn,
                                                  AsNumber neighbor) const {
  const auto it = adj_.find(asn);
  if (it == adj_.end()) return std::nullopt;
  const auto jt = it->second.find(neighbor);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

std::vector<AsNumber> AsGraph::ases() const {
  std::vector<AsNumber> out;
  out.reserve(adj_.size());
  for (const auto& [asn, _] : adj_) out.push_back(asn);
  return out;
}

std::vector<std::pair<AsNumber, Relationship>> AsGraph::neighbors(
    AsNumber asn) const {
  std::vector<std::pair<AsNumber, Relationship>> out;
  const auto it = adj_.find(asn);
  if (it == adj_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [n, rel] : it->second) out.emplace_back(n, rel);
  return out;
}

size_t AsGraph::link_count() const {
  size_t twice = 0;
  for (const auto& [asn, nbrs] : adj_) twice += nbrs.size();
  return twice / 2;
}

bool AsGraph::connected() const {
  if (adj_.empty()) return true;
  std::set<AsNumber> seen;
  std::vector<AsNumber> stack{adj_.begin()->first};
  while (!stack.empty()) {
    const AsNumber u = stack.back();
    stack.pop_back();
    if (!seen.insert(u).second) continue;
    for (const auto& [v, rel] : adj_.at(u)) {
      if (!seen.contains(v)) stack.push_back(v);
    }
  }
  return seen.size() == adj_.size();
}

AsGraph AsGraph::random(crypto::Drbg& rng, size_t n_ases,
                        double extra_peering_prob) {
  if (n_ases < 2) throw std::invalid_argument("AsGraph::random: need >= 2 ASes");
  AsGraph g;
  // Tier sizes: ~10% tier-1 (at least 1), ~30% mid, rest stubs.
  const size_t n_tier1 = std::max<size_t>(1, n_ases / 10);
  const size_t n_mid = std::max<size_t>(1, (n_ases * 3) / 10);
  const AsNumber first_mid = static_cast<AsNumber>(n_tier1 + 1);
  const AsNumber first_stub = static_cast<AsNumber>(n_tier1 + n_mid + 1);

  for (AsNumber asn = 1; asn <= n_ases; ++asn) g.add_as(asn);

  // Tier-1 full peering clique.
  for (AsNumber a = 1; a <= n_tier1; ++a) {
    for (AsNumber b = a + 1; b <= n_tier1; ++b) g.add_peering(a, b);
  }
  // Mid tier buys from 1-2 tier-1 providers.
  for (AsNumber m = first_mid; m < first_stub && m <= n_ases; ++m) {
    const AsNumber p1 = static_cast<AsNumber>(1 + rng.uniform(n_tier1));
    g.add_customer_provider(m, p1);
    if (n_tier1 > 1 && rng.uniform_real() < 0.5) {
      AsNumber p2 = static_cast<AsNumber>(1 + rng.uniform(n_tier1));
      while (p2 == p1) p2 = static_cast<AsNumber>(1 + rng.uniform(n_tier1));
      g.add_customer_provider(m, p2);
    }
    // Lateral peering within the mid tier.
    for (AsNumber other = first_mid; other < m; ++other) {
      if (rng.uniform_real() < extra_peering_prob) g.add_peering(m, other);
    }
  }
  // Stubs buy from 1-2 mid-tier providers.
  const size_t mid_span = first_stub - first_mid;
  for (AsNumber s = first_stub; s <= n_ases; ++s) {
    const AsNumber p1 =
        static_cast<AsNumber>(first_mid + rng.uniform(mid_span));
    g.add_customer_provider(s, p1);
    if (mid_span > 1 && rng.uniform_real() < 0.3) {
      AsNumber p2 = static_cast<AsNumber>(first_mid + rng.uniform(mid_span));
      while (p2 == p1) {
        p2 = static_cast<AsNumber>(first_mid + rng.uniform(mid_span));
      }
      g.add_customer_provider(s, p2);
    }
  }
  return g;
}

crypto::Bytes RoutingPolicy::serialize() const {
  crypto::Bytes out;
  crypto::append_u32(out, asn);
  crypto::append_u32(out, static_cast<uint32_t>(neighbor_rel.size()));
  for (const auto& [n, rel] : neighbor_rel) {
    crypto::append_u32(out, n);
    out.push_back(static_cast<uint8_t>(rel));
    const auto lp = local_pref.find(n);
    crypto::append_u32(out, lp != local_pref.end() ? lp->second : 0);
  }
  crypto::append_u32(out, static_cast<uint32_t>(prefixes.size()));
  for (const Prefix p : prefixes) crypto::append_u32(out, p);
  return out;
}

RoutingPolicy RoutingPolicy::deserialize(crypto::BytesView wire) {
  crypto::Reader r(wire);
  RoutingPolicy p;
  p.asn = r.u32();
  const uint32_t n_nbr = r.u32();
  for (uint32_t i = 0; i < n_nbr; ++i) {
    const AsNumber n = r.u32();
    const auto rel = static_cast<Relationship>(r.u8());
    if (rel != Relationship::kCustomer && rel != Relationship::kPeer &&
        rel != Relationship::kProvider) {
      throw std::invalid_argument("RoutingPolicy: bad relationship");
    }
    p.neighbor_rel[n] = rel;
    const uint32_t lp = r.u32();
    if (lp != 0) p.local_pref[n] = lp;
  }
  const uint32_t n_pfx = r.u32();
  for (uint32_t i = 0; i < n_pfx; ++i) p.prefixes.push_back(r.u32());
  return p;
}

std::map<AsNumber, RoutingPolicy> RoutingPolicy::from_graph(
    const AsGraph& graph, crypto::Drbg& rng) {
  std::map<AsNumber, RoutingPolicy> out;
  for (const AsNumber asn : graph.ases()) {
    RoutingPolicy p;
    p.asn = asn;
    for (const auto& [n, rel] : graph.neighbors(asn)) {
      p.neighbor_rel[n] = rel;
      p.local_pref[n] = static_cast<uint32_t>(rng.uniform(50));
    }
    p.prefixes.push_back(asn);
    out[asn] = std::move(p);
  }
  return out;
}

}  // namespace tenet::routing
