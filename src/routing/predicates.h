// Policy verification predicates (§3.1).
//
// "We allow a query to be executed in the verification module inside the
// enclave of the inter-domain controller... The query is a Boolean
// condition that an AS wants to verify concerning the behavior of other
// ASes that it has a business relationship with... The controller ensures
// that only the predicates agreed upon by the two ASes are verified. As a
// result, the verification process does not leak any extra information."
//
// A Predicate is a small boolean AST over the controller's decision state
// (chosen routes + every candidate heard — the SPIDeR-style "verify this
// over all routes that A receives"). Both parties must register an
// identical predicate before the controller will evaluate it, and the only
// output is one boolean.
#pragma once

#include <memory>
#include <vector>

#include "routing/bgp.h"

namespace tenet::routing {

class Predicate {
 public:
  enum class Kind : uint8_t {
    /// B's chosen route for `prefix` goes via A — "is the route announced
    /// by A most preferred by B?" (the paper's running example).
    kMostPreferredVia = 1,
    /// B heard a route for `prefix` from A at all (announcement kept).
    kReceivedFrom = 2,
    /// B's chosen route for `prefix` has AS-path length <= k.
    kPathLengthAtMost = 3,
    /// B's chosen route for `prefix` traverses AS `object` somewhere.
    kRouteTraverses = 4,
    /// B chose a customer-class route for `prefix` (prefer-customer
    /// promise kept).
    kUsesCustomerRoute = 5,
    // Boolean combinators.
    kAnd = 10,
    kOr = 11,
    kNot = 12,
  };

  // Leaf constructors.
  static Predicate most_preferred_via(AsNumber subject_b, AsNumber via_a,
                                      Prefix prefix);
  static Predicate received_from(AsNumber subject_b, AsNumber from_a,
                                 Prefix prefix);
  static Predicate path_length_at_most(AsNumber subject_b, Prefix prefix,
                                       uint32_t k);
  static Predicate route_traverses(AsNumber subject_b, Prefix prefix,
                                   AsNumber through);
  static Predicate uses_customer_route(AsNumber subject_b, Prefix prefix);
  // Combinators.
  static Predicate land(Predicate a, Predicate b);
  static Predicate lor(Predicate a, Predicate b);
  static Predicate lnot(Predicate a);

  [[nodiscard]] Kind kind() const { return kind_; }

  /// Evaluates against a full computation result.
  [[nodiscard]] bool evaluate(const ComputationResult& result) const;

  /// The set of ASes whose (private) routing state this predicate reads —
  /// the controller requires the registering pair to cover this set, so a
  /// predicate cannot probe a third party's decisions.
  [[nodiscard]] std::vector<AsNumber> parties() const;

  [[nodiscard]] crypto::Bytes serialize() const;
  static Predicate deserialize(crypto::BytesView wire);
  /// Structural equality (used to match the two parties' registrations).
  [[nodiscard]] bool equals(const Predicate& other) const;

 private:
  Predicate() = default;

  Kind kind_ = Kind::kAnd;
  AsNumber subject_ = 0;
  AsNumber object_ = 0;
  Prefix prefix_ = 0;
  uint32_t k_ = 0;
  std::vector<Predicate> children_;
};

}  // namespace tenet::routing
