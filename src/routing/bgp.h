// BGP-equivalent centralized route computation.
//
// The inter-domain controller "computes routing paths for all ASes using
// the rules of BGP" (§5). This module is pure computation — no I/O, no
// SGX — so the enclave-hosted controller and the native baseline run the
// exact same code (Table 4 compares only the runtime, not the algorithm).
//
// Decision process, per AS per prefix (Gao-Rexford flavoured BGP):
//   1. highest preference: customer routes > peer routes > provider
//      routes, with the AS's per-neighbor local-pref breaking ties within
//      a class;
//   2. shortest AS path;
//   3. lowest next-hop AS number (deterministic tie-break).
// Export rule: routes learned from a customer are announced to everyone;
// routes learned from a peer or provider only to customers (valley-free).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "routing/topology.h"

namespace tenet::routing {

struct Route {
  Prefix prefix = 0;
  /// AS path, next hop first, origin last. Empty for self-originated.
  std::vector<AsNumber> as_path;
  /// Relationship class of the next hop (drives preference and export).
  Relationship learned_from = Relationship::kCustomer;
  uint32_t pref = 0;       // computed import preference
  bool self_originated = false;

  [[nodiscard]] AsNumber next_hop() const {
    return as_path.empty() ? 0 : as_path.front();
  }
  [[nodiscard]] size_t path_length() const { return as_path.size(); }

  [[nodiscard]] crypto::Bytes serialize() const;
  static Route deserialize(crypto::BytesView wire);
  /// Full decision-process comparison: true if *this beats `other`.
  [[nodiscard]] bool better_than(const Route& other) const;
};

/// Chosen best route per prefix.
using RoutingTable = std::map<Prefix, Route>;

/// The controller's complete decision state: chosen tables plus every
/// candidate each AS considered — the verification module (§3.1) runs
/// predicates "over all routes that A receives".
struct ComputationResult {
  std::map<AsNumber, RoutingTable> tables;
  /// candidates[asn][prefix] = all valid routes asn heard (including the
  /// chosen one), in arrival-independent deterministic order.
  std::map<AsNumber, std::map<Prefix, std::vector<Route>>> candidates;

  [[nodiscard]] const Route* route_of(AsNumber asn, Prefix p) const;
};

class BgpComputation {
 public:
  /// Import preference for a route learned from `rel` with local-pref
  /// `lp` (0..99): relationship class dominates, lp breaks ties.
  static uint32_t import_pref(Relationship rel, uint32_t lp);

  /// Export filter: may a route learned from `learned_from` be announced
  /// to a neighbor of class `to`?
  static bool exportable(Relationship learned_from, Relationship to);

  /// Runs the decision process to a fixpoint. Policies must be mutually
  /// consistent (each link annotated identically from both ends);
  /// inconsistencies throw std::invalid_argument.
  static ComputationResult compute(
      const std::map<AsNumber, RoutingPolicy>& policies);

  /// Slice of the fixpoint restricted to prefixes originated by
  /// `origin_ases`. Per-prefix fixpoints are independent, so the union of
  /// slices over a partition of the origin set equals the full result —
  /// this is what lets a sharded controller divide the computation.
  static ComputationResult compute(
      const std::map<AsNumber, RoutingPolicy>& policies,
      const std::set<AsNumber>& origin_ases);

 private:
  static ComputationResult compute_filtered(
      const std::map<AsNumber, RoutingPolicy>& policies,
      const std::set<AsNumber>* origin_filter);
};

/// Independent oracle (the GNS3 stand-in, DESIGN.md §2): a *distributed*
/// BGP speaker simulation — every AS keeps per-neighbor Adj-RIB-Ins and
/// exchanges update messages until quiescent. Gao-Rexford-consistent
/// policies have a unique stable solution, so this must agree with the
/// centralized fixpoint; the two implementations share only the decision/
/// export predicates.
class ReferenceBgp {
 public:
  static std::map<AsNumber, RoutingTable> compute(
      const std::map<AsNumber, RoutingPolicy>& policies);

  /// Stability invariants any correct result must satisfy; throws
  /// std::logic_error naming the first violation. Checks: paths exist in
  /// the policy graph, are loop-free and valley-free, next hops are
  /// consistent (u's path through v extends v's chosen path), and no AS
  /// prefers a route its neighbors actually offer over its chosen one.
  static void check_stable(const std::map<AsNumber, RoutingPolicy>& policies,
                           const std::map<AsNumber, RoutingTable>& tables);
};

}  // namespace tenet::routing
