// Periodic registry scraper: time-series snapshots of every counter,
// gauge and histogram, taken on the simulator's virtual clock.
//
// The registry (telemetry.h) is a live point-in-time view; end-of-run
// exports can't answer "when did EPC pressure spike" or "how did the
// transition rate evolve across the handshake". A Scraper fills that gap:
// Simulator::attach_scraper polls it at a fixed virtual-time cadence and
// each scrape copies the full registry state into a bounded in-memory ring
// (oldest samples evicted), so memory stays O(capacity) regardless of run
// length and exports stay deterministic for a fixed seed.
//
// Two export formats:
//   * jsonl(): one JSON object per retained sample
//     ({"seq":N,"ts_us":T,"metrics":{...flat metrics JSON...}}), matching
//     the Registry::metrics_json shape so existing tooling parses each
//     line.
//   * prometheus(): the newest sample in Prometheus text exposition
//     format (metric names with '.' mapped to '_', log2 buckets rendered
//     as cumulative `_bucket{le="..."}` series, quantiles as labelled
//     gauges, millisecond timestamps from the virtual clock).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.h"

namespace tenet::telemetry {

class Scraper {
 public:
  /// `capacity`: retained samples (ring size); older samples are evicted.
  explicit Scraper(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  static constexpr size_t kDefaultCapacity = 256;

  /// Copies the current registry() state into the ring, stamped with the
  /// caller's clock (virtual-time microseconds from the Simulator).
  void scrape(uint64_t ts_us);

  /// Total scrapes taken (including evicted ones).
  [[nodiscard]] uint64_t total_scrapes() const { return total_; }
  /// Samples currently retained.
  [[nodiscard]] size_t size() const { return samples_.size(); }
  [[nodiscard]] size_t capacity() const { return capacity_; }
  void clear() {
    samples_.clear();
    total_ = 0;
  }

  /// One JSON object per retained sample, oldest first.
  [[nodiscard]] std::string jsonl() const;
  /// Newest sample in Prometheus text exposition format; empty string if
  /// no scrape has happened yet.
  [[nodiscard]] std::string prometheus() const;

  bool write_jsonl(const std::string& path) const;
  bool write_prometheus(const std::string& path) const;

  struct Sample {
    uint64_t seq = 0;  // 0-based scrape index (survives eviction)
    uint64_t ts_us = 0;
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, std::pair<int64_t, int64_t>>> gauges;
    std::vector<std::pair<std::string, Histogram>> histograms;
  };
  /// Retained samples, oldest first (consumed by the health model).
  [[nodiscard]] const std::deque<Sample>& samples() const { return samples_; }

 private:
  size_t capacity_;
  uint64_t total_ = 0;
  std::deque<Sample> samples_;
};

}  // namespace tenet::telemetry
