// Scoped-span tracer with causal request contexts and a pluggable
// virtual clock.
//
// Spans are recorded as Chrome-trace "complete" events (ph:"X") and
// exported as a chrome://tracing / Perfetto-compatible JSON document.
// Timestamps come from an installed clock — the netsim Simulator installs
// its virtual clock on construction — so traces of a scripted run are
// fully deterministic and reproducible across machines. Without a clock,
// a logical tick counter is used (also deterministic). Either way now()
// is strictly monotone: simultaneous simulator events still produce
// properly nested span intervals.
//
// Causal tracing (DESIGN.md §11): every span carries a TraceContext
// (trace_id, span_id, flags). A request origin mints a fresh trace_id via
// TENET_TRACE_ROOT; everything that executes downstream — network
// deliveries, timer firings, deferred switchless ocalls, retransmissions —
// re-installs the originating context with a ContextScope, so the exported
// events reconstruct into one span DAG per request. Ids come from plain
// counters and all state is single-threaded, so a fixed seed produces
// byte-identical trace exports.
//
// Cost attribution: the SGX cost model mirrors every charge into the
// tracer (see TENET_TRACE_COST below), where it lands on the innermost
// open span. Each exported span therefore carries its own Table-1-style
// breakdown (SGX instructions, normal/crypto/paging instructions,
// transitions) as exact self and inclusive deltas: summing all span
// self-costs plus the untraced remainder reproduces the cost-model totals
// to the instruction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace tenet::telemetry {

/// Causal context propagated along a request's journey. trace_id 0 means
/// "no active trace" (spans still record ids for DAG edges, but the
/// analyzer groups requests by nonzero trace_id).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // the span that anything started under this
                         // context becomes a child of
  uint8_t flags = 0;

  /// The frame is a retransmission of an earlier send in the same trace.
  static constexpr uint8_t kFlagRetx = 1;
  /// Execution was deferred through a switchless ring (the context is the
  /// enqueuing span's, not the draining host's).
  static constexpr uint8_t kFlagDeferred = 2;

  [[nodiscard]] bool empty() const { return trace_id == 0; }
};

/// Per-span instruction-cost vector, mirrored from the SGX cost model
/// (sgx/cost_model.h) while the span is open. All fields are exact
/// integer counts; cycles are derived downstream with the paper's formula.
struct TraceCost {
  uint64_t sgx_user = 0;     // SGX(U) instructions
  uint64_t sgx_priv = 0;     // privileged (launch-class) SGX instructions
  uint64_t normal = 0;       // direct normal instructions (boundary copies,
                             // context switches, dispatch, ring ops, app)
  uint64_t crypto = 0;       // normal instructions from crypto work
  uint64_t paging = 0;       // page-zero / paging normal instructions
  uint64_t transitions = 0;  // EENTER+EEXIT+ERESUME executed

  void add(const TraceCost& o) {
    sgx_user += o.sgx_user;
    sgx_priv += o.sgx_priv;
    normal += o.normal;
    crypto += o.crypto;
    paging += o.paging;
    transitions += o.transitions;
  }
  [[nodiscard]] bool any() const {
    return (sgx_user | sgx_priv | normal | crypto | paging | transitions) != 0;
  }
  bool operator==(const TraceCost&) const = default;
};

/// Category selector for Tracer::charge (one field of TraceCost).
enum class CostKind : uint8_t {
  kSgxUser,
  kSgxPriv,
  kNormal,
  kCrypto,
  kPaging,
  kTransition,
};

class Tracer {
 public:
  /// Microsecond clock; `ctx` identifies the owner so a dying clock source
  /// can uninstall only its own clock.
  using ClockFn = uint64_t (*)(void* ctx);

  void set_clock(ClockFn fn, void* ctx) {
    clock_ = fn;
    clock_ctx_ = ctx;
  }
  /// Uninstalls the clock iff `ctx` is the current owner.
  void clear_clock(void* ctx) {
    if (clock_ctx_ == ctx) {
      clock_ = nullptr;
      clock_ctx_ = nullptr;
    }
  }

  /// Current timestamp in microseconds, strictly monotone per call.
  uint64_t now() {
    const uint64_t raw = clock_ != nullptr ? clock_(clock_ctx_) : last_ + 1;
    last_ = raw > last_ ? raw : last_ + 1;
    return last_;
  }

  /// Non-mutating clock peek: the current time without advancing the
  /// monotone floor. Used by the event log so stamping a fleet event never
  /// perturbs span timestamps (trace exports stay byte-identical with the
  /// event log on or off).
  [[nodiscard]] uint64_t clock_now() const {
    return clock_ != nullptr ? clock_(clock_ctx_) : last_;
  }

  /// Sentinel for "no shard annotation" on a span.
  static constexpr uint64_t kNoShard = UINT64_MAX;

  /// One recorded span. Events with span_id 0 come from the low-level
  /// complete() API and export in the legacy (context-free) format.
  struct Event {
    const char* name;
    const char* cat;
    uint64_t ts;
    uint64_t dur;
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_span_id = 0;
    uint8_t flags = 0;
    uint64_t shard = kNoShard;  // TENET_SPAN_SHARD annotation, if any
    TraceCost self;  // charges while this span was innermost
    TraceCost incl;  // self + all (closed) descendant spans
  };

  /// Records one completed span with no context (legacy API; also used by
  /// counters-only instrumentation). `cat` and `name` must outlive the
  /// tracer (string literals at TENET_SPAN sites).
  void complete(const char* cat, const char* name, uint64_t begin_ts) {
    Event e{};
    e.name = name;
    e.cat = cat;
    e.ts = begin_ts;
    e.dur = now() - begin_ts;
    events_.push_back(e);
  }

  // --- Context + span DAG API (used via the macros below) ---

  [[nodiscard]] const TraceContext& context() const { return context_; }
  void set_context(const TraceContext& ctx) { context_ = ctx; }

  /// State saved by begin_span, consumed by end_span.
  struct SpanHandle {
    uint64_t begin_ts = 0;
    uint64_t span_id = 0;
    TraceContext parent;
    uint8_t flags = 0;
  };

  /// Opens a span: allocates the next span id, pushes a cost frame, and
  /// installs this span as the current context. With `mint_root` and no
  /// active trace, a fresh trace_id is minted (request origin).
  SpanHandle begin_span(bool mint_root);

  /// Closes the span: pops its cost frame (folding the inclusive cost into
  /// the parent frame), records the event, restores the parent context.
  void end_span(const char* cat, const char* name, const SpanHandle& h);

  /// Adds `n` to `kind` on the innermost open span (or the untraced
  /// bucket) and the grand total. Called by the cost-model mirror hooks.
  void charge(CostKind kind, uint64_t n);

  /// Annotates the innermost open span with a shard id, exported as
  /// args.shard so the analyzer can slice cross-shard phases per shard.
  /// No-op with no span open.
  void set_span_shard(uint64_t shard) {
    if (!open_.empty()) open_.back().shard = shard;
  }

  [[nodiscard]] size_t event_count() const { return events_.size(); }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  /// Every charge() since the last reset (== sum of all span self costs
  /// plus cost_untraced, closed spans and open frames alike).
  [[nodiscard]] const TraceCost& cost_total() const { return total_; }
  /// Charges that arrived with no span open.
  [[nodiscard]] const TraceCost& cost_untraced() const { return untraced_; }

  /// Chrome-trace JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing or https://ui.perfetto.dev. Span/track names are
  /// JSON-escaped; span events carry args.{trace,span,parent,flags} plus
  /// nonzero self/incl cost vectors.
  [[nodiscard]] std::string chrome_json() const;

  /// Drops recorded events, rewinds the logical clock, and resets all
  /// context/cost state (ids restart from 1).
  void reset() {
    events_.clear();
    last_ = 0;
    context_ = TraceContext{};
    next_trace_id_ = 0;
    next_span_id_ = 0;
    open_.clear();
    untraced_ = TraceCost{};
    total_ = TraceCost{};
  }

 private:
  struct OpenSpan {
    TraceCost self;
    TraceCost child_incl;
    uint64_t shard = kNoShard;
  };

  std::vector<Event> events_;
  uint64_t last_ = 0;
  ClockFn clock_ = nullptr;
  void* clock_ctx_ = nullptr;
  TraceContext context_;
  uint64_t next_trace_id_ = 0;
  uint64_t next_span_id_ = 0;
  std::vector<OpenSpan> open_;
  TraceCost untraced_;
  TraceCost total_;
};

/// Process-wide tracer used by TENET_SPAN.
Tracer& tracer();

/// Writes tracer().chrome_json() to `path`; returns false on I/O error.
bool write_chrome_trace(const std::string& path);

/// RAII span: opens at construction, records a complete event at scope
/// exit. Inert (two loads, one branch) when telemetry is disabled; spans
/// started while enabled still close correctly if telemetry is switched
/// off mid-scope. With `mint_root`, starts a new trace when none is
/// active (request origin).
class SpanScope {
 public:
  SpanScope(const char* cat, const char* name, bool mint_root = false)
      : cat_(cat), name_(name), active_(enabled()) {
    if (active_) handle_ = tracer().begin_span(mint_root);
  }
  ~SpanScope() {
    if (active_) tracer().end_span(cat_, name_, handle_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* cat_;
  const char* name_;
  Tracer::SpanHandle handle_;
  bool active_;
};

/// RAII context install: everything in scope (spans opened, messages
/// posted, costs charged to spans) runs under `ctx` with `extra_flags`
/// OR-ed in. Restores the previous context on exit. Used at the replay
/// points of a request's journey: message delivery, timer firing,
/// switchless drain, retransmission.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx, uint8_t extra_flags = 0)
      : active_(enabled()) {
    if (active_) {
      prev_ = tracer().context();
      TraceContext next = ctx;
      next.flags |= extra_flags;
      tracer().set_context(next);
    }
  }
  ~ContextScope() {
    if (active_) tracer().set_context(prev_);
  }
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext prev_;
  bool active_;
};

}  // namespace tenet::telemetry

#if TENET_TELEMETRY_ENABLED
#define TENET_SPAN_CAT_(a, b) a##b
#define TENET_SPAN_NAME_(line) TENET_SPAN_CAT_(tenet_tlm_span_, line)
#define TENET_SPAN(cat, name) \
  ::tenet::telemetry::SpanScope TENET_SPAN_NAME_(__LINE__) { (cat), (name) }
/// Request-origin span: mints a fresh trace_id when no trace is active,
/// so everything causally downstream shares it.
#define TENET_TRACE_ROOT(cat, name)                     \
  ::tenet::telemetry::SpanScope TENET_SPAN_NAME_(       \
      __LINE__) {                                       \
    (cat), (name), /*mint_root=*/true                   \
  }
/// Re-installs a previously captured context for the current scope.
#define TENET_TRACE_CONTEXT(ctx) \
  ::tenet::telemetry::ContextScope TENET_SPAN_NAME_(__LINE__) { (ctx) }
/// Same, with extra TraceContext flags OR-ed in (e.g. kFlagRetx).
#define TENET_TRACE_CONTEXT_FLAGS(ctx, flags)                   \
  ::tenet::telemetry::ContextScope TENET_SPAN_NAME_(__LINE__) { \
    (ctx), (flags)                                              \
  }
/// Captures the current context into `dst` (a TraceContext lvalue).
#define TENET_TRACE_CAPTURE(dst)                             \
  do {                                                       \
    if (::tenet::telemetry::enabled()) {                     \
      (dst) = ::tenet::telemetry::tracer().context();        \
    }                                                        \
  } while (0)
/// Mirrors one cost-model charge onto the innermost open span.
#define TENET_TRACE_COST(kind, n)                            \
  do {                                                       \
    if (::tenet::telemetry::enabled()) {                     \
      ::tenet::telemetry::tracer().charge((kind), (n));      \
    }                                                        \
  } while (0)
/// Tags the innermost open span with a shard id (args.shard in the
/// export) so cross-shard phases slice per shard in trace_analyze.py.
#define TENET_SPAN_SHARD(id)                                 \
  do {                                                       \
    if (::tenet::telemetry::enabled()) {                     \
      ::tenet::telemetry::tracer().set_span_shard(id);       \
    }                                                        \
  } while (0)
#else
#define TENET_SPAN(cat, name) ((void)0)
#define TENET_TRACE_ROOT(cat, name) ((void)0)
#define TENET_TRACE_CONTEXT(ctx) ((void)0)
#define TENET_TRACE_CONTEXT_FLAGS(ctx, flags) ((void)0)
#define TENET_TRACE_CAPTURE(dst) ((void)0)
#define TENET_TRACE_COST(kind, n) ((void)0)
#define TENET_SPAN_SHARD(id) ((void)0)
#endif
