// Scoped-span tracer with a pluggable virtual clock.
//
// Spans are recorded as Chrome-trace "complete" events (ph:"X") and
// exported as a chrome://tracing / Perfetto-compatible JSON document.
// Timestamps come from an installed clock — the netsim Simulator installs
// its virtual clock on construction — so traces of a scripted run are
// fully deterministic and reproducible across machines. Without a clock,
// a logical tick counter is used (also deterministic). Either way now()
// is strictly monotone: simultaneous simulator events still produce
// properly nested span intervals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace tenet::telemetry {

class Tracer {
 public:
  /// Microsecond clock; `ctx` identifies the owner so a dying clock source
  /// can uninstall only its own clock.
  using ClockFn = uint64_t (*)(void* ctx);

  void set_clock(ClockFn fn, void* ctx) {
    clock_ = fn;
    clock_ctx_ = ctx;
  }
  /// Uninstalls the clock iff `ctx` is the current owner.
  void clear_clock(void* ctx) {
    if (clock_ctx_ == ctx) {
      clock_ = nullptr;
      clock_ctx_ = nullptr;
    }
  }

  /// Current timestamp in microseconds, strictly monotone per call.
  uint64_t now() {
    const uint64_t raw = clock_ != nullptr ? clock_(clock_ctx_) : last_ + 1;
    last_ = raw > last_ ? raw : last_ + 1;
    return last_;
  }

  /// Records one completed span. `cat` and `name` must be string literals
  /// (spans come from TENET_SPAN sites).
  void complete(const char* cat, const char* name, uint64_t begin_ts) {
    events_.push_back(Event{name, cat, begin_ts, now() - begin_ts});
  }

  [[nodiscard]] size_t event_count() const { return events_.size(); }

  /// Chrome-trace JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing or https://ui.perfetto.dev.
  [[nodiscard]] std::string chrome_json() const;

  /// Drops recorded events and rewinds the logical clock.
  void reset() {
    events_.clear();
    last_ = 0;
  }

 private:
  struct Event {
    const char* name;
    const char* cat;
    uint64_t ts;
    uint64_t dur;
  };

  std::vector<Event> events_;
  uint64_t last_ = 0;
  ClockFn clock_ = nullptr;
  void* clock_ctx_ = nullptr;
};

/// Process-wide tracer used by TENET_SPAN.
Tracer& tracer();

/// Writes tracer().chrome_json() to `path`; returns false on I/O error.
bool write_chrome_trace(const std::string& path);

/// RAII span: opens at construction, records a complete event at scope
/// exit. Inert (two loads, one branch) when telemetry is disabled; spans
/// started while enabled still close correctly if telemetry is switched
/// off mid-scope.
class SpanScope {
 public:
  SpanScope(const char* cat, const char* name)
      : cat_(cat), name_(name), active_(enabled()) {
    if (active_) begin_ = tracer().now();
  }
  ~SpanScope() {
    if (active_) tracer().complete(cat_, name_, begin_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* cat_;
  const char* name_;
  uint64_t begin_ = 0;
  bool active_;
};

}  // namespace tenet::telemetry

#if TENET_TELEMETRY_ENABLED
#define TENET_SPAN_CAT_(a, b) a##b
#define TENET_SPAN_NAME_(line) TENET_SPAN_CAT_(tenet_tlm_span_, line)
#define TENET_SPAN(cat, name) \
  ::tenet::telemetry::SpanScope TENET_SPAN_NAME_(__LINE__) { (cat), (name) }
#else
#define TENET_SPAN(cat, name) ((void)0)
#endif
