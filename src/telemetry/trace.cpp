#include "telemetry/trace.h"

#include <cstdio>

namespace tenet::telemetry {

std::string Tracer::chrome_json() const {
  // The trace viewer sorts by ts itself; we emit in recording order
  // (which is span-*close* order, inner spans before outer ones).
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += e.name;
    out += "\",\"cat\":\"";
    out += e.cat;
    out += "\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(e.ts);
    out += ",\"dur\":";
    out += std::to_string(e.dur);
    out += ",\"pid\":1,\"tid\":1}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Tracer& tracer() {
  static Tracer* t = new Tracer();  // leaked, like the registry
  return *t;
}

bool write_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = tracer().chrome_json() + "\n";
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace tenet::telemetry
