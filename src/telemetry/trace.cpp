#include "telemetry/trace.h"

#include <cstdio>

namespace tenet::telemetry {

namespace {

void bump(TraceCost& c, CostKind kind, uint64_t n) {
  switch (kind) {
    case CostKind::kSgxUser: c.sgx_user += n; break;
    case CostKind::kSgxPriv: c.sgx_priv += n; break;
    case CostKind::kNormal: c.normal += n; break;
    case CostKind::kCrypto: c.crypto += n; break;
    case CostKind::kPaging: c.paging += n; break;
    case CostKind::kTransition: c.transitions += n; break;
  }
}

void append_cost(std::string& out, const char* key, const TraceCost& c) {
  out += ",\"";
  out += key;
  out += "\":{\"sgx\":";
  out += std::to_string(c.sgx_user);
  out += ",\"priv\":";
  out += std::to_string(c.sgx_priv);
  out += ",\"norm\":";
  out += std::to_string(c.normal);
  out += ",\"crypto\":";
  out += std::to_string(c.crypto);
  out += ",\"paging\":";
  out += std::to_string(c.paging);
  out += ",\"trans\":";
  out += std::to_string(c.transitions);
  out += '}';
}

}  // namespace

Tracer::SpanHandle Tracer::begin_span(bool mint_root) {
  SpanHandle h;
  h.begin_ts = now();
  h.parent = context_;
  h.span_id = ++next_span_id_;
  uint64_t trace = context_.trace_id;
  if (mint_root && trace == 0) trace = ++next_trace_id_;
  context_ = TraceContext{trace, h.span_id, context_.flags};
  h.flags = context_.flags;
  open_.push_back(OpenSpan{});
  return h;
}

void Tracer::end_span(const char* cat, const char* name, const SpanHandle& h) {
  TraceCost self;
  TraceCost incl;
  uint64_t shard = kNoShard;
  if (!open_.empty()) {
    self = open_.back().self;
    incl = self;
    incl.add(open_.back().child_incl);
    shard = open_.back().shard;
    open_.pop_back();
    if (!open_.empty()) open_.back().child_incl.add(incl);
  }
  Event e{};
  e.name = name;
  e.cat = cat;
  e.ts = h.begin_ts;
  e.dur = now() - h.begin_ts;
  e.trace_id = context_.trace_id;
  e.span_id = h.span_id;
  e.parent_span_id = h.parent.span_id;
  e.flags = h.flags;
  e.shard = shard;
  e.self = self;
  e.incl = incl;
  events_.push_back(e);
  context_ = h.parent;
}

void Tracer::charge(CostKind kind, uint64_t n) {
  if (n == 0) return;
  bump(open_.empty() ? untraced_ : open_.back().self, kind, n);
  bump(total_, kind, n);
}

std::string Tracer::chrome_json() const {
  // The trace viewer sorts by ts itself; we emit in recording order
  // (which is span-*close* order, inner spans before outer ones).
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    detail::append_json_escaped(out, e.name);
    out += ",\"cat\":";
    detail::append_json_escaped(out, e.cat);
    out += ",\"ph\":\"X\",\"ts\":";
    out += std::to_string(e.ts);
    out += ",\"dur\":";
    out += std::to_string(e.dur);
    out += ",\"pid\":1,\"tid\":1";
    // Span events (from SpanScope) carry the causal context and the exact
    // cost deltas; span_id 0 events come from the raw complete() API and
    // keep the context-free shape.
    if (e.span_id != 0) {
      out += ",\"args\":{\"trace\":";
      out += std::to_string(e.trace_id);
      out += ",\"span\":";
      out += std::to_string(e.span_id);
      out += ",\"parent\":";
      out += std::to_string(e.parent_span_id);
      out += ",\"flags\":";
      out += std::to_string(e.flags);
      // Shard annotation only when set, so unannotated traces stay
      // byte-identical to pre-annotation captures (golden_trace.json).
      if (e.shard != kNoShard) {
        out += ",\"shard\":";
        out += std::to_string(e.shard);
      }
      if (e.self.any()) append_cost(out, "self", e.self);
      if (e.incl.any() && !(e.incl == e.self)) append_cost(out, "incl", e.incl);
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"";
  // Grand totals for exact cross-checks by tools/trace_analyze.py: the sum
  // of all span self-costs plus the untraced remainder must reproduce
  // costTotal to the instruction. Omitted when no cost was ever charged
  // (keeps pre-tracing captures byte-identical).
  if (total_.any()) {
    std::string totals;
    append_cost(totals, "costTotal", total_);
    append_cost(totals, "costUntraced", untraced_);
    out += ",\"otherData\":{";
    out.append(totals, 1, std::string::npos);  // drop the leading comma
    out += '}';
  }
  out += '}';
  return out;
}

Tracer& tracer() {
  static Tracer* t = new Tracer();  // leaked, like the registry
  return *t;
}

bool write_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = tracer().chrome_json() + "\n";
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace tenet::telemetry
