#include "telemetry/events.h"

#include <cstdio>

#include "telemetry/trace.h"

namespace tenet::telemetry {

#if TENET_TELEMETRY_ENABLED

std::string_view event_type_name(EventType t) {
  switch (t) {
    case EventType::kFailoverAdopted: return "failover_adopted";
    case EventType::kRekey: return "rekey";
    case EventType::kRollbackRefused: return "rollback_refused";
    case EventType::kEpcPressure: return "epc_pressure";
    case EventType::kRunCapHit: return "run_cap_hit";
    case EventType::kPartitionCut: return "partition_cut";
    case EventType::kPartitionHeal: return "partition_heal";
    case EventType::kEnclaveRestart: return "enclave_restart";
    case EventType::kShardDown: return "shard_down";
    case EventType::kShardUp: return "shard_up";
    case EventType::kSnapshotInstalled: return "snapshot_installed";
  }
  return "unknown";
}

EventLog::EventLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void EventLog::set_capacity(size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  evicted_ += ring_.size();
  ring_.clear();
  ring_.reserve(capacity_);
  head_ = 0;
}

void EventLog::emit(EventType type, uint32_t node, uint64_t a, uint64_t b) {
  FleetEvent e;
  e.seq = next_seq_++;
  e.ts_us = tracer().clock_now();
  e.type = type;
  e.node = node;
  e.a = a;
  e.b = b;
  const auto ti = static_cast<size_t>(type);
  if (ti < kTypeCount) by_type_[ti] += 1;
  // Mirror into the registry so scrape samples carry cumulative per-type
  // counts alongside the bounded ring (the ring keeps detail, the counter
  // keeps the total even after eviction).
  std::string name = "events.";
  name += event_type_name(type);
  registry().counter(name).add(1);
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  ring_[head_] = e;  // overwrite the oldest
  head_ = (head_ + 1) % capacity_;
  ++evicted_;
}

std::vector<FleetEvent> EventLog::snapshot() const {
  std::vector<FleetEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t EventLog::count(EventType t) const {
  const auto ti = static_cast<size_t>(t);
  return ti < kTypeCount ? by_type_[ti] : 0;
}

std::string EventLog::jsonl() const {
  std::string out;
  for (const FleetEvent& e : snapshot()) {
    out += "{\"seq\":";
    out += std::to_string(e.seq);
    out += ",\"ts_us\":";
    out += std::to_string(e.ts_us);
    out += ",\"type\":";
    detail::append_json_escaped(out, event_type_name(e.type));
    out += ",\"node\":";
    out += std::to_string(e.node);
    out += ",\"a\":";
    out += std::to_string(e.a);
    out += ",\"b\":";
    out += std::to_string(e.b);
    out += "}\n";
  }
  return out;
}

bool EventLog::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string lines = jsonl();
  const bool ok = std::fwrite(lines.data(), 1, lines.size(), f) == lines.size();
  return std::fclose(f) == 0 && ok;
}

bool EventLog::consistent() const {
  if (ring_.size() > capacity_) return false;
  if (evicted_ + ring_.size() != total()) return false;
  uint64_t prev = 0;
  for (const FleetEvent& e : snapshot()) {
    if (e.seq <= prev || e.seq > total()) return false;
    prev = e.seq;
  }
  uint64_t typed = 0;
  for (const uint64_t n : by_type_) typed += n;
  return typed == total();
}

void EventLog::clear() {
  ring_.clear();
  head_ = 0;
  next_seq_ = 1;
  evicted_ = 0;
  for (uint64_t& n : by_type_) n = 0;
}

EventLog& event_log() {
  static EventLog* log = new EventLog();  // leaked, like the registry
  return *log;
}

#endif  // TENET_TELEMETRY_ENABLED

}  // namespace tenet::telemetry
