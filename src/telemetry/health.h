// Fleet health / SLO model: derives per-shard and fleet-wide
// healthy / degraded / failed verdicts from the scrape ring (rolling
// metric windows) joined with the structured event log (fault facts).
//
// The model is a pure function of (scraper, event log, policy): it holds
// no mutable state, so evaluating it twice over the same run yields the
// same report, and a same-seed replay yields a byte-identical JSON
// report. tools/fleet_report.py applies the same rules offline to the
// JSONL exports; this in-process version powers bench_observability and
// the ctest assertions.
//
// State machine per shard:
//   failed    — a shard_down event with no later shard_up;
//   degraded  — serving, but the rolling window shows an SLO breach
//               (p99 replication-hop latency over the cap, goodput under
//               the floor, last heal over budget) or a degrade-class
//               event (rollback refused) landed inside the window;
//   healthy   — everything else.
// Fleet state is the worst shard state.
#pragma once

#include "telemetry/events.h"
#include "telemetry/scrape.h"

#if TENET_TELEMETRY_ENABLED

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tenet::telemetry {

enum class HealthState : uint8_t { kHealthy = 0, kDegraded = 1, kFailed = 2 };

[[nodiscard]] std::string_view health_state_name(HealthState s);

/// SLO thresholds. Defaults match the PR8 chaos drill's budgets.
struct SloPolicy {
  uint64_t p99_hop_latency_us = 5000;  // replication-hop p99 cap per window
  double goodput_floor = 0.5;          // delivered/sent floor per window
  double heal_budget_ms = 400.0;       // shard down->up budget
  size_t window_samples = 8;           // rolling window width, in scrapes
};

struct ShardHealth {
  uint32_t shard = 0;
  HealthState state = HealthState::kHealthy;
  uint64_t p99_hop_latency_us = 0;  // over the rolling window
  uint64_t hops_in_window = 0;
  uint64_t rollbacks_refused = 0;   // cumulative (whole event log)
  uint64_t failovers_adopted = 0;   // batches adopted on this shard's behalf
  uint64_t snapshots_installed = 0;
  uint64_t down_since_us = 0;       // nonzero while failed
  uint64_t last_heal_us = 0;        // duration of the latest down->up pair
  bool slo_breached = false;        // latency/heal breach in the window
};

struct FleetHealth {
  uint64_t ts_us = 0;               // newest scrape timestamp
  HealthState state = HealthState::kHealthy;
  double goodput = 1.0;             // delivered/sent over the window
  bool goodput_breached = false;
  uint64_t epc_pressure_events = 0;
  uint64_t run_cap_hits = 0;
  uint64_t rekeys = 0;
  uint64_t partition_cuts = 0;
  uint64_t partition_heals = 0;
  std::vector<ShardHealth> shards;  // sorted by shard id
};

class HealthModel {
 public:
  explicit HealthModel(SloPolicy policy = {}) : policy_(policy) {}

  [[nodiscard]] const SloPolicy& policy() const { return policy_; }

  /// Evaluates the fleet from the scrape ring + event log. Works with an
  /// empty scraper (events still drive the state machine; metric windows
  /// read as empty).
  [[nodiscard]] FleetHealth evaluate(const Scraper& scraper,
                                     const EventLog& log) const;

  /// evaluate() rendered as one deterministic JSON object.
  [[nodiscard]] std::string report_json(const Scraper& scraper,
                                        const EventLog& log) const;

  /// q-quantile of the samples recorded between two snapshots of the same
  /// histogram (bucket-count delta), interpolated like
  /// Histogram::quantile. `base` may be an empty (default) histogram.
  static uint64_t window_quantile(const Histogram& base, const Histogram& tip,
                                  double q);

 private:
  SloPolicy policy_;
};

}  // namespace tenet::telemetry

#endif  // TENET_TELEMETRY_ENABLED
