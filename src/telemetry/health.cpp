#include "telemetry/health.h"

#if TENET_TELEMETRY_ENABLED

#include <algorithm>
#include <map>

namespace tenet::telemetry {

namespace {

constexpr std::string_view kHopPrefix = "shard.s";
constexpr std::string_view kHopSuffix = ".hop_latency_us";

/// Parses "shard.s<id>.hop_latency_us" -> shard id; -1 on mismatch.
int64_t hop_histogram_shard(std::string_view name) {
  if (name.size() <= kHopPrefix.size() + kHopSuffix.size()) return -1;
  if (name.substr(0, kHopPrefix.size()) != kHopPrefix) return -1;
  if (name.substr(name.size() - kHopSuffix.size()) != kHopSuffix) return -1;
  const std::string_view digits =
      name.substr(kHopPrefix.size(),
                  name.size() - kHopPrefix.size() - kHopSuffix.size());
  int64_t id = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return -1;
    id = id * 10 + (c - '0');
  }
  return id;
}

uint64_t find_counter(const Scraper::Sample& s, std::string_view name) {
  for (const auto& [n, v] : s.counters) {
    if (n == name) return v;
  }
  return 0;
}

const Histogram* find_histogram(const Scraper::Sample& s,
                                std::string_view name) {
  for (const auto& [n, h] : s.histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

/// Per-shard scratch built from the event log walk.
struct ShardEvents {
  uint64_t rollbacks = 0;
  uint64_t failovers = 0;
  uint64_t snapshots = 0;
  uint64_t down_since = 0;     // ts of the first down of the open outage
  bool down = false;
  uint64_t last_heal_us = 0;
  uint64_t last_degrade_seq = 0;  // seq of the latest degrade-class event
};

}  // namespace

std::string_view health_state_name(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kFailed: return "failed";
  }
  return "unknown";
}

uint64_t HealthModel::window_quantile(const Histogram& base,
                                      const Histogram& tip, double q) {
  const uint64_t count = tip.count() - base.count();
  if (count == 0 || tip.count() < base.count()) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count - 1);
  uint64_t below = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    const uint64_t in_bucket = tip.bucket(i) - base.bucket(i);
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(below + in_bucket)) {
      const double lo = static_cast<double>(Histogram::bucket_floor(i));
      const double hi =
          i == 0 ? 0.0
                 : static_cast<double>(Histogram::bucket_floor(i)) * 2.0 - 1.0;
      const double frac =
          (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
      return static_cast<uint64_t>(lo + frac * (hi - lo) + 0.5);
    }
    below += in_bucket;
  }
  return 0;
}

FleetHealth HealthModel::evaluate(const Scraper& scraper,
                                  const EventLog& log) const {
  FleetHealth fleet;
  fleet.epc_pressure_events = log.count(EventType::kEpcPressure);
  fleet.run_cap_hits = log.count(EventType::kRunCapHit);
  fleet.rekeys = log.count(EventType::kRekey);
  fleet.partition_cuts = log.count(EventType::kPartitionCut);
  fleet.partition_heals = log.count(EventType::kPartitionHeal);

  // --- Event walk: per-shard outage state machine --------------------------
  std::map<uint32_t, ShardEvents> by_shard;
  const auto& samples = scraper.samples();
  const Scraper::Sample* tip = samples.empty() ? nullptr : &samples.back();
  const size_t width = std::min(policy_.window_samples == 0
                                    ? size_t{1}
                                    : policy_.window_samples,
                                samples.size());
  const Scraper::Sample* base =
      samples.empty() ? nullptr : &samples[samples.size() - width];
  const uint64_t window_start_us = base != nullptr ? base->ts_us : 0;

  for (const FleetEvent& e : log.snapshot()) {
    switch (e.type) {
      case EventType::kShardDown: {
        ShardEvents& s = by_shard[static_cast<uint32_t>(e.a)];
        if (!s.down) {
          s.down = true;
          s.down_since = e.ts_us;
        }
        break;
      }
      case EventType::kShardUp: {
        ShardEvents& s = by_shard[static_cast<uint32_t>(e.a)];
        if (s.down) {
          s.down = false;
          s.last_heal_us = e.ts_us - s.down_since;
          s.down_since = 0;
        }
        break;
      }
      case EventType::kRollbackRefused: {
        ShardEvents& s = by_shard[static_cast<uint32_t>(e.a)];
        ++s.rollbacks;
        if (e.ts_us >= window_start_us) s.last_degrade_seq = e.seq;
        break;
      }
      case EventType::kFailoverAdopted:
        ++by_shard[static_cast<uint32_t>(e.a)].failovers;
        break;
      case EventType::kSnapshotInstalled:
        ++by_shard[static_cast<uint32_t>(e.a)].snapshots;
        break;
      default:
        break;
    }
  }

  // --- Metric windows ------------------------------------------------------
  if (tip != nullptr) {
    fleet.ts_us = tip->ts_us;
    const uint64_t sent = find_counter(*tip, "net.messages_sent") -
                          find_counter(*base, "net.messages_sent");
    const uint64_t delivered = find_counter(*tip, "net.messages_delivered") -
                               find_counter(*base, "net.messages_delivered");
    fleet.goodput = sent == 0 ? 1.0
                              : static_cast<double>(delivered) /
                                    static_cast<double>(sent);
    fleet.goodput_breached = fleet.goodput < policy_.goodput_floor;
  }

  // Shards observed via metrics but never via events still get a row.
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> hop;  // shard -> p99,count
  if (tip != nullptr) {
    static const Histogram kEmpty;
    for (const auto& [name, h] : tip->histograms) {
      const int64_t id = hop_histogram_shard(name);
      if (id < 0) continue;
      const Histogram* old = find_histogram(*base, name);
      if (old == nullptr) old = &kEmpty;
      hop[static_cast<uint32_t>(id)] = {
          window_quantile(*old, h, 0.99), h.count() - old->count()};
      by_shard.try_emplace(static_cast<uint32_t>(id));
    }
  }

  // --- Verdicts ------------------------------------------------------------
  const auto heal_budget_us =
      static_cast<uint64_t>(policy_.heal_budget_ms * 1000.0);
  for (const auto& [shard, ev] : by_shard) {
    ShardHealth out;
    out.shard = shard;
    out.rollbacks_refused = ev.rollbacks;
    out.failovers_adopted = ev.failovers;
    out.snapshots_installed = ev.snapshots;
    out.down_since_us = ev.down ? ev.down_since : 0;
    out.last_heal_us = ev.last_heal_us;
    const auto it = hop.find(shard);
    if (it != hop.end()) {
      out.p99_hop_latency_us = it->second.first;
      out.hops_in_window = it->second.second;
    }
    out.slo_breached =
        (out.hops_in_window > 0 &&
         out.p99_hop_latency_us > policy_.p99_hop_latency_us) ||
        out.last_heal_us > heal_budget_us;
    if (ev.down) {
      out.state = HealthState::kFailed;
    } else if (out.slo_breached || ev.last_degrade_seq != 0) {
      out.state = HealthState::kDegraded;
    }
    if (out.state > fleet.state) fleet.state = out.state;
    fleet.shards.push_back(out);
  }
  if (fleet.goodput_breached && fleet.state == HealthState::kHealthy) {
    fleet.state = HealthState::kDegraded;
  }
  return fleet;
}

std::string HealthModel::report_json(const Scraper& scraper,
                                     const EventLog& log) const {
  const FleetHealth f = evaluate(scraper, log);
  std::string out = "{\"ts_us\":";
  out += std::to_string(f.ts_us);
  out += ",\"state\":";
  detail::append_json_escaped(out, health_state_name(f.state));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", f.goodput);
  out += ",\"goodput\":";
  out += buf;
  out += ",\"goodput_breached\":";
  out += f.goodput_breached ? "true" : "false";
  out += ",\"events\":{\"epc_pressure\":";
  out += std::to_string(f.epc_pressure_events);
  out += ",\"run_cap_hits\":";
  out += std::to_string(f.run_cap_hits);
  out += ",\"rekeys\":";
  out += std::to_string(f.rekeys);
  out += ",\"partition_cuts\":";
  out += std::to_string(f.partition_cuts);
  out += ",\"partition_heals\":";
  out += std::to_string(f.partition_heals);
  out += "},\"policy\":{\"p99_hop_latency_us\":";
  out += std::to_string(policy_.p99_hop_latency_us);
  std::snprintf(buf, sizeof buf, "%.3f", policy_.goodput_floor);
  out += ",\"goodput_floor\":";
  out += buf;
  std::snprintf(buf, sizeof buf, "%.1f", policy_.heal_budget_ms);
  out += ",\"heal_budget_ms\":";
  out += buf;
  out += ",\"window_samples\":";
  out += std::to_string(policy_.window_samples);
  out += "},\"shards\":[";
  bool first = true;
  for (const ShardHealth& s : f.shards) {
    if (!first) out += ',';
    first = false;
    out += "{\"shard\":";
    out += std::to_string(s.shard);
    out += ",\"state\":";
    detail::append_json_escaped(out, health_state_name(s.state));
    out += ",\"p99_hop_latency_us\":";
    out += std::to_string(s.p99_hop_latency_us);
    out += ",\"hops_in_window\":";
    out += std::to_string(s.hops_in_window);
    out += ",\"rollbacks_refused\":";
    out += std::to_string(s.rollbacks_refused);
    out += ",\"failovers_adopted\":";
    out += std::to_string(s.failovers_adopted);
    out += ",\"snapshots_installed\":";
    out += std::to_string(s.snapshots_installed);
    out += ",\"down_since_us\":";
    out += std::to_string(s.down_since_us);
    out += ",\"last_heal_us\":";
    out += std::to_string(s.last_heal_us);
    out += ",\"slo_breached\":";
    out += s.slo_breached ? "true" : "false";
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace tenet::telemetry

#endif  // TENET_TELEMETRY_ENABLED
