#include "telemetry/telemetry.h"

#include <cstdio>

namespace tenet::telemetry {

namespace {

bool g_enabled = false;

/// Appends a JSON-escaped string literal (instrument names are plain
/// identifiers today, but exports must stay valid JSON regardless).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

template <typename Map, typename Fn>
void append_json_section(std::string& out, const char* key, const Map& map,
                         Fn&& value_of) {
  append_json_string(out, key);
  out += ":{";
  bool first = true;
  for (const auto& [name, instrument] : map) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += value_of(*instrument);
  }
  out += '}';
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

void Registry::reset_values() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string Registry::metrics_json() const {
  std::string out = "{";
  append_json_section(out, "counters", counters_, [](const Counter& c) {
    return std::to_string(c.value());
  });
  out += ',';
  append_json_section(out, "gauges", gauges_, [](const Gauge& g) {
    return "{\"value\":" + std::to_string(g.value()) +
           ",\"max\":" + std::to_string(g.max_value()) + "}";
  });
  out += ',';
  append_json_section(out, "histograms", histograms_, [](const Histogram& h) {
    std::string v = "{\"count\":" + std::to_string(h.count()) +
                    ",\"sum\":" + std::to_string(h.sum()) +
                    ",\"min\":" + std::to_string(h.min()) +
                    ",\"max\":" + std::to_string(h.max()) + ",\"buckets\":{";
    // Sparse bucket map: {"floor": count} for non-empty buckets only.
    bool first = true;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      if (!first) v += ',';
      first = false;
      v += '"' + std::to_string(Histogram::bucket_floor(i)) +
           "\":" + std::to_string(h.bucket(i));
    }
    v += "}}";
    return v;
  });
  out += '}';
  return out;
}

Registry& registry() {
  static Registry* r = new Registry();  // leaked: sites cache references
  return *r;
}

bool enabled() { return g_enabled; }
void set_enabled(bool on) { g_enabled = on; }

bool write_metrics_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = registry().metrics_json() + "\n";
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace tenet::telemetry
