#include "telemetry/telemetry.h"

#include <cstdio>

namespace tenet::telemetry {

namespace detail {

/// Appends a JSON-escaped string (instrument names are plain identifiers
/// today, but exports must stay valid JSON regardless).
void append_json_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Renders one histogram as the flat-JSON object used by metrics_json()
/// and the scraper samples.
std::string histogram_json(const Histogram& h) {
  std::string v = "{\"count\":" + std::to_string(h.count()) +
                  ",\"sum\":" + std::to_string(h.sum()) +
                  ",\"min\":" + std::to_string(h.min()) +
                  ",\"max\":" + std::to_string(h.max()) +
                  ",\"p50\":" + std::to_string(h.quantile(0.50)) +
                  ",\"p90\":" + std::to_string(h.quantile(0.90)) +
                  ",\"p99\":" + std::to_string(h.quantile(0.99)) +
                  ",\"buckets\":{";
  // Sparse bucket map: {"floor": count} for non-empty buckets only.
  bool first = true;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    if (!first) v += ',';
    first = false;
    v += '"' + std::to_string(Histogram::bucket_floor(i)) +
         "\":" + std::to_string(h.bucket(i));
  }
  v += "}}";
  return v;
}

}  // namespace detail

namespace {

void append_json_string(std::string& out, std::string_view s) {
  detail::append_json_escaped(out, s);
}

template <typename Map, typename Fn>
void append_json_section(std::string& out, const char* key, const Map& map,
                         Fn&& value_of) {
  append_json_string(out, key);
  out += ":{";
  bool first = true;
  for (const auto& [name, instrument] : map) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += value_of(*instrument);
  }
  out += '}';
}

}  // namespace

uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // 0-based target rank in the sorted sample sequence.
  const double rank = q * static_cast<double>(count_ - 1);
  uint64_t below = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const uint64_t in_bucket = buckets_[i];
    if (rank < static_cast<double>(below + in_bucket)) {
      // Interpolate linearly across the bucket's value range [lo, hi].
      const double lo = static_cast<double>(bucket_floor(i));
      const double hi =
          i == 0 ? 0.0 : static_cast<double>(bucket_floor(i)) * 2.0 - 1.0;
      const double frac =
          (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
      double est = lo + frac * (hi - lo);
      // The observed extremes bound every sample; clamping sharpens the
      // estimate for buckets that only contain min or max.
      const double mn = static_cast<double>(min());
      const double mx = static_cast<double>(max());
      if (est < mn) est = mn;
      if (est > mx) est = mx;
      return static_cast<uint64_t>(est + 0.5);
    }
    below += in_bucket;
  }
  return max();
}

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

void Registry::reset_values() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string Registry::metrics_json() const {
  std::string out = "{";
  append_json_section(out, "counters", counters_, [](const Counter& c) {
    return std::to_string(c.value());
  });
  out += ',';
  append_json_section(out, "gauges", gauges_, [](const Gauge& g) {
    return "{\"value\":" + std::to_string(g.value()) +
           ",\"max\":" + std::to_string(g.max_value()) + "}";
  });
  out += ',';
  append_json_section(out, "histograms", histograms_, [](const Histogram& h) {
    return detail::histogram_json(h);
  });
  out += '}';
  return out;
}

Registry& registry() {
  static Registry* r = new Registry();  // leaked: sites cache references
  return *r;
}


bool write_metrics_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = registry().metrics_json() + "\n";
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace tenet::telemetry
