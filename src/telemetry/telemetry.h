// Metrics registry: counters, gauges, and log2-bucketed histograms.
//
// The paper's evaluation (§5) is instruction counting at the enclave
// boundary; this module makes those counts continuously observable instead
// of only visible as end-of-run cost-model totals. Instrumentation sites
// use the TENET_COUNT / TENET_GAUGE_* / TENET_HISTOGRAM macros below, which
// compile to nothing when TENET_TELEMETRY_ENABLED is 0 and cost a single
// predictable branch on a global flag when built in but switched off (the
// default at process start).
//
// Determinism: instruments hold plain integers and are keyed by name, so a
// scripted run produces byte-identical exports. Like the crypto work meter
// this is single-threaded state — the simulator and the SGX emulation are
// single-threaded by design.
#pragma once

#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#ifndef TENET_TELEMETRY_ENABLED
#define TENET_TELEMETRY_ENABLED 1
#endif

namespace tenet::telemetry {

/// Monotone event count (EENTER executed, record sealed, ...).
class Counter {
 public:
  void add(uint64_t n = 1) { value_ += n; }
  [[nodiscard]] uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time level (resident EPC pages, pending events); tracks the
/// high-water mark alongside the current value.
class Gauge {
 public:
  void set(int64_t v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(int64_t delta) { set(value_ + delta); }
  [[nodiscard]] int64_t value() const { return value_; }
  [[nodiscard]] int64_t max_value() const { return max_; }
  void reset() { value_ = max_ = 0; }

 private:
  int64_t value_ = 0;
  int64_t max_ = 0;
};

/// Fixed log2-bucket histogram: bucket i counts samples whose bit width is
/// i, i.e. bucket 0 holds the value 0 and bucket i>=1 holds values in
/// [2^(i-1), 2^i). 64 buckets cover the full uint64_t range with no
/// allocation and no configuration, which keeps exports deterministic.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit widths 0..64

  void record(uint64_t v) {
    buckets_[bucket_of(v)] += 1;
    count_ += 1;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] static size_t bucket_of(uint64_t v) {
    return static_cast<size_t>(std::bit_width(v));
  }
  /// Smallest value landing in bucket i.
  [[nodiscard]] static uint64_t bucket_floor(size_t i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] uint64_t sum() const { return sum_; }
  /// Undefined (0) until the first sample.
  [[nodiscard]] uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] uint64_t max() const { return max_; }
  [[nodiscard]] uint64_t bucket(size_t i) const { return buckets_[i]; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }
  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// log2 bucket holding the target rank, clamped to the observed
  /// [min, max]. Exact only when a bucket holds one distinct value; the
  /// flat-JSON export emits p50/p90/p99 from this.
  [[nodiscard]] uint64_t quantile(double q) const;
  void reset() { *this = Histogram{}; }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// Name -> instrument store. Instruments are created on first use and are
/// never destroyed or moved, so references handed out (including the ones
/// cached in the macros below) stay valid across reset_values().
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zeroes every instrument's value; keeps the instruments themselves.
  void reset_values();

  /// Flat JSON export: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Keys are sorted (map order), so output is deterministic.
  [[nodiscard]] std::string metrics_json() const;

  using CounterMap = std::map<std::string, std::unique_ptr<Counter>, std::less<>>;
  using GaugeMap = std::map<std::string, std::unique_ptr<Gauge>, std::less<>>;
  using HistogramMap =
      std::map<std::string, std::unique_ptr<Histogram>, std::less<>>;
  [[nodiscard]] const CounterMap& counters() const { return counters_; }
  [[nodiscard]] const GaugeMap& gauges() const { return gauges_; }
  [[nodiscard]] const HistogramMap& histograms() const { return histograms_; }

 private:
  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap histograms_;
};

/// Process-wide registry used by the instrumentation macros.
Registry& registry();

namespace detail {
/// Storage for the runtime switch; read through enabled() only. Lives in
/// the header so the per-macro-site guard branch inlines to one load
/// instead of a cross-TU call (the check runs several times per simulated
/// event on the hot path).
inline bool g_enabled = false;
}  // namespace detail

/// Runtime switch. Defaults to off: with telemetry off every macro is one
/// branch on this flag and nothing else.
[[nodiscard]] inline bool enabled() { return detail::g_enabled; }
inline void set_enabled(bool on) { detail::g_enabled = on; }

/// Writes registry().metrics_json() to `path`; returns false on I/O error.
bool write_metrics_json(const std::string& path);

namespace detail {
/// Appends `s` as a JSON string (quotes included), escaping control
/// characters, quotes and backslashes. Shared by the metrics, trace and
/// scrape exporters so arbitrary labels can't produce invalid JSON.
void append_json_escaped(std::string& out, std::string_view s);
/// Flat-JSON object for one histogram (count/sum/min/max/p50/p90/p99 +
/// sparse buckets) — shared by metrics_json() and scraper samples.
std::string histogram_json(const Histogram& h);
}  // namespace detail

}  // namespace tenet::telemetry

// --- Instrumentation macros -------------------------------------------------
//
// Each site caches its instrument reference in a function-local static, so
// the name lookup happens once per site; afterwards an enabled hit is one
// branch + one add. `name` must be a string literal (or otherwise outlive
// the first call).

#if TENET_TELEMETRY_ENABLED

#define TENET_COUNT(name, ...)                                              \
  do {                                                                      \
    if (::tenet::telemetry::enabled()) {                                    \
      static ::tenet::telemetry::Counter& tenet_tlm_c =                     \
          ::tenet::telemetry::registry().counter(name);                     \
      tenet_tlm_c.add(__VA_ARGS__);                                         \
    }                                                                       \
  } while (0)

#define TENET_GAUGE_SET(name, v)                                            \
  do {                                                                      \
    if (::tenet::telemetry::enabled()) {                                    \
      static ::tenet::telemetry::Gauge& tenet_tlm_g =                       \
          ::tenet::telemetry::registry().gauge(name);                       \
      tenet_tlm_g.set(v);                                                   \
    }                                                                       \
  } while (0)

#define TENET_GAUGE_ADD(name, d)                                            \
  do {                                                                      \
    if (::tenet::telemetry::enabled()) {                                    \
      static ::tenet::telemetry::Gauge& tenet_tlm_g =                       \
          ::tenet::telemetry::registry().gauge(name);                       \
      tenet_tlm_g.add(d);                                                   \
    }                                                                       \
  } while (0)

#define TENET_HISTOGRAM(name, v)                                            \
  do {                                                                      \
    if (::tenet::telemetry::enabled()) {                                    \
      static ::tenet::telemetry::Histogram& tenet_tlm_h =                   \
          ::tenet::telemetry::registry().histogram(name);                   \
      tenet_tlm_h.record(v);                                                \
    }                                                                       \
  } while (0)

#else  // telemetry compiled out

#define TENET_COUNT(name, ...) ((void)0)
#define TENET_GAUGE_SET(name, v) ((void)0)
#define TENET_GAUGE_ADD(name, d) ((void)0)
#define TENET_HISTOGRAM(name, v) ((void)0)

#endif  // TENET_TELEMETRY_ENABLED
