#include "telemetry/scrape.h"

#include <cstdio>

namespace tenet::telemetry {

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our registry names
/// are dotted lowercase identifiers; map everything else to '_'.
std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (alpha || c == '_' || c == ':' || (digit && i > 0)) {
      out += c;
    } else {
      out += '_';
    }
  }
  return out;
}

/// `# HELP` precedes `# TYPE` per the exposition-format convention; the
/// docstring carries the original dotted registry name, which prom_name
/// munges to underscores and is otherwise unrecoverable downstream.
void append_prom_help(std::string& out, const std::string& prom,
                      std::string_view kind, std::string_view name) {
  out += "# HELP ";
  out += prom;
  out += ' ';
  out += kind;
  out += " '";
  out += name;
  out += "' from the tenet registry\n";
}

void append_prom_line(std::string& out, const std::string& name,
                      const std::string& labels, uint64_t value,
                      uint64_t ts_ms) {
  out += name;
  out += labels;
  out += ' ';
  out += std::to_string(value);
  out += ' ';
  out += std::to_string(ts_ms);
  out += '\n';
}

}  // namespace

void Scraper::scrape(uint64_t ts_us) {
  Sample s;
  s.seq = total_;
  s.ts_us = ts_us;
  const Registry& reg = registry();
  s.counters.reserve(reg.counters().size());
  for (const auto& [name, c] : reg.counters()) {
    s.counters.emplace_back(name, c->value());
  }
  s.gauges.reserve(reg.gauges().size());
  for (const auto& [name, g] : reg.gauges()) {
    s.gauges.emplace_back(name, std::make_pair(g->value(), g->max_value()));
  }
  s.histograms.reserve(reg.histograms().size());
  for (const auto& [name, h] : reg.histograms()) {
    s.histograms.emplace_back(name, *h);
  }
  samples_.push_back(std::move(s));
  ++total_;
  while (samples_.size() > capacity_) samples_.pop_front();
}

std::string Scraper::jsonl() const {
  std::string out;
  for (const Sample& s : samples_) {
    out += "{\"seq\":";
    out += std::to_string(s.seq);
    out += ",\"ts_us\":";
    out += std::to_string(s.ts_us);
    out += ",\"metrics\":{\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : s.counters) {
      if (!first) out += ',';
      first = false;
      detail::append_json_escaped(out, name);
      out += ':';
      out += std::to_string(v);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : s.gauges) {
      if (!first) out += ',';
      first = false;
      detail::append_json_escaped(out, name);
      out += ":{\"value\":";
      out += std::to_string(g.first);
      out += ",\"max\":";
      out += std::to_string(g.second);
      out += '}';
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : s.histograms) {
      if (!first) out += ',';
      first = false;
      detail::append_json_escaped(out, name);
      out += ':';
      out += detail::histogram_json(h);
    }
    out += "}}}\n";
  }
  return out;
}

std::string Scraper::prometheus() const {
  if (samples_.empty()) return std::string();
  const Sample& s = samples_.back();
  const uint64_t ts_ms = s.ts_us / 1000;
  std::string out;
  for (const auto& [name, v] : s.counters) {
    const std::string n = prom_name(name);
    append_prom_help(out, n, "counter", name);
    out += "# TYPE " + n + " counter\n";
    append_prom_line(out, n, "", v, ts_ms);
  }
  for (const auto& [name, g] : s.gauges) {
    const std::string n = prom_name(name);
    append_prom_help(out, n, "gauge", name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(g.first) + " " + std::to_string(ts_ms) +
           "\n";
    append_prom_help(out, n + "_max", "high-watermark of gauge", name);
    out += "# TYPE " + n + "_max gauge\n";
    out += n + "_max " + std::to_string(g.second) + " " +
           std::to_string(ts_ms) + "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    const std::string n = prom_name(name);
    append_prom_help(out, n, "histogram", name);
    out += "# TYPE " + n + " histogram\n";
    uint64_t cum = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      cum += h.bucket(i);
      // Bucket i holds values < 2^i; `le` is the inclusive upper bound.
      const uint64_t le =
          i == 0 ? 0 : (Histogram::bucket_floor(i) - 1) * 2 + 1;
      append_prom_line(out, n + "_bucket", "{le=\"" + std::to_string(le) + "\"}",
                       cum, ts_ms);
    }
    append_prom_line(out, n + "_bucket", "{le=\"+Inf\"}", h.count(), ts_ms);
    append_prom_line(out, n + "_sum", "", h.sum(), ts_ms);
    append_prom_line(out, n + "_count", "", h.count(), ts_ms);
    // p999 rides along for tail-latency SLOs; with log2 buckets it is
    // exact whenever the top decile lands in one bucket.
    for (const auto& [q, label] :
         {std::make_pair(0.50, "0.5"), std::make_pair(0.90, "0.9"),
          std::make_pair(0.99, "0.99"), std::make_pair(0.999, "0.999")}) {
      append_prom_line(out, n, std::string("{quantile=\"") + label + "\"}",
                       h.quantile(q), ts_ms);
    }
  }
  return out;
}

namespace {

bool write_string(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

bool Scraper::write_jsonl(const std::string& path) const {
  return write_string(path, jsonl());
}

bool Scraper::write_prometheus(const std::string& path) const {
  return write_string(path, prometheus());
}

}  // namespace tenet::telemetry
