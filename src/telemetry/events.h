// Structured fleet-event log: a bounded, virtual-clock-stamped ring of
// typed control-plane events (failover adoption, rekeys, rollback
// refusals, EPC pressure, run-cap hits, partition cuts/heals, enclave
// restarts, shard liveness flips, snapshot installs).
//
// Counters say *how much*; traces say *where the cycles went*; the event
// log says *what happened to the fleet and when*. tools/fleet_report.py
// joins the three: it correlates SLO breaches in the scrape time series
// against fault windows reconstructed from these events, so a latency
// spike with no matching fault event is an anomaly rather than noise.
//
// Determinism: timestamps come from the tracer's virtual clock via the
// non-mutating peek (Tracer::clock_now — emitting an event never perturbs
// span timestamps), events hold fixed-size integer fields only (no
// strings, no allocation per emit beyond the pre-sized ring), and the
// JSONL export iterates in sequence order, so a scripted run produces a
// byte-identical event log.
//
// Like every other instrumentation layer, emission sites go through the
// TENET_EVENT macro: one branch on the global telemetry flag when built
// in but switched off, and nothing at all under -DTENET_TELEMETRY=OFF
// (the EventLog symbols themselves vanish from the build — the gcc-notlm
// CI leg asserts this with nm).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.h"

namespace tenet::telemetry {

/// Typed fleet events. Values are part of the JSONL export contract
/// (tools/fleet_report.py) — append only, never renumber.
enum class EventType : uint32_t {
  kFailoverAdopted = 1,   // node adopted a dead shard's admitted batch
  kRekey = 2,             // secure channel rekeyed (epoch > 1)
  kRollbackRefused = 3,   // stale snapshot rejected by the version vector
  kEpcPressure = 4,       // EPC had no evictable page (pressure fault)
  kRunCapHit = 5,         // simulator run() hit the event safety cap
  kPartitionCut = 6,      // first drop of a scheduled network partition
  kPartitionHeal = 7,     // every partition window has ended
  kEnclaveRestart = 8,    // Platform::restart_enclave tore down + relaunched
  kShardDown = 9,         // replica marked a shard unreachable
  kShardUp = 10,          // replica marked a shard reachable again
  kSnapshotInstalled = 11,  // join-by-state-transfer merged a snapshot
};

#if TENET_TELEMETRY_ENABLED

/// Stable lower_snake name for exports ("failover_adopted", ...).
[[nodiscard]] std::string_view event_type_name(EventType t);

/// One fleet event. Fixed-size integers only; `node` is the emitting
/// node/enclave/shard id (0 when not applicable) and a/b are type-specific
/// details (documented per emission site).
struct FleetEvent {
  uint64_t seq = 0;    // 1-based, strictly increasing across the run
  uint64_t ts_us = 0;  // virtual-clock microseconds (Tracer::clock_now)
  EventType type = EventType::kFailoverAdopted;
  uint32_t node = 0;
  uint64_t a = 0;
  uint64_t b = 0;
};

/// Bounded ring of FleetEvents. When full, the oldest event is evicted
/// (and counted), so a wedged or hostile emission path can never grow the
/// log without bound — the boundary fuzzer drives hostile frames into the
/// emitting handlers and asserts consistent() afterwards.
class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 4096;
  static constexpr size_t kTypeCount = 12;  // max EventType value + 1

  explicit EventLog(size_t capacity = kDefaultCapacity);

  /// Resizes the ring (drops retained events; totals keep counting).
  void set_capacity(size_t capacity);
  [[nodiscard]] size_t capacity() const { return capacity_; }

  /// Records one event, stamped from the tracer's virtual clock.
  void emit(EventType type, uint32_t node, uint64_t a = 0, uint64_t b = 0);

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<FleetEvent> snapshot() const;
  [[nodiscard]] size_t size() const { return ring_.size(); }
  /// Every emit() since the last clear(), retained or not.
  [[nodiscard]] uint64_t total() const { return next_seq_ - 1; }
  [[nodiscard]] uint64_t evicted() const { return evicted_; }
  /// Emissions of one type since the last clear() (includes evicted).
  [[nodiscard]] uint64_t count(EventType t) const;

  /// One JSON object per line, oldest first:
  ///   {"seq":N,"ts_us":T,"type":"rekey","node":3,"a":0,"b":0}
  [[nodiscard]] std::string jsonl() const;
  /// Writes jsonl() to `path`; returns false on I/O error.
  bool write_jsonl(const std::string& path) const;

  /// Ring invariants: retained seqs strictly increasing, size bounded by
  /// capacity, eviction arithmetic exact. The boundary fuzzer calls this
  /// after every hostile campaign — a false return means the ring wedged.
  [[nodiscard]] bool consistent() const;

  /// Drops everything and restarts seq from 1 (test/bench isolation).
  void clear();

 private:
  std::vector<FleetEvent> ring_;  // circular, head_ = oldest
  size_t capacity_;
  size_t head_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t evicted_ = 0;
  uint64_t by_type_[kTypeCount] = {};
};

/// Process-wide event log used by TENET_EVENT (leaked, like registry()).
EventLog& event_log();

#endif  // TENET_TELEMETRY_ENABLED

}  // namespace tenet::telemetry

/// Emission macro: TENET_EVENT(kRekey, node) or
/// TENET_EVENT(kShardDown, node, shard_id). One branch on the runtime
/// flag when compiled in; nothing at all when telemetry is compiled out.
#if TENET_TELEMETRY_ENABLED
#define TENET_EVENT(type, node, ...)                                        \
  do {                                                                      \
    if (::tenet::telemetry::enabled()) {                                    \
      ::tenet::telemetry::event_log().emit(                                 \
          ::tenet::telemetry::EventType::type,                              \
          (node)__VA_OPT__(, ) __VA_ARGS__);                                \
    }                                                                       \
  } while (0)
#else
#define TENET_EVENT(type, node, ...) ((void)0)
#endif
