#include "tor/dht.h"

#include <stdexcept>

namespace tenet::tor {

namespace {
/// True if `x` lies in the half-open circle interval (a, b].
bool in_interval(ChordRing::Key a, ChordRing::Key x, ChordRing::Key b) {
  if (a < b) return x > a && x <= b;
  if (a > b) return x > a || x <= b;  // wraps around zero
  return true;                        // a == b: full circle
}
}  // namespace

ChordRing::Key ChordRing::key_of(crypto::BytesView data) {
  const crypto::Digest d = crypto::Sha256::hash(data);
  return crypto::read_u64(crypto::BytesView(d.data(), d.size()), 0);
}

ChordRing::Key ChordRing::key_of_node(netsim::NodeId node) {
  crypto::Bytes b;
  crypto::append_u32(b, node);
  return key_of(b);
}

void ChordRing::join(const RelayDescriptor& descriptor) {
  const Key id = key_of_node(descriptor.node);
  members_[id] = Member{descriptor, {}};
  by_node_[descriptor.node] = id;
  rebuild_fingers();
}

void ChordRing::leave(netsim::NodeId node) {
  const auto it = by_node_.find(node);
  if (it == by_node_.end()) return;
  members_.erase(it->second);
  by_node_.erase(it);
  rebuild_fingers();
}

ChordRing::Key ChordRing::successor_key(Key key) const {
  // First member with id >= key, wrapping to the smallest id.
  const auto it = members_.lower_bound(key);
  return it != members_.end() ? it->first : members_.begin()->first;
}

void ChordRing::rebuild_fingers() {
  for (auto& [id, member] : members_) {
    for (int i = 0; i < kFingerBits; ++i) {
      const Key target = id + (Key{1} << i);  // wraps mod 2^64 naturally
      member.fingers[static_cast<size_t>(i)] = successor_key(target);
    }
  }
}

std::optional<RelayDescriptor> ChordRing::successor(Key key) const {
  if (members_.empty()) return std::nullopt;
  return members_.at(successor_key(key)).descriptor;
}

ChordRing::LookupResult ChordRing::lookup(Key key, Key start_hint) const {
  LookupResult result;
  if (members_.empty()) return result;

  Key current = successor_key(start_hint);
  const Key target_owner = successor_key(key);

  // Iterative routing: forward to the closest preceding finger until the
  // key falls between us and our immediate successor.
  for (size_t step = 0; step < members_.size() + kFingerBits; ++step) {
    if (current == target_owner) {
      result.descriptor = members_.at(current).descriptor;
      return result;
    }
    const Member& m = members_.at(current);
    const Key my_successor = m.fingers[0];  // succ(id + 1)
    if (in_interval(current, key, my_successor)) {
      result.descriptor = members_.at(my_successor).descriptor;
      ++result.hops;
      return result;
    }
    // Closest preceding finger of `key`.
    Key next = my_successor;
    for (int i = kFingerBits - 1; i >= 0; --i) {
      const Key f = m.fingers[static_cast<size_t>(i)];
      if (f != current && in_interval(current, f, key)) {
        next = f;
        break;
      }
    }
    if (next == current) break;  // cannot make progress (degenerate ring)
    current = next;
    ++result.hops;
  }
  // Fallback: direct answer (should not normally be reached).
  result.descriptor = members_.at(target_owner).descriptor;
  return result;
}

ChordRing::LookupResult ChordRing::find_relay(netsim::NodeId node) const {
  LookupResult r = lookup(key_of_node(node));
  if (r.descriptor.has_value() && r.descriptor->node != node) {
    r.descriptor.reset();  // key owner is not the relay: not a member
  }
  return r;
}

std::vector<RelayDescriptor> ChordRing::members() const {
  std::vector<RelayDescriptor> out;
  out.reserve(members_.size());
  for (const auto& [id, m] : members_) out.push_back(m.descriptor);
  return out;
}

void ChordRing::check_invariants() const {
  for (const auto& [id, member] : members_) {
    if (key_of_node(member.descriptor.node) != id) {
      throw std::logic_error("ChordRing: key/descriptor mismatch");
    }
    for (int i = 0; i < kFingerBits; ++i) {
      const Key target = id + (Key{1} << i);
      const Key expect = successor_key(target);
      if (member.fingers[static_cast<size_t>(i)] != expect) {
        throw std::logic_error("ChordRing: stale finger entry");
      }
    }
  }
}

}  // namespace tenet::tor
