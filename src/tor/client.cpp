#include "tor/client.h"

#include "telemetry/trace.h"
#include "tor/relay.h"

namespace tenet::tor {

ClientApp::ClientApp(const sgx::Authority& authority,
                     sgx::AttestationConfig config, ClientPolicy policy)
    : SecureApp(authority, config), policy_(policy) {}

void ClientApp::fail(std::string_view reason) {
  state_ = CircuitState::kFailed;
  failure_ = reason;
}

const RelayDescriptor* ClientApp::descriptor_of(netsim::NodeId node) const {
  return consensus_.has_value() ? consensus_->find(node) : nullptr;
}

void ClientApp::send_cell(core::Ctx& ctx, netsim::NodeId to, const Cell& cell) {
  ctx.send_plain(to, tag_message(TorMsg::kCell, cell.serialize()));
}

void ClientApp::request_consensus(core::Ctx& ctx, netsim::NodeId authority) {
  const crypto::Bytes req = tag_message(TorMsg::kConsensusRequest, {});
  if (policy_.attest_directories) {
    ctx.send_secure(authority, req);
  } else {
    ctx.send_plain(authority, req);
  }
}

void ClientApp::on_peer_attested(core::Ctx& ctx, netsim::NodeId peer) {
  if (peer == pending_directory_) {
    pending_directory_ = netsim::kInvalidNode;
    request_consensus(ctx, peer);
    return;
  }
  if (state_ == CircuitState::kBuilding && policy_.attest_relays) {
    if (std::find(path_.begin(), path_.end(), peer) != path_.end()) {
      ++attested_relays_;
      if (attested_relays_ == path_.size()) start_build(ctx);
    }
  }
}

void ClientApp::on_plain_message(core::Ctx& ctx, netsim::NodeId peer,
                                 crypto::BytesView payload) {
  try {
    switch (message_tag(payload)) {
      case TorMsg::kConsensusResponse:
        // Plaintext consensus is only acceptable when this deployment
        // phase does not require attested directories.
        if (!policy_.attest_directories) {
          consensus_ = Consensus::deserialize(message_body(payload));
        }
        return;
      case TorMsg::kCell:
        handle_cell(ctx, peer, Cell::deserialize(message_body(payload)));
        return;
      default:
        return;
    }
  } catch (const std::exception&) {
    return;
  }
}

void ClientApp::on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                                  crypto::BytesView payload) {
  try {
    if (message_tag(payload) == TorMsg::kConsensusResponse) {
      consensus_ = Consensus::deserialize(message_body(payload));
      return;
    }
    on_plain_message(ctx, peer, payload);
  } catch (const std::exception&) {
    return;
  }
}

void ClientApp::start_build(core::Ctx& ctx) {
  for (const netsim::NodeId hop : path_) {
    if (descriptor_of(hop) == nullptr) {
      return fail("relay not in consensus");
    }
  }
  onion_ = OnionCrypt{};
  hops_done_ = 0;
  circuit_id_ = static_cast<CircuitId>(ctx.rng().uniform(1u << 30) + 1);
  pending_dh_.emplace(crypto::DhGroup::oakley_group2(), ctx.rng());

  Cell create;
  create.circuit = circuit_id_;
  create.command = CellCommand::kCreate;
  create.payload = pending_dh_->public_bytes();
  send_cell(ctx, path_[0], create);
}

void ClientApp::continue_build(core::Ctx& ctx) {
  if (hops_done_ == path_.size()) {
    state_ = CircuitState::kReady;
    pending_dh_.reset();
    return;
  }
  const netsim::NodeId target = path_[hops_done_];
  pending_dh_.emplace(crypto::DhGroup::oakley_group2(), ctx.rng());

  RelayPayload payload;
  payload.stream = 0;
  payload.data = encode_extend(target, pending_dh_->public_bytes());
  // Sealed for the current last hop, which performs the extension.
  const crypto::Bytes sealed = payload.seal(onion_.hop(hops_done_ - 1));

  Cell cell;
  cell.circuit = circuit_id_;
  cell.command = CellCommand::kRelayForward;
  cell.payload = onion_.wrap_forward(sealed);
  send_cell(ctx, path_[0], cell);
}

void ClientApp::handle_cell(core::Ctx& ctx, netsim::NodeId from,
                            const Cell& cell) {
  if (cell.circuit != circuit_id_) return;
  if (cell.command == CellCommand::kCreated) {
    if (state_ != CircuitState::kBuilding || hops_done_ != 0 ||
        !pending_dh_.has_value() || from != path_[0]) {
      return;
    }
    const RelayDescriptor* guard = descriptor_of(path_[0]);
    crypto::Bytes shared;
    try {
      shared = pending_dh_->shared_secret(
          crypto::BytesView(guard->onion_public));
    } catch (const std::invalid_argument&) {
      return fail("guard advertised a degenerate onion key");
    }
    const HopKeys keys = HopKeys::derive(shared);
    crypto::Reader r(cell.payload);
    const crypto::Bytes confirm = r.lv();
    const crypto::Digest expected =
        crypto::hmac_sha256(keys.digest_key, crypto::to_bytes("created"));
    if (!crypto::ct_equal(confirm, crypto::BytesView(expected.data(), 32))) {
      return fail("guard handshake confirmation invalid");
    }
    onion_.add_hop(keys);
    hops_done_ = 1;
    continue_build(ctx);
    return;
  }
  if (cell.command == CellCommand::kRelayBackward && from == path_[0]) {
    handle_backward(ctx, cell);
  }
}

void ClientApp::handle_backward(core::Ctx& ctx, const Cell& cell) {
  const crypto::Bytes plain = onion_.unwrap_backward(cell.payload);
  // Identify the sealing hop (normally the last built hop or the exit).
  std::optional<RelayPayload> payload;
  for (size_t i = onion_.hop_count(); i-- > 0;) {
    payload = RelayPayload::open(onion_.hop(i), plain);
    if (payload.has_value()) break;
  }
  if (!payload.has_value()) return;  // unrecognized/tampered: drop
  if (payload->data.empty()) return;

  switch (static_cast<RelaySub>(payload->data[0])) {
    case RelaySub::kExtended: {
      if (state_ != CircuitState::kBuilding || !pending_dh_.has_value()) {
        return;
      }
      const RelayDescriptor* next = descriptor_of(path_[hops_done_]);
      crypto::Bytes shared;
      try {
        shared =
            pending_dh_->shared_secret(crypto::BytesView(next->onion_public));
      } catch (const std::invalid_argument&) {
        return fail("relay advertised a degenerate onion key");
      }
      const HopKeys keys = HopKeys::derive(shared);
      crypto::Reader r(crypto::BytesView(payload->data).subspan(1));
      const crypto::Bytes confirm = r.lv();
      const crypto::Digest expected =
          crypto::hmac_sha256(keys.digest_key, crypto::to_bytes("created"));
      if (!crypto::ct_equal(confirm, crypto::BytesView(expected.data(), 32))) {
        return fail("extend handshake confirmation invalid");
      }
      onion_.add_hop(keys);
      ++hops_done_;
      continue_build(ctx);
      return;
    }
    case RelaySub::kDataReply: {
      crypto::Reader r(crypto::BytesView(payload->data).subspan(1));
      last_response_ = r.lv();
      return;
    }
    default:
      return;
  }
}

crypto::Bytes ClientApp::on_control(core::Ctx& ctx, uint32_t subfn,
                                    crypto::BytesView arg) {
  switch (subfn) {
    case kCtlFetchConsensus: {
      TENET_TRACE_ROOT("tor", "fetch_consensus");
      const netsim::NodeId authority = crypto::read_u32(arg, 0);
      if (policy_.attest_directories && !is_attested(authority)) {
        pending_directory_ = authority;
        ctx.connect(authority);
      } else {
        request_consensus(ctx, authority);
      }
      return {};
    }
    case kCtlHasConsensus: {
      crypto::Bytes out;
      out.push_back(consensus_.has_value() ? 1 : 0);
      return out;
    }
    case kCtlGetConsensus:
      return consensus_.has_value() ? consensus_->serialize() : crypto::Bytes{};
    case kCtlBuildCircuit: {
      TENET_TRACE_ROOT("tor", "build_circuit");
      crypto::Reader r(arg);
      path_ = {r.u32(), r.u32(), r.u32()};
      state_ = CircuitState::kBuilding;
      failure_.clear();
      if (policy_.attest_relays) {
        attested_relays_ = 0;
        for (const netsim::NodeId hop : path_) {
          if (is_attested(hop)) {
            ++attested_relays_;
          } else {
            ctx.connect(hop);
          }
        }
        if (attested_relays_ == path_.size()) start_build(ctx);
      } else {
        start_build(ctx);
      }
      return {};
    }
    case kCtlCircuitState: {
      crypto::Bytes out;
      out.push_back(static_cast<uint8_t>(state_));
      return out;
    }
    case kCtlSendData: {
      TENET_TRACE_ROOT("tor", "send_data");
      if (state_ != CircuitState::kReady) return {};
      crypto::Reader r(arg);
      const netsim::NodeId dest = r.u32();
      const crypto::Bytes request = r.lv();
      last_response_.clear();

      RelayPayload payload;
      payload.stream = next_stream_++;
      payload.data = encode_data(dest, request);
      const crypto::Bytes sealed =
          payload.seal(onion_.hop(onion_.hop_count() - 1));
      Cell cell;
      cell.circuit = circuit_id_;
      cell.command = CellCommand::kRelayForward;
      cell.payload = onion_.wrap_forward(sealed);
      send_cell(ctx, path_[0], cell);
      return {};
    }
    case kCtlLastResponse: {
      crypto::Bytes out;
      crypto::append_lv(out, last_response_);
      return out;
    }
    case kCtlTeardown: {
      if (state_ == CircuitState::kReady || state_ == CircuitState::kBuilding) {
        Cell destroy;
        destroy.circuit = circuit_id_;
        destroy.command = CellCommand::kDestroy;
        send_cell(ctx, path_[0], destroy);
      }
      state_ = CircuitState::kNone;
      onion_ = OnionCrypt{};
      path_.clear();
      return {};
    }
    case kCtlFailureReason:
      return crypto::to_bytes(failure_);
    case kCtlInstallDirectory:
      try {
        consensus_ = Consensus::deserialize(arg);
      } catch (const std::exception&) {
      }
      return {};
    case kCtlBuildAutoCircuit: {
      TENET_TRACE_ROOT("tor", "build_circuit");
      if (!consensus_.has_value() || consensus_->relays.size() < 3) {
        fail("not enough relays in consensus");
        return {};
      }
      // Pick guard/mid uniformly, exit among exit-flagged relays, all
      // distinct — with the enclave's own DRBG, invisible to the host.
      const auto& relays = consensus_->relays;
      std::vector<const RelayDescriptor*> exits;
      for (const RelayDescriptor& d : relays) {
        if (d.exit) exits.push_back(&d);
      }
      if (exits.empty()) {
        fail("no exit relays in consensus");
        return {};
      }
      const RelayDescriptor* exit_relay =
          exits[ctx.rng().uniform(exits.size())];
      auto pick_distinct = [&](std::vector<netsim::NodeId> taken) {
        for (int tries = 0; tries < 256; ++tries) {
          const RelayDescriptor& d = relays[ctx.rng().uniform(relays.size())];
          if (std::find(taken.begin(), taken.end(), d.node) == taken.end()) {
            return d.node;
          }
        }
        return netsim::kInvalidNode;
      };
      const netsim::NodeId guard = pick_distinct({exit_relay->node});
      const netsim::NodeId mid = pick_distinct({exit_relay->node, guard});
      if (guard == netsim::kInvalidNode || mid == netsim::kInvalidNode) {
        fail("could not pick distinct relays");
        return {};
      }
      path_ = {guard, mid, exit_relay->node};
      state_ = CircuitState::kBuilding;
      failure_.clear();
      if (policy_.attest_relays) {
        attested_relays_ = 0;
        for (const netsim::NodeId hop : path_) {
          if (is_attested(hop)) {
            ++attested_relays_;
          } else {
            ctx.connect(hop);
          }
        }
        if (attested_relays_ == path_.size()) start_build(ctx);
      } else {
        start_build(ctx);
      }
      return {};
    }
    default:
      return {};
  }
}

}  // namespace tenet::tor
