#include "tor/network.h"

namespace tenet::tor {

namespace {

constexpr std::string_view kRelaySource =
    "tor onion router v0.2.6 (tenet)\n"
    "faithful: forwards cells unmodified, logs nothing\n";
constexpr std::string_view kAuthoritySource =
    "tor directory authority v0.2.6 (tenet)\n"
    "faithful: votes its admitted set, serves the majority consensus\n";
constexpr std::string_view kClientSource =
    "tor client (onion proxy) v0.2.6 (tenet)\n";

}  // namespace

void DestinationServer::handle_message(const netsim::Message& msg) {
  try {
    if (message_tag(msg.payload) != TorMsg::kExitRequest) return;
    crypto::Reader r(message_body(msg.payload));
    const uint32_t esid = r.u32();
    const crypto::Bytes request = r.lv();
    requests_.emplace_back(request);

    crypto::Bytes response = crypto::to_bytes("echo:");
    crypto::append(response, request);
    crypto::Bytes body;
    crypto::append_u32(body, esid);
    crypto::append_lv(body, response);
    send(msg.src, msg.port, tag_message(TorMsg::kExitResponse, body));
  } catch (const std::exception&) {
  }
}

TorNetwork::Policies TorNetwork::phase_policies() const {
  Policies p;
  switch (config_.phase) {
    case Phase::kBaseline:
      break;
    case Phase::kSgxDirectories:
      p.client.attest_directories = true;
      p.authority.secure_votes = true;
      break;
    case Phase::kSgxRelays:
      p.client.attest_directories = true;
      p.authority.secure_votes = true;
      p.authority.auto_admit_sgx = true;
      p.relays_claim_sgx = true;
      break;
    case Phase::kFullySgx:
      p.client.attest_relays = true;
      p.relays_claim_sgx = true;
      break;
  }
  return p;
}

TorNetwork::TorNetwork(TorNetworkConfig config)
    : config_(config), sim_(config.seed) {
  // Pre-size the simulator for the topology and scale the run() safety
  // cap with it, so thousands-of-relays deployments neither pay table
  // growth on the hot path nor trip the cap sized for paper-scale runs.
  const size_t n_nodes =
      config.n_authorities + config.n_relays + config.n_clients + 8;
  sim_.reserve_nodes(n_nodes);
  sim_.set_run_cap(std::max<size_t>(1'000'000, 2'000 * n_nodes));
  relay_project_ = std::make_unique<core::OpenProject>(
      "tor-relay", std::string(kRelaySource), nullptr);
  authority_project_ = std::make_unique<core::OpenProject>(
      "tor-authority", std::string(kAuthoritySource), nullptr);
  client_project_ = std::make_unique<core::OpenProject>(
      "tor-client", std::string(kClientSource), nullptr);

  const Policies pol = phase_policies();
  const sgx::Authority* auth = &sgx_authority_;

  // Attestation policies. Every attestation in the Tor mesh is MUTUAL
  // (§3.2 "each Tor component can trust each other because it verifies
  // that the other is running the legitimate version of Tor"): a
  // subverted component can neither pass as a target nor sneak in as a
  // challenger. Each role admits exactly the measurements it talks to.
  sgx::AttestationConfig authority_cfg;
  authority_cfg.mutual = true;
  authority_cfg.expect.expect_enclave(relay_project_->measurement());
  authority_cfg.expect.also_accept(authority_project_->measurement());
  authority_cfg.expect.also_accept(client_project_->measurement());

  sgx::AttestationConfig client_cfg;
  client_cfg.mutual = true;
  client_cfg.expect.expect_enclave(authority_project_->measurement());
  client_cfg.expect.also_accept(relay_project_->measurement());

  sgx::AttestationConfig relay_cfg;
  relay_cfg.mutual = true;
  relay_cfg.expect.expect_enclave(authority_project_->measurement());
  relay_cfg.expect.also_accept(client_project_->measurement());

  const bool robust = config.robust;
  const netsim::RetryPolicy retry = config.retry;

  const bool with_authorities = config.phase != Phase::kFullySgx;
  if (with_authorities) {
    for (size_t i = 0; i < config.n_authorities; ++i) {
      sgx::EnclaveImage image = authority_project_->build();
      const AuthorityPolicy apol = pol.authority;
      image.factory = [auth, authority_cfg, apol, robust, retry] {
        auto app = std::make_unique<AuthorityApp>(*auth, authority_cfg, apol);
        if (robust) app->enable_recovery(retry);
        return app;
      };
      auto node = std::make_unique<core::EnclaveNode>(
          sim_, sgx_authority_, "dirauth-" + std::to_string(i),
          authority_project_->foundation(), image);
      if (config_.switchless) {
        node->enable_switchless(config_.switchless_config);
      }
      node->start();
      authorities_.push_back(std::move(node));
    }
  }

  for (size_t i = 0; i < config.n_relays; ++i) {
    sgx::EnclaveImage image = relay_project_->build();
    const std::string nickname = "relay-" + std::to_string(i);
    const bool claims = pol.relays_claim_sgx;
    image.factory = [auth, relay_cfg, nickname, claims] {
      return std::make_unique<RelayApp>(*auth, relay_cfg, nickname,
                                        /*exit_relay=*/true, claims);
    };
    auto node = std::make_unique<core::EnclaveNode>(
        sim_, sgx_authority_, nickname, relay_project_->foundation(), image);
    if (config_.switchless) {
      node->enable_switchless(config_.switchless_config);
    }
    node->start();
    relays_.push_back(std::move(node));
  }

  for (size_t i = 0; i < config.n_clients; ++i) {
    sgx::EnclaveImage image = client_project_->build();
    const ClientPolicy cpol = pol.client;
    image.factory = [auth, client_cfg, cpol] {
      return std::make_unique<ClientApp>(*auth, client_cfg, cpol);
    };
    auto node = std::make_unique<core::EnclaveNode>(
        sim_, sgx_authority_, "client-" + std::to_string(i),
        client_project_->foundation(), image);
    if (config_.switchless) {
      node->enable_switchless(config_.switchless_config);
    }
    node->start();
    clients_.push_back(std::move(node));
  }

  destination_ = std::make_unique<DestinationServer>(sim_, "destination");
}

core::EnclaveNode& TorNetwork::add_tampering_exit() {
  const Policies pol = phase_policies();
  const sgx::Authority* auth = &sgx_authority_;
  const std::string nickname = "evil-exit-" + std::to_string(evil_count_++);
  const bool claims = pol.relays_claim_sgx;
  sgx::AttestationConfig relay_cfg;
  relay_cfg.mutual = true;
  relay_cfg.expect.expect_enclave(authority_project_->measurement());
  relay_cfg.expect.also_accept(client_project_->measurement());
  sgx::EnclaveImage image = sgx::adversary::patch_image(
      relay_project_->build(), "tamper exit traffic",
      [auth, relay_cfg, nickname, claims] {
        return std::make_unique<TamperingExitApp>(*auth, relay_cfg, nickname,
                                                  /*exit_relay=*/true, claims);
      });
  auto node = std::make_unique<core::EnclaveNode>(
      sim_, sgx_authority_, nickname, volunteer_vendor_, image);
  if (config_.switchless) {
    node->enable_switchless(config_.switchless_config);
  }
  node->start();
  relays_.push_back(std::move(node));
  return *relays_.back();
}

core::EnclaveNode& TorNetwork::add_snooping_exit() {
  const Policies pol = phase_policies();
  const sgx::Authority* auth = &sgx_authority_;
  const std::string nickname = "snoop-exit-" + std::to_string(evil_count_++);
  const bool claims = pol.relays_claim_sgx;
  sgx::AttestationConfig relay_cfg;
  relay_cfg.mutual = true;
  relay_cfg.expect.expect_enclave(authority_project_->measurement());
  relay_cfg.expect.also_accept(client_project_->measurement());
  sgx::EnclaveImage image = sgx::adversary::patch_image(
      relay_project_->build(), "log exit plaintext",
      [auth, relay_cfg, nickname, claims] {
        return std::make_unique<SnoopingExitApp>(*auth, relay_cfg, nickname,
                                                 /*exit_relay=*/true, claims);
      });
  auto node = std::make_unique<core::EnclaveNode>(
      sim_, sgx_authority_, nickname, volunteer_vendor_, image);
  if (config_.switchless) {
    node->enable_switchless(config_.switchless_config);
  }
  node->start();
  relays_.push_back(std::move(node));
  return *relays_.back();
}

core::EnclaveNode& TorNetwork::add_subverted_authority(
    netsim::NodeId planted_relay) {
  const Policies pol = phase_policies();
  const sgx::Authority* auth = &sgx_authority_;
  sgx::AttestationConfig authority_cfg;
  authority_cfg.mutual = true;
  authority_cfg.expect.expect_enclave(relay_project_->measurement());
  authority_cfg.expect.also_accept(authority_project_->measurement());
  authority_cfg.expect.also_accept(client_project_->measurement());

  RelayDescriptor planted;
  planted.node = planted_relay;
  planted.nickname = "planted";
  planted.onion_public.assign(128, 0x42);  // bogus key; enough to mislead
  planted.exit = true;

  const AuthorityPolicy apol = pol.authority;
  sgx::EnclaveImage image = sgx::adversary::patch_image(
      authority_project_->build(), "plant malicious relay in consensus",
      [auth, authority_cfg, apol, planted] {
        return std::make_unique<SubvertedAuthorityApp>(*auth, authority_cfg,
                                                       apol, planted);
      });
  auto node = std::make_unique<core::EnclaveNode>(
      sim_, sgx_authority_, "subverted-dirauth-" + std::to_string(evil_count_++),
      volunteer_vendor_, image);
  if (config_.switchless) {
    node->enable_switchless(config_.switchless_config);
  }
  node->start();
  authorities_.push_back(std::move(node));
  return *authorities_.back();
}

void TorNetwork::attest_authority_mesh(
    const std::vector<size_t>& authority_indices) {
  for (const size_t i : authority_indices) {
    crypto::Bytes arg;
    crypto::append_u32(arg,
                       static_cast<uint32_t>(authority_indices.size() - 1));
    for (const size_t j : authority_indices) {
      if (j != i) crypto::append_u32(arg, authorities_.at(j)->id());
    }
    (void)authorities_.at(i)->control(kCtlAttestPeers, arg);
  }
  sim_.run();
}

void TorNetwork::publish_descriptors(
    const std::vector<size_t>& authority_indices) {
  for (auto& relay : relays_) {
    for (const size_t i : authority_indices) {
      crypto::Bytes arg;
      crypto::append_u32(arg, authorities_.at(i)->id());
      (void)relay->control(kCtlPublishDescriptor, arg);
    }
  }
  sim_.run();
}

void TorNetwork::approve_all_pending(size_t authority_index) {
  core::EnclaveNode& node = *authorities_.at(authority_index);
  for (auto& relay : relays_) {
    crypto::Bytes arg;
    crypto::append_u32(arg, relay->id());
    (void)node.control(kCtlApproveRelay, arg);
  }
  sim_.run();
}

void TorNetwork::run_vote(uint32_t epoch,
                          const std::vector<size_t>& authority_indices) {
  for (const size_t i : authority_indices) {
    crypto::Bytes arg;
    crypto::append_u32(arg, epoch);
    crypto::append_u32(arg, static_cast<uint32_t>(authority_indices.size()));
    // Baseline vote targets (ignored when secure_votes is on).
    for (const size_t j : authority_indices) {
      if (j != i) crypto::append_u32(arg, authorities_.at(j)->id());
    }
    (void)authorities_.at(i)->control(kCtlStartVote, arg);
  }
  sim_.run();
}

std::optional<Consensus> TorNetwork::consensus_of(size_t authority_index) {
  const crypto::Bytes wire =
      authorities_.at(authority_index)->control(kCtlGetConsensus2);
  if (wire.empty()) return std::nullopt;
  return Consensus::deserialize(wire);
}

bool TorNetwork::fetch_consensus(size_t client_index,
                                 netsim::NodeId directory_node) {
  crypto::Bytes arg;
  crypto::append_u32(arg, directory_node);
  (void)clients_.at(client_index)->control(kCtlFetchConsensus, arg);
  sim_.run();
  const crypto::Bytes has =
      clients_.at(client_index)->control(kCtlHasConsensus);
  return !has.empty() && has[0] == 1;
}

bool TorNetwork::install_directory_from_ring(size_t client_index) {
  Consensus consensus;
  consensus.epoch = 1;
  for (const RelayDescriptor& d : ring_.members()) {
    consensus.relays.push_back(d);
  }
  // Reuse the consensus-response path: deliver as if from a directory —
  // but the fully-SGX client does not trust directories, so we inject via
  // a dedicated control hook below.
  (void)clients_.at(client_index)
      ->control(kCtlInstallDirectory, consensus.serialize());
  return true;
}

bool TorNetwork::build_circuit(size_t client_index, netsim::NodeId guard,
                               netsim::NodeId mid, netsim::NodeId exit) {
  crypto::Bytes arg;
  crypto::append_u32(arg, guard);
  crypto::append_u32(arg, mid);
  crypto::append_u32(arg, exit);
  (void)clients_.at(client_index)->control(kCtlBuildCircuit, arg);
  sim_.run();
  return circuit_state(client_index) == CircuitState::kReady;
}

bool TorNetwork::build_auto_circuit(size_t client_index) {
  (void)clients_.at(client_index)->control(kCtlBuildAutoCircuit, {});
  sim_.run();
  return circuit_state(client_index) == CircuitState::kReady;
}

CircuitState TorNetwork::circuit_state(size_t client_index) {
  const crypto::Bytes out =
      clients_.at(client_index)->control(kCtlCircuitState);
  return out.empty() ? CircuitState::kNone
                     : static_cast<CircuitState>(out[0]);
}

std::string TorNetwork::circuit_failure(size_t client_index) {
  return crypto::to_string(
      clients_.at(client_index)->control(kCtlFailureReason));
}

std::optional<std::string> TorNetwork::request(size_t client_index,
                                               std::string_view payload) {
  crypto::Bytes arg;
  crypto::append_u32(arg, destination_->id());
  crypto::append_lv(arg, crypto::to_bytes(payload));
  (void)clients_.at(client_index)->control(kCtlSendData, arg);
  sim_.run();
  const crypto::Bytes out =
      clients_.at(client_index)->control(kCtlLastResponse);
  crypto::Reader r(out);
  const crypto::Bytes response = r.lv();
  if (response.empty()) return std::nullopt;
  return crypto::to_string(response);
}

uint64_t TorNetwork::client_attestations(size_t client_index) {
  return clients_.at(client_index)->query(core::kQueryAttestationsInitiated);
}

uint64_t TorNetwork::authority_attestations(size_t authority_index) {
  return authorities_.at(authority_index)
      ->query(core::kQueryAttestationsInitiated);
}

void TorNetwork::join_ring_all() {
  for (auto& relay : relays_) {
    const crypto::Bytes wire = relay->control(kCtlGetDescriptor);
    if (!wire.empty()) ring_.join(RelayDescriptor::deserialize(wire));
  }
}

std::vector<crypto::Bytes> TorNetwork::dump_snoop_log(
    core::EnclaveNode& snoop) {
  const crypto::Bytes wire = snoop.control(SnoopingExitApp::kCtlDumpLog);
  std::vector<crypto::Bytes> out;
  crypto::Reader r(wire);
  while (!r.done()) out.push_back(r.lv());
  return out;
}

bool TorNetwork::crash_and_recover_authority(size_t authority_index) {
  core::EnclaveNode& node = authority(authority_index);
  (void)node.checkpoint();
  node.inject_fault();
  return node.recover();
}

}  // namespace tenet::tor
