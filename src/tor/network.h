// TorNetwork — assembles complete Tor deployments for every phase of
// §3.2's incremental deployment model and drives them over the simulator.
// Used by the integration tests, the tor_network example and the Table 3 /
// A4 benches.
#pragma once

#include "core/node.h"
#include "core/open_project.h"
#include "sgx/adversary.h"
#include "tor/attacks.h"
#include "tor/client.h"
#include "tor/dht.h"
#include "tor/directory.h"
#include "tor/relay.h"

namespace tenet::tor {

struct TorNetworkConfig {
  Phase phase = Phase::kBaseline;
  size_t n_authorities = 3;  // Tor runs nine; tests use fewer for speed
  size_t n_relays = 6;       // every relay doubles as a possible exit
  size_t n_clients = 1;
  uint64_t seed = 2015;
  /// Opt every enclave app into fault recovery (attestation retry,
  /// re-handshake on peer restart) — for scenarios that inject faults.
  bool robust = false;
  netsim::RetryPolicy retry;  // used when robust
  /// Serve every enclave node's transitions through switchless rings
  /// (DESIGN.md §10). Application output is byte-identical either way;
  /// only cost accounting and sgx.switchless.* telemetry change.
  bool switchless = false;
  sgx::SwitchlessConfig switchless_config;
};

/// A destination web server outside Tor; replies "echo:<request>" and
/// records the plaintext it served (ground truth for tamper detection).
class DestinationServer final : public netsim::Node {
 public:
  using netsim::Node::Node;
  void handle_message(const netsim::Message& msg) override;
  [[nodiscard]] const std::vector<crypto::Bytes>& requests_seen() const {
    return requests_;
  }

 private:
  std::vector<crypto::Bytes> requests_;
};

class TorNetwork {
 public:
  explicit TorNetwork(TorNetworkConfig config);

  [[nodiscard]] netsim::Simulator& sim() { return sim_; }
  [[nodiscard]] const TorNetworkConfig& config() const { return config_; }

  [[nodiscard]] core::EnclaveNode& authority(size_t i) { return *authorities_.at(i); }
  [[nodiscard]] core::EnclaveNode& relay(size_t i) { return *relays_.at(i); }
  [[nodiscard]] core::EnclaveNode& client(size_t i) { return *clients_.at(i); }
  [[nodiscard]] DestinationServer& destination() { return *destination_; }
  [[nodiscard]] size_t authority_count() const { return authorities_.size(); }
  [[nodiscard]] size_t relay_count() const { return relays_.size(); }

  // --- Adversaries (§3.2's attack catalogue) ---
  /// Adds an exit that flips plaintext bytes. Returns its node.
  core::EnclaveNode& add_tampering_exit();
  /// Adds an exit that logs plaintext for its operator.
  core::EnclaveNode& add_snooping_exit();
  /// Adds a subverted authority that plants `planted_relay` into the
  /// consensus it serves.
  core::EnclaveNode& add_subverted_authority(netsim::NodeId planted_relay);

  // --- Orchestration ---
  /// Authorities attest each other pairwise (SGX phases).
  void attest_authority_mesh(const std::vector<size_t>& authority_indices);
  /// Every relay uploads its descriptor to every listed authority.
  void publish_descriptors(const std::vector<size_t>& authority_indices);
  /// Manual admission: authority `i` approves every pending relay
  /// (baseline behaviour — the bottleneck §3.2 complains about).
  void approve_all_pending(size_t authority_index);
  /// Authorities vote and compute consensus (total = participants).
  void run_vote(uint32_t epoch, const std::vector<size_t>& authority_indices);

  [[nodiscard]] std::optional<Consensus> consensus_of(size_t authority_index);
  /// Client pulls the consensus from an arbitrary directory node (possibly
  /// a subverted one). Returns whether it accepted a document.
  bool fetch_consensus(size_t client_index, netsim::NodeId directory_node);
  /// Fully-SGX path: the host assembles directory info from DHT lookups
  /// and hands it to the client (integrity comes from relay attestation,
  /// not from the directory — that is the §3.2 point).
  bool install_directory_from_ring(size_t client_index);

  /// Builds a 3-hop circuit; returns true if it reached kReady.
  bool build_circuit(size_t client_index, netsim::NodeId guard,
                     netsim::NodeId mid, netsim::NodeId exit);
  /// In-enclave path selection (kCtlBuildAutoCircuit).
  bool build_auto_circuit(size_t client_index);
  [[nodiscard]] CircuitState circuit_state(size_t client_index);
  [[nodiscard]] std::string circuit_failure(size_t client_index);

  /// Sends a request through the client's circuit to the destination
  /// server; returns the response (nullopt if none arrived).
  std::optional<std::string> request(size_t client_index,
                                     std::string_view payload);

  // --- Metrics (Table 3) ---
  [[nodiscard]] uint64_t client_attestations(size_t client_index);
  [[nodiscard]] uint64_t authority_attestations(size_t authority_index);

  // --- Fully-SGX membership ring ---
  [[nodiscard]] ChordRing& ring() { return ring_; }
  /// All faithful relays join the DHT.
  void join_ring_all();

  /// Snooping-exit exfiltration (host side; works on any phase where the
  /// snoop actually ran as an exit).
  std::vector<crypto::Bytes> dump_snoop_log(core::EnclaveNode& snoop);

  // --- Fault drill (§3.2 restart story) ---
  /// Checkpoints authority `i`'s sealed state, injects a real EPC fault
  /// (the node goes dead), restarts the enclave from its image, and
  /// restores the checkpoint. Returns true if the state was restored.
  bool crash_and_recover_authority(size_t authority_index);

 private:
  struct Policies {
    ClientPolicy client;
    AuthorityPolicy authority;
    bool relays_claim_sgx = false;
  };
  [[nodiscard]] Policies phase_policies() const;

  TorNetworkConfig config_;
  netsim::Simulator sim_;
  sgx::Authority sgx_authority_;

  std::unique_ptr<core::OpenProject> relay_project_;
  std::unique_ptr<core::OpenProject> authority_project_;
  std::unique_ptr<core::OpenProject> client_project_;
  sgx::Vendor volunteer_vendor_{"curious-volunteer"};

  std::vector<std::unique_ptr<core::EnclaveNode>> authorities_;
  std::vector<std::unique_ptr<core::EnclaveNode>> relays_;
  std::vector<std::unique_ptr<core::EnclaveNode>> clients_;
  std::unique_ptr<DestinationServer> destination_;
  ChordRing ring_;
  size_t evil_count_ = 0;
};

}  // namespace tenet::tor
