#include "tor/relay.h"

#include "telemetry/telemetry.h"

namespace tenet::tor {

crypto::Bytes encode_extend(netsim::NodeId target,
                            crypto::BytesView client_dh_pub) {
  crypto::Bytes out;
  out.push_back(static_cast<uint8_t>(RelaySub::kExtend));
  crypto::append_u32(out, target);
  crypto::append_lv(out, client_dh_pub);
  return out;
}

crypto::Bytes encode_data(netsim::NodeId destination, crypto::BytesView req) {
  crypto::Bytes out;
  out.push_back(static_cast<uint8_t>(RelaySub::kData));
  crypto::append_u32(out, destination);
  crypto::append_lv(out, req);
  return out;
}

RelayApp::RelayApp(const sgx::Authority& authority,
                   sgx::AttestationConfig config, std::string nickname,
                   bool exit_relay, bool claims_sgx)
    : SecureApp(authority, config),
      nickname_(std::move(nickname)),
      exit_relay_(exit_relay),
      claims_sgx_(claims_sgx) {}

const crypto::DhKeyPair& RelayApp::onion_key(core::Ctx& ctx) {
  if (!onion_key_.has_value()) {
    onion_key_.emplace(crypto::DhGroup::oakley_group2(), ctx.rng());
  }
  return *onion_key_;
}

void RelayApp::on_plain_message(core::Ctx& ctx, netsim::NodeId peer,
                                crypto::BytesView payload) {
  try {
    switch (message_tag(payload)) {
      case TorMsg::kCell:
        handle_cell(ctx, peer, Cell::deserialize(message_body(payload)));
        return;
      case TorMsg::kExitResponse:
        handle_exit_response(ctx, peer, message_body(payload));
        return;
      default:
        return;
    }
  } catch (const std::invalid_argument&) {
    return;  // malformed traffic from the untrusted network: drop
  } catch (const std::out_of_range&) {
    return;
  }
}

void RelayApp::on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                                 crypto::BytesView payload) {
  // Link protection variant: same protocol over an attested channel.
  on_plain_message(ctx, peer, payload);
}

void RelayApp::handle_cell(core::Ctx& ctx, netsim::NodeId from,
                           const Cell& cell) {
  TENET_COUNT("app.tor.cells");
  switch (cell.command) {
    case CellCommand::kCreate:
      TENET_COUNT("app.tor.circuit_creates");
      handle_create(ctx, from, cell);
      return;
    case CellCommand::kCreated:
      handle_created(ctx, from, cell);
      return;
    case CellCommand::kRelayForward:
      TENET_COUNT("app.tor.relayed_cells");
      handle_forward(ctx, from, cell);
      return;
    case CellCommand::kRelayBackward:
      TENET_COUNT("app.tor.relayed_cells");
      handle_backward(ctx, from, cell);
      return;
    case CellCommand::kDestroy: {
      // Tear down in both directions.
      const auto pit = by_prev_.find({from, cell.circuit});
      const auto nit = by_next_.find({from, cell.circuit});
      const uint32_t index = pit != by_prev_.end()
                                 ? pit->second
                                 : nit != by_next_.end() ? nit->second : 0;
      const auto cit = circuits_.find(index);
      if (cit == circuits_.end()) return;
      const Circuit circ = cit->second;
      circuits_.erase(cit);
      by_prev_.erase({circ.prev_node, circ.prev_circ});
      by_next_.erase({circ.next_node, circ.next_circ});
      Cell destroy;
      destroy.command = CellCommand::kDestroy;
      if (from == circ.prev_node && circ.next_node != netsim::kInvalidNode) {
        destroy.circuit = circ.next_circ;
        send_cell(ctx, circ.next_node, destroy);
      } else if (from == circ.next_node) {
        destroy.circuit = circ.prev_circ;
        send_cell(ctx, circ.prev_node, destroy);
      }
      return;
    }
    default:
      return;
  }
}

void RelayApp::handle_create(core::Ctx& ctx, netsim::NodeId from,
                             const Cell& cell) {
  if (by_prev_.contains({from, cell.circuit})) return;  // circ id reuse
  crypto::Bytes shared;
  try {
    shared = onion_key(ctx).shared_secret(crypto::BytesView(cell.payload));
  } catch (const std::invalid_argument&) {
    return;  // degenerate DH value: refuse the handshake
  }
  Circuit circ;
  circ.prev_node = from;
  circ.prev_circ = cell.circuit;
  circ.keys = HopKeys::derive(shared);
  ctx.alloc(sizeof(Circuit));

  const crypto::Digest confirm =
      crypto::hmac_sha256(circ.keys.digest_key, crypto::to_bytes("created"));
  const uint32_t index = next_index_++;
  by_prev_[{from, cell.circuit}] = index;
  circuits_[index] = std::move(circ);

  Cell reply;
  reply.circuit = cell.circuit;
  reply.command = CellCommand::kCreated;
  crypto::append_lv(reply.payload, crypto::digest_bytes(confirm));
  send_cell(ctx, from, reply);
}

void RelayApp::handle_created(core::Ctx& ctx, netsim::NodeId from,
                              const Cell& cell) {
  const auto it = by_next_.find({from, cell.circuit});
  if (it == by_next_.end()) return;
  Circuit& circ = circuits_.at(it->second);
  if (!circ.awaiting_extended) return;
  circ.awaiting_extended = false;

  // Relay the confirmation back as an EXTENDED sealed under OUR hop keys
  // (the client recognizes it at our layer).
  crypto::Bytes data;
  data.push_back(static_cast<uint8_t>(RelaySub::kExtended));
  crypto::append(data, cell.payload);  // LV confirm from the new hop
  RelayPayload payload;
  payload.stream = 0;
  payload.data = std::move(data);
  send_backward_payload(ctx, circ, payload);
}

void RelayApp::handle_forward(core::Ctx& ctx, netsim::NodeId from,
                              const Cell& cell) {
  const auto it = by_prev_.find({from, cell.circuit});
  if (it == by_prev_.end()) return;
  Circuit& circ = circuits_.at(it->second);
  const crypto::Bytes peeled =
      OnionCrypt::peel_forward(circ.keys, cell.payload, circ.fwd_seq++);

  const auto recognized = RelayPayload::open(circ.keys, peeled);
  if (recognized.has_value()) {
    handle_recognized(ctx, circ, it->second, *recognized);
    return;
  }
  if (circ.next_node == netsim::kInvalidNode) return;  // garbled at last hop
  Cell fwd;
  fwd.circuit = circ.next_circ;
  fwd.command = CellCommand::kRelayForward;
  fwd.payload = peeled;
  send_cell(ctx, circ.next_node, fwd);
}

void RelayApp::handle_recognized(core::Ctx& ctx, Circuit& circ, uint32_t index,
                                 const RelayPayload& payload) {
  if (payload.data.empty()) return;
  switch (static_cast<RelaySub>(payload.data[0])) {
    case RelaySub::kExtend: {
      crypto::Reader r(crypto::BytesView(payload.data).subspan(1));
      const netsim::NodeId target = r.u32();
      const crypto::Bytes client_pub = r.lv();
      circ.next_node = target;
      circ.next_circ = next_out_circ_++;
      circ.awaiting_extended = true;
      by_next_[{target, circ.next_circ}] = index;

      Cell create;
      create.circuit = circ.next_circ;
      create.command = CellCommand::kCreate;
      create.payload = client_pub;
      send_cell(ctx, target, create);
      return;
    }
    case RelaySub::kData: {
      if (!exit_relay_) return;  // we are not an exit: refuse
      crypto::Reader r(crypto::BytesView(payload.data).subspan(1));
      const netsim::NodeId dest = r.u32();
      const crypto::Bytes request = r.lv();

      // ---- The exit sees plaintext here (the §3.2 attack surface) ----
      observe_exit_plaintext(request);
      const crypto::Bytes outbound = transform_exit_request(request);

      const uint32_t esid = next_exit_stream_++;
      exit_streams_[esid] = {index, payload.stream};
      crypto::Bytes req;
      crypto::append_u32(req, esid);
      crypto::append_lv(req, outbound);
      ctx.send_plain(dest, tag_message(TorMsg::kExitRequest, req));
      return;
    }
    default:
      return;
  }
}

void RelayApp::handle_exit_response(core::Ctx& ctx, netsim::NodeId,
                                    crypto::BytesView body) {
  crypto::Reader r(body);
  const uint32_t esid = r.u32();
  const crypto::Bytes response = r.lv();
  const auto it = exit_streams_.find(esid);
  if (it == exit_streams_.end()) return;
  const auto [index, client_stream] = it->second;
  exit_streams_.erase(it);
  const auto cit = circuits_.find(index);
  if (cit == circuits_.end()) return;

  observe_exit_plaintext(response);
  const crypto::Bytes inbound = transform_exit_response(response);

  RelayPayload payload;
  payload.stream = client_stream;
  payload.data.push_back(static_cast<uint8_t>(RelaySub::kDataReply));
  crypto::append_lv(payload.data, inbound);
  send_backward_payload(ctx, cit->second, payload);
}

void RelayApp::handle_backward(core::Ctx& ctx, netsim::NodeId from,
                               const Cell& cell) {
  const auto it = by_next_.find({from, cell.circuit});
  if (it == by_next_.end()) return;
  Circuit& circ = circuits_.at(it->second);
  const crypto::Bytes layered =
      OnionCrypt::add_backward(circ.keys, cell.payload, circ.bwd_seq++);
  Cell back;
  back.circuit = circ.prev_circ;
  back.command = CellCommand::kRelayBackward;
  back.payload = layered;
  send_cell(ctx, circ.prev_node, back);
}

void RelayApp::send_backward_payload(core::Ctx& ctx, Circuit& circ,
                                     const RelayPayload& payload) {
  const crypto::Bytes sealed = payload.seal(circ.keys);
  const crypto::Bytes layered =
      OnionCrypt::add_backward(circ.keys, sealed, circ.bwd_seq++);
  Cell back;
  back.circuit = circ.prev_circ;
  back.command = CellCommand::kRelayBackward;
  back.payload = layered;
  send_cell(ctx, circ.prev_node, back);
}

void RelayApp::send_cell(core::Ctx& ctx, netsim::NodeId to, const Cell& cell) {
  ctx.send_plain(to, tag_message(TorMsg::kCell, cell.serialize()));
}

crypto::Bytes RelayApp::on_control(core::Ctx& ctx, uint32_t subfn,
                                   crypto::BytesView arg) {
  switch (subfn) {
    case kCtlPublishDescriptor: {
      const netsim::NodeId authority_node = crypto::read_u32(arg, 0);
      RelayDescriptor desc;
      desc.node = ctx.self();
      desc.nickname = nickname_;
      desc.onion_public = onion_key(ctx).public_bytes();
      desc.exit = exit_relay_;
      desc.claims_sgx = claims_sgx_;
      ctx.send_plain(authority_node,
                     tag_message(TorMsg::kDescriptorUpload, desc.serialize()));
      return {};
    }
    case kCtlGetDescriptor: {
      RelayDescriptor desc;
      desc.node = ctx.self();
      desc.nickname = nickname_;
      desc.onion_public = onion_key(ctx).public_bytes();
      desc.exit = exit_relay_;
      desc.claims_sgx = claims_sgx_;
      return desc.serialize();
    }
    case kCtlCircuitCount: {
      crypto::Bytes out;
      crypto::append_u64(out, circuits_.size());
      return out;
    }
    default:
      return {};
  }
}

}  // namespace tenet::tor
