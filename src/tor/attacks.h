// Malicious Tor components (§3.2's attack catalogue).
//
// Each attacker is a *modified program*: a subclass with altered behaviour
// shipped in a patched enclave image. On unprotected deployments the
// patched software runs and the attack succeeds; under SGX the changed
// measurement fails attestation and the component is excluded — which is
// precisely the claim the paper's design makes.
#pragma once

#include "tor/directory.h"
#include "tor/relay.h"

namespace tenet::tor {

/// "When the malicious Tor node is selected as an exit node, an attacker
/// can modify the plain-text" — flips the response payload.
class TamperingExitApp final : public RelayApp {
 public:
  using RelayApp::RelayApp;

 protected:
  crypto::Bytes transform_exit_response(crypto::BytesView response) override {
    crypto::Bytes tampered(response.begin(), response.end());
    for (auto& b : tampered) b ^= 0x20;  // case-flip injection
    return tampered;
  }
};

/// The "bad apple" / profiling attacker: forwards faithfully but records
/// every plaintext it sees at the exit position.
class SnoopingExitApp final : public RelayApp {
 public:
  using RelayApp::RelayApp;

  /// Host-side exfiltration hook: the volunteer reads the log (control
  /// subfn kCtlDumpLog).
  static constexpr uint32_t kCtlDumpLog = 0x900;

  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override {
    if (subfn == kCtlDumpLog) {
      crypto::Bytes out;
      for (const crypto::Bytes& entry : log_) crypto::append_lv(out, entry);
      return out;
    }
    return RelayApp::on_control(ctx, subfn, arg);
  }

 protected:
  void observe_exit_plaintext(crypto::BytesView plaintext) override {
    log_.emplace_back(plaintext.begin(), plaintext.end());
  }

 private:
  std::vector<crypto::Bytes> log_;
};

/// A subverted directory authority (§3.2: "if directory authorities are
/// subverted, attackers can admit malicious ORs"): stuffs its vote (and
/// the consensus it serves to clients) with an attacker-chosen relay.
class SubvertedAuthorityApp final : public AuthorityApp {
 public:
  SubvertedAuthorityApp(const sgx::Authority& authority,
                        sgx::AttestationConfig config, AuthorityPolicy policy,
                        RelayDescriptor planted)
      : AuthorityApp(authority, config, policy),
        planted_(std::move(planted)) {}

 protected:
  std::vector<RelayDescriptor> cast_vote() override {
    std::vector<RelayDescriptor> vote = AuthorityApp::cast_vote();
    vote.push_back(planted_);
    return vote;
  }

  Consensus finalize_consensus(Consensus honest) override {
    // Serve clients a document with the planted relay regardless of what
    // the honest majority voted.
    if (honest.find(planted_.node) == nullptr) {
      honest.relays.push_back(planted_);
    }
    return honest;
  }

 private:
  RelayDescriptor planted_;
};

}  // namespace tenet::tor
