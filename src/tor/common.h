// Shared Tor wire messages, descriptors and deployment-phase definitions.
#pragma once

#include <optional>
#include <set>

#include "crypto/bytes.h"
#include "netsim/sim.h"

namespace tenet::tor {

/// §3.2's incremental deployment model.
enum class Phase : uint8_t {
  kBaseline = 0,        // today's Tor: no SGX anywhere
  kSgxDirectories = 1,  // the nine directory authorities run in enclaves
  kSgxRelays = 2,       // + SGX relays, attested and auto-admitted
  kFullySgx = 3,        // everything SGX; no directory authorities (DHT)
};

const char* to_string(Phase p);

/// Tags carried as the first byte of Tor-port messages.
enum class TorMsg : uint8_t {
  kCell = 1,               // serialized 512-byte cell
  kDescriptorUpload = 2,   // relay -> authority
  kConsensusRequest = 3,   // client -> authority
  kConsensusResponse = 4,  // authority -> client
  kVote = 5,               // authority <-> authority (secure when SGX)
  kExitRequest = 6,        // exit -> destination server
  kExitResponse = 7,       // destination server -> exit
};

/// Self-published relay identity + onion key.
struct RelayDescriptor {
  netsim::NodeId node = netsim::kInvalidNode;
  std::string nickname;
  crypto::Bytes onion_public;  // DH public value (group 2), fixed width
  bool exit = false;
  bool claims_sgx = false;  // triggers attestation-based auto-admission

  [[nodiscard]] crypto::Bytes serialize() const;
  static RelayDescriptor deserialize(crypto::BytesView wire);
};

/// A consensus document: the admitted, live relays (by majority vote).
struct Consensus {
  uint32_t epoch = 0;
  std::vector<RelayDescriptor> relays;

  [[nodiscard]] const RelayDescriptor* find(netsim::NodeId node) const;
  [[nodiscard]] std::vector<const RelayDescriptor*> exits() const;

  [[nodiscard]] crypto::Bytes serialize() const;
  static Consensus deserialize(crypto::BytesView wire);
};

crypto::Bytes tag_message(TorMsg tag, crypto::BytesView body);
TorMsg message_tag(crypto::BytesView wire);
crypto::BytesView message_body(crypto::BytesView wire);

}  // namespace tenet::tor
