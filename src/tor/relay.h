// Onion router (OR) application.
//
// Handles the telescoping circuit-construction handshake and relay-cell
// forwarding of Tor's design, plus the exit function (forwarding stream
// data to destination servers). Subclass hooks mark exactly the points a
// malicious volunteer's modified binary would attack (§3.2: "when the
// malicious Tor node is selected as an exit node, an attacker can modify
// the plain-text"); the evil variants in tor/attacks.h override them.
#pragma once

#include "core/secure_app.h"
#include "crypto/dh.h"
#include "tor/cell.h"
#include "tor/common.h"

namespace tenet::tor {

/// Relay sub-commands carried inside a recognized RelayPayload.
enum class RelaySub : uint8_t {
  kExtend = 1,     // u32 target | LV client dh pub
  kExtended = 2,   // LV confirm mac
  kData = 3,       // u32 destination node | LV request bytes
  kDataReply = 4,  // LV response bytes
};

/// Host-side control sub-functions.
enum RelayControl : uint32_t {
  kCtlPublishDescriptor = 1,  // payload: u32 authority node id (repeatable)
  kCtlGetDescriptor = 2,      // -> serialized RelayDescriptor
  kCtlCircuitCount = 3,       // -> u64 open circuits
};

class RelayApp : public core::SecureApp {
 public:
  RelayApp(const sgx::Authority& authority, sgx::AttestationConfig config,
           std::string nickname, bool exit_relay, bool claims_sgx);

  void on_plain_message(core::Ctx& ctx, netsim::NodeId peer,
                        crypto::BytesView payload) override;
  void on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                         crypto::BytesView payload) override;
  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override;

 protected:
  /// Exit-side hooks — the attack surface §3.2 describes. The faithful
  /// relay forwards traffic unmodified and records nothing.
  virtual crypto::Bytes transform_exit_request(crypto::BytesView request) {
    return crypto::Bytes(request.begin(), request.end());
  }
  virtual crypto::Bytes transform_exit_response(crypto::BytesView response) {
    return crypto::Bytes(response.begin(), response.end());
  }
  virtual void observe_exit_plaintext(crypto::BytesView plaintext) {
    (void)plaintext;
  }

 private:
  struct Circuit {
    netsim::NodeId prev_node = netsim::kInvalidNode;
    CircuitId prev_circ = 0;
    netsim::NodeId next_node = netsim::kInvalidNode;
    CircuitId next_circ = 0;
    HopKeys keys;
    uint64_t fwd_seq = 0;
    uint64_t bwd_seq = 0;
    bool awaiting_extended = false;
  };

  void handle_cell(core::Ctx& ctx, netsim::NodeId from, const Cell& cell);
  void handle_create(core::Ctx& ctx, netsim::NodeId from, const Cell& cell);
  void handle_created(core::Ctx& ctx, netsim::NodeId from, const Cell& cell);
  void handle_forward(core::Ctx& ctx, netsim::NodeId from, const Cell& cell);
  void handle_backward(core::Ctx& ctx, netsim::NodeId from, const Cell& cell);
  void handle_recognized(core::Ctx& ctx, Circuit& circ, uint32_t index,
                         const RelayPayload& payload);
  void handle_exit_response(core::Ctx& ctx, netsim::NodeId from,
                            crypto::BytesView body);
  void send_cell(core::Ctx& ctx, netsim::NodeId to, const Cell& cell);
  void send_backward_payload(core::Ctx& ctx, Circuit& circ,
                             const RelayPayload& payload);
  const crypto::DhKeyPair& onion_key(core::Ctx& ctx);

  std::string nickname_;
  bool exit_relay_;
  bool claims_sgx_;
  std::optional<crypto::DhKeyPair> onion_key_;

  uint32_t next_index_ = 1;
  CircuitId next_out_circ_ = 1;
  std::map<uint32_t, Circuit> circuits_;
  std::map<std::pair<netsim::NodeId, CircuitId>, uint32_t> by_prev_;
  std::map<std::pair<netsim::NodeId, CircuitId>, uint32_t> by_next_;
  // Exit stream table: exit stream id -> (circuit index, client stream id).
  std::map<uint32_t, std::pair<uint32_t, uint32_t>> exit_streams_;
  uint32_t next_exit_stream_ = 1;
};

crypto::Bytes encode_extend(netsim::NodeId target,
                            crypto::BytesView client_dh_pub);
crypto::Bytes encode_data(netsim::NodeId destination, crypto::BytesView req);

}  // namespace tenet::tor
