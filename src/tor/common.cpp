#include "tor/common.h"

#include <algorithm>
#include <stdexcept>

namespace tenet::tor {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kBaseline: return "baseline";
    case Phase::kSgxDirectories: return "sgx-directories";
    case Phase::kSgxRelays: return "sgx-relays";
    case Phase::kFullySgx: return "fully-sgx";
  }
  return "?";
}

crypto::Bytes RelayDescriptor::serialize() const {
  crypto::Bytes out;
  crypto::append_u32(out, node);
  crypto::append_lv(out, crypto::to_bytes(nickname));
  crypto::append_lv(out, onion_public);
  out.push_back(exit ? 1 : 0);
  out.push_back(claims_sgx ? 1 : 0);
  return out;
}

RelayDescriptor RelayDescriptor::deserialize(crypto::BytesView wire) {
  crypto::Reader r(wire);
  RelayDescriptor d;
  d.node = r.u32();
  d.nickname = crypto::to_string(r.lv());
  d.onion_public = r.lv();
  d.exit = r.u8() != 0;
  d.claims_sgx = r.u8() != 0;
  return d;
}

const RelayDescriptor* Consensus::find(netsim::NodeId node) const {
  for (const RelayDescriptor& d : relays) {
    if (d.node == node) return &d;
  }
  return nullptr;
}

std::vector<const RelayDescriptor*> Consensus::exits() const {
  std::vector<const RelayDescriptor*> out;
  for (const RelayDescriptor& d : relays) {
    if (d.exit) out.push_back(&d);
  }
  return out;
}

crypto::Bytes Consensus::serialize() const {
  crypto::Bytes out;
  crypto::append_u32(out, epoch);
  crypto::append_u32(out, static_cast<uint32_t>(relays.size()));
  for (const RelayDescriptor& d : relays) crypto::append_lv(out, d.serialize());
  return out;
}

Consensus Consensus::deserialize(crypto::BytesView wire) {
  crypto::Reader r(wire);
  Consensus c;
  c.epoch = r.u32();
  const uint32_t n = r.u32();
  for (uint32_t i = 0; i < n; ++i) {
    c.relays.push_back(RelayDescriptor::deserialize(r.lv()));
  }
  return c;
}

crypto::Bytes tag_message(TorMsg tag, crypto::BytesView body) {
  crypto::Bytes out(1 + body.size());
  out[0] = static_cast<uint8_t>(tag);
  std::copy(body.begin(), body.end(), out.begin() + 1);
  return out;
}

TorMsg message_tag(crypto::BytesView wire) {
  if (wire.empty()) throw std::invalid_argument("message_tag: empty");
  return static_cast<TorMsg>(wire[0]);
}

crypto::BytesView message_body(crypto::BytesView wire) {
  if (wire.empty()) throw std::invalid_argument("message_body: empty");
  return wire.subspan(1);
}

}  // namespace tenet::tor
