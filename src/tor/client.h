// Tor client (onion proxy) application.
//
// Builds telescoping 3-hop circuits from the consensus, sends stream data
// with full onion layering, and — per deployment phase — attests directory
// authorities and/or relays before trusting them (§3.2: "each Tor
// component can check the target program's integrity... and whether it is
// running on the SGX-enabled platform").
#pragma once

#include "core/secure_app.h"
#include "crypto/dh.h"
#include "tor/cell.h"
#include "tor/common.h"

namespace tenet::tor {

/// Per-phase client behaviour.
struct ClientPolicy {
  bool attest_directories = false;  // phases >= kSgxDirectories
  bool attest_relays = false;       // phase == kFullySgx
};

enum ClientControl : uint32_t {
  kCtlFetchConsensus = 1,   // u32 authority node
  kCtlHasConsensus = 2,     // -> u8
  kCtlGetConsensus = 3,     // -> serialized consensus
  kCtlBuildCircuit = 4,     // u32 guard | u32 mid | u32 exit
  kCtlCircuitState = 5,     // -> u8 CircuitState
  kCtlSendData = 6,         // u32 destination | LV request
  kCtlLastResponse = 7,     // -> LV response (empty if none)
  kCtlTeardown = 8,         // destroy the circuit
  kCtlFailureReason = 9,    // -> utf-8 description of last failure
  /// Installs directory info assembled by the (untrusted) host, e.g. from
  /// DHT lookups in the fully-SGX phase. Safe there because the client
  /// attests every relay before use — directory integrity is no longer a
  /// trust root (§3.2's directory-less design).
  kCtlInstallDirectory = 10,
  /// Builds a circuit with IN-ENCLAVE path selection: the client picks 3
  /// distinct relays (exit-flagged last hop) from the consensus using its
  /// private randomness. The untrusted host neither chooses nor learns
  /// the path — the anonymity-critical property of running the client
  /// inside an enclave.
  kCtlBuildAutoCircuit = 11,
};

enum class CircuitState : uint8_t {
  kNone = 0,
  kBuilding = 1,
  kReady = 2,
  kFailed = 3,
};

class ClientApp final : public core::SecureApp {
 public:
  ClientApp(const sgx::Authority& authority, sgx::AttestationConfig config,
            ClientPolicy policy);

  void on_plain_message(core::Ctx& ctx, netsim::NodeId peer,
                        crypto::BytesView payload) override;
  void on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                         crypto::BytesView payload) override;
  void on_peer_attested(core::Ctx& ctx, netsim::NodeId peer) override;
  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override;

 private:
  void start_build(core::Ctx& ctx);
  void continue_build(core::Ctx& ctx);
  void handle_cell(core::Ctx& ctx, netsim::NodeId from, const Cell& cell);
  void handle_backward(core::Ctx& ctx, const Cell& cell);
  void fail(std::string_view reason);
  void request_consensus(core::Ctx& ctx, netsim::NodeId authority);
  [[nodiscard]] const RelayDescriptor* descriptor_of(netsim::NodeId node) const;
  void send_cell(core::Ctx& ctx, netsim::NodeId to, const Cell& cell);

  ClientPolicy policy_;
  std::optional<Consensus> consensus_;
  netsim::NodeId pending_directory_ = netsim::kInvalidNode;

  // Circuit build state.
  CircuitState state_ = CircuitState::kNone;
  std::vector<netsim::NodeId> path_;  // guard, mid, exit
  size_t hops_done_ = 0;
  size_t attested_relays_ = 0;
  CircuitId circuit_id_ = 0;
  OnionCrypt onion_;
  std::optional<crypto::DhKeyPair> pending_dh_;  // handshake in flight
  std::string failure_;

  uint32_t next_stream_ = 1;
  crypto::Bytes last_response_;
};

}  // namespace tenet::tor
