// Tor cells and onion-layer cryptography.
//
// Fixed 512-byte cells (as in Tor's design [Dingledine et al. 2004], the
// paper's reference [12]): CREATE/CREATED carry the per-hop DH handshake,
// EXTEND/EXTENDED telescope the circuit, RELAY cells carry layered
// payloads. Relay payloads hide a per-hop HMAC digest so each hop can
// recognize payloads addressed to it after peeling its layer.
#pragma once

#include <optional>

#include "crypto/aes.h"
#include "crypto/bytes.h"
#include "crypto/hmac.h"

namespace tenet::tor {

using CircuitId = uint32_t;

constexpr size_t kCellSize = 512;
constexpr size_t kCellHeader = 4 /*circ*/ + 1 /*cmd*/ + 2 /*len*/;
constexpr size_t kCellPayload = kCellSize - kCellHeader;

enum class CellCommand : uint8_t {
  kCreate = 1,    // payload: client DH public
  kCreated = 2,   // payload: relay DH public | LV confirmation MAC
  kExtend = 3,    // relay sub-command (wrapped in a relay cell)
  kExtended = 4,
  kRelayForward = 5,   // onion-wrapped payload, client -> exit direction
  kRelayBackward = 6,  // onion-wrapped payload, exit -> client direction
  kDestroy = 7,
};

struct Cell {
  CircuitId circuit = 0;
  CellCommand command = CellCommand::kDestroy;
  crypto::Bytes payload;  // <= kCellPayload; padded to kCellSize on wire

  /// Wire form is always exactly kCellSize bytes (traffic analysis
  /// resistance: all cells look alike).
  [[nodiscard]] crypto::Bytes serialize() const;
  static Cell deserialize(crypto::BytesView wire);
};

/// One hop's symmetric state, derived from the CREATE/EXTEND DH secret.
struct HopKeys {
  crypto::AesKey128 forward_key{};   // client -> exit layers
  crypto::AesKey128 backward_key{};  // exit -> client layers
  crypto::Bytes digest_key;          // per-hop payload recognition

  static HopKeys derive(crypto::BytesView shared_secret);
};

/// Relay-cell plaintext: | digest 8B | stream u32 | data |. The digest is
/// HMAC(digest_key, stream || data) truncated, letting a hop recognize
/// payloads addressed to it ("recognized" check) and detect tampering.
struct RelayPayload {
  uint32_t stream = 0;
  crypto::Bytes data;

  [[nodiscard]] crypto::Bytes seal(const HopKeys& keys) const;
  /// Returns nullopt unless the digest verifies under `keys`.
  static std::optional<RelayPayload> open(const HopKeys& keys,
                                          crypto::BytesView plain);
};

/// Client-side layered cipher over an ordered list of hops
/// (hop 0 = guard, last = exit).
///
/// Each hop keeps independent forward/backward CTR sequence counters:
/// hops join a circuit at different times, so the number of cells a hop
/// has processed differs per hop. The client-side counters here advance
/// in lock-step with the corresponding relay-side counters because every
/// wrapped forward cell traverses all current hops and every backward
/// cell was layered by all current hops.
class OnionCrypt {
 public:
  void add_hop(HopKeys keys) { hops_.push_back(HopState{std::move(keys), 0, 0}); }
  [[nodiscard]] size_t hop_count() const { return hops_.size(); }
  [[nodiscard]] const HopKeys& hop(size_t i) const { return hops_.at(i).keys; }

  /// Client: wraps plaintext in one layer per hop (innermost = exit) and
  /// advances every hop's forward counter.
  [[nodiscard]] crypto::Bytes wrap_forward(crypto::BytesView inner);
  /// Client: removes all layers from a backward cell and advances every
  /// hop's backward counter.
  [[nodiscard]] crypto::Bytes unwrap_backward(crypto::BytesView wrapped);

  /// Relay-side single layer operations (`seq` = that relay's own
  /// per-circuit per-direction counter).
  static crypto::Bytes peel_forward(const HopKeys& keys,
                                    crypto::BytesView data, uint64_t seq);
  static crypto::Bytes add_backward(const HopKeys& keys,
                                    crypto::BytesView data, uint64_t seq);

 private:
  struct HopState {
    HopKeys keys;
    uint64_t fwd_seq;
    uint64_t bwd_seq;
  };
  std::vector<HopState> hops_;
};

}  // namespace tenet::tor
