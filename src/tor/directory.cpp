#include "tor/directory.h"

#include "sgx/sealing.h"

namespace tenet::tor {

crypto::Bytes encode_vote(uint32_t epoch,
                          const std::vector<RelayDescriptor>& relays) {
  crypto::Bytes body;
  crypto::append_u32(body, epoch);
  crypto::append_u32(body, static_cast<uint32_t>(relays.size()));
  for (const RelayDescriptor& d : relays) crypto::append_lv(body, d.serialize());
  return tag_message(TorMsg::kVote, body);
}

AuthorityApp::AuthorityApp(const sgx::Authority& authority,
                           sgx::AttestationConfig config,
                           AuthorityPolicy policy)
    : SecureApp(authority, config), policy_(policy) {}

std::vector<RelayDescriptor> AuthorityApp::cast_vote() {
  std::vector<RelayDescriptor> vote;
  vote.reserve(admitted_.size());
  for (const auto& [node, desc] : admitted_) vote.push_back(desc);
  return vote;
}

void AuthorityApp::on_plain_message(core::Ctx& ctx, netsim::NodeId peer,
                                    crypto::BytesView payload) {
  try {
    switch (message_tag(payload)) {
      case TorMsg::kDescriptorUpload:
        handle_upload(ctx, message_body(payload));
        return;
      case TorMsg::kConsensusRequest:
        handle_consensus_request(ctx, peer, /*over_secure_channel=*/false);
        return;
      case TorMsg::kVote:
        // Plaintext votes are acceptable only when this deployment does
        // not require attested authority channels. A subverted authority
        // trying to inject votes out-of-band is ignored under SGX.
        handle_vote(ctx, peer, message_body(payload),
                    /*over_secure_channel=*/false);
        return;
      default:
        return;
    }
  } catch (const std::exception&) {
    return;
  }
}

void AuthorityApp::on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                                     crypto::BytesView payload) {
  try {
    switch (message_tag(payload)) {
      case TorMsg::kVote:
        handle_vote(ctx, peer, message_body(payload),
                    /*over_secure_channel=*/true);
        return;
      case TorMsg::kConsensusRequest:
        handle_consensus_request(ctx, peer, /*over_secure_channel=*/true);
        return;
      default:
        return;
    }
  } catch (const std::exception&) {
    return;
  }
}

void AuthorityApp::handle_upload(core::Ctx& ctx, crypto::BytesView body) {
  RelayDescriptor desc = RelayDescriptor::deserialize(body);
  const netsim::NodeId node = desc.node;
  if (admitted_.contains(node)) return;
  ctx.alloc(128 + desc.onion_public.size());
  const bool auto_admit = policy_.auto_admit_sgx && desc.claims_sgx;
  pending_[node] = std::move(desc);
  if (auto_admit) {
    // §3.2: attest the relay; admission happens in on_peer_attested once
    // the enclave integrity check passes. A modified relay never passes.
    ctx.connect(node);
  }
  // Otherwise: manual path — wait for the operator's approval vote.
}

void AuthorityApp::on_peer_attested(core::Ctx& ctx, netsim::NodeId peer) {
  const auto it = pending_.find(peer);
  if (it != pending_.end() && policy_.auto_admit_sgx &&
      it->second.claims_sgx) {
    if (admit_relay(ctx, peer, it->second)) pending_.erase(it);
    return;
  }
  // Otherwise: a co-authority completing the attested voting mesh.
  co_authorities_.insert(peer);
}

bool AuthorityApp::admit_relay(core::Ctx& ctx, netsim::NodeId node,
                               RelayDescriptor desc) {
  if (shard() != nullptr && shard()->active()) {
    if (!shard()->serving()) return false;  // minority partition: hold off
    shard()->admit(ctx, node, desc.serialize());
  }
  admitted_[node] = std::move(desc);
  return true;
}

void AuthorityApp::handle_vote(core::Ctx& ctx, netsim::NodeId peer,
                               crypto::BytesView body,
                               bool over_secure_channel) {
  if (policy_.secure_votes && !over_secure_channel) return;
  if (policy_.secure_votes && !co_authorities_.contains(peer)) return;
  crypto::Reader r(body);
  const uint32_t epoch = r.u32();
  if (epoch != epoch_) return;
  const uint32_t n = r.u32();
  std::vector<RelayDescriptor> relays;
  for (uint32_t i = 0; i < n; ++i) {
    relays.push_back(RelayDescriptor::deserialize(r.lv()));
  }
  ctx.alloc(64 * relays.size());
  votes_[peer] = std::move(relays);
  maybe_finalize(ctx);
}

void AuthorityApp::maybe_finalize(core::Ctx&) {
  // Own vote + received votes; finalize when all expected votes arrived.
  if (total_authorities_ == 0) return;
  if (votes_.size() + 1 < total_authorities_) return;

  // Majority rule: a relay enters the consensus if more than half of the
  // authorities voted for it.
  std::map<netsim::NodeId, std::pair<size_t, RelayDescriptor>> tally;
  auto count = [&tally](const std::vector<RelayDescriptor>& vote) {
    for (const RelayDescriptor& d : vote) {
      auto [it, inserted] = tally.emplace(d.node, std::make_pair(1u, d));
      if (!inserted) ++it->second.first;
    }
  };
  count(cast_vote());
  for (const auto& [voter, vote] : votes_) count(vote);

  Consensus consensus;
  consensus.epoch = epoch_;
  for (const auto& [node, entry] : tally) {
    if (entry.first * 2 > total_authorities_) {
      consensus.relays.push_back(entry.second);
    }
  }
  consensus_ = finalize_consensus(std::move(consensus));
}

void AuthorityApp::handle_consensus_request(core::Ctx& ctx,
                                            netsim::NodeId peer,
                                            bool over_secure_channel) {
  if (!consensus_.has_value()) return;
  const crypto::Bytes reply =
      tag_message(TorMsg::kConsensusResponse, consensus_->serialize());
  if (over_secure_channel) {
    ctx.send_secure(peer, reply);
  } else {
    ctx.send_plain(peer, reply);
  }
}

crypto::Bytes AuthorityApp::on_control(core::Ctx& ctx, uint32_t subfn,
                                       crypto::BytesView arg) {
  switch (subfn) {
    case kCtlApproveRelay: {
      const netsim::NodeId node = crypto::read_u32(arg, 0);
      const auto it = pending_.find(node);
      if (it != pending_.end() && admit_relay(ctx, node, it->second)) {
        pending_.erase(it);
      }
      return {};
    }
    case kCtlConfigureShard: {
      core::ShardReplica::Hooks hooks;
      hooks.apply = [this](core::Ctx& c, uint32_t, uint64_t key,
                           crypto::BytesView entry) {
        try {
          RelayDescriptor d = RelayDescriptor::deserialize(entry);
          if (d.node != key) return;  // entry/key mismatch: refuse
          c.alloc(128 + d.onion_public.size());
          admitted_[d.node] = std::move(d);
        } catch (const std::exception&) {
        }
      };
      hooks.snapshot = [this](core::Ctx&) { return serialize_admitted(); };
      // Merge semantics: the donor only saw its slice of origins, so its
      // snapshot unions into (never replaces) the local admitted set.
      hooks.install = [this](core::Ctx&, crypto::BytesView state) {
        return load_admitted(state);
      };
      enable_sharding(ctx, core::ShardConfig::deserialize(arg),
                      std::move(hooks));
      return {};
    }
    case kCtlBeginShardJoin:
      if (shard() != nullptr) shard()->begin_join(ctx);
      return {};
    case kCtlShardReachable:
      if (shard() != nullptr && arg.size() >= 5) {
        shard()->set_reachable(ctx, crypto::read_u32(arg, 0), arg[4] != 0);
      }
      return {};
    case kCtlAttestPeers: {
      crypto::Reader r(arg);
      const uint32_t n = r.u32();
      for (uint32_t i = 0; i < n; ++i) {
        const netsim::NodeId peer = r.u32();
        if (is_attested(peer)) {
          co_authorities_.insert(peer);
        } else {
          ctx.connect(peer);
        }
      }
      return {};
    }
    case kCtlStartVote: {
      crypto::Reader r(arg);
      epoch_ = r.u32();
      total_authorities_ = r.u32();
      vote_targets_.assign(co_authorities_.begin(), co_authorities_.end());
      votes_.clear();
      consensus_.reset();
      const crypto::Bytes vote = encode_vote(epoch_, cast_vote());
      if (policy_.secure_votes) {
        for (const netsim::NodeId peer : vote_targets_) {
          ctx.send_secure(peer, vote);
        }
      } else {
        // Baseline: votes go to whatever peers the host configured.
        crypto::Reader rest(arg);
        (void)rest.u32();
        (void)rest.u32();
        while (rest.remaining() >= 4) {
          ctx.send_plain(rest.u32(), vote);
        }
      }
      maybe_finalize(ctx);
      return {};
    }
    case kCtlGetConsensus2:
      return consensus_.has_value() ? consensus_->serialize() : crypto::Bytes{};
    case kCtlAdmittedCount: {
      crypto::Bytes out;
      crypto::append_u64(out, admitted_.size());
      return out;
    }
    case kCtlPendingCount: {
      crypto::Bytes out;
      crypto::append_u64(out, pending_.size());
      return out;
    }
    case kCtlVotesReceived: {
      crypto::Bytes out;
      crypto::append_u64(out, votes_.size());
      return out;
    }
    case kCtlSealState:
      // §3.2: authorities "keep authority keys and list of Tor nodes
      // inside the enclaves" — sealed storage lets that state survive a
      // restart without ever being visible to the host.
      return sgx::seal_data(ctx.env(), crypto::to_bytes("dirauth.admitted"),
                            serialize_admitted());
    case kCtlRestoreState: {
      crypto::Bytes out;
      const auto state = sgx::unseal_data(
          ctx.env(), crypto::to_bytes("dirauth.admitted"), arg);
      out.push_back(state.has_value() && load_admitted(*state) ? 1 : 0);
      return out;
    }
    default:
      return {};
  }
}

crypto::Bytes AuthorityApp::serialize_admitted() const {
  crypto::Bytes state;
  crypto::append_u32(state, static_cast<uint32_t>(admitted_.size()));
  for (const auto& [node, desc] : admitted_) {
    crypto::append_lv(state, desc.serialize());
  }
  return state;
}

bool AuthorityApp::load_admitted(crypto::BytesView state) {
  // Parse fully before inserting: a malformed blob must leave the
  // admitted set untouched (the shard install contract requires it).
  std::vector<RelayDescriptor> parsed;
  try {
    crypto::Reader r(state);
    const uint32_t n = r.u32();
    parsed.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      parsed.push_back(RelayDescriptor::deserialize(r.lv()));
    }
  } catch (const std::exception&) {
    return false;
  }
  for (RelayDescriptor& d : parsed) {
    const netsim::NodeId node = d.node;
    admitted_[node] = std::move(d);
  }
  return true;
}

crypto::Bytes AuthorityApp::on_checkpoint(core::Ctx&) {
  // The generic checkpoint path (kFnCheckpoint) seals this for us under
  // the app-checkpoint label; EnclaveNode::recover feeds it back.
  return serialize_admitted();
}

void AuthorityApp::on_restore(core::Ctx&, crypto::BytesView state) {
  (void)load_admitted(state);
}

}  // namespace tenet::tor
