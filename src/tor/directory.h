// Directory authority application.
//
// Implements descriptor collection, relay admission, authority-to-
// authority voting, and majority consensus — and the SGX hardening of
// §3.2: enclave-held authority state, attested inter-authority channels
// (a subverted authority cannot join the vote), and attestation-based
// automatic admission of SGX relays ("admission of new ORs can be done
// automatically... currently addition of new ORs requires manual approval
// from a majority of directory authorities, which is a bottleneck").
#pragma once

#include <set>

#include "core/secure_app.h"
#include "tor/common.h"

namespace tenet::tor {

/// Per-phase authority behaviour.
struct AuthorityPolicy {
  bool secure_votes = false;    // exchange votes over attested channels
  bool auto_admit_sgx = false;  // attest relays claiming SGX, admit on pass
};

enum AuthorityControl : uint32_t {
  kCtlApproveRelay = 1,      // u32 relay node — manual admission vote
  kCtlAttestPeers = 2,       // u32 count | u32 node... — attest co-authorities
  kCtlStartVote = 3,         // u32 epoch | u32 total authorities
  kCtlGetConsensus2 = 4,     // -> serialized consensus (empty if none)
  kCtlAdmittedCount = 5,     // -> u64
  kCtlPendingCount = 6,      // -> u64
  kCtlVotesReceived = 7,     // -> u64
  kCtlSealState = 8,         // -> sealed blob of the admitted-relay set
  kCtlRestoreState = 9,      // sealed blob -> u8 success
  kCtlConfigureShard = 10,   // serialized core::ShardConfig — replicate
                             // admissions across an authority shard group
  kCtlBeginShardJoin = 11,   // empty (rejoin after restart)
  kCtlShardReachable = 12,   // u32 shard | u8 up (host liveness hint)
};

class AuthorityApp : public core::SecureApp {
 public:
  AuthorityApp(const sgx::Authority& authority, sgx::AttestationConfig config,
               AuthorityPolicy policy);

  void on_plain_message(core::Ctx& ctx, netsim::NodeId peer,
                        crypto::BytesView payload) override;
  void on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                         crypto::BytesView payload) override;
  void on_peer_attested(core::Ctx& ctx, netsim::NodeId peer) override;
  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override;

  /// Checkpoint = the admitted-relay set (§3.2: "an updated list of Tor
  /// nodes inside the enclaves" survives restarts via sealed storage).
  crypto::Bytes on_checkpoint(core::Ctx& ctx) override;
  void on_restore(core::Ctx& ctx, crypto::BytesView state) override;

 protected:
  /// Hook for the subverted-authority variant (tor/attacks.h): the vote a
  /// faithful authority casts is its admitted set; an attacker rewrites it.
  virtual std::vector<RelayDescriptor> cast_vote();

  /// Hook applied to the majority result before serving it to clients; a
  /// subverted authority rewrites the document here (tie-breaking /
  /// malicious-OR injection). Faithful authorities return it unchanged.
  virtual Consensus finalize_consensus(Consensus honest) { return honest; }

  std::map<netsim::NodeId, RelayDescriptor> admitted_;

 private:
  [[nodiscard]] crypto::Bytes serialize_admitted() const;
  bool load_admitted(crypto::BytesView state);
  /// Single admission point: updates the admitted set and, when part of an
  /// active shard group, replicates the admission (key = relay node id) to
  /// the ring successor. Fail-closed: refused while in a minority
  /// partition — the relay stays pending.
  bool admit_relay(core::Ctx& ctx, netsim::NodeId node, RelayDescriptor desc);
  void handle_upload(core::Ctx& ctx, crypto::BytesView body);
  void handle_vote(core::Ctx& ctx, netsim::NodeId peer,
                   crypto::BytesView body, bool over_secure_channel);
  void handle_consensus_request(core::Ctx& ctx, netsim::NodeId peer,
                                bool over_secure_channel);
  void maybe_finalize(core::Ctx& ctx);

  AuthorityPolicy policy_;
  std::map<netsim::NodeId, RelayDescriptor> pending_;
  std::set<netsim::NodeId> co_authorities_;  // attested peers for voting
  std::vector<netsim::NodeId> vote_targets_;

  uint32_t epoch_ = 0;
  uint32_t total_authorities_ = 0;
  std::map<netsim::NodeId, std::vector<RelayDescriptor>> votes_;  // by voter
  std::optional<Consensus> consensus_;
};

crypto::Bytes encode_vote(uint32_t epoch,
                          const std::vector<RelayDescriptor>& relays);

}  // namespace tenet::tor
