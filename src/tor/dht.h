// Chord distributed hash table (Stoica et al., the paper's reference
// [34]) for the fully-SGX deployment.
//
// §3.2: "a new Tor design is possible that does not require directory
// authorities... Tor can utilize a distributed hash table to track the
// membership, similar to other peer-to-peer systems." Relay descriptors
// are stored under the hash of the relay's node id; clients locate them
// with O(log n) finger-table lookups. This implementation is structurally
// faithful (identifier circle, successor lists, finger tables, iterative
// closest-preceding-finger routing with hop counting) and driven
// synchronously — the lookup hop counts feed the A4 ablation bench.
#pragma once

#include <map>
#include <optional>

#include "crypto/sha256.h"
#include "tor/common.h"

namespace tenet::tor {

class ChordRing {
 public:
  using Key = uint64_t;

  /// Identifier = first 8 bytes of SHA-256 (the 64-bit identifier circle).
  static Key key_of(crypto::BytesView data);
  static Key key_of_node(netsim::NodeId node);

  /// Adds a member storing its descriptor; rebuilds routing state.
  void join(const RelayDescriptor& descriptor);
  /// Removes a member (churn).
  void leave(netsim::NodeId node);

  [[nodiscard]] size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }

  /// The member responsible for `key` (its successor on the circle).
  [[nodiscard]] std::optional<RelayDescriptor> successor(Key key) const;

  struct LookupResult {
    std::optional<RelayDescriptor> descriptor;
    size_t hops = 0;  // finger-table routing hops taken
  };
  /// Iterative Chord lookup starting from an arbitrary member (the one
  /// succeeding `start_hint` on the circle). Hops counted as in Chord:
  /// each closest-preceding-finger forwarding step is one hop.
  [[nodiscard]] LookupResult lookup(Key key, Key start_hint = 0) const;

  /// Finds the descriptor for a relay by node id.
  [[nodiscard]] LookupResult find_relay(netsim::NodeId node) const;

  /// All member descriptors in ring order (for building circuits).
  [[nodiscard]] std::vector<RelayDescriptor> members() const;

  /// Verifies ring invariants (finger correctness); throws
  /// std::logic_error on violation. Cheap; called by tests.
  void check_invariants() const;

  static constexpr int kFingerBits = 64;

 private:
  void rebuild_fingers();
  [[nodiscard]] Key successor_key(Key key) const;

  struct Member {
    RelayDescriptor descriptor;
    std::array<Key, kFingerBits> fingers{};  // finger[i] = succ(id + 2^i)
  };
  // Ordered by key: the identifier circle.
  std::map<Key, Member> members_;
  std::map<netsim::NodeId, Key> by_node_;
};

}  // namespace tenet::tor
