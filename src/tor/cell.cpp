#include "tor/cell.h"

#include <stdexcept>

namespace tenet::tor {

namespace {
constexpr uint64_t kForwardNonce = 0x544f5246;   // "TORF"
constexpr uint64_t kBackwardNonce = 0x544f5242;  // "TORB"
constexpr size_t kDigestLen = 8;
}  // namespace

crypto::Bytes Cell::serialize() const {
  if (payload.size() > kCellPayload) {
    throw std::invalid_argument("Cell: payload too large");
  }
  crypto::Bytes out;
  out.reserve(kCellSize);
  crypto::append_u32(out, circuit);
  out.push_back(static_cast<uint8_t>(command));
  out.push_back(static_cast<uint8_t>(payload.size() >> 8));
  out.push_back(static_cast<uint8_t>(payload.size()));
  crypto::append(out, payload);
  out.resize(kCellSize, 0);
  return out;
}

Cell Cell::deserialize(crypto::BytesView wire) {
  if (wire.size() != kCellSize) {
    throw std::invalid_argument("Cell: wrong wire size");
  }
  crypto::Reader r(wire);
  Cell cell;
  cell.circuit = r.u32();
  cell.command = static_cast<CellCommand>(r.u8());
  const size_t len = (static_cast<size_t>(r.u8()) << 8) | r.u8();
  if (len > kCellPayload) throw std::invalid_argument("Cell: bad length");
  cell.payload = r.take(len);
  return cell;
}

HopKeys HopKeys::derive(crypto::BytesView shared_secret) {
  const crypto::Bytes material =
      crypto::hkdf(crypto::to_bytes("tenet.tor.hop"), shared_secret,
                   crypto::to_bytes("keys"), 16 + 16 + 32);
  HopKeys keys;
  std::copy(material.begin(), material.begin() + 16, keys.forward_key.begin());
  std::copy(material.begin() + 16, material.begin() + 32,
            keys.backward_key.begin());
  keys.digest_key.assign(material.begin() + 32, material.end());
  return keys;
}

crypto::Bytes RelayPayload::seal(const HopKeys& keys) const {
  crypto::Bytes body;
  crypto::append_u32(body, stream);
  crypto::append(body, data);
  const crypto::Digest mac = crypto::hmac_sha256(keys.digest_key, body);
  crypto::Bytes out(mac.begin(), mac.begin() + kDigestLen);
  crypto::append(out, body);
  return out;
}

std::optional<RelayPayload> RelayPayload::open(const HopKeys& keys,
                                               crypto::BytesView plain) {
  if (plain.size() < kDigestLen + 4) return std::nullopt;
  const crypto::BytesView digest = plain.first(kDigestLen);
  const crypto::BytesView body = plain.subspan(kDigestLen);
  const crypto::Digest mac = crypto::hmac_sha256(keys.digest_key, body);
  if (!crypto::ct_equal(digest, crypto::BytesView(mac.data(), kDigestLen))) {
    return std::nullopt;
  }
  RelayPayload out;
  out.stream = crypto::read_u32(body, 0);
  out.data.assign(body.begin() + 4, body.end());
  return out;
}

crypto::Bytes OnionCrypt::wrap_forward(crypto::BytesView inner) {
  crypto::Bytes data(inner.begin(), inner.end());
  // Innermost layer = exit; wrap outward toward the guard.
  for (size_t i = hops_.size(); i-- > 0;) {
    const crypto::Aes128 aes(hops_[i].keys.forward_key);
    data = aes.ctr_crypt(kForwardNonce, hops_[i].fwd_seq++ << 16, data);
  }
  return data;
}

crypto::Bytes OnionCrypt::unwrap_backward(crypto::BytesView wrapped) {
  crypto::Bytes data(wrapped.begin(), wrapped.end());
  // Each relay adds a layer as the cell travels backward, so the guard's
  // layer is outermost; strip from hop 0 inward.
  for (size_t i = 0; i < hops_.size(); ++i) {
    const crypto::Aes128 aes(hops_[i].keys.backward_key);
    data = aes.ctr_crypt(kBackwardNonce, hops_[i].bwd_seq++ << 16, data);
  }
  return data;
}

crypto::Bytes OnionCrypt::peel_forward(const HopKeys& keys,
                                       crypto::BytesView data, uint64_t seq) {
  const crypto::Aes128 aes(keys.forward_key);
  return aes.ctr_crypt(kForwardNonce, seq << 16, data);
}

crypto::Bytes OnionCrypt::add_backward(const HopKeys& keys,
                                       crypto::BytesView data, uint64_t seq) {
  const crypto::Aes128 aes(keys.backward_key);
  return aes.ctr_crypt(kBackwardNonce, seq << 16, data);
}

}  // namespace tenet::tor
