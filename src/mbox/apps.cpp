#include "mbox/apps.h"

#include "core/ports.h"
#include "telemetry/trace.h"

namespace tenet::mbox {

namespace {
MboxMsg tag_of(crypto::BytesView wire) {
  if (wire.empty()) throw std::invalid_argument("mbox: empty message");
  return static_cast<MboxMsg>(wire[0]);
}

/// Zero-copy counterpart of encode_record(sid, dir, channel.seal(data)):
/// writes the record-frame header and seals `data` directly into the frame
/// tail, which then moves into the ocall ring (Ctx::send_framed). On the
/// wire the bytes are identical to the copying form.
void send_sealed_record(core::Ctx& ctx, netsim::NodeId hop, uint32_t sid,
                        Direction dir, netsim::SecureChannel& channel,
                        crypto::BytesView data) {
  constexpr size_t kFrameHeader = 10;  // u8 tag | u32 sid | u8 dir | u32 len
  const size_t record_len = netsim::SecureChannel::sealed_size(data.size());
  ctx.send_framed(
      hop, core::kPortPlain, kFrameHeader + record_len,
      [&](std::span<uint8_t> out) {
        out[0] = static_cast<uint8_t>(MboxMsg::kRecord);
        out[1] = static_cast<uint8_t>(sid >> 24);
        out[2] = static_cast<uint8_t>(sid >> 16);
        out[3] = static_cast<uint8_t>(sid >> 8);
        out[4] = static_cast<uint8_t>(sid);
        out[5] = static_cast<uint8_t>(dir);
        out[6] = static_cast<uint8_t>(record_len >> 24);
        out[7] = static_cast<uint8_t>(record_len >> 16);
        out[8] = static_cast<uint8_t>(record_len >> 8);
        out[9] = static_cast<uint8_t>(record_len);
        channel.seal_into(data, out.subspan(kFrameHeader));
      });
}
}  // namespace

crypto::Bytes encode_open(uint32_t sid,
                          const std::vector<netsim::NodeId>& rest) {
  crypto::Bytes out;
  out.push_back(static_cast<uint8_t>(MboxMsg::kOpen));
  crypto::append_u32(out, sid);
  crypto::append_u32(out, static_cast<uint32_t>(rest.size()));
  for (const netsim::NodeId n : rest) crypto::append_u32(out, n);
  return out;
}

crypto::Bytes encode_handshake(uint32_t sid, Direction dir,
                               crypto::BytesView payload) {
  crypto::Bytes out;
  out.push_back(static_cast<uint8_t>(MboxMsg::kHandshake));
  crypto::append_u32(out, sid);
  out.push_back(static_cast<uint8_t>(dir));
  crypto::append_lv(out, payload);
  return out;
}

crypto::Bytes encode_record(uint32_t sid, Direction dir,
                            crypto::BytesView record) {
  crypto::Bytes out;
  out.push_back(static_cast<uint8_t>(MboxMsg::kRecord));
  crypto::append_u32(out, sid);
  out.push_back(static_cast<uint8_t>(dir));
  crypto::append_lv(out, record);
  return out;
}

crypto::Bytes encode_provision(uint32_t sid, EndpointRole role,
                               const TlsKeyMaterial& keys) {
  crypto::Bytes out;
  out.push_back(static_cast<uint8_t>(MboxSecureMsg::kProvision));
  crypto::append_u32(out, sid);
  out.push_back(static_cast<uint8_t>(role));
  crypto::append_lv(out, keys.serialize());
  return out;
}

// ---------------------------------------------------------------------------
// TlsClientApp
// ---------------------------------------------------------------------------

TlsClientApp::TlsClientApp(const sgx::Authority& authority,
                           sgx::AttestationConfig config)
    : SecureApp(authority, config) {}

void TlsClientApp::on_plain_message(core::Ctx& ctx, netsim::NodeId peer,
                                    crypto::BytesView payload) {
  try {
    crypto::Reader r(payload);
    const MboxMsg tag = tag_of(payload);
    (void)r.u8();
    const uint32_t sid = r.u32();
    const auto it = sessions_.find(sid);
    if (it == sessions_.end() || peer != it->second.first_hop) return;
    Session& s = it->second;

    if (tag == MboxMsg::kHandshake) {
      const Direction dir = static_cast<Direction>(r.u8());
      if (dir != Direction::kServerToClient || !s.tls.has_value()) return;
      const auto finished = s.tls->handle_server_hello(r.lv());
      if (!finished.has_value()) return;
      ctx.send_plain(s.first_hop,
                     encode_handshake(sid, Direction::kClientToServer,
                                      *finished));
      return;
    }
    if (tag == MboxMsg::kRecord) {
      const Direction dir = static_cast<Direction>(r.u8());
      if (dir != Direction::kServerToClient || !s.tls.has_value() ||
          !s.tls->established()) {
        return;
      }
      const auto plain = s.tls->channel().open(r.lv());
      if (!plain.has_value()) return;
      ctx.alloc(plain->size());
      crypto::append_lv(s.received, *plain);
      return;
    }
  } catch (const std::exception&) {
    return;
  }
}

void TlsClientApp::on_peer_attested(core::Ctx& ctx, netsim::NodeId peer) {
  const auto it = pending_provision_.find(peer);
  if (it == pending_provision_.end()) return;
  for (const uint32_t sid : it->second) {
    const auto st = sessions_.find(sid);
    if (st == sessions_.end() || !st->second.tls.has_value() ||
        !st->second.tls->established()) {
      continue;
    }
    ctx.send_secure(peer, encode_provision(sid, EndpointRole::kClient,
                                           st->second.tls->keys()));
  }
  pending_provision_.erase(it);
}

crypto::Bytes TlsClientApp::on_control(core::Ctx& ctx, uint32_t subfn,
                                       crypto::BytesView arg) {
  switch (subfn) {
    case kCtlOpenSession: {
      TENET_TRACE_ROOT("mbox", "open_session");
      crypto::Reader r(arg);
      const netsim::NodeId server = r.u32();
      const uint32_t n_mbox = r.u32();
      std::vector<netsim::NodeId> path;
      for (uint32_t i = 0; i < n_mbox; ++i) path.push_back(r.u32());
      path.push_back(server);

      const uint32_t sid = next_sid_++;
      Session& s = sessions_[sid];
      ctx.alloc(256);
      s.first_hop = path.front();
      s.tls.emplace(ctx.rng());

      const std::vector<netsim::NodeId> rest(path.begin() + 1, path.end());
      ctx.send_plain(s.first_hop, encode_open(sid, rest));
      ctx.send_plain(s.first_hop,
                     encode_handshake(sid, Direction::kClientToServer,
                                      s.tls->hello()));
      crypto::Bytes out;
      crypto::append_u32(out, sid);
      return out;
    }
    case kCtlIsEstablished: {
      const auto it = sessions_.find(crypto::read_u32(arg, 0));
      crypto::Bytes out;
      out.push_back(it != sessions_.end() && it->second.tls.has_value() &&
                            it->second.tls->established()
                        ? 1
                        : 0);
      return out;
    }
    case kCtlSendData: {
      TENET_TRACE_ROOT("mbox", "send_data");
      crypto::Reader r(arg);
      const uint32_t sid = r.u32();
      const crypto::Bytes data = r.lv();
      const auto it = sessions_.find(sid);
      if (it == sessions_.end() || !it->second.tls.has_value() ||
          !it->second.tls->established()) {
        return {};
      }
      send_sealed_record(ctx, it->second.first_hop, sid,
                         Direction::kClientToServer,
                         it->second.tls->channel(), data);
      return {};
    }
    case kCtlReceived: {
      const auto it = sessions_.find(crypto::read_u32(arg, 0));
      return it != sessions_.end() ? it->second.received : crypto::Bytes{};
    }
    case kCtlProvisionMbox: {
      TENET_TRACE_ROOT("mbox", "provision");
      crypto::Reader r(arg);
      const uint32_t sid = r.u32();
      const netsim::NodeId mbox = r.u32();
      const auto it = sessions_.find(sid);
      if (it == sessions_.end() || !it->second.tls.has_value() ||
          !it->second.tls->established()) {
        return {};
      }
      if (is_attested(mbox)) {
        ctx.send_secure(mbox, encode_provision(sid, EndpointRole::kClient,
                                               it->second.tls->keys()));
      } else {
        pending_provision_[mbox].push_back(sid);
        ctx.connect(mbox);
      }
      return {};
    }
    default:
      return {};
  }
}

// ---------------------------------------------------------------------------
// TlsServerApp
// ---------------------------------------------------------------------------

TlsServerApp::TlsServerApp(const sgx::Authority& authority,
                           sgx::AttestationConfig config)
    : SecureApp(authority, config) {}

void TlsServerApp::on_plain_message(core::Ctx& ctx, netsim::NodeId peer,
                                    crypto::BytesView payload) {
  try {
    crypto::Reader r(payload);
    const MboxMsg tag = tag_of(payload);
    (void)r.u8();
    const uint32_t sid = r.u32();

    if (tag == MboxMsg::kOpen) {
      const uint32_t n = r.u32();
      if (n != 0) return;  // we are the path's end
      Session& s = sessions_[sid];
      ctx.alloc(256);
      s.prev_hop = peer;
      s.tls.emplace(ctx.rng());
      return;
    }
    const auto it = sessions_.find(sid);
    if (it == sessions_.end() || peer != it->second.prev_hop) return;
    Session& s = it->second;

    if (tag == MboxMsg::kHandshake) {
      const Direction dir = static_cast<Direction>(r.u8());
      if (dir != Direction::kClientToServer || !s.tls.has_value()) return;
      const crypto::Bytes payload_bytes = r.lv();
      if (!s.tls->established()) {
        // Either the hello or the finished.
        const auto reply = s.tls->handle_hello(payload_bytes);
        if (reply.has_value()) {
          ctx.send_plain(s.prev_hop,
                         encode_handshake(sid, Direction::kServerToClient,
                                          *reply));
          return;
        }
        (void)s.tls->handle_finished(payload_bytes);
      }
      return;
    }
    if (tag == MboxMsg::kRecord) {
      const Direction dir = static_cast<Direction>(r.u8());
      if (dir != Direction::kClientToServer || !s.tls.has_value() ||
          !s.tls->established()) {
        return;
      }
      const auto plain = s.tls->channel().open(r.lv());
      if (!plain.has_value()) return;
      ctx.alloc(plain->size());
      crypto::append_lv(s.received, *plain);
      if (echo_) {
        crypto::Bytes response = crypto::to_bytes("ok:");
        crypto::append(response, *plain);
        send_sealed_record(ctx, s.prev_hop, sid, Direction::kServerToClient,
                           s.tls->channel(), response);
      }
      return;
    }
  } catch (const std::exception&) {
    return;
  }
}

void TlsServerApp::on_peer_attested(core::Ctx& ctx, netsim::NodeId peer) {
  const auto it = pending_provision_.find(peer);
  if (it == pending_provision_.end()) return;
  for (const uint32_t sid : it->second) {
    const auto st = sessions_.find(sid);
    if (st == sessions_.end() || !st->second.tls.has_value() ||
        !st->second.tls->established()) {
      continue;
    }
    ctx.send_secure(peer, encode_provision(sid, EndpointRole::kServer,
                                           st->second.tls->keys()));
  }
  pending_provision_.erase(it);
}

crypto::Bytes TlsServerApp::on_control(core::Ctx& ctx, uint32_t subfn,
                                       crypto::BytesView arg) {
  switch (subfn) {
    case kCtlIsEstablished: {
      const auto it = sessions_.find(crypto::read_u32(arg, 0));
      crypto::Bytes out;
      out.push_back(it != sessions_.end() && it->second.tls.has_value() &&
                            it->second.tls->established()
                        ? 1
                        : 0);
      return out;
    }
    case kCtlReceived: {
      const auto it = sessions_.find(crypto::read_u32(arg, 0));
      return it != sessions_.end() ? it->second.received : crypto::Bytes{};
    }
    case kCtlProvisionMbox: {
      crypto::Reader r(arg);
      const uint32_t sid = r.u32();
      const netsim::NodeId mbox = r.u32();
      const auto it = sessions_.find(sid);
      if (it == sessions_.end() || !it->second.tls.has_value() ||
          !it->second.tls->established()) {
        return {};
      }
      if (is_attested(mbox)) {
        ctx.send_secure(mbox, encode_provision(sid, EndpointRole::kServer,
                                               it->second.tls->keys()));
      } else {
        pending_provision_[mbox].push_back(sid);
        ctx.connect(mbox);
      }
      return {};
    }
    case kCtlServerEcho:
      echo_ = !arg.empty() && arg[0] != 0;
      return {};
    default:
      return {};
  }
}

// ---------------------------------------------------------------------------
// DpiMiddleboxApp
// ---------------------------------------------------------------------------

DpiMiddleboxApp::DpiMiddleboxApp(const sgx::Authority& authority,
                                 sgx::AttestationConfig config,
                                 MboxPolicy policy,
                                 std::vector<std::string> patterns)
    : SecureApp(authority, config), policy_(policy) {
  for (std::string& p : patterns) patterns_.add(std::move(p));
  patterns_.build();
}

void DpiMiddleboxApp::maybe_activate(Session& s) {
  if (s.active || !s.keys.has_value()) return;
  if (policy_.require_both_endpoints &&
      (!s.provisioned.contains(EndpointRole::kClient) ||
       !s.provisioned.contains(EndpointRole::kServer))) {
    return;
  }
  // Passive views: open client->server records like the server would and
  // server->client records like the client would.
  s.c2s_view.emplace(s.keys->channel_key, /*initiator=*/false);
  s.s2c_view.emplace(s.keys->channel_key, /*initiator=*/true);
  s.c2s_scan.emplace(patterns_);
  s.s2c_scan.emplace(patterns_);
  s.active = true;
}

void DpiMiddleboxApp::forward(core::Ctx& ctx, const Session& s, Direction dir,
                              crypto::BytesView wire) {
  const netsim::NodeId to =
      dir == Direction::kClientToServer ? s.next : s.prev;
  if (to == netsim::kInvalidNode) return;
  ctx.send_plain(to, wire);
}

void DpiMiddleboxApp::on_plain_message(core::Ctx& ctx, netsim::NodeId peer,
                                       crypto::BytesView payload) {
  try {
    crypto::Reader r(payload);
    const MboxMsg tag = tag_of(payload);
    (void)r.u8();
    const uint32_t sid = r.u32();

    if (tag == MboxMsg::kOpen) {
      const uint32_t n = r.u32();
      if (n == 0) return;  // malformed: a middlebox is never the endpoint
      std::vector<netsim::NodeId> rest;
      for (uint32_t i = 0; i < n; ++i) rest.push_back(r.u32());
      Session& s = sessions_[sid];
      ctx.alloc(512);
      s.prev = peer;
      s.next = rest.front();
      ctx.send_plain(s.next, encode_open(sid, std::vector<netsim::NodeId>(
                                                  rest.begin() + 1, rest.end())));
      return;
    }

    const auto it = sessions_.find(sid);
    if (it == sessions_.end()) return;
    Session& s = it->second;
    // Only accept traffic from the session's actual neighbors.
    if (peer != s.prev && peer != s.next) return;

    if (tag == MboxMsg::kHandshake) {
      const Direction dir = static_cast<Direction>(r.u8());
      forward(ctx, s, dir, payload);
      return;
    }
    if (tag == MboxMsg::kRecord) {
      const Direction dir = static_cast<Direction>(r.u8());
      const crypto::BytesView record = r.lv_view();
      if (!s.active) {
        if (policy_.fail_closed) {
          // No keys, fail-closed: an uninspectable record does not pass.
          ++blocked_;
          return;
        }
        // No keys, fail-open: the middlebox is blind — pass the
        // ciphertext through.
        ++opaque_forwarded_;
        forward(ctx, s, dir, payload);
        return;
      }
      auto& view = dir == Direction::kClientToServer ? s.c2s_view : s.s2c_view;
      auto& scanner = dir == Direction::kClientToServer ? s.c2s_scan : s.s2c_scan;
      // Stage the ciphertext in the reusable scratch and decrypt in place:
      // the relay hot path makes no per-record allocations, and the original
      // wire bytes stay untouched for the onward forward below.
      scratch_.assign(record.begin(), record.end());
      const auto plain_len = view->open_in_place(scratch_);
      if (!plain_len.has_value()) {
        // Unopenable record on a provisioned session: drop (integrity).
        ++blocked_;
        return;
      }
      ++inspected_;
      const auto matches = scanner->scan(crypto::BytesView(
          scratch_.data() + crypto::Aead::kHeaderSize, *plain_len));
      bool block = false;
      for (const DpiMatch& m : matches) {
        alerts_.push_back(m);
        if (policy_.block_on_match) block = true;
      }
      if (block) {
        ++blocked_;
        return;  // IPS mode: record dropped
      }
      forward(ctx, s, dir, payload);
      return;
    }
  } catch (const std::exception&) {
    return;
  }
}

void DpiMiddleboxApp::on_secure_message(core::Ctx& ctx, netsim::NodeId,
                                        crypto::BytesView payload) {
  try {
    crypto::Reader r(payload);
    if (static_cast<MboxSecureMsg>(r.u8()) != MboxSecureMsg::kProvision) {
      return;
    }
    const uint32_t sid = r.u32();
    const auto role = static_cast<EndpointRole>(r.u8());
    TlsKeyMaterial keys = TlsKeyMaterial::deserialize(r.lv());
    if (shard() != nullptr && shard()->active()) {
      if (!shard()->serving()) return;  // fail-closed while in a minority
      crypto::Bytes entry;
      crypto::append_u32(entry, sid);
      entry.push_back(static_cast<uint8_t>(role));
      crypto::append_lv(entry, keys.serialize());
      shard()->admit(ctx, sid, entry);
    }
    apply_provision(ctx, sid, role, std::move(keys));
  } catch (const std::exception&) {
    return;
  }
}

void DpiMiddleboxApp::apply_provision(core::Ctx&, uint32_t sid,
                                      EndpointRole role, TlsKeyMaterial keys) {
  Session& s = sessions_[sid];
  if (s.keys.has_value() &&
      !crypto::ct_equal(s.keys->channel_key, keys.channel_key)) {
    return;  // conflicting keys: refuse
  }
  s.keys = std::move(keys);
  s.provisioned.insert(role);
  maybe_activate(s);
}

void DpiMiddleboxApp::configure_shard(core::Ctx& ctx, core::ShardConfig cfg) {
  core::ShardReplica::Hooks hooks;
  hooks.apply = [this](core::Ctx& c, uint32_t, uint64_t key,
                       crypto::BytesView entry) {
    try {
      crypto::Reader r(entry);
      const uint32_t sid = r.u32();
      if (sid != key) return;  // entry/key mismatch: refuse
      const auto role = static_cast<EndpointRole>(r.u8());
      TlsKeyMaterial keys = TlsKeyMaterial::deserialize(r.lv());
      c.alloc(128);
      apply_provision(c, sid, role, std::move(keys));
    } catch (const std::exception&) {
    }
  };
  hooks.snapshot = [this](core::Ctx&) { return serialize_provisions(); };
  hooks.install = [this](core::Ctx& c, crypto::BytesView state) {
    return install_provisions(c, state);
  };
  enable_sharding(ctx, std::move(cfg), std::move(hooks));
}

crypto::Bytes DpiMiddleboxApp::serialize_provisions() const {
  uint32_t n = 0;
  for (const auto& [sid, s] : sessions_) {
    if (s.keys.has_value()) ++n;
  }
  crypto::Bytes state;
  crypto::append_u32(state, n);
  for (const auto& [sid, s] : sessions_) {
    if (!s.keys.has_value()) continue;
    crypto::append_u32(state, sid);
    crypto::append_u32(state, s.prev);
    crypto::append_u32(state, s.next);
    state.push_back(static_cast<uint8_t>(s.provisioned.size()));
    for (const EndpointRole role : s.provisioned) {
      state.push_back(static_cast<uint8_t>(role));
    }
    crypto::append_lv(state, s.keys->serialize());
  }
  return state;
}

bool DpiMiddleboxApp::install_provisions(core::Ctx& ctx,
                                         crypto::BytesView state) {
  // Parse fully before applying: a malformed blob must leave session
  // state untouched (the shard install contract requires it).
  struct Parsed {
    uint32_t sid;
    netsim::NodeId prev;
    netsim::NodeId next;
    std::vector<EndpointRole> roles;
    TlsKeyMaterial keys;
  };
  std::vector<Parsed> parsed;
  try {
    crypto::Reader r(state);
    const uint32_t n = r.u32();
    parsed.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Parsed p;
      p.sid = r.u32();
      p.prev = r.u32();
      p.next = r.u32();
      const uint8_t n_roles = r.u8();
      for (uint8_t j = 0; j < n_roles; ++j) {
        p.roles.push_back(static_cast<EndpointRole>(r.u8()));
      }
      p.keys = TlsKeyMaterial::deserialize(r.lv());
      parsed.push_back(std::move(p));
    }
  } catch (const std::exception&) {
    return false;
  }
  for (const Parsed& p : parsed) {
    Session& s = sessions_[p.sid];
    ctx.alloc(512);
    // Keep local path bindings if present (the checkpoint restored
    // them); otherwise adopt the donor's view of the session path.
    if (s.prev == netsim::kInvalidNode) s.prev = p.prev;
    if (s.next == netsim::kInvalidNode) s.next = p.next;
    for (const EndpointRole role : p.roles) {
      apply_provision(ctx, p.sid, role, p.keys);
    }
  }
  return true;
}

crypto::Bytes DpiMiddleboxApp::on_checkpoint(core::Ctx&) {
  crypto::Bytes state;
  crypto::append_u32(state, static_cast<uint32_t>(sessions_.size()));
  for (const auto& [sid, s] : sessions_) {
    crypto::append_u32(state, sid);
    crypto::append_u32(state, s.prev);
    crypto::append_u32(state, s.next);
  }
  return state;
}

void DpiMiddleboxApp::on_restore(core::Ctx& ctx, crypto::BytesView state) {
  try {
    crypto::Reader r(state);
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t sid = r.u32();
      Session& s = sessions_[sid];
      ctx.alloc(512);
      s.prev = r.u32();
      s.next = r.u32();
      // active stays false: keys died with the old enclave. Records on
      // this session now follow the fail-open/fail-closed policy until
      // the endpoints re-attest us and provision fresh key material.
    }
  } catch (const std::exception&) {
    return;
  }
}

crypto::Bytes DpiMiddleboxApp::on_control(core::Ctx& ctx, uint32_t subfn,
                                          crypto::BytesView arg) {
  crypto::Bytes out;
  switch (subfn) {
    case kCtlConfigureShard:
      configure_shard(ctx, core::ShardConfig::deserialize(arg));
      return out;
    case kCtlBeginShardJoin:
      if (shard() != nullptr) shard()->begin_join(ctx);
      return out;
    case kCtlShardReachable:
      if (shard() != nullptr && arg.size() >= 5) {
        shard()->set_reachable(ctx, crypto::read_u32(arg, 0), arg[4] != 0);
      }
      return out;
    case kCtlAlertCount:
      crypto::append_u64(out, alerts_.size());
      return out;
    case kCtlAlerts:
      for (const DpiMatch& m : alerts_) {
        crypto::append_u32(out, m.pattern_id);
        crypto::append_u64(out, m.end_offset);
      }
      return out;
    case kCtlSessionActive: {
      const auto it = sessions_.find(crypto::read_u32(arg, 0));
      out.push_back(it != sessions_.end() && it->second.active ? 1 : 0);
      return out;
    }
    case kCtlOpaqueForwarded:
      crypto::append_u64(out, opaque_forwarded_);
      return out;
    case kCtlBlockedCount:
      crypto::append_u64(out, blocked_);
      return out;
    case kCtlInspectedCount:
      crypto::append_u64(out, inspected_);
      return out;
    default:
      return out;
  }
}

}  // namespace tenet::mbox
