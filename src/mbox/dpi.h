// Deep packet inspection engine: Aho-Corasick multi-pattern matching.
//
// The workload §3.3 motivates ("TLS traffic in enterprise networks can be
// sent to the SGX-enabled cloud for deep packet inspection"). Streaming
// interface: the automaton state survives across TLS records, so patterns
// spanning record boundaries are still found.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "crypto/bytes.h"

namespace tenet::mbox {

struct DpiMatch {
  uint32_t pattern_id = 0;
  /// Offset of the byte *after* the match in the scanned stream.
  size_t end_offset = 0;
};

/// Immutable compiled pattern set.
class PatternSet {
 public:
  /// Adds a pattern (non-empty); returns its id. Call before build().
  uint32_t add(std::string pattern);
  /// Compiles goto/fail/output links. Idempotent.
  void build();
  [[nodiscard]] bool built() const { return built_; }
  [[nodiscard]] size_t pattern_count() const { return patterns_.size(); }
  [[nodiscard]] const std::string& pattern(uint32_t id) const {
    return patterns_.at(id);
  }

 private:
  friend class DpiScanner;
  struct TrieNode {
    std::map<uint8_t, uint32_t> next;
    uint32_t fail = 0;
    std::vector<uint32_t> outputs;  // pattern ids ending here
  };
  std::vector<TrieNode> nodes_{TrieNode{}};  // node 0 = root
  std::vector<std::string> patterns_;
  bool built_ = false;
};

/// Streaming scanner over one direction of one session.
class DpiScanner {
 public:
  /// `patterns` must outlive the scanner and be built.
  explicit DpiScanner(const PatternSet& patterns);

  /// Scans the next chunk of the stream; appends matches found.
  std::vector<DpiMatch> scan(crypto::BytesView chunk);

  [[nodiscard]] size_t bytes_scanned() const { return offset_; }
  void reset();

 private:
  const PatternSet& patterns_;
  uint32_t state_ = 0;
  size_t offset_ = 0;
};

}  // namespace tenet::mbox
