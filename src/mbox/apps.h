// Endpoint and middlebox applications for §3.3 "Secure In-network
// Functions".
//
// The key idea, verbatim from the paper: "endpoints use a remote
// attestation to authenticate middleboxes and give their session keys
// through the secure channel to in-path middleboxes." Both agreement
// modes are implemented:
//   * bilateral — both endpoints attest the middlebox and provision keys;
//     the middlebox activates DPI only once both agree;
//   * unilateral — one endpoint (e.g. enterprise egress) ships the keys,
//     enabling the outsourced-DPI use case.
// A middlebox that is NOT attested and provisioned forwards opaque
// ciphertext and learns nothing.
#pragma once

#include <set>

#include "core/secure_app.h"
#include "mbox/dpi.h"
#include "mbox/tls.h"

namespace tenet::mbox {

/// Wire tags on the plain (in-path) ports.
enum class MboxMsg : uint8_t {
  kOpen = 1,       // u32 sid | u32 n | u32 hop... (remaining path, server last)
  kHandshake = 2,  // u32 sid | u8 dir | LV tls handshake message
  kRecord = 3,     // u32 sid | u8 dir | LV tls record
};
enum class Direction : uint8_t { kClientToServer = 0, kServerToClient = 1 };

/// Secure-channel (post-attestation) message.
enum class MboxSecureMsg : uint8_t {
  kProvision = 1,  // u32 sid | u8 endpoint role | LV TlsKeyMaterial
};
enum class EndpointRole : uint8_t { kClient = 1, kServer = 2 };

crypto::Bytes encode_open(uint32_t sid, const std::vector<netsim::NodeId>& rest);
crypto::Bytes encode_handshake(uint32_t sid, Direction dir,
                               crypto::BytesView payload);
crypto::Bytes encode_record(uint32_t sid, Direction dir,
                            crypto::BytesView record);
crypto::Bytes encode_provision(uint32_t sid, EndpointRole role,
                               const TlsKeyMaterial& keys);

// --- Endpoint controls ---
enum EndpointControl : uint32_t {
  kCtlOpenSession = 1,    // u32 server | u32 n_mbox | u32 mbox... -> u32 sid
  kCtlIsEstablished = 2,  // u32 sid -> u8
  kCtlSendData = 3,       // u32 sid | LV data
  kCtlReceived = 4,       // u32 sid -> LV... (all received, concatenated LVs)
  kCtlProvisionMbox = 5,  // u32 sid | u32 mbox node
  kCtlServerEcho = 6,     // u8 on/off (server responds "ok:<data>")
};

// --- Middlebox controls ---
enum MboxControl : uint32_t {
  kCtlAlertCount = 1,       // -> u64
  kCtlAlerts = 2,           // -> (u32 pattern id, u64 offset)...
  kCtlSessionActive = 3,    // u32 sid -> u8 (DPI enabled?)
  kCtlOpaqueForwarded = 4,  // -> u64 records forwarded without keys
  kCtlBlockedCount = 5,     // -> u64 records dropped by policy
  kCtlInspectedCount = 6,   // -> u64 records decrypted and scanned
  kCtlConfigureShard = 7,   // serialized core::ShardConfig — replicate
                            // session provisions across a DPI shard group
  kCtlBeginShardJoin = 8,   // empty (rejoin after restart)
  kCtlShardReachable = 9,   // u32 shard | u8 up (host liveness hint)
};

/// TLS client endpoint (runs in an enclave; attests middleboxes before
/// provisioning).
class TlsClientApp final : public core::SecureApp {
 public:
  TlsClientApp(const sgx::Authority& authority, sgx::AttestationConfig config);

  void on_plain_message(core::Ctx& ctx, netsim::NodeId peer,
                        crypto::BytesView payload) override;
  void on_secure_message(core::Ctx&, netsim::NodeId,
                         crypto::BytesView) override {}  // endpoints expect none
  void on_peer_attested(core::Ctx& ctx, netsim::NodeId peer) override;
  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override;

 private:
  struct Session {
    netsim::NodeId first_hop = netsim::kInvalidNode;
    std::optional<TlsClientSession> tls;
    crypto::Bytes received;  // concatenated LV frames
  };
  std::map<uint32_t, Session> sessions_;
  std::map<netsim::NodeId, std::vector<uint32_t>> pending_provision_;
  uint32_t next_sid_ = 100;
};

/// TLS server endpoint.
class TlsServerApp final : public core::SecureApp {
 public:
  TlsServerApp(const sgx::Authority& authority, sgx::AttestationConfig config);

  void on_plain_message(core::Ctx& ctx, netsim::NodeId peer,
                        crypto::BytesView payload) override;
  void on_secure_message(core::Ctx&, netsim::NodeId,
                         crypto::BytesView) override {}  // endpoints expect none
  void on_peer_attested(core::Ctx& ctx, netsim::NodeId peer) override;
  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override;

 private:
  struct Session {
    netsim::NodeId prev_hop = netsim::kInvalidNode;
    std::optional<TlsServerSession> tls;
    crypto::Bytes received;
  };
  std::map<uint32_t, Session> sessions_;
  std::map<netsim::NodeId, std::vector<uint32_t>> pending_provision_;
  bool echo_ = true;
};

/// Middlebox policy knobs.
struct MboxPolicy {
  bool require_both_endpoints = true;  // bilateral agreement (§3.3)
  bool block_on_match = false;         // IPS mode: drop matching records
  /// What happens to records the middlebox cannot inspect (no keys — e.g.
  /// after an enclave restart wiped the provisioned session state):
  /// fail-open (default) forwards the opaque ciphertext, fail-closed
  /// drops it until the endpoints re-provision.
  bool fail_closed = false;
};

/// In-path DPI middlebox (enclave app). Patterns are baked into the
/// trusted image at build time (part of the audited code/data).
class DpiMiddleboxApp final : public core::SecureApp {
 public:
  DpiMiddleboxApp(const sgx::Authority& authority,
                  sgx::AttestationConfig config, MboxPolicy policy,
                  std::vector<std::string> patterns);

  void on_plain_message(core::Ctx& ctx, netsim::NodeId peer,
                        crypto::BytesView payload) override;
  void on_secure_message(core::Ctx& ctx, netsim::NodeId peer,
                         crypto::BytesView payload) override;
  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override;

  /// Checkpoint = session routing only (sid -> prev/next hop). Keys and
  /// record-layer state are deliberately NOT checkpointed: a restarted
  /// middlebox resumes forwarding per fail-open/fail-closed policy and
  /// re-inspects only after the endpoints re-attest and re-provision.
  crypto::Bytes on_checkpoint(core::Ctx& ctx) override;
  void on_restore(core::Ctx& ctx, crypto::BytesView state) override;

 private:
  struct Session {
    netsim::NodeId prev = netsim::kInvalidNode;
    netsim::NodeId next = netsim::kInvalidNode;
    std::set<EndpointRole> provisioned;
    std::optional<TlsKeyMaterial> keys;
    // Passive record-layer views (one per direction) + scanners.
    std::optional<netsim::SecureChannel> c2s_view;
    std::optional<netsim::SecureChannel> s2c_view;
    std::optional<DpiScanner> c2s_scan;
    std::optional<DpiScanner> s2c_scan;
    bool active = false;
  };

  void maybe_activate(Session& s);
  void forward(core::Ctx& ctx, const Session& s, Direction dir,
               crypto::BytesView wire);

  // Shard-group integration: session provisions (key material released by
  // the endpoints) are the admitted state; a standby DPI replica holding
  // the replicated provisions can take over a session mid-stream.
  void configure_shard(core::Ctx& ctx, core::ShardConfig cfg);
  void apply_provision(core::Ctx& ctx, uint32_t sid, EndpointRole role,
                       TlsKeyMaterial keys);
  [[nodiscard]] crypto::Bytes serialize_provisions() const;
  bool install_provisions(core::Ctx& ctx, crypto::BytesView state);

  MboxPolicy policy_;
  PatternSet patterns_;
  std::map<uint32_t, Session> sessions_;
  // Reusable staging buffer for in-place record inspection: the ciphertext
  // is copied here once and decrypted in place, so the multi-hop relay path
  // makes no per-record allocations (neither the old record copy nor the
  // plaintext buffer open() returned).
  crypto::Bytes scratch_;
  std::vector<DpiMatch> alerts_;
  uint64_t opaque_forwarded_ = 0;
  uint64_t blocked_ = 0;
  uint64_t inspected_ = 0;
};

}  // namespace tenet::mbox
