// End-to-end middlebox deployment: TLS client <-> chain of DPI
// middleboxes <-> TLS server, over the simulator. Drives §3.3's scenarios
// (bilateral agreement, unilateral enterprise outsourcing, unattested
// middleboxes) for the tests, the middlebox_dpi example and the Table 3 /
// micro benches.
#pragma once

#include "core/node.h"
#include "core/open_project.h"
#include "mbox/apps.h"

namespace tenet::mbox {

struct MboxScenarioConfig {
  size_t n_middleboxes = 1;
  std::vector<std::string> patterns = {"ATTACK"};
  MboxPolicy policy;
  uint64_t seed = 2015;
  /// When set, middlebox `rogue_index` runs a patched (unattestable)
  /// build — provisioning to it must fail.
  std::optional<size_t> rogue_index;
  /// Opt endpoints and middleboxes into fault recovery (attestation retry,
  /// re-handshake after a middlebox restart).
  bool robust = false;
  netsim::RetryPolicy retry;  // used when robust
  /// Serve every node's enclave transitions through switchless rings
  /// (DESIGN.md §10). Application output is byte-identical either way;
  /// only cost accounting and sgx.switchless.* telemetry change.
  bool switchless = false;
  sgx::SwitchlessConfig switchless_config;
};

class MboxDeployment {
 public:
  explicit MboxDeployment(const MboxScenarioConfig& config);

  [[nodiscard]] netsim::Simulator& sim() { return sim_; }
  [[nodiscard]] core::EnclaveNode& client_node() { return *client_; }
  [[nodiscard]] core::EnclaveNode& server_node() { return *server_; }
  [[nodiscard]] core::EnclaveNode& mbox_node(size_t i) { return *mboxes_.at(i); }
  [[nodiscard]] size_t mbox_count() const { return mboxes_.size(); }

  /// Opens a TLS session through the whole chain and completes the
  /// handshake. Returns the session id.
  uint32_t open_session();
  [[nodiscard]] bool established(uint32_t sid);

  /// The client (or server) attests every middlebox in the chain and
  /// provisions the session keys.
  void provision_from_client(uint32_t sid);
  void provision_from_server(uint32_t sid);

  /// Sends application data client -> server (server echoes "ok:<data>").
  void send(uint32_t sid, std::string_view data);
  [[nodiscard]] std::vector<std::string> server_received(uint32_t sid);
  [[nodiscard]] std::vector<std::string> client_received(uint32_t sid);

  // Middlebox introspection.
  [[nodiscard]] uint64_t alerts(size_t mbox_index);
  [[nodiscard]] bool session_active(size_t mbox_index, uint32_t sid);
  [[nodiscard]] uint64_t opaque_forwarded(size_t mbox_index);
  [[nodiscard]] uint64_t blocked(size_t mbox_index);
  [[nodiscard]] uint64_t inspected(size_t mbox_index);

  /// Table 3 metric: attestations performed by the client endpoint.
  [[nodiscard]] uint64_t client_attestations();

  /// Fault drill: checkpoint middlebox `i`'s session routing, inject a
  /// real EPC fault, restart the enclave and restore the checkpoint. The
  /// recovered box forwards per fail-open/fail-closed policy until the
  /// endpoints re-provision. Returns true if the checkpoint was restored.
  bool crash_and_recover_mbox(size_t mbox_index);

 private:
  MboxScenarioConfig config_;
  netsim::Simulator sim_;
  sgx::Authority authority_;
  std::unique_ptr<core::OpenProject> mbox_project_;
  std::unique_ptr<core::OpenProject> endpoint_project_;
  std::unique_ptr<core::EnclaveNode> client_;
  std::unique_ptr<core::EnclaveNode> server_;
  std::vector<std::unique_ptr<core::EnclaveNode>> mboxes_;
};

/// Splits a concatenation of LV frames (kCtlReceived output).
std::vector<std::string> split_frames(crypto::BytesView wire);

}  // namespace tenet::mbox
