#include "mbox/dpi.h"

#include <deque>
#include <stdexcept>

#include "crypto/work.h"
#include "telemetry/telemetry.h"

namespace tenet::mbox {

uint32_t PatternSet::add(std::string pattern) {
  if (built_) throw std::logic_error("PatternSet: add after build");
  if (pattern.empty()) throw std::invalid_argument("PatternSet: empty pattern");
  const uint32_t id = static_cast<uint32_t>(patterns_.size());

  uint32_t node = 0;
  for (const char c : pattern) {
    const uint8_t b = static_cast<uint8_t>(c);
    const auto it = nodes_[node].next.find(b);
    if (it == nodes_[node].next.end()) {
      nodes_.push_back(TrieNode{});
      nodes_[node].next[b] = static_cast<uint32_t>(nodes_.size() - 1);
      node = static_cast<uint32_t>(nodes_.size() - 1);
    } else {
      node = it->second;
    }
  }
  nodes_[node].outputs.push_back(id);
  patterns_.push_back(std::move(pattern));
  return id;
}

void PatternSet::build() {
  if (built_) return;
  built_ = true;
  // BFS to set failure links; outputs accumulate along fail chains.
  std::deque<uint32_t> queue;
  for (const auto& [b, child] : nodes_[0].next) {
    nodes_[child].fail = 0;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    const uint32_t node = queue.front();
    queue.pop_front();
    for (const auto& [b, child] : nodes_[node].next) {
      queue.push_back(child);
      uint32_t f = nodes_[node].fail;
      while (f != 0 && !nodes_[f].next.contains(b)) f = nodes_[f].fail;
      const auto it = nodes_[f].next.find(b);
      const uint32_t target = (it != nodes_[f].next.end() && it->second != child)
                                  ? it->second
                                  : 0;
      nodes_[child].fail = target;
      for (const uint32_t out : nodes_[target].outputs) {
        nodes_[child].outputs.push_back(out);
      }
    }
  }
}

DpiScanner::DpiScanner(const PatternSet& patterns) : patterns_(patterns) {
  if (!patterns.built()) throw std::logic_error("DpiScanner: patterns not built");
}

std::vector<DpiMatch> DpiScanner::scan(crypto::BytesView chunk) {
  // DPI work: a few instructions per scanned byte.
  crypto::work::charge_alu(4 * chunk.size());
  TENET_COUNT("app.mbox.bytes_scanned", chunk.size());
  std::vector<DpiMatch> matches;
  const auto& nodes = patterns_.nodes_;
  for (const uint8_t b : chunk) {
    ++offset_;
    for (;;) {
      const auto it = nodes[state_].next.find(b);
      if (it != nodes[state_].next.end()) {
        state_ = it->second;
        break;
      }
      if (state_ == 0) break;
      state_ = nodes[state_].fail;
    }
    for (const uint32_t id : nodes[state_].outputs) {
      matches.push_back(DpiMatch{id, offset_});
    }
  }
  TENET_COUNT("app.mbox.dpi_matches", matches.size());
  return matches;
}

void DpiScanner::reset() {
  state_ = 0;
  offset_ = 0;
}

}  // namespace tenet::mbox
