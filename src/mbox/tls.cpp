#include "mbox/tls.h"

#include <stdexcept>

#include "crypto/hmac.h"

namespace tenet::mbox {

namespace {
constexpr std::string_view kHelloTag = "TLSC";
constexpr std::string_view kServerTag = "TLSS";
constexpr std::string_view kFinTag = "TLSF";

const crypto::DhGroup& group() { return crypto::DhGroup::oakley_group2(); }

crypto::Bytes transcript_of(crypto::BytesView pub_c, crypto::BytesView n_c,
                            crypto::BytesView pub_s, crypto::BytesView n_s) {
  crypto::Bytes t;
  crypto::append_lv(t, pub_c);
  crypto::append_lv(t, n_c);
  crypto::append_lv(t, pub_s);
  crypto::append_lv(t, n_s);
  return crypto::digest_bytes(crypto::Sha256::hash(t));
}

bool check_tag(crypto::Reader& r, std::string_view tag) {
  try {
    return crypto::to_string(r.take(tag.size())) == tag;
  } catch (const std::out_of_range&) {
    return false;
  }
}
}  // namespace

TlsSecrets TlsSecrets::derive(crypto::BytesView shared,
                              crypto::BytesView nonce_c,
                              crypto::BytesView nonce_s) {
  crypto::Bytes salt;
  crypto::append_lv(salt, nonce_c);
  crypto::append_lv(salt, nonce_s);
  const crypto::Bytes okm =
      crypto::hkdf(salt, shared, crypto::to_bytes("tenet.tls.master"), 96);
  TlsSecrets s;
  s.channel_key.assign(okm.begin(), okm.begin() + 32);
  s.server_mac_key.assign(okm.begin() + 32, okm.begin() + 64);
  s.client_mac_key.assign(okm.begin() + 64, okm.end());
  return s;
}

TlsClientSession::TlsClientSession(crypto::Drbg& rng) : rng_(rng) {}

crypto::Bytes TlsClientSession::hello() {
  if (hello_sent_) throw std::logic_error("TlsClientSession: hello twice");
  hello_sent_ = true;
  dh_.emplace(group(), rng_);
  nonce_ = rng_.bytes(32);
  crypto::Bytes msg;
  crypto::append(msg, crypto::to_bytes(kHelloTag));
  crypto::append_lv(msg, dh_->public_bytes());
  crypto::append_lv(msg, nonce_);
  return msg;
}

std::optional<crypto::Bytes> TlsClientSession::handle_server_hello(
    crypto::BytesView msg) {
  if (!hello_sent_ || channel_.has_value()) return std::nullopt;
  crypto::Reader r(msg);
  if (!check_tag(r, kServerTag)) return std::nullopt;
  crypto::Bytes pub_s, nonce_s, mac;
  try {
    pub_s = r.lv();
    nonce_s = r.lv();
    mac = r.lv();
  } catch (const std::exception&) {
    return std::nullopt;
  }
  crypto::Bytes shared;
  try {
    shared = dh_->shared_secret(crypto::BytesView(pub_s));
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  const TlsSecrets secrets = TlsSecrets::derive(shared, nonce_, nonce_s);
  const crypto::Bytes transcript =
      transcript_of(dh_->public_bytes(), nonce_, pub_s, nonce_s);
  if (!crypto::hmac_verify(secrets.server_mac_key, transcript, mac)) {
    return std::nullopt;
  }

  keys_.channel_key = secrets.channel_key;
  channel_.emplace(keys_.channel_key, /*initiator=*/true);

  crypto::Bytes fin;
  crypto::append(fin, crypto::to_bytes(kFinTag));
  const crypto::Digest fmac =
      crypto::hmac_sha256(secrets.client_mac_key, transcript);
  crypto::append_lv(fin, crypto::digest_bytes(fmac));
  return fin;
}

const TlsKeyMaterial& TlsClientSession::keys() const {
  if (!channel_.has_value()) {
    throw std::logic_error("TlsClientSession: not established");
  }
  return keys_;
}

netsim::SecureChannel& TlsClientSession::channel() {
  if (!channel_.has_value()) {
    throw std::logic_error("TlsClientSession: not established");
  }
  return *channel_;
}

TlsServerSession::TlsServerSession(crypto::Drbg& rng) : rng_(rng) {}

std::optional<crypto::Bytes> TlsServerSession::handle_hello(
    crypto::BytesView msg) {
  crypto::Reader r(msg);
  if (!check_tag(r, kHelloTag)) return std::nullopt;
  crypto::Bytes pub_c, nonce_c;
  try {
    pub_c = r.lv();
    nonce_c = r.lv();
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const crypto::DhKeyPair dh(group(), rng_);
  crypto::Bytes shared;
  try {
    shared = dh.shared_secret(crypto::BytesView(pub_c));
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  const crypto::Bytes nonce_s = rng_.bytes(32);
  const TlsSecrets secrets = TlsSecrets::derive(shared, nonce_c, nonce_s);
  transcript_ = transcript_of(pub_c, nonce_c, dh.public_bytes(), nonce_s);
  client_mac_key_ = secrets.client_mac_key;
  keys_.channel_key = secrets.channel_key;
  channel_.emplace(keys_.channel_key, /*initiator=*/false);

  crypto::Bytes reply;
  crypto::append(reply, crypto::to_bytes(kServerTag));
  crypto::append_lv(reply, dh.public_bytes());
  crypto::append_lv(reply, nonce_s);
  const crypto::Digest mac =
      crypto::hmac_sha256(secrets.server_mac_key, transcript_);
  crypto::append_lv(reply, crypto::digest_bytes(mac));
  return reply;
}

bool TlsServerSession::handle_finished(crypto::BytesView msg) {
  if (!channel_.has_value()) return false;
  crypto::Reader r(msg);
  if (!check_tag(r, kFinTag)) return false;
  crypto::Bytes mac;
  try {
    mac = r.lv();
  } catch (const std::exception&) {
    return false;
  }
  finished_ok_ = crypto::hmac_verify(client_mac_key_, transcript_, mac);
  return finished_ok_;
}

const TlsKeyMaterial& TlsServerSession::keys() const {
  if (!channel_.has_value()) {
    throw std::logic_error("TlsServerSession: not established");
  }
  return keys_;
}

netsim::SecureChannel& TlsServerSession::channel() {
  if (!channel_.has_value()) {
    throw std::logic_error("TlsServerSession: not established");
  }
  return *channel_;
}

}  // namespace tenet::mbox
