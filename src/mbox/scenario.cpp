#include "mbox/scenario.h"

#include "sgx/adversary.h"

namespace tenet::mbox {

namespace {
constexpr std::string_view kMboxSource =
    "tenet dpi middlebox v1\n"
    "decrypts only provisioned sessions; emits alerts, never payloads\n";
constexpr std::string_view kEndpointSource =
    "tenet tls endpoint v1\n"
    "provisions session keys only to attested middleboxes\n";
}  // namespace

std::vector<std::string> split_frames(crypto::BytesView wire) {
  std::vector<std::string> out;
  crypto::Reader r(wire);
  while (!r.done()) out.push_back(crypto::to_string(r.lv()));
  return out;
}

MboxDeployment::MboxDeployment(const MboxScenarioConfig& config)
    : config_(config), sim_(config.seed) {
  // Pre-size for the chain topology and scale the run() safety cap with
  // the middlebox count (deep chains under heavy traffic exceed the
  // paper-scale default).
  sim_.reserve_nodes(config.n_middleboxes + 4);
  sim_.set_run_cap(std::max<size_t>(1'000'000, 50'000 * (config.n_middleboxes + 4)));
  mbox_project_ = std::make_unique<core::OpenProject>(
      "dpi-middlebox", std::string(kMboxSource), nullptr);
  endpoint_project_ = std::make_unique<core::OpenProject>(
      "tls-endpoint", std::string(kEndpointSource), nullptr);

  const sgx::Authority* auth = &authority_;
  const bool robust = config.robust;
  const netsim::RetryPolicy retry = config.retry;

  // Endpoints verify the audited middlebox build before handing over keys.
  sgx::AttestationConfig endpoint_cfg;
  endpoint_cfg.expect.expect_enclave(mbox_project_->measurement());
  sgx::AttestationConfig mbox_cfg;  // target role only

  sgx::EnclaveImage client_image = endpoint_project_->build();
  client_image.factory = [auth, endpoint_cfg, robust, retry] {
    auto app = std::make_unique<TlsClientApp>(*auth, endpoint_cfg);
    if (robust) app->enable_recovery(retry);
    return app;
  };
  client_ = std::make_unique<core::EnclaveNode>(
      sim_, authority_, "tls-client", endpoint_project_->foundation(),
      client_image);
  if (config.switchless) client_->enable_switchless(config.switchless_config);
  client_->start();

  sgx::EnclaveImage server_image = endpoint_project_->build();
  server_image.factory = [auth, endpoint_cfg, robust, retry] {
    auto app = std::make_unique<TlsServerApp>(*auth, endpoint_cfg);
    if (robust) app->enable_recovery(retry);
    return app;
  };
  server_ = std::make_unique<core::EnclaveNode>(
      sim_, authority_, "tls-server", endpoint_project_->foundation(),
      server_image);
  if (config.switchless) server_->enable_switchless(config.switchless_config);
  server_->start();

  for (size_t i = 0; i < config.n_middleboxes; ++i) {
    const MboxPolicy policy = config.policy;
    const std::vector<std::string> patterns = config.patterns;
    sgx::EnclaveImage image = mbox_project_->build();
    image.factory = [auth, mbox_cfg, policy, patterns, robust, retry] {
      auto app = std::make_unique<DpiMiddleboxApp>(*auth, mbox_cfg, policy,
                                                   patterns);
      if (robust) app->enable_recovery(retry);
      return app;
    };
    std::string name = "mbox-" + std::to_string(i);
    if (config.rogue_index.has_value() && *config.rogue_index == i) {
      image = sgx::adversary::patch_image(
          image, "exfiltrate plaintext to operator",
          [auth, mbox_cfg, policy, patterns] {
            return std::make_unique<DpiMiddleboxApp>(*auth, mbox_cfg, policy,
                                                     patterns);
          });
      name = "rogue-" + name;
    }
    auto node = std::make_unique<core::EnclaveNode>(
        sim_, authority_, name, mbox_project_->foundation(), image);
    if (config.switchless) node->enable_switchless(config.switchless_config);
    node->start();
    mboxes_.push_back(std::move(node));
  }
}

uint32_t MboxDeployment::open_session() {
  crypto::Bytes arg;
  crypto::append_u32(arg, server_->id());
  crypto::append_u32(arg, static_cast<uint32_t>(mboxes_.size()));
  for (const auto& m : mboxes_) crypto::append_u32(arg, m->id());
  const crypto::Bytes out = client_->control(kCtlOpenSession, arg);
  sim_.run();
  return crypto::read_u32(out, 0);
}

bool MboxDeployment::established(uint32_t sid) {
  crypto::Bytes arg;
  crypto::append_u32(arg, sid);
  const crypto::Bytes c = client_->control(kCtlIsEstablished, arg);
  const crypto::Bytes s = server_->control(kCtlIsEstablished, arg);
  return !c.empty() && c[0] == 1 && !s.empty() && s[0] == 1;
}

void MboxDeployment::provision_from_client(uint32_t sid) {
  for (const auto& m : mboxes_) {
    crypto::Bytes arg;
    crypto::append_u32(arg, sid);
    crypto::append_u32(arg, m->id());
    (void)client_->control(kCtlProvisionMbox, arg);
  }
  sim_.run();
}

void MboxDeployment::provision_from_server(uint32_t sid) {
  for (const auto& m : mboxes_) {
    crypto::Bytes arg;
    crypto::append_u32(arg, sid);
    crypto::append_u32(arg, m->id());
    (void)server_->control(kCtlProvisionMbox, arg);
  }
  sim_.run();
}

void MboxDeployment::send(uint32_t sid, std::string_view data) {
  crypto::Bytes arg;
  crypto::append_u32(arg, sid);
  crypto::append_lv(arg, crypto::to_bytes(data));
  (void)client_->control(kCtlSendData, arg);
  sim_.run();
}

std::vector<std::string> MboxDeployment::server_received(uint32_t sid) {
  crypto::Bytes arg;
  crypto::append_u32(arg, sid);
  return split_frames(server_->control(kCtlReceived, arg));
}

std::vector<std::string> MboxDeployment::client_received(uint32_t sid) {
  crypto::Bytes arg;
  crypto::append_u32(arg, sid);
  return split_frames(client_->control(kCtlReceived, arg));
}

uint64_t MboxDeployment::alerts(size_t mbox_index) {
  return crypto::read_u64(mboxes_.at(mbox_index)->control(kCtlAlertCount), 0);
}

bool MboxDeployment::session_active(size_t mbox_index, uint32_t sid) {
  crypto::Bytes arg;
  crypto::append_u32(arg, sid);
  const crypto::Bytes out =
      mboxes_.at(mbox_index)->control(kCtlSessionActive, arg);
  return !out.empty() && out[0] == 1;
}

uint64_t MboxDeployment::opaque_forwarded(size_t mbox_index) {
  return crypto::read_u64(
      mboxes_.at(mbox_index)->control(kCtlOpaqueForwarded), 0);
}

uint64_t MboxDeployment::blocked(size_t mbox_index) {
  return crypto::read_u64(mboxes_.at(mbox_index)->control(kCtlBlockedCount), 0);
}

uint64_t MboxDeployment::inspected(size_t mbox_index) {
  return crypto::read_u64(
      mboxes_.at(mbox_index)->control(kCtlInspectedCount), 0);
}

uint64_t MboxDeployment::client_attestations() {
  return client_->query(core::kQueryAttestationsInitiated);
}

bool MboxDeployment::crash_and_recover_mbox(size_t mbox_index) {
  core::EnclaveNode& node = *mboxes_.at(mbox_index);
  node.checkpoint();
  node.inject_fault();
  return node.recover();
}

}  // namespace tenet::mbox
