// Mini-TLS: an ephemeral-DH handshake with transcript authentication and
// an AEAD record layer.
//
// §3.3's problem statement: "widespread use of TLS disrupts in-network
// processing since only endpoints of communication can access the
// plain-text." This module provides those TLS sessions; the middlebox
// module then adds the paper's key idea — endpoints remote-attest in-path
// middleboxes and hand them the session key over the attestation-derived
// secure channel.
//
// Transport-agnostic state machines (the endpoint apps shuttle the
// handshake messages through the middlebox path):
//   client                          server
//     | -- ClientHello {pub_c, n_c} -> |
//     | <- ServerHello {pub_s, n_s,    |
//     |       MAC_s(transcript)}    -- |
//     | -- Finished {MAC_c(transcript)} -> |
#pragma once

#include <optional>

#include "crypto/dh.h"
#include "crypto/rng.h"
#include "netsim/secure_channel.h"

namespace tenet::mbox {

/// Exportable session secret: exactly what an endpoint provisions to an
/// attested middlebox (§3.3 "give their session keys through the secure
/// channel to in-path middleboxes").
struct TlsKeyMaterial {
  crypto::Bytes channel_key;  // 32B AEAD key for the record layer

  [[nodiscard]] crypto::Bytes serialize() const { return channel_key; }
  static TlsKeyMaterial deserialize(crypto::BytesView wire) {
    return TlsKeyMaterial{crypto::Bytes(wire.begin(), wire.end())};
  }
};

class TlsClientSession {
 public:
  explicit TlsClientSession(crypto::Drbg& rng);

  /// Produces the ClientHello. Call once.
  crypto::Bytes hello();
  /// Consumes the ServerHello; returns the Finished message, or nullopt on
  /// verification failure.
  std::optional<crypto::Bytes> handle_server_hello(crypto::BytesView msg);

  [[nodiscard]] bool established() const { return channel_.has_value(); }
  [[nodiscard]] const TlsKeyMaterial& keys() const;
  [[nodiscard]] netsim::SecureChannel& channel();

 private:
  crypto::Drbg& rng_;
  std::optional<crypto::DhKeyPair> dh_;
  crypto::Bytes nonce_;
  TlsKeyMaterial keys_;
  std::optional<netsim::SecureChannel> channel_;
  bool hello_sent_ = false;
};

class TlsServerSession {
 public:
  explicit TlsServerSession(crypto::Drbg& rng);

  /// Consumes the ClientHello and produces the ServerHello; nullopt on a
  /// malformed hello.
  std::optional<crypto::Bytes> handle_hello(crypto::BytesView msg);
  /// Verifies the client Finished.
  bool handle_finished(crypto::BytesView msg);

  [[nodiscard]] bool established() const { return finished_ok_; }
  [[nodiscard]] const TlsKeyMaterial& keys() const;
  [[nodiscard]] netsim::SecureChannel& channel();

 private:
  crypto::Drbg& rng_;
  crypto::Bytes client_mac_key_;
  crypto::Bytes transcript_;
  TlsKeyMaterial keys_;
  std::optional<netsim::SecureChannel> channel_;
  bool finished_ok_ = false;
};

/// Key schedule shared by both sides (and by tests).
struct TlsSecrets {
  crypto::Bytes channel_key;     // 32B
  crypto::Bytes server_mac_key;  // 32B
  crypto::Bytes client_mac_key;  // 32B

  static TlsSecrets derive(crypto::BytesView shared, crypto::BytesView nonce_c,
                           crypto::BytesView nonce_s);
};

}  // namespace tenet::mbox
