#include "core/node.h"

namespace tenet::core {

EnclaveNode::EnclaveNode(netsim::Simulator& sim, sgx::Authority& authority,
                         std::string name, const sgx::Vendor& vendor,
                         const sgx::EnclaveImage& image)
    : netsim::Node(sim, name),
      platform_(std::make_unique<sgx::Platform>(authority, name)),
      sigstruct_(vendor.sign(image, /*product_id=*/1)),
      image_(image) {
  enclave_ = &platform_->launch(sigstruct_, image_);
  install_ocall_handler();
}

void EnclaveNode::install_ocall_handler() {
  enclave_->set_ocall_handler(
      [this](uint32_t code, crypto::BytesView payload) -> crypto::Bytes {
        switch (code) {
          case kOcallSend: {
            crypto::Reader r(payload);
            const netsim::NodeId dst = r.u32();
            const uint32_t port = r.u32();
            send(dst, port, r.lv());
            return {};
          }
          case kOcallLog:
            return {};  // sink; hosts may override by subclassing
          case kOcallScheduleTimer: {
            crypto::Reader r(payload);
            const uint64_t delay_us = r.u64();
            const uint64_t token = r.u64();
            const netsim::TimerId timer = sim().schedule_timer(
                static_cast<double>(delay_us) * 1e-6, id(), [this, token] {
                  if (dead_) return;
                  crypto::Bytes arg;
                  crypto::append_u64(arg, token);
                  try {
                    (void)enclave_->ecall(kFnTimer, arg);
                  } catch (const sgx::HardwareFault&) {
                    dead_ = true;
                  }
                });
            crypto::Bytes out;
            crypto::append_u64(out, timer);
            return out;
          }
          case kOcallCancelTimer:
            (void)sim().cancel_timer(crypto::read_u64(payload, 0));
            return {};
          default:
            return {};
        }
      });
}

void EnclaveNode::disconnect_from(netsim::NodeId peer) {
  crypto::Bytes arg;
  crypto::append_u32(arg, peer);
  (void)enclave_->ecall(kFnDisconnect, arg);
}

void EnclaveNode::enable_switchless(const sgx::SwitchlessConfig& config) {
  switchless_ = true;
  switchless_config_ = config;
  enclave_->enable_switchless(config);
}

void EnclaveNode::relaunch() {
  enclave_ = &platform_->restart_enclave(enclave_->id());
  install_ocall_handler();
  if (switchless_) enclave_->enable_switchless(switchless_config_);
  dead_ = false;
  start();
}

crypto::Bytes EnclaveNode::checkpoint() {
  last_checkpoint_ = enclave_->ecall(kFnCheckpoint, {});
  return last_checkpoint_;
}

bool EnclaveNode::restore(crypto::BytesView sealed) {
  if (sealed.empty()) return false;
  const crypto::Bytes ok =
      enclave_->ecall(kFnRestore, crypto::Bytes(sealed.begin(), sealed.end()));
  return !ok.empty() && ok[0] == 1;
}

void EnclaveNode::inject_fault() {
  // The untrusted OS flips a bit in one of the enclave's EPC-resident
  // pages (vaddr 0 always exists: it is the first image page). The MEE
  // integrity sweep on the next entry turns this into a HardwareFault.
  (void)platform_->epc().adversary_corrupt(enclave_->id(), 0, 0);
  crypto::Bytes probe;
  crypto::append_u32(probe, kQueryAttestedPeerCount);
  try {
    (void)enclave_->ecall(kFnQuery, probe);
  } catch (const sgx::HardwareFault&) {
    dead_ = true;
  }
}

bool EnclaveNode::recover() {
  relaunch();
  return restore(last_checkpoint_);
}

void EnclaveNode::start() {
  crypto::Bytes arg;
  crypto::append_u32(arg, id());
  (void)enclave_->ecall(kFnStart, arg);
}

void EnclaveNode::connect_to(netsim::NodeId peer) {
  crypto::Bytes arg;
  crypto::append_u32(arg, peer);
  (void)enclave_->ecall(kFnConnect, arg);
}

crypto::Bytes EnclaveNode::control(uint32_t subfn, crypto::BytesView payload) {
  crypto::Bytes arg;
  crypto::append_u32(arg, subfn);
  crypto::append_lv(arg, payload);
  return enclave_->ecall(kFnControl, arg);
}

uint64_t EnclaveNode::query(CoreQuery what) {
  crypto::Bytes arg;
  crypto::append_u32(arg, what);
  const crypto::Bytes out = enclave_->ecall(kFnQuery, arg);
  return crypto::read_u64(out, 0);
}

void EnclaveNode::handle_message(const netsim::Message& msg) {
  if (dead_) return;
  crypto::Bytes arg;
  crypto::append_u32(arg, msg.src);
  crypto::append_u32(arg, msg.port);
  crypto::append_lv(arg, msg.payload);
  try {
    (void)enclave_->ecall(kFnDeliver, arg);
  } catch (const sgx::HardwareFault&) {
    // Enclave faulted (e.g. tampered EPC): from the network's perspective
    // the node goes silent — the DoS outcome the threat model allows.
    dead_ = true;
  }
}

sgx::CostModel::Snapshot EnclaveNode::cost_snapshot() const {
  return platform_->total_snapshot();
}

NativeNode::NativeNode(netsim::Simulator& sim, std::string name,
                       std::unique_ptr<PlainApp> app)
    : netsim::Node(sim, name),
      app_(std::move(app)),
      rng_(crypto::Drbg::from_label(id(), "tenet.native." + name)) {}

void NativeNode::start() {
  sgx::CostScope scope(cost_);
  app_->on_start(*this);
}

crypto::Bytes NativeNode::control(uint32_t subfn, crypto::BytesView payload) {
  sgx::CostScope scope(cost_);
  return app_->on_control(*this, subfn, payload);
}

void NativeNode::handle_message(const netsim::Message& msg) {
  // Kernel/userspace receive path: one pass over the bytes.
  cost_.charge_normal(msg.payload.size());
  sgx::CostScope scope(cost_);
  app_->on_message(*this, msg.src, msg.port, msg.payload);
}

void NativeNode::send_app(netsim::NodeId dst, uint32_t port,
                          crypto::BytesView payload) {
  cost_.charge_normal(payload.size());
  send(dst, port, crypto::Bytes(payload.begin(), payload.end()));
}

}  // namespace tenet::core
