#include "core/replication.h"

#include <algorithm>
#include <stdexcept>

namespace tenet::core {

uint64_t shard_mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

ShardMap::ShardMap(std::vector<ShardMember> members)
    : members_(std::move(members)) {
  std::sort(members_.begin(), members_.end(),
            [](const ShardMember& a, const ShardMember& b) {
              return a.shard < b.shard;
            });
  ring_.reserve(members_.size() * kVirtualNodes);
  for (const ShardMember& m : members_) {
    for (uint32_t v = 0; v < kVirtualNodes; ++v) {
      const uint64_t point =
          shard_mix64((static_cast<uint64_t>(m.shard) << 32) | v);
      ring_.emplace_back(point, m.shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

uint32_t ShardMap::owner(uint64_t key) const {
  if (ring_.empty()) throw std::logic_error("ShardMap::owner: empty map");
  // Domain-separate key hashes from ring-point hashes: points are
  // mix64((shard << 32) | v), so an unsalted small key k would hash to
  // exactly shard 0's virtual node v = k and pin every small key (ASNs,
  // node ids, session ids are all < 2^32) onto shard 0.
  const uint64_t h = shard_mix64(key ^ 0x74656e65742d6b65ull);  // "tenet-ke"
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, uint32_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

netsim::NodeId ShardMap::node(uint32_t shard) const {
  for (const ShardMember& m : members_) {
    if (m.shard == shard) return m.node;
  }
  return netsim::kInvalidNode;
}

uint32_t ShardMap::shard_of(netsim::NodeId node) const {
  for (const ShardMember& m : members_) {
    if (m.node == node) return m.shard;
  }
  return kInvalidShard;
}

uint32_t ShardMap::successor(uint32_t shard) const {
  if (members_.empty()) return kInvalidShard;
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].shard == shard) {
      return members_[(i + 1) % members_.size()].shard;
    }
  }
  return kInvalidShard;
}

uint64_t VersionVector::get(uint32_t shard) const {
  const auto it = high_.find(shard);
  return it == high_.end() ? 0 : it->second;
}

uint64_t VersionVector::bump(uint32_t shard) { return ++high_[shard]; }

bool VersionVector::observe(uint32_t shard, uint64_t version) {
  uint64_t& high = high_[shard];
  if (version <= high) return false;
  high = version;
  return true;
}

bool VersionVector::dominates(const VersionVector& other) const {
  for (const auto& [shard, version] : other.high_) {
    if (get(shard) < version) return false;
  }
  return true;
}

void VersionVector::merge(const VersionVector& other) {
  for (const auto& [shard, version] : other.high_) {
    uint64_t& high = high_[shard];
    if (version > high) high = version;
  }
}

uint64_t VersionVector::total() const {
  uint64_t sum = 0;
  for (const auto& [shard, version] : high_) sum += version;
  return sum;
}

crypto::Bytes VersionVector::serialize() const {
  crypto::Bytes out;
  crypto::append_u32(out, static_cast<uint32_t>(high_.size()));
  for (const auto& [shard, version] : high_) {
    crypto::append_u32(out, shard);
    crypto::append_u64(out, version);
  }
  return out;
}

VersionVector VersionVector::deserialize(crypto::BytesView data) {
  crypto::Reader r(data);
  VersionVector vv;
  const uint32_t n = r.u32();
  // 12 bytes per entry: reject a length prefix the payload cannot back
  // before touching the map (a hostile frame could otherwise claim 2^32
  // entries and drive a huge loop over a throwing reader).
  if (size_t{n} * 12 > r.remaining()) {
    throw std::out_of_range("VersionVector: truncated entry list");
  }
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t shard = r.u32();
    const uint64_t version = r.u64();
    // Duplicate shard entries take the component-wise max. Last-wins would
    // let a crafted duplicate LOWER a component, quietly weakening the
    // dominance check that backs rollback protection.
    uint64_t& high = vv.high_[shard];
    if (version > high) high = version;
  }
  return vv;
}

crypto::Bytes ShardConfig::serialize() const {
  crypto::Bytes out;
  crypto::append_u32(out, self);
  crypto::append_u32(out, replication);
  crypto::append_u32(out, static_cast<uint32_t>(members.size()));
  for (const ShardMember& m : members) {
    crypto::append_u32(out, m.shard);
    crypto::append_u32(out, m.node);
  }
  return out;
}

ShardConfig ShardConfig::deserialize(crypto::BytesView data) {
  crypto::Reader r(data);
  ShardConfig cfg;
  cfg.self = r.u32();
  cfg.replication = r.u32();
  const uint32_t n = r.u32();
  // 8 bytes per member: validate the count against the bytes actually
  // present before reserving (an unvalidated n=2^32-1 is a ~34 GB
  // allocation request from one hostile frame).
  if (size_t{n} * 8 > r.remaining()) {
    throw std::out_of_range("ShardConfig: truncated member list");
  }
  cfg.members.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ShardMember m;
    m.shard = r.u32();
    m.node = r.u32();
    cfg.members.push_back(m);
  }
  return cfg;
}

crypto::Bytes encode_shard_append(uint32_t origin, uint64_t version,
                                  uint64_t key, uint32_t copies_left,
                                  uint64_t send_ts_us,
                                  crypto::BytesView entry) {
  crypto::Bytes out;
  out.push_back(kShardAppend);
  crypto::append_u32(out, origin);
  crypto::append_u64(out, version);
  crypto::append_u64(out, key);
  crypto::append_u32(out, copies_left);
  crypto::append_u64(out, send_ts_us);
  crypto::append_lv(out, entry);
  return out;
}

crypto::Bytes encode_shard_join(uint32_t joiner, const VersionVector& vv) {
  crypto::Bytes out;
  out.push_back(kShardJoinReq);
  crypto::append_u32(out, joiner);
  crypto::append_lv(out, vv.serialize());
  return out;
}

crypto::Bytes encode_shard_snapshot(uint32_t donor, const VersionVector& vv,
                                    crypto::BytesView state) {
  crypto::Bytes out;
  out.push_back(kShardSnapshot);
  crypto::append_u32(out, donor);
  crypto::append_lv(out, vv.serialize());
  crypto::append_lv(out, state);
  return out;
}

crypto::Bytes encode_shard_app(uint32_t from, uint32_t target, uint8_t ttl,
                               crypto::BytesView inner) {
  crypto::Bytes out;
  out.push_back(kShardApp);
  crypto::append_u32(out, from);
  crypto::append_u32(out, target);
  out.push_back(ttl);
  crypto::append_lv(out, inner);
  return out;
}

}  // namespace tenet::core
