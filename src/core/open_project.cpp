#include "core/open_project.h"

namespace tenet::core {

OpenProject::OpenProject(std::string name, std::string source,
                         sgx::AppFactory factory)
    : name_(std::move(name)),
      source_(std::move(source)),
      factory_(std::move(factory)),
      foundation_(name_ + "-foundation") {
  measurement_ = build().measure();
  release_ = foundation_.sign(build(), /*product_id=*/1, security_version_);
}

sgx::EnclaveImage OpenProject::build() const {
  return sgx::EnclaveImage::from_source(name_, source_, factory_);
}

sgx::AttestationConfig OpenProject::policy(bool mutual, bool use_dh) const {
  sgx::AttestationConfig cfg;
  cfg.use_dh = use_dh;
  cfg.mutual = mutual;
  cfg.expect.expect_enclave(measurement_);
  cfg.expect.mr_signer = foundation_.signer_id();
  cfg.expect.min_security_version = security_version_;
  return cfg;
}

void OpenProject::publish_revision(std::string new_source) {
  source_ = std::move(new_source);
  ++security_version_;
  measurement_ = build().measure();
  release_ = foundation_.sign(build(), /*product_id=*/1, security_version_);
}

}  // namespace tenet::core
