#include "core/shard_group.h"

#include <algorithm>
#include <stdexcept>

#include "core/secure_app.h"
#include "telemetry/events.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace tenet::core {

namespace {
/// Virtual-clock stamp carried in append frames so the receiver can account
/// the cross-shard hop. 0 while telemetry is off — the field is appended
/// either way, so the wire length never depends on the runtime switch.
uint64_t append_send_ts() {
  return telemetry::enabled() ? telemetry::tracer().clock_now() : 0;
}
}  // namespace

ShardReplica::ShardReplica(SecureApp& app, ShardConfig cfg, Hooks hooks)
    : app_(app), cfg_(std::move(cfg)), map_(cfg_.members),
      hooks_(std::move(hooks)) {}

bool ShardReplica::serving() const {
  size_t up = 1;  // self
  for (const ShardMember& m : cfg_.members) {
    if (m.shard != cfg_.self && is_reachable(m.shard)) ++up;
  }
  return 2 * up > cfg_.members.size();
}

bool ShardReplica::is_reachable(uint32_t shard) const {
  if (shard == cfg_.self) return true;
  const auto it = reachable_.find(shard);
  return it == reachable_.end() || it->second;  // optimistic until told
}

uint32_t ShardReplica::lowest_reachable() const {
  uint32_t best = cfg_.self;
  for (const ShardMember& m : cfg_.members) {
    if (m.shard < best && is_reachable(m.shard)) best = m.shard;
  }
  return best;
}

uint32_t ShardReplica::next_hop() const {
  uint32_t s = map_.successor(cfg_.self);
  while (s != cfg_.self && s != kInvalidShard) {
    if (is_reachable(s)) return s;
    s = map_.successor(s);
  }
  return kInvalidShard;
}

void ShardReplica::start(Ctx& ctx) {
  if (!active()) return;
  const uint32_t succ = map_.successor(cfg_.self);
  if (succ != kInvalidShard && succ != cfg_.self) {
    ctx.connect(map_.node(succ));
  }
}

bool ShardReplica::peer_trusted(Ctx& ctx, netsim::NodeId peer) {
  if (map_.shard_of(peer) == kInvalidShard) {
    ++rejected_peers_;
    TENET_COUNT("shard.peer_rejected");
    return false;
  }
  const sgx::AttestationOutcome* info = app_.peer_info(peer);
  // Replicas all run the same image: state flows only between enclaves
  // whose attested measurement equals our own. A patched build — even one
  // the app-level attestation policy would admit — gets no state.
  if (info == nullptr ||
      !(info->peer_measurement == ctx.env().self_measurement())) {
    ++rejected_peers_;
    TENET_COUNT("shard.peer_rejected");
    return false;
  }
  return true;
}

void ShardReplica::send_to_shard(Ctx& ctx, uint32_t shard,
                                 crypto::Bytes msg) {
  const netsim::NodeId node = map_.node(shard);
  if (node == netsim::kInvalidNode) return;
  if (app_.is_attested(node)) {
    try {
      ctx.send_secure(node, msg);
      return;
    } catch (const std::logic_error&) {
      // Channel not ready (mid-rekey): fall through to the pending queue.
    }
  }
  PendingMsg pm{std::move(msg), {}};
  TENET_TRACE_CAPTURE(pm.trace);
  pending_[node].push_back(std::move(pm));
  ctx.connect(node);
}

uint64_t ShardReplica::admit(Ctx& ctx, uint64_t key,
                             crypto::BytesView entry) {
  const uint64_t version = versions_.bump(cfg_.self);
  if (!active()) return version;
  const size_t copies =
      std::min<size_t>(cfg_.replication, cfg_.members.size()) - 1;
  if (copies > 0) {
    const uint32_t hop = next_hop();
    if (hop != kInvalidShard) {
      TENET_SPAN("replication", "replicate");
      TENET_SPAN_SHARD(cfg_.self);
      TENET_COUNT("shard.appends_sent");
      send_to_shard(ctx, hop,
                    encode_shard_append(cfg_.self, version, key,
                                        static_cast<uint32_t>(copies),
                                        append_send_ts(), entry));
    }
  }
  return version;
}

void ShardReplica::send_app(Ctx& ctx, uint32_t target,
                            crypto::BytesView inner) {
  if (target == cfg_.self) {
    if (hooks_.app_message) hooks_.app_message(ctx, cfg_.self, inner);
    return;
  }
  const uint32_t hop = next_hop();
  if (hop == kInvalidShard) return;
  TENET_SPAN("shard", "forward_app");
  TENET_COUNT("shard.app_sent");
  send_to_shard(ctx, hop,
                encode_shard_app(cfg_.self, target,
                                 static_cast<uint8_t>(cfg_.members.size()),
                                 inner));
}

void ShardReplica::send_app_direct(Ctx& ctx, uint32_t target,
                                   crypto::BytesView inner) {
  if (target == cfg_.self || target == kShardBroadcast) return;
  TENET_COUNT("shard.app_sent_direct");
  send_to_shard(ctx, target, encode_shard_app(cfg_.self, target, 1, inner));
}

void ShardReplica::begin_join(Ctx& ctx) {
  if (!active()) return;
  const uint32_t hop = next_hop();
  if (hop == kInvalidShard) return;  // alone: nothing to catch up from
  joined_ = false;
  TENET_COUNT("shard.join_requests");
  send_to_shard(ctx, hop, encode_shard_join(cfg_.self, versions_));
}

bool ShardReplica::handle_secure(Ctx& ctx, netsim::NodeId peer,
                                 crypto::BytesView payload) {
  if (!is_shard_payload(payload)) return false;
  if (!peer_trusted(ctx, peer)) return true;  // consumed (and dropped)
  try {
    crypto::Reader r(payload);
    const uint8_t tag = r.u8();
    switch (tag) {
      case kShardAppend:
        handle_append(ctx, r);
        return true;
      case kShardJoinReq: {
        const uint32_t joiner = r.u32();
        handle_join(ctx, joiner, r);
        return true;
      }
      case kShardSnapshot:
        handle_snapshot(ctx, r);
        return true;
      case kShardApp:
        handle_app(ctx, r);
        return true;
      default:
        return true;  // reserved shard-range tag: consume, ignore
    }
  } catch (const std::exception&) {
    return true;  // malformed shard message from a trusted peer: drop
  }
}

void ShardReplica::handle_append(Ctx& ctx, crypto::Reader& r) {
  const uint32_t origin = r.u32();
  const uint64_t version = r.u64();
  const uint64_t key = r.u64();
  // Honest senders never ask for more copies than the group has members;
  // clamping bounds the ring walk a hostile copies=2^32-1 would otherwise
  // buy (billions of forwarding hops from one frame).
  const uint32_t copies = std::min<uint32_t>(
      r.u32(), static_cast<uint32_t>(cfg_.members.size()));
  const uint64_t send_ts = r.u64();
  const crypto::BytesView entry = r.lv_view();
  if (send_ts != 0 && telemetry::enabled()) {
    if (hop_hist_ == nullptr) {
      hop_hist_ = &telemetry::registry().histogram(
          "shard.s" + std::to_string(cfg_.self) + ".hop_latency_us");
    }
    const uint64_t now = telemetry::tracer().clock_now();
    // A hostile peer can claim any stamp; clamp instead of underflowing.
    hop_hist_->record(now >= send_ts ? now - send_ts : 0);
  }
  if (versions_.observe(origin, version)) {
    TENET_SPAN("replication", "apply");
    TENET_SPAN_SHARD(cfg_.self);
    ++entries_applied_;
    TENET_COUNT("shard.entries_applied");
    if (hooks_.apply) hooks_.apply(ctx, origin, key, entry);
  } else {
    // Idempotent apply: duplicate or stale version for this origin.
    ++dup_appends_;
    TENET_COUNT("shard.duplicate_appends");
  }
  if (copies > 1) {
    const uint32_t hop = next_hop();
    if (hop != kInvalidShard && hop != origin) {
      // Re-stamp: each ring hop measures its own leg, not the whole walk.
      send_to_shard(ctx, hop,
                    encode_shard_append(origin, version, key, copies - 1,
                                        append_send_ts(), entry));
    }
  }
}

void ShardReplica::handle_join(Ctx& ctx, uint32_t joiner, crypto::Reader& r) {
  (void)VersionVector::deserialize(r.lv_view());  // validated for shape
  TENET_SPAN("state_transfer", "serve_join");
  TENET_SPAN_SHARD(cfg_.self);
  TENET_COUNT("shard.joins_served");
  // Always answer with our full state; the joiner's domination check
  // decides whether it installs (a stale donor is refused on their side).
  crypto::Bytes state = hooks_.snapshot ? hooks_.snapshot(ctx) : crypto::Bytes{};
  send_to_shard(ctx, joiner,
                encode_shard_snapshot(cfg_.self, versions_, state));
}

void ShardReplica::handle_snapshot(Ctx& ctx, crypto::Reader& r) {
  (void)r.u32();  // donor shard id (informational; trust came from the gate)
  const VersionVector incoming =
      VersionVector::deserialize(r.lv_view());
  const crypto::BytesView state = r.lv_view();
  if (versions_.dominates(incoming)) {
    if (incoming.dominates(versions_)) {
      joined_ = true;  // identical state: nothing to transfer
    } else {
      // Rollback attempt: the offered state is strictly older than what we
      // have provably observed (our sealed checkpoint carries the vector).
      ++rollbacks_refused_;
      TENET_COUNT("shard.rollbacks_refused");
      TENET_EVENT(kRollbackRefused, cfg_.self, cfg_.self);
    }
    return;
  }
  // The snapshot carries versions beyond ours — either it strictly
  // dominates, or the histories are incomparable. Incomparable is the
  // normal honest case under ring replication (each replica observes only
  // the origins preceding it on the ring, so a rejoiner and its donor hold
  // different slices), so it must not be lumped in with rollbacks: the
  // install hook MERGES the donor's entries into local state and the
  // vector advances by component-wise max. No component ever decreases,
  // which is the whole rollback-protection invariant.
  TENET_SPAN("state_transfer", "install_snapshot");
  TENET_SPAN_SHARD(cfg_.self);
  if (hooks_.install && hooks_.install(ctx, state)) {
    versions_.merge(incoming);
    ++snapshots_installed_;
    joined_ = true;
    TENET_COUNT("shard.snapshots_installed");
    // a = installing shard, b = total versions the merged vector covers.
    TENET_EVENT(kSnapshotInstalled, cfg_.self, cfg_.self, versions_.total());
  }
}

void ShardReplica::handle_app(Ctx& ctx, crypto::Reader& r) {
  const uint32_t from = r.u32();
  const uint32_t target = r.u32();
  const uint8_t ttl = r.u8();
  const crypto::BytesView inner = r.lv_view();
  if (target == cfg_.self || target == kShardBroadcast) {
    TENET_SPAN("shard", "app_deliver");
    if (hooks_.app_message) hooks_.app_message(ctx, from, inner);
    if (target != kShardBroadcast) return;
    // Broadcast: deliver here, then keep walking the ring until it closes
    // on the originator. The TTL bounds total deliveries even if the walk
    // skips past a freshly-dead originator.
    if (ttl <= 1) return;
    const uint32_t bhop = next_hop();
    if (bhop == kInvalidShard || bhop == from) return;
    send_to_shard(ctx, bhop, encode_shard_app(from, target, ttl - 1, inner));
    return;
  }
  if (ttl <= 1) {
    TENET_COUNT("shard.app_dropped");
    return;
  }
  TENET_SPAN("shard", "app_forward");
  const uint32_t hop = next_hop();
  if (hop == kInvalidShard) {
    TENET_COUNT("shard.app_dropped");
    return;
  }
  send_to_shard(ctx, hop, encode_shard_app(from, target, ttl - 1, inner));
}

void ShardReplica::peer_attested(Ctx& ctx, netsim::NodeId peer) {
  const uint32_t shard = map_.shard_of(peer);
  if (shard == kInvalidShard) return;
  if (!peer_trusted(ctx, peer)) return;
  const auto was_down = reachable_.find(shard);
  if (was_down != reachable_.end() && !was_down->second) {
    reachable_[shard] = true;
    TENET_EVENT(kShardUp, cfg_.self, shard);
    if (hooks_.shard_up) hooks_.shard_up(ctx, shard);
  }
  auto it = pending_.find(peer);
  if (it == pending_.end()) return;
  std::vector<PendingMsg> queued = std::move(it->second);
  pending_.erase(it);
  for (PendingMsg& pm : queued) {
    try {
      // Re-install the context captured at queue time: the hop belongs to
      // the trace that queued it, not to the attestation that unblocked it.
      TENET_TRACE_CONTEXT(pm.trace);
      ctx.send_secure(peer, pm.bytes);
    } catch (const std::logic_error&) {
      pending_[peer].push_back(std::move(pm));
    }
  }
}

void ShardReplica::peer_failed(Ctx& ctx, netsim::NodeId peer) {
  const uint32_t shard = map_.shard_of(peer);
  if (shard == kInvalidShard) return;
  mark_down(ctx, shard);
}

void ShardReplica::mark_down(Ctx& ctx, uint32_t shard) {
  if (shard == cfg_.self || !is_reachable(shard)) return;
  reachable_[shard] = false;
  TENET_COUNT("shard.peer_down");
  TENET_EVENT(kShardDown, cfg_.self, shard);  // a = the shard believed down
  if (hooks_.shard_down) hooks_.shard_down(ctx, shard);
}

void ShardReplica::set_reachable(Ctx& ctx, uint32_t shard, bool up) {
  if (shard == cfg_.self) return;
  if (!up) {
    mark_down(ctx, shard);
    return;
  }
  if (is_reachable(shard)) return;
  reachable_[shard] = true;
  TENET_COUNT("shard.peer_up");
  TENET_EVENT(kShardUp, cfg_.self, shard);
  if (hooks_.shard_up) hooks_.shard_up(ctx, shard);
  const netsim::NodeId node = map_.node(shard);
  // The restarted replica lost its channel state; re-attest eagerly so
  // queued replication traffic can flow (no-op if already attested).
  if (node != netsim::kInvalidNode && !app_.is_attested(node)) {
    ctx.connect(node);
  }
}

uint32_t ShardRouter::route_shard(uint64_t key) const {
  uint32_t shard = map_.owner(key);
  for (size_t hops = 0; hops < map_.size() && is_down(shard); ++hops) {
    shard = map_.successor(shard);
  }
  return shard;
}

}  // namespace tenet::core
