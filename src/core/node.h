// Network hosts: EnclaveNode runs a SecureApp inside an SGX platform;
// NativeNode runs plain application logic with comparable cost accounting
// but no enclave — the "w/o SGX" baseline of Table 4 and Figure 3.
#pragma once

#include <functional>
#include <memory>

#include "core/ports.h"
#include "core/secure_app.h"
#include "netsim/sim.h"
#include "sgx/platform.h"

namespace tenet::core {

/// One machine on the network: its own SGX platform, one hosted enclave,
/// and the untrusted glue that relays ocalls to the simulator and network
/// deliveries into the enclave.
class EnclaveNode : public netsim::Node {
 public:
  /// Creates the node and launches `image` (signed by `vendor`) on a fresh
  /// platform named after the node.
  EnclaveNode(netsim::Simulator& sim, sgx::Authority& authority,
              std::string name, const sgx::Vendor& vendor,
              const sgx::EnclaveImage& image);

  /// Tells the app its own address and runs on_start.
  void start();

  /// Initiates attestation toward `peer` (host-driven kick-off).
  void connect_to(netsim::NodeId peer);

  /// App-specific control ecall.
  crypto::Bytes control(uint32_t subfn, crypto::BytesView payload = {});

  /// Runtime introspection via kFnQuery.
  uint64_t query(CoreQuery what);

  void handle_message(const netsim::Message& msg) override;

  /// Opts this node's enclave into switchless transitions (DESIGN.md §10).
  /// Sticky: survives relaunch()/recover(), since a rebooted machine keeps
  /// its runtime configuration.
  void enable_switchless(const sgx::SwitchlessConfig& config = {});
  [[nodiscard]] bool switchless_enabled() const { return switchless_; }

  [[nodiscard]] sgx::Platform& platform() { return *platform_; }
  [[nodiscard]] sgx::Enclave& enclave() { return *enclave_; }
  /// Dead nodes (enclave faulted) drop all traffic — the DoS outcome the
  /// threat model permits.
  [[nodiscard]] bool dead() const { return dead_; }

  /// Drops the peer state for `peer` inside the app (kFnDisconnect), so a
  /// later connect_to() re-attests it.
  void disconnect_from(netsim::NodeId peer);

  /// Models a machine reboot: destroys the enclave and launches a fresh
  /// instance of the same image (losing ALL in-enclave state, as a real
  /// power cycle would). Re-runs on_start.
  void relaunch();

  /// Asks the app to serialize + seal its state (kFnCheckpoint). The blob
  /// is cached host-side (untrusted storage — it is sealed) and returned;
  /// empty when the app does not checkpoint.
  crypto::Bytes checkpoint();

  /// Hands a sealed checkpoint back to the app (kFnRestore). Returns true
  /// if the blob unsealed and the app accepted it.
  bool restore(crypto::BytesView sealed);

  /// Injects a real fault: corrupts one of the enclave's EPC pages from
  /// the untrusted side (the adversary toolkit's move) and touches the
  /// enclave so the MEE integrity check trips. Leaves the node dead().
  void inject_fault();

  /// Recovery path: restarts the enclave via Platform::restart_enclave
  /// and, if a checkpoint was taken, restores the sealed state into the
  /// fresh instance. Returns true if state was restored.
  bool recover();

  /// The sealed blob from the last checkpoint() (empty if none).
  [[nodiscard]] const crypto::Bytes& last_checkpoint() const {
    return last_checkpoint_;
  }

  /// Combined instruction counts: enclave + quoting enclave + host glue.
  [[nodiscard]] sgx::CostModel::Snapshot cost_snapshot() const;

 private:
  void install_ocall_handler();

  std::unique_ptr<sgx::Platform> platform_;
  sgx::Enclave* enclave_ = nullptr;
  sgx::SigStruct sigstruct_;
  sgx::EnclaveImage image_;
  crypto::Bytes last_checkpoint_;
  bool dead_ = false;
  bool switchless_ = false;
  sgx::SwitchlessConfig switchless_config_;
};

/// Plain application logic interface for the native baseline.
class PlainApp {
 public:
  virtual ~PlainApp() = default;
  virtual void on_start(class NativeNode& node) { (void)node; }
  virtual void on_message(class NativeNode& node, netsim::NodeId src,
                          uint32_t port, crypto::BytesView payload) = 0;
  virtual crypto::Bytes on_control(class NativeNode& node, uint32_t subfn,
                                   crypto::BytesView payload) {
    (void)node;
    (void)subfn;
    (void)payload;
    return {};
  }
};

/// Native host: no enclave, no attestation, cleartext messages. Charges
/// its cost model for application work (via CostScope) and one
/// instruction per I/O byte, mirroring how the paper's baseline "executes
/// applications natively without SGX".
class NativeNode : public netsim::Node {
 public:
  NativeNode(netsim::Simulator& sim, std::string name,
             std::unique_ptr<PlainApp> app);

  void start();
  crypto::Bytes control(uint32_t subfn, crypto::BytesView payload = {});
  void handle_message(const netsim::Message& msg) override;

  /// Sends application payload (plaintext) to a peer.
  void send_app(netsim::NodeId dst, uint32_t port, crypto::BytesView payload);

  [[nodiscard]] sgx::CostModel& cost() { return cost_; }
  [[nodiscard]] crypto::Drbg& rng() { return rng_; }

 private:
  std::unique_ptr<PlainApp> app_;
  sgx::CostModel cost_;
  crypto::Drbg rng_;
};

}  // namespace tenet::core
