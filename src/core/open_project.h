// Secure execution of shared code (§4).
//
// "Given the openness of the project and with the power of isolation
// provided by SGX, users now can privately and securely run the program as
// long as they share the private key for the attestation... the Tor
// foundation can create and announce the shared key for attestation
// purposes."
//
// OpenProject models a community-audited open-source codebase with
// deterministic builds: its published artifacts are the source text, the
// resulting measurement, a foundation-signed SIGSTRUCT, and the
// attestation policy ("accept exactly this measurement") that anyone can
// apply.
#pragma once

#include <string>

#include "sgx/attestation.h"
#include "sgx/image.h"

namespace tenet::core {

class OpenProject {
 public:
  /// `source` is the community-verified program text; `factory` the
  /// behaviour a faithful build produces.
  OpenProject(std::string name, std::string source, sgx::AppFactory factory);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& source() const { return source_; }

  /// Deterministic build output: everyone who builds this source gets an
  /// image with exactly this measurement.
  [[nodiscard]] sgx::EnclaveImage build() const;
  [[nodiscard]] const sgx::Measurement& measurement() const {
    return measurement_;
  }

  /// The project foundation (release signer).
  [[nodiscard]] const sgx::Vendor& foundation() const { return foundation_; }
  /// The published release certificate ("the Tor foundation publishes a
  /// signed certificate of legitimate software", §3.2).
  [[nodiscard]] const sgx::SigStruct& release() const { return release_; }

  /// The published attestation policy: admit exactly this release.
  [[nodiscard]] sgx::AttestationConfig policy(bool mutual = false,
                                              bool use_dh = true) const;

  /// Publishes a new source revision (e.g. a security release); bumps the
  /// security version so verifiers can require the fix.
  void publish_revision(std::string new_source);
  [[nodiscard]] uint32_t security_version() const { return security_version_; }

 private:
  std::string name_;
  std::string source_;
  sgx::AppFactory factory_;
  sgx::Vendor foundation_;
  uint32_t security_version_ = 1;
  sgx::Measurement measurement_{};
  sgx::SigStruct release_;
};

}  // namespace tenet::core
