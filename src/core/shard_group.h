// Sharded, replicated enclave control plane (DESIGN.md §14).
//
// ShardReplica runs *inside* an enclave as part of a SecureApp: it owns the
// replication protocol (attested ring replication, version-vector rollback
// protection, join-by-state-transfer) while the application stays in charge
// of what an "admitted entry" means. ShardRouter runs on the *untrusted*
// host: it only maps keys to shard nodes and re-points clients when a shard
// dies — it never sees plaintext state (everything shard-to-shard rides the
// attested SecureChannel).
//
// Topology: shards form a ring ordered by shard id. Each shard attests only
// its ring successor (channels are bidirectional, so the predecessor's
// channel arrives for free) — O(1) shard-to-shard handshakes per replica
// regardless of group size, which is what keeps the per-shard admission
// cost flat as the group grows. Admitted entries are replicated to the
// `replication-1` ring successors; cross-shard application messages are
// forwarded hop-by-hop along the ring with a TTL.
//
// Trust: the shard *membership list* comes from the untrusted host, but a
// listed peer gets state only after (a) mutual attestation succeeds and
// (b) its measurement equals our own — replicas run the same image, so a
// patched build is rejected at the state-transfer layer even when the
// app's attestation policy is looser. Liveness hints (peer up/down) also
// come from the host; they only steer availability (fail-closed serving
// decisions, re-forwarding), never integrity.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "core/replication.h"
#include "crypto/bytes.h"
#include "netsim/message.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace tenet::core {

class Ctx;
class SecureApp;

/// Pseudo-target for send_app: deliver the payload to every *other* member
/// of the group, ring-forwarded (each hop delivers and passes it on until
/// the walk closes back on the originator).
inline constexpr uint32_t kShardBroadcast = 0xFFFFFFFEu;

class ShardReplica {
 public:
  /// Application integration points. `apply` must be idempotent per
  /// (origin, key) — the replica already filters duplicate versions, but a
  /// snapshot install followed by replayed appends may re-present entries.
  struct Hooks {
    /// A replicated admission from `origin` reached us (first time only).
    std::function<void(Ctx&, uint32_t origin, uint64_t key,
                       crypto::BytesView entry)>
        apply;
    /// Full application state for a joining replica.
    std::function<crypto::Bytes(Ctx&)> snapshot;
    /// Integrates a donor snapshot by MERGING it into local state (union
    /// by key, donor wins on collision); false on parse failure, in which
    /// case local state must be unchanged. Called only when the donor's
    /// version vector is not dominated by ours — the donor's entries are
    /// never provably stale, and with one admitting shard per key a
    /// per-key overwrite cannot travel backwards in time. Must never
    /// discard local entries the donor lacks: under ring replication the
    /// donor sees only its slice of origins.
    std::function<bool(Ctx&, crypto::BytesView state)> install;
    /// A cross-shard application message addressed to this shard.
    std::function<void(Ctx&, uint32_t from, crypto::BytesView inner)>
        app_message;
    /// A peer shard was declared down (host hint or retry-budget
    /// exhaustion): re-forward anything we hold on its behalf.
    std::function<void(Ctx&, uint32_t shard)> shard_down;
    /// A previously-down peer shard was declared back up.
    std::function<void(Ctx&, uint32_t shard)> shard_up;
  };

  ShardReplica(SecureApp& app, ShardConfig cfg, Hooks hooks);

  /// True when the group actually has peers (>1 member). A 1-member group
  /// is configured but inert: no connects, no replication traffic, no RNG
  /// draws — byte-identical to an unsharded run.
  [[nodiscard]] bool active() const { return cfg_.members.size() > 1; }
  [[nodiscard]] uint32_t self_shard() const { return cfg_.self; }
  [[nodiscard]] const std::vector<ShardMember>& members() const {
    return cfg_.members;
  }
  [[nodiscard]] const ShardMap& map() const { return map_; }
  [[nodiscard]] uint32_t owner_shard(uint64_t key) const {
    return map_.owner(key);
  }

  /// Fail-closed availability: we serve admissions only while we can still
  /// reach a strict majority of the group (counting ourselves). A minority
  /// partition therefore stops admitting rather than diverging.
  [[nodiscard]] bool serving() const;
  [[nodiscard]] bool is_reachable(uint32_t shard) const;
  /// Lowest-numbered shard currently believed reachable (incl. self) — the
  /// deterministic choice of "compute owner" for global aggregation.
  [[nodiscard]] uint32_t lowest_reachable() const;

  [[nodiscard]] const VersionVector& versions() const { return versions_; }
  [[nodiscard]] uint64_t entries_applied() const { return entries_applied_; }
  [[nodiscard]] uint64_t duplicate_appends() const { return dup_appends_; }
  [[nodiscard]] uint64_t rollbacks_refused() const {
    return rollbacks_refused_;
  }
  [[nodiscard]] uint64_t rejected_peers() const { return rejected_peers_; }
  [[nodiscard]] uint64_t snapshots_installed() const {
    return snapshots_installed_;
  }
  /// True once a join round-trip completed (or we never needed one).
  [[nodiscard]] bool joined() const { return joined_; }

  /// Kicks off ring attestation (connects to the ring successor). Called
  /// from the configure control; a no-op for 1-member groups.
  void start(Ctx& ctx);

  /// Admits an entry originated *here*: bumps our version component and
  /// replicates to the ring successors. Returns the assigned version.
  uint64_t admit(Ctx& ctx, uint64_t key, crypto::BytesView entry);

  /// Sends an application payload to `target` shard, ring-forwarded.
  /// `target` may be kShardBroadcast to reach every other member.
  /// `inner` must not start with a byte in [0xE0, 0xEF].
  void send_app(Ctx& ctx, uint32_t target, crypto::BytesView inner);

  /// Sends an application payload straight to `target`'s node (one hop, no
  /// ring relay). For bulk exchange — a ring relay re-encrypts the payload
  /// at every intermediate shard, which is exactly the cost a sharded
  /// computation is trying to shed. First use opens (and attests) a direct
  /// channel; the message queues until the handshake lands.
  void send_app_direct(Ctx& ctx, uint32_t target, crypto::BytesView inner);

  /// Requests attested state transfer from the nearest reachable ring
  /// neighbour (restart/rejoin path). Safe to call repeatedly.
  void begin_join(Ctx& ctx);

  /// Ingest hook: called by SecureApp for authenticated kPortSecure
  /// payloads whose tag is in the shard range. Returns true when consumed.
  bool handle_secure(Ctx& ctx, netsim::NodeId peer, crypto::BytesView payload);

  /// SecureApp event chaining.
  void peer_attested(Ctx& ctx, netsim::NodeId peer);
  void peer_failed(Ctx& ctx, netsim::NodeId peer);

  /// Host liveness hint (untrusted; availability-only).
  void set_reachable(Ctx& ctx, uint32_t shard, bool up);

  /// Version vector for the sealed checkpoint (rollback-proof handoff: a
  /// restored checkpoint remembers every version it ever observed).
  [[nodiscard]] crypto::Bytes checkpoint_state() const {
    return versions_.serialize();
  }
  void restore_state(crypto::BytesView state) {
    versions_ = VersionVector::deserialize(state);
  }

 private:
  /// Measurement gate: shard messages are honored only from attested peers
  /// running our exact image. Counts + drops everything else.
  bool peer_trusted(Ctx& ctx, netsim::NodeId peer);
  /// First reachable shard walking successor-order from self (next hop for
  /// replication and ring forwarding); kInvalidShard when alone/cut off.
  [[nodiscard]] uint32_t next_hop() const;
  /// Sends (or queues until attested) a shard message to a shard's node.
  void send_to_shard(Ctx& ctx, uint32_t shard, crypto::Bytes msg);
  void mark_down(Ctx& ctx, uint32_t shard);

  void handle_append(Ctx& ctx, crypto::Reader& r);
  void handle_join(Ctx& ctx, uint32_t joiner, crypto::Reader& r);
  void handle_snapshot(Ctx& ctx, crypto::Reader& r);
  void handle_app(Ctx& ctx, crypto::Reader& r);

  /// A shard message queued behind an in-flight attestation, together with
  /// the trace context active when it was queued — flushing re-installs the
  /// context so the cross-shard hop stays on the trace that caused it
  /// instead of being attributed to the handshake that unblocked it.
  struct PendingMsg {
    crypto::Bytes bytes;
    telemetry::TraceContext trace;
  };

  SecureApp& app_;
  ShardConfig cfg_;
  ShardMap map_;
  Hooks hooks_;
  VersionVector versions_;
  std::map<uint32_t, bool> reachable_;  // peer shard -> believed up
  std::map<netsim::NodeId, std::vector<PendingMsg>> pending_;
  /// Lazily-bound "shard.s<self>.hop_latency_us" histogram (per-shard
  /// replication hop latency, fed from append send timestamps).
  telemetry::Histogram* hop_hist_ = nullptr;
  uint64_t entries_applied_ = 0;
  uint64_t dup_appends_ = 0;
  uint64_t rollbacks_refused_ = 0;
  uint64_t rejected_peers_ = 0;
  uint64_t snapshots_installed_ = 0;
  bool joined_ = true;  // cleared by begin_join until a snapshot answer
};

/// Untrusted host-side front end: maps application keys to shard nodes and
/// routes around shards the host believes are down (successor-order
/// fallback, mirroring the in-enclave replication direction so the fallback
/// shard is exactly the one holding the replica). Sees node ids only —
/// payloads stay sealed end-to-end between clients and replicas.
class ShardRouter {
 public:
  ShardRouter() = default;
  explicit ShardRouter(ShardMap map) : map_(std::move(map)) {}

  [[nodiscard]] const ShardMap& map() const { return map_; }
  void set_down(uint32_t shard, bool down) { down_[shard] = down; }
  [[nodiscard]] bool is_down(uint32_t shard) const {
    const auto it = down_.find(shard);
    return it != down_.end() && it->second;
  }

  /// Owner shard for `key`, skipping down shards in successor order.
  [[nodiscard]] uint32_t route_shard(uint64_t key) const;
  /// Node hosting route_shard(key).
  [[nodiscard]] netsim::NodeId route(uint64_t key) const {
    return map_.node(route_shard(key));
  }

 private:
  ShardMap map_;
  std::map<uint32_t, bool> down_;
};

}  // namespace tenet::core
