// Wire-level constants shared by the core runtime: ecall function numbers,
// ocall codes, and network ports used by the attested-application ABI.
#pragma once

#include <cstdint>

namespace tenet::core {

/// Ecall entry points every core-hosted enclave app understands.
enum CoreFn : uint32_t {
  kFnStart = 1,    // arg: u32 self node id
  kFnDeliver = 2,  // arg: u32 src | u32 port | LV payload
  kFnConnect = 3,  // arg: u32 peer node id — start attestation toward peer
  kFnControl = 4,  // arg: u32 subfn | LV payload — app-defined
  kFnQuery = 5,      // arg: u32 what — runtime introspection
  kFnDisconnect = 6,  // arg: u32 peer — drop peer state (allows re-attest)
  kFnTimer = 7,       // arg: u64 token — a host timer fired (see ocalls)
  kFnCheckpoint = 8,  // returns: sealed app-state blob (may be empty)
  kFnRestore = 9,     // arg: sealed blob from an earlier kFnCheckpoint
};

/// kFnQuery selectors.
enum CoreQuery : uint32_t {
  kQueryAttestationsInitiated = 1,
  kQueryAttestationsServed = 2,
  kQueryAttestedPeerCount = 3,
  kQueryRejectedRecords = 4,
  // Recovery counters (all zero unless RecoveryPolicy is enabled).
  kQueryAttestRetries = 5,   // backoff-timer retransmits of a challenge
  kQueryRehandshakes = 6,    // re-attestations of a previously attested peer
  kQueryRekeys = 7,          // channel epochs beyond the first, summed
  kQueryPeerFailures = 8,    // peers given up on after the retry budget
  // Shard/replication selectors (DESIGN.md §14; all inert defaults when
  // the app is not sharded: serving=1, joined=1, counters=0).
  kQueryShardServing = 9,           // 1 iff fail-closed majority check holds
  kQueryShardJoined = 10,           // 1 once rejoin state transfer completed
  kQueryShardVersionTotal = 11,     // sum of version-vector components
  kQueryShardEntriesApplied = 12,   // replicated entries applied (first copy)
  kQueryShardRollbacksRefused = 13, // stale snapshots refused
  kQueryShardRejectedPeers = 14,    // shard msgs dropped: wrong measurement
};

/// Ocall codes issued by core-hosted apps.
enum CoreOcall : uint32_t {
  kOcallSend = 0x10,  // payload: u32 dst | u32 port | LV bytes
  kOcallLog = 0x11,   // payload: utf-8 text (debugging aid)
  // Timer service (untrusted, like any OS clock — the enclave guards
  // against stale/forged firings with the opaque token it passes here).
  kOcallScheduleTimer = 0x12,  // payload: u64 delay_us | u64 token
                               // returns: u64 timer id
  kOcallCancelTimer = 0x13,    // payload: u64 timer id
};

/// Network ports.
enum CorePort : uint32_t {
  kPortAttestChallenge = 10,  // msg1 (Figure 1)
  kPortAttestResponse = 11,   // msg2
  kPortAttestConfirm = 12,    // msg3
  kPortChannelReset = 13,     // unauthenticated "I lost our channel" NACK
  kPortSecure = 20,           // SecureChannel records
  kPortPlain = 30,            // unprotected application messages
};

}  // namespace tenet::core
