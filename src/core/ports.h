// Wire-level constants shared by the core runtime: ecall function numbers,
// ocall codes, and network ports used by the attested-application ABI.
#pragma once

#include <cstdint>

namespace tenet::core {

/// Ecall entry points every core-hosted enclave app understands.
enum CoreFn : uint32_t {
  kFnStart = 1,    // arg: u32 self node id
  kFnDeliver = 2,  // arg: u32 src | u32 port | LV payload
  kFnConnect = 3,  // arg: u32 peer node id — start attestation toward peer
  kFnControl = 4,  // arg: u32 subfn | LV payload — app-defined
  kFnQuery = 5,      // arg: u32 what — runtime introspection
  kFnDisconnect = 6,  // arg: u32 peer — drop peer state (allows re-attest)
};

/// kFnQuery selectors.
enum CoreQuery : uint32_t {
  kQueryAttestationsInitiated = 1,
  kQueryAttestationsServed = 2,
  kQueryAttestedPeerCount = 3,
  kQueryRejectedRecords = 4,
};

/// Ocall codes issued by core-hosted apps.
enum CoreOcall : uint32_t {
  kOcallSend = 0x10,  // payload: u32 dst | u32 port | LV bytes
  kOcallLog = 0x11,   // payload: utf-8 text (debugging aid)
};

/// Network ports.
enum CorePort : uint32_t {
  kPortAttestChallenge = 10,  // msg1 (Figure 1)
  kPortAttestResponse = 11,   // msg2
  kPortAttestConfirm = 12,    // msg3
  kPortSecure = 20,           // SecureChannel records
  kPortPlain = 30,            // unprotected application messages
};

}  // namespace tenet::core
