// Control-plane replication primitives (DESIGN.md §14).
//
// The three trusted cores (routing controller, Tor directory authority,
// mbox provisioner) were single-enclave singletons. This header holds the
// generic pieces that let N enclave replicas share one logical control
// plane:
//
//  * ShardMap — a consistent-hash partition of application keys (AS
//    numbers, relay node ids, mbox session ids) across shard replicas.
//    Each shard projects `kVirtualNodes` points onto a 64-bit ring; a key
//    is owned by the first point clockwise of its hash. Deterministic
//    (splitmix64 mixing, no RNG), so every replica and the untrusted
//    ShardRouter agree on placement without coordination.
//
//  * VersionVector — per-origin-shard monotone counters. An append is
//    applied iff its version is above the local high-water mark for its
//    origin (idempotent apply; the secure channel is FIFO per origin), and
//    a state snapshot our own vector dominates is refused outright — a
//    sealed-then-rolled-back snapshot can never win. Any other snapshot
//    (dominating or incomparable) is merged: entries union in at the app
//    layer and the vector advances by component-wise max, so no component
//    ever moves backwards. Incomparable is the common honest case under
//    ring replication: with factor r < N each replica observes only the
//    r-1 origins preceding it on the ring, so a rejoiner and its donor
//    each hold origin components the other lacks.
//
//  * The shard wire codec — replication messages ride the existing
//    attested SecureChannel (kPortSecure) with a reserved tag byte range
//    0xE0..0xEF, disjoint from every application payload tag, so the
//    SecureApp ingest path can split replication traffic from app traffic
//    after a single byte inspection.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "crypto/bytes.h"
#include "netsim/message.h"

namespace tenet::core {

/// One shard replica: a logical shard id plus the enclave node hosting it.
struct ShardMember {
  uint32_t shard = 0;
  netsim::NodeId node = netsim::kInvalidNode;
};

constexpr uint32_t kInvalidShard = 0xffffffffu;

/// splitmix64 — the deterministic mixer behind ring points and key hashes.
uint64_t shard_mix64(uint64_t x);

/// Consistent-hash shard map. Immutable once built; identical inputs give
/// identical placement on every replica and on the untrusted router.
class ShardMap {
 public:
  static constexpr uint32_t kVirtualNodes = 64;

  ShardMap() = default;
  explicit ShardMap(std::vector<ShardMember> members);

  [[nodiscard]] size_t size() const { return members_.size(); }
  [[nodiscard]] const std::vector<ShardMember>& members() const {
    return members_;
  }

  /// Owning shard for `key` (consistent hashing). Requires size() > 0.
  [[nodiscard]] uint32_t owner(uint64_t key) const;

  /// Node hosting `shard`; kInvalidNode if unknown.
  [[nodiscard]] netsim::NodeId node(uint32_t shard) const;

  /// Shard hosted on `node`; kInvalidShard if the node is not a member.
  [[nodiscard]] uint32_t shard_of(netsim::NodeId node) const;

  /// Next shard id in ring order (by member index, cyclic). The ring
  /// successor is both the replication target and the forwarding direction
  /// for cross-shard messages.
  [[nodiscard]] uint32_t successor(uint32_t shard) const;

 private:
  std::vector<ShardMember> members_;           // sorted by shard id
  std::vector<std::pair<uint64_t, uint32_t>> ring_;  // (point, shard)
};

/// Per-origin-shard monotone version counters (rollback protection).
class VersionVector {
 public:
  [[nodiscard]] uint64_t get(uint32_t shard) const;
  /// Next version for an admission originated by `shard` (increments).
  uint64_t bump(uint32_t shard);
  /// Records `version` from `shard` if it advances the high-water mark.
  /// Returns false (and changes nothing) for duplicates / stale versions.
  bool observe(uint32_t shard, uint64_t version);
  /// True iff every component of `other` is <= the matching one here.
  [[nodiscard]] bool dominates(const VersionVector& other) const;
  /// Component-wise max with `other`. Monotone: no component decreases.
  void merge(const VersionVector& other);
  [[nodiscard]] uint64_t total() const;
  [[nodiscard]] bool empty() const { return high_.empty(); }

  [[nodiscard]] crypto::Bytes serialize() const;
  static VersionVector deserialize(crypto::BytesView data);

 private:
  std::map<uint32_t, uint64_t> high_;
};

/// Replication wire tags. Reserved range 0xE0..0xEF inside kPortSecure
/// records; application payloads must keep their first byte below this.
enum ShardMsg : uint8_t {
  kShardTagLo = 0xE0,
  // origin | version | key | copies | send_ts_us | LV entry. send_ts_us is
  // the sender's virtual-clock stamp (0 when telemetry is off) — receivers
  // turn it into the per-shard hop-latency histogram. Always present, so
  // the frame length never depends on the telemetry runtime switch.
  kShardAppend = 0xE1,
  kShardJoinReq = 0xE2,   // joiner | LV version-vector
  kShardSnapshot = 0xE3,  // donor | LV version-vector | LV app-state
  kShardApp = 0xE4,       // from | target | ttl | LV inner (ring-forwarded)
  kShardTagHi = 0xEF,
};

[[nodiscard]] inline bool is_shard_payload(crypto::BytesView payload) {
  return !payload.empty() && payload[0] >= kShardTagLo &&
         payload[0] <= kShardTagHi;
}

/// Shard group configuration, pushed from the host through an app-defined
/// control ecall. The host is untrusted: the config only names *who* to
/// replicate with — every named peer must still pass mutual attestation
/// plus the same-measurement check before any state flows.
struct ShardConfig {
  uint32_t self = 0;
  uint32_t replication = 2;  // copies of each admitted entry (incl. origin)
  std::vector<ShardMember> members;

  [[nodiscard]] crypto::Bytes serialize() const;
  static ShardConfig deserialize(crypto::BytesView data);
};

// --- Wire codec ---

crypto::Bytes encode_shard_append(uint32_t origin, uint64_t version,
                                  uint64_t key, uint32_t copies_left,
                                  uint64_t send_ts_us,
                                  crypto::BytesView entry);
crypto::Bytes encode_shard_join(uint32_t joiner, const VersionVector& vv);
crypto::Bytes encode_shard_snapshot(uint32_t donor, const VersionVector& vv,
                                    crypto::BytesView state);
crypto::Bytes encode_shard_app(uint32_t from, uint32_t target, uint8_t ttl,
                               crypto::BytesView inner);

}  // namespace tenet::core
