// SecureApp — the paper's design pattern as a reusable trusted base class.
//
// Every case study in §3 follows the same skeleton: run the application
// inside an enclave, remote-attest peers on first contact, bootstrap a
// secure channel from the attestation's DH exchange, and exchange all
// sensitive data over that channel. SecureApp implements the skeleton;
// applications (inter-domain controller, Tor relays/authorities,
// middleboxes) subclass it and speak through on_secure_message /
// send_secure.
//
// Attestation happens once per peer ("remote attestation occurs only at
// the beginning when two parties communicate for the first time", §5) and
// the counts are exposed for the Table 3 reproduction.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>

#include "core/shard_group.h"
#include "netsim/robust_channel.h"
#include "netsim/secure_channel.h"
#include "netsim/sim.h"
#include "sgx/attestation.h"
#include "sgx/enclave.h"

namespace tenet::core {

class SecureApp;

/// Per-call context handed to application virtuals. Valid only for the
/// duration of the call (it wraps the live EnclaveEnv).
class Ctx {
 public:
  Ctx(SecureApp& app, sgx::EnclaveEnv& env) : app_(app), env_(env) {}

  /// This node's network address.
  [[nodiscard]] netsim::NodeId self() const;

  /// Starts attestation toward `peer` (no-op if already attested or in
  /// progress). on_peer_attested fires when the handshake completes.
  void connect(netsim::NodeId peer);

  /// Sends over the established secure channel; throws std::logic_error
  /// if the peer is not attested yet.
  void send_secure(netsim::NodeId peer, crypto::BytesView payload);

  /// Sends without protection (bootstrap / baseline traffic).
  void send_plain(netsim::NodeId peer, crypto::BytesView payload,
                  uint32_t port = 0);

  /// Zero-copy framed send: builds the complete send request
  /// ([dst][port][len] + payload_len payload bytes) in one buffer, hands
  /// the payload region to `fill` (e.g. SecureChannel::seal_into), then
  /// moves the buffer into the ocall ring — no intermediate record
  /// allocation and no slot copy. Behaviour on the wire is identical to
  /// send_plain(peer, <filled bytes>, port).
  template <typename Fill>
  void send_framed(netsim::NodeId peer, uint32_t port, size_t payload_len,
                   Fill&& fill) {
    crypto::Bytes req;
    req.reserve(12 + payload_len);
    crypto::append_u32(req, peer);
    crypto::append_u32(req, port);
    crypto::append_u32(req, static_cast<uint32_t>(payload_len));
    req.resize(12 + payload_len);
    fill(std::span<uint8_t>(req.data() + 12, payload_len));
    send_frame(std::move(req));
  }

  /// Records `bytes` of retained in-enclave state (EAUG/EACCEPT path).
  void alloc(size_t bytes) { env_.heap_alloc(bytes); }

  [[nodiscard]] crypto::Drbg& rng() { return env_.rng(); }
  [[nodiscard]] sgx::EnclaveEnv& env() { return env_; }
  [[nodiscard]] SecureApp& app() { return app_; }

 private:
  /// Hands a fully framed send request to the ocall layer (move form).
  void send_frame(crypto::Bytes&& req);

  SecureApp& app_;
  sgx::EnclaveEnv& env_;
};

class SecureApp : public sgx::EnclaveApp {
 public:
  SecureApp(const sgx::Authority& authority, sgx::AttestationConfig config);

  /// Core dispatch; applications override the on_* hooks instead.
  crypto::Bytes handle_call(uint32_t fn, crypto::BytesView arg,
                            sgx::EnclaveEnv& env) final;

  /// Opts this app into fault recovery: challenge retransmission with
  /// exponential backoff + jitter, re-attestation of restarted peers
  /// (channel-reset NACKs, retried handshakes), MAC-failure rekeying, and
  /// proactive rekey before nonce exhaustion. Off by default — a
  /// non-robust app performs zero timer ocalls and zero extra RNG draws,
  /// so existing runs are byte-identical.
  void enable_recovery(const netsim::RetryPolicy& policy) {
    recovery_ = policy;
    recovery_.enabled = true;
  }

  /// The shard replica, when the host configured one (app-defined control
  /// path calls enable_sharding). Null for singleton deployments.
  [[nodiscard]] ShardReplica* shard() { return shard_.get(); }
  [[nodiscard]] const ShardReplica* shard() const { return shard_.get(); }

  // --- Introspection (also reachable via kFnQuery from the host) ---
  [[nodiscard]] uint64_t attestations_initiated() const {
    return attestations_initiated_;
  }
  [[nodiscard]] uint64_t attestations_served() const {
    return attestations_served_;
  }
  [[nodiscard]] uint64_t rejected_records() const { return rejected_records_; }
  [[nodiscard]] uint64_t attest_retries() const { return attest_retries_; }
  [[nodiscard]] uint64_t rehandshakes() const { return rehandshakes_; }
  [[nodiscard]] uint64_t rekeys() const { return rekeys_; }
  [[nodiscard]] uint64_t peer_failures() const { return peer_failures_; }
  [[nodiscard]] bool is_attested(netsim::NodeId peer) const;
  [[nodiscard]] const sgx::AttestationOutcome* peer_info(
      netsim::NodeId peer) const;
  [[nodiscard]] std::vector<netsim::NodeId> attested_peers() const;

 protected:
  // --- Application hooks ---
  virtual void on_start(Ctx& ctx) { (void)ctx; }
  /// Fires on both sides when a peer's attestation completes.
  virtual void on_peer_attested(Ctx& ctx, netsim::NodeId peer) {
    (void)ctx;
    (void)peer;
  }
  /// A record arrived on the secure channel and authenticated correctly.
  virtual void on_secure_message(Ctx& ctx, netsim::NodeId peer,
                                 crypto::BytesView payload) = 0;
  /// Unprotected traffic (port kPortPlain).
  virtual void on_plain_message(Ctx& ctx, netsim::NodeId peer,
                                crypto::BytesView payload) {
    (void)ctx;
    (void)peer;
    (void)payload;
  }
  /// App-specific host ecalls (kFnControl).
  virtual crypto::Bytes on_control(Ctx& ctx, uint32_t subfn,
                                   crypto::BytesView arg) {
    (void)ctx;
    (void)subfn;
    (void)arg;
    return {};
  }
  /// Serializes app state for a sealed checkpoint (kFnCheckpoint). Return
  /// empty to opt out; the runtime seals non-empty state so only the same
  /// enclave identity on the same platform can read it back.
  virtual crypto::Bytes on_checkpoint(Ctx& ctx) {
    (void)ctx;
    return {};
  }
  /// Reloads state produced by on_checkpoint after a restart (kFnRestore,
  /// called only when the sealed blob authenticated).
  virtual void on_restore(Ctx& ctx, crypto::BytesView state) {
    (void)ctx;
    (void)state;
  }
  /// The retry budget for `peer` ran out; its state has been dropped.
  virtual void on_peer_failed(Ctx& ctx, netsim::NodeId peer) {
    (void)ctx;
    (void)peer;
  }

  [[nodiscard]] const sgx::AttestationConfig& attestation_config() const {
    return config_;
  }

  /// Joins this app to a shard group (idempotent reconfigure). Starts ring
  /// attestation, replays any shard state carried by an earlier restored
  /// checkpoint, and from here on routes shard-tagged secure payloads
  /// (0xE0..0xEF) to the replica instead of on_secure_message. A 1-member
  /// group is inert: zero connects, zero RNG draws, zero extra messages —
  /// unsharded runs stay byte-identical.
  ShardReplica& enable_sharding(Ctx& ctx, ShardConfig cfg,
                                ShardReplica::Hooks hooks);

 private:
  friend class Ctx;

  struct PeerState {
    std::optional<sgx::ChallengerSession> challenger;
    std::optional<sgx::TargetSession> target;
    netsim::RobustChannel channel;
    sgx::AttestationOutcome info;
    bool attested = false;
    bool in_progress = false;
    // --- Recovery bookkeeping (unused when recovery is disabled) ---
    uint32_t attempts = 0;        // challenge (re)transmissions so far
    uint32_t generation = 0;      // bumped to invalidate in-flight timers
    uint64_t retry_timer = 0;     // host timer id for the pending retry
    crypto::Bytes challenge;      // cached msg1 for retransmission
    crypto::Bytes served_challenge;  // target side: last challenge seen...
    crypto::Bytes served_response;   // ...and the msg2 we answered with
  };

  void start_connect(sgx::EnclaveEnv& env, netsim::NodeId peer);
  /// Fans an attestation-complete event out to the shard replica (flushes
  /// queued replication traffic) before the application hook runs.
  void peer_attested_event(Ctx& ctx, netsim::NodeId peer);
  void drop_peer(netsim::NodeId peer) { peers_.erase(peer); }
  void deliver(sgx::EnclaveEnv& env, netsim::NodeId src, uint32_t port,
               crypto::BytesView payload);
  void raw_send(sgx::EnclaveEnv& env, netsim::NodeId dst, uint32_t port,
                crypto::BytesView payload);
  crypto::Bytes query(uint32_t what) const;

  // --- Recovery machinery (all no-ops unless recovery_.enabled) ---
  /// Installs a session key on the peer's channel, counting rekeys.
  void install_channel_key(PeerState& st, crypto::BytesView key,
                           bool initiator);
  /// Arms the backoff timer for the next challenge retransmission.
  void schedule_retry(sgx::EnclaveEnv& env, netsim::NodeId peer,
                      PeerState& st);
  /// Invalidates any pending retry timer for `st`.
  void cancel_retry(sgx::EnclaveEnv& env, PeerState& st);
  /// Returns `st` to the unattested state (keeps the map entry).
  void reset_handshake(sgx::EnclaveEnv& env, PeerState& st);
  /// Tears down and re-attests `peer` (peer restart / rekey path).
  void rehandshake_peer(sgx::EnclaveEnv& env, netsim::NodeId peer);
  /// kFnTimer entry: a host timer fired with `token`.
  void on_timer(sgx::EnclaveEnv& env, uint64_t token);

  const sgx::Authority& authority_;
  sgx::AttestationConfig config_;
  netsim::NodeId self_ = netsim::kInvalidNode;
  netsim::RetryPolicy recovery_;  // disabled by default
  std::unique_ptr<ShardReplica> shard_;     // null unless host-configured
  crypto::Bytes restored_shard_state_;      // vv from a pre-config restore
  std::map<netsim::NodeId, PeerState> peers_;
  uint64_t attestations_initiated_ = 0;
  uint64_t attestations_served_ = 0;
  uint64_t rejected_records_ = 0;
  uint64_t attest_retries_ = 0;
  uint64_t rehandshakes_ = 0;
  uint64_t rekeys_ = 0;
  uint64_t peer_failures_ = 0;
};

}  // namespace tenet::core
