// SecureApp — the paper's design pattern as a reusable trusted base class.
//
// Every case study in §3 follows the same skeleton: run the application
// inside an enclave, remote-attest peers on first contact, bootstrap a
// secure channel from the attestation's DH exchange, and exchange all
// sensitive data over that channel. SecureApp implements the skeleton;
// applications (inter-domain controller, Tor relays/authorities,
// middleboxes) subclass it and speak through on_secure_message /
// send_secure.
//
// Attestation happens once per peer ("remote attestation occurs only at
// the beginning when two parties communicate for the first time", §5) and
// the counts are exposed for the Table 3 reproduction.
#pragma once

#include <map>
#include <optional>

#include "netsim/secure_channel.h"
#include "netsim/sim.h"
#include "sgx/attestation.h"
#include "sgx/enclave.h"

namespace tenet::core {

class SecureApp;

/// Per-call context handed to application virtuals. Valid only for the
/// duration of the call (it wraps the live EnclaveEnv).
class Ctx {
 public:
  Ctx(SecureApp& app, sgx::EnclaveEnv& env) : app_(app), env_(env) {}

  /// This node's network address.
  [[nodiscard]] netsim::NodeId self() const;

  /// Starts attestation toward `peer` (no-op if already attested or in
  /// progress). on_peer_attested fires when the handshake completes.
  void connect(netsim::NodeId peer);

  /// Sends over the established secure channel; throws std::logic_error
  /// if the peer is not attested yet.
  void send_secure(netsim::NodeId peer, crypto::BytesView payload);

  /// Sends without protection (bootstrap / baseline traffic).
  void send_plain(netsim::NodeId peer, crypto::BytesView payload,
                  uint32_t port = 0);

  /// Records `bytes` of retained in-enclave state (EAUG/EACCEPT path).
  void alloc(size_t bytes) { env_.heap_alloc(bytes); }

  [[nodiscard]] crypto::Drbg& rng() { return env_.rng(); }
  [[nodiscard]] sgx::EnclaveEnv& env() { return env_; }
  [[nodiscard]] SecureApp& app() { return app_; }

 private:
  SecureApp& app_;
  sgx::EnclaveEnv& env_;
};

class SecureApp : public sgx::EnclaveApp {
 public:
  SecureApp(const sgx::Authority& authority, sgx::AttestationConfig config);

  /// Core dispatch; applications override the on_* hooks instead.
  crypto::Bytes handle_call(uint32_t fn, crypto::BytesView arg,
                            sgx::EnclaveEnv& env) final;

  // --- Introspection (also reachable via kFnQuery from the host) ---
  [[nodiscard]] uint64_t attestations_initiated() const {
    return attestations_initiated_;
  }
  [[nodiscard]] uint64_t attestations_served() const {
    return attestations_served_;
  }
  [[nodiscard]] uint64_t rejected_records() const { return rejected_records_; }
  [[nodiscard]] bool is_attested(netsim::NodeId peer) const;
  [[nodiscard]] const sgx::AttestationOutcome* peer_info(
      netsim::NodeId peer) const;
  [[nodiscard]] std::vector<netsim::NodeId> attested_peers() const;

 protected:
  // --- Application hooks ---
  virtual void on_start(Ctx& ctx) { (void)ctx; }
  /// Fires on both sides when a peer's attestation completes.
  virtual void on_peer_attested(Ctx& ctx, netsim::NodeId peer) {
    (void)ctx;
    (void)peer;
  }
  /// A record arrived on the secure channel and authenticated correctly.
  virtual void on_secure_message(Ctx& ctx, netsim::NodeId peer,
                                 crypto::BytesView payload) = 0;
  /// Unprotected traffic (port kPortPlain).
  virtual void on_plain_message(Ctx& ctx, netsim::NodeId peer,
                                crypto::BytesView payload) {
    (void)ctx;
    (void)peer;
    (void)payload;
  }
  /// App-specific host ecalls (kFnControl).
  virtual crypto::Bytes on_control(Ctx& ctx, uint32_t subfn,
                                   crypto::BytesView arg) {
    (void)ctx;
    (void)subfn;
    (void)arg;
    return {};
  }

  [[nodiscard]] const sgx::AttestationConfig& attestation_config() const {
    return config_;
  }

 private:
  friend class Ctx;

  struct PeerState {
    std::optional<sgx::ChallengerSession> challenger;
    std::optional<sgx::TargetSession> target;
    std::optional<netsim::SecureChannel> channel;
    sgx::AttestationOutcome info;
    bool attested = false;
    bool in_progress = false;
  };

  void start_connect(sgx::EnclaveEnv& env, netsim::NodeId peer);
  void drop_peer(netsim::NodeId peer) { peers_.erase(peer); }
  void deliver(sgx::EnclaveEnv& env, netsim::NodeId src, uint32_t port,
               crypto::BytesView payload);
  void raw_send(sgx::EnclaveEnv& env, netsim::NodeId dst, uint32_t port,
                crypto::BytesView payload);
  crypto::Bytes query(uint32_t what) const;

  const sgx::Authority& authority_;
  sgx::AttestationConfig config_;
  netsim::NodeId self_ = netsim::kInvalidNode;
  std::map<netsim::NodeId, PeerState> peers_;
  uint64_t attestations_initiated_ = 0;
  uint64_t attestations_served_ = 0;
  uint64_t rejected_records_ = 0;
};

}  // namespace tenet::core
