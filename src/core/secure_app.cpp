#include "core/secure_app.h"

#include "core/ports.h"

namespace tenet::core {

netsim::NodeId Ctx::self() const { return app_.self_; }

void Ctx::connect(netsim::NodeId peer) { app_.start_connect(env_, peer); }

void Ctx::send_secure(netsim::NodeId peer, crypto::BytesView payload) {
  auto it = app_.peers_.find(peer);
  if (it == app_.peers_.end() || !it->second.attested ||
      !it->second.channel.has_value()) {
    throw std::logic_error("send_secure: peer not attested");
  }
  app_.raw_send(env_, peer, kPortSecure, it->second.channel->seal(payload));
}

void Ctx::send_plain(netsim::NodeId peer, crypto::BytesView payload,
                     uint32_t port) {
  app_.raw_send(env_, peer, port == 0 ? kPortPlain : port, payload);
}

SecureApp::SecureApp(const sgx::Authority& authority,
                     sgx::AttestationConfig config)
    : authority_(authority), config_(config) {}

crypto::Bytes SecureApp::handle_call(uint32_t fn, crypto::BytesView arg,
                                     sgx::EnclaveEnv& env) {
  Ctx ctx(*this, env);
  switch (fn) {
    case kFnStart: {
      self_ = crypto::read_u32(arg, 0);
      on_start(ctx);
      return {};
    }
    case kFnDeliver: {
      crypto::Reader r(arg);
      const netsim::NodeId src = r.u32();
      const uint32_t port = r.u32();
      const crypto::Bytes payload = r.lv();
      deliver(env, src, port, payload);
      return {};
    }
    case kFnConnect: {
      start_connect(env, crypto::read_u32(arg, 0));
      return {};
    }
    case kFnControl: {
      crypto::Reader r(arg);
      const uint32_t subfn = r.u32();
      const crypto::Bytes payload = r.lv();
      return on_control(ctx, subfn, payload);
    }
    case kFnQuery:
      return query(crypto::read_u32(arg, 0));
    case kFnDisconnect:
      // Host-observed peer failure (e.g. the peer's machine rebooted and
      // its enclave lost all channel state): forget the peer so the next
      // connect() re-attests the fresh instance.
      drop_peer(crypto::read_u32(arg, 0));
      return {};
    default:
      return {};
  }
}

void SecureApp::start_connect(sgx::EnclaveEnv& env, netsim::NodeId peer) {
  PeerState& st = peers_[peer];
  if (st.attested || st.in_progress) return;
  env.heap_alloc(sizeof(PeerState));
  st.in_progress = true;
  st.challenger.emplace(authority_, config_, env.rng(),
                        config_.mutual ? &env : nullptr);
  ++attestations_initiated_;
  raw_send(env, peer, kPortAttestChallenge, st.challenger->create_challenge());
}

void SecureApp::deliver(sgx::EnclaveEnv& env, netsim::NodeId src,
                        uint32_t port, crypto::BytesView payload) {
  Ctx ctx(*this, env);
  switch (port) {
    case kPortAttestChallenge: {
      PeerState& st = peers_[src];
      if (st.attested) return;  // attest once per peer (§5); ignore repeats
      if (st.in_progress && st.challenger.has_value()) {
        // Cross-connect: both sides initiated simultaneously. Deterministic
        // tie-break: the lower node id keeps the challenger role; the
        // higher one yields and answers as target.
        if (self_ < src) return;
        st.challenger.reset();
      }
      env.heap_alloc(sizeof(PeerState));
      st.target.emplace(authority_, config_, env);
      const crypto::Bytes msg2 = st.target->handle_challenge(payload);
      if (msg2.empty()) {
        peers_.erase(src);  // rejected (bad request or failed mutual check)
        return;
      }
      ++attestations_served_;
      if (config_.mutual) st.info = st.target->peer();
      if (config_.use_dh) {
        st.channel.emplace(st.target->session_key("channel"),
                           /*initiator=*/false);
      } else {
        // Attestation-only mode: the peer is attested as soon as we reply.
        st.attested = true;
      }
      raw_send(env, src, kPortAttestResponse, msg2);
      if (!config_.use_dh) on_peer_attested(ctx, src);
      return;
    }
    case kPortAttestResponse: {
      const auto it = peers_.find(src);
      if (it == peers_.end() || !it->second.challenger.has_value()) return;
      PeerState& st = it->second;
      if (st.attested) return;  // stale response for an abandoned session
      st.info = st.challenger->consume_response(payload);
      st.in_progress = false;
      if (!st.info.ok) {
        peers_.erase(src);
        return;
      }
      st.attested = true;
      if (config_.use_dh) {
        st.channel.emplace(st.challenger->session_key("channel"),
                           /*initiator=*/true);
        raw_send(env, src, kPortAttestConfirm, st.challenger->create_confirm());
      }
      on_peer_attested(ctx, src);
      return;
    }
    case kPortAttestConfirm: {
      const auto it = peers_.find(src);
      if (it == peers_.end() || !it->second.target.has_value()) return;
      PeerState& st = it->second;
      if (!st.target->verify_confirm(payload)) {
        peers_.erase(src);
        return;
      }
      st.attested = true;
      st.in_progress = false;
      on_peer_attested(ctx, src);
      return;
    }
    case kPortSecure: {
      const auto it = peers_.find(src);
      if (it == peers_.end() || !it->second.channel.has_value() ||
          !it->second.attested) {
        ++rejected_records_;
        return;
      }
      auto plaintext = it->second.channel->open(payload);
      if (!plaintext.has_value()) {
        ++rejected_records_;  // tampered / replayed / misdirected record
        return;
      }
      env.heap_alloc(plaintext->size());
      on_secure_message(ctx, src, *plaintext);
      return;
    }
    default:
      on_plain_message(ctx, src, payload);
      return;
  }
}

void SecureApp::raw_send(sgx::EnclaveEnv& env, netsim::NodeId dst,
                         uint32_t port, crypto::BytesView payload) {
  crypto::Bytes req;
  crypto::append_u32(req, dst);
  crypto::append_u32(req, port);
  crypto::append_lv(req, payload);
  (void)env.ocall(kOcallSend, req);
}

crypto::Bytes SecureApp::query(uint32_t what) const {
  uint64_t value = 0;
  switch (what) {
    case kQueryAttestationsInitiated: value = attestations_initiated_; break;
    case kQueryAttestationsServed: value = attestations_served_; break;
    case kQueryAttestedPeerCount: value = attested_peers().size(); break;
    case kQueryRejectedRecords: value = rejected_records_; break;
    default: break;
  }
  crypto::Bytes out;
  crypto::append_u64(out, value);
  return out;
}

bool SecureApp::is_attested(netsim::NodeId peer) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() && it->second.attested;
}

const sgx::AttestationOutcome* SecureApp::peer_info(
    netsim::NodeId peer) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() && it->second.info.ok ? &it->second.info : nullptr;
}

std::vector<netsim::NodeId> SecureApp::attested_peers() const {
  std::vector<netsim::NodeId> out;
  for (const auto& [id, st] : peers_) {
    if (st.attested) out.push_back(id);
  }
  return out;
}

}  // namespace tenet::core
