#include "core/secure_app.h"

#include <algorithm>

#include "core/ports.h"
#include "sgx/sealing.h"
#include "telemetry/events.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace tenet::core {

namespace {
/// Timer tokens bind (peer, generation) so a firing that outlives the
/// handshake it was armed for — or a token forged by the untrusted host —
/// can never act on fresher state.
uint64_t retry_token(netsim::NodeId peer, uint32_t generation) {
  return (static_cast<uint64_t>(peer) << 32) | generation;
}

constexpr std::string_view kCheckpointLabel = "app.checkpoint";

/// Checkpoint-wrap magic for sharded apps: [magic | LV shard-vv | LV app].
/// Unsharded checkpoints stay the raw app bytes (byte-identical to before
/// sharding existed); the restore path only unwraps when the magic AND the
/// length structure match exactly.
constexpr uint32_t kShardCheckpointMagic = 0x53485244;  // "SHRD"
}  // namespace

netsim::NodeId Ctx::self() const { return app_.self_; }

void Ctx::connect(netsim::NodeId peer) { app_.start_connect(env_, peer); }

void Ctx::send_secure(netsim::NodeId peer, crypto::BytesView payload) {
  // Request origin: an application-level secure send starts a trace unless
  // the caller is already inside one (e.g. responding to a delivery).
  TENET_TRACE_ROOT("app", "send_secure");
  auto it = app_.peers_.find(peer);
  if (it == app_.peers_.end() || !it->second.attested ||
      !it->second.channel.ready()) {
    throw std::logic_error("send_secure: peer not attested");
  }
  // Zero-copy record path: the record is sealed directly into the framed
  // send request, which then moves into the switchless ring — the sealed
  // bytes are written exactly once.
  netsim::RobustChannel& chan = it->second.channel;
  send_framed(peer, kPortSecure,
              netsim::RobustChannel::sealed_size(payload.size()),
              [&](std::span<uint8_t> out) { chan.seal_into(payload, out); });
  if (app_.recovery_.enabled && it->second.channel.needs_rekey()) {
    // Approaching nonce exhaustion: rekey before seal() starts throwing.
    app_.rehandshake_peer(env_, peer);
  }
}

void Ctx::send_frame(crypto::Bytes&& req) {
  // Fire-and-forget: under switchless mode the frame itself becomes the
  // ring slot (the kOcallSend handler returns nothing).
  env_.ocall_async(kOcallSend, std::move(req));
}

void Ctx::send_plain(netsim::NodeId peer, crypto::BytesView payload,
                     uint32_t port) {
  app_.raw_send(env_, peer, port == 0 ? kPortPlain : port, payload);
}

SecureApp::SecureApp(const sgx::Authority& authority,
                     sgx::AttestationConfig config)
    : authority_(authority), config_(config) {}

crypto::Bytes SecureApp::handle_call(uint32_t fn, crypto::BytesView arg,
                                     sgx::EnclaveEnv& env) {
  Ctx ctx(*this, env);
  switch (fn) {
    case kFnStart: {
      self_ = crypto::read_u32(arg, 0);
      on_start(ctx);
      return {};
    }
    case kFnDeliver: {
      crypto::Reader r(arg);
      const netsim::NodeId src = r.u32();
      const uint32_t port = r.u32();
      const crypto::Bytes payload = r.lv();
      deliver(env, src, port, payload);
      return {};
    }
    case kFnConnect: {
      start_connect(env, crypto::read_u32(arg, 0));
      return {};
    }
    case kFnControl: {
      crypto::Reader r(arg);
      const uint32_t subfn = r.u32();
      const crypto::Bytes payload = r.lv();
      return on_control(ctx, subfn, payload);
    }
    case kFnQuery:
      return query(crypto::read_u32(arg, 0));
    case kFnDisconnect:
      // Host-observed peer failure (e.g. the peer's machine rebooted and
      // its enclave lost all channel state): forget the peer so the next
      // connect() re-attests the fresh instance.
      drop_peer(crypto::read_u32(arg, 0));
      return {};
    case kFnTimer:
      on_timer(env, crypto::read_u64(arg, 0));
      return {};
    case kFnCheckpoint: {
      crypto::Bytes state = on_checkpoint(ctx);
      if (shard_ != nullptr) {
        // Sharded apps seal the version vector alongside the app state so a
        // restored replica provably remembers every version it observed —
        // the rollback-refusal check in ShardReplica depends on this.
        crypto::Bytes wrapped;
        crypto::append_u32(wrapped, kShardCheckpointMagic);
        crypto::append_lv(wrapped, shard_->checkpoint_state());
        crypto::append_lv(wrapped, state);
        state = std::move(wrapped);
      }
      if (state.empty()) return {};
      TENET_COUNT("app.checkpoints");
      return sgx::seal_data(env, crypto::to_bytes(kCheckpointLabel), state);
    }
    case kFnRestore: {
      const auto state =
          sgx::unseal_data(env, crypto::to_bytes(kCheckpointLabel), arg);
      if (!state.has_value()) return {};
      TENET_COUNT("app.restores");
      crypto::BytesView app_state = *state;
      // Unwrap a shard checkpoint (restores typically land before the host
      // re-issues the shard configure control; stash the vector until
      // enable_sharding runs).
      if (state->size() >= 12 &&
          crypto::read_u32(*state, 0) == kShardCheckpointMagic) {
        try {
          crypto::Reader r(app_state);
          (void)r.u32();
          crypto::Bytes shard_state = r.lv();
          const crypto::BytesView inner = r.lv_view();
          if (r.done()) {
            if (shard_ != nullptr) {
              shard_->restore_state(shard_state);
            } else {
              restored_shard_state_ = std::move(shard_state);
            }
            app_state = inner;
          }
        } catch (const std::exception&) {
          // Not a wrapped checkpoint after all: hand through unchanged.
        }
      }
      on_restore(ctx, app_state);
      crypto::Bytes ok;
      ok.push_back(1);
      return ok;
    }
    default:
      return {};
  }
}

void SecureApp::install_channel_key(PeerState& st, crypto::BytesView key,
                                    bool initiator) {
  if (st.channel.epoch() > 0) {
    ++rekeys_;
    // a = the channel epoch being replaced (1-based).
    TENET_EVENT(kRekey, self_, st.channel.epoch());
  }
  st.channel.install(key, initiator);
}

void SecureApp::schedule_retry(sgx::EnclaveEnv& env, netsim::NodeId peer,
                               PeerState& st) {
  const double delay = netsim::backoff_delay(recovery_, st.attempts, env.rng());
  crypto::Bytes req;
  crypto::append_u64(req, static_cast<uint64_t>(delay * 1e6));
  crypto::append_u64(req, retry_token(peer, st.generation));
  const crypto::Bytes res = env.ocall(kOcallScheduleTimer, req);
  // Iago note: the id comes from the untrusted host and is only ever
  // handed back to it (cancel); a lie costs us nothing but the timer.
  st.retry_timer = res.size() >= 8 ? crypto::read_u64(res, 0) : 0;
}

void SecureApp::cancel_retry(sgx::EnclaveEnv& env, PeerState& st) {
  ++st.generation;  // stale firings no-op even if the host never cancels
  if (st.retry_timer != 0) {
    crypto::Bytes req;
    crypto::append_u64(req, st.retry_timer);
    (void)env.ocall(kOcallCancelTimer, req);
    st.retry_timer = 0;
  }
  st.attempts = 0;
}

void SecureApp::reset_handshake(sgx::EnclaveEnv& env, PeerState& st) {
  cancel_retry(env, st);
  st.challenger.reset();
  st.target.reset();
  st.channel.reset();  // keeps the epoch count, drops the key
  st.attested = false;
  st.in_progress = false;
  st.challenge.clear();
  st.served_challenge.clear();
  st.served_response.clear();
}

void SecureApp::rehandshake_peer(sgx::EnclaveEnv& env, netsim::NodeId peer) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  TENET_COUNT("app.rehandshakes");
  ++rehandshakes_;
  reset_handshake(env, it->second);
  start_connect(env, peer);
}

void SecureApp::on_timer(sgx::EnclaveEnv& env, uint64_t token) {
  if (!recovery_.enabled) return;
  const auto peer = static_cast<netsim::NodeId>(token >> 32);
  const auto generation = static_cast<uint32_t>(token & 0xffffffffu);
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  PeerState& st = it->second;
  if (st.generation != generation || st.attested || !st.in_progress ||
      !st.challenger.has_value()) {
    return;  // stale or forged firing
  }
  st.retry_timer = 0;
  if (st.attempts + 1 >= recovery_.max_attempts) {
    // Retry budget exhausted: give up so the app can route around.
    TENET_COUNT("app.peer_failures");
    ++peer_failures_;
    peers_.erase(it);
    Ctx ctx(*this, env);
    if (shard_ != nullptr) shard_->peer_failed(ctx, peer);
    on_peer_failed(ctx, peer);
    return;
  }
  ++st.attempts;
  ++attest_retries_;
  TENET_COUNT("app.attest_retries");
  {
    // The retry timer fired under the context captured when it was armed,
    // i.e. the original handshake's trace; mark the re-sent frame as a
    // retransmission so the analyzer can tell it from the first copy.
    TENET_TRACE_CONTEXT_FLAGS(telemetry::tracer().context(),
                              telemetry::TraceContext::kFlagRetx);
    TENET_SPAN("app", "retransmit_challenge");
    raw_send(env, peer, kPortAttestChallenge, st.challenge);
  }
  schedule_retry(env, peer, st);
}

void SecureApp::peer_attested_event(Ctx& ctx, netsim::NodeId peer) {
  if (shard_ != nullptr) shard_->peer_attested(ctx, peer);
  on_peer_attested(ctx, peer);
}

ShardReplica& SecureApp::enable_sharding(Ctx& ctx, ShardConfig cfg,
                                         ShardReplica::Hooks hooks) {
  ctx.alloc(sizeof(ShardReplica) +
            cfg.members.size() * sizeof(ShardMember));
  shard_ = std::make_unique<ShardReplica>(*this, std::move(cfg),
                                          std::move(hooks));
  if (!restored_shard_state_.empty()) {
    shard_->restore_state(restored_shard_state_);
    restored_shard_state_.clear();
  }
  shard_->start(ctx);
  return *shard_;
}

void SecureApp::start_connect(sgx::EnclaveEnv& env, netsim::NodeId peer) {
  // Request origin: everything downstream of this handshake — challenge,
  // response, confirm, retries — joins the trace minted here.
  TENET_TRACE_ROOT("app", "connect");
  PeerState& st = peers_[peer];
  if (st.attested || st.in_progress) return;
  env.heap_alloc(sizeof(PeerState));
  st.in_progress = true;
  st.challenger.emplace(authority_, config_, env.rng(),
                        config_.mutual ? &env : nullptr);
  ++attestations_initiated_;
  st.challenge = st.challenger->create_challenge();
  raw_send(env, peer, kPortAttestChallenge, st.challenge);
  if (recovery_.enabled) {
    st.attempts = 0;
    schedule_retry(env, peer, st);
  }
}

void SecureApp::deliver(sgx::EnclaveEnv& env, netsim::NodeId src,
                        uint32_t port, crypto::BytesView payload) {
  Ctx ctx(*this, env);
  switch (port) {
    case kPortAttestChallenge: {
      PeerState& st = peers_[src];
      if (st.attested) {
        // Attest once per peer (§5); ignore repeats. In recovery mode a
        // fresh challenge means the peer restarted and lost its channel
        // state — serve a new handshake. (A forged challenge can force
        // this too; that is a DoS-only move the threat model permits.)
        if (!recovery_.enabled) return;
        TENET_COUNT("app.rehandshakes");
        ++rehandshakes_;
        reset_handshake(env, st);
      }
      if (st.in_progress && st.challenger.has_value()) {
        // Cross-connect: both sides initiated simultaneously. Deterministic
        // tie-break: the lower node id keeps the challenger role; the
        // higher one yields and answers as target.
        if (self_ < src) return;
        st.challenger.reset();
        if (recovery_.enabled) cancel_retry(env, st);
      }
      if (st.target.has_value()) {
        if (recovery_.enabled &&
            std::equal(payload.begin(), payload.end(),
                       st.served_challenge.begin(),
                       st.served_challenge.end())) {
          // Duplicate or retransmitted challenge (our msg2 was lost):
          // replay the cached response instead of clobbering the session.
          raw_send(env, src, kPortAttestResponse, st.served_response);
          return;
        }
        st.target.reset();  // a new challenge replaces the old session
      }
      env.heap_alloc(sizeof(PeerState));
      st.target.emplace(authority_, config_, env);
      const crypto::Bytes msg2 = st.target->handle_challenge(payload);
      if (msg2.empty()) {
        peers_.erase(src);  // rejected (bad request or failed mutual check)
        return;
      }
      ++attestations_served_;
      if (config_.mutual) st.info = st.target->peer();
      if (config_.use_dh) {
        install_channel_key(st, st.target->session_key("channel"),
                            /*initiator=*/false);
      } else {
        // Attestation-only mode: the peer is attested as soon as we reply.
        st.attested = true;
      }
      if (recovery_.enabled) {
        st.served_challenge.assign(payload.begin(), payload.end());
        st.served_response = msg2;
      }
      raw_send(env, src, kPortAttestResponse, msg2);
      if (!config_.use_dh) peer_attested_event(ctx, src);
      return;
    }
    case kPortAttestResponse: {
      const auto it = peers_.find(src);
      if (it == peers_.end() || !it->second.challenger.has_value()) return;
      PeerState& st = it->second;
      if (st.attested) return;  // stale response for an abandoned session
      st.info = st.challenger->consume_response(payload);
      st.in_progress = false;
      if (!st.info.ok) {
        peers_.erase(src);
        return;
      }
      st.attested = true;
      if (recovery_.enabled) cancel_retry(env, st);
      if (config_.use_dh) {
        install_channel_key(st, st.challenger->session_key("channel"),
                            /*initiator=*/true);
        raw_send(env, src, kPortAttestConfirm, st.challenger->create_confirm());
      }
      peer_attested_event(ctx, src);
      return;
    }
    case kPortAttestConfirm: {
      const auto it = peers_.find(src);
      if (it == peers_.end() || !it->second.target.has_value()) return;
      PeerState& st = it->second;
      if (st.attested) return;  // duplicate confirm
      if (!st.target->verify_confirm(payload)) {
        peers_.erase(src);
        return;
      }
      st.attested = true;
      st.in_progress = false;
      peer_attested_event(ctx, src);
      return;
    }
    case kPortChannelReset: {
      // Unauthenticated NACK: the peer claims it cannot open our records
      // (it restarted and lost the key). We only ever react by starting a
      // fresh attestation, so a forged reset buys an attacker nothing but
      // one handshake's worth of work — DoS-class, per the threat model.
      if (!recovery_.enabled) return;
      const auto it = peers_.find(src);
      if (it == peers_.end() || !it->second.attested) return;
      rehandshake_peer(env, src);
      return;
    }
    case kPortSecure: {
      const auto it = peers_.find(src);
      if (it == peers_.end() || !it->second.channel.ready()) {
        ++rejected_records_;
        if (recovery_.enabled) {
          // We cannot even parse the record — tell the sender to re-attest.
          TENET_COUNT("app.channel_resets_sent");
          raw_send(env, src, kPortChannelReset, {});
        }
        return;
      }
      PeerState& st = it->second;
      if (!st.attested && !(recovery_.enabled && st.target.has_value())) {
        ++rejected_records_;
        return;
      }
      auto plaintext = st.channel.open(payload);
      if (!plaintext.has_value()) {
        ++rejected_records_;  // tampered / replayed / misdirected record
        if (recovery_.enabled && st.attested &&
            st.channel.consecutive_failures() >=
                recovery_.mac_failure_threshold) {
          // A burst of MAC failures on an established channel: the peer
          // likely rekeyed or restarted behind our back. Re-attest.
          rehandshake_peer(env, src);
        }
        return;
      }
      if (!st.attested) {
        // Implicit key confirmation: the confirm (msg3) was lost, but a
        // record that authenticates under the session key proves the
        // challenger holds it.
        st.attested = true;
        st.in_progress = false;
        peer_attested_event(ctx, src);
      }
      env.heap_alloc(plaintext->size());
      if (shard_ != nullptr && is_shard_payload(*plaintext) &&
          shard_->handle_secure(ctx, src, *plaintext)) {
        return;  // replication traffic never reaches the application hook
      }
      on_secure_message(ctx, src, *plaintext);
      return;
    }
    default:
      on_plain_message(ctx, src, payload);
      return;
  }
}

void SecureApp::raw_send(sgx::EnclaveEnv& env, netsim::NodeId dst,
                         uint32_t port, crypto::BytesView payload) {
  crypto::Bytes req;
  crypto::append_u32(req, dst);
  crypto::append_u32(req, port);
  crypto::append_lv(req, payload);
  // Fire-and-forget: under switchless mode this is the hot path that
  // skips the EEXIT/ERESUME pair (the kOcallSend handler returns nothing).
  env.ocall_async(kOcallSend, req);
}

crypto::Bytes SecureApp::query(uint32_t what) const {
  uint64_t value = 0;
  switch (what) {
    case kQueryAttestationsInitiated: value = attestations_initiated_; break;
    case kQueryAttestationsServed: value = attestations_served_; break;
    case kQueryAttestedPeerCount: value = attested_peers().size(); break;
    case kQueryRejectedRecords: value = rejected_records_; break;
    case kQueryAttestRetries: value = attest_retries_; break;
    case kQueryRehandshakes: value = rehandshakes_; break;
    case kQueryRekeys: value = rekeys_; break;
    case kQueryPeerFailures: value = peer_failures_; break;
    case kQueryShardServing:
      value = shard_ == nullptr || shard_->serving() ? 1 : 0;
      break;
    case kQueryShardJoined:
      value = shard_ == nullptr || shard_->joined() ? 1 : 0;
      break;
    case kQueryShardVersionTotal:
      value = shard_ != nullptr ? shard_->versions().total() : 0;
      break;
    case kQueryShardEntriesApplied:
      value = shard_ != nullptr ? shard_->entries_applied() : 0;
      break;
    case kQueryShardRollbacksRefused:
      value = shard_ != nullptr ? shard_->rollbacks_refused() : 0;
      break;
    case kQueryShardRejectedPeers:
      value = shard_ != nullptr ? shard_->rejected_peers() : 0;
      break;
    default: break;
  }
  crypto::Bytes out;
  crypto::append_u64(out, value);
  return out;
}

bool SecureApp::is_attested(netsim::NodeId peer) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() && it->second.attested;
}

const sgx::AttestationOutcome* SecureApp::peer_info(
    netsim::NodeId peer) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() && it->second.info.ok ? &it->second.info : nullptr;
}

std::vector<netsim::NodeId> SecureApp::attested_peers() const {
  std::vector<netsim::NodeId> out;
  for (const auto& [id, st] : peers_) {
    if (st.attested) out.push_back(id);
  }
  return out;
}

}  // namespace tenet::core
