// Small-buffer-optimized move-only callable for simulator timers.
//
// Every retry, rekey, keepalive and scrape in the system rides a timer,
// and std::function heap-allocates for any capture beyond a pointer or
// two. SmallFn stores captures up to kInlineBytes in the event record
// itself (pool slot, see event_engine.h), so scheduling a timer touches
// no allocator on the hot path; oversized captures fall back to the heap
// transparently. Move-only: timer callbacks are fired exactly once and
// never copied.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tenet::netsim {

class SmallFn {
 public:
  /// Covers every capture list in the tree today ([this, token], a few
  /// references); measured captures are 8-32 bytes.
  static constexpr size_t kInlineBytes = 64;

  SmallFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  /// Destroys the stored callable (and frees its captures) immediately.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(this);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(this); }

 private:
  struct Ops {
    void (*invoke)(SmallFn*);
    /// Move-constructs src's callable into dst and destroys src's.
    void (*relocate)(SmallFn* dst, SmallFn* src);
    void (*destroy)(SmallFn*);
  };

  template <typename Fn>
  static Fn* inline_ptr(SmallFn* s) {
    return std::launder(reinterpret_cast<Fn*>(s->buf_));
  }

  template <typename Fn>
  struct InlineOps {
    static void invoke(SmallFn* s) { (*inline_ptr<Fn>(s))(); }
    static void relocate(SmallFn* dst, SmallFn* src) {
      ::new (static_cast<void*>(dst->buf_)) Fn(std::move(*inline_ptr<Fn>(src)));
      inline_ptr<Fn>(src)->~Fn();
    }
    static void destroy(SmallFn* s) { inline_ptr<Fn>(s)->~Fn(); }
    static constexpr Ops kOps{&invoke, &relocate, &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static void invoke(SmallFn* s) { (*static_cast<Fn*>(s->heap_))(); }
    static void relocate(SmallFn* dst, SmallFn* src) {
      dst->heap_ = src->heap_;
      src->heap_ = nullptr;
    }
    static void destroy(SmallFn* s) { delete static_cast<Fn*>(s->heap_); }
    static constexpr Ops kOps{&invoke, &relocate, &destroy};
  };

  void move_from(SmallFn& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(this, &other);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* heap_ = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace tenet::netsim
