#include "netsim/secure_channel.h"

#include "telemetry/telemetry.h"

namespace tenet::netsim {

namespace {
constexpr uint64_t kInitiatorNonce = 0x494e4954;  // "INIT"
constexpr uint64_t kResponderNonce = 0x52455350;  // "RESP"
}  // namespace

SecureChannel::SecureChannel(crypto::BytesView key, bool initiator)
    : aead_(key),
      send_nonce_(initiator ? kInitiatorNonce : kResponderNonce),
      recv_nonce_(initiator ? kResponderNonce : kInitiatorNonce) {
  TENET_COUNT("chan.channels");
}

SecureChannel::SecureChannel(crypto::BytesView key, bool initiator,
                             const Resume& resume)
    : aead_(key),
      send_nonce_(initiator ? kInitiatorNonce : kResponderNonce),
      recv_nonce_(initiator ? kResponderNonce : kInitiatorNonce),
      send_seq_(resume.send_seq),
      next_recv_seq_(resume.next_recv_seq),
      received_(resume.received) {
  TENET_COUNT("chan.resumes");
}

void SecureChannel::set_seq_limit(uint64_t hard_limit, uint64_t rekey_margin) {
  if (hard_limit == 0 || rekey_margin >= hard_limit) {
    throw std::invalid_argument("SecureChannel::set_seq_limit: bad limits");
  }
  seq_limit_ = hard_limit;
  rekey_margin_ = rekey_margin;
}

void SecureChannel::advance_send_seq(uint64_t seq) {
  if (seq < send_seq_) {
    throw std::invalid_argument(
        "SecureChannel::advance_send_seq: cannot rewind");
  }
  send_seq_ = seq;
}

crypto::Bytes SecureChannel::seal(crypto::BytesView plaintext) {
  if (send_seq_ >= seq_limit_) {
    TENET_COUNT("chan.nonce_exhausted");
    throw NonceExhaustedError(
        "SecureChannel::seal: send sequence exhausted; rekey required");
  }
  TENET_COUNT("chan.records_sealed");
  TENET_COUNT("chan.bytes_sealed", plaintext.size());
  TENET_HISTOGRAM("chan.record_bytes", plaintext.size());
  return aead_.seal(send_nonce_, send_seq_++, plaintext);
}

void SecureChannel::seal_into(crypto::BytesView plaintext,
                              std::span<uint8_t> out) {
  if (send_seq_ >= seq_limit_) {
    TENET_COUNT("chan.nonce_exhausted");
    throw NonceExhaustedError(
        "SecureChannel::seal_into: send sequence exhausted; rekey required");
  }
  TENET_COUNT("chan.records_sealed");
  TENET_COUNT("chan.bytes_sealed", plaintext.size());
  TENET_HISTOGRAM("chan.record_bytes", plaintext.size());
  aead_.seal_into(send_nonce_, send_seq_++, plaintext, {}, out);
}

void SecureChannel::seal_batch(std::span<const SealSlot> slots) {
  // All-or-nothing exhaustion check: a batch never straddles the limit.
  if (send_seq_ + slots.size() > seq_limit_) {
    TENET_COUNT("chan.nonce_exhausted");
    throw NonceExhaustedError(
        "SecureChannel::seal_batch: send sequence exhausted; rekey required");
  }
  std::vector<crypto::Aead::SealJob> jobs;
  jobs.reserve(slots.size());
  uint64_t seq = send_seq_;
  for (const SealSlot& slot : slots) {
    TENET_COUNT("chan.records_sealed");
    TENET_COUNT("chan.bytes_sealed", slot.plaintext.size());
    TENET_HISTOGRAM("chan.record_bytes", slot.plaintext.size());
    jobs.push_back(crypto::Aead::SealJob{send_nonce_, seq++, slot.plaintext,
                                         crypto::BytesView{}, slot.out});
  }
  aead_.seal_batch(jobs);
  send_seq_ = seq;
}

std::optional<crypto::Bytes> SecureChannel::open(crypto::BytesView record) {
  if (record.size() < crypto::Aead::kOverhead) return std::nullopt;
  // Direction check: the nonce in the header must be the peer's.
  if (crypto::read_u64(record, 0) != recv_nonce_) return std::nullopt;
  const uint64_t seq = crypto::Aead::record_seq(record);
  if (seq < next_recv_seq_) {
    TENET_COUNT("chan.replays_rejected");
    return std::nullopt;  // replay / reorder below window
  }
  auto plaintext = aead_.open(record);
  if (!plaintext.has_value()) {
    TENET_COUNT("chan.open_failures");
    return std::nullopt;
  }
  next_recv_seq_ = seq + 1;
  ++received_;
  TENET_COUNT("chan.records_opened");
  return plaintext;
}

void SecureChannel::open_batch(std::span<const std::span<uint8_t>> records,
                               std::span<std::optional<size_t>> results) {
  if (results.size() != records.size()) {
    throw std::invalid_argument("SecureChannel::open_batch: results size");
  }
  // Phase 1: one multi-buffer MAC dispatch over every parseable record.
  std::vector<crypto::Aead::OpenJob> jobs;
  jobs.reserve(records.size());
  for (const std::span<uint8_t> record : records) {
    jobs.push_back(crypto::Aead::OpenJob{record, crypto::BytesView{}});
  }
  std::vector<uint8_t> ok(records.size(), 0);
  aead_.verify_batch(jobs, ok);

  // Phase 2: the scalar acceptance walk — direction nonce, replay window
  // (stateful: each accepted record advances the cursor for the next), and
  // the precomputed MAC verdict, emitting the same counters in order.
  std::vector<std::span<uint8_t>> accepted;
  accepted.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const std::span<uint8_t> record = records[i];
    if (record.size() < crypto::Aead::kOverhead) {
      results[i] = std::nullopt;
      continue;
    }
    const crypto::BytesView view(record.data(), record.size());
    if (crypto::read_u64(view, 0) != recv_nonce_) {
      results[i] = std::nullopt;
      continue;
    }
    const uint64_t seq = crypto::Aead::record_seq(view);
    if (seq < next_recv_seq_) {
      TENET_COUNT("chan.replays_rejected");
      results[i] = std::nullopt;
      continue;
    }
    if (ok[i] == 0) {
      TENET_COUNT("chan.open_failures");
      results[i] = std::nullopt;
      continue;
    }
    next_recv_seq_ = seq + 1;
    ++received_;
    TENET_COUNT("chan.records_opened");
    results[i] = record.size() - crypto::Aead::kOverhead;
    accepted.push_back(record);
  }

  // Phase 3: one CTR dispatch decrypts every accepted record in place.
  aead_.decrypt_batch(accepted);
}

std::optional<size_t> SecureChannel::open_in_place(
    std::span<uint8_t> record) {
  if (record.size() < crypto::Aead::kOverhead) return std::nullopt;
  const crypto::BytesView view(record.data(), record.size());
  if (crypto::read_u64(view, 0) != recv_nonce_) return std::nullopt;
  const uint64_t seq = crypto::Aead::record_seq(view);
  if (seq < next_recv_seq_) {
    TENET_COUNT("chan.replays_rejected");
    return std::nullopt;
  }
  auto len = aead_.open_in_place(record);
  if (!len.has_value()) {
    TENET_COUNT("chan.open_failures");
    return std::nullopt;
  }
  next_recv_seq_ = seq + 1;
  ++received_;
  TENET_COUNT("chan.records_opened");
  return len;
}

}  // namespace tenet::netsim
