#include "netsim/secure_channel.h"

namespace tenet::netsim {

namespace {
constexpr uint64_t kInitiatorNonce = 0x494e4954;  // "INIT"
constexpr uint64_t kResponderNonce = 0x52455350;  // "RESP"
}  // namespace

SecureChannel::SecureChannel(crypto::BytesView key, bool initiator)
    : aead_(key),
      send_nonce_(initiator ? kInitiatorNonce : kResponderNonce),
      recv_nonce_(initiator ? kResponderNonce : kInitiatorNonce) {}

crypto::Bytes SecureChannel::seal(crypto::BytesView plaintext) {
  return aead_.seal(send_nonce_, send_seq_++, plaintext);
}

std::optional<crypto::Bytes> SecureChannel::open(crypto::BytesView record) {
  if (record.size() < crypto::Aead::kOverhead) return std::nullopt;
  // Direction check: the nonce in the header must be the peer's.
  if (crypto::read_u64(record, 0) != recv_nonce_) return std::nullopt;
  const uint64_t seq = crypto::Aead::record_seq(record);
  if (seq < next_recv_seq_) return std::nullopt;  // replay / reorder below window
  auto plaintext = aead_.open(record);
  if (!plaintext.has_value()) return std::nullopt;
  next_recv_seq_ = seq + 1;
  ++received_;
  return plaintext;
}

}  // namespace tenet::netsim
