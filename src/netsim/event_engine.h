// Event storage and scheduling for the internet-scale simulator core.
//
// Two pieces (DESIGN.md §12):
//
//  * MessagePool — a slab allocator for in-flight events. Every queued
//    message or timer lives in one pool slot reached by index, recycled
//    through a free list, so steady-state event traffic performs no heap
//    allocation. The slab grows in fixed-size chunks rather than by
//    reallocation, so bursts (an injector posting 100k+ messages) never
//    trigger an O(live-events) copy and slot references stay stable. Slots carry a generation counter that is encoded into
//    TimerIds, giving O(1) timer cancellation with no lookup structures:
//    a TimerId names (generation, slot), and a cancel is valid exactly
//    when the slot still holds that generation. A side slab of refcounted
//    payload buffers lets fault-injected duplicates share one payload
//    (the copy is deferred to delivery, and the last reference is moved,
//    not copied).
//
//  * CalendarQueue — a calendar-queue scheduler (Brown 1988) with O(1)
//    amortized push/pop, replacing the binary heap. Time is divided into
//    windows of `width_` seconds; each event's window number (`vb`, for
//    virtual bucket) indexes a power-of-two bucket array. The window
//    currently being drained is kept extracted in `ready_`, sorted
//    descending so the minimum is popped from the back.
//
// Determinism argument: events are delivered in exactly (time, seq)
// order. Within a window, `ready_` is explicitly sorted by (time, seq).
// Across windows: floor(t / width) is monotone in t, so every event in
// window V strictly precedes every event in any window W > V; windows
// are compared as integers (the `vb` stored with each entry), never by
// re-deriving boundaries from floats, so no boundary-rounding case can
// reorder events. Resizing recomputes every vb under the new width
// before any redistribution, preserving the invariant. Hash/bucket
// layout is never iterated in a way that reaches user code.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "netsim/message.h"
#include "netsim/small_fn.h"

namespace tenet::netsim {

constexpr uint32_t kNilSlot = 0xffffffffu;

/// One in-flight event: either a message (timer_id == 0) or a timer.
/// Lives in a MessagePool slot from enqueue until the scheduler drains it.
/// Timer callback state (the SmallFn and its captured trace context —
/// ~100 bytes) lives in a separate slab reached through `timer_slot`, so
/// the dominant event population (messages) stays compact and a burst of
/// in-flight messages touches half the memory it otherwise would.
struct PooledEvent {
  double time = 0;
  Message msg;
  TimerId timer_id = 0;  // nonzero marks a timer event
  NodeId timer_owner = kInvalidNode;
  bool cancelled = false;
  /// Callback state in the pool's timer slab; kNilSlot for messages.
  uint32_t timer_slot = kNilSlot;
  /// Refcounted payload in the pool's payload slab (duplicated messages
  /// share one buffer); kNilSlot means the payload is inline in `msg`.
  uint32_t payload_slot = kNilSlot;
  uint32_t gen = 0;  // bumped on acquire; high half of TimerIds
  uint32_t next_free = kNilSlot;
};

class MessagePool {
 public:
  [[nodiscard]] size_t live() const { return live_; }
  [[nodiscard]] size_t capacity() const {
    return chunks_.size() << kChunkShift;
  }

  void reserve(size_t n) {
    while (capacity() < n) add_chunk();
  }

  /// Hands out a recycled (or fresh) slot with a new generation. The slab
  /// grows in fixed-size chunks, so growth never moves existing slots and
  /// PooledEvent references stay stable across acquire().
  [[nodiscard]] uint32_t acquire() {
    uint32_t i;
    if (free_head_ != kNilSlot) {
      i = free_head_;
      free_head_ = slot(i).next_free;
    } else {
      if (next_unused_ == capacity()) add_chunk();
      i = next_unused_++;
    }
    PooledEvent& s = slot(i);
    ++s.gen;
    s.time = 0;
    s.timer_id = 0;
    s.timer_owner = kInvalidNode;
    s.cancelled = false;
    s.timer_slot = kNilSlot;
    s.payload_slot = kNilSlot;
    s.next_free = kNilSlot;
    ++live_;
    return i;
  }

  [[nodiscard]] PooledEvent& slot(uint32_t i) {
    return chunks_[i >> kChunkShift][i & (kChunkSize - 1)];
  }
  [[nodiscard]] const PooledEvent& slot(uint32_t i) const {
    return chunks_[i >> kChunkShift][i & (kChunkSize - 1)];
  }

  /// Frees the slot's owned state (payload buffer, callback captures,
  /// shared-payload reference) and returns it to the free list.
  void release(uint32_t i) {
    PooledEvent& s = slot(i);
    s.msg = Message{};
    drop_timer_fn(i);
    if (s.payload_slot != kNilSlot) {
      payload_unref(s.payload_slot);
      s.payload_slot = kNilSlot;
    }
    s.timer_id = 0;
    s.next_free = free_head_;
    free_head_ = i;
    --live_;
  }

  /// Attaches a timer callback (and the trace context captured at
  /// schedule time) to an event slot.
  void set_timer_fn(uint32_t event_slot, SmallFn fn,
                    const telemetry::TraceContext& ctx) {
    uint32_t t;
    if (timer_free_ != kNilSlot) {
      t = timer_free_;
      timer_free_ = timers_[t].next_free;
    } else {
      t = static_cast<uint32_t>(timers_.size());
      timers_.emplace_back();
    }
    timers_[t].fn = std::move(fn);
    timers_[t].ctx = ctx;
    slot(event_slot).timer_slot = t;
  }

  /// Moves the callback out for firing (writing its captured context to
  /// `ctx`) and frees the timer slab entry.
  [[nodiscard]] SmallFn take_timer_fn(uint32_t event_slot,
                                      telemetry::TraceContext& ctx) {
    PooledEvent& s = slot(event_slot);
    TimerSlot& t = timers_[s.timer_slot];
    SmallFn fn = std::move(t.fn);
    ctx = t.ctx;
    free_timer(s.timer_slot);
    s.timer_slot = kNilSlot;
    return fn;
  }

  /// Destroys a pending callback and its captures immediately (cancel
  /// path); a no-op when the slot holds none.
  void drop_timer_fn(uint32_t event_slot) {
    PooledEvent& s = slot(event_slot);
    if (s.timer_slot == kNilSlot) return;
    free_timer(s.timer_slot);
    s.timer_slot = kNilSlot;
  }

  /// Moves `data` into the shared-payload slab with `refs` outstanding
  /// references (one per event copy that will point at it).
  [[nodiscard]] uint32_t payload_share(crypto::Bytes&& data, uint32_t refs) {
    uint32_t i;
    if (payload_free_ != kNilSlot) {
      i = payload_free_;
      payload_free_ = payloads_[i].next_free;
    } else {
      i = static_cast<uint32_t>(payloads_.size());
      payloads_.emplace_back();
    }
    payloads_[i].data = std::move(data);
    payloads_[i].refs = refs;
    return i;
  }

  [[nodiscard]] size_t payload_size(uint32_t i) const {
    return payloads_[i].data.size();
  }

  /// Size of an event's payload wherever it lives (inline or shared).
  [[nodiscard]] size_t event_payload_size(uint32_t event_slot) const {
    const PooledEvent& s = slot(event_slot);
    return s.payload_slot == kNilSlot ? s.msg.payload.size()
                                      : payload_size(s.payload_slot);
  }

  /// Materializes an event's payload for delivery. A shared payload is
  /// copied while other references remain and moved out on the last one;
  /// an inline payload is always moved. Clears the event's handle.
  [[nodiscard]] crypto::Bytes take_payload(uint32_t event_slot) {
    PooledEvent& s = slot(event_slot);
    if (s.payload_slot == kNilSlot) return std::move(s.msg.payload);
    const uint32_t p = s.payload_slot;
    s.payload_slot = kNilSlot;
    PayloadSlot& ps = payloads_[p];
    if (ps.refs > 1) {
      --ps.refs;
      return ps.data;  // copy: siblings still in flight
    }
    crypto::Bytes out = std::move(ps.data);
    free_payload(p);
    return out;
  }

 private:
  /// 4096 events per chunk: big enough that chunk allocation is rare,
  /// small enough that an idle simulator holds one modest chunk.
  static constexpr uint32_t kChunkShift = 12;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;

  struct PayloadSlot {
    crypto::Bytes data;
    uint32_t refs = 0;
    uint32_t next_free = kNilSlot;
  };

  struct TimerSlot {
    SmallFn fn;
    telemetry::TraceContext ctx{};
    uint32_t next_free = kNilSlot;
  };

  void add_chunk() {
    chunks_.push_back(std::make_unique<PooledEvent[]>(kChunkSize));
  }

  void free_timer(uint32_t t) {
    timers_[t].fn.reset();
    timers_[t].ctx = {};
    timers_[t].next_free = timer_free_;
    timer_free_ = t;
  }

  void payload_unref(uint32_t p) {
    if (--payloads_[p].refs == 0) free_payload(p);
  }

  void free_payload(uint32_t p) {
    payloads_[p].data = crypto::Bytes{};
    payloads_[p].refs = 0;
    payloads_[p].next_free = payload_free_;
    payload_free_ = p;
  }

  std::vector<std::unique_ptr<PooledEvent[]>> chunks_;
  std::vector<PayloadSlot> payloads_;
  std::vector<TimerSlot> timers_;
  uint32_t next_unused_ = 0;  // first never-acquired slot index
  uint32_t free_head_ = kNilSlot;
  uint32_t payload_free_ = kNilSlot;
  uint32_t timer_free_ = kNilSlot;
  size_t live_ = 0;
};

/// Calendar-queue priority scheduler over MessagePool slots, ordered by
/// (time, seq). See the file header for the determinism argument.
class CalendarQueue {
 public:
  CalendarQueue() : buckets_(kInitBuckets), mask_(kInitBuckets - 1) {}

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void push(double time, uint64_t seq, uint32_t slot) {
    const Entry e{time, seq, vbucket(time), slot};
    if (size_ == 0) {
      // Queue went idle: re-anchor the drain window on this event so an
      // arbitrarily long quiet gap costs nothing to skip.
      current_vb_ = e.vb;
      ready_.clear();
      ready_.push_back(e);
      ++size_;
      return;
    }
    if (e.vb <= current_vb_) {
      // Lands in (or before) the window being drained — it must be
      // visible to the very next pop, so insert into the sorted ready
      // list. Entries ahead of it in ready_ are all >= now, so ordering
      // by the true (time, seq) key stays exact.
      ready_.insert(
          std::upper_bound(ready_.begin(), ready_.end(), e, DescOrder{}), e);
      // A ballooning ready window means the width no longer matches the
      // event density (each insert above is O(|ready_|)); redistribute
      // under a gap-derived width as soon as one is known to be smaller.
      if (ready_.size() > kReadyLimit && pop_gap_count_ >= kMinGapSamples) {
        const double ideal = ideal_width();
        if (ideal * 4.0 < width_) {
          pop_gap_sum_ = 0;
          pop_gap_count_ = 0;
          width_override_ = ideal;
          resize(buckets_.size());
        }
      }
    } else {
      buckets_[e.vb & mask_].push_back(e);
    }
    ++size_;
    if (size_ > buckets_.size() * 2) resize(buckets_.size() * 2);
  }

  /// Removes and returns the slot of the (time, seq)-minimum event.
  /// Precondition: !empty().
  uint32_t pop() {
    if (ready_.empty()) advance();
    const Entry e = ready_.back();
    ready_.pop_back();
    --size_;
    note_pop(e.time);
    if (size_ * 8 < buckets_.size() && buckets_.size() > kInitBuckets) {
      resize(buckets_.size() / 2);
    }
    return e.slot;
  }

  /// Time of the minimum event without removing it. Precondition: !empty().
  [[nodiscard]] double peek_time() {
    if (ready_.empty()) advance();
    return ready_.back().time;
  }

 private:
  static constexpr size_t kInitBuckets = 256;
  // Width recalibration (Brown 1988 samples dequeue gaps): resize-time
  // estimates alone go stale in steady state, where pushes balance pops
  // and no size threshold ever fires again.
  static constexpr size_t kRecalibPeriod = 1024;  // pops between checks
  static constexpr size_t kMinGapSamples = 16;
  static constexpr size_t kReadyLimit = 2048;  // emergency split trigger

  struct Entry {
    double time;
    uint64_t seq;
    uint64_t vb;  // window number at push time: floor(time / width)
    uint32_t slot;
  };

  /// Descending (time, seq) so the minimum sits at ready_.back().
  struct DescOrder {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  [[nodiscard]] uint64_t vbucket(double time) const {
    if (time <= 0) return 0;
    const double q = time / width_;
    // Far-future times collapse into one window rather than overflowing
    // the cast; within-window order is exact regardless.
    constexpr double kMaxVb = 9.0e18;
    return q >= kMaxVb ? static_cast<uint64_t>(kMaxVb)
                       : static_cast<uint64_t>(q);
  }

  /// Pulls every entry of window `vb` out of its bucket into ready_.
  void collect(uint64_t vb) {
    auto& b = buckets_[vb & mask_];
    for (size_t i = 0; i < b.size();) {
      if (b[i].vb == vb) {
        ready_.push_back(b[i]);
        b[i] = b.back();
        b.pop_back();
      } else {
        ++i;
      }
    }
  }

  /// Moves the drain window forward to the next non-empty one. Scans at
  /// most one full lap of buckets, then jumps straight to the globally
  /// minimal window so sparse queues don't degrade to linear window walks.
  void advance() {
    uint64_t candidate = current_vb_;
    for (size_t lap = 0; lap < buckets_.size(); ++lap) {
      ++candidate;
      collect(candidate);
      if (!ready_.empty()) {
        current_vb_ = candidate;
        std::sort(ready_.begin(), ready_.end(), DescOrder{});
        return;
      }
    }
    candidate = UINT64_MAX;
    for (const auto& b : buckets_) {
      for (const Entry& e : b) candidate = std::min(candidate, e.vb);
    }
    collect(candidate);
    current_vb_ = candidate;
    std::sort(ready_.begin(), ready_.end(), DescOrder{});
  }

  /// Records a dequeue for width calibration. Pop times are monotone, so
  /// the positive gaps sum to the drained span and their mean is the true
  /// event spacing — the one statistic the width must track. Every
  /// kRecalibPeriod pops, rebuild if width has drifted >8x off target.
  /// The trigger depends only on the (deterministic) pop sequence, so
  /// rebuild timing — and thus all internal layout — stays reproducible.
  void note_pop(double t) {
    if (std::isfinite(last_pop_time_) && t > last_pop_time_) {
      pop_gap_sum_ += t - last_pop_time_;
      ++pop_gap_count_;
    }
    last_pop_time_ = t;
    if (--recalib_countdown_ > 0) return;
    recalib_countdown_ = kRecalibPeriod;
    if (pop_gap_count_ < kMinGapSamples) return;
    const double ideal = ideal_width();
    pop_gap_sum_ = 0;
    pop_gap_count_ = 0;
    if (width_ > ideal * 8.0 || ideal > width_ * 8.0) {
      width_override_ = ideal;
      resize(buckets_.size());
    }
  }

  [[nodiscard]] double ideal_width() const {
    return std::clamp(
        3.0 * pop_gap_sum_ / static_cast<double>(pop_gap_count_), 1e-9, 1e6);
  }

  /// Rebuilds with `nbuckets` buckets and a width re-estimated from the
  /// current event population, then re-anchors the drain window on the
  /// minimal occupied window. All vbs are recomputed under the new width.
  void resize(size_t nbuckets) {
    std::vector<Entry> all;
    all.reserve(size_);
    for (auto& b : buckets_) {
      all.insert(all.end(), b.begin(), b.end());
      b.clear();
    }
    all.insert(all.end(), ready_.begin(), ready_.end());
    ready_.clear();
    buckets_.assign(nbuckets, {});
    mask_ = nbuckets - 1;
    if (width_override_ > 0) {
      width_ = width_override_;
      width_override_ = 0;
    } else {
      width_ = estimate_width(all);
    }
    uint64_t min_vb = UINT64_MAX;
    for (Entry& e : all) {
      e.vb = vbucket(e.time);
      min_vb = std::min(min_vb, e.vb);
    }
    current_vb_ = min_vb;
    for (const Entry& e : all) {
      if (e.vb == current_vb_) {
        ready_.push_back(e);
      } else {
        buckets_[e.vb & mask_].push_back(e);
      }
    }
    std::sort(ready_.begin(), ready_.end(), DescOrder{});
  }

  /// Width heuristic: ~3x the typical event spacing, so a window holds a
  /// handful of events. The spacing is the sample's 10th-to-90th
  /// percentile span divided by the share of the *whole population* that
  /// span covers — dividing by the sample size instead would overestimate
  /// spacing by population/sample (the classic way a calendar queue
  /// degenerates into one giant window), and using the full span would
  /// let a few far-future outliers (long timers) stretch it the same
  /// way. Clamped hard — a degenerate sample (all-equal times) keeps the
  /// current width rather than producing 0 or inf.
  [[nodiscard]] double estimate_width(const std::vector<Entry>& all) const {
    constexpr size_t kSample = 64;
    if (all.size() < 2) return width_;
    std::vector<double> times;
    times.reserve(kSample);
    const size_t stride = std::max<size_t>(1, all.size() / kSample);
    for (size_t i = 0; i < all.size() && times.size() < kSample; i += stride) {
      times.push_back(all[i].time);
    }
    std::sort(times.begin(), times.end());
    const size_t trim = times.size() / 10;
    const double lo = times[trim];
    const double hi = times[times.size() - 1 - trim];
    if (!(hi > lo)) return width_;
    const double covered =
        static_cast<double>(all.size()) *
        (static_cast<double>(times.size() - 2 * trim) /
         static_cast<double>(times.size()));
    return std::clamp(3.0 * (hi - lo) / covered, 1e-9, 1e6);
  }

  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> ready_;  // current window, sorted descending
  size_t mask_;
  size_t size_ = 0;
  uint64_t current_vb_ = 0;
  double width_ = 1e-4;
  double last_pop_time_ = -std::numeric_limits<double>::infinity();
  double pop_gap_sum_ = 0;
  size_t pop_gap_count_ = 0;
  size_t recalib_countdown_ = kRecalibPeriod;
  double width_override_ = 0;  // consumed by the next resize when > 0
};

}  // namespace tenet::netsim
