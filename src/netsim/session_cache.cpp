#include "netsim/session_cache.h"

#include <algorithm>
#include <stdexcept>

#include "telemetry/telemetry.h"

namespace tenet::netsim {

SessionCache::SessionCache(size_t hot_capacity) {
  if (hot_capacity == 0) {
    throw std::invalid_argument("SessionCache: hot_capacity must be >= 1");
  }
  hot_.resize(hot_capacity);
}

void SessionCache::install(uint64_t peer, crypto::BytesView key,
                           bool initiator) {
  if (key.size() != SecureChannel::kKeySize) {
    throw std::invalid_argument("SessionCache::install: bad key size");
  }
  uint32_t* slot = index_.find(peer);
  if (slot == nullptr) {
    index_[peer] = static_cast<uint32_t>(sessions_.size());
    sessions_.emplace_back();
    slot = index_.find(peer);
  }
  Session& s = sessions_[*slot];
  std::copy(key.begin(), key.end(), s.key.begin());
  s.resume = SecureChannel::Resume{};  // fresh key -> sequences restart
  s.initiator = initiator;
  ++stats_.installs;
  TENET_COUNT("net.session_cache.installs");
  if (s.hot_slot != kNotHot) {
    // Re-key of a hot session: swap the materialized channel in place.
    hot_[s.hot_slot].channel.emplace(
        crypto::BytesView(s.key.data(), s.key.size()), s.initiator, s.resume);
    hot_[s.hot_slot].referenced = true;
  }
}

SecureChannel* SessionCache::find(uint64_t peer) {
  uint32_t* slot = index_.find(peer);
  if (slot == nullptr) return nullptr;
  Session& s = sessions_[*slot];
  if (s.hot_slot != kNotHot) {
    HotEntry& e = hot_[s.hot_slot];
    e.referenced = true;
    ++stats_.hot_hits;
    return &*e.channel;
  }

  const uint32_t hot_slot = claim_slot();
  HotEntry& e = hot_[hot_slot];
  e.session = *slot;
  e.referenced = true;
  e.channel.emplace(crypto::BytesView(s.key.data(), s.key.size()),
                    s.initiator, s.resume);
  s.hot_slot = hot_slot;
  ++hot_live_;
  ++stats_.resumes;
  TENET_COUNT("net.session_cache.resumes");
  return &*e.channel;
}

void SessionCache::evict(uint64_t peer) {
  uint32_t* slot = index_.find(peer);
  if (slot == nullptr) return;
  Session& s = sessions_[*slot];
  if (s.hot_slot == kNotHot) return;
  demote(s.hot_slot);
}

void SessionCache::demote(uint32_t slot) {
  HotEntry& e = hot_[slot];
  Session& s = sessions_[e.session];
  s.resume = e.channel->resume_state();
  s.hot_slot = kNotHot;
  e.session = UINT32_MAX;
  e.referenced = false;
  e.channel.reset();
  --hot_live_;
  ++stats_.evictions;
  TENET_COUNT("net.session_cache.evictions");
}

uint32_t SessionCache::claim_slot() {
  if (hot_live_ < hot_.size()) {
    // Free slot exists: take the first one from the hand on (deterministic).
    for (size_t i = 0; i < hot_.size(); ++i) {
      const size_t idx = (hand_ + i) % hot_.size();
      if (hot_[idx].session == UINT32_MAX) {
        hand_ = (idx + 1) % hot_.size();
        return static_cast<uint32_t>(idx);
      }
    }
  }
  // Clock sweep: first entry with a clear reference bit, clearing bits as
  // the hand passes. Terminates within two sweeps.
  for (;;) {
    HotEntry& e = hot_[hand_];
    const size_t idx = hand_;
    hand_ = (hand_ + 1) % hot_.size();
    if (e.referenced) {
      e.referenced = false;
      continue;
    }
    demote(static_cast<uint32_t>(idx));
    return static_cast<uint32_t>(idx);
  }
}

}  // namespace tenet::netsim
