// Per-peer secure-session cache for the million-session data plane.
//
// A live SecureChannel carries an expanded AES key schedule plus HMAC
// midstates — a few hundred bytes of derived state per peer that is cheap
// to rebuild but too expensive to rebuild per record. At 10^6 sessions
// keeping every channel materialized wastes memory (and, inside an enclave,
// EPC pages); rebuilding on every record wastes key schedules.
//
// The cache is two tiers:
//   * a compact per-peer record (32-byte key + sequence snapshot) in a flat
//     open-addressing index (U64Map, DESIGN.md §12) — unbounded, ~64 bytes
//     per session, O(1) install/lookup at any session count;
//   * a bounded hot tier of materialized SecureChannels, clock-evicted.
//     Eviction writes the sequence snapshot back to the compact record, so
//     a later resume re-derives a channel that seals byte-identically to
//     one that never left the hot set.
//
// Everything is deterministic: no RNG, no wall clock — the clock hand
// advances only on materialization, so a replayed run touches the same
// peers in the same order and gets the same hits/misses/evictions.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "netsim/flat_hash.h"
#include "netsim/secure_channel.h"

namespace tenet::netsim {

class SessionCache {
 public:
  struct Stats {
    uint64_t installs = 0;    ///< new sessions + rekeys
    uint64_t hot_hits = 0;    ///< find() served from a live channel
    uint64_t resumes = 0;     ///< find() re-materialized a cold session
    uint64_t evictions = 0;   ///< hot-tier channels demoted (state written back)
  };

  /// `hot_capacity` bounds the number of materialized channels (≥ 1).
  explicit SessionCache(size_t hot_capacity = 1024);

  /// Installs (or re-keys) the session for `peer`: stores the key material
  /// and resets both sequence numbers. O(1) regardless of session count.
  void install(uint64_t peer, crypto::BytesView key, bool initiator);

  /// Returns the live channel for `peer`, materializing it from the compact
  /// record if needed (possibly evicting the coldest hot entry). Returns
  /// nullptr for peers never installed. The pointer is invalidated by the
  /// next find()/install() on a different peer.
  [[nodiscard]] SecureChannel* find(uint64_t peer);

  [[nodiscard]] bool contains(uint64_t peer) const {
    return index_.find(peer) != nullptr;
  }

  /// Test hook: demote `peer` from the hot tier (no-op if not hot),
  /// exercising the write-back + resume path deterministically.
  void evict(uint64_t peer);

  [[nodiscard]] size_t size() const { return sessions_.size(); }
  [[nodiscard]] size_t hot_size() const { return hot_live_; }
  [[nodiscard]] size_t hot_capacity() const { return hot_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  static constexpr uint32_t kNotHot = UINT32_MAX;

  /// Compact cold-tier record: everything needed to rebuild the channel.
  struct Session {
    std::array<uint8_t, SecureChannel::kKeySize> key{};
    SecureChannel::Resume resume;
    bool initiator = false;
    uint32_t hot_slot = kNotHot;
  };

  struct HotEntry {
    uint32_t session = UINT32_MAX;  ///< index into sessions_, UINT32_MAX = free
    bool referenced = false;        ///< clock bit
    std::optional<SecureChannel> channel;
  };

  /// Writes the hot entry's sequence state back to its session record and
  /// frees the slot.
  void demote(uint32_t slot);
  /// Clock sweep: returns a free hot slot, evicting if necessary.
  uint32_t claim_slot();

  U64Map<uint32_t> index_;          ///< peer -> index into sessions_
  std::vector<Session> sessions_;   ///< compact cold tier (grows, never shrinks)
  std::vector<HotEntry> hot_;       ///< fixed-capacity hot tier
  size_t hot_live_ = 0;
  size_t hand_ = 0;                 ///< clock hand over hot_
  Stats stats_;
};

}  // namespace tenet::netsim
