// Core simulator value types, split out of sim.h so the event engine
// (event_engine.h) and the reference engine (reference_sim.h) can share
// them without pulling in the full Simulator interface.
#pragma once

#include <cstdint>

#include "crypto/bytes.h"
#include "telemetry/trace.h"

namespace tenet::netsim {

using NodeId = uint32_t;

constexpr NodeId kInvalidNode = 0;  // node ids start at 1

/// Handle for a pending timer; 0 is never a valid id.
using TimerId = uint64_t;

constexpr size_t kMtu = 1500;  // the paper's packet size (§5, Table 2)

/// An application-level message. The simulator accounts for its size in
/// MTU packets but delivers it whole (fragmentation is modelled in the
/// statistics, not re-assembled by every app).
struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  uint32_t port = 0;
  crypto::Bytes payload;
  /// Causal trace context (DESIGN.md §11). Stamped from the sender's
  /// ambient context by post() when unset; delivery re-installs it around
  /// handle_message so the receiver's spans join the sender's trace.
  telemetry::TraceContext trace{};
};

}  // namespace tenet::netsim
