#include "netsim/robust_channel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/telemetry.h"

namespace tenet::netsim {

double backoff_delay(const RetryPolicy& policy, uint32_t attempt,
                     crypto::Drbg& rng) {
  double delay = policy.base_delay * std::pow(policy.multiplier, attempt);
  delay = std::min(delay, policy.max_delay);
  if (policy.jitter > 0) {
    delay *= 1.0 + rng.uniform_real() * policy.jitter;
  }
  return delay;
}

void RobustChannel::install(crypto::BytesView key, bool initiator) {
  channel_.emplace(key, initiator);
  ++epoch_;
  consecutive_failures_ = 0;
  if (epoch_ > 1) TENET_COUNT("chan.rekeys");
}

void RobustChannel::reset() {
  channel_.reset();
  consecutive_failures_ = 0;
}

crypto::Bytes RobustChannel::seal(crypto::BytesView plaintext) {
  if (!channel_.has_value()) {
    throw std::logic_error("RobustChannel::seal: no key installed");
  }
  return channel_->seal(plaintext);
}

void RobustChannel::seal_into(crypto::BytesView plaintext,
                              std::span<uint8_t> out) {
  if (!channel_.has_value()) {
    throw std::logic_error("RobustChannel::seal_into: no key installed");
  }
  channel_->seal_into(plaintext, out);
}

std::optional<crypto::Bytes> RobustChannel::open(crypto::BytesView record) {
  if (!channel_.has_value()) return std::nullopt;
  auto plaintext = channel_->open(record);
  if (plaintext.has_value()) {
    consecutive_failures_ = 0;
  } else {
    ++consecutive_failures_;
  }
  return plaintext;
}

std::optional<size_t> RobustChannel::open_in_place(
    std::span<uint8_t> record) {
  if (!channel_.has_value()) return std::nullopt;
  auto len = channel_->open_in_place(record);
  if (len.has_value()) {
    consecutive_failures_ = 0;
  } else {
    ++consecutive_failures_;
  }
  return len;
}

void RobustChannel::open_batch(std::span<const std::span<uint8_t>> records,
                               std::span<std::optional<size_t>> results) {
  if (results.size() != records.size()) {
    throw std::invalid_argument("RobustChannel::open_batch: results size");
  }
  if (!channel_.has_value()) {
    for (auto& r : results) r = std::nullopt;
    return;
  }
  channel_->open_batch(records, results);
  for (const auto& r : results) {
    if (r.has_value()) {
      consecutive_failures_ = 0;
    } else {
      ++consecutive_failures_;
    }
  }
}

}  // namespace tenet::netsim
