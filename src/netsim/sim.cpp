#include "netsim/sim.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "telemetry/events.h"
#include "telemetry/scrape.h"
#include "telemetry/trace.h"

namespace tenet::netsim {

namespace {
/// Virtual time in integer microseconds — the tracer's clock unit.
uint64_t sim_clock(void* ctx) {
  return static_cast<uint64_t>(static_cast<Simulator*>(ctx)->now() * 1e6);
}
}  // namespace

Node::Node(Simulator& sim, std::string name)
    : sim_(sim), id_(sim.register_node(this, name)), name_(std::move(name)) {}

Node::~Node() { sim_.unregister_node(id_); }

void Node::send(NodeId dst, uint32_t port, crypto::Bytes payload) {
  sim_.post(Message{id_, dst, port, std::move(payload)});
}

Simulator::Simulator(uint64_t seed)
    : rng_(crypto::Drbg::from_label(seed, "tenet.netsim")) {
  // Drive trace timestamps from virtual time, so traces of a scripted run
  // are deterministic. Last simulator constructed wins (scenarios build
  // exactly one); the destructor only uninstalls its own clock.
  telemetry::tracer().set_clock(&sim_clock, this);
}

Simulator::~Simulator() { telemetry::tracer().clear_clock(this); }

NodeId Simulator::register_node(Node* node, const std::string& name) {
  const NodeId id = next_id_++;
  if (nodes_.size() <= id) {
    nodes_.resize(id + 1, nullptr);
    names_.resize(id + 1);
    stats_.resize(id + 1);
  }
  nodes_[id] = node;
  names_[id] = name;
  return id;
}

void Simulator::unregister_node(NodeId id) {
  if (id < nodes_.size()) nodes_[id] = nullptr;
}

void Simulator::reserve_nodes(size_t n) {
  nodes_.reserve(n + 1);
  names_.reserve(n + 1);
  stats_.reserve(n + 1);
  pool_.reserve(n);
}

void Simulator::set_latency(NodeId a, NodeId b, double seconds) {
  latencies_[link_key(a, b)] = seconds;
}

double Simulator::latency(NodeId a, NodeId b) const {
  const double* lat = latencies_.find(link_key(a, b));
  return lat != nullptr ? *lat : default_latency_;
}

void Simulator::cut_link(NodeId a, NodeId b) { cut_[link_key(a, b)] = true; }
void Simulator::heal_link(NodeId a, NodeId b) { cut_[link_key(a, b)] = false; }

bool Simulator::link_up(NodeId a, NodeId b) const {
  const bool* cut = cut_.find(link_key(a, b));
  return cut == nullptr || !*cut;
}

void Simulator::set_loss_rate(NodeId a, NodeId b, double probability) {
  if (probability < 0 || probability > 1) {
    throw std::invalid_argument("Simulator::set_loss_rate: bad probability");
  }
  loss_[link_key(a, b)] = probability;
}

void Simulator::post(Message msg) {
  if (msg.dst == kInvalidNode) {
    throw std::invalid_argument("Simulator::post: invalid destination");
  }
  // Stamp the sender's ambient trace context unless the caller already set
  // one (retransmission paths pre-stamp the original context + retx flag).
  if (msg.trace.empty()) TENET_TRACE_CAPTURE(msg.trace);
  auto& s = stats_ref(msg.src);
  s.messages_sent += 1;
  s.bytes_sent += msg.payload.size();
  s.packets_sent += (msg.payload.size() + kMtu - 1) / kMtu;
  if (msg.payload.empty()) s.packets_sent += 1;  // empty message = 1 packet
  TENET_COUNT("net.messages_sent");
  TENET_COUNT("net.bytes_sent", msg.payload.size());
  TENET_HISTOGRAM("net.message_bytes", msg.payload.size());

  if (wiretap_) wiretap_(msg);
  // Normalize the link key once; every per-link lookup below shares it.
  const uint64_t lk = link_key(msg.src, msg.dst);
  const bool* cut = cut_.find(lk);
  if (cut != nullptr && *cut) {
    ++dropped_;
    TENET_COUNT("net.messages_dropped");
    return;  // dropped on a cut link
  }
  const double* lossy = loss_.find(lk);
  if (lossy != nullptr && *lossy > 0 && rng_.uniform_real() < *lossy) {
    ++dropped_;
    TENET_COUNT("net.messages_dropped");
    return;
  }

  // Fault plan. Every check below is a no-op (and draws no randomness)
  // when the corresponding knob is unset, so an empty plan leaves the
  // event stream untouched.
  static const LinkFaults kNoFaults;
  const LinkFaults* lf = &kNoFaults;
  if (!faults_.empty()) {
    if (!faults_.node_up(msg.src, now_) || !faults_.node_up(msg.dst, now_) ||
        !faults_.link_window_up(msg.src, msg.dst, now_)) {
      ++dropped_;
      ++faults_.counters().window_dropped;
      TENET_COUNT("net.messages_dropped");
      TENET_COUNT("net.fault.window_drop");
      return;
    }
    if (!faults_.partition_up(msg.src, msg.dst, now_)) {
      // Symmetric partition cut (split-brain drill): both directions of
      // every cross-side pair drop for the window's duration.
      ++dropped_;
      ++faults_.counters().partitioned;
      TENET_COUNT("net.messages_dropped");
      TENET_COUNT("net.fault.partition");
      if (!partition_open_) {
        // Rising edge: first message dropped by a partition window. The
        // matching heal event fires when the clock leaves every window.
        partition_open_ = true;
        TENET_EVENT(kPartitionCut, static_cast<uint32_t>(msg.src), msg.dst);
      }
      return;
    }
    lf = &faults_.faults(msg.src, msg.dst);
    if (lf->loss > 0 && rng_.uniform_real() < lf->loss) {
      ++dropped_;
      ++faults_.counters().lost;
      TENET_COUNT("net.messages_dropped");
      TENET_COUNT("net.fault.loss");
      return;
    }
  }
  const bool duplicate =
      lf->duplicate > 0 && rng_.uniform_real() < lf->duplicate;
  if (duplicate) {
    ++faults_.counters().duplicated;
    TENET_COUNT("net.fault.duplicate");
    // Both copies reference one payload buffer; delivery copies for the
    // first and moves for the last (MessagePool::take_payload).
    const uint32_t pslot = pool_.payload_share(std::move(msg.payload), 2);
    msg.payload.clear();
    Message copy = msg;  // cheap: payload now lives in the slab
    enqueue(std::move(copy), pslot, lk, *lf);  // draws jitter/reorder first
    enqueue(std::move(msg), pslot, lk, *lf);
    return;
  }
  enqueue(std::move(msg), kNilSlot, lk, *lf);
}

void Simulator::enqueue(Message msg, uint32_t payload_slot, uint64_t lk,
                        const LinkFaults& faults) {
  const size_t payload_bytes = payload_slot == kNilSlot
                                   ? msg.payload.size()
                                   : pool_.payload_size(payload_slot);
  const double serialize = static_cast<double>(payload_bytes) / bandwidth_;
  const double* lat = latencies_.find(lk);
  double arrival =
      now_ + (lat != nullptr ? *lat : default_latency_) + serialize;
  if (faults.jitter > 0) {
    arrival += rng_.uniform_real() * faults.jitter;
    ++faults_.counters().jittered;
    TENET_COUNT("net.fault.jitter");
  }
  const bool reorder =
      faults.reorder > 0 && rng_.uniform_real() < faults.reorder;
  // FIFO per directed link: never schedule before an earlier message. A
  // reordered message is delayed extra and skips the horizon entirely, so
  // later messages on the link may overtake it.
  double& horizon = link_horizon_[directed_link_key(msg.src, msg.dst)];
  if (reorder) {
    ++faults_.counters().reordered;
    TENET_COUNT("net.fault.reorder");
    arrival = std::max(arrival, horizon) + faults.reorder_delay;
  } else {
    arrival = std::max(arrival, horizon);
    horizon = arrival;
  }
  // Expired horizons (<= now) can never raise an arrival again — sweep
  // them periodically so the table tracks only currently-busy links
  // instead of every (src, dst) pair ever used. Count-driven, so sweep
  // timing is a deterministic function of the event stream.
  if (--horizon_sweep_in_ == 0) {
    horizon_sweep_in_ = kHorizonSweepPeriod;
    if (link_horizon_.size() >= kHorizonSweepMin) {
      const double now = now_;
      link_horizon_.retain([now](double h) { return h > now; });
    }
  }
  const uint32_t ei = pool_.acquire();
  PooledEvent& ev = pool_.slot(ei);
  ev.time = arrival;
  ev.msg = std::move(msg);
  ev.payload_slot = payload_slot;
  queue_.push(arrival, next_seq_++, ei);
}

TimerId Simulator::schedule_timer(double delay, NodeId owner, SmallFn fn) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator::schedule_timer: negative delay");
  }
  const uint32_t ei = pool_.acquire();
  PooledEvent& ev = pool_.slot(ei);
  ev.time = now_ + delay;
  ev.timer_owner = owner;
  // Trace context captured at schedule time; firing re-installs it so
  // timer-driven work (retries, rekeys) stays on the scheduling trace.
  telemetry::TraceContext ctx{};
  TENET_TRACE_CAPTURE(ctx);
  pool_.set_timer_fn(ei, std::move(fn), ctx);
  const TimerId id = (static_cast<uint64_t>(ev.gen) << 32) | ei;
  ev.timer_id = id;
  queue_.push(ev.time, next_seq_++, ei);
  TENET_COUNT("net.timer.scheduled");
  return id;
}

bool Simulator::cancel_timer(TimerId id) {
  const uint32_t ei = static_cast<uint32_t>(id & 0xffffffffu);
  if (ei >= pool_.capacity()) return false;
  PooledEvent& ev = pool_.slot(ei);
  // The id encodes (generation, slot): it matches only while that exact
  // timer is still pending (fired/released slots have timer_id == 0 or a
  // newer generation).
  if (ev.timer_id != id || ev.cancelled) return false;
  ev.cancelled = true;
  // Free the callback and its captures now rather than when the queue
  // entry drains — long chaos runs cancel far more timers than they fire.
  pool_.drop_timer_fn(ei);
  TENET_COUNT("net.timer.cancelled");
  return true;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  const uint32_t ei = queue_.pop();
  PooledEvent& ev = pool_.slot(ei);
  if (ev.timer_id != 0 || ev.cancelled) {
    if (ev.cancelled) {
      pool_.release(ei);
      return true;  // cancelled: discard without advancing the clock
    }
    if (ev.timer_owner != kInvalidNode &&
        (ev.timer_owner >= nodes_.size() ||
         nodes_[ev.timer_owner] == nullptr)) {
      pool_.release(ei);
      return true;  // owner vanished: the callback must not run
    }
    // Move everything the callback needs onto the stack and release the
    // slot first: the callback may re-enter (schedule/post) and recycle
    // this very slot.
    const double time = ev.time;
    telemetry::TraceContext ctx;
    SmallFn fn = pool_.take_timer_fn(ei, ctx);
    pool_.release(ei);
    now_ = time;
    maybe_scrape();
    poll_partition_heal();
    TENET_COUNT("net.timer.fired");
    TENET_TRACE_CONTEXT(ctx);
    fn();
    return true;
  }
  now_ = ev.time;
  maybe_scrape();
  poll_partition_heal();
  const NodeId dst = ev.msg.dst;
  if (dst >= nodes_.size() || nodes_[dst] == nullptr) {
    pool_.release(ei);
    return true;  // destination vanished: drop
  }
  if (!faults_.empty() && !faults_.node_up(dst, now_)) {
    ++dropped_;
    ++faults_.counters().window_dropped;
    TENET_COUNT("net.messages_dropped");
    TENET_COUNT("net.fault.window_drop");
    pool_.release(ei);
    return true;  // arrived while the destination was down
  }

  auto& s = stats_ref(dst);
  s.messages_received += 1;
  s.bytes_received += pool_.event_payload_size(ei);
  ++delivered_;
  TENET_COUNT("net.messages_delivered");
  TENET_GAUGE_SET("net.pending_events", static_cast<int64_t>(queue_.size()));
  // Same re-entry hazard as timers: extract the message and release the
  // slot before dispatching to the handler.
  Node* node = nodes_[dst];
  Message msg = std::move(ev.msg);
  if (ev.payload_slot != kNilSlot) msg.payload = pool_.take_payload(ei);
  pool_.release(ei);
  {
    TENET_TRACE_CONTEXT(msg.trace);
    TENET_SPAN("net", "deliver");
    node->handle_message(msg);
  }
  return true;
}

void Simulator::attach_scraper(telemetry::Scraper* scraper, double period) {
  if (scraper != nullptr && period <= 0) {
    throw std::invalid_argument("Simulator::attach_scraper: bad period");
  }
  scraper_ = scraper;
  scrape_period_ = period;
  next_scrape_due_ = now_;
}

void Simulator::maybe_scrape() {
  if (scraper_ == nullptr || !telemetry::enabled()) return;
  // Catch up every boundary the clock just crossed. Between events no
  // instrument changes, so a sample taken now with a boundary timestamp
  // is exactly the registry state at that boundary.
  while (next_scrape_due_ <= now_) {
    scraper_->scrape(static_cast<uint64_t>(next_scrape_due_ * 1e6));
    next_scrape_due_ += scrape_period_;
  }
}

void Simulator::poll_partition_heal() {
  // Cheap falling-edge poll (single bool branch while no cut is open):
  // once a partition drop has been observed, the first event past every
  // scheduled partition window marks the fleet healed.
  if (partition_open_ && !faults_.any_partition_active(now_)) {
    partition_open_ = false;
    TENET_EVENT(kPartitionHeal, 0);
  }
}

size_t Simulator::run(size_t max_events) {
  const size_t cap = max_events != 0 ? max_events
                     : run_cap_ != 0 ? run_cap_
                                     : static_cast<size_t>(-1);
  size_t n = 0;
  while (n < cap && step()) ++n;
  if (n == cap && !queue_.empty()) {
    TENET_COUNT("net.run.cap_hit");
    TENET_EVENT(kRunCapHit, 0, cap, queue_.size());
    std::fprintf(stderr,
                 "[netsim] run() hit the %zu-event safety cap with %zu events "
                 "still queued; raise set_run_cap() for larger scenarios\n",
                 cap, queue_.size());
    throw std::runtime_error("Simulator::run: event cap hit (livelock?)");
  }
  return n;
}

TrafficStats& Simulator::stats_ref(NodeId id) {
  if (id < stats_.size()) return stats_[id];
  return stats_overflow_[id];
}

const TrafficStats& Simulator::stats(NodeId node) const {
  static const TrafficStats kEmpty;
  if (node < stats_.size()) return stats_[node];
  const TrafficStats* s = stats_overflow_.find(node);
  return s != nullptr ? *s : kEmpty;
}

Node* Simulator::find_node(NodeId id) const {
  return id < nodes_.size() ? nodes_[id] : nullptr;
}

const std::string& Simulator::node_name(NodeId id) const {
  static const std::string kUnknown = "<unknown>";
  if (id == kInvalidNode || id >= names_.size()) return kUnknown;
  return names_[id];
}

}  // namespace tenet::netsim
