#include "netsim/sim.h"

#include <algorithm>
#include <stdexcept>

#include "telemetry/trace.h"

namespace tenet::netsim {

namespace {
std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

/// Virtual time in integer microseconds — the tracer's clock unit.
uint64_t sim_clock(void* ctx) {
  return static_cast<uint64_t>(static_cast<Simulator*>(ctx)->now() * 1e6);
}
}  // namespace

Node::Node(Simulator& sim, std::string name)
    : sim_(sim), id_(sim.register_node(this, name)), name_(std::move(name)) {}

Node::~Node() { sim_.unregister_node(id_); }

void Node::send(NodeId dst, uint32_t port, crypto::Bytes payload) {
  sim_.post(Message{id_, dst, port, std::move(payload)});
}

Simulator::Simulator(uint64_t seed)
    : rng_(crypto::Drbg::from_label(seed, "tenet.netsim")) {
  // Drive trace timestamps from virtual time, so traces of a scripted run
  // are deterministic. Last simulator constructed wins (scenarios build
  // exactly one); the destructor only uninstalls its own clock.
  telemetry::tracer().set_clock(&sim_clock, this);
}

Simulator::~Simulator() { telemetry::tracer().clear_clock(this); }

NodeId Simulator::register_node(Node* node, const std::string& name) {
  const NodeId id = next_id_++;
  nodes_[id] = node;
  names_[id] = name;
  stats_[id];  // default-construct
  return id;
}

void Simulator::unregister_node(NodeId id) { nodes_.erase(id); }

void Simulator::set_latency(NodeId a, NodeId b, double seconds) {
  latencies_[ordered(a, b)] = seconds;
}

double Simulator::latency(NodeId a, NodeId b) const {
  const auto it = latencies_.find(ordered(a, b));
  return it != latencies_.end() ? it->second : default_latency_;
}

void Simulator::cut_link(NodeId a, NodeId b) { cut_[ordered(a, b)] = true; }
void Simulator::heal_link(NodeId a, NodeId b) { cut_[ordered(a, b)] = false; }

bool Simulator::link_up(NodeId a, NodeId b) const {
  const auto it = cut_.find(ordered(a, b));
  return it == cut_.end() || !it->second;
}

void Simulator::set_loss_rate(NodeId a, NodeId b, double probability) {
  if (probability < 0 || probability > 1) {
    throw std::invalid_argument("Simulator::set_loss_rate: bad probability");
  }
  loss_[ordered(a, b)] = probability;
}

void Simulator::post(Message msg) {
  if (msg.dst == kInvalidNode) {
    throw std::invalid_argument("Simulator::post: invalid destination");
  }
  auto& s = stats_[msg.src];
  s.messages_sent += 1;
  s.bytes_sent += msg.payload.size();
  s.packets_sent += (msg.payload.size() + kMtu - 1) / kMtu;
  if (msg.payload.empty()) s.packets_sent += 1;  // empty message = 1 packet
  TENET_COUNT("net.messages_sent");
  TENET_COUNT("net.bytes_sent", msg.payload.size());
  TENET_HISTOGRAM("net.message_bytes", msg.payload.size());

  if (wiretap_) wiretap_(msg);
  if (!link_up(msg.src, msg.dst)) {
    ++dropped_;
    TENET_COUNT("net.messages_dropped");
    return;  // dropped on a cut link
  }
  const auto lossy = loss_.find(ordered(msg.src, msg.dst));
  if (lossy != loss_.end() && lossy->second > 0 &&
      rng_.uniform_real() < lossy->second) {
    ++dropped_;
    TENET_COUNT("net.messages_dropped");
    return;
  }

  const double serialize =
      static_cast<double>(msg.payload.size()) / bandwidth_;
  double arrival = now_ + latency(msg.src, msg.dst) + serialize;
  // FIFO per directed link: never schedule before an earlier message.
  double& horizon = link_horizon_[{msg.src, msg.dst}];
  arrival = std::max(arrival, horizon);
  horizon = arrival;
  Event ev{arrival, next_seq_++, std::move(msg)};
  queue_.push(std::move(ev));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  const auto it = nodes_.find(ev.msg.dst);
  if (it == nodes_.end()) return true;  // destination vanished: drop

  auto& s = stats_[ev.msg.dst];
  s.messages_received += 1;
  s.bytes_received += ev.msg.payload.size();
  ++delivered_;
  TENET_COUNT("net.messages_delivered");
  TENET_GAUGE_SET("net.pending_events",
                  static_cast<int64_t>(queue_.size()));
  {
    TENET_SPAN("net", "deliver");
    it->second->handle_message(ev.msg);
  }
  return true;
}

size_t Simulator::run(size_t max_events) {
  size_t n = 0;
  while (n < max_events && step()) ++n;
  if (n == max_events && !queue_.empty()) {
    throw std::runtime_error("Simulator::run: event cap hit (livelock?)");
  }
  return n;
}

const TrafficStats& Simulator::stats(NodeId node) const {
  static const TrafficStats kEmpty;
  const auto it = stats_.find(node);
  return it != stats_.end() ? it->second : kEmpty;
}

Node* Simulator::find_node(NodeId id) const {
  const auto it = nodes_.find(id);
  return it != nodes_.end() ? it->second : nullptr;
}

const std::string& Simulator::node_name(NodeId id) const {
  static const std::string kUnknown = "<unknown>";
  const auto it = names_.find(id);
  return it != names_.end() ? it->second : kUnknown;
}

}  // namespace tenet::netsim
