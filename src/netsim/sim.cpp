#include "netsim/sim.h"

#include <algorithm>
#include <stdexcept>

#include "telemetry/scrape.h"
#include "telemetry/trace.h"

namespace tenet::netsim {

namespace {
std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

/// Virtual time in integer microseconds — the tracer's clock unit.
uint64_t sim_clock(void* ctx) {
  return static_cast<uint64_t>(static_cast<Simulator*>(ctx)->now() * 1e6);
}
}  // namespace

Node::Node(Simulator& sim, std::string name)
    : sim_(sim), id_(sim.register_node(this, name)), name_(std::move(name)) {}

Node::~Node() { sim_.unregister_node(id_); }

void Node::send(NodeId dst, uint32_t port, crypto::Bytes payload) {
  sim_.post(Message{id_, dst, port, std::move(payload)});
}

Simulator::Simulator(uint64_t seed)
    : rng_(crypto::Drbg::from_label(seed, "tenet.netsim")) {
  // Drive trace timestamps from virtual time, so traces of a scripted run
  // are deterministic. Last simulator constructed wins (scenarios build
  // exactly one); the destructor only uninstalls its own clock.
  telemetry::tracer().set_clock(&sim_clock, this);
}

Simulator::~Simulator() { telemetry::tracer().clear_clock(this); }

NodeId Simulator::register_node(Node* node, const std::string& name) {
  const NodeId id = next_id_++;
  nodes_[id] = node;
  names_[id] = name;
  stats_[id];  // default-construct
  return id;
}

void Simulator::unregister_node(NodeId id) { nodes_.erase(id); }

void Simulator::set_latency(NodeId a, NodeId b, double seconds) {
  latencies_[ordered(a, b)] = seconds;
}

double Simulator::latency(NodeId a, NodeId b) const {
  const auto it = latencies_.find(ordered(a, b));
  return it != latencies_.end() ? it->second : default_latency_;
}

void Simulator::cut_link(NodeId a, NodeId b) { cut_[ordered(a, b)] = true; }
void Simulator::heal_link(NodeId a, NodeId b) { cut_[ordered(a, b)] = false; }

bool Simulator::link_up(NodeId a, NodeId b) const {
  const auto it = cut_.find(ordered(a, b));
  return it == cut_.end() || !it->second;
}

void Simulator::set_loss_rate(NodeId a, NodeId b, double probability) {
  if (probability < 0 || probability > 1) {
    throw std::invalid_argument("Simulator::set_loss_rate: bad probability");
  }
  loss_[ordered(a, b)] = probability;
}

void Simulator::post(Message msg) {
  if (msg.dst == kInvalidNode) {
    throw std::invalid_argument("Simulator::post: invalid destination");
  }
  // Stamp the sender's ambient trace context unless the caller already set
  // one (retransmission paths pre-stamp the original context + retx flag).
  if (msg.trace.empty()) TENET_TRACE_CAPTURE(msg.trace);
  auto& s = stats_[msg.src];
  s.messages_sent += 1;
  s.bytes_sent += msg.payload.size();
  s.packets_sent += (msg.payload.size() + kMtu - 1) / kMtu;
  if (msg.payload.empty()) s.packets_sent += 1;  // empty message = 1 packet
  TENET_COUNT("net.messages_sent");
  TENET_COUNT("net.bytes_sent", msg.payload.size());
  TENET_HISTOGRAM("net.message_bytes", msg.payload.size());

  if (wiretap_) wiretap_(msg);
  if (!link_up(msg.src, msg.dst)) {
    ++dropped_;
    TENET_COUNT("net.messages_dropped");
    return;  // dropped on a cut link
  }
  const auto lossy = loss_.find(ordered(msg.src, msg.dst));
  if (lossy != loss_.end() && lossy->second > 0 &&
      rng_.uniform_real() < lossy->second) {
    ++dropped_;
    TENET_COUNT("net.messages_dropped");
    return;
  }

  // Fault plan. Every check below is a no-op (and draws no randomness)
  // when the corresponding knob is unset, so an empty plan leaves the
  // event stream untouched.
  static const LinkFaults kNoFaults;
  const LinkFaults* lf = &kNoFaults;
  if (!faults_.empty()) {
    if (!faults_.node_up(msg.src, now_) || !faults_.node_up(msg.dst, now_) ||
        !faults_.link_window_up(msg.src, msg.dst, now_)) {
      ++dropped_;
      ++faults_.counters().window_dropped;
      TENET_COUNT("net.messages_dropped");
      TENET_COUNT("net.fault.window_drop");
      return;
    }
    lf = &faults_.faults(msg.src, msg.dst);
    if (lf->loss > 0 && rng_.uniform_real() < lf->loss) {
      ++dropped_;
      ++faults_.counters().lost;
      TENET_COUNT("net.messages_dropped");
      TENET_COUNT("net.fault.loss");
      return;
    }
  }
  const bool duplicate =
      lf->duplicate > 0 && rng_.uniform_real() < lf->duplicate;
  if (duplicate) {
    ++faults_.counters().duplicated;
    TENET_COUNT("net.fault.duplicate");
    enqueue(msg, *lf);  // first copy; draws its own jitter/reorder
  }
  enqueue(std::move(msg), *lf);
}

void Simulator::enqueue(Message msg, const LinkFaults& faults) {
  const double serialize =
      static_cast<double>(msg.payload.size()) / bandwidth_;
  double arrival = now_ + latency(msg.src, msg.dst) + serialize;
  if (faults.jitter > 0) {
    arrival += rng_.uniform_real() * faults.jitter;
    ++faults_.counters().jittered;
    TENET_COUNT("net.fault.jitter");
  }
  const bool reorder =
      faults.reorder > 0 && rng_.uniform_real() < faults.reorder;
  // FIFO per directed link: never schedule before an earlier message. A
  // reordered message is delayed extra and skips the horizon entirely, so
  // later messages on the link may overtake it.
  double& horizon = link_horizon_[{msg.src, msg.dst}];
  if (reorder) {
    ++faults_.counters().reordered;
    TENET_COUNT("net.fault.reorder");
    arrival = std::max(arrival, horizon) + faults.reorder_delay;
  } else {
    arrival = std::max(arrival, horizon);
    horizon = arrival;
  }
  Event ev{};
  ev.time = arrival;
  ev.seq = next_seq_++;
  ev.msg = std::move(msg);
  queue_.push(std::move(ev));
}

TimerId Simulator::schedule_timer(double delay, NodeId owner,
                                  std::function<void()> fn) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator::schedule_timer: negative delay");
  }
  const TimerId id = next_timer_id_++;
  Event ev{};
  ev.time = now_ + delay;
  ev.seq = next_seq_++;
  ev.timer_id = id;
  ev.timer_owner = owner;
  ev.timer_fn = std::move(fn);
  TENET_TRACE_CAPTURE(ev.timer_ctx);
  queue_.push(std::move(ev));
  pending_timers_.insert(id);
  TENET_COUNT("net.timer.scheduled");
  return id;
}

bool Simulator::cancel_timer(TimerId id) {
  if (pending_timers_.erase(id) == 0) return false;
  cancelled_timers_.insert(id);
  TENET_COUNT("net.timer.cancelled");
  return true;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  if (ev.timer_id != 0) {
    if (cancelled_timers_.erase(ev.timer_id) > 0) {
      return true;  // cancelled: discard without advancing the clock
    }
    pending_timers_.erase(ev.timer_id);
    if (ev.timer_owner != kInvalidNode && !nodes_.contains(ev.timer_owner)) {
      return true;  // owner vanished: the callback must not run
    }
    now_ = ev.time;
    maybe_scrape();
    TENET_COUNT("net.timer.fired");
    TENET_TRACE_CONTEXT(ev.timer_ctx);
    ev.timer_fn();
    return true;
  }
  now_ = ev.time;
  maybe_scrape();
  const auto it = nodes_.find(ev.msg.dst);
  if (it == nodes_.end()) return true;  // destination vanished: drop
  if (!faults_.empty() && !faults_.node_up(ev.msg.dst, now_)) {
    ++dropped_;
    ++faults_.counters().window_dropped;
    TENET_COUNT("net.messages_dropped");
    TENET_COUNT("net.fault.window_drop");
    return true;  // arrived while the destination was down
  }

  auto& s = stats_[ev.msg.dst];
  s.messages_received += 1;
  s.bytes_received += ev.msg.payload.size();
  ++delivered_;
  TENET_COUNT("net.messages_delivered");
  TENET_GAUGE_SET("net.pending_events",
                  static_cast<int64_t>(queue_.size()));
  {
    TENET_TRACE_CONTEXT(ev.msg.trace);
    TENET_SPAN("net", "deliver");
    it->second->handle_message(ev.msg);
  }
  return true;
}

void Simulator::attach_scraper(telemetry::Scraper* scraper, double period) {
  if (scraper != nullptr && period <= 0) {
    throw std::invalid_argument("Simulator::attach_scraper: bad period");
  }
  scraper_ = scraper;
  scrape_period_ = period;
  next_scrape_due_ = now_;
}

void Simulator::maybe_scrape() {
  if (scraper_ == nullptr || !telemetry::enabled()) return;
  // Catch up every boundary the clock just crossed. Between events no
  // instrument changes, so a sample taken now with a boundary timestamp
  // is exactly the registry state at that boundary.
  while (next_scrape_due_ <= now_) {
    scraper_->scrape(static_cast<uint64_t>(next_scrape_due_ * 1e6));
    next_scrape_due_ += scrape_period_;
  }
}

size_t Simulator::run(size_t max_events) {
  size_t n = 0;
  while (n < max_events && step()) ++n;
  if (n == max_events && !queue_.empty()) {
    throw std::runtime_error("Simulator::run: event cap hit (livelock?)");
  }
  return n;
}

const TrafficStats& Simulator::stats(NodeId node) const {
  static const TrafficStats kEmpty;
  const auto it = stats_.find(node);
  return it != stats_.end() ? it->second : kEmpty;
}

Node* Simulator::find_node(NodeId id) const {
  const auto it = nodes_.find(id);
  return it != nodes_.end() ? it->second : nullptr;
}

const std::string& Simulator::node_name(NodeId id) const {
  static const std::string kUnknown = "<unknown>";
  const auto it = names_.find(id);
  return it != names_.end() ? it->second : kUnknown;
}

}  // namespace tenet::netsim
