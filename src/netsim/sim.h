// Deterministic discrete-event network simulator.
//
// The paper's applications are protocol designs (controller <-> AS
// controllers, Tor circuits, endpoint <-> middlebox); this module gives
// them a network to run on: named nodes, latency-weighted links, FIFO
// in-order delivery per link, byte/packet statistics. Determinism matters
// because the benches print paper-style tables that must be reproducible,
// so all tie-breaking is (time, sequence-number) ordered and all
// randomness comes from the simulator's seeded DRBG.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/rng.h"
#include "netsim/fault.h"
#include "telemetry/trace.h"

namespace tenet::telemetry {
class Scraper;
}

namespace tenet::netsim {

constexpr NodeId kInvalidNode = 0;  // node ids start at 1

/// Handle for a pending timer; 0 is never a valid id.
using TimerId = uint64_t;

constexpr size_t kMtu = 1500;  // the paper's packet size (§5, Table 2)

/// An application-level message. The simulator accounts for its size in
/// MTU packets but delivers it whole (fragmentation is modelled in the
/// statistics, not re-assembled by every app).
struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  uint32_t port = 0;
  crypto::Bytes payload;
  /// Causal trace context (DESIGN.md §11). Stamped from the sender's
  /// ambient context by post() when unset; delivery re-installs it around
  /// handle_message so the receiver's spans join the sender's trace.
  telemetry::TraceContext trace{};
};

class Simulator;

/// Base class for network participants.
class Node {
 public:
  /// Registers with the simulator; the id is stable for the node's life.
  Node(Simulator& sim, std::string name);
  virtual ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulator& sim() { return sim_; }

  /// Delivery callback; runs at the message's arrival time.
  virtual void handle_message(const Message& msg) = 0;

  /// Queues a message for delivery (arrival time = now + link latency +
  /// serialization delay).
  void send(NodeId dst, uint32_t port, crypto::Bytes payload);

 private:
  Simulator& sim_;
  NodeId id_;
  std::string name_;
};

/// Per-node traffic counters.
struct TrafficStats {
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t packets_sent = 0;  // ceil(bytes / MTU) per message
};

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);
  ~Simulator();

  /// Simulated seconds since start.
  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] crypto::Drbg& rng() { return rng_; }

  /// Sets the one-way latency between two nodes (symmetric). Unset pairs
  /// use the default latency.
  void set_latency(NodeId a, NodeId b, double seconds);
  void set_default_latency(double seconds) { default_latency_ = seconds; }
  [[nodiscard]] double latency(NodeId a, NodeId b) const;

  /// Link bandwidth used for serialization delay (bytes/second).
  void set_bandwidth(double bytes_per_second) { bandwidth_ = bytes_per_second; }

  /// Partitions or heals connectivity between two nodes (messages on a cut
  /// link are dropped). Models the DoS-class failures the paper leaves in
  /// scope for attackers.
  void cut_link(NodeId a, NodeId b);
  void heal_link(NodeId a, NodeId b);
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const;

  /// Independent per-message drop probability on a link (0 disables).
  /// Lossy links model the other DoS-class interference available to the
  /// threat model's network attacker.
  void set_loss_rate(NodeId a, NodeId b, double probability);
  [[nodiscard]] uint64_t messages_dropped() const { return dropped_; }

  /// Fault-injection plan (loss/duplication/reordering/jitter/outage
  /// windows). All probabilistic decisions draw from the sim's DRBG, and
  /// an empty plan draws nothing, so fault-free runs are byte-identical
  /// to runs without a plan.
  [[nodiscard]] FaultPlan& fault_plan() { return faults_; }
  [[nodiscard]] const FaultPlan& fault_plan() const { return faults_; }

  /// Schedules `fn` to run at now + delay. Timers share the event queue
  /// with messages, so ties are (time, seq)-ordered like everything else.
  /// If `owner` is a valid node id and that node unregisters before the
  /// timer fires, the timer is silently discarded (the callback may
  /// capture the node). Returns a handle for cancel_timer().
  TimerId schedule_timer(double delay, NodeId owner, std::function<void()> fn);

  /// Cancels a pending timer; false if it already fired or was cancelled.
  bool cancel_timer(TimerId id);

  /// Enqueues a message (called by Node::send; usable directly in tests).
  void post(Message msg);

  /// Installs a passive wiretap observing every posted message — the
  /// paper's network attacker can read (and with post()) inject arbitrary
  /// traffic; it cannot read inside enclaves. Pass nullptr to remove.
  void set_wiretap(std::function<void(const Message&)> tap) {
    wiretap_ = std::move(tap);
  }

  /// Attaches a periodic registry scraper: every `period` simulated
  /// seconds of virtual time crossed by the event clock takes one sample
  /// (stamped at the exact period boundary, so cadence is even no matter
  /// how events cluster). Scrapes happen inside step() rather than as
  /// self-rescheduling timers, so an attached scraper never keeps an
  /// otherwise-quiescent simulation alive. Pass nullptr to detach.
  void attach_scraper(telemetry::Scraper* scraper, double period = 0.001);

  /// Delivers the next event; false when idle.
  bool step();

  /// Runs until quiescent (or the safety cap); returns events delivered.
  size_t run(size_t max_events = 1'000'000);

  [[nodiscard]] const TrafficStats& stats(NodeId node) const;
  [[nodiscard]] uint64_t total_messages_delivered() const { return delivered_; }
  [[nodiscard]] size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] Node* find_node(NodeId id) const;
  [[nodiscard]] const std::string& node_name(NodeId id) const;

 private:
  friend class Node;
  NodeId register_node(Node* node, const std::string& name);
  void unregister_node(NodeId id);

  struct Event {
    double time;
    uint64_t seq;  // FIFO tie-break
    Message msg;
    // Timer events carry a callback instead of a message payload.
    TimerId timer_id = 0;
    NodeId timer_owner = kInvalidNode;
    std::function<void()> timer_fn;
    // Trace context captured at schedule time; firing re-installs it so
    // timer-driven work (retries, rekeys) stays on the scheduling trace.
    telemetry::TraceContext timer_ctx{};
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  /// Computes delivery delay (with jitter/reorder faults) and enqueues.
  void enqueue(Message msg, const LinkFaults& faults);

  /// Takes any scraper samples due at period boundaries <= now_.
  void maybe_scrape();

  double now_ = 0;
  double default_latency_ = 0.001;   // 1 ms
  double bandwidth_ = 1.25e9;        // 10 Gbps
  uint64_t next_seq_ = 0;
  uint64_t delivered_ = 0;
  NodeId next_id_ = 1;
  crypto::Drbg rng_;
  std::map<NodeId, Node*> nodes_;
  std::map<NodeId, std::string> names_;
  std::map<NodeId, TrafficStats> stats_;
  std::map<std::pair<NodeId, NodeId>, double> latencies_;
  std::map<std::pair<NodeId, NodeId>, bool> cut_;
  std::map<std::pair<NodeId, NodeId>, double> loss_;
  uint64_t dropped_ = 0;
  FaultPlan faults_;
  TimerId next_timer_id_ = 1;
  std::set<TimerId> pending_timers_;    // scheduled, not yet fired/cancelled
  std::set<TimerId> cancelled_timers_;  // cancelled but still in the queue
  // Directed per-link delivery horizon: links are ordered byte streams
  // (TCP-like), so a small message posted after a large one on the same
  // link must not overtake it.
  std::map<std::pair<NodeId, NodeId>, double> link_horizon_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::function<void(const Message&)> wiretap_;
  telemetry::Scraper* scraper_ = nullptr;
  double scrape_period_ = 0.001;
  double next_scrape_due_ = 0;
};

}  // namespace tenet::netsim
