// Deterministic discrete-event network simulator.
//
// The paper's applications are protocol designs (controller <-> AS
// controllers, Tor circuits, endpoint <-> middlebox); this module gives
// them a network to run on: named nodes, latency-weighted links, FIFO
// in-order delivery per link, byte/packet statistics. Determinism matters
// because the benches print paper-style tables that must be reproducible,
// so all tie-breaking is (time, sequence-number) ordered and all
// randomness comes from the simulator's seeded DRBG.
//
// The engine underneath is built for internet scale (DESIGN.md §12):
// events live in a slab MessagePool and are scheduled by a calendar
// queue (O(1) amortized instead of a binary heap's O(log n)); node
// state is dense NodeId-indexed vectors; link attributes are flat
// hashes keyed by normalized (min, max) pair keys; timer callbacks use
// small-buffer-optimized storage instead of std::function heap captures.
// None of this changes observable behavior: delivery order, RNG draw
// order, statistics, and telemetry are identical to the reference
// engine (reference_sim.h), which tests assert event-for-event.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/rng.h"
#include "netsim/event_engine.h"
#include "netsim/fault.h"
#include "netsim/flat_hash.h"
#include "netsim/message.h"
#include "netsim/small_fn.h"
#include "telemetry/trace.h"

namespace tenet::telemetry {
class Scraper;
}

namespace tenet::netsim {

class Simulator;

/// Base class for network participants.
class Node {
 public:
  /// Registers with the simulator; the id is stable for the node's life.
  Node(Simulator& sim, std::string name);
  virtual ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulator& sim() { return sim_; }

  /// Delivery callback; runs at the message's arrival time.
  virtual void handle_message(const Message& msg) = 0;

  /// Queues a message for delivery (arrival time = now + link latency +
  /// serialization delay).
  void send(NodeId dst, uint32_t port, crypto::Bytes payload);

 private:
  Simulator& sim_;
  NodeId id_;
  std::string name_;
};

/// Per-node traffic counters.
struct TrafficStats {
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t packets_sent = 0;  // ceil(bytes / MTU) per message
};

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);
  ~Simulator();

  /// Simulated seconds since start.
  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] crypto::Drbg& rng() { return rng_; }

  /// Pre-sizes node tables (and the event slab) for a topology of about
  /// `n` nodes — optional, avoids growth pauses in large scenarios.
  void reserve_nodes(size_t n);

  /// Sets the one-way latency between two nodes (symmetric). Unset pairs
  /// use the default latency.
  void set_latency(NodeId a, NodeId b, double seconds);
  void set_default_latency(double seconds) { default_latency_ = seconds; }
  [[nodiscard]] double latency(NodeId a, NodeId b) const;

  /// Link bandwidth used for serialization delay (bytes/second).
  void set_bandwidth(double bytes_per_second) { bandwidth_ = bytes_per_second; }

  /// Partitions or heals connectivity between two nodes (messages on a cut
  /// link are dropped). Models the DoS-class failures the paper leaves in
  /// scope for attackers.
  void cut_link(NodeId a, NodeId b);
  void heal_link(NodeId a, NodeId b);
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const;

  /// Independent per-message drop probability on a link (0 disables).
  /// Lossy links model the other DoS-class interference available to the
  /// threat model's network attacker.
  void set_loss_rate(NodeId a, NodeId b, double probability);
  [[nodiscard]] uint64_t messages_dropped() const { return dropped_; }

  /// Fault-injection plan (loss/duplication/reordering/jitter/outage
  /// windows). All probabilistic decisions draw from the sim's DRBG, and
  /// an empty plan draws nothing, so fault-free runs are byte-identical
  /// to runs without a plan.
  [[nodiscard]] FaultPlan& fault_plan() { return faults_; }
  [[nodiscard]] const FaultPlan& fault_plan() const { return faults_; }

  /// Schedules `fn` to run at now + delay. Timers share the event queue
  /// with messages, so ties are (time, seq)-ordered like everything else.
  /// If `owner` is a valid node id and that node unregisters before the
  /// timer fires, the timer is silently discarded (the callback may
  /// capture the node). Returns a handle for cancel_timer().
  TimerId schedule_timer(double delay, NodeId owner, SmallFn fn);

  /// Cancels a pending timer; false if it already fired or was cancelled.
  /// The callback (and anything it captured) is destroyed immediately.
  bool cancel_timer(TimerId id);

  /// Enqueues a message (called by Node::send; usable directly in tests).
  void post(Message msg);

  /// Installs a passive wiretap observing every posted message — the
  /// paper's network attacker can read (and with post()) inject arbitrary
  /// traffic; it cannot read inside enclaves. Pass nullptr to remove.
  void set_wiretap(std::function<void(const Message&)> tap) {
    wiretap_ = std::move(tap);
  }

  /// Attaches a periodic registry scraper: every `period` simulated
  /// seconds of virtual time crossed by the event clock takes one sample
  /// (stamped at the exact period boundary, so cadence is even no matter
  /// how events cluster). Scrapes happen inside step() rather than as
  /// self-rescheduling timers, so an attached scraper never keeps an
  /// otherwise-quiescent simulation alive. Pass nullptr to detach.
  void attach_scraper(telemetry::Scraper* scraper, double period = 0.001);

  /// Delivers the next event; false when idle.
  bool step();

  /// Runs until quiescent; returns events delivered. `max_events == 0`
  /// uses the configured cap (set_run_cap). Hitting the cap with events
  /// still queued bumps `net.run.cap_hit`, prints a warning, and throws —
  /// a large scenario can never silently truncate.
  size_t run(size_t max_events = 0);

  /// Configures the default run() safety cap; 0 disables it entirely.
  void set_run_cap(size_t cap) { run_cap_ = cap; }
  [[nodiscard]] size_t run_cap() const { return run_cap_; }

  [[nodiscard]] const TrafficStats& stats(NodeId node) const;
  [[nodiscard]] uint64_t total_messages_delivered() const { return delivered_; }
  [[nodiscard]] size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] Node* find_node(NodeId id) const;
  [[nodiscard]] const std::string& node_name(NodeId id) const;

 private:
  friend class Node;
  NodeId register_node(Node* node, const std::string& name);
  void unregister_node(NodeId id);

  /// Computes delivery delay (with jitter/reorder faults) and enqueues.
  /// `payload_slot` carries a shared payload for duplicated messages
  /// (kNilSlot = payload inline in msg); `lk` is the normalized link key,
  /// computed once per post().
  void enqueue(Message msg, uint32_t payload_slot, uint64_t lk,
               const LinkFaults& faults);

  [[nodiscard]] TrafficStats& stats_ref(NodeId id);

  /// Takes any scraper samples due at period boundaries <= now_.
  void maybe_scrape();

  /// Emits the partition-heal fleet event when the clock leaves every
  /// scheduled partition window after a cut was observed.
  void poll_partition_heal();

  double now_ = 0;
  double default_latency_ = 0.001;   // 1 ms
  double bandwidth_ = 1.25e9;        // 10 Gbps
  uint64_t next_seq_ = 0;
  uint64_t delivered_ = 0;
  NodeId next_id_ = 1;
  crypto::Drbg rng_;
  // Dense node tables indexed by NodeId (ids are assigned sequentially
  // from 1; slot 0 is unused). names_ and stats_ outlive unregistration,
  // as before — only the Node* is cleared.
  std::vector<Node*> nodes_;
  std::vector<std::string> names_;
  std::vector<TrafficStats> stats_;
  /// Traffic posted with a forged/unregistered source id (wiretap
  /// injection) is still accounted, just off the dense path.
  U64Map<TrafficStats> stats_overflow_;
  U64Map<double> latencies_;  // by link_key(a, b)
  U64Map<bool> cut_;          // by link_key(a, b)
  U64Map<double> loss_;       // by link_key(a, b)
  uint64_t dropped_ = 0;
  FaultPlan faults_;
  /// True between the first message dropped by a partition window and the
  /// first event after every window closes (cut/heal fleet events).
  bool partition_open_ = false;
  // Directed per-link delivery horizon: links are ordered byte streams
  // (TCP-like), so a small message posted after a large one on the same
  // link must not overtake it.
  U64Map<double> link_horizon_;  // by directed_link_key(src, dst)
  /// Enqueues until the next sweep of expired FIFO horizons, and the
  /// table size below which a sweep is skipped as not worth the rebuild
  /// (sim.cpp). Sweeps only discard entries that can no longer affect
  /// any arrival, so the cadence is a pure performance knob.
  static constexpr size_t kHorizonSweepPeriod = 8192;
  static constexpr size_t kHorizonSweepMin = 4096;
  size_t horizon_sweep_in_ = kHorizonSweepPeriod;
  MessagePool pool_;
  CalendarQueue queue_;
  size_t run_cap_ = 1'000'000;
  std::function<void(const Message&)> wiretap_;
  telemetry::Scraper* scraper_ = nullptr;
  double scrape_period_ = 0.001;
  double next_scrape_due_ = 0;
};

}  // namespace tenet::netsim
