// RobustChannel: a SecureChannel that survives faults.
//
// The paper establishes channels once, at first contact (§5); under
// injected faults that is not enough — records get lost, peers restart
// and lose their keys, MACs fail. RobustChannel wraps the record layer
// with the bookkeeping recovery needs: key epochs (each re-attestation
// installs a fresh key), consecutive-failure tracking (to tell a burst of
// tampering from a dead peer), and proactive rekey signals before nonce
// exhaustion. The retry schedule itself (exponential backoff + DRBG
// jitter, bounded attempts) lives in RetryPolicy and is executed by the
// SecureApp runtime via simulator timers.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/rng.h"
#include "netsim/secure_channel.h"

namespace tenet::netsim {

/// Knobs for attestation retry / re-handshake. Disabled by default so
/// existing deployments behave exactly as before; scenarios that inject
/// faults opt in.
struct RetryPolicy {
  bool enabled = false;
  /// Handshake attempts before giving up on a peer (1 = no retry).
  uint32_t max_attempts = 5;
  double base_delay = 0.05;  // seconds before the first retry
  double multiplier = 2.0;   // exponential backoff factor
  double max_delay = 2.0;    // backoff cap (seconds)
  /// Fraction of the backoff added as random jitter: the delay for
  /// attempt k is min(base * multiplier^k, max) * (1 + U[0,1) * jitter).
  double jitter = 0.5;
  /// Consecutive SecureChannel::open failures on an established channel
  /// before the peer is presumed restarted/compromised and re-attested.
  uint32_t mac_failure_threshold = 3;
};

/// Backoff before retry number `attempt` (0-based), jittered from `rng`.
/// Deterministic given the DRBG state; draws exactly one value iff
/// policy.jitter > 0.
double backoff_delay(const RetryPolicy& policy, uint32_t attempt,
                     crypto::Drbg& rng);

class RobustChannel {
 public:
  /// Installs a fresh key (first handshake or rekey). Bumps the epoch and
  /// clears failure tracking.
  void install(crypto::BytesView key, bool initiator);

  /// Drops the channel (peer restart detected / giving up). The epoch is
  /// kept so counters survive the reset.
  void reset();

  [[nodiscard]] bool ready() const { return channel_.has_value(); }

  /// Record layer pass-through. seal() requires ready(); open() returns
  /// nullopt when not ready.
  [[nodiscard]] crypto::Bytes seal(crypto::BytesView plaintext);
  [[nodiscard]] std::optional<crypto::Bytes> open(crypto::BytesView record);

  /// Zero-copy pass-throughs (see SecureChannel::sealed_size/seal_into).
  /// seal_into() requires ready(), like seal().
  [[nodiscard]] static constexpr size_t sealed_size(size_t plaintext_len) {
    return SecureChannel::sealed_size(plaintext_len);
  }
  void seal_into(crypto::BytesView plaintext, std::span<uint8_t> out);

  /// In-place open pass-through (see SecureChannel::open_in_place). Updates
  /// the consecutive-failure count exactly like open().
  [[nodiscard]] std::optional<size_t> open_in_place(std::span<uint8_t> record);

  /// Batched in-place open pass-through (see SecureChannel::open_batch).
  /// results[i] equals open_in_place(records[i]) in order, including the
  /// per-record consecutive-failure bookkeeping; when no key is installed,
  /// every result is nullopt and no failure is recorded (matching open()).
  void open_batch(std::span<const std::span<uint8_t>> records,
                  std::span<std::optional<size_t>> results);

  /// Number of keys installed over this channel's life (1 = never rekeyed).
  [[nodiscard]] uint32_t epoch() const { return epoch_; }

  /// open() failures since the last success on the current key.
  [[nodiscard]] uint32_t consecutive_failures() const {
    return consecutive_failures_;
  }

  /// True when the current key is near nonce exhaustion (see
  /// SecureChannel::needs_rekey) and the owner should re-handshake.
  [[nodiscard]] bool needs_rekey() const {
    return channel_.has_value() && channel_->needs_rekey();
  }

  /// Access to the wrapped channel (tests; nullptr when not ready).
  [[nodiscard]] SecureChannel* channel() {
    return channel_.has_value() ? &*channel_ : nullptr;
  }

 private:
  std::optional<SecureChannel> channel_;
  uint32_t epoch_ = 0;
  uint32_t consecutive_failures_ = 0;
};

}  // namespace tenet::netsim
