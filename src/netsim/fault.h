// Deterministic fault injection for the network simulator.
//
// A FaultPlan describes *what can go wrong* on the wire: per-link loss,
// duplication, reordering, latency jitter, and scheduled down->up windows
// for links and nodes. The Simulator consults the plan at post/delivery
// time and draws every probabilistic decision from its own seeded DRBG,
// so a given (seed, plan, workload) triple replays the exact same fault
// schedule. A default-constructed plan injects nothing and costs no RNG
// draws, keeping fault-free runs byte-identical to a simulator without a
// plan at all.
//
// Plan state is keyed by the same normalized link_key() the Simulator
// uses (flat_hash.h), so per-event fault lookups are O(1) flat-hash
// probes rather than ordered-map walks.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/flat_hash.h"

namespace tenet::netsim {

/// Per-link fault knobs. Probabilities are independent per message.
struct LinkFaults {
  double loss = 0;       // drop probability
  double duplicate = 0;  // probability the message is delivered twice
  double reorder = 0;    // probability the message escapes FIFO ordering
  double jitter = 0;     // max extra latency (seconds), uniform [0, jitter)
  /// Extra delay applied to a reordered message; later messages on the
  /// link may overtake it because it does not advance the FIFO horizon.
  double reorder_delay = 0.002;

  [[nodiscard]] bool any() const {
    return loss > 0 || duplicate > 0 || reorder > 0 || jitter > 0;
  }
};

/// Injection totals, kept by the plan and bumped by the Simulator.
struct FaultCounters {
  uint64_t lost = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t jittered = 0;
  uint64_t window_dropped = 0;  // dropped inside a link/node down window
  uint64_t partitioned = 0;     // dropped by a network-partition window
};

class FaultPlan {
 public:
  /// Faults applied to links with no per-link override.
  void set_default(const LinkFaults& faults);

  /// Per-link override (symmetric: applies to both directions).
  void set_link(NodeId a, NodeId b, const LinkFaults& faults);

  [[nodiscard]] const LinkFaults& faults(NodeId a, NodeId b) const;

  /// Schedules a down->up window: messages crossing the link (either
  /// direction) during [from, until) are dropped.
  void add_link_window(NodeId a, NodeId b, double from, double until);

  /// Schedules a node outage: messages sent by or arriving at the node
  /// during [from, until) are dropped.
  void add_node_window(NodeId node, double from, double until);

  /// Schedules a symmetric network partition: every message between a node
  /// in `side_a` and a node in `side_b` (either direction) during
  /// [from, until) is dropped. Traffic within a side is untouched — this is
  /// the split-brain primitive for replica groups (the minority side must
  /// fail closed while the majority keeps serving).
  void add_partition(const std::vector<NodeId>& side_a,
                     const std::vector<NodeId>& side_b, double from,
                     double until);

  [[nodiscard]] bool node_up(NodeId node, double t) const;
  [[nodiscard]] bool link_window_up(NodeId a, NodeId b, double t) const;
  /// False while (a, b) is cut by a scheduled partition.
  [[nodiscard]] bool partition_up(NodeId a, NodeId b, double t) const;
  /// True while any scheduled partition window (any pair) covers `t` —
  /// the simulator uses the falling edge to emit the partition-heal event.
  [[nodiscard]] bool any_partition_active(double t) const;

  /// True when no knob is set anywhere — the Simulator's fast path.
  [[nodiscard]] bool empty() const {
    return !default_.any() && per_link_.empty() && link_windows_.empty() &&
           node_windows_.empty() && partition_windows_.empty();
  }

  [[nodiscard]] const FaultCounters& counters() const { return counters_; }
  [[nodiscard]] FaultCounters& counters() { return counters_; }

 private:
  struct Window {
    double from;
    double until;
  };
  static bool in_any(const std::vector<Window>& windows, double t);

  LinkFaults default_;
  U64Map<LinkFaults> per_link_;               // by link_key(a, b)
  U64Map<std::vector<Window>> link_windows_;  // by link_key(a, b)
  U64Map<std::vector<Window>> node_windows_;  // by node id
  U64Map<std::vector<Window>> partition_windows_;  // by link_key(a, b)
  std::vector<Window> all_partitions_;  // one per add_partition call
  FaultCounters counters_;
};

}  // namespace tenet::netsim
