// MTU fragmentation and reassembly.
//
// The simulator delivers application messages whole (and counts their MTU
// packets in the statistics); protocols that need to see real packet
// boundaries — like the Table 2 I/O rig or a future datagram transport —
// use this module to split byte streams into MTU-sized fragments and
// reassemble them, tolerating reordering and detecting loss.
#pragma once

#include <map>
#include <optional>

#include "crypto/bytes.h"
#include "netsim/sim.h"

namespace tenet::netsim {

/// One wire fragment: | u32 message id | u16 index | u16 count | payload |.
struct Fragment {
  uint32_t message_id = 0;
  uint16_t index = 0;
  uint16_t count = 0;
  crypto::Bytes payload;

  [[nodiscard]] crypto::Bytes serialize() const;
  static Fragment deserialize(crypto::BytesView wire);

  static constexpr size_t kHeader = 8;
  static constexpr size_t kMaxPayload = kMtu - kHeader;
};

/// Splits `message` into MTU-sized fragments under a fresh message id.
class Fragmenter {
 public:
  /// Returns at least one fragment (empty messages produce one empty
  /// fragment). Throws std::invalid_argument if the message would need
  /// more than 65535 fragments.
  std::vector<Fragment> split(crypto::BytesView message);

 private:
  uint32_t next_id_ = 1;
};

/// Reassembles fragments (any arrival order, interleaved messages).
class Reassembler {
 public:
  /// Feeds one fragment; returns the complete message when this fragment
  /// completes it. Duplicate fragments are ignored; fragments disagreeing
  /// with the message's established count are rejected (nullopt, message
  /// state dropped — a malformed sender).
  std::optional<crypto::Bytes> feed(const Fragment& fragment);

  /// Messages started but not yet complete (loss diagnostics).
  [[nodiscard]] size_t incomplete_count() const { return partial_.size(); }
  /// Drops an incomplete message (timeout path).
  void abandon(uint32_t message_id) { partial_.erase(message_id); }

 private:
  struct Partial {
    uint16_t count = 0;
    std::map<uint16_t, crypto::Bytes> pieces;
  };
  std::map<uint32_t, Partial> partial_;
};

}  // namespace tenet::netsim
