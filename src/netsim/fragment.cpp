#include "netsim/fragment.h"

#include <stdexcept>

namespace tenet::netsim {

crypto::Bytes Fragment::serialize() const {
  crypto::Bytes out;
  out.reserve(kHeader + payload.size());
  crypto::append_u32(out, message_id);
  out.push_back(static_cast<uint8_t>(index >> 8));
  out.push_back(static_cast<uint8_t>(index));
  out.push_back(static_cast<uint8_t>(count >> 8));
  out.push_back(static_cast<uint8_t>(count));
  crypto::append(out, payload);
  return out;
}

Fragment Fragment::deserialize(crypto::BytesView wire) {
  crypto::Reader r(wire);
  Fragment f;
  f.message_id = r.u32();
  f.index = static_cast<uint16_t>((r.u8() << 8) | r.u8());
  f.count = static_cast<uint16_t>((r.u8() << 8) | r.u8());
  f.payload = r.take(r.remaining());
  return f;
}

std::vector<Fragment> Fragmenter::split(crypto::BytesView message) {
  const size_t count =
      message.empty() ? 1
                      : (message.size() + Fragment::kMaxPayload - 1) /
                            Fragment::kMaxPayload;
  if (count > 0xffff) {
    throw std::invalid_argument("Fragmenter: message too large");
  }
  const uint32_t id = next_id_++;
  std::vector<Fragment> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Fragment f;
    f.message_id = id;
    f.index = static_cast<uint16_t>(i);
    f.count = static_cast<uint16_t>(count);
    const size_t off = i * Fragment::kMaxPayload;
    const size_t len = std::min(Fragment::kMaxPayload, message.size() - off);
    f.payload.assign(message.begin() + static_cast<ptrdiff_t>(off),
                     message.begin() + static_cast<ptrdiff_t>(off + len));
    out.push_back(std::move(f));
  }
  return out;
}

std::optional<crypto::Bytes> Reassembler::feed(const Fragment& fragment) {
  if (fragment.count == 0 || fragment.index >= fragment.count) {
    return std::nullopt;
  }
  Partial& p = partial_[fragment.message_id];
  if (p.count == 0) {
    p.count = fragment.count;
  } else if (p.count != fragment.count) {
    // Inconsistent sender: drop the whole message.
    partial_.erase(fragment.message_id);
    return std::nullopt;
  }
  p.pieces.emplace(fragment.index, fragment.payload);  // dup-safe

  if (p.pieces.size() < p.count) return std::nullopt;
  crypto::Bytes message;
  for (const auto& [index, piece] : p.pieces) {
    crypto::append(message, piece);
  }
  partial_.erase(fragment.message_id);
  return message;
}

}  // namespace tenet::netsim
