// Flat open-addressing hash map keyed by uint64_t, plus the normalized
// link-key helpers shared by the Simulator and the FaultPlan.
//
// Per-link attributes (latency, cut, loss, fault knobs, FIFO horizons) sit
// on the per-event hot path. std::map kept them behind an allocation per
// entry and an O(log n) pointer chase per lookup; at internet scale that
// dominated event dispatch (DESIGN.md §12). U64Map packs entries into one
// contiguous slot array with linear probing: O(1) expected find/insert,
// no per-entry allocation, and no iteration-order dependence anywhere (the
// engine never iterates it), so determinism is unaffected by hash layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tenet::netsim {

using NodeId = uint32_t;

/// Packs a directed node pair into one 64-bit key (src in the high half).
[[nodiscard]] constexpr uint64_t directed_link_key(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// Normalized (min,max) key: both directions of a link map to one key.
/// The single place ordered-pair normalization happens — latency(),
/// link_up(), loss checks and the fault plan all share it, so a link's
/// attributes are looked up once per event instead of re-normalizing in
/// every accessor.
[[nodiscard]] constexpr uint64_t link_key(NodeId a, NodeId b) {
  return a < b ? directed_link_key(a, b) : directed_link_key(b, a);
}

/// Open-addressing hash map from uint64_t keys to T. Supports find and
/// insert-or-default (no erase — the simulator's link state only grows,
/// and "unset" values like a healed cut are stored, not removed).
template <typename T>
class U64Map {
 public:
  U64Map() = default;

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 7 < n * 10) cap <<= 1;  // keep load factor under 70%
    if (cap > slots_.size()) rehash(cap);
  }

  [[nodiscard]] T* find(uint64_t key) {
    if (slots_.empty()) return nullptr;
    for (size_t i = hash(key) & mask_;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (!s.used) return nullptr;
      if (s.key == key) return &s.value;
    }
  }
  [[nodiscard]] const T* find(uint64_t key) const {
    return const_cast<U64Map*>(this)->find(key);
  }

  /// Returns the value for `key`, default-constructing it on first use.
  T& operator[](uint64_t key) {
    if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    for (size_t i = hash(key) & mask_;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        ++size_;
        return s.value;
      }
      if (s.key == key) return s.value;
    }
  }

  /// Drops every entry whose value fails `keep` and compacts the table to
  /// fit the survivors. Used to sweep expired per-link FIFO horizons: on
  /// large topologies the directed-link key space is effectively
  /// unbounded, and without expiry every probe degrades into a cache miss
  /// in an ever-growing table.
  template <typename Keep>
  void retain(Keep&& keep) {
    if (size_ == 0) return;
    std::vector<Slot> old = std::move(slots_);
    size_t survivors = 0;
    for (const Slot& s : old) {
      if (s.used && keep(s.value)) ++survivors;
    }
    size_t cap = kMinCapacity;
    while (cap * 7 < survivors * 10) cap <<= 1;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    size_ = 0;
    for (Slot& s : old) {
      if (!s.used || !keep(s.value)) continue;
      size_t i = hash(s.key) & mask_;
      while (slots_[i].used) i = (i + 1) & mask_;
      slots_[i].used = true;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
      ++size_;
    }
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  struct Slot {
    uint64_t key = 0;
    T value{};
    bool used = false;
  };

  /// splitmix64 finalizer: full-avalanche mix of the packed pair.
  [[nodiscard]] static size_t hash(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  }

  void rehash(size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    for (Slot& s : old) {
      if (!s.used) continue;
      size_t i = hash(s.key) & mask_;
      while (slots_[i].used) i = (i + 1) & mask_;
      slots_[i].used = true;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t mask_ = 0;
};

}  // namespace tenet::netsim
