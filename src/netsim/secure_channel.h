// Secure channel: the record layer the paper's designs run after remote
// attestation ("communication between the AS-local and inter-domain
// controller is done through a secure channel that is established during
// remote attestation", §3.1).
//
// Key material comes from the attestation session key; records are
// AES-128-CTR + HMAC-SHA256 with per-direction nonces and strictly
// monotone sequence numbers (replay rejection).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>

#include "crypto/aead.h"

namespace tenet::netsim {

/// Thrown by SecureChannel::seal when the send sequence reaches the
/// nonce-space limit: sealing further records would reuse a CTR nonce,
/// which is catastrophic for AES-CTR. Callers must rekey (re-attest)
/// before this point; RobustChannel does so proactively.
class NonceExhaustedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class SecureChannel {
 public:
  static constexpr size_t kKeySize = crypto::Aead::kKeySize;

  /// Hard ceiling on records per key. 2^48 leaves the top 16 bits of the
  /// 64-bit record sequence as margin against (nonce, seq) collisions.
  static constexpr uint64_t kDefaultSeqLimit = uint64_t{1} << 48;

  /// Both endpoints derive the same 32-byte key (e.g. from the attestation
  /// session); `initiator` picks which direction nonce each side sends on.
  SecureChannel(crypto::BytesView key, bool initiator);

  /// Sequence-number snapshot for suspend/resume (SessionCache). A channel
  /// resumed from a snapshot seals and opens byte-identically to one that
  /// stayed live.
  struct Resume {
    uint64_t send_seq = 0;
    uint64_t next_recv_seq = 0;
    uint64_t received = 0;
  };

  /// Rebuilds a channel from the same key material plus a snapshot; this
  /// re-expands the AES key schedule and HMAC midstates, which is what the
  /// SessionCache hot tier amortizes.
  SecureChannel(crypto::BytesView key, bool initiator, const Resume& resume);

  /// Snapshot of the live sequence state (see Resume).
  [[nodiscard]] Resume resume_state() const {
    return Resume{send_seq_, next_recv_seq_, received_};
  }

  /// Seals an outgoing record (increments the send sequence).
  [[nodiscard]] crypto::Bytes seal(crypto::BytesView plaintext);

  /// Exact sealed length for `plaintext_len` payload bytes.
  static constexpr size_t sealed_size(size_t plaintext_len) {
    return crypto::Aead::sealed_size(plaintext_len);
  }

  /// Zero-copy seal: writes the record into `out` (exactly
  /// sealed_size(plaintext.size()) bytes — e.g. the tail of a framed ocall
  /// request or a pooled message payload). Byte-identical to seal().
  void seal_into(crypto::BytesView plaintext, std::span<uint8_t> out);

  /// One record of a batched seal; `out` must hold
  /// sealed_size(plaintext.size()) bytes.
  struct SealSlot {
    crypto::BytesView plaintext;
    uint8_t* out = nullptr;
  };

  /// Seals a batch of outgoing records through the multi-buffer kernels.
  /// Sequence numbers are assigned in slot order; the output bytes are
  /// identical to calling seal_into per slot, in order.
  void seal_batch(std::span<const SealSlot> slots);

  /// Opens an incoming record. Returns nullopt on MAC failure, wrong
  /// direction, or replayed/reordered-below-window sequence numbers.
  [[nodiscard]] std::optional<crypto::Bytes> open(crypto::BytesView record);

  /// In-place open: decrypts inside `record`, returning the plaintext
  /// length on success (plaintext at record[Aead::kHeaderSize..]). Same
  /// acceptance rules and counters as open().
  [[nodiscard]] std::optional<size_t> open_in_place(std::span<uint8_t> record);

  /// Batched in-place open — the receive-side mirror of seal_batch.
  /// results[i] equals calling open_in_place(records[i]) in order: same
  /// acceptance decisions, same counters, same final sequence state, and a
  /// rejected record's buffer is never modified. MAC verification and CTR
  /// decryption each run as one multi-buffer dispatch. (Cost note: every
  /// well-formed record is MAC-verified up front, so a batch that mixes
  /// replayed records with fresh ones charges MAC work the scalar loop
  /// would have skipped; a drained in-order stream charges identically.)
  void open_batch(std::span<const std::span<uint8_t>> records,
                  std::span<std::optional<size_t>> results);

  [[nodiscard]] uint64_t records_sent() const { return send_seq_; }
  [[nodiscard]] uint64_t records_received() const { return received_; }
  [[nodiscard]] uint64_t next_recv_seq() const { return next_recv_seq_; }

  /// Adjusts the nonce-exhaustion guard: seal() throws NonceExhaustedError
  /// at `hard_limit` records; needs_rekey() turns true `rekey_margin`
  /// records earlier so callers can rekey before hitting the wall.
  void set_seq_limit(uint64_t hard_limit, uint64_t rekey_margin = 1024);

  /// True once the channel is close enough to the sequence limit that the
  /// owner should negotiate a fresh key.
  [[nodiscard]] bool needs_rekey() const {
    return send_seq_ + rekey_margin_ >= seq_limit_;
  }

  /// Test hook: jump the send sequence forward (never backward) to
  /// exercise the exhaustion path without sealing 2^48 records.
  void advance_send_seq(uint64_t seq);

 private:
  crypto::Aead aead_;
  uint64_t send_nonce_;
  uint64_t recv_nonce_;
  uint64_t send_seq_ = 0;
  uint64_t next_recv_seq_ = 0;
  uint64_t received_ = 0;
  uint64_t seq_limit_ = kDefaultSeqLimit;
  uint64_t rekey_margin_ = 1024;
};

}  // namespace tenet::netsim
