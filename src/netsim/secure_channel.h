// Secure channel: the record layer the paper's designs run after remote
// attestation ("communication between the AS-local and inter-domain
// controller is done through a secure channel that is established during
// remote attestation", §3.1).
//
// Key material comes from the attestation session key; records are
// AES-128-CTR + HMAC-SHA256 with per-direction nonces and strictly
// monotone sequence numbers (replay rejection).
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/aead.h"

namespace tenet::netsim {

class SecureChannel {
 public:
  static constexpr size_t kKeySize = crypto::Aead::kKeySize;

  /// Both endpoints derive the same 32-byte key (e.g. from the attestation
  /// session); `initiator` picks which direction nonce each side sends on.
  SecureChannel(crypto::BytesView key, bool initiator);

  /// Seals an outgoing record (increments the send sequence).
  [[nodiscard]] crypto::Bytes seal(crypto::BytesView plaintext);

  /// Opens an incoming record. Returns nullopt on MAC failure, wrong
  /// direction, or replayed/reordered-below-window sequence numbers.
  [[nodiscard]] std::optional<crypto::Bytes> open(crypto::BytesView record);

  [[nodiscard]] uint64_t records_sent() const { return send_seq_; }
  [[nodiscard]] uint64_t records_received() const { return received_; }

 private:
  crypto::Aead aead_;
  uint64_t send_nonce_;
  uint64_t recv_nonce_;
  uint64_t send_seq_ = 0;
  uint64_t next_recv_seq_ = 0;
  uint64_t received_ = 0;
};

}  // namespace tenet::netsim
