// Secure channel: the record layer the paper's designs run after remote
// attestation ("communication between the AS-local and inter-domain
// controller is done through a secure channel that is established during
// remote attestation", §3.1).
//
// Key material comes from the attestation session key; records are
// AES-128-CTR + HMAC-SHA256 with per-direction nonces and strictly
// monotone sequence numbers (replay rejection).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "crypto/aead.h"

namespace tenet::netsim {

/// Thrown by SecureChannel::seal when the send sequence reaches the
/// nonce-space limit: sealing further records would reuse a CTR nonce,
/// which is catastrophic for AES-CTR. Callers must rekey (re-attest)
/// before this point; RobustChannel does so proactively.
class NonceExhaustedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class SecureChannel {
 public:
  static constexpr size_t kKeySize = crypto::Aead::kKeySize;

  /// Hard ceiling on records per key. 2^48 leaves the top 16 bits of the
  /// 64-bit record sequence as margin against (nonce, seq) collisions.
  static constexpr uint64_t kDefaultSeqLimit = uint64_t{1} << 48;

  /// Both endpoints derive the same 32-byte key (e.g. from the attestation
  /// session); `initiator` picks which direction nonce each side sends on.
  SecureChannel(crypto::BytesView key, bool initiator);

  /// Seals an outgoing record (increments the send sequence).
  [[nodiscard]] crypto::Bytes seal(crypto::BytesView plaintext);

  /// Opens an incoming record. Returns nullopt on MAC failure, wrong
  /// direction, or replayed/reordered-below-window sequence numbers.
  [[nodiscard]] std::optional<crypto::Bytes> open(crypto::BytesView record);

  [[nodiscard]] uint64_t records_sent() const { return send_seq_; }
  [[nodiscard]] uint64_t records_received() const { return received_; }

  /// Adjusts the nonce-exhaustion guard: seal() throws NonceExhaustedError
  /// at `hard_limit` records; needs_rekey() turns true `rekey_margin`
  /// records earlier so callers can rekey before hitting the wall.
  void set_seq_limit(uint64_t hard_limit, uint64_t rekey_margin = 1024);

  /// True once the channel is close enough to the sequence limit that the
  /// owner should negotiate a fresh key.
  [[nodiscard]] bool needs_rekey() const {
    return send_seq_ + rekey_margin_ >= seq_limit_;
  }

  /// Test hook: jump the send sequence forward (never backward) to
  /// exercise the exhaustion path without sealing 2^48 records.
  void advance_send_seq(uint64_t seq);

 private:
  crypto::Aead aead_;
  uint64_t send_nonce_;
  uint64_t recv_nonce_;
  uint64_t send_seq_ = 0;
  uint64_t next_recv_seq_ = 0;
  uint64_t received_ = 0;
  uint64_t seq_limit_ = kDefaultSeqLimit;
  uint64_t rekey_margin_ = 1024;
};

}  // namespace tenet::netsim
