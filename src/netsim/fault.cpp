#include "netsim/fault.h"

#include <stdexcept>
#include <string>

namespace tenet::netsim {

namespace {
void check_probability(double p, const char* what) {
  if (p < 0 || p > 1) {
    throw std::invalid_argument(std::string("FaultPlan: bad ") + what);
  }
}
void validate(const LinkFaults& faults) {
  check_probability(faults.loss, "loss");
  check_probability(faults.duplicate, "duplicate");
  check_probability(faults.reorder, "reorder");
  if (faults.jitter < 0 || faults.reorder_delay < 0) {
    throw std::invalid_argument("FaultPlan: negative delay");
  }
}
}  // namespace

void FaultPlan::set_default(const LinkFaults& faults) {
  validate(faults);
  default_ = faults;
}

void FaultPlan::set_link(NodeId a, NodeId b, const LinkFaults& faults) {
  validate(faults);
  per_link_[link_key(a, b)] = faults;
}

const LinkFaults& FaultPlan::faults(NodeId a, NodeId b) const {
  const LinkFaults* f = per_link_.find(link_key(a, b));
  return f != nullptr ? *f : default_;
}

void FaultPlan::add_link_window(NodeId a, NodeId b, double from, double until) {
  if (until < from) throw std::invalid_argument("FaultPlan: window ends early");
  link_windows_[link_key(a, b)].push_back(Window{from, until});
}

void FaultPlan::add_node_window(NodeId node, double from, double until) {
  if (until < from) throw std::invalid_argument("FaultPlan: window ends early");
  node_windows_[node].push_back(Window{from, until});
}

void FaultPlan::add_partition(const std::vector<NodeId>& side_a,
                              const std::vector<NodeId>& side_b, double from,
                              double until) {
  if (until < from) throw std::invalid_argument("FaultPlan: window ends early");
  for (const NodeId a : side_a) {
    for (const NodeId b : side_b) {
      if (a == b) {
        throw std::invalid_argument("FaultPlan: node on both partition sides");
      }
      partition_windows_[link_key(a, b)].push_back(Window{from, until});
    }
  }
  all_partitions_.push_back(Window{from, until});
}

bool FaultPlan::any_partition_active(double t) const {
  return in_any(all_partitions_, t);
}

bool FaultPlan::in_any(const std::vector<Window>& windows, double t) {
  for (const Window& w : windows) {
    if (t >= w.from && t < w.until) return true;
  }
  return false;
}

bool FaultPlan::node_up(NodeId node, double t) const {
  const std::vector<Window>* w = node_windows_.find(node);
  return w == nullptr || !in_any(*w, t);
}

bool FaultPlan::link_window_up(NodeId a, NodeId b, double t) const {
  const std::vector<Window>* w = link_windows_.find(link_key(a, b));
  return w == nullptr || !in_any(*w, t);
}

bool FaultPlan::partition_up(NodeId a, NodeId b, double t) const {
  if (partition_windows_.empty()) return true;
  const std::vector<Window>* w = partition_windows_.find(link_key(a, b));
  return w == nullptr || !in_any(*w, t);
}

}  // namespace tenet::netsim
