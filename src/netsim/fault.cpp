#include "netsim/fault.h"

#include <stdexcept>

namespace tenet::netsim {

namespace {
std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void check_probability(double p, const char* what) {
  if (p < 0 || p > 1) {
    throw std::invalid_argument(std::string("FaultPlan: bad ") + what);
  }
}
void validate(const LinkFaults& faults) {
  check_probability(faults.loss, "loss");
  check_probability(faults.duplicate, "duplicate");
  check_probability(faults.reorder, "reorder");
  if (faults.jitter < 0 || faults.reorder_delay < 0) {
    throw std::invalid_argument("FaultPlan: negative delay");
  }
}
}  // namespace

void FaultPlan::set_default(const LinkFaults& faults) {
  validate(faults);
  default_ = faults;
}

void FaultPlan::set_link(NodeId a, NodeId b, const LinkFaults& faults) {
  validate(faults);
  per_link_[ordered(a, b)] = faults;
}

const LinkFaults& FaultPlan::faults(NodeId a, NodeId b) const {
  const auto it = per_link_.find(ordered(a, b));
  return it != per_link_.end() ? it->second : default_;
}

void FaultPlan::add_link_window(NodeId a, NodeId b, double from, double until) {
  if (until < from) throw std::invalid_argument("FaultPlan: window ends early");
  link_windows_[ordered(a, b)].push_back(Window{from, until});
}

void FaultPlan::add_node_window(NodeId node, double from, double until) {
  if (until < from) throw std::invalid_argument("FaultPlan: window ends early");
  node_windows_[node].push_back(Window{from, until});
}

bool FaultPlan::in_any(const std::vector<Window>& windows, double t) {
  for (const Window& w : windows) {
    if (t >= w.from && t < w.until) return true;
  }
  return false;
}

bool FaultPlan::node_up(NodeId node, double t) const {
  const auto it = node_windows_.find(node);
  return it == node_windows_.end() || !in_any(it->second, t);
}

bool FaultPlan::link_window_up(NodeId a, NodeId b, double t) const {
  const auto it = link_windows_.find(ordered(a, b));
  return it == link_windows_.end() || !in_any(it->second, t);
}

}  // namespace tenet::netsim
