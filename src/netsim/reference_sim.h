// Reference event engine: the simulator core as it existed before the
// internet-scale rewrite (calendar queue + slab pool, DESIGN.md §12),
// preserved verbatim-in-semantics under the `refsim` namespace.
//
// Two consumers, both honest-comparison tools rather than production
// code paths:
//
//  * tests/netsim/scale_test.cpp runs identical seeded workloads through
//    both engines and asserts event-for-event equality — delivery order,
//    timestamps, statistics, RNG stream consumption — which is the
//    machine-checked form of the determinism contract the rewrite claims.
//  * bench/bench_scale.cpp times this engine against the new one on the
//    same workload to report a genuine before/after speedup, not a
//    number against a strawman.
//
// It deliberately keeps the original data structures: std::map node and
// link state, a binary-heap priority_queue of events, std::function
// timer callbacks, per-message heap payloads, and the pending/cancelled
// timer id sets. Telemetry counters match the original too, so both
// engines pay the same instrumentation cost when compared.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/rng.h"
#include "netsim/fault.h"
#include "netsim/message.h"
#include "telemetry/scrape.h"
#include "telemetry/trace.h"

namespace tenet::netsim::refsim {

/// Per-node traffic counters (same layout as netsim::TrafficStats).
struct TrafficStats {
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t packets_sent = 0;
};

class Simulator;

/// Base class for reference-engine network participants.
class Node {
 public:
  Node(Simulator& sim, std::string name);
  virtual ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Simulator& sim() { return sim_; }

  virtual void handle_message(const Message& msg) = 0;

  void send(NodeId dst, uint32_t port, crypto::Bytes payload);

 private:
  Simulator& sim_;
  NodeId id_;
  std::string name_;
};

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1)
      : rng_(crypto::Drbg::from_label(seed, "tenet.netsim")) {}

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] crypto::Drbg& rng() { return rng_; }

  void set_latency(NodeId a, NodeId b, double seconds) {
    latencies_[ordered(a, b)] = seconds;
  }
  void set_default_latency(double seconds) { default_latency_ = seconds; }
  [[nodiscard]] double latency(NodeId a, NodeId b) const {
    const auto it = latencies_.find(ordered(a, b));
    return it != latencies_.end() ? it->second : default_latency_;
  }

  void set_bandwidth(double bytes_per_second) { bandwidth_ = bytes_per_second; }

  void cut_link(NodeId a, NodeId b) { cut_[ordered(a, b)] = true; }
  void heal_link(NodeId a, NodeId b) { cut_[ordered(a, b)] = false; }
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const {
    const auto it = cut_.find(ordered(a, b));
    return it == cut_.end() || !it->second;
  }

  void set_loss_rate(NodeId a, NodeId b, double probability) {
    if (probability < 0 || probability > 1) {
      throw std::invalid_argument("refsim: bad probability");
    }
    loss_[ordered(a, b)] = probability;
  }
  [[nodiscard]] uint64_t messages_dropped() const { return dropped_; }

  [[nodiscard]] FaultPlan& fault_plan() { return faults_; }

  TimerId schedule_timer(double delay, NodeId owner, std::function<void()> fn) {
    if (delay < 0) {
      throw std::invalid_argument("refsim: negative delay");
    }
    const TimerId id = next_timer_id_++;
    Event ev{};
    ev.time = now_ + delay;
    ev.seq = next_seq_++;
    ev.timer_id = id;
    ev.timer_owner = owner;
    ev.timer_fn = std::move(fn);
    TENET_TRACE_CAPTURE(ev.timer_ctx);
    queue_.push(std::move(ev));
    pending_timers_.insert(id);
    TENET_COUNT("net.timer.scheduled");
    return id;
  }

  bool cancel_timer(TimerId id) {
    if (pending_timers_.erase(id) == 0) return false;
    cancelled_timers_.insert(id);
    TENET_COUNT("net.timer.cancelled");
    return true;
  }

  void post(Message msg) {
    if (msg.dst == kInvalidNode) {
      throw std::invalid_argument("refsim: invalid destination");
    }
    if (msg.trace.empty()) TENET_TRACE_CAPTURE(msg.trace);
    auto& s = stats_[msg.src];
    s.messages_sent += 1;
    s.bytes_sent += msg.payload.size();
    s.packets_sent += (msg.payload.size() + kMtu - 1) / kMtu;
    if (msg.payload.empty()) s.packets_sent += 1;
    TENET_COUNT("net.messages_sent");
    TENET_COUNT("net.bytes_sent", msg.payload.size());
    TENET_HISTOGRAM("net.message_bytes", msg.payload.size());

    if (!link_up(msg.src, msg.dst)) {
      ++dropped_;
      TENET_COUNT("net.messages_dropped");
      return;
    }
    const auto lossy = loss_.find(ordered(msg.src, msg.dst));
    if (lossy != loss_.end() && lossy->second > 0 &&
        rng_.uniform_real() < lossy->second) {
      ++dropped_;
      TENET_COUNT("net.messages_dropped");
      return;
    }

    static const LinkFaults kNoFaults;
    const LinkFaults* lf = &kNoFaults;
    if (!faults_.empty()) {
      if (!faults_.node_up(msg.src, now_) || !faults_.node_up(msg.dst, now_) ||
          !faults_.link_window_up(msg.src, msg.dst, now_)) {
        ++dropped_;
        ++faults_.counters().window_dropped;
        TENET_COUNT("net.messages_dropped");
        TENET_COUNT("net.fault.window_drop");
        return;
      }
      lf = &faults_.faults(msg.src, msg.dst);
      if (lf->loss > 0 && rng_.uniform_real() < lf->loss) {
        ++dropped_;
        ++faults_.counters().lost;
        TENET_COUNT("net.messages_dropped");
        TENET_COUNT("net.fault.loss");
        return;
      }
    }
    const bool duplicate =
        lf->duplicate > 0 && rng_.uniform_real() < lf->duplicate;
    if (duplicate) {
      ++faults_.counters().duplicated;
      TENET_COUNT("net.fault.duplicate");
      enqueue(msg, *lf);  // first copy; draws its own jitter/reorder
    }
    enqueue(std::move(msg), *lf);
  }

  bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();
    queue_.pop();
    if (ev.timer_id != 0) {
      if (cancelled_timers_.erase(ev.timer_id) > 0) {
        return true;
      }
      pending_timers_.erase(ev.timer_id);
      if (ev.timer_owner != kInvalidNode && !nodes_.contains(ev.timer_owner)) {
        return true;
      }
      now_ = ev.time;
      TENET_COUNT("net.timer.fired");
      TENET_TRACE_CONTEXT(ev.timer_ctx);
      ev.timer_fn();
      return true;
    }
    now_ = ev.time;
    const auto it = nodes_.find(ev.msg.dst);
    if (it == nodes_.end()) return true;
    if (!faults_.empty() && !faults_.node_up(ev.msg.dst, now_)) {
      ++dropped_;
      ++faults_.counters().window_dropped;
      TENET_COUNT("net.messages_dropped");
      TENET_COUNT("net.fault.window_drop");
      return true;
    }

    auto& s = stats_[ev.msg.dst];
    s.messages_received += 1;
    s.bytes_received += ev.msg.payload.size();
    ++delivered_;
    TENET_COUNT("net.messages_delivered");
    TENET_GAUGE_SET("net.pending_events", static_cast<int64_t>(queue_.size()));
    {
      TENET_TRACE_CONTEXT(ev.msg.trace);
      TENET_SPAN("net", "deliver");
      it->second->handle_message(ev.msg);
    }
    return true;
  }

  size_t run(size_t max_events = 1'000'000) {
    size_t n = 0;
    while (n < max_events && step()) ++n;
    if (n == max_events && !queue_.empty()) {
      throw std::runtime_error("refsim: event cap hit");
    }
    return n;
  }

  [[nodiscard]] const TrafficStats& stats(NodeId node) const {
    static const TrafficStats kEmpty;
    const auto it = stats_.find(node);
    return it != stats_.end() ? it->second : kEmpty;
  }
  [[nodiscard]] uint64_t total_messages_delivered() const { return delivered_; }
  [[nodiscard]] size_t pending_events() const { return queue_.size(); }

 private:
  friend class Node;

  static std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  NodeId register_node(Node* node, const std::string& name) {
    const NodeId id = next_id_++;
    nodes_[id] = node;
    names_[id] = name;
    stats_[id];
    return id;
  }
  void unregister_node(NodeId id) { nodes_.erase(id); }

  struct Event {
    double time;
    uint64_t seq;
    Message msg;
    TimerId timer_id = 0;
    NodeId timer_owner = kInvalidNode;
    std::function<void()> timer_fn;
    telemetry::TraceContext timer_ctx{};
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void enqueue(Message msg, const LinkFaults& faults) {
    const double serialize =
        static_cast<double>(msg.payload.size()) / bandwidth_;
    double arrival = now_ + latency(msg.src, msg.dst) + serialize;
    if (faults.jitter > 0) {
      arrival += rng_.uniform_real() * faults.jitter;
      ++faults_.counters().jittered;
      TENET_COUNT("net.fault.jitter");
    }
    const bool reorder =
        faults.reorder > 0 && rng_.uniform_real() < faults.reorder;
    double& horizon = link_horizon_[{msg.src, msg.dst}];
    if (reorder) {
      ++faults_.counters().reordered;
      TENET_COUNT("net.fault.reorder");
      arrival = std::max(arrival, horizon) + faults.reorder_delay;
    } else {
      arrival = std::max(arrival, horizon);
      horizon = arrival;
    }
    Event ev{};
    ev.time = arrival;
    ev.seq = next_seq_++;
    ev.msg = std::move(msg);
    queue_.push(std::move(ev));
  }

  double now_ = 0;
  double default_latency_ = 0.001;
  double bandwidth_ = 1.25e9;
  uint64_t next_seq_ = 0;
  uint64_t delivered_ = 0;
  NodeId next_id_ = 1;
  crypto::Drbg rng_;
  std::map<NodeId, Node*> nodes_;
  std::map<NodeId, std::string> names_;
  std::map<NodeId, TrafficStats> stats_;
  std::map<std::pair<NodeId, NodeId>, double> latencies_;
  std::map<std::pair<NodeId, NodeId>, bool> cut_;
  std::map<std::pair<NodeId, NodeId>, double> loss_;
  uint64_t dropped_ = 0;
  FaultPlan faults_;
  TimerId next_timer_id_ = 1;
  std::set<TimerId> pending_timers_;
  std::set<TimerId> cancelled_timers_;
  std::map<std::pair<NodeId, NodeId>, double> link_horizon_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

inline Node::Node(Simulator& sim, std::string name)
    : sim_(sim), id_(sim.register_node(this, name)), name_(std::move(name)) {}

inline Node::~Node() { sim_.unregister_node(id_); }

inline void Node::send(NodeId dst, uint32_t port, crypto::Bytes payload) {
  sim_.post(Message{id_, dst, port, std::move(payload)});
}

}  // namespace tenet::netsim::refsim
