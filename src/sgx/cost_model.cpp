#include "sgx/cost_model.h"

namespace tenet::sgx {

const char* to_string(UserInstr i) {
  switch (i) {
    case UserInstr::kEEnter: return "EENTER";
    case UserInstr::kEExit: return "EEXIT";
    case UserInstr::kEResume: return "ERESUME";
    case UserInstr::kEGetKey: return "EGETKEY";
    case UserInstr::kEReport: return "EREPORT";
    case UserInstr::kEAccept: return "EACCEPT";
  }
  return "?";
}

const char* to_string(PrivInstr i) {
  switch (i) {
    case PrivInstr::kECreate: return "ECREATE";
    case PrivInstr::kEAdd: return "EADD";
    case PrivInstr::kEExtend: return "EEXTEND";
    case PrivInstr::kEInit: return "EINIT";
    case PrivInstr::kEAug: return "EAUG";
    case PrivInstr::kERemove: return "EREMOVE";
  }
  return "?";
}

void CostModel::charge_user(UserInstr instr, uint64_t count) {
  sgx_user_ += count;
  user_counts_[static_cast<size_t>(instr)] += count;
}

void CostModel::charge_priv(PrivInstr instr, uint64_t count) {
  sgx_priv_ += count;
  priv_counts_[static_cast<size_t>(instr)] += count;
}

void CostModel::charge_normal(uint64_t instructions) {
  normal_direct_ += instructions;
}

void CostModel::charge_boundary_bytes(uint64_t bytes) {
  normal_direct_ +=
      (bytes + constants_.boundary_bytes_per_instr - 1) /
      constants_.boundary_bytes_per_instr;
}

void CostModel::charge_context_switch() {
  normal_direct_ += constants_.per_context_switch;
}

void CostModel::charge_page_zero(uint64_t pages) {
  normal_direct_ += pages * constants_.per_page_zero;
}

void CostModel::charge_ocall_dispatch() {
  normal_direct_ += constants_.per_ocall_dispatch;
}

void CostModel::charge_ring_slot_write() {
  normal_direct_ += constants_.per_ring_slot_write;
}

void CostModel::charge_switchless_poll() {
  normal_direct_ += constants_.per_switchless_poll;
}

void CostModel::charge_worker_wakeup() {
  normal_direct_ += constants_.per_worker_wakeup;
}

uint64_t CostModel::normal_instructions() const {
  return normal_direct_ + work_.sha256_blocks * constants_.per_sha256_block +
         work_.aes_blocks * constants_.per_aes_block +
         work_.aes_key_schedules * constants_.per_aes_key_schedule +
         work_.chacha_blocks * constants_.per_chacha_block +
         work_.limb_muladds * constants_.per_limb_muladd +
         work_.bytes_moved * constants_.per_byte_moved +
         work_.alu_ops * constants_.per_alu_op;
}

double CostModel::cycles() const {
  return static_cast<double>(sgx_user_ * constants_.cycles_per_sgx_instr) +
         static_cast<double>(normal_instructions()) / constants_.ipc;
}

void CostModel::reset() {
  sgx_user_ = 0;
  sgx_priv_ = 0;
  for (uint64_t& c : user_counts_) c = 0;
  for (uint64_t& c : priv_counts_) c = 0;
  normal_direct_ = 0;
  switchless_hits_ = 0;
  switchless_fallbacks_ = 0;
  work_ = crypto::WorkCounters{};
}

CostModel::Snapshot CostModel::snapshot() const {
  return {sgx_user_,      sgx_priv_,         normal_instructions(),
          transitions(),  switchless_hits_,  switchless_fallbacks_};
}

CostModel::Snapshot CostModel::delta(const Snapshot& since) const {
  const Snapshot now = snapshot();
  return {now.sgx_user - since.sgx_user,
          now.sgx_priv - since.sgx_priv,
          now.normal - since.normal,
          now.transitions - since.transitions,
          now.switchless_hits - since.switchless_hits,
          now.switchless_fallbacks - since.switchless_fallbacks};
}

double CostModel::cycles_of(const Snapshot& d) const {
  return static_cast<double>(d.sgx_user * constants_.cycles_per_sgx_instr) +
         static_cast<double>(d.normal) / constants_.ipc;
}

}  // namespace tenet::sgx
