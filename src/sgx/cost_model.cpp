#include "sgx/cost_model.h"

#include "telemetry/trace.h"

namespace tenet::sgx {

#if TENET_TELEMETRY_ENABLED
namespace {

// Mirrors crypto work into the tracer's per-span crypto column as it
// happens, converting with the *default* constants — the same ones every
// CostModel in the tree uses, so span cost deltas sum exactly to the
// models' normal_instructions() (cross-checked in tests). Registered once
// at static-init time; the observer only fires while a work sink is
// installed (i.e. while some CostScope is accounting) and is a no-op when
// telemetry is disabled.
void mirror_work_to_tracer(crypto::work::Kind kind, uint64_t n) {
  if (!telemetry::enabled()) return;
  static const CostConstants k{};
  uint64_t per = 0;
  switch (kind) {
    case crypto::work::Kind::kSha256Block: per = k.per_sha256_block; break;
    case crypto::work::Kind::kAesBlock: per = k.per_aes_block; break;
    case crypto::work::Kind::kAesKeySchedule:
      per = k.per_aes_key_schedule;
      break;
    case crypto::work::Kind::kChachaBlock: per = k.per_chacha_block; break;
    case crypto::work::Kind::kLimbMuladd: per = k.per_limb_muladd; break;
    case crypto::work::Kind::kByteMoved: per = k.per_byte_moved; break;
    case crypto::work::Kind::kAluOp: per = k.per_alu_op; break;
  }
  telemetry::tracer().charge(telemetry::CostKind::kCrypto, per * n);
}

[[maybe_unused]] const bool g_work_observer_installed = [] {
  crypto::work::set_observer(&mirror_work_to_tracer);
  return true;
}();

}  // namespace
#endif  // TENET_TELEMETRY_ENABLED

const char* to_string(UserInstr i) {
  switch (i) {
    case UserInstr::kEEnter: return "EENTER";
    case UserInstr::kEExit: return "EEXIT";
    case UserInstr::kEResume: return "ERESUME";
    case UserInstr::kEGetKey: return "EGETKEY";
    case UserInstr::kEReport: return "EREPORT";
    case UserInstr::kEAccept: return "EACCEPT";
  }
  return "?";
}

const char* to_string(PrivInstr i) {
  switch (i) {
    case PrivInstr::kECreate: return "ECREATE";
    case PrivInstr::kEAdd: return "EADD";
    case PrivInstr::kEExtend: return "EEXTEND";
    case PrivInstr::kEInit: return "EINIT";
    case PrivInstr::kEAug: return "EAUG";
    case PrivInstr::kERemove: return "EREMOVE";
  }
  return "?";
}

void CostModel::charge_user(UserInstr instr, uint64_t count) {
  sgx_user_ += count;
  user_counts_[static_cast<size_t>(instr)] += count;
  TENET_TRACE_COST(telemetry::CostKind::kSgxUser, count);
  if (instr == UserInstr::kEEnter || instr == UserInstr::kEExit ||
      instr == UserInstr::kEResume) {
    TENET_TRACE_COST(telemetry::CostKind::kTransition, count);
  }
}

void CostModel::charge_priv(PrivInstr instr, uint64_t count) {
  sgx_priv_ += count;
  priv_counts_[static_cast<size_t>(instr)] += count;
  TENET_TRACE_COST(telemetry::CostKind::kSgxPriv, count);
}

void CostModel::charge_normal(uint64_t instructions) {
  normal_direct_ += instructions;
  TENET_TRACE_COST(telemetry::CostKind::kNormal, instructions);
}

void CostModel::charge_boundary_bytes(uint64_t bytes) {
  const uint64_t instructions =
      (bytes + constants_.boundary_bytes_per_instr - 1) /
      constants_.boundary_bytes_per_instr;
  normal_direct_ += instructions;
  TENET_TRACE_COST(telemetry::CostKind::kNormal, instructions);
}

void CostModel::charge_context_switch() {
  normal_direct_ += constants_.per_context_switch;
  TENET_TRACE_COST(telemetry::CostKind::kNormal,
                   constants_.per_context_switch);
}

void CostModel::charge_page_zero(uint64_t pages) {
  normal_direct_ += pages * constants_.per_page_zero;
  TENET_TRACE_COST(telemetry::CostKind::kPaging,
                   pages * constants_.per_page_zero);
}

void CostModel::charge_ocall_dispatch() {
  normal_direct_ += constants_.per_ocall_dispatch;
  TENET_TRACE_COST(telemetry::CostKind::kNormal,
                   constants_.per_ocall_dispatch);
}

void CostModel::charge_ring_slot_write() {
  normal_direct_ += constants_.per_ring_slot_write;
  TENET_TRACE_COST(telemetry::CostKind::kNormal,
                   constants_.per_ring_slot_write);
}

void CostModel::charge_switchless_poll() {
  normal_direct_ += constants_.per_switchless_poll;
  TENET_TRACE_COST(telemetry::CostKind::kNormal,
                   constants_.per_switchless_poll);
}

void CostModel::charge_worker_wakeup() {
  normal_direct_ += constants_.per_worker_wakeup;
  TENET_TRACE_COST(telemetry::CostKind::kNormal,
                   constants_.per_worker_wakeup);
}

uint64_t CostModel::normal_instructions() const {
  return normal_direct_ + work_.sha256_blocks * constants_.per_sha256_block +
         work_.aes_blocks * constants_.per_aes_block +
         work_.aes_key_schedules * constants_.per_aes_key_schedule +
         work_.chacha_blocks * constants_.per_chacha_block +
         work_.limb_muladds * constants_.per_limb_muladd +
         work_.bytes_moved * constants_.per_byte_moved +
         work_.alu_ops * constants_.per_alu_op;
}

double CostModel::cycles() const {
  return static_cast<double>(sgx_user_ * constants_.cycles_per_sgx_instr) +
         static_cast<double>(normal_instructions()) / constants_.ipc;
}

void CostModel::reset() {
  sgx_user_ = 0;
  sgx_priv_ = 0;
  for (uint64_t& c : user_counts_) c = 0;
  for (uint64_t& c : priv_counts_) c = 0;
  normal_direct_ = 0;
  switchless_hits_ = 0;
  switchless_fallbacks_ = 0;
  work_ = crypto::WorkCounters{};
}

CostModel::Snapshot CostModel::snapshot() const {
  return {sgx_user_,      sgx_priv_,         normal_instructions(),
          transitions(),  switchless_hits_,  switchless_fallbacks_};
}

CostModel::Snapshot CostModel::delta(const Snapshot& since) const {
  const Snapshot now = snapshot();
  return {now.sgx_user - since.sgx_user,
          now.sgx_priv - since.sgx_priv,
          now.normal - since.normal,
          now.transitions - since.transitions,
          now.switchless_hits - since.switchless_hits,
          now.switchless_fallbacks - since.switchless_fallbacks};
}

double CostModel::cycles_of(const Snapshot& d) const {
  return static_cast<double>(d.sgx_user * constants_.cycles_per_sgx_instr) +
         static_cast<double>(d.normal) / constants_.ipc;
}

}  // namespace tenet::sgx
