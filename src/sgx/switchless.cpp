#include "sgx/switchless.h"

#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace tenet::sgx {

SwitchlessRing::SwitchlessRing(SwitchlessConfig config,
                               const char* occupancy_metric)
    : config_(config),
      occupancy_metric_(occupancy_metric),
      // Workers begin parked; the first call pays the wakeup.
      idle_polls_(config.spin_budget) {}

void SwitchlessRing::note_sync_transition() {
  if (!pending_.empty()) return;  // ring has work: the worker is busy
  if (idle_polls_ < config_.spin_budget) ++idle_polls_;
}

SwitchlessOutcome SwitchlessRing::begin_call() {
  if (worker_asleep()) {
    ++stats_.fallbacks_asleep;
    ++stats_.wakeups;
    idle_polls_ = 0;  // the synchronous fallback doubles as the kick
    TENET_COUNT("sgx.switchless.fallbacks_asleep");
    TENET_COUNT("sgx.switchless.wakeups");
    return SwitchlessOutcome::kFallbackAsleep;
  }
  if (full()) {
    ++stats_.fallbacks_full;
    TENET_COUNT("sgx.switchless.fallbacks_full");
    return SwitchlessOutcome::kFallbackFull;
  }
  ++stats_.hits;
  idle_polls_ = 0;
  TENET_COUNT("sgx.switchless.hits");
#if TENET_TELEMETRY_ENABLED
  // Occupancy *including* this call: a sync-result call occupies one slot
  // for its round trip; a deferred call joins the backlog. The TENET_*
  // macros cache their instrument per call site, which would alias the
  // ocall and ecall rings' histograms — go through the registry instead.
  if (telemetry::enabled()) {
    telemetry::registry().histogram(occupancy_metric_).record(
        pending_.size() + 1);
  }
#endif
  return SwitchlessOutcome::kHit;
}

void SwitchlessRing::push(uint32_t code, crypto::BytesView payload) {
  Request req{code, crypto::Bytes(payload.begin(), payload.end())};
  TENET_TRACE_CAPTURE(req.ctx);
  pending_.push_back(std::move(req));
}

void SwitchlessRing::push(uint32_t code, crypto::Bytes&& payload) {
  Request req{code, std::move(payload)};
  TENET_TRACE_CAPTURE(req.ctx);
  pending_.push_back(std::move(req));
}

size_t SwitchlessRing::drain(
    const std::function<void(uint32_t, const crypto::Bytes&)>& exec) {
  size_t n = 0;
  // FIFO; requests queued by the executed handlers (there are none today —
  // handlers run on the untrusted side) would drain in the same pass.
  while (!pending_.empty()) {
    Request req = std::move(pending_.front());
    pending_.pop_front();
    {
      // Deferred execution inherits the enqueuing span's context (flagged
      // as deferred), not the ambient context of whoever drains the ring.
      TENET_TRACE_CONTEXT_FLAGS(req.ctx,
                                telemetry::TraceContext::kFlagDeferred);
      exec(req.code, req.payload);
    }
    ++n;
  }
  if (n > 0) {
    stats_.drained += n;
    TENET_COUNT("sgx.switchless.drained", n);
  }
  return n;
}

}  // namespace tenet::sgx
