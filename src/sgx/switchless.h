// Switchless enclave transitions: a bounded request/response ring.
//
// The paper's evaluation (§5, Tables 2-3) shows EENTER/EEXIT boundary
// crossings dominating the cost of I/O-heavy enclave applications: every
// ocall is an EEXIT + ERESUME pair (2 x 10K cycles plus two context
// switches) even when the request is a fire-and-forget packet send.
// Switchless calls — pioneered by the Intel SGX SDK's switchless mode and
// analyzed by Svenningsson et al. ("Speeding up enclave transitions for
// IO-intensive applications") — replace the transition with a shared-memory
// ring: the caller writes a request descriptor into an untrusted ring slot
// and a polling worker on the other side picks it up, so the hot path costs
// a cache-line transfer instead of a round trip through microcode and the
// kernel.
//
// This module models that mechanism deterministically:
//
//   * Requests are queued in a bounded FIFO ring (`ring_capacity` slots).
//     A full ring means the worker is behind — the caller falls back to a
//     real synchronous transition (which also drains the backlog, since the
//     other side is demonstrably running).
//   * The worker spins for `spin_budget` polls before parking. Virtual
//     idle time is measured in *synchronous transition events observed
//     while the ring is empty* — each one stands for a boundary-crossing's
//     worth of empty polls. A parked worker cannot serve the ring, so the
//     next call falls back to a synchronous transition, which doubles as
//     the wakeup kick (`per_worker_wakeup` amortisation).
//   * Workers start parked: until the first call arrives there is no
//     reason to burn a core polling.
//
// Determinism: all state is plain integers updated by the single simulation
// thread; a scripted run takes byte-identical hit/fallback decisions every
// time. Application-visible behaviour is *identical* with switchless on or
// off — deferred requests drain in submission order before any other
// host-visible work (see Enclave::flush_switchless) — so only the cost
// accounting and the sgx.switchless.* telemetry differ between modes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "crypto/bytes.h"
#include "telemetry/trace.h"

namespace tenet::sgx {

/// Per-enclave switchless tuning knobs (scenario-selectable).
struct SwitchlessConfig {
  uint32_t ring_capacity = 64;  // request slots per direction
  uint32_t spin_budget = 64;    // empty polls before the worker parks
};

/// Outcome of classifying one would-be switchless call.
enum class SwitchlessOutcome : uint8_t {
  kHit,             // served through the ring, no transition
  kFallbackFull,    // ring full -> synchronous transition
  kFallbackAsleep,  // worker parked -> synchronous transition + wakeup
};

/// Independent event tally kept by the ring itself; tests cross-check it
/// against both the cost model's counters and the telemetry registry.
struct SwitchlessStats {
  uint64_t hits = 0;              // calls served without a transition
  uint64_t fallbacks_full = 0;    // ring-full synchronous fallbacks
  uint64_t fallbacks_asleep = 0;  // parked-worker synchronous fallbacks
  uint64_t wakeups = 0;           // times a fallback had to kick the worker
  uint64_t drained = 0;           // deferred requests executed by the worker

  [[nodiscard]] uint64_t fallbacks() const {
    return fallbacks_full + fallbacks_asleep;
  }
};

/// One direction of the switchless machinery (ocall ring or ecall ring).
/// Owns the deferred-request FIFO plus the deterministic worker model.
class SwitchlessRing {
 public:
  explicit SwitchlessRing(SwitchlessConfig config,
                          const char* occupancy_metric);

  [[nodiscard]] const SwitchlessConfig& config() const { return config_; }
  [[nodiscard]] const SwitchlessStats& stats() const { return stats_; }

  /// The deterministic idle clock: one synchronous boundary crossing
  /// elapsed in this enclave's domain. While the ring is empty each such
  /// event burns one unit of the worker's spin budget; once the budget is
  /// gone the worker parks.
  void note_sync_transition();

  [[nodiscard]] bool worker_asleep() const {
    return idle_polls_ >= config_.spin_budget;
  }
  [[nodiscard]] bool full() const {
    return pending_.size() >= config_.ring_capacity;
  }
  [[nodiscard]] size_t pending() const { return pending_.size(); }

  /// Classifies the next call and updates the worker model: a hit resets
  /// the spin budget; a parked-worker fallback wakes the worker (the
  /// synchronous transition is the kick). Records ring occupancy.
  SwitchlessOutcome begin_call();

  /// Queues a deferred (fire-and-forget) request after begin_call()
  /// returned kHit. The payload is copied — it lives in the shared ring
  /// until the worker drains it. The enqueuing span's trace context rides
  /// in the slot so the drained execution joins the originating trace.
  void push(uint32_t code, crypto::BytesView payload);

  /// Move-push: the caller's buffer becomes the ring slot directly (the
  /// zero-copy record path seals straight into it — no intermediate copy
  /// between the record layer and the ring).
  void push(uint32_t code, crypto::Bytes&& payload);

  /// Executes every pending request in FIFO order through `exec`; returns
  /// how many were drained. Called whenever the host side demonstrably
  /// runs (sync ocall, ecall exit) so deferred effects stay ordered
  /// exactly as a synchronous run would order them. Each request executes
  /// under the trace context captured at push time, with kFlagDeferred
  /// OR-ed in — deferral changes *when* work runs, never which request it
  /// belongs to.
  size_t drain(const std::function<void(uint32_t, const crypto::Bytes&)>& exec);

  void reset_stats() { stats_ = SwitchlessStats{}; }

 private:
  struct Request {
    uint32_t code;
    crypto::Bytes payload;
    telemetry::TraceContext ctx{};  // enqueuing span's context
  };

  SwitchlessConfig config_;
  const char* occupancy_metric_;  // telemetry histogram name (string literal)
  std::deque<Request> pending_;
  uint32_t idle_polls_;  // starts at spin_budget: workers begin parked
  SwitchlessStats stats_;
};

}  // namespace tenet::sgx
