// Adversary toolkit implementing the paper's threat model (§2.1):
// "an adversary can compromise any software components including the
// operating system, hypervisor, and firmware. Also, hardware components
// (e.g., memory and I/O devices) can be inspected by an attacker except
// for the CPU package itself."
//
// Tests and the Tor/middlebox attack scenarios use these helpers to mount
// the attacks the designs must defeat. Epc exposes the raw ciphertext
// read/corrupt surface; this header adds software-level attacks.
#pragma once

#include "sgx/image.h"
#include "sgx/quote.h"

namespace tenet::sgx::adversary {

/// A "curious volunteer" patches the program before launch (§3.2: "once
/// [volunteer nodes] are admitted in the system, it is easy for their
/// owners to modify the software to launch attacks"). The patched image
/// behaves identically unless `evil_factory` is supplied, but its
/// measurement — and hence its attestation identity — differs.
EnclaveImage patch_image(const EnclaveImage& original,
                         std::string_view patch_note,
                         AppFactory evil_factory = nullptr);

/// A forged quote: the attacker fabricates attestation evidence for
/// `claimed_measurement` and signs it with their own (non-authority) key.
/// Authority::verify_quote must reject it.
Quote forge_quote(const Measurement& claimed_measurement,
                  const Measurement& target, uint64_t claimed_platform,
                  const ReportData& report_data);

/// Replays a quote with substituted REPORTDATA (session-splicing MITM).
/// Attestation verifiers must reject it because REPORTDATA binds the
/// session's nonce and DH values.
Quote splice_report_data(const Quote& original, const ReportData& fresh);

}  // namespace tenet::sgx::adversary
