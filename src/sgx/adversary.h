// Adversary toolkit implementing the paper's threat model (§2.1):
// "an adversary can compromise any software components including the
// operating system, hypervisor, and firmware. Also, hardware components
// (e.g., memory and I/O devices) can be inspected by an attacker except
// for the CPU package itself."
//
// Tests and the Tor/middlebox attack scenarios use these helpers to mount
// the attacks the designs must defeat. Epc exposes the raw ciphertext
// read/corrupt surface; this header adds software-level attacks.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sgx/enclave.h"
#include "sgx/image.h"
#include "sgx/quote.h"

namespace tenet::sgx::adversary {

/// A "curious volunteer" patches the program before launch (§3.2: "once
/// [volunteer nodes] are admitted in the system, it is easy for their
/// owners to modify the software to launch attacks"). The patched image
/// behaves identically unless `evil_factory` is supplied, but its
/// measurement — and hence its attestation identity — differs.
EnclaveImage patch_image(const EnclaveImage& original,
                         std::string_view patch_note,
                         AppFactory evil_factory = nullptr);

/// A forged quote: the attacker fabricates attestation evidence for
/// `claimed_measurement` and signs it with their own (non-authority) key.
/// Authority::verify_quote must reject it.
Quote forge_quote(const Measurement& claimed_measurement,
                  const Measurement& target, uint64_t claimed_platform,
                  const ReportData& report_data);

/// Replays a quote with substituted REPORTDATA (session-splicing MITM).
/// Attestation verifiers must reject it because REPORTDATA binds the
/// session's nonce and DH values.
Quote splice_report_data(const Quote& original, const ReportData& fresh);

// ---------------------------------------------------------------------------
// (Mis)Use-class attack helpers (DESIGN.md §15). The host controls every
// ocall handler and every byte of untrusted storage; these helpers make
// that power concrete so tests and the boundary fuzzer can assert the
// trusted side survives it.
// ---------------------------------------------------------------------------

/// Hostile-input mutation helpers, shared by the boundary fuzzer and the
/// misuse regression tests. All pure: the caller supplies the randomness.
[[nodiscard]] crypto::Bytes bit_flip(crypto::BytesView data, size_t bit);
[[nodiscard]] crypto::Bytes truncate(crypto::BytesView data, size_t len);
[[nodiscard]] crypto::Bytes extend(crypto::BytesView data, size_t extra,
                                   uint8_t fill);

/// Misuse class 1 — "secrets leaked via ocall arguments". The snooping
/// host wraps the real ocall handler and greps every outbound payload for
/// tracked secrets (raw bytes and their lowercase-hex spelling, the two
/// encodings a sloppy log line uses). A hit proves key material crossed
/// the boundary in the clear.
class OcallSnoop {
 public:
  struct Hit {
    std::string needle;  // name given to track()
    uint32_t code = 0;   // ocall code the secret rode out on
    size_t offset = 0;   // byte offset within the payload
    bool hex = false;    // matched the hex spelling, not the raw bytes
  };

  /// Registers a secret to watch for. Short needles (< 8 bytes) are
  /// ignored — too many false positives to mean anything.
  void track(std::string_view name, crypto::BytesView secret);

  /// Scans one outbound payload; records (and returns) any hits.
  size_t scan(uint32_t code, crypto::BytesView payload);

  /// Scans arbitrary exported text (telemetry JSON, trace labels) under a
  /// pseudo-code so exports share the hit machinery with ocalls.
  size_t scan_text(uint32_t pseudo_code, std::string_view text);

  /// Wraps `inner` so every ocall is scanned before the real handler runs.
  [[nodiscard]] OcallHandler wrap(OcallHandler inner);

  [[nodiscard]] const std::vector<Hit>& hits() const { return hits_; }
  [[nodiscard]] uint64_t payloads_observed() const { return observed_; }
  void clear_hits() { hits_.clear(); }

 private:
  struct Needle {
    std::string name;
    crypto::Bytes raw;
    std::string hex;
  };
  std::vector<Needle> needles_;
  std::vector<Hit> hits_;
  uint64_t observed_ = 0;
};

/// Misuse class 3 — "seal without version" rollback. The host owns the
/// sealed-blob store, so it can always serve a stale-but-authentic blob.
/// The vault records every version it sees per slot and replays any of
/// them; defenses must detect the rollback (version vectors, monotonic
/// counters), because the blob itself authenticates fine.
class SealedBlobVault {
 public:
  /// Records a sealed blob for `slot`; returns its version index.
  size_t store(const std::string& slot, crypto::BytesView sealed);

  /// The blob most recently stored for `slot` (empty if none).
  [[nodiscard]] crypto::Bytes latest(const std::string& slot) const;

  /// Replays version `index` (0 = oldest). Empty if out of range.
  [[nodiscard]] crypto::Bytes replay(const std::string& slot,
                                     size_t index) const;

  [[nodiscard]] size_t versions(const std::string& slot) const;

 private:
  std::map<std::string, std::vector<crypto::Bytes>> history_;
};

}  // namespace tenet::sgx::adversary
