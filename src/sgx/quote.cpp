#include "sgx/quote.h"

namespace tenet::sgx {

crypto::Bytes Quote::signed_body() const {
  crypto::Bytes body;
  crypto::append(body, crypto::to_bytes("QUOTE"));
  crypto::append_lv(body, report.serialize());
  crypto::append_u64(body, platform);
  return body;
}

crypto::Bytes Quote::serialize() const {
  crypto::Bytes out;
  crypto::append_lv(out, report.serialize());
  crypto::append_u64(out, platform);
  crypto::append_lv(out, signature.serialize(crypto::DhGroup::oakley_group2()));
  return out;
}

Quote Quote::deserialize(crypto::BytesView wire) {
  crypto::Reader r(wire);
  Quote q;
  q.report = Report::deserialize(r.lv());
  q.platform = r.u64();
  q.signature = crypto::SchnorrSignature::deserialize(
      crypto::DhGroup::oakley_group2(), r.lv());
  return q;
}

}  // namespace tenet::sgx
