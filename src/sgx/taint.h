// Key-material taint registry for the TEE-misuse red team (DESIGN.md §15).
//
// Every secret the emulated hardware or the attestation layer derives —
// report keys, seal keys, attestation session keys — is announced to an
// optional process-wide tap at derivation time. Production runs register
// nothing and pay a single branch; the boundary fuzzer's --taint mode
// registers a tap that records each secret and then scans everything that
// crosses the enclave boundary outward (ocall payloads, telemetry exports,
// trace labels) for those bytes. A hit means key material escaped the
// trust boundary — exactly the "secrets in ocall arguments" misuse class
// from "What You Trust Is Insecure".
#pragma once

#include <functional>
#include <string_view>

#include "crypto/bytes.h"

namespace tenet::sgx::taint {

/// Called with every freshly derived secret. `kind` names the derivation
/// site ("sgx.report_key", "sgx.seal_key", "attest.session_key").
using KeyTap = std::function<void(std::string_view kind,
                                  crypto::BytesView key)>;

/// Installs (or, with nullptr, removes) the process-wide tap. Not
/// thread-safe by design: the fuzzer and tests run single-threaded, and
/// production never installs a tap.
void set_key_tap(KeyTap tap);

/// True if a tap is installed — lets call sites skip building views.
bool key_tap_active();

/// Announces a derived secret to the tap, if any. No-op otherwise.
void note_key(std::string_view kind, crypto::BytesView key);

/// RAII guard: installs a tap for a scope, restores nothing on exit (the
/// previous tap is dropped — nesting is not a supported pattern).
class ScopedKeyTap {
 public:
  explicit ScopedKeyTap(KeyTap tap) { set_key_tap(std::move(tap)); }
  ~ScopedKeyTap() { set_key_tap(nullptr); }
  ScopedKeyTap(const ScopedKeyTap&) = delete;
  ScopedKeyTap& operator=(const ScopedKeyTap&) = delete;
};

/// Observes every ocall payload the moment it reaches the untrusted side —
/// the synchronous path, the async fallback, and the switchless-ring drain
/// all funnel through the two tapped sites in enclave.cpp, so an installed
/// tap sees the complete outbound boundary surface. Same contract as
/// KeyTap: single-threaded, production installs nothing.
using OcallTap = std::function<void(uint32_t code, crypto::BytesView payload)>;

void set_ocall_tap(OcallTap tap);
bool ocall_tap_active();
void note_ocall(uint32_t code, crypto::BytesView payload);

}  // namespace tenet::sgx::taint
