// Platform (CPU package) and attestation authority emulation.
//
// A Platform owns everything the paper's threat model trusts: the root
// keys fused into the CPU, the EPC/MEE, the quoting enclave, and the
// per-platform attestation (EPID-member) credential. Everything outside —
// OS, hypervisor, other processes, DRAM — is untrusted and is modelled by
// the adversary hooks (sgx/adversary.h) plus the untrusted ocall handlers.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "crypto/rng.h"
#include "crypto/schnorr.h"
#include "sgx/enclave.h"
#include "sgx/epc.h"
#include "sgx/quote.h"

namespace tenet::sgx {

/// The attestation authority (Intel's role): provisions platforms into the
/// EPID group and publishes the group verification key. One Authority per
/// simulated world.
class Authority {
 public:
  explicit Authority(uint64_t seed = 2015);

  /// The group public key every verifier uses (§2.2 footnote 2).
  [[nodiscard]] const crypto::SchnorrPublicKey& group_public_key() const;

  /// Enrolls a platform; returns its id. Platform names must be unique.
  PlatformId enroll(const std::string& platform_name);

  /// Marks a platform's credential as revoked (EPID supports revocation;
  /// quotes from revoked platforms stop verifying).
  void revoke(PlatformId platform);
  [[nodiscard]] bool is_revoked(PlatformId platform) const;

  /// Verifies a QUOTE: group signature valid and platform not revoked.
  /// This is pure public-key verification — any challenger can run it.
  [[nodiscard]] bool verify_quote(const Quote& q) const;

  /// Signing access for the quoting enclave only ("only the quoting
  /// enclave can access the processor key used for attestation").
  [[nodiscard]] const crypto::GroupSigner& group_signer() const {
    return epid_;
  }

 private:
  crypto::Drbg rng_;
  crypto::GroupSigner epid_;
  std::map<std::string, PlatformId> platforms_;
  std::map<PlatformId, bool> revoked_;
  PlatformId next_id_ = 1;
};

class Platform {
 public:
  /// Creates an SGX-enabled platform enrolled with `authority`.
  Platform(Authority& authority, std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] PlatformId id() const { return id_; }
  [[nodiscard]] Authority& authority() { return authority_; }
  [[nodiscard]] Epc& epc() { return epc_; }

  /// Untrusted-side cost accounting (ocall handlers, host runtime).
  [[nodiscard]] CostModel& host_cost() { return host_cost_; }
  /// Host-side randomness (untrusted; visible to the adversary).
  [[nodiscard]] crypto::Drbg& host_rng() { return host_rng_; }

  /// Full launch sequence: ECREATE, EADD+EEXTEND per page, EINIT with
  /// sigstruct verification. Throws HardwareFault if the sigstruct does
  /// not verify or does not match the image's measurement.
  Enclave& launch(const SigStruct& sigstruct, const EnclaveImage& image);

  /// Launches an image signed on the fly by `vendor` (convenience).
  Enclave& launch(const Vendor& vendor, const EnclaveImage& image,
                  uint32_t product_id = 1);

  /// Recovery path: tears down enclave `id` (EREMOVE — works on faulted
  /// enclaves too) and relaunches the same sigstruct + image as a fresh
  /// instance with a new id. All in-enclave state is lost, exactly like a
  /// real enclave restart; applications recover through sealed storage.
  /// The relaunch is charged through the cost model like any launch.
  /// Throws HardwareFault if `id` is unknown.
  Enclave& restart_enclave(EnclaveId id);

  /// The platform's quoting enclave (created lazily; its measurement is
  /// well-known — see quoting_enclave_measurement()).
  Enclave& quoting_enclave();

  /// The well-known QE identity, identical on every platform.
  static Measurement quoting_enclave_measurement();

  /// EGETKEY derivations (hardware; not instruction-charged).
  [[nodiscard]] crypto::Bytes derive_report_key(const Measurement& target) const;
  [[nodiscard]] crypto::Bytes derive_seal_key(const Measurement& mr_enclave,
                                              crypto::BytesView label) const;

  /// Produces a quote for `report` by routing it through the quoting
  /// enclave (Figure 1 messages 3-4). Returns nullopt if the QE rejected
  /// the report (wrong target or bad MAC).
  std::optional<Quote> quote_via_qe(const Report& report);

  /// Total instruction counts across this platform's enclaves + host.
  [[nodiscard]] CostModel::Snapshot total_snapshot() const;

  [[nodiscard]] std::vector<Enclave*> enclaves();

 private:
  friend class EnvImpl;

  Authority& authority_;
  std::string name_;
  PlatformId id_;
  crypto::Bytes root_secret_;  // fused key material (never leaves the CPU)
  crypto::Drbg host_rng_;
  CostModel host_cost_;
  Epc epc_;
  std::map<EnclaveId, std::unique_ptr<Enclave>> enclaves_;
  // What launch() was given, kept so restart_enclave() can re-create the
  // enclave bit-for-bit (the untrusted OS keeps the image on disk anyway).
  struct LaunchRecord {
    SigStruct sigstruct;
    EnclaveImage image;
  };
  std::map<EnclaveId, LaunchRecord> launch_records_;
  // Instruction counts of restarted (erased) enclave instances, so
  // total_snapshot() keeps counting work done before a crash.
  CostModel::Snapshot retired_cost_;
  EnclaveId next_enclave_id_ = 1;
  Enclave* qe_ = nullptr;
};

}  // namespace tenet::sgx
