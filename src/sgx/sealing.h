// Sealed storage.
//
// The companion feature to attestation in the SGX design (the paper's
// reference [4] is literally "CPU Based Attestation and Sealing"): an
// enclave encrypts state under a key derived from the platform root and
// its own identity (EGETKEY(SEAL_KEY)), hands the opaque blob to the
// untrusted host for persistence, and can recover it after a restart —
// but only the same enclave identity on the same platform can. Tor
// directory authorities use exactly this to keep "authority keys and the
// list of Tor nodes inside the enclaves" across restarts (§3.2).
#pragma once

#include <optional>

#include "sgx/enclave.h"

namespace tenet::sgx {

/// Seals `plaintext` for the calling enclave under `label` (a namespace
/// for independent blobs). The result is safe to store anywhere.
crypto::Bytes seal_data(EnclaveEnv& env, crypto::BytesView label,
                        crypto::BytesView plaintext);

/// Unseals a blob previously produced by seal_data with the same label by
/// the same enclave identity on the same platform. Returns nullopt if the
/// blob was tampered with, sealed under a different label, by a different
/// enclave, or on a different platform.
std::optional<crypto::Bytes> unseal_data(EnclaveEnv& env,
                                         crypto::BytesView label,
                                         crypto::BytesView sealed);

}  // namespace tenet::sgx
