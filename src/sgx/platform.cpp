#include "sgx/platform.h"

#include "crypto/hmac.h"
#include "sgx/taint.h"
#include "telemetry/events.h"
#include "telemetry/trace.h"

namespace tenet::sgx {

namespace {

/// The quoting enclave's "source" — fixed text so every platform measures
/// the same well-known QE identity (§2.2: "a specially provisioned
/// enclave, whose identity is well-known").
constexpr std::string_view kQuotingEnclaveSource =
    "tenet quoting enclave v1\n"
    "entry quote(report):\n"
    "  key = EGETKEY(REPORT_KEY)\n"
    "  require report.target == self.measurement\n"
    "  require mac_verify(key, report)\n"
    "  return epid_sign(platform_key, QUOTE(report))\n";

constexpr uint32_t kQuoteFn = 1;

/// Trusted quoting-enclave logic. Holds no state; the platform attestation
/// key is reachable only through the Platform reference (modelling the
/// hardware restriction that only the QE may use the attestation key).
class QuotingApp final : public EnclaveApp {
 public:
  explicit QuotingApp(Platform& platform) : platform_(platform) {}

  crypto::Bytes handle_call(uint32_t fn, crypto::BytesView arg,
                            EnclaveEnv& env) override {
    if (fn != kQuoteFn) return {};
    Report report;
    try {
      report = Report::deserialize(arg);
    } catch (const std::exception&) {
      return {};
    }
    // Intra-attestation (§2.2): the report must target this QE, and its
    // MAC must verify under our report key obtained via EGETKEY.
    if (report.target != env.self_measurement()) return {};
    const crypto::Bytes rk = env.report_key();
    if (!report.verify(rk)) return {};
    if (report.platform != platform_.id()) return {};

    Quote q;
    q.report = report;
    q.platform = platform_.id();
    crypto::Bytes pid;
    crypto::append_u64(pid, platform_.id());
    q.signature = platform_.authority().group_signer().sign_as_member(
        pid, q.signed_body());
    return q.serialize();
  }

 private:
  Platform& platform_;
};

}  // namespace

Authority::Authority(uint64_t seed)
    : rng_(crypto::Drbg::from_label(seed, "tenet.authority")),
      epid_(crypto::DhGroup::oakley_group2(), rng_) {}

const crypto::SchnorrPublicKey& Authority::group_public_key() const {
  return epid_.group_public_key();
}

PlatformId Authority::enroll(const std::string& platform_name) {
  auto [it, inserted] = platforms_.emplace(platform_name, next_id_);
  if (!inserted) {
    throw std::invalid_argument("Authority: duplicate platform name " +
                                platform_name);
  }
  return next_id_++;
}

void Authority::revoke(PlatformId platform) { revoked_[platform] = true; }

bool Authority::is_revoked(PlatformId platform) const {
  const auto it = revoked_.find(platform);
  return it != revoked_.end() && it->second;
}

bool Authority::verify_quote(const Quote& q) const {
  if (is_revoked(q.platform)) return false;
  if (q.report.platform != q.platform) return false;
  crypto::Bytes pid;
  crypto::append_u64(pid, q.platform);
  return epid_.verify_member(pid, q.signed_body(), q.signature);
}

Platform::Platform(Authority& authority, std::string name)
    : authority_(authority),
      name_(std::move(name)),
      id_(authority.enroll(name_)),
      root_secret_(crypto::hkdf(crypto::to_bytes("tenet.platform.fuse"),
                                crypto::to_bytes(name_), crypto::to_bytes("root"),
                                32)),
      host_rng_(crypto::Drbg::from_label(id_, "tenet.platform.host")),
      epc_(crypto::hkdf(crypto::to_bytes("tenet.platform.mee"), root_secret_,
                        crypto::to_bytes("mee"), 32)) {}

Enclave& Platform::launch(const SigStruct& sigstruct,
                          const EnclaveImage& image) {
  const EnclaveId id = next_enclave_id_++;
  auto enclave = std::make_unique<Enclave>(*this, id, sigstruct, image);
  auto [it, _] = enclaves_.emplace(id, std::move(enclave));
  launch_records_.emplace(id, LaunchRecord{sigstruct, image});
  return *it->second;
}

Enclave& Platform::restart_enclave(EnclaveId id) {
  const auto rec = launch_records_.find(id);
  if (rec == launch_records_.end()) {
    throw HardwareFault("restart_enclave: unknown enclave id");
  }
  TENET_SPAN("sgx", "restart_enclave");
  TENET_COUNT("sgx.enclave_restarts");
  TENET_EVENT(kEnclaveRestart, static_cast<uint32_t>(id));
  const LaunchRecord record = rec->second;  // copy: erase invalidates rec
  const auto it = enclaves_.find(id);
  if (it != enclaves_.end()) {
    if (it->second->alive()) it->second->destroy();  // EREMOVE all pages
    if (qe_ == it->second.get()) qe_ = nullptr;
    retired_cost_.add(it->second->cost().snapshot());
    enclaves_.erase(it);
  }
  launch_records_.erase(id);
  return launch(record.sigstruct, record.image);
}

Enclave& Platform::launch(const Vendor& vendor, const EnclaveImage& image,
                          uint32_t product_id) {
  // Signing at launch is provisioning, not steady-state work.
  crypto::work::Scope setup_scope(nullptr);
  return launch(vendor.sign(image, product_id), image);
}

Measurement Platform::quoting_enclave_measurement() {
  static const Measurement m =
      EnclaveImage::from_source("quoting-enclave", kQuotingEnclaveSource, nullptr)
          .measure();
  return m;
}

Enclave& Platform::quoting_enclave() {
  if (qe_ == nullptr) {
    // QE provisioning (vendor keygen + image signing) is platform setup,
    // not steady-state work — keep it off the caller's work meter.
    crypto::work::Scope setup_scope(nullptr);
    // The QE is provisioned by the platform vendor ("Intel").
    static const Vendor kIntel("intel-attestation");
    Platform* self = this;
    const EnclaveImage image = EnclaveImage::from_source(
        "quoting-enclave", kQuotingEnclaveSource,
        [self] { return std::make_unique<QuotingApp>(*self); });
    qe_ = &launch(kIntel, image, /*product_id=*/0x5158);
  }
  return *qe_;
}

crypto::Bytes Platform::derive_report_key(const Measurement& target) const {
  crypto::Bytes info;
  crypto::append(info, crypto::to_bytes("report-key"));
  crypto::append(info, crypto::BytesView(target.data(), target.size()));
  crypto::Bytes key =
      crypto::hkdf(crypto::to_bytes("tenet.egetkey"), root_secret_, info, 32);
  taint::note_key("sgx.report_key", key);
  return key;
}

crypto::Bytes Platform::derive_seal_key(const Measurement& mr_enclave,
                                        crypto::BytesView label) const {
  crypto::Bytes info;
  crypto::append(info, crypto::to_bytes("seal-key"));
  crypto::append(info, crypto::BytesView(mr_enclave.data(), mr_enclave.size()));
  crypto::append_lv(info, label);
  crypto::Bytes key =
      crypto::hkdf(crypto::to_bytes("tenet.egetkey"), root_secret_, info, 32);
  taint::note_key("sgx.seal_key", key);
  return key;
}

std::optional<Quote> Platform::quote_via_qe(const Report& report) {
  TENET_SPAN("sgx", "quote_via_qe");
  TENET_COUNT("attest.quotes");
  Enclave& qe = quoting_enclave();
  const crypto::Bytes result = qe.ecall(kQuoteFn, report.serialize());
  if (result.empty()) return std::nullopt;
  try {
    return Quote::deserialize(result);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

CostModel::Snapshot Platform::total_snapshot() const {
  CostModel::Snapshot total = host_cost_.snapshot();
  total.add(retired_cost_);
  for (const auto& [id, enclave] : enclaves_) {
    total.add(enclave->cost().snapshot());
  }
  return total;
}

std::vector<Enclave*> Platform::enclaves() {
  std::vector<Enclave*> out;
  out.reserve(enclaves_.size());
  for (auto& [id, enclave] : enclaves_) out.push_back(enclave.get());
  return out;
}

}  // namespace tenet::sgx
