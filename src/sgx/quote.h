// QUOTE — remotely-verifiable attestation evidence (§2.2, Figure 1).
//
// "The quoting enclave then creates a signature of attestation result
// (QUOTE), using the private key of the CPU... Intel actually uses a group
// signature scheme (EPID) for attestation." Our EPID stand-in is the
// GroupSigner (crypto/schnorr.h): one group public key, published by the
// platform authority, verifies quotes from every genuine platform.
#pragma once

#include "crypto/schnorr.h"
#include "sgx/report.h"

namespace tenet::sgx {

struct Quote {
  Report report;             // REPORT the quoting enclave verified
  PlatformId platform = 0;   // disclosed platform binding (see GroupSigner)
  crypto::SchnorrSignature signature;

  [[nodiscard]] crypto::Bytes signed_body() const;
  [[nodiscard]] crypto::Bytes serialize() const;
  static Quote deserialize(crypto::BytesView wire);
};

}  // namespace tenet::sgx
