#include "sgx/taint.h"

#include <utility>

namespace tenet::sgx::taint {

namespace {
KeyTap g_tap;        // empty by default: note_key is a single branch
OcallTap g_ocall_tap;  // likewise for note_ocall
}  // namespace

void set_key_tap(KeyTap tap) { g_tap = std::move(tap); }

bool key_tap_active() { return static_cast<bool>(g_tap); }

void note_key(std::string_view kind, crypto::BytesView key) {
  if (g_tap) g_tap(kind, key);
}

void set_ocall_tap(OcallTap tap) { g_ocall_tap = std::move(tap); }

bool ocall_tap_active() { return static_cast<bool>(g_ocall_tap); }

void note_ocall(uint32_t code, crypto::BytesView payload) {
  if (g_ocall_tap) g_ocall_tap(code, payload);
}

}  // namespace tenet::sgx::taint
