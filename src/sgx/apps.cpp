#include "sgx/apps.h"

#include <algorithm>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "sgx/sealing.h"

namespace tenet::sgx::apps {

// ---------------------------------------------------------------------------
// EchoApp
// ---------------------------------------------------------------------------

crypto::Bytes EchoApp::handle_call(uint32_t fn, crypto::BytesView arg,
                                   EnclaveEnv& env) {
  switch (fn) {
    case kEchoReverse: {
      crypto::Bytes out(arg.begin(), arg.end());
      std::reverse(out.begin(), out.end());
      return out;
    }
    case kEchoOcall:
      return env.ocall(0x42, arg);
    case kEchoAlloc: {
      env.heap_alloc(crypto::read_u32(arg, 0));
      crypto::Bytes out;
      crypto::append_u32(out, static_cast<uint32_t>(
                                  env.platform().epc().pages_of(env.self_id())));
      return out;
    }
    case kEchoSealKey:
      return env.seal_key(crypto::to_bytes("t"));
    case kEchoThrow:
      throw std::runtime_error("EchoApp: requested fault");
    case kEchoSeal:
      return seal_data(env, crypto::to_bytes("state"), arg);
    case kEchoUnseal: {
      const auto plain = unseal_data(env, crypto::to_bytes("state"), arg);
      return plain.value_or(crypto::Bytes{});
    }
    default:
      return {};
  }
}

EnclaveImage echo_image(uint32_t variant) {
  std::string source = "tenet echo enclave v1\nvariant=";
  source += std::to_string(variant);
  source += "\nentry reverse/ocall/alloc/sealkey\n";
  return EnclaveImage::from_source("echo", source,
                                   [] { return std::make_unique<EchoApp>(); });
}

// ---------------------------------------------------------------------------
// PacketSenderApp
// ---------------------------------------------------------------------------

crypto::Bytes SendRunRequest::serialize() const {
  crypto::Bytes out;
  crypto::append_u32(out, packet_count);
  crypto::append_u32(out, packet_size);
  out.push_back(encrypt ? 1 : 0);
  out.push_back(batched ? 1 : 0);
  crypto::append_u32(out, batch_size);
  return out;
}

SendRunRequest SendRunRequest::deserialize(crypto::BytesView wire) {
  crypto::Reader r(wire);
  SendRunRequest req;
  req.packet_count = r.u32();
  req.packet_size = r.u32();
  req.encrypt = r.u8() != 0;
  req.batched = r.u8() != 0;
  req.batch_size = r.u32();
  return req;
}

crypto::Bytes PacketSenderApp::handle_call(uint32_t fn, crypto::BytesView arg,
                                           EnclaveEnv& env) {
  if (fn != kSendRun) return {};
  const SendRunRequest req = SendRunRequest::deserialize(arg);
  if (req.packet_count == 0 || req.packet_size == 0) return {};
  // Hostile-host guard (found by boundary_fuzz): a batched run with
  // batch_size 0 would make zero progress per loop turn and spin the
  // enclave in an infinite empty-batch ocall storm. Reject like any other
  // degenerate request.
  if (req.batched && req.batch_size == 0) return {};

  // Session cipher for the "crypto" columns (key from EGETKEY, schedule
  // computed once per run — software AES inside the enclave).
  std::optional<crypto::Aes128> cipher;
  if (req.encrypt) {
    const crypto::Bytes key = env.seal_key(crypto::to_bytes("pkt"));
    crypto::AesKey128 k{};
    std::copy(key.begin(), key.begin() + 16, k.begin());
    cipher.emplace(k);
  }

  // Open the untrusted socket (one exit/resume pair).
  (void)env.ocall(kOcallNetOpen, {});

  // The payload buffer is assembled once and reused for every packet
  // (ring-buffer style, as a real packet generator would) — only the
  // initial fill touches every byte.
  crypto::Bytes base(req.packet_size);
  for (size_t b = 0; b < base.size(); ++b) base[b] = static_cast<uint8_t>(b);
  crypto::work::charge_bytes_moved(base.size());

  auto make_packet = [&](uint32_t i) {
    base[0] = static_cast<uint8_t>(i);  // per-packet sequence stamp
    if (cipher.has_value()) return cipher->ecb_encrypt_padded(base);
    return base;
  };

  // Sends are fire-and-forget: with switchless mode on they queue ring
  // descriptors instead of transitioning; with it off ocall_async degrades
  // to the synchronous ocall these loops always made.
  uint32_t sent = 0;
  if (!req.batched) {
    for (uint32_t i = 0; i < req.packet_count; ++i) {
      env.ocall_async(kOcallNetSend, make_packet(i));
      ++sent;
    }
  } else {
    uint32_t i = 0;
    while (i < req.packet_count) {
      crypto::Bytes batch;
      const uint32_t n =
          std::min(req.batch_size, req.packet_count - i);
      for (uint32_t j = 0; j < n; ++j) {
        crypto::append_lv(batch, make_packet(i + j));
      }
      env.ocall_async(kOcallNetSendBatch, batch);
      i += n;
      sent += n;
    }
  }

  crypto::Bytes out;
  crypto::append_u32(out, sent);
  return out;
}

EnclaveImage packet_sender_image() {
  return EnclaveImage::from_source(
      "packet-sender",
      "tenet packet sender v1\nentry send_run(count,size,crypto,batch)\n",
      [] { return std::make_unique<PacketSenderApp>(); });
}

// ---------------------------------------------------------------------------
// Attestation role apps
// ---------------------------------------------------------------------------

ChallengerApp::ChallengerApp(const Authority& authority,
                             AttestationConfig config)
    : authority_(authority), config_(config) {}

crypto::Bytes ChallengerApp::handle_call(uint32_t fn, crypto::BytesView arg,
                                         EnclaveEnv& env) {
  switch (fn) {
    case kCreateChallenge:
      session_.emplace(authority_, config_, env.rng(), &env);
      return session_->create_challenge();
    case kConsumeResponse: {
      if (!session_.has_value()) return {};
      const AttestationOutcome out = session_->consume_response(arg);
      crypto::Bytes reply;
      reply.push_back(out.ok ? 1 : 0);
      crypto::append_lv(reply, crypto::to_bytes(out.error));
      return reply;
    }
    case kCreateConfirm:
      if (!session_.has_value() || !session_->established()) return {};
      return session_->create_confirm();
    case kGetSessionKey:
      if (!session_.has_value() || !session_->established()) return {};
      try {
        return session_->session_key(crypto::to_string(arg));
      } catch (const std::logic_error&) {
        return {};  // attestation-only session (no DH key)
      }
    default:
      return {};
  }
}

TargetApp::TargetApp(const Authority& authority, AttestationConfig config)
    : authority_(authority), config_(config) {}

crypto::Bytes TargetApp::handle_call(uint32_t fn, crypto::BytesView arg,
                                     EnclaveEnv& env) {
  switch (fn) {
    case kHandleChallenge:
      session_.emplace(authority_, config_, env);
      return session_->handle_challenge(arg);
    case kVerifyConfirm: {
      crypto::Bytes out;
      out.push_back(session_.has_value() && session_->verify_confirm(arg) ? 1
                                                                          : 0);
      return out;
    }
    case kGetSessionKey:
      if (!session_.has_value() || !session_->established()) return {};
      try {
        return session_->session_key(crypto::to_string(arg));
      } catch (const std::logic_error&) {
        return {};  // attestation-only session (no DH key)
      }
    default:
      return {};
  }
}

EnclaveImage challenger_image(const Authority& authority,
                              AttestationConfig config) {
  const Authority* auth = &authority;
  return EnclaveImage::from_source(
      "attest-challenger",
      "tenet attestation challenger v1\nentry challenge/consume/confirm\n",
      [auth, config] { return std::make_unique<ChallengerApp>(*auth, config); });
}

EnclaveImage target_image(const Authority& authority, AttestationConfig config,
                          uint32_t variant) {
  const Authority* auth = &authority;
  std::string source = "tenet attestation target v1\nvariant=";
  source += std::to_string(variant);
  source += "\nentry handle_challenge/verify_confirm\n";
  return EnclaveImage::from_source(
      "attest-target", source,
      [auth, config] { return std::make_unique<TargetApp>(*auth, config); });
}

}  // namespace tenet::sgx::apps
