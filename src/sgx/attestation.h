// Remote attestation protocol (§2.2, Figure 1), transport-agnostic.
//
// A ChallengerSession and a TargetSession exchange two messages (plus an
// optional key-confirmation) over any byte transport:
//
//   msg1  challenger -> target : nonce, [challenger DH pub], [challenger
//                                quote when mutual]
//   (target platform-local)    : EREPORT -> quoting enclave -> QUOTE
//   msg2  target -> challenger : QUOTE, [target DH pub]
//   msg3  challenger -> target : key-confirmation MAC (DH mode only)
//
// The QUOTE binds the DH public values and nonce through REPORTDATA, so a
// man-in-the-middle cannot splice its own key exchange into a validly
// attested session. "As part of remote attestation, two remote enclaves
// can bootstrap a secure channel by performing a Diffie-Hellman key
// exchange" — the derived session key feeds netsim::SecureChannel.
#pragma once

#include <optional>
#include <string>

#include "crypto/dh.h"
#include "sgx/enclave.h"
#include "sgx/platform.h"

namespace tenet::sgx {

/// What a verifier requires of the peer's quote.
struct AttestationExpectation {
  /// Acceptable enclave identities; empty = any measurement (rely on the
  /// signer policy instead). Multi-valued because some verifiers admit
  /// several programs — e.g. a Tor directory authority attests both
  /// co-authorities and relays.
  std::vector<Measurement> mr_enclave_any_of;
  std::optional<SignerId> mr_signer;
  uint32_t min_security_version = 0;

  void expect_enclave(const Measurement& m) { mr_enclave_any_of = {m}; }
  void also_accept(const Measurement& m) { mr_enclave_any_of.push_back(m); }

  [[nodiscard]] bool admits(const Report& r) const {
    if (!mr_enclave_any_of.empty()) {
      bool found = false;
      for (const Measurement& m : mr_enclave_any_of) {
        if (r.mr_enclave == m) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    if (mr_signer.has_value() && r.mr_signer != *mr_signer) return false;
    return r.security_version >= min_security_version;
  }
};

struct AttestationConfig {
  bool use_dh = true;     // bootstrap a secure channel (Table 1 "w/ DH")
  bool mutual = false;    // challenger also proves its identity via quote
  const crypto::DhGroup* group = nullptr;  // defaults to oakley group 2
  AttestationExpectation expect;

  [[nodiscard]] const crypto::DhGroup& dh_group() const {
    return group != nullptr ? *group : crypto::DhGroup::oakley_group2();
  }
};

/// Result of verifying the peer.
struct AttestationOutcome {
  bool ok = false;
  std::string error;           // reason when !ok
  Measurement peer_measurement{};
  SignerId peer_signer{};
  PlatformId peer_platform = 0;
};

namespace detail {
/// Session-key schedule shared by both sides.
crypto::Bytes derive_session_key(crypto::BytesView shared_secret,
                                 crypto::BytesView nonce,
                                 std::string_view label, size_t length);
/// REPORTDATA binding for a quote: H(role | nonce | dh_pub).
ReportData quote_binding(std::string_view role, crypto::BytesView nonce,
                         crypto::BytesView dh_pub);
}  // namespace detail

/// Challenger half. Runs wherever the verifying code runs — inside an
/// enclave (pass its EnclaveEnv so quotes/identities are available for
/// mutual mode) or as plain untrusted software (env == nullptr; then
/// `mutual` is unavailable).
class ChallengerSession {
 public:
  ChallengerSession(const Authority& authority, AttestationConfig config,
                    crypto::Drbg& rng, EnclaveEnv* env = nullptr);

  /// Builds msg1. Call once.
  crypto::Bytes create_challenge();

  /// Verifies msg2 (quote + optional DH). On success (and with use_dh) the
  /// session key becomes available.
  AttestationOutcome consume_response(crypto::BytesView msg2);

  /// Builds the key-confirmation msg3 (requires an established DH key).
  crypto::Bytes create_confirm() const;

  [[nodiscard]] bool established() const { return established_; }
  /// Derives key material bound to this session (requires established()).
  [[nodiscard]] crypto::Bytes session_key(std::string_view label,
                                          size_t length = 32) const;

 private:
  const Authority& authority_;
  AttestationConfig config_;
  crypto::Drbg& rng_;
  EnclaveEnv* env_;
  crypto::Bytes nonce_;
  /// SHA-256 of the exact msg1 bytes sent. The target's quote binding and
  /// all session key derivations use this transcript hash rather than the
  /// bare nonce, so EVERY challenge byte (tag, flags — including reserved
  /// bits — and length prefixes) is bound: any in-flight mutation makes
  /// the two sides' hashes diverge and the handshake fail closed.
  crypto::Bytes challenge_hash_;
  std::optional<crypto::DhKeyPair> dh_;
  crypto::Bytes shared_secret_;
  bool challenge_sent_ = false;
  bool established_ = false;
};

/// Target half; always runs inside an enclave (it must quote itself).
class TargetSession {
 public:
  TargetSession(const Authority& authority, AttestationConfig config,
                EnclaveEnv& env);

  /// Handles msg1 and produces msg2. Returns empty bytes when the request
  /// is rejected (malformed, or mutual-mode challenger failed checks).
  crypto::Bytes handle_challenge(crypto::BytesView msg1);

  /// Verifies msg3 (DH mode only).
  [[nodiscard]] bool verify_confirm(crypto::BytesView msg3) const;

  [[nodiscard]] bool established() const { return established_; }
  [[nodiscard]] crypto::Bytes session_key(std::string_view label,
                                          size_t length = 32) const;
  /// In mutual mode, the verified challenger identity.
  [[nodiscard]] const AttestationOutcome& peer() const { return peer_; }

 private:
  const Authority& authority_;
  AttestationConfig config_;
  EnclaveEnv& env_;
  crypto::Bytes nonce_;
  /// SHA-256 of the exact msg1 bytes received (see ChallengerSession).
  crypto::Bytes challenge_hash_;
  crypto::Bytes shared_secret_;
  AttestationOutcome peer_;
  bool established_ = false;
};

}  // namespace tenet::sgx
