#include "sgx/attestation.h"

#include "crypto/hmac.h"
#include "sgx/taint.h"
#include "telemetry/trace.h"

namespace tenet::sgx {

namespace detail {

crypto::Bytes derive_session_key(crypto::BytesView shared_secret,
                                 crypto::BytesView nonce,
                                 std::string_view label, size_t length) {
  crypto::Bytes info;
  crypto::append(info, crypto::to_bytes("tenet.attest.session."));
  crypto::append(info, crypto::to_bytes(label));
  crypto::Bytes key = crypto::hkdf(nonce, shared_secret, info, length);
  taint::note_key("attest.session_key", key);
  return key;
}

ReportData quote_binding(std::string_view role, crypto::BytesView nonce,
                         crypto::BytesView dh_pub) {
  crypto::Bytes payload;
  crypto::append(payload, crypto::to_bytes("tenet.attest.binding."));
  crypto::append(payload, crypto::to_bytes(role));
  crypto::append_lv(payload, nonce);
  crypto::append_lv(payload, dh_pub);
  return make_report_data(payload);
}

}  // namespace detail

namespace {

constexpr std::string_view kMsg1Tag = "ATT1";
constexpr std::string_view kMsg2Tag = "ATT2";
constexpr std::string_view kMsg3Tag = "ATT3";
constexpr uint8_t kFlagDh = 0x01;
constexpr uint8_t kFlagMutual = 0x02;

bool check_tag(crypto::Reader& r, std::string_view tag) {
  try {
    return crypto::to_string(r.take(tag.size())) == tag;
  } catch (const std::out_of_range&) {
    return false;
  }
}

AttestationOutcome verify_peer_quote(const Authority& authority,
                                     const AttestationExpectation& expect,
                                     const Quote& quote,
                                     const ReportData& expected_binding) {
  AttestationOutcome out;
  if (!authority.verify_quote(quote)) {
    out.error = "quote signature invalid or platform revoked";
    return out;
  }
  if (!expect.admits(quote.report)) {
    out.error = "enclave identity not admitted by policy";
    return out;
  }
  if (quote.report.report_data != expected_binding) {
    out.error = "report data does not bind this session";
    return out;
  }
  out.ok = true;
  out.peer_measurement = quote.report.mr_enclave;
  out.peer_signer = quote.report.mr_signer;
  out.peer_platform = quote.platform;
  return out;
}

}  // namespace

ChallengerSession::ChallengerSession(const Authority& authority,
                                     AttestationConfig config,
                                     crypto::Drbg& rng, EnclaveEnv* env)
    : authority_(authority), config_(config), rng_(rng), env_(env) {
  if (config_.mutual && env_ == nullptr) {
    throw std::invalid_argument(
        "ChallengerSession: mutual attestation requires running in an enclave");
  }
}

crypto::Bytes ChallengerSession::create_challenge() {
  if (challenge_sent_) {
    throw std::logic_error("ChallengerSession: challenge already sent");
  }
  TENET_SPAN("attest", "create_challenge");
  TENET_COUNT("attest.challenges");
  challenge_sent_ = true;
  nonce_ = rng_.bytes(32);
  if (config_.use_dh) dh_.emplace(config_.dh_group(), rng_);

  crypto::Bytes msg;
  crypto::append(msg, crypto::to_bytes(kMsg1Tag));
  uint8_t flags = 0;
  if (config_.use_dh) flags |= kFlagDh;
  if (config_.mutual) flags |= kFlagMutual;
  msg.push_back(flags);
  crypto::append_lv(msg, nonce_);
  if (config_.use_dh) crypto::append_lv(msg, dh_->public_bytes());
  if (config_.mutual) {
    const crypto::Bytes dh_pub =
        config_.use_dh ? dh_->public_bytes() : crypto::Bytes{};
    const Quote my_quote =
        env_->get_quote(detail::quote_binding("challenger", nonce_, dh_pub));
    crypto::append_lv(msg, my_quote.serialize());
  }
  // Transcript binding (found by boundary_fuzz): hash the exact bytes on
  // the wire, not just the nonce. Without this, a bit flipped in a
  // reserved flags bit survived the whole handshake — nothing bound it.
  // The challenger's own quote (mutual mode) keeps the nonce binding
  // because it is embedded inside msg1 and cannot cover itself.
  const crypto::Digest h = crypto::Sha256::hash(msg);
  challenge_hash_.assign(h.begin(), h.end());
  return msg;
}

AttestationOutcome ChallengerSession::consume_response(crypto::BytesView msg2) {
  TENET_SPAN("attest", "consume_response");
  AttestationOutcome out;
  if (!challenge_sent_) {
    out.error = "response before challenge";
    return out;
  }
  crypto::Reader r(msg2);
  if (!check_tag(r, kMsg2Tag)) {
    out.error = "bad message tag";
    return out;
  }
  Quote quote;
  crypto::Bytes peer_dh;
  try {
    quote = Quote::deserialize(r.lv());
    if (config_.use_dh) peer_dh = r.lv();
  } catch (const std::exception&) {
    out.error = "malformed response";
    return out;
  }

  out = verify_peer_quote(
      authority_, config_.expect, quote,
      detail::quote_binding("target", challenge_hash_, peer_dh));
  if (!out.ok) {
    TENET_COUNT("attest.failures");
    return out;
  }

  if (config_.use_dh) {
    try {
      shared_secret_ = dh_->shared_secret(crypto::BytesView(peer_dh));
    } catch (const std::invalid_argument&) {
      out.ok = false;
      out.error = "invalid DH public value";
      TENET_COUNT("attest.failures");
      return out;
    }
  }
  established_ = true;
  TENET_COUNT("attest.established");
  return out;
}

crypto::Bytes ChallengerSession::session_key(std::string_view label,
                                             size_t length) const {
  if (!established_ || !config_.use_dh) {
    throw std::logic_error("ChallengerSession: no established DH session");
  }
  return detail::derive_session_key(shared_secret_, challenge_hash_, label,
                                    length);
}

crypto::Bytes ChallengerSession::create_confirm() const {
  const crypto::Bytes key = session_key("confirm");
  crypto::Bytes msg;
  crypto::append(msg, crypto::to_bytes(kMsg3Tag));
  const crypto::Digest mac = crypto::hmac_sha256(key, nonce_);
  crypto::append_lv(msg, crypto::digest_bytes(mac));
  return msg;
}

TargetSession::TargetSession(const Authority& authority,
                             AttestationConfig config, EnclaveEnv& env)
    : authority_(authority), config_(config), env_(env) {}

crypto::Bytes TargetSession::handle_challenge(crypto::BytesView msg1) {
  TENET_SPAN("attest", "handle_challenge");
  TENET_COUNT("attest.responses");
  // Bind the exact challenge bytes received (see create_challenge).
  const crypto::Digest h = crypto::Sha256::hash(msg1);
  challenge_hash_.assign(h.begin(), h.end());
  crypto::Reader r(msg1);
  if (!check_tag(r, kMsg1Tag)) return {};

  uint8_t flags = 0;
  crypto::Bytes challenger_dh;
  crypto::Bytes challenger_quote_wire;
  try {
    flags = r.u8();
    nonce_ = r.lv();
    if (flags & kFlagDh) challenger_dh = r.lv();
    if (flags & kFlagMutual) challenger_quote_wire = r.lv();
  } catch (const std::exception&) {
    return {};
  }
  const bool use_dh = (flags & kFlagDh) != 0;

  // Mutual mode: the challenger must prove its own identity first.
  if (config_.mutual) {
    if (challenger_quote_wire.empty()) return {};
    Quote challenger_quote;
    try {
      challenger_quote = Quote::deserialize(challenger_quote_wire);
    } catch (const std::exception&) {
      return {};
    }
    peer_ = verify_peer_quote(
        authority_, config_.expect, challenger_quote,
        detail::quote_binding("challenger", nonce_, challenger_dh));
    if (!peer_.ok) return {};
  }

  crypto::Bytes my_dh_pub;
  if (use_dh) {
    const crypto::DhKeyPair dh(config_.dh_group(), env_.rng());
    my_dh_pub = dh.public_bytes();
    try {
      shared_secret_ = dh.shared_secret(crypto::BytesView(challenger_dh));
    } catch (const std::invalid_argument&) {
      return {};
    }
  }

  // Quote ourselves with the session binding (Figure 1 messages 2-4).
  const Quote quote = env_.get_quote(
      detail::quote_binding("target", challenge_hash_, my_dh_pub));

  crypto::Bytes msg;
  crypto::append(msg, crypto::to_bytes(kMsg2Tag));
  crypto::append_lv(msg, quote.serialize());
  if (use_dh) crypto::append_lv(msg, my_dh_pub);
  established_ = true;
  config_.use_dh = use_dh;
  return msg;
}

bool TargetSession::verify_confirm(crypto::BytesView msg3) const {
  if (!established_ || !config_.use_dh) return false;
  crypto::Reader r(msg3);
  if (!check_tag(r, kMsg3Tag)) return false;
  crypto::Bytes mac;
  try {
    mac = r.lv();
  } catch (const std::exception&) {
    return false;
  }
  const crypto::Bytes key =
      detail::derive_session_key(shared_secret_, challenge_hash_, "confirm", 32);
  return crypto::hmac_verify(key, nonce_, mac);
}

crypto::Bytes TargetSession::session_key(std::string_view label,
                                         size_t length) const {
  if (!established_ || !config_.use_dh) {
    throw std::logic_error("TargetSession: no established DH session");
  }
  return detail::derive_session_key(shared_secret_, challenge_hash_, label,
                                    length);
}

}  // namespace tenet::sgx
