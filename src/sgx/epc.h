// Enclave Page Cache emulation.
//
// §2.1: "memory content of the enclave is stored inside Enclave Page Cache
// (EPC), which is protected memory where encrypted enclave pages and SGX
// data structures are stored... the OS cannot see the memory content
// because the EPC region is encrypted by the memory encryption engine
// (MEE) within the CPU."
//
// We model that literally: pages are stored AES-CTR-encrypted under a
// per-platform MEE key with a per-page MAC, and an EPCM entry records the
// owning enclave. A host-level adversary (sgx/adversary.h) can read and
// corrupt the *ciphertext* — reads reveal nothing, and corruption is
// caught by the MAC on next access, faulting the enclave. MEE work is done
// by hardware in parallel with memory traffic, so it is deliberately NOT
// charged to the instruction-cost model.
#pragma once

#include <map>
#include <optional>

#include "crypto/aead.h"
#include "crypto/bytes.h"
#include "sgx/types.h"

namespace tenet::sgx {

/// EPCM metadata for one EPC page (§2.1: "the processor maintains enclave
/// page cache map (EPCM) to keep meta-data associated with each EPC page").
struct EpcmEntry {
  bool valid = false;
  EnclaveId owner = 0;
  uint64_t vaddr = 0;  // page index within the enclave's address space
  bool writable = true;
};

class Epc {
 public:
  /// `capacity_pages`: EPC size (real 2015 hardware reserved ~128 MB; the
  /// default keeps the same order of magnitude at page granularity).
  Epc(crypto::BytesView mee_key, size_t capacity_pages = 32 * 1024);

  /// Adds a page for `owner` at enclave-virtual page `vaddr`; encrypts and
  /// MACs the plaintext. Throws HardwareFault when the EPC is full or the
  /// slot is already mapped.
  void add_page(EnclaveId owner, uint64_t vaddr, crypto::BytesView plaintext);

  /// Reads a page back through the MEE. Throws HardwareFault if the caller
  /// is not the owner ("only the enclave that is associated with the EPC
  /// page can access it") or if integrity verification fails.
  /// (Non-const: a spilled page is transparently reloaded — ELDU.)
  [[nodiscard]] crypto::Bytes read_page(EnclaveId owner, uint64_t vaddr);

  /// Rewrites a page (data/heap stores).
  void write_page(EnclaveId owner, uint64_t vaddr, crypto::BytesView plaintext);

  /// Verifies the MAC of every page owned by `owner`; throws HardwareFault
  /// on the first corrupted page.
  void verify_owner_pages(EnclaveId owner);

  /// Frees all pages of an enclave (EREMOVE path).
  void remove_enclave(EnclaveId owner);

  [[nodiscard]] size_t pages_in_use() const { return pages_.size(); }
  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] size_t pages_of(EnclaveId owner) const;

  // --- Paging (EWB / ELDU) ---
  //
  // The EPC is small (real 2015 parts reserved ~128 MB), so the OS pages
  // enclave memory to ordinary RAM: EWB re-encrypts the page with a fresh
  // version recorded in an in-EPC Version Array slot; ELDU reloads it and
  // checks the version, so a privileged attacker replaying an *old*
  // encrypted copy (a rollback) is caught by hardware. add_page evicts
  // automatically under pressure, and read/write reload transparently.

  /// Explicitly evicts a resident page to the untrusted spill store.
  /// Throws HardwareFault if the page is not resident.
  void evict_page(EnclaveId owner, uint64_t vaddr);

  [[nodiscard]] bool resident(EnclaveId owner, uint64_t vaddr) const;
  [[nodiscard]] uint64_t evictions() const { return evictions_; }
  [[nodiscard]] uint64_t reloads() const { return reloads_; }

  /// Privileged-software rollback attack: replaces the current spilled
  /// copy of a page with an earlier snapshot (captured at call time of
  /// adversary_snapshot_spill). Detection happens at reload.
  [[nodiscard]] std::optional<crypto::Bytes> adversary_snapshot_spill(
      EnclaveId owner, uint64_t vaddr) const;
  bool adversary_replace_spill(EnclaveId owner, uint64_t vaddr,
                               crypto::Bytes old_snapshot);

  // --- Adversary surface (privileged software / physical attacker) ---

  /// Ciphertext of a page as the OS/DMA attacker sees it; nullopt if the
  /// slot is unmapped. Never decrypts.
  [[nodiscard]] std::optional<crypto::Bytes> adversary_read_ciphertext(
      EnclaveId owner, uint64_t vaddr) const;

  /// Flips bits in the stored ciphertext (a physical / privileged-software
  /// write). The MEE MAC will catch this on next legitimate access.
  /// Returns false if the slot is unmapped.
  bool adversary_corrupt(EnclaveId owner, uint64_t vaddr, size_t byte_offset);

 private:
  // Zero-page shortcut: EAUG'd heap pages are all-zero, and workloads that
  // model big transient allocations add (and evict) hundreds of thousands
  // of them. Sealing each one through the software MEE dominated simulator
  // wall-clock while modeling nothing — MEE work is hardware and excluded
  // from the instruction meter anyway. A page known to be zero carries a
  // flag instead of ciphertext and is materialized (sealed for real) the
  // moment anything can observe the ciphertext: an adversary read/corrupt,
  // or a spill snapshot/replace. Modeled counters (mee_seals, ewb, eldu)
  // are charged exactly as before.
  struct Slot {
    EpcmEntry epcm;
    mutable crypto::Bytes ciphertext;  // sealed page (includes MAC)
    mutable bool zero = false;         // all-zero page, seal deferred
  };
  struct SpilledPage {
    mutable crypto::Bytes ciphertext;  // sealed under the MEE key + version
    uint64_t version = 0;      // must match the in-EPC VA slot on reload
    mutable bool zero = false;
  };

  /// Seals a deferred zero page so its ciphertext becomes observable.
  void materialize(const Slot& slot, EnclaveId owner, uint64_t vaddr) const;
  void materialize_spill(const SpilledPage& spilled, EnclaveId owner,
                         uint64_t vaddr) const;

  /// Reloads a spilled page into the EPC (ELDU); throws HardwareFault on
  /// MAC failure or version (rollback) mismatch.
  void reload_page(EnclaveId owner, uint64_t vaddr);
  /// Evicts some resident page to make room (the "OS" picks a victim that
  /// is not `keep_owner`/`keep_vaddr`).
  void make_room(EnclaveId keep_owner, uint64_t keep_vaddr);
  [[nodiscard]] const Slot& slot_for_read(EnclaveId owner,
                                          uint64_t vaddr) const;

  crypto::Aead mee_;
  size_t capacity_;
  std::map<std::pair<EnclaveId, uint64_t>, Slot> pages_;
  // Untrusted spill store (ordinary RAM) + trusted version array (in-EPC
  // metadata, not visible to the adversary surface).
  std::map<std::pair<EnclaveId, uint64_t>, SpilledPage> spill_;
  std::map<std::pair<EnclaveId, uint64_t>, uint64_t> version_array_;
  uint64_t next_version_ = 1;
  uint64_t evictions_ = 0;
  uint64_t reloads_ = 0;
};

}  // namespace tenet::sgx
