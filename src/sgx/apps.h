// Reference enclave applications.
//
// These small trusted programs exercise the emulator end-to-end and are
// exactly the programs the paper's microbenchmarks need: an echo service
// (runtime smoke tests), a packet sender (Table 2's "simple server program
// which sends an MTU sized packet inside an enclave"), and wrappers that
// run the Figure 1 attestation roles inside enclaves (Table 1).
#pragma once

#include "sgx/attestation.h"
#include "sgx/enclave.h"

namespace tenet::sgx::apps {

// ---------------------------------------------------------------------------
// EchoApp
// ---------------------------------------------------------------------------

/// fn codes for EchoApp.
enum EchoFn : uint32_t {
  kEchoReverse = 1,   // returns the argument reversed
  kEchoOcall = 2,     // round-trips the argument through ocall 0x42
  kEchoAlloc = 3,     // heap_alloc(u32 arg) then returns page count
  kEchoSealKey = 4,   // returns this enclave's seal key for label "t"
  kEchoThrow = 5,     // throws (models an in-enclave fault)
  kEchoSeal = 6,      // seals the argument under label "state"
  kEchoUnseal = 7,    // unseals the argument; empty on failure
};

/// Trivial trusted program used by runtime tests.
class EchoApp final : public EnclaveApp {
 public:
  crypto::Bytes handle_call(uint32_t fn, crypto::BytesView arg,
                            EnclaveEnv& env) override;
};

/// Canonical echo image; `variant` changes the code bytes (and therefore
/// the measurement) without changing behaviour — handy for building
/// "different version" images.
EnclaveImage echo_image(uint32_t variant = 0);

// ---------------------------------------------------------------------------
// PacketSenderApp  (Table 2 rig)
// ---------------------------------------------------------------------------

/// Ocall codes used by PacketSenderApp.
enum PacketOcall : uint32_t {
  kOcallNetOpen = 0x100,   // open the untrusted socket (once per send run)
  kOcallNetSend = 0x101,   // transmit one packet
  kOcallNetSendBatch = 0x102,  // transmit a batch in one exit (ablation A1)
};

/// Request for PacketSenderApp::kSendRun, serialized with append_u32/u8.
struct SendRunRequest {
  uint32_t packet_count = 1;
  uint32_t packet_size = 1500;  // MTU, as in the paper
  bool encrypt = false;         // "crypto" columns: AES-128 on the payload
  bool batched = false;         // one ocall for all packets (ablation)
  uint32_t batch_size = 16;     // packets per exit when batched

  [[nodiscard]] crypto::Bytes serialize() const;
  static SendRunRequest deserialize(crypto::BytesView wire);
};

enum PacketFn : uint32_t {
  kSendRun = 1,
};

/// Sends `packet_count` packets of `packet_size` bytes through the
/// enclave boundary, optionally encrypting each with AES-128 (ECB with
/// PKCS#7, the paper's symmetric primitive). Unbatched mode issues one
/// ocall per packet — reproducing Table 2's SGX(U) = 2N + 4 shape (EENTER
/// + socket-open exit + N send exits + EEXIT).
class PacketSenderApp final : public EnclaveApp {
 public:
  crypto::Bytes handle_call(uint32_t fn, crypto::BytesView arg,
                            EnclaveEnv& env) override;
};

EnclaveImage packet_sender_image();

// ---------------------------------------------------------------------------
// Attestation role apps (Table 1 rig)
// ---------------------------------------------------------------------------

enum AttestFn : uint32_t {
  kCreateChallenge = 1,   // challenger: -> msg1
  kConsumeResponse = 2,   // challenger: msg2 -> outcome byte + error text
  kCreateConfirm = 3,     // challenger: -> msg3
  kHandleChallenge = 4,   // target: msg1 -> msg2 (empty on reject)
  kVerifyConfirm = 5,     // target: msg3 -> {0|1}
  kGetSessionKey = 6,     // either: label -> derived key (test-only ecall)
};

/// Runs the challenger role inside an enclave.
class ChallengerApp final : public EnclaveApp {
 public:
  ChallengerApp(const Authority& authority, AttestationConfig config);
  crypto::Bytes handle_call(uint32_t fn, crypto::BytesView arg,
                            EnclaveEnv& env) override;

 private:
  const Authority& authority_;
  AttestationConfig config_;
  std::optional<ChallengerSession> session_;
};

/// Runs the target role inside an enclave.
class TargetApp final : public EnclaveApp {
 public:
  TargetApp(const Authority& authority, AttestationConfig config);
  crypto::Bytes handle_call(uint32_t fn, crypto::BytesView arg,
                            EnclaveEnv& env) override;

 private:
  const Authority& authority_;
  AttestationConfig config_;
  std::optional<TargetSession> session_;
};

EnclaveImage challenger_image(const Authority& authority,
                              AttestationConfig config);
EnclaveImage target_image(const Authority& authority,
                          AttestationConfig config, uint32_t variant = 0);

}  // namespace tenet::sgx::apps
