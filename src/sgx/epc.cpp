#include "sgx/epc.h"

#include <string>

#include "crypto/work.h"
#include "telemetry/events.h"
#include "telemetry/trace.h"

namespace tenet::sgx {

namespace {
/// MEE operations happen in dedicated hardware; keep them out of the
/// instruction-cost work meter for the duration of the call.
struct MeeScope : crypto::work::Scope {
  MeeScope() : crypto::work::Scope(nullptr) {}
};

crypto::Bytes vaddr_aad(uint64_t vaddr) {
  crypto::Bytes aad;
  crypto::append_u64(aad, vaddr);
  return aad;
}

bool all_zero(crypto::BytesView bytes) {
  for (const uint8_t b : bytes) {
    if (b != 0) return false;
  }
  return true;
}

crypto::Bytes zero_page_bytes() { return crypto::Bytes(kPageSize, 0); }
}  // namespace

Epc::Epc(crypto::BytesView mee_key, size_t capacity_pages)
    : mee_([&] {
        MeeScope off;
        return crypto::Aead(mee_key);
      }()),
      capacity_(capacity_pages) {}

void Epc::make_room(EnclaveId keep_owner, uint64_t keep_vaddr) {
  // The "OS" picks an eviction victim. Any resident page other than the
  // one being installed will do; take the first.
  for (const auto& [key, slot] : pages_) {
    if (key.first == keep_owner && key.second == keep_vaddr) continue;
    evict_page(key.first, key.second);
    return;
  }
  TENET_COUNT("sgx.epc.pressure_faults");
  TENET_EVENT(kEpcPressure, static_cast<uint32_t>(keep_owner), capacity_);
  throw EpcPressureError(
      keep_owner, "EPC: no evictable page (capacity too small) while enclave " +
                      std::to_string(keep_owner) + " requested a page");
}

void Epc::add_page(EnclaveId owner, uint64_t vaddr,
                   crypto::BytesView plaintext) {
  MeeScope off;
  TENET_COUNT("sgx.epc.pages_added");
  TENET_COUNT("sgx.epc.mee_seals");
  if (plaintext.size() > kPageSize) {
    throw HardwareFault("EPC: page larger than 4096 bytes");
  }
  const auto key = std::make_pair(owner, vaddr);
  if (pages_.contains(key) || spill_.contains(key)) {
    throw HardwareFault("EPC: page already mapped");
  }
  if (pages_.size() >= capacity_) make_room(owner, vaddr);

  Slot slot;
  slot.epcm = EpcmEntry{true, owner, vaddr, true};
  if (all_zero(plaintext)) {
    slot.zero = true;  // EAUG fast path: seal deferred until observable
  } else {
    crypto::Bytes page(plaintext.begin(), plaintext.end());
    page.resize(kPageSize, 0);
    slot.ciphertext = mee_.seal(owner, vaddr, page);
  }
  pages_.emplace(key, std::move(slot));
}

void Epc::materialize(const Slot& slot, EnclaveId owner,
                      uint64_t vaddr) const {
  if (!slot.zero) return;
  MeeScope off;
  slot.ciphertext = mee_.seal(owner, vaddr, zero_page_bytes());
  slot.zero = false;
}

void Epc::materialize_spill(const SpilledPage& spilled, EnclaveId owner,
                            uint64_t vaddr) const {
  if (!spilled.zero) return;
  MeeScope off;
  spilled.ciphertext = mee_.seal(owner ^ 0x5350494Cu, spilled.version,
                                 zero_page_bytes(), vaddr_aad(vaddr));
  spilled.zero = false;
}

void Epc::evict_page(EnclaveId owner, uint64_t vaddr) {
  MeeScope off;
  TENET_SPAN("epc", "ewb");
  TENET_COUNT("sgx.epc.ewb");
  TENET_COUNT("sgx.epc.mee_opens");
  TENET_COUNT("sgx.epc.mee_seals");
  const auto it = pages_.find({owner, vaddr});
  if (it == pages_.end()) throw HardwareFault("EWB: page not resident");

  // Decrypt the resident page and re-encrypt with a fresh version bound
  // into the ciphertext; record the version in the (trusted) VA slot.
  // (A deferred zero page spills as a zero marker — the version walk is
  // identical, only the seal is deferred until the ciphertext can be
  // observed.)
  const uint64_t version = next_version_++;
  SpilledPage spilled;
  spilled.version = version;
  if (it->second.zero) {
    spilled.zero = true;
  } else {
    auto plain = mee_.open(it->second.ciphertext);
    if (!plain.has_value()) {
      throw HardwareFault("EPC: MEE integrity check failed (page corrupted)");
    }
    spilled.ciphertext = mee_.seal(owner ^ 0x5350494Cu, version, *plain,
                                   vaddr_aad(vaddr));
  }
  version_array_[{owner, vaddr}] = version;
  spill_[{owner, vaddr}] = std::move(spilled);
  pages_.erase(it);
  ++evictions_;
}

void Epc::reload_page(EnclaveId owner, uint64_t vaddr) {
  MeeScope off;
  TENET_SPAN("epc", "eldu");
  TENET_COUNT("sgx.epc.eldu");
  TENET_COUNT("sgx.epc.mee_opens");
  TENET_COUNT("sgx.epc.mee_seals");
  const auto key = std::make_pair(owner, vaddr);
  const auto it = spill_.find(key);
  if (it == spill_.end()) throw HardwareFault("ELDU: page not spilled");

  const auto va = version_array_.find(key);
  if (va == version_array_.end() || va->second != it->second.version) {
    TENET_COUNT("sgx.epc.rollbacks_detected");
    throw HardwareFault("ELDU: version mismatch (rollback attack detected)");
  }
  Slot slot;
  slot.epcm = EpcmEntry{true, owner, vaddr, true};
  if (it->second.zero) {
    // Deferred zero spill: nothing observable was ever produced, so there
    // is no ciphertext to check — the VA-slot version comparison above is
    // the full rollback check (a replaced snapshot materializes first and
    // takes the non-zero path).
    slot.zero = true;
  } else {
    auto plain = mee_.open(it->second.ciphertext, vaddr_aad(vaddr));
    if (!plain.has_value()) {
      TENET_COUNT("sgx.epc.integrity_faults");
      throw HardwareFault("ELDU: MAC failure on spilled page");
    }
    // Verify the sealed version actually matches the VA slot (the stored
    // `version` field above lives in untrusted RAM; the MAC covers the
    // version via the AEAD sequence number, so a liar is caught here).
    if (crypto::Aead::record_seq(it->second.ciphertext) != va->second) {
      TENET_COUNT("sgx.epc.rollbacks_detected");
      throw HardwareFault("ELDU: version mismatch (rollback attack detected)");
    }
    slot.ciphertext = mee_.seal(owner, vaddr, *plain);
  }

  spill_.erase(it);
  version_array_.erase(va);
  if (pages_.size() >= capacity_) make_room(owner, vaddr);
  pages_.emplace(key, std::move(slot));
  ++reloads_;
}

const Epc::Slot& Epc::slot_for_read(EnclaveId owner, uint64_t vaddr) const {
  const auto it = pages_.find({owner, vaddr});
  if (it == pages_.end() || !it->second.epcm.valid) {
    throw HardwareFault("EPC: access to unmapped page");
  }
  if (it->second.epcm.owner != owner) {
    throw HardwareFault("EPC: cross-enclave access denied");
  }
  return it->second;
}

crypto::Bytes Epc::read_page(EnclaveId owner, uint64_t vaddr) {
  MeeScope off;
  if (!pages_.contains({owner, vaddr}) && spill_.contains({owner, vaddr})) {
    reload_page(owner, vaddr);  // transparent page-in
  }
  const Slot& slot = slot_for_read(owner, vaddr);
  if (slot.zero) return zero_page_bytes();
  auto plain = mee_.open(slot.ciphertext);
  if (!plain.has_value()) {
    throw HardwareFault("EPC: MEE integrity check failed (page corrupted)");
  }
  return *plain;
}

void Epc::write_page(EnclaveId owner, uint64_t vaddr,
                     crypto::BytesView plaintext) {
  MeeScope off;
  if (!pages_.contains({owner, vaddr}) && spill_.contains({owner, vaddr})) {
    reload_page(owner, vaddr);
  }
  const auto it = pages_.find({owner, vaddr});
  if (it == pages_.end()) throw HardwareFault("EPC: write to unmapped page");
  if (!it->second.epcm.writable) throw HardwareFault("EPC: page not writable");
  crypto::Bytes page(plaintext.begin(), plaintext.end());
  if (page.size() > kPageSize) throw HardwareFault("EPC: oversized write");
  page.resize(kPageSize, 0);
  it->second.ciphertext = mee_.seal(owner, vaddr, page);
  it->second.zero = false;
}

void Epc::verify_owner_pages(EnclaveId owner) {
  MeeScope off;
  for (const auto& [key, slot] : pages_) {
    if (key.first != owner) continue;
    if (slot.zero) continue;  // no observable ciphertext to have corrupted
    if (!mee_.open(slot.ciphertext).has_value()) {
      TENET_COUNT("sgx.epc.integrity_faults");
      throw HardwareFault("EPC: MEE integrity check failed (page corrupted)");
    }
  }
  // Spilled pages are verified lazily at reload; verifying them here
  // would defeat the point of paging them out.
}

void Epc::remove_enclave(EnclaveId owner) {
  std::erase_if(pages_, [owner](const auto& kv) { return kv.first.first == owner; });
  std::erase_if(spill_, [owner](const auto& kv) { return kv.first.first == owner; });
  std::erase_if(version_array_,
                [owner](const auto& kv) { return kv.first.first == owner; });
}

size_t Epc::pages_of(EnclaveId owner) const {
  size_t n = 0;
  for (const auto& [key, slot] : pages_) {
    if (key.first == owner) ++n;
  }
  for (const auto& [key, page] : spill_) {
    if (key.first == owner) ++n;
  }
  return n;
}

bool Epc::resident(EnclaveId owner, uint64_t vaddr) const {
  return pages_.contains({owner, vaddr});
}

std::optional<crypto::Bytes> Epc::adversary_read_ciphertext(
    EnclaveId owner, uint64_t vaddr) const {
  const auto it = pages_.find({owner, vaddr});
  if (it != pages_.end()) {
    materialize(it->second, owner, vaddr);
    return it->second.ciphertext;
  }
  const auto sp = spill_.find({owner, vaddr});
  if (sp != spill_.end()) {
    materialize_spill(sp->second, owner, vaddr);
    return sp->second.ciphertext;
  }
  return std::nullopt;
}

bool Epc::adversary_corrupt(EnclaveId owner, uint64_t vaddr,
                            size_t byte_offset) {
  const auto it = pages_.find({owner, vaddr});
  if (it != pages_.end()) {
    materialize(it->second, owner, vaddr);
    auto& ct = it->second.ciphertext;
    ct[byte_offset % ct.size()] ^= 0x80;
    it->second.zero = false;
    return true;
  }
  const auto sp = spill_.find({owner, vaddr});
  if (sp != spill_.end()) {
    materialize_spill(sp->second, owner, vaddr);
    auto& ct = sp->second.ciphertext;
    ct[byte_offset % ct.size()] ^= 0x80;
    sp->second.zero = false;
    return true;
  }
  return false;
}

std::optional<crypto::Bytes> Epc::adversary_snapshot_spill(
    EnclaveId owner, uint64_t vaddr) const {
  const auto it = spill_.find({owner, vaddr});
  if (it == spill_.end()) return std::nullopt;
  materialize_spill(it->second, owner, vaddr);
  crypto::Bytes snapshot;
  crypto::append_u64(snapshot, it->second.version);
  crypto::append(snapshot, it->second.ciphertext);
  return snapshot;
}

bool Epc::adversary_replace_spill(EnclaveId owner, uint64_t vaddr,
                                  crypto::Bytes old_snapshot) {
  const auto it = spill_.find({owner, vaddr});
  if (it == spill_.end() || old_snapshot.size() < 8) return false;
  it->second.version = crypto::read_u64(old_snapshot, 0);
  it->second.ciphertext.assign(old_snapshot.begin() + 8, old_snapshot.end());
  it->second.zero = false;
  return true;
}

}  // namespace tenet::sgx
