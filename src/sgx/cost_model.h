// Instruction-accounting cost model — the reproduction's measurement rig.
//
// The paper (§5) characterizes SGX overhead in two currencies measured by
// the OpenSGX emulator:
//   * SGX(U) instructions — user-mode SGX instructions (EENTER, EEXIT,
//     ERESUME, EREPORT, EGETKEY, ...), each assumed to cost 10K cycles;
//   * normal instructions — everything else, converted to cycles with the
//     natively-measured IPC of 1.8.
// We reproduce the same two counters. SGX instructions are counted exactly
// (the emulator executes them). Normal instructions are charged at the
// primitive level: crypto reports blocks/limb-ops through the work meter
// (crypto/work.h) and the SGX runtime charges boundary copies, context
// switches and page operations directly, using the calibrated constants
// below.
//
// cycles = kCyclesPerSgxInstr * sgx_user + normal / kIpc
// (The paper's footnote 6 writes "IPC x normal"; instructions divided by
// instructions-per-cycle is the dimensionally meaningful form — see
// DESIGN.md §2 and EXPERIMENTS.md.)
#pragma once

#include <cstdint>
#include <string>

#include "crypto/work.h"

namespace tenet::sgx {

/// User-mode (ring-3) SGX instructions — the SGX(U) column of the tables.
enum class UserInstr : uint8_t {
  kEEnter,
  kEExit,
  kEResume,
  kEGetKey,
  kEReport,
  kEAccept,
};

/// Privileged SGX instructions — executed during enclave launch only; the
/// paper excludes launch cost from its steady-state tables, so these are
/// tracked separately.
enum class PrivInstr : uint8_t {
  kECreate,
  kEAdd,
  kEExtend,
  kEInit,
  kEAug,
  kERemove,
};

const char* to_string(UserInstr i);
const char* to_string(PrivInstr i);

/// Calibrated conversion constants (2015-era x86 software implementations;
/// see DESIGN.md §3 for the calibration rationale).
struct CostConstants {
  uint64_t cycles_per_sgx_instr = 10'000;  // paper's assumption
  double ipc = 1.8;                        // paper's measured IPC

  // Normal-instruction cost of one unit of primitive work.
  uint64_t per_sha256_block = 1'000;   // ~15 cyc/B softimpl
  uint64_t per_aes_block = 300;        // ~20 cyc/B software AES
  uint64_t per_aes_key_schedule = 500;
  uint64_t per_chacha_block = 400;
  uint64_t per_limb_muladd = 4;
  uint64_t per_byte_moved = 1;
  uint64_t per_alu_op = 1;            // generic application compute step

  // Enclave-boundary effects. Copies are SIMD-ish (several bytes per
  // instruction); the 10K-cycle SGX-instruction assumption already covers
  // most of the exit/entry latency, so the *normal-instruction* side of a
  // context switch is just trap handling and state bookkeeping.
  uint64_t boundary_bytes_per_instr = 8;  // EPC <-> untrusted memcpy rate
  uint64_t per_context_switch = 400;      // kernel-visible switch overhead
  uint64_t per_page_zero = 25'000;  // in-enclave allocator page setup:
                                    // scrubbing + bookkeeping + the
                                    // OpenSGX-style software paths the
                                    // paper attributes "dynamic memory
                                    // allocation" overhead to (SGX1 has
                                    // no EAUG/EACCEPT; heap mgmt is all
                                    // normal instructions)
  uint64_t per_ocall_dispatch = 200;  // untrusted-side trampoline

  // Switchless-call accounting (the second transition mode — see
  // src/sgx/switchless.h and DESIGN.md §10). A switchless hit replaces the
  // 2 x 10K-cycle EEXIT/ERESUME pair (plus two context switches) with:
  uint64_t per_ring_slot_write = 80;  // descriptor write + cache-line
                                      // transfer to the other core
  uint64_t per_switchless_poll = 120; // caller/worker spin until the
                                      // response slot fills
  uint64_t per_worker_wakeup = 3'000; // futex-style kick when a parked
                                      // worker must be woken (charged on
                                      // the fallback that wakes it)
};

/// One accounting domain. Each emulated Platform owns one; benches also
/// create standalone models for native (non-SGX) baselines.
class CostModel {
 public:
  explicit CostModel(CostConstants constants = {}) : constants_(constants) {}

  void charge_user(UserInstr instr, uint64_t count = 1);
  void charge_priv(PrivInstr instr, uint64_t count = 1);
  /// Directly observed normal instructions (marshalling loops etc.).
  void charge_normal(uint64_t instructions);
  /// Bytes copied across the enclave boundary (EPC <-> untrusted memory).
  void charge_boundary_bytes(uint64_t bytes);
  /// One enclave exit/resume context switch (beyond the instruction cost).
  void charge_context_switch();
  void charge_page_zero(uint64_t pages);
  void charge_ocall_dispatch();

  // --- Switchless accounting mode (DESIGN.md §10) ---
  /// One request/response descriptor written into the shared ring.
  void charge_ring_slot_write();
  /// One spin-wait until the other side fills the response slot.
  void charge_switchless_poll();
  /// Amortised cost of kicking a parked polling worker awake.
  void charge_worker_wakeup();
  /// Book-keeping (no instruction charge): a call was served through the
  /// ring / fell back to a full synchronous transition. Tests cross-check
  /// these against the ring's own stats and the telemetry registry.
  void note_switchless_hit(uint64_t count = 1) { switchless_hits_ += count; }
  void note_switchless_fallback() { ++switchless_fallbacks_; }

  [[nodiscard]] const CostConstants& constants() const { return constants_; }
  [[nodiscard]] crypto::WorkCounters& work() { return work_; }

  /// SGX(U) instruction count (steady state tables).
  [[nodiscard]] uint64_t sgx_user_instructions() const { return sgx_user_; }
  /// Privileged instruction count (launch cost, reported separately).
  [[nodiscard]] uint64_t sgx_priv_instructions() const { return sgx_priv_; }
  /// Per-instruction breakdowns of the two totals above. The telemetry
  /// layer (src/telemetry) counts the same events independently at the
  /// instrumentation sites; tests cross-check the two against each other.
  [[nodiscard]] uint64_t user_count(UserInstr i) const {
    return user_counts_[static_cast<size_t>(i)];
  }
  [[nodiscard]] uint64_t priv_count(PrivInstr i) const {
    return priv_counts_[static_cast<size_t>(i)];
  }
  /// Normal instructions: direct charges + converted primitive work.
  [[nodiscard]] uint64_t normal_instructions() const;
  /// Estimated cycles per the paper's formula.
  [[nodiscard]] double cycles() const;

  /// Enclave boundary crossings actually executed: EENTER + EEXIT +
  /// ERESUME. This is the number switchless mode exists to shrink; the
  /// PR-4 bench gate compares it across modes at equal payload bytes.
  [[nodiscard]] uint64_t transitions() const {
    return user_count(UserInstr::kEEnter) + user_count(UserInstr::kEExit) +
           user_count(UserInstr::kEResume);
  }
  /// Calls served through the switchless ring (no transition executed).
  [[nodiscard]] uint64_t switchless_hits() const { return switchless_hits_; }
  /// Switchless-eligible calls that had to fall back to a synchronous
  /// transition (ring full or worker parked).
  [[nodiscard]] uint64_t switchless_fallbacks() const {
    return switchless_fallbacks_;
  }

  void reset();

  /// Point-in-time counter values, for measuring deltas around a phase.
  struct Snapshot {
    uint64_t sgx_user = 0;
    uint64_t sgx_priv = 0;
    uint64_t normal = 0;
    uint64_t transitions = 0;
    uint64_t switchless_hits = 0;
    uint64_t switchless_fallbacks = 0;

    /// Field-wise accumulation (platform totals across enclave domains).
    void add(const Snapshot& other) {
      sgx_user += other.sgx_user;
      sgx_priv += other.sgx_priv;
      normal += other.normal;
      transitions += other.transitions;
      switchless_hits += other.switchless_hits;
      switchless_fallbacks += other.switchless_fallbacks;
    }
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Counters accumulated since `since`.
  [[nodiscard]] Snapshot delta(const Snapshot& since) const;
  [[nodiscard]] double cycles_of(const Snapshot& d) const;

 private:
  CostConstants constants_;
  uint64_t sgx_user_ = 0;
  uint64_t sgx_priv_ = 0;
  uint64_t user_counts_[6] = {};
  uint64_t priv_counts_[6] = {};
  uint64_t normal_direct_ = 0;
  uint64_t switchless_hits_ = 0;
  uint64_t switchless_fallbacks_ = 0;
  crypto::WorkCounters work_;
};

/// RAII scope that routes this thread's crypto work-meter output into a
/// cost model (and restores the previous sink on exit). Every entry into
/// emulated-enclave or accounted-native code opens one of these.
class CostScope {
 public:
  explicit CostScope(CostModel& model)
      : scope_(&model.work()) {}

 private:
  crypto::work::Scope scope_;
};

}  // namespace tenet::sgx
