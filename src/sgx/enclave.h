// Enclave runtime: trusted/untrusted boundary with instruction accounting.
//
// An Enclave hosts one EnclaveApp (the trusted code). The untrusted host
// drives it with ecall(); trusted code reaches back out with
// EnclaveEnv::ocall(). Every boundary crossing charges the enclave's cost
// model exactly the way the paper measures it on OpenSGX: EENTER/EEXIT/
// ERESUME as SGX(U) instructions, argument/result marshalling as boundary
// byte copies, plus a context-switch penalty per asynchronous exit.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "crypto/bytes.h"
#include "crypto/rng.h"
#include "sgx/cost_model.h"
#include "sgx/image.h"
#include "sgx/quote.h"
#include "sgx/report.h"
#include "sgx/switchless.h"
#include "sgx/types.h"

namespace tenet::sgx {

class Platform;
class Enclave;

/// Services available to trusted code while it executes inside the
/// enclave. All of them charge the enclave's cost model.
class EnclaveEnv {
 public:
  virtual ~EnclaveEnv() = default;

  /// Leaves the enclave (EEXIT), runs the host's ocall handler, re-enters
  /// (ERESUME). Payload and result are copied across the boundary.
  /// Iago-attack note (§6): return values come from untrusted code; the
  /// trusted caller must sanity-check them.
  virtual crypto::Bytes ocall(uint32_t code, crypto::BytesView payload) = 0;

  /// Fire-and-forget ocall: async handlers return an empty result by
  /// convention. When the enclave runs in switchless mode this queues a
  /// descriptor in the shared ring instead of paying an EEXIT/ERESUME
  /// pair; deferred requests execute in submission order before any other
  /// host-visible work, so application behaviour is identical either way.
  /// The default (and the fallback) is a full synchronous ocall. A
  /// non-empty handler result is a reported failure: it surfaces as a
  /// typed OcallError (counted in sgx.ocall.async_errors) instead of
  /// being silently swallowed.
  virtual void ocall_async(uint32_t code, crypto::BytesView payload);

  /// Move form of ocall_async: under switchless mode the buffer itself
  /// becomes the ring slot (the zero-copy record path seals straight into
  /// it), skipping the slot copy. Identical observable behaviour.
  virtual void ocall_async(uint32_t code, crypto::Bytes&& payload) {
    ocall_async(code, crypto::BytesView(payload));
  }

  /// EREPORT: produce a Report destined for `target` on this platform.
  virtual Report ereport(const Measurement& target,
                         const ReportData& data) = 0;

  /// EGETKEY(REPORT_KEY): this enclave's own report key, for verifying
  /// reports targeted at it.
  virtual crypto::Bytes report_key() = 0;

  /// EGETKEY(SEAL_KEY): sealing key bound to (platform, MRENCLAVE, label).
  virtual crypto::Bytes seal_key(crypto::BytesView label) = 0;

  /// Full local quoting flow (Figure 1 messages 2-4): EREPORT targeted at
  /// the quoting enclave, hand-off through the host, verification and
  /// signing inside the QE. Costs land on the respective enclaves' models.
  virtual Quote get_quote(const ReportData& data) = 0;

  /// In-enclave entropy (RDRAND-equivalent; unobservable by the host).
  virtual crypto::Drbg& rng() = 0;

  /// Trusted heap growth (EAUG/EACCEPT): call when allocating `bytes` of
  /// new in-enclave state. Charges page operations and the context switch
  /// the OS-assisted EAUG path incurs; this is the "dynamic memory
  /// allocation" overhead Table 4 attributes the routing slowdown to.
  virtual void heap_alloc(size_t bytes) = 0;

  /// This enclave's identity.
  virtual const Measurement& self_measurement() const = 0;
  virtual const SignerId& self_signer() const = 0;
  virtual EnclaveId self_id() const = 0;

  virtual CostModel& cost() = 0;
  virtual Platform& platform() = 0;
};

/// Interface implemented by trusted application code.
class EnclaveApp {
 public:
  virtual ~EnclaveApp() = default;

  /// Handles one ecall. `fn` selects the entry point; apps define their
  /// own function numbering. Throw to model an enclave-internal abort.
  virtual crypto::Bytes handle_call(uint32_t fn, crypto::BytesView arg,
                                    EnclaveEnv& env) = 0;
};

/// Handles ocalls on the untrusted side.
using OcallHandler =
    std::function<crypto::Bytes(uint32_t code, crypto::BytesView payload)>;

class Enclave {
 public:
  /// Built via Platform::launch() only.
  Enclave(Platform& platform, EnclaveId id, const SigStruct& sigstruct,
          const EnclaveImage& image);
  ~Enclave();

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  /// Synchronous call into the enclave. Charges EENTER/EEXIT and boundary
  /// copies; verifies EPC page integrity on entry (MEE semantics — not
  /// charged). Throws HardwareFault if the enclave is dead or its pages
  /// were tampered with.
  crypto::Bytes ecall(uint32_t fn, crypto::BytesView arg);

  /// Installs the untrusted ocall handler (network I/O etc.).
  void set_ocall_handler(OcallHandler handler) { ocall_ = std::move(handler); }

  /// Opts this enclave into switchless transitions (DESIGN.md §10):
  /// subsequent ecalls and async ocalls are served through bounded
  /// shared-memory rings whenever the polling workers are awake, falling
  /// back to real transitions when a ring is full or its worker parked.
  /// Off by default; scenarios enable it per enclave.
  void enable_switchless(const SwitchlessConfig& config = {});
  [[nodiscard]] bool switchless_enabled() const {
    return ocall_ring_ != nullptr;
  }
  [[nodiscard]] const SwitchlessRing* ocall_ring() const {
    return ocall_ring_.get();
  }
  [[nodiscard]] const SwitchlessRing* ecall_ring() const {
    return ecall_ring_.get();
  }

  /// Executes every deferred switchless request in submission order on the
  /// untrusted side. Called internally wherever the host demonstrably runs
  /// (sync ocall, ecall return, quote hand-off); public so tests can force
  /// a drain.
  void flush_switchless();

  [[nodiscard]] EnclaveId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Measurement& measurement() const { return measurement_; }
  [[nodiscard]] const SignerId& signer() const { return signer_; }
  [[nodiscard]] uint32_t product_id() const { return product_id_; }
  [[nodiscard]] uint32_t security_version() const { return security_version_; }
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] Platform& platform() { return platform_; }

  /// Per-enclave instruction accounting (Table 1 reports target/quoting/
  /// challenger enclaves separately).
  [[nodiscard]] CostModel& cost() { return cost_; }
  [[nodiscard]] const CostModel& cost() const { return cost_; }

  /// EREMOVE: tear down (models the OS reclaiming EPC pages; a destroyed
  /// enclave faults on entry).
  void destroy();

 private:
  friend class EnvImpl;

  Platform& platform_;
  EnclaveId id_;
  std::string name_;
  Measurement measurement_;
  SignerId signer_;
  uint32_t product_id_;
  uint32_t security_version_;
  size_t image_pages_;
  size_t heap_bytes_ = 0;
  size_t heap_pages_ = 0;
  bool alive_ = true;
  bool in_call_ = false;
  CostModel cost_;
  crypto::Drbg rng_;
  std::unique_ptr<EnclaveApp> app_;
  OcallHandler ocall_;
  std::unique_ptr<SwitchlessRing> ocall_ring_;
  std::unique_ptr<SwitchlessRing> ecall_ring_;
};

}  // namespace tenet::sgx
