#include "sgx/report.h"

namespace tenet::sgx {

crypto::Bytes Report::mac_body() const {
  crypto::Bytes body;
  crypto::append(body, crypto::to_bytes("REPORT"));
  crypto::append(body, crypto::BytesView(mr_enclave.data(), mr_enclave.size()));
  crypto::append(body, crypto::BytesView(mr_signer.data(), mr_signer.size()));
  crypto::append(body, crypto::BytesView(target.data(), target.size()));
  crypto::append_u32(body, product_id);
  crypto::append_u32(body, security_version);
  crypto::append_u64(body, platform);
  crypto::append(body, crypto::BytesView(report_data.data(), report_data.size()));
  return body;
}

void Report::authenticate(crypto::BytesView report_key) {
  mac = crypto::hmac_sha256(report_key, mac_body());
}

bool Report::verify(crypto::BytesView report_key) const {
  const crypto::Digest expected = crypto::hmac_sha256(report_key, mac_body());
  return crypto::ct_equal(crypto::BytesView(expected.data(), expected.size()),
                          crypto::BytesView(mac.data(), mac.size()));
}

crypto::Bytes Report::serialize() const {
  crypto::Bytes out;
  crypto::append(out, crypto::BytesView(mr_enclave.data(), mr_enclave.size()));
  crypto::append(out, crypto::BytesView(mr_signer.data(), mr_signer.size()));
  crypto::append(out, crypto::BytesView(target.data(), target.size()));
  crypto::append_u32(out, product_id);
  crypto::append_u32(out, security_version);
  crypto::append_u64(out, platform);
  crypto::append(out, crypto::BytesView(report_data.data(), report_data.size()));
  crypto::append(out, crypto::BytesView(mac.data(), mac.size()));
  return out;
}

Report Report::deserialize(crypto::BytesView wire) {
  crypto::Reader r(wire);
  Report rep;
  auto take_into = [&r](auto& arr) {
    const crypto::Bytes b = r.take(arr.size());
    std::copy(b.begin(), b.end(), arr.begin());
  };
  take_into(rep.mr_enclave);
  take_into(rep.mr_signer);
  take_into(rep.target);
  rep.product_id = r.u32();
  rep.security_version = r.u32();
  rep.platform = r.u64();
  take_into(rep.report_data);
  take_into(rep.mac);
  return rep;
}

}  // namespace tenet::sgx
