#include "sgx/enclave.h"

#include "crypto/hmac.h"
#include "sgx/platform.h"
#include "telemetry/trace.h"

namespace tenet::sgx {

namespace {
constexpr uint64_t kHeapBaseVaddr = uint64_t{1} << 20;  // page index, above image
}

/// EnclaveEnv implementation bound to one in-flight ecall.
class EnvImpl final : public EnclaveEnv {
 public:
  explicit EnvImpl(Enclave& enclave) : e_(enclave) {}

  crypto::Bytes ocall(uint32_t code, crypto::BytesView payload) override {
    TENET_SPAN("sgx", "ocall");
    TENET_COUNT("sgx.ocall");
    TENET_COUNT("sgx.eexit");
    TENET_COUNT("sgx.boundary_bytes", payload.size());
    CostModel& c = e_.cost_;
    c.charge_user(UserInstr::kEExit);
    c.charge_context_switch();
    c.charge_boundary_bytes(payload.size());

    crypto::Bytes result;
    {
      // Untrusted side: crypto work (if any) belongs to the host model.
      Platform& p = e_.platform_;
      p.host_cost().charge_ocall_dispatch();
      crypto::work::Scope host_scope(&p.host_cost().work());
      if (!e_.ocall_) {
        throw HardwareFault("ocall with no untrusted handler installed");
      }
      result = e_.ocall_(code, payload);
    }

    TENET_COUNT("sgx.eresume");
    TENET_COUNT("sgx.boundary_bytes", result.size());
    c.charge_user(UserInstr::kEResume);
    c.charge_context_switch();
    c.charge_boundary_bytes(result.size());
    return result;
  }

  Report ereport(const Measurement& target, const ReportData& data) override {
    TENET_COUNT("sgx.ereport");
    e_.cost_.charge_user(UserInstr::kEReport);
    // The MAC below is computed by the EREPORT microcode, not software:
    // keep it out of the work meter.
    crypto::work::Scope hw(nullptr);
    Report r;
    r.mr_enclave = e_.measurement_;
    r.mr_signer = e_.signer_;
    r.target = target;
    r.product_id = e_.product_id_;
    r.security_version = e_.security_version_;
    r.platform = e_.platform_.id();
    r.report_data = data;
    r.authenticate(e_.platform_.derive_report_key(target));
    return r;
  }

  crypto::Bytes report_key() override {
    TENET_COUNT("sgx.egetkey");
    e_.cost_.charge_user(UserInstr::kEGetKey);
    crypto::work::Scope hw(nullptr);
    return e_.platform_.derive_report_key(e_.measurement_);
  }

  crypto::Bytes seal_key(crypto::BytesView label) override {
    TENET_COUNT("sgx.egetkey");
    e_.cost_.charge_user(UserInstr::kEGetKey);
    crypto::work::Scope hw(nullptr);
    return e_.platform_.derive_seal_key(e_.measurement_, label);
  }

  Quote get_quote(const ReportData& data) override {
    TENET_SPAN("sgx", "get_quote");
    // Figure 1, messages 2-4: EREPORT targeted at the QE, hand the report
    // to the host (EEXIT), host calls into the QE, result returns through
    // ERESUME. quote_via_qe() charges the QE's own model for its half.
    const Report report = ereport(Platform::quoting_enclave_measurement(), data);

    CostModel& c = e_.cost_;
    TENET_COUNT("sgx.eexit");
    TENET_COUNT("sgx.boundary_bytes", report.serialize().size());
    c.charge_user(UserInstr::kEExit);
    c.charge_context_switch();
    c.charge_boundary_bytes(report.serialize().size());

    auto quote = e_.platform_.quote_via_qe(report);

    TENET_COUNT("sgx.eresume");
    c.charge_user(UserInstr::kEResume);
    c.charge_context_switch();
    if (!quote.has_value()) {
      throw HardwareFault("quoting enclave rejected report");
    }
    TENET_COUNT("sgx.boundary_bytes", quote->serialize().size());
    c.charge_boundary_bytes(quote->serialize().size());
    return *quote;
  }

  crypto::Drbg& rng() override { return e_.rng_; }

  void heap_alloc(size_t bytes) override {
    TENET_HISTOGRAM("sgx.heap_alloc_bytes", bytes);
    e_.heap_bytes_ += bytes;
    const size_t needed =
        (e_.heap_bytes_ + kPageSize - 1) / kPageSize;
    while (e_.heap_pages_ < needed) {
      TENET_COUNT("sgx.eaug");
      CostModel& c = e_.cost_;
      // SGX1 semantics (what OpenSGX emulates, and what the paper ran on):
      // heap pages were added at launch, so growing live state costs no
      // SGX instructions — it is all software allocator work inside the
      // enclave. This is the "dynamic memory allocation" overhead Table 4
      // names. (The privileged EAUG charge keeps the EPC book-keeping
      // honest; it is excluded from steady-state tables like all launch-
      // class operations.)
      c.charge_priv(PrivInstr::kEAug);
      c.charge_page_zero(1);
      e_.platform_.epc().add_page(e_.id_, kHeapBaseVaddr + e_.heap_pages_, {});
      ++e_.heap_pages_;
    }
  }

  const Measurement& self_measurement() const override {
    return e_.measurement_;
  }
  const SignerId& self_signer() const override { return e_.signer_; }
  EnclaveId self_id() const override { return e_.id_; }
  CostModel& cost() override { return e_.cost_; }
  Platform& platform() override { return e_.platform_; }

 private:
  Enclave& e_;
};

Enclave::Enclave(Platform& platform, EnclaveId id, const SigStruct& sigstruct,
                 const EnclaveImage& image)
    : platform_(platform),
      id_(id),
      name_(image.name),
      measurement_(image.measure()),
      signer_(sigstruct.mr_signer()),
      product_id_(sigstruct.product_id),
      security_version_(sigstruct.security_version),
      image_pages_(image.page_count()),
      rng_(crypto::Drbg::from_label(platform.id() * 1'000'000 + id,
                                    "tenet.enclave.rdrand")) {
  // Launch is a one-time cost the paper excludes from its steady-state
  // tables ("we exclude the cost launching an SGX application"); keep its
  // crypto (measurement hashing, sigstruct verification) out of whatever
  // work meter the caller has installed. Launch page operations are still
  // visible through the privileged-instruction counter.
  crypto::work::Scope launch_scope(nullptr);
  TENET_SPAN("sgx", "enclave_launch");
  TENET_COUNT("sgx.enclave_launches");
  TENET_COUNT("sgx.eadd_pages", image_pages_);

  // EINIT preconditions: vendor signature verifies and covers exactly this
  // image's measurement.
  if (!Vendor::verify(sigstruct)) {
    throw HardwareFault("EINIT: sigstruct signature invalid");
  }
  if (sigstruct.mr_enclave != measurement_) {
    throw HardwareFault("EINIT: sigstruct does not match measurement");
  }

  // ECREATE + (EADD + 16x EEXTEND) per page + EINIT.
  cost_.charge_priv(PrivInstr::kECreate);
  crypto::Bytes padded = image.code;
  padded.resize(image_pages_ * kPageSize, 0);
  for (size_t page = 0; page < image_pages_; ++page) {
    cost_.charge_priv(PrivInstr::kEAdd);
    cost_.charge_priv(PrivInstr::kEExtend, kPageSize / kMeasureChunk);
    platform_.epc().add_page(
        id_, page,
        crypto::BytesView(padded.data() + page * kPageSize, kPageSize));
  }
  cost_.charge_priv(PrivInstr::kEInit);

  app_ = image.factory();
  if (!app_) throw HardwareFault("EINIT: image has no app factory");
}

Enclave::~Enclave() {
  if (alive_) platform_.epc().remove_enclave(id_);
}

crypto::Bytes Enclave::ecall(uint32_t fn, crypto::BytesView arg) {
  if (!alive_) throw HardwareFault("EENTER: enclave has been removed");
  if (in_call_) throw HardwareFault("EENTER: TCS already in use");
  TENET_SPAN("sgx", "ecall");
  // MEE integrity semantics: tampered EPC pages fault on next access.
  platform_.epc().verify_owner_pages(id_);

  TENET_COUNT("sgx.eenter");
  TENET_COUNT("sgx.boundary_bytes", arg.size());
  TENET_HISTOGRAM("sgx.ecall_arg_bytes", arg.size());
  cost_.charge_user(UserInstr::kEEnter);
  cost_.charge_boundary_bytes(arg.size());

  in_call_ = true;
  EnvImpl env(*this);
  crypto::Bytes result;
  {
    CostScope scope(cost_);
    try {
      result = app_->handle_call(fn, arg, env);
    } catch (...) {
      in_call_ = false;
      // Asynchronous exit on fault.
      TENET_COUNT("sgx.aex");
      TENET_COUNT("sgx.eexit");
      cost_.charge_user(UserInstr::kEExit);
      cost_.charge_context_switch();
      throw;
    }
  }
  in_call_ = false;

  TENET_COUNT("sgx.eexit");
  TENET_COUNT("sgx.boundary_bytes", result.size());
  cost_.charge_user(UserInstr::kEExit);
  cost_.charge_boundary_bytes(result.size());
  return result;
}

void Enclave::destroy() {
  if (!alive_) return;
  TENET_COUNT("sgx.enclave_destroys");
  cost_.charge_priv(PrivInstr::kERemove,
                    image_pages_ + heap_pages_);
  platform_.epc().remove_enclave(id_);
  alive_ = false;
}

}  // namespace tenet::sgx
