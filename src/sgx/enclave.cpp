#include "sgx/enclave.h"

#include <cstdio>

#include "crypto/hmac.h"
#include "sgx/platform.h"
#include "sgx/taint.h"
#include "telemetry/trace.h"

namespace tenet::sgx {

namespace {
constexpr uint64_t kHeapBaseVaddr = uint64_t{1} << 20;  // page index, above image

/// Async ocall handlers return empty by convention; a non-empty result is
/// the untrusted side reporting a failure. Surface it as a typed fault
/// (and count it) instead of dropping it — the silent-swallow fallback was
/// itself a boundary-misuse bug.
void check_async_result(uint32_t code, const crypto::Bytes& result) {
  if (result.empty()) return;
  TENET_COUNT("sgx.ocall.async_errors");
  char codebuf[16];
  std::snprintf(codebuf, sizeof codebuf, "0x%x", code);
  throw OcallError(code, std::string("async ocall ") + codebuf +
                             " handler reported: " +
                             std::string(result.begin(), result.end()));
}
}

// Default for EnclaveEnv subclasses without a switchless fast path (test
// fakes, harnesses): a full synchronous ocall whose result is checked
// under the same non-empty-is-error convention as the real runtime.
void EnclaveEnv::ocall_async(uint32_t code, crypto::BytesView payload) {
  check_async_result(code, ocall(code, payload));
}

/// EnclaveEnv implementation bound to one in-flight ecall.
class EnvImpl final : public EnclaveEnv {
 public:
  explicit EnvImpl(Enclave& enclave) : e_(enclave) {}

  crypto::Bytes ocall(uint32_t code, crypto::BytesView payload) override {
    TENET_SPAN("sgx", "ocall");
    TENET_COUNT("sgx.ocall");
    SwitchlessRing* ring = e_.ocall_ring_.get();
    if (ring != nullptr) {
      const SwitchlessOutcome outcome = ring->begin_call();
      if (outcome == SwitchlessOutcome::kHit) {
        // Ring round trip: descriptor write out, spin until the worker
        // fills the response slot. Payload and result still cross the
        // boundary as byte copies; no SGX instructions execute.
        TENET_COUNT("sgx.boundary_bytes", payload.size());
        CostModel& c = e_.cost_;
        c.charge_ring_slot_write();
        c.charge_boundary_bytes(payload.size());
        c.note_switchless_hit();

        crypto::Bytes result = host_execute(code, payload);

        c.charge_switchless_poll();
        TENET_COUNT("sgx.boundary_bytes", result.size());
        c.charge_boundary_bytes(result.size());
        return result;
      }
      e_.cost_.note_switchless_fallback();
      if (outcome == SwitchlessOutcome::kFallbackAsleep) {
        // The synchronous fallback doubles as the kick that unparks the
        // worker; the futex-style wakeup runs on the untrusted side.
        e_.platform_.host_cost().charge_worker_wakeup();
      }
    }
    return sync_ocall(code, payload);
  }

  void ocall_async(uint32_t code, crypto::BytesView payload) override {
    TENET_COUNT("sgx.ocall");
    SwitchlessRing* ring = e_.ocall_ring_.get();
    if (ring != nullptr) {
      const SwitchlessOutcome outcome = ring->begin_call();
      if (outcome == SwitchlessOutcome::kHit) {
        // Deferred: the descriptor (and payload copy) sits in the ring
        // until the worker drains it — no response slot to poll.
        TENET_COUNT("sgx.boundary_bytes", payload.size());
        CostModel& c = e_.cost_;
        c.charge_ring_slot_write();
        c.charge_boundary_bytes(payload.size());
        c.note_switchless_hit();
        ring->push(code, payload);
        return;
      }
      e_.cost_.note_switchless_fallback();
      if (outcome == SwitchlessOutcome::kFallbackAsleep) {
        e_.platform_.host_cost().charge_worker_wakeup();
      }
      // A ring-full fallback drains the backlog too: the synchronous
      // transition proves the untrusted side is running (host_execute
      // flushes before dispatching).
    }
    check_async_result(code, sync_ocall(code, payload));
  }

  void ocall_async(uint32_t code, crypto::Bytes&& payload) override {
    TENET_COUNT("sgx.ocall");
    SwitchlessRing* ring = e_.ocall_ring_.get();
    if (ring != nullptr) {
      const SwitchlessOutcome outcome = ring->begin_call();
      if (outcome == SwitchlessOutcome::kHit) {
        // Same accounting as the copying form — the bytes still cross the
        // boundary; only the slot copy disappears.
        TENET_COUNT("sgx.boundary_bytes", payload.size());
        CostModel& c = e_.cost_;
        c.charge_ring_slot_write();
        c.charge_boundary_bytes(payload.size());
        c.note_switchless_hit();
        ring->push(code, std::move(payload));
        return;
      }
      e_.cost_.note_switchless_fallback();
      if (outcome == SwitchlessOutcome::kFallbackAsleep) {
        e_.platform_.host_cost().charge_worker_wakeup();
      }
    }
    check_async_result(code, sync_ocall(code, payload));
  }

  Report ereport(const Measurement& target, const ReportData& data) override {
    TENET_COUNT("sgx.ereport");
    e_.cost_.charge_user(UserInstr::kEReport);
    // The MAC below is computed by the EREPORT microcode, not software:
    // keep it out of the work meter.
    crypto::work::Scope hw(nullptr);
    Report r;
    r.mr_enclave = e_.measurement_;
    r.mr_signer = e_.signer_;
    r.target = target;
    r.product_id = e_.product_id_;
    r.security_version = e_.security_version_;
    r.platform = e_.platform_.id();
    r.report_data = data;
    r.authenticate(e_.platform_.derive_report_key(target));
    return r;
  }

  crypto::Bytes report_key() override {
    TENET_COUNT("sgx.egetkey");
    e_.cost_.charge_user(UserInstr::kEGetKey);
    crypto::work::Scope hw(nullptr);
    return e_.platform_.derive_report_key(e_.measurement_);
  }

  crypto::Bytes seal_key(crypto::BytesView label) override {
    TENET_COUNT("sgx.egetkey");
    e_.cost_.charge_user(UserInstr::kEGetKey);
    crypto::work::Scope hw(nullptr);
    return e_.platform_.derive_seal_key(e_.measurement_, label);
  }

  Quote get_quote(const ReportData& data) override {
    TENET_SPAN("sgx", "get_quote");
    // Figure 1, messages 2-4: EREPORT targeted at the QE, hand the report
    // to the host (EEXIT), host calls into the QE, result returns through
    // ERESUME. quote_via_qe() charges the QE's own model for its half.
    const Report report = ereport(Platform::quoting_enclave_measurement(), data);

    CostModel& c = e_.cost_;
    TENET_COUNT("sgx.eexit");
    TENET_COUNT("sgx.boundary_bytes", report.serialize().size());
    c.charge_user(UserInstr::kEExit);
    c.charge_context_switch();
    c.charge_boundary_bytes(report.serialize().size());

    // The host runs the QE hand-off: deferred switchless requests drain
    // before it, as they would before any synchronous transition.
    e_.flush_switchless();
    auto quote = e_.platform_.quote_via_qe(report);

    TENET_COUNT("sgx.eresume");
    c.charge_user(UserInstr::kEResume);
    c.charge_context_switch();
    if (e_.ocall_ring_) e_.ocall_ring_->note_sync_transition();
    if (!quote.has_value()) {
      throw HardwareFault("quoting enclave rejected report");
    }
    TENET_COUNT("sgx.boundary_bytes", quote->serialize().size());
    c.charge_boundary_bytes(quote->serialize().size());
    return *quote;
  }

  crypto::Drbg& rng() override { return e_.rng_; }

  void heap_alloc(size_t bytes) override {
    TENET_HISTOGRAM("sgx.heap_alloc_bytes", bytes);
    e_.heap_bytes_ += bytes;
    const size_t needed =
        (e_.heap_bytes_ + kPageSize - 1) / kPageSize;
    while (e_.heap_pages_ < needed) {
      TENET_COUNT("sgx.eaug");
      CostModel& c = e_.cost_;
      // SGX1 semantics (what OpenSGX emulates, and what the paper ran on):
      // heap pages were added at launch, so growing live state costs no
      // SGX instructions — it is all software allocator work inside the
      // enclave. This is the "dynamic memory allocation" overhead Table 4
      // names. (The privileged EAUG charge keeps the EPC book-keeping
      // honest; it is excluded from steady-state tables like all launch-
      // class operations.)
      c.charge_priv(PrivInstr::kEAug);
      c.charge_page_zero(1);
      e_.platform_.epc().add_page(e_.id_, kHeapBaseVaddr + e_.heap_pages_, {});
      ++e_.heap_pages_;
    }
  }

  const Measurement& self_measurement() const override {
    return e_.measurement_;
  }
  const SignerId& self_signer() const override { return e_.signer_; }
  EnclaveId self_id() const override { return e_.id_; }
  CostModel& cost() override { return e_.cost_; }
  Platform& platform() override { return e_.platform_; }

 private:
  /// Untrusted-side handler dispatch shared by the synchronous path and
  /// the switchless hit path. Drains the deferred backlog first so
  /// host-visible effects keep the order a synchronous run would produce.
  crypto::Bytes host_execute(uint32_t code, crypto::BytesView payload) {
    e_.flush_switchless();
    Platform& p = e_.platform_;
    p.host_cost().charge_ocall_dispatch();
    // Untrusted side: crypto work (if any) belongs to the host model.
    crypto::work::Scope host_scope(&p.host_cost().work());
    if (!e_.ocall_) {
      throw HardwareFault("ocall with no untrusted handler installed");
    }
    taint::note_ocall(code, payload);
    return e_.ocall_(code, payload);
  }

  /// The full EEXIT/ERESUME transition — the only ocall path when
  /// switchless mode is off, and the fallback when it is on.
  crypto::Bytes sync_ocall(uint32_t code, crypto::BytesView payload) {
    TENET_COUNT("sgx.eexit");
    TENET_COUNT("sgx.boundary_bytes", payload.size());
    CostModel& c = e_.cost_;
    c.charge_user(UserInstr::kEExit);
    c.charge_context_switch();
    c.charge_boundary_bytes(payload.size());

    crypto::Bytes result = host_execute(code, payload);

    TENET_COUNT("sgx.eresume");
    TENET_COUNT("sgx.boundary_bytes", result.size());
    c.charge_user(UserInstr::kEResume);
    c.charge_context_switch();
    c.charge_boundary_bytes(result.size());
    // One boundary crossing elapsed: tick the switchless idle clock.
    if (e_.ocall_ring_) e_.ocall_ring_->note_sync_transition();
    return result;
  }

  Enclave& e_;
};

Enclave::Enclave(Platform& platform, EnclaveId id, const SigStruct& sigstruct,
                 const EnclaveImage& image)
    : platform_(platform),
      id_(id),
      name_(image.name),
      measurement_(image.measure()),
      signer_(sigstruct.mr_signer()),
      product_id_(sigstruct.product_id),
      security_version_(sigstruct.security_version),
      image_pages_(image.page_count()),
      rng_(crypto::Drbg::from_label(platform.id() * 1'000'000 + id,
                                    "tenet.enclave.rdrand")) {
  // Launch is a one-time cost the paper excludes from its steady-state
  // tables ("we exclude the cost launching an SGX application"); keep its
  // crypto (measurement hashing, sigstruct verification) out of whatever
  // work meter the caller has installed. Launch page operations are still
  // visible through the privileged-instruction counter.
  crypto::work::Scope launch_scope(nullptr);
  TENET_SPAN("sgx", "enclave_launch");
  TENET_COUNT("sgx.enclave_launches");
  TENET_COUNT("sgx.eadd_pages", image_pages_);

  // EINIT preconditions: vendor signature verifies and covers exactly this
  // image's measurement.
  if (!Vendor::verify(sigstruct)) {
    throw HardwareFault("EINIT: sigstruct signature invalid");
  }
  if (sigstruct.mr_enclave != measurement_) {
    throw HardwareFault("EINIT: sigstruct does not match measurement");
  }

  // ECREATE + (EADD + 16x EEXTEND) per page + EINIT.
  cost_.charge_priv(PrivInstr::kECreate);
  crypto::Bytes padded = image.code;
  padded.resize(image_pages_ * kPageSize, 0);
  for (size_t page = 0; page < image_pages_; ++page) {
    cost_.charge_priv(PrivInstr::kEAdd);
    cost_.charge_priv(PrivInstr::kEExtend, kPageSize / kMeasureChunk);
    platform_.epc().add_page(
        id_, page,
        crypto::BytesView(padded.data() + page * kPageSize, kPageSize));
  }
  cost_.charge_priv(PrivInstr::kEInit);

  app_ = image.factory();
  if (!app_) throw HardwareFault("EINIT: image has no app factory");
}

Enclave::~Enclave() {
  if (alive_) platform_.epc().remove_enclave(id_);
}

crypto::Bytes Enclave::ecall(uint32_t fn, crypto::BytesView arg) {
  if (!alive_) throw HardwareFault("EENTER: enclave has been removed");
  if (in_call_) throw HardwareFault("EENTER: TCS already in use");
  TENET_SPAN("sgx", "ecall");
  // MEE integrity semantics: tampered EPC pages fault on next access.
  // (Identical in both transition modes — a switchless ecall still runs
  // on EPC pages, so tampering faults exactly as a synchronous one would.)
  platform_.epc().verify_owner_pages(id_);

  bool switchless = false;
  if (ecall_ring_) {
    const SwitchlessOutcome outcome = ecall_ring_->begin_call();
    if (outcome == SwitchlessOutcome::kHit) {
      switchless = true;
    } else {
      cost_.note_switchless_fallback();
      if (outcome == SwitchlessOutcome::kFallbackAsleep) {
        platform_.host_cost().charge_worker_wakeup();
      }
    }
  }

  TENET_COUNT("sgx.boundary_bytes", arg.size());
  TENET_HISTOGRAM("sgx.ecall_arg_bytes", arg.size());
  if (switchless) {
    // The untrusted caller writes the request descriptor and polls for
    // the result slot; the in-enclave worker pays the mirror-image cost.
    // No EENTER executes.
    platform_.host_cost().charge_ring_slot_write();
    platform_.host_cost().charge_switchless_poll();
    cost_.charge_ring_slot_write();
    cost_.charge_switchless_poll();
    cost_.charge_boundary_bytes(arg.size());
    cost_.note_switchless_hit();
  } else {
    TENET_COUNT("sgx.eenter");
    cost_.charge_user(UserInstr::kEEnter);
    cost_.charge_boundary_bytes(arg.size());
  }

  in_call_ = true;
  EnvImpl env(*this);
  crypto::Bytes result;
  {
    CostScope scope(cost_);
    try {
      result = app_->handle_call(fn, arg, env);
    } catch (...) {
      in_call_ = false;
      // Deferred effects still happen-before the fault becomes visible
      // to the host.
      flush_switchless();
      // Asynchronous exit on fault: an in-enclave exception always
      // leaves through AEX, however the call was submitted.
      TENET_COUNT("sgx.aex");
      TENET_COUNT("sgx.eexit");
      cost_.charge_user(UserInstr::kEExit);
      cost_.charge_context_switch();
      throw;
    }
  }
  in_call_ = false;

  // The untrusted side regains control as soon as the result is
  // observable: the deferred backlog drains now, preserving the order a
  // synchronous run would produce.
  flush_switchless();

  TENET_COUNT("sgx.boundary_bytes", result.size());
  if (switchless) {
    cost_.charge_ring_slot_write();
    cost_.charge_boundary_bytes(result.size());
  } else {
    TENET_COUNT("sgx.eexit");
    cost_.charge_user(UserInstr::kEExit);
    cost_.charge_boundary_bytes(result.size());
    // One boundary crossing elapsed in this enclave's domain: tick both
    // rings' deterministic idle clocks.
    if (ecall_ring_) ecall_ring_->note_sync_transition();
    if (ocall_ring_) ocall_ring_->note_sync_transition();
  }
  return result;
}

void Enclave::enable_switchless(const SwitchlessConfig& config) {
  ocall_ring_ = std::make_unique<SwitchlessRing>(
      config, "sgx.switchless.ocall_ring_occupancy");
  ecall_ring_ = std::make_unique<SwitchlessRing>(
      config, "sgx.switchless.ecall_ring_occupancy");
}

void Enclave::flush_switchless() {
  if (!ocall_ring_) return;
  ocall_ring_->drain([&](uint32_t code, const crypto::Bytes& payload) {
    // The polling worker runs on the untrusted side: dispatch cost and
    // any crypto work in the handler belong to the host model.
    platform_.host_cost().charge_ocall_dispatch();
    crypto::work::Scope host_scope(&platform_.host_cost().work());
    if (!ocall_) {
      throw HardwareFault("ocall with no untrusted handler installed");
    }
    // Same convention as the fallback path: a deferred async ocall whose
    // handler reports an error must fault identically switchless on/off.
    taint::note_ocall(code, payload);
    check_async_result(code, ocall_(code, payload));
  });
}

void Enclave::destroy() {
  if (!alive_) return;
  TENET_COUNT("sgx.enclave_destroys");
  cost_.charge_priv(PrivInstr::kERemove,
                    image_pages_ + heap_pages_);
  platform_.epc().remove_enclave(id_);
  alive_ = false;
}

}  // namespace tenet::sgx
