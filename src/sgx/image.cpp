#include "sgx/image.h"

#include "crypto/hmac.h"

namespace tenet::sgx {

EnclaveImage EnclaveImage::from_source(std::string name,
                                       std::string_view source,
                                       AppFactory factory) {
  return EnclaveImage{std::move(name), crypto::to_bytes(source),
                      std::move(factory)};
}

Measurement EnclaveImage::measure() const {
  crypto::Sha256 h;
  crypto::Bytes padded = code;
  padded.resize(page_count() * kPageSize, 0);

  for (size_t page = 0; page < page_count(); ++page) {
    // EADD record: operation tag + page offset + attributes.
    crypto::Bytes eadd;
    crypto::append(eadd, crypto::to_bytes("EADD"));
    crypto::append_u64(eadd, page * kPageSize);
    h.update(eadd);
    // EEXTEND records: 256-byte chunks of page content.
    for (size_t off = 0; off < kPageSize; off += kMeasureChunk) {
      crypto::Bytes eext;
      crypto::append(eext, crypto::to_bytes("EEXTEND"));
      crypto::append_u64(eext, page * kPageSize + off);
      h.update(eext);
      h.update(crypto::BytesView(padded.data() + page * kPageSize + off,
                                 kMeasureChunk));
    }
  }
  return h.finish();
}

crypto::Bytes SigStruct::signed_body() const {
  crypto::Bytes body;
  crypto::append(body, crypto::to_bytes("SIGSTRUCT"));
  crypto::append(body, crypto::BytesView(mr_enclave.data(), mr_enclave.size()));
  crypto::append_lv(body, crypto::to_bytes(vendor_name));
  crypto::append_u32(body, product_id);
  crypto::append_u32(body, security_version);
  return body;
}

SignerId SigStruct::mr_signer() const {
  return crypto::Sha256::hash(vendor_public_key);
}

crypto::Bytes SigStruct::serialize() const {
  crypto::Bytes out;
  crypto::append(out, crypto::BytesView(mr_enclave.data(), mr_enclave.size()));
  crypto::append_lv(out, crypto::to_bytes(vendor_name));
  crypto::append_u32(out, product_id);
  crypto::append_u32(out, security_version);
  crypto::append_lv(out, vendor_public_key);
  crypto::append_lv(out, signature.serialize(crypto::DhGroup::oakley_group2()));
  return out;
}

SigStruct SigStruct::deserialize(crypto::BytesView wire) {
  crypto::Reader r(wire);
  SigStruct s;
  const crypto::Bytes m = r.take(32);
  std::copy(m.begin(), m.end(), s.mr_enclave.begin());
  s.vendor_name = crypto::to_string(r.lv());
  s.product_id = r.u32();
  s.security_version = r.u32();
  s.vendor_public_key = r.lv();
  s.signature = crypto::SchnorrSignature::deserialize(
      crypto::DhGroup::oakley_group2(), r.lv());
  return s;
}

Vendor::Vendor(std::string name)
    : name_(std::move(name)),
      key_(crypto::SchnorrKeyPair::derive(
          crypto::DhGroup::oakley_group2(),
          crypto::to_bytes("tenet.vendor." + name_))) {}

SignerId Vendor::signer_id() const {
  return crypto::Sha256::hash(key_.public_key().serialize());
}

SigStruct Vendor::sign(const EnclaveImage& image, uint32_t product_id,
                       uint32_t security_version) const {
  SigStruct s;
  s.mr_enclave = image.measure();
  s.vendor_name = name_;
  s.product_id = product_id;
  s.security_version = security_version;
  s.vendor_public_key = key_.public_key().serialize();
  s.signature = key_.sign_deterministic(s.signed_body());
  return s;
}

bool Vendor::verify(const SigStruct& s) {
  try {
    const auto pk = crypto::SchnorrPublicKey::deserialize(
        crypto::DhGroup::oakley_group2(), s.vendor_public_key);
    return pk.verify(s.signed_body(), s.signature);
  } catch (const std::invalid_argument&) {
    return false;
  }
}

}  // namespace tenet::sgx
