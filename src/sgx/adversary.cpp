#include "sgx/adversary.h"

namespace tenet::sgx::adversary {

EnclaveImage patch_image(const EnclaveImage& original,
                         std::string_view patch_note,
                         AppFactory evil_factory) {
  EnclaveImage patched = original;
  crypto::append(patched.code, crypto::to_bytes("\n# PATCH: "));
  crypto::append(patched.code, crypto::to_bytes(patch_note));
  if (evil_factory) patched.factory = std::move(evil_factory);
  return patched;
}

Quote forge_quote(const Measurement& claimed_measurement,
                  const Measurement& target, uint64_t claimed_platform,
                  const ReportData& report_data) {
  Quote q;
  q.report.mr_enclave = claimed_measurement;
  q.report.mr_signer = crypto::Sha256::hash(crypto::to_bytes("evil-signer"));
  q.report.target = target;
  q.report.platform = claimed_platform;
  q.report.report_data = report_data;
  q.report.authenticate(crypto::to_bytes("attacker-guessed-report-key-32B!"));
  q.platform = claimed_platform;
  // The attacker has no authority group credential; the best they can do
  // is sign with a key of their own.
  const auto key = crypto::SchnorrKeyPair::derive(
      crypto::DhGroup::oakley_group2(), crypto::to_bytes("attacker-key"));
  q.signature = key.sign_deterministic(q.signed_body());
  return q;
}

Quote splice_report_data(const Quote& original, const ReportData& fresh) {
  Quote q = original;
  q.report.report_data = fresh;
  return q;
}

}  // namespace tenet::sgx::adversary
