#include "sgx/adversary.h"

#include <algorithm>

namespace tenet::sgx::adversary {

EnclaveImage patch_image(const EnclaveImage& original,
                         std::string_view patch_note,
                         AppFactory evil_factory) {
  EnclaveImage patched = original;
  crypto::append(patched.code, crypto::to_bytes("\n# PATCH: "));
  crypto::append(patched.code, crypto::to_bytes(patch_note));
  if (evil_factory) patched.factory = std::move(evil_factory);
  return patched;
}

Quote forge_quote(const Measurement& claimed_measurement,
                  const Measurement& target, uint64_t claimed_platform,
                  const ReportData& report_data) {
  Quote q;
  q.report.mr_enclave = claimed_measurement;
  q.report.mr_signer = crypto::Sha256::hash(crypto::to_bytes("evil-signer"));
  q.report.target = target;
  q.report.platform = claimed_platform;
  q.report.report_data = report_data;
  q.report.authenticate(crypto::to_bytes("attacker-guessed-report-key-32B!"));
  q.platform = claimed_platform;
  // The attacker has no authority group credential; the best they can do
  // is sign with a key of their own.
  const auto key = crypto::SchnorrKeyPair::derive(
      crypto::DhGroup::oakley_group2(), crypto::to_bytes("attacker-key"));
  q.signature = key.sign_deterministic(q.signed_body());
  return q;
}

Quote splice_report_data(const Quote& original, const ReportData& fresh) {
  Quote q = original;
  q.report.report_data = fresh;
  return q;
}

crypto::Bytes bit_flip(crypto::BytesView data, size_t bit) {
  crypto::Bytes out(data.begin(), data.end());
  if (!out.empty()) {
    const size_t b = bit % (out.size() * 8);
    out[b / 8] ^= static_cast<uint8_t>(1u << (b % 8));
  }
  return out;
}

crypto::Bytes truncate(crypto::BytesView data, size_t len) {
  if (len > data.size()) len = data.size();
  return {data.begin(), data.begin() + static_cast<ptrdiff_t>(len)};
}

crypto::Bytes extend(crypto::BytesView data, size_t extra, uint8_t fill) {
  crypto::Bytes out(data.begin(), data.end());
  out.resize(out.size() + extra, fill);
  return out;
}

namespace {

std::string to_hex(crypto::BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

/// Naive substring search — payloads are small and this runs only in
/// red-team harnesses, never on a production path.
size_t find_in(crypto::BytesView hay, crypto::BytesView needle) {
  if (needle.empty() || hay.size() < needle.size()) {
    return static_cast<size_t>(-1);
  }
  for (size_t i = 0; i + needle.size() <= hay.size(); ++i) {
    if (std::equal(needle.begin(), needle.end(), hay.begin() + i)) return i;
  }
  return static_cast<size_t>(-1);
}

}  // namespace

void OcallSnoop::track(std::string_view name, crypto::BytesView secret) {
  if (secret.size() < 8) return;  // too short to match meaningfully
  Needle n;
  n.name = std::string(name);
  n.raw.assign(secret.begin(), secret.end());
  n.hex = to_hex(secret);
  needles_.push_back(std::move(n));
}

size_t OcallSnoop::scan(uint32_t code, crypto::BytesView payload) {
  ++observed_;
  size_t found = 0;
  for (const Needle& n : needles_) {
    const size_t raw_at = find_in(payload, n.raw);
    if (raw_at != static_cast<size_t>(-1)) {
      hits_.push_back(Hit{n.name, code, raw_at, /*hex=*/false});
      ++found;
    }
    const size_t hex_at = find_in(
        payload, crypto::BytesView(
                     reinterpret_cast<const uint8_t*>(n.hex.data()),
                     n.hex.size()));
    if (hex_at != static_cast<size_t>(-1)) {
      hits_.push_back(Hit{n.name, code, hex_at, /*hex=*/true});
      ++found;
    }
  }
  return found;
}

size_t OcallSnoop::scan_text(uint32_t pseudo_code, std::string_view text) {
  return scan(pseudo_code,
              crypto::BytesView(reinterpret_cast<const uint8_t*>(text.data()),
                                text.size()));
}

OcallHandler OcallSnoop::wrap(OcallHandler inner) {
  return [this, inner = std::move(inner)](
             uint32_t code, crypto::BytesView payload) -> crypto::Bytes {
    scan(code, payload);
    return inner ? inner(code, payload) : crypto::Bytes{};
  };
}

size_t SealedBlobVault::store(const std::string& slot,
                              crypto::BytesView sealed) {
  auto& versions = history_[slot];
  versions.emplace_back(sealed.begin(), sealed.end());
  return versions.size() - 1;
}

crypto::Bytes SealedBlobVault::latest(const std::string& slot) const {
  const auto it = history_.find(slot);
  if (it == history_.end() || it->second.empty()) return {};
  return it->second.back();
}

crypto::Bytes SealedBlobVault::replay(const std::string& slot,
                                      size_t index) const {
  const auto it = history_.find(slot);
  if (it == history_.end() || index >= it->second.size()) return {};
  return it->second[index];
}

size_t SealedBlobVault::versions(const std::string& slot) const {
  const auto it = history_.find(slot);
  return it == history_.end() ? 0 : it->second.size();
}

}  // namespace tenet::sgx::adversary
