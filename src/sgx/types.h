// Shared SGX emulator types.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.h"
#include "crypto/sha256.h"

namespace tenet::sgx {

/// MRENCLAVE — SHA-256 digest of enclave contents, built up by the
/// ECREATE/EADD/EEXTEND sequence exactly as §2.1 describes ("the hardware
/// measures the identity of the software inside the enclave").
using Measurement = crypto::Digest;

/// MRSIGNER — SHA-256 of the sealing authority's (vendor's) public key.
using SignerId = crypto::Digest;

/// 64-byte user data bound into a REPORT (carries the attestation
/// challenge/DH binding in Figure 1's protocol).
using ReportData = std::array<uint8_t, 64>;

/// Builds a ReportData from arbitrary bytes: first 32 bytes are the SHA-256
/// of the input, rest zero. (Real SGX software conventionally hashes the
/// payload into REPORTDATA the same way.)
inline ReportData make_report_data(crypto::BytesView payload) {
  ReportData rd{};
  const crypto::Digest d = crypto::Sha256::hash(payload);
  std::copy(d.begin(), d.end(), rd.begin());
  return rd;
}

constexpr size_t kPageSize = 4096;
constexpr size_t kMeasureChunk = 256;  // EEXTEND granularity

using EnclaveId = uint64_t;
using PlatformId = uint64_t;

/// Thrown when the emulated hardware detects a violation an attacker could
/// otherwise exploit (EPC integrity failure, bad sigstruct, access to a
/// dead enclave). Maps to the processor signaling a fault / refusing the
/// instruction on real hardware.
class HardwareFault : public std::runtime_error {
 public:
  explicit HardwareFault(const std::string& what) : std::runtime_error(what) {}
};

/// EPC exhaustion with nothing evictable: the add/reload cannot complete.
/// Still a HardwareFault (existing catch sites keep working), but typed so
/// capacity planning and recovery code can tell memory pressure apart from
/// integrity violations, and the message names the requesting enclave.
class EpcPressureError : public HardwareFault {
 public:
  EpcPressureError(EnclaveId requester, const std::string& what)
      : HardwareFault(what), requester_(requester) {}

  [[nodiscard]] EnclaveId requester() const { return requester_; }

 private:
  EnclaveId requester_;
};

/// An untrusted ocall handler reported a failure for a fire-and-forget
/// (async) ocall. By convention async handlers return an empty result;
/// anything else is an error report that must not be silently discarded
/// (the old fallback path dropped it on the floor — exactly the kind of
/// boundary misuse the red-team tooling exists to catch). Derives from
/// HardwareFault so existing catch sites treat it as a boundary fault.
class OcallError : public HardwareFault {
 public:
  OcallError(uint32_t code, const std::string& what)
      : HardwareFault(what), code_(code) {}

  /// The ocall code whose handler failed.
  [[nodiscard]] uint32_t code() const { return code_; }

 private:
  uint32_t code_;
};

}  // namespace tenet::sgx
