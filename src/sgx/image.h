// Enclave images and launch-time identity (SIGSTRUCT).
//
// An EnclaveImage stands for the built enclave binary: its `code` bytes
// are what ECREATE/EADD/EEXTEND measure, and its factory constructs the
// trusted in-memory behaviour once EINIT succeeds. §4's deterministic-
// build story maps directly: same source text => same code bytes => same
// measurement on every platform.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "crypto/bytes.h"
#include "crypto/schnorr.h"
#include "sgx/types.h"

namespace tenet::sgx {

class EnclaveApp;

/// Constructs the trusted application object for a freshly-initialized
/// enclave instance.
using AppFactory = std::function<std::unique_ptr<EnclaveApp>()>;

struct EnclaveImage {
  std::string name;     // human label only; NOT part of the measurement
  crypto::Bytes code;   // measured contents (code+data+initial stack)
  AppFactory factory;

  /// Convenience: an image whose code bytes are the program source text.
  /// Models a deterministic build (§4): identical source yields identical
  /// measurement everywhere.
  static EnclaveImage from_source(std::string name, std::string_view source,
                                  AppFactory factory);

  /// The MRENCLAVE this image will produce: SHA-256 accumulated the way
  /// the hardware does it — an EADD record per 4 KiB page followed by an
  /// EEXTEND record per 256-byte chunk.
  [[nodiscard]] Measurement measure() const;

  [[nodiscard]] size_t page_count() const {
    return (code.size() + kPageSize - 1) / kPageSize;
  }
};

/// SIGSTRUCT: the vendor's signed statement binding a measurement to a
/// product identity. EINIT refuses enclaves whose sigstruct does not
/// verify (§2.1 footnote 1: "the identity of the software is previously
/// signed by an authority that a user trusts").
struct SigStruct {
  Measurement mr_enclave{};
  std::string vendor_name;
  uint32_t product_id = 0;
  uint32_t security_version = 0;
  crypto::Bytes vendor_public_key;  // serialized Schnorr public key
  crypto::SchnorrSignature signature;

  [[nodiscard]] crypto::Bytes signed_body() const;
  [[nodiscard]] SignerId mr_signer() const;
  [[nodiscard]] crypto::Bytes serialize() const;
  static SigStruct deserialize(crypto::BytesView wire);
};

/// A software vendor (e.g. "the Tor foundation" in §3.2) that signs
/// enclave images. The key pair is deterministic per vendor name so that
/// independent test scenarios agree on MRSIGNER values.
class Vendor {
 public:
  explicit Vendor(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const crypto::SchnorrPublicKey& public_key() const {
    return key_.public_key();
  }
  [[nodiscard]] SignerId signer_id() const;

  [[nodiscard]] SigStruct sign(const EnclaveImage& image, uint32_t product_id,
                               uint32_t security_version = 1) const;

  /// Verifies a sigstruct chain: signature valid under the embedded key.
  /// (Whether the embedded key is *trusted* is the verifier's policy.)
  static bool verify(const SigStruct& s);

 private:
  std::string name_;
  crypto::SchnorrKeyPair key_;
};

}  // namespace tenet::sgx
