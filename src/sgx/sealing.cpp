#include "sgx/sealing.h"

#include "crypto/aead.h"

namespace tenet::sgx {

namespace {
// A random nonce per blob keeps seals of identical plaintext distinct;
// the sequence field is unused (no ordering between blobs).
constexpr uint64_t kSealSeq = 0;
}  // namespace

crypto::Bytes seal_data(EnclaveEnv& env, crypto::BytesView label,
                        crypto::BytesView plaintext) {
  const crypto::Bytes key = env.seal_key(label);
  const crypto::Aead aead(key);
  const uint64_t nonce = env.rng().next_u64();
  return aead.seal(nonce, kSealSeq, plaintext);
}

std::optional<crypto::Bytes> unseal_data(EnclaveEnv& env,
                                         crypto::BytesView label,
                                         crypto::BytesView sealed) {
  const crypto::Bytes key = env.seal_key(label);
  const crypto::Aead aead(key);
  return aead.open(sealed);
}

}  // namespace tenet::sgx
