// REPORT — the local-attestation evidence structure (§2.2).
//
// "Using the EREPORT instruction, [an enclave] creates a REPORT data
// structure that contains the hash value of the two enclaves (enclave
// identities), public key of the signer who signed the identity, some
// user data, and a message authentication code over the data structure.
// The MAC is produced with a report key, only known to the target enclave
// and the EREPORT instruction on the same machine."
#pragma once

#include "crypto/bytes.h"
#include "crypto/hmac.h"
#include "sgx/types.h"

namespace tenet::sgx {

struct Report {
  Measurement mr_enclave{};   // reporting enclave's identity
  SignerId mr_signer{};       // who signed the reporting enclave
  Measurement target{};       // enclave the report is destined for
  uint32_t product_id = 0;
  uint32_t security_version = 0;
  PlatformId platform = 0;    // key-derivation binding, not a secret
  ReportData report_data{};   // challenge/DH binding
  crypto::Digest mac{};       // HMAC(report key of `target`, body)

  [[nodiscard]] crypto::Bytes mac_body() const;
  /// Computes the MAC with the given report key (EREPORT half).
  void authenticate(crypto::BytesView report_key);
  /// Verifies the MAC with the given report key (EGETKEY half).
  [[nodiscard]] bool verify(crypto::BytesView report_key) const;

  [[nodiscard]] crypto::Bytes serialize() const;
  static Report deserialize(crypto::BytesView wire);
};

}  // namespace tenet::sgx
