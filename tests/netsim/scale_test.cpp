// Scheduler-equivalence and scale coverage for the internet-scale event
// engine (DESIGN.md §12).
//
//  * EngineParity / ScaleSweep: the same seeded chaos workload — tens of
//    thousands of mixed messages and timers with cancellations, loss,
//    duplication, reordering and jitter faults — runs through the new
//    calendar-queue engine and the preserved pre-rewrite engine
//    (netsim/reference_sim.h). Every delivery (timestamp, src, dst,
//    port, size), every timer fire, every cancel result, all statistics
//    and fault counters must match event-for-event: the old (time, seq)
//    order semantics are the specification.
//  * RunCap: the explicit run() safety cap — configurable, counted,
//    never a silent truncation.
//  * TimerGc: cancelled timers free their captures immediately instead
//    of lingering until the queue entry drains.
//  * TraceAtScale: same-seed byte-identical Chrome-trace exports from a
//    larger-than-paper Tor deployment, switchless off and on.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "netsim/reference_sim.h"
#include "netsim/sim.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "tor/network.h"

namespace tenet {
namespace {

// ---------------------------------------------------------------------
// The differential chaos workload, templated over the engine so both
// simulators execute byte-for-byte the same scenario code.

/// One observable step: a delivery, a timer fire, or a cancel verdict.
/// kind: 0 = delivery, 1 = timer fire, 2 = cancel result.
using Record = std::tuple<int, double, uint64_t, uint64_t, uint64_t, uint64_t>;

struct WorkloadResult {
  std::vector<Record> sequence;
  size_t run_events = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  double end_time = 0;
  netsim::FaultCounters faults;
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t>>
      per_node_stats;
};

template <typename SimT, typename NodeT>
WorkloadResult run_chaos_workload(size_t n_nodes, size_t n_messages,
                                  size_t n_timers, uint64_t seed) {
  struct Hopper final : NodeT {
    Hopper(SimT& s, std::string n, std::vector<Record>* seq, size_t n_nodes)
        : NodeT(s, std::move(n)), seq(seq), n(n_nodes) {}
    void handle_message(const netsim::Message& m) override {
      seq->emplace_back(0, this->sim().now(), m.src, m.dst, m.port,
                        m.payload.size());
      if (!m.payload.empty() && m.payload[0] > 0) {
        crypto::Bytes fwd(m.payload);
        fwd[0] -= 1;
        const netsim::NodeId next = static_cast<netsim::NodeId>(
            1 + (m.src * 31 + m.port * 7 + fwd[0]) % n);
        this->send(next, m.port + 1, std::move(fwd));
      }
    }
    std::vector<Record>* seq;
    size_t n;
  };

  WorkloadResult out;
  SimT sim(seed);
  std::vector<std::unique_ptr<Hopper>> nodes;
  nodes.reserve(n_nodes);
  for (size_t i = 0; i < n_nodes; ++i) {
    nodes.push_back(std::make_unique<Hopper>(sim, "n" + std::to_string(i),
                                             &out.sequence, n_nodes));
  }

  // Chaos knobs: defaults plus per-link overrides plus outage windows.
  // Setup draws come from a workload DRBG separate from the sim's, so
  // both engines see identical plans and identical sim-DRBG streams.
  crypto::Drbg wl = crypto::Drbg::from_label(seed, "test.scale.workload");
  netsim::LinkFaults defaults;
  defaults.loss = 0.02;
  defaults.duplicate = 0.04;
  defaults.reorder = 0.06;
  defaults.jitter = 0.0015;
  sim.fault_plan().set_default(defaults);
  for (size_t i = 0; i < n_nodes / 4; ++i) {
    netsim::LinkFaults lf;
    lf.duplicate = wl.uniform_real() * 0.2;
    lf.jitter = wl.uniform_real() * 0.002;
    const auto a = static_cast<netsim::NodeId>(1 + i);
    const auto b = static_cast<netsim::NodeId>(
        1 + (i * 7 + 3) % n_nodes);
    sim.fault_plan().set_link(a, b, lf);
    sim.fault_plan().add_link_window(b, a, wl.uniform_real() * 0.01,
                                     0.01 + wl.uniform_real() * 0.01);
  }
  for (size_t i = 0; i < n_nodes / 8; ++i) {
    const auto v = static_cast<netsim::NodeId>(1 + (i * 5) % n_nodes);
    sim.fault_plan().add_node_window(v, wl.uniform_real() * 0.02,
                                     0.02 + wl.uniform_real() * 0.02);
  }
  for (size_t i = 0; i < n_nodes; ++i) {
    sim.set_latency(static_cast<netsim::NodeId>(1 + i),
                    static_cast<netsim::NodeId>(1 + (i * 3 + 1) % n_nodes),
                    0.0005 + wl.uniform_real() * 0.005);
  }
  sim.set_loss_rate(1, static_cast<netsim::NodeId>(n_nodes), 0.1);

  // Timers: chains that record fires, victims cancelled mid-run by
  // killer timers, and immediate schedule-then-cancel pairs. Cancel
  // verdicts are part of the observable sequence.
  std::vector<netsim::TimerId> victims;
  auto* seq = &out.sequence;
  for (size_t t = 0; t < n_timers; ++t) {
    const double delay = wl.uniform_real() * 0.05;
    const auto owner = static_cast<netsim::NodeId>(1 + t % n_nodes);
    const uint64_t tag = t;
    switch (t % 4) {
      case 0:  // plain fire
        sim.schedule_timer(delay, owner, [seq, &sim, tag] {
          seq->emplace_back(1, sim.now(), tag, 0, 0, 0);
        });
        break;
      case 1:  // victim: may be cancelled by a later killer
        victims.push_back(sim.schedule_timer(delay + 0.02, owner,
                                             [seq, &sim, tag] {
                                               seq->emplace_back(
                                                   1, sim.now(), tag, 0, 0, 0);
                                             }));
        break;
      case 2: {  // killer: cancels a victim when it fires
        const size_t idx = victims.empty() ? 0 : (t / 4) % victims.size();
        sim.schedule_timer(delay, owner, [seq, &sim, &victims, idx, tag] {
          const bool ok =
              !victims.empty() && sim.cancel_timer(victims[idx]);
          seq->emplace_back(2, sim.now(), tag, ok ? 1 : 0, 0, 0);
        });
        break;
      }
      default: {  // schedule + immediate cancel (+ a double cancel)
        const netsim::TimerId id = sim.schedule_timer(
            delay, owner,
            [seq, &sim, tag] { seq->emplace_back(1, sim.now(), tag, 0, 0, 0); });
        const uint64_t first_cancel = sim.cancel_timer(id) ? 1 : 0;
        const uint64_t second_cancel = sim.cancel_timer(id) ? 1 : 0;
        out.sequence.emplace_back(2, sim.now(), tag, first_cancel,
                                  second_cancel, 0);
        break;
      }
    }
  }

  // Messages: multi-hop chains; payload[0] is the remaining hop budget,
  // so each seed message fans into a bounded cascade.
  for (size_t m = 0; m < n_messages; ++m) {
    crypto::Bytes payload;
    payload.push_back(static_cast<uint8_t>(m % 5));  // up to 4 forwards
    const size_t extra = static_cast<size_t>(wl.uniform_real() * 600);
    payload.resize(1 + extra, static_cast<uint8_t>(m & 0xff));
    const auto src = static_cast<netsim::NodeId>(1 + m % n_nodes);
    const auto dst = static_cast<netsim::NodeId>(1 + (m * 13 + 5) % n_nodes);
    sim.post(netsim::Message{src, dst, static_cast<uint32_t>(m % 100),
                             std::move(payload)});
  }

  if constexpr (requires { sim.set_run_cap(0); }) {
    sim.set_run_cap(0);
    out.run_events = sim.run();
  } else {
    out.run_events = sim.run(100'000'000);
  }
  out.delivered = sim.total_messages_delivered();
  out.dropped = sim.messages_dropped();
  out.end_time = sim.now();
  out.faults = sim.fault_plan().counters();
  for (size_t i = 0; i < n_nodes; ++i) {
    const auto& s = sim.stats(static_cast<netsim::NodeId>(1 + i));
    out.per_node_stats.emplace_back(s.messages_sent, s.messages_received,
                                    s.bytes_sent, s.bytes_received,
                                    s.packets_sent);
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  return out;
}

void expect_workloads_equal(const WorkloadResult& a, const WorkloadResult& b) {
  EXPECT_EQ(a.run_events, b.run_events);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.end_time, b.end_time);  // bitwise: same FP expression order
  EXPECT_EQ(a.faults.lost, b.faults.lost);
  EXPECT_EQ(a.faults.duplicated, b.faults.duplicated);
  EXPECT_EQ(a.faults.reordered, b.faults.reordered);
  EXPECT_EQ(a.faults.jittered, b.faults.jittered);
  EXPECT_EQ(a.faults.window_dropped, b.faults.window_dropped);
  EXPECT_EQ(a.per_node_stats, b.per_node_stats);
  ASSERT_EQ(a.sequence.size(), b.sequence.size());
  for (size_t i = 0; i < a.sequence.size(); ++i) {
    ASSERT_EQ(a.sequence[i], b.sequence[i]) << "first divergence at step " << i;
  }
}

WorkloadResult run_new(size_t nodes, size_t msgs, size_t timers,
                       uint64_t seed) {
  return run_chaos_workload<netsim::Simulator, netsim::Node>(nodes, msgs,
                                                             timers, seed);
}

WorkloadResult run_reference(size_t nodes, size_t msgs, size_t timers,
                             uint64_t seed) {
  return run_chaos_workload<netsim::refsim::Simulator, netsim::refsim::Node>(
      nodes, msgs, timers, seed);
}

TEST(EngineParity, MixedChaosWorkloadMatchesReferenceEngine) {
  const WorkloadResult neu = run_new(40, 3000, 1200, 77);
  const WorkloadResult ref = run_reference(40, 3000, 1200, 77);
  EXPECT_GT(neu.run_events, 6000u);  // cascades actually fanned out
  expect_workloads_equal(neu, ref);
}

TEST(EngineParity, DifferentSeedsDiverge) {
  // Sanity check that the harness can detect differences at all.
  const WorkloadResult a = run_new(20, 400, 100, 1);
  const WorkloadResult b = run_new(20, 400, 100, 2);
  EXPECT_NE(a.sequence, b.sequence);
}

TEST(EngineParity, SameSeedIsBitwiseRepeatable) {
  const WorkloadResult a = run_new(30, 1000, 400, 9);
  const WorkloadResult b = run_new(30, 1000, 400, 9);
  expect_workloads_equal(a, b);
}

// The 100k-event property sweep (slow label; the fast gate runs the
// smaller parity cases above).
TEST(ScaleSweep, HundredThousandMixedEventsMatchReferenceEngine) {
  for (const uint64_t seed : {2015u, 4242u, 31337u}) {
    const WorkloadResult neu = run_new(120, 22'000, 8'000, seed);
    const WorkloadResult ref = run_reference(120, 22'000, 8'000, seed);
    EXPECT_GT(neu.run_events, 50'000u);
    expect_workloads_equal(neu, ref);
  }
}

// ---------------------------------------------------------------------

class Sink final : public netsim::Node {
 public:
  using Node::Node;
  void handle_message(const netsim::Message&) override { ++received; }
  size_t received = 0;
};

TEST(RunCap, ConfiguredCapIsUsedByDefaultRun) {
  netsim::Simulator sim;
  Sink a(sim, "a"), b(sim, "b");
  for (int i = 0; i < 20; ++i) a.send(b.id(), 1, {});
  sim.set_run_cap(10);
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(RunCap, ZeroCapMeansUnlimited) {
  netsim::Simulator sim;
  Sink a(sim, "a"), b(sim, "b");
  for (int i = 0; i < 50; ++i) a.send(b.id(), 1, {});
  sim.set_run_cap(0);
  EXPECT_EQ(sim.run(), 50u);
  EXPECT_EQ(b.received, 50u);
}

TEST(RunCap, ExplicitArgumentOverridesConfiguredCap) {
  netsim::Simulator sim;
  Sink a(sim, "a"), b(sim, "b");
  for (int i = 0; i < 5; ++i) a.send(b.id(), 1, {});
  sim.set_run_cap(1);
  EXPECT_EQ(sim.run(100), 5u);  // explicit cap wins; no throw
}

#if TENET_TELEMETRY_ENABLED
TEST(RunCap, CapHitBumpsCounter) {
  telemetry::set_enabled(true);
  auto& counter = telemetry::registry().counter("net.run.cap_hit");
  const uint64_t before = counter.value();
  netsim::Simulator sim;
  Sink a(sim, "a"), b(sim, "b");
  for (int i = 0; i < 20; ++i) a.send(b.id(), 1, {});
  EXPECT_THROW(sim.run(4), std::runtime_error);
  EXPECT_EQ(counter.value(), before + 1);
  telemetry::set_enabled(false);
}
#endif

TEST(TimerGc, CancelReleasesCapturesImmediately) {
  netsim::Simulator sim;
  auto token = std::make_shared<int>(42);
  const netsim::TimerId id =
      sim.schedule_timer(10.0, netsim::kInvalidNode, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(sim.cancel_timer(id));
  // The capture is destroyed at cancel time — not when the (still
  // queued) cancelled entry eventually drains.
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_EQ(sim.pending_events(), 1u);  // entry still counted until drained
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(TimerGc, FiredTimerReleasesCaptures) {
  netsim::Simulator sim;
  auto token = std::make_shared<int>(7);
  sim.schedule_timer(0.001, netsim::kInvalidNode, [token] { (void)*token; });
  sim.run();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(TimerGc, StaleIdAfterSlotReuseIsRejected) {
  netsim::Simulator sim;
  bool second_fired = false;
  const netsim::TimerId first =
      sim.schedule_timer(0.001, netsim::kInvalidNode, [] {});
  sim.run();  // first fires; its pool slot is recycled
  const netsim::TimerId second = sim.schedule_timer(
      0.001, netsim::kInvalidNode, [&second_fired] { second_fired = true; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(sim.cancel_timer(first));  // stale generation: no effect
  sim.run();
  EXPECT_TRUE(second_fired);  // the recycled slot's new timer survived
}

// ---------------------------------------------------------------------

#if TENET_TELEMETRY_ENABLED
/// Same-seed byte-identical trace exports at larger-than-paper scale,
/// in both transition modes (satellite of DESIGN.md §12; extends the
/// §11 determinism contract to the new engine).
std::string traced_tor_run(bool switchless) {
  telemetry::set_enabled(true);
  telemetry::tracer().reset();
  tor::TorNetworkConfig cfg;
  cfg.phase = tor::Phase::kSgxRelays;
  cfg.n_authorities = 3;
  cfg.n_relays = 9;
  cfg.n_clients = 2;
  cfg.switchless = switchless;
  std::string json;
  {
    tor::TorNetwork net(cfg);
    const std::vector<size_t> auths{0, 1, 2};
    // Phase-2 bring-up: attested authority mesh, auto-admission after
    // relay attestation — no manual approvals.
    net.attest_authority_mesh(auths);
    net.publish_descriptors(auths);
    net.run_vote(1, auths);
    EXPECT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
    EXPECT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(4).id(),
                                  net.relay(8).id()));
    EXPECT_TRUE(net.request(0, "scale probe").has_value());
    json = telemetry::tracer().chrome_json();
  }
  telemetry::set_enabled(false);
  telemetry::tracer().reset();
  return json;
}

TEST(TraceAtScale, SameSeedExportsAreByteIdenticalPerSwitchlessMode) {
  // First run in a process pays one-time crypto precomputation (cached
  // group contexts, fixed-base DH tables) that lands in span costs; a
  // warmup makes the compared runs cache-identical.
  (void)traced_tor_run(false);
  for (const bool switchless : {false, true}) {
    const std::string first = traced_tor_run(switchless);
    const std::string second = traced_tor_run(switchless);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second)
        << "switchless=" << switchless << " export not reproducible";
  }
}
#endif

}  // namespace
}  // namespace tenet
