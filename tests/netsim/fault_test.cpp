// Deterministic fault injection: FaultPlan knobs (loss, duplication,
// reordering, jitter, outage windows) and the cancellable timer API. The
// invariants pinned here are the ones recovery code depends on: identical
// (seed, plan, workload) triples replay identical fault schedules, and an
// empty plan draws no randomness at all.
#include "netsim/fault.h"

#include <gtest/gtest.h>

#include "netsim/sim.h"

namespace tenet::netsim {
namespace {

class Recorder : public Node {
 public:
  using Node::Node;
  void handle_message(const Message& msg) override {
    received.push_back(msg);
    times.push_back(sim().now());
  }
  std::vector<Message> received;
  std::vector<double> times;
};

TEST(FaultPlan, ValidatesProbabilitiesAndDelays) {
  FaultPlan plan;
  LinkFaults bad;
  bad.loss = -0.1;
  EXPECT_THROW(plan.set_default(bad), std::invalid_argument);
  bad.loss = 1.5;
  EXPECT_THROW(plan.set_default(bad), std::invalid_argument);
  bad.loss = 0;
  bad.jitter = -1;
  EXPECT_THROW(plan.set_link(1, 2, bad), std::invalid_argument);
  bad.jitter = 0;
  bad.reorder_delay = -0.5;
  EXPECT_THROW(plan.set_default(bad), std::invalid_argument);
}

TEST(FaultPlan, DefaultPlanIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  LinkFaults f;
  f.loss = 0.1;
  plan.set_default(f);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, PerLinkOverrideIsSymmetric) {
  FaultPlan plan;
  LinkFaults f;
  f.loss = 0.25;
  plan.set_link(3, 7, f);
  EXPECT_DOUBLE_EQ(plan.faults(3, 7).loss, 0.25);
  EXPECT_DOUBLE_EQ(plan.faults(7, 3).loss, 0.25);
  EXPECT_DOUBLE_EQ(plan.faults(3, 8).loss, 0.0);  // falls back to default
}

TEST(FaultSim, LossDropsApproximatelyAtRateAndCounts) {
  Simulator sim(/*seed=*/11);
  Recorder a(sim, "a"), b(sim, "b");
  LinkFaults f;
  f.loss = 0.3;
  sim.fault_plan().set_default(f);
  constexpr int kSends = 2000;
  for (int i = 0; i < kSends; ++i) a.send(b.id(), 1, {});
  sim.run();
  EXPECT_NEAR(static_cast<double>(b.received.size()) / kSends, 0.7, 0.05);
  EXPECT_EQ(sim.fault_plan().counters().lost + b.received.size(),
            static_cast<uint64_t>(kSends));
  EXPECT_EQ(sim.messages_dropped(), sim.fault_plan().counters().lost);
}

TEST(FaultSim, DuplicationDeliversTwice) {
  Simulator sim(/*seed=*/12);
  Recorder a(sim, "a"), b(sim, "b");
  LinkFaults f;
  f.duplicate = 1.0;
  sim.fault_plan().set_default(f);
  constexpr int kSends = 25;
  for (int i = 0; i < kSends; ++i) a.send(b.id(), static_cast<uint32_t>(i), {});
  sim.run();
  EXPECT_EQ(b.received.size(), static_cast<size_t>(2 * kSends));
  EXPECT_EQ(sim.fault_plan().counters().duplicated,
            static_cast<uint64_t>(kSends));
}

TEST(FaultSim, ReorderedMessageIsOvertaken) {
  // A slow (large) message marked for reordering escapes the FIFO horizon:
  // the small message posted after it arrives first.
  Simulator sim(/*seed=*/13);
  sim.set_bandwidth(1000);  // 1 KB/s: size dominates arrival time
  Recorder a(sim, "a"), b(sim, "b");
  LinkFaults f;
  f.reorder = 1.0;
  sim.fault_plan().set_default(f);
  a.send(b.id(), 1, crypto::Bytes(900, 0));  // ~0.9 s serialization
  a.send(b.id(), 2, crypto::Bytes(1, 0));
  sim.run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].port, 2u);  // overtook the large message
  EXPECT_EQ(b.received[1].port, 1u);
  EXPECT_EQ(sim.fault_plan().counters().reordered, 2u);
}

TEST(FaultSim, WithoutReorderFifoHolds) {
  // Control for the previous test: same workload, no plan — strict FIFO.
  Simulator sim(/*seed=*/13);
  sim.set_bandwidth(1000);
  Recorder a(sim, "a"), b(sim, "b");
  a.send(b.id(), 1, crypto::Bytes(900, 0));
  a.send(b.id(), 2, crypto::Bytes(1, 0));
  sim.run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].port, 1u);
  EXPECT_EQ(b.received[1].port, 2u);
}

TEST(FaultSim, JitterDelaysButDelivers) {
  Simulator jittered(/*seed=*/14), clean(/*seed=*/14);
  Recorder ja(jittered, "a"), jb(jittered, "b");
  Recorder ca(clean, "a"), cb(clean, "b");
  LinkFaults f;
  f.jitter = 0.5;
  jittered.fault_plan().set_default(f);
  for (int i = 0; i < 20; ++i) {
    ja.send(jb.id(), 1, {});
    ca.send(cb.id(), 1, {});
  }
  jittered.run();
  clean.run();
  ASSERT_EQ(jb.received.size(), 20u);
  EXPECT_EQ(jittered.fault_plan().counters().jittered, 20u);
  // Jitter strictly delays: every arrival is >= the jitter-free arrival.
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_GE(jb.times[i], cb.times[i]);
  }
  EXPECT_GT(jb.times.back(), cb.times.back());
}

TEST(FaultSim, SameSeedReplaysIdenticalFaultSchedule) {
  auto run_once = [](std::vector<uint32_t>* ports, std::vector<double>* times,
                     FaultCounters* counters) {
    Simulator sim(/*seed=*/42);
    Recorder a(sim, "a"), b(sim, "b");
    LinkFaults f;
    f.loss = 0.2;
    f.duplicate = 0.1;
    f.reorder = 0.15;
    f.jitter = 0.01;
    sim.fault_plan().set_default(f);
    for (int i = 0; i < 500; ++i) {
      a.send(b.id(), static_cast<uint32_t>(i), crypto::Bytes(i % 64, 1));
    }
    sim.run();
    for (const Message& m : b.received) ports->push_back(m.port);
    *times = b.times;
    *counters = sim.fault_plan().counters();
  };
  std::vector<uint32_t> ports1, ports2;
  std::vector<double> times1, times2;
  FaultCounters c1, c2;
  run_once(&ports1, &times1, &c1);
  run_once(&ports2, &times2, &c2);
  EXPECT_EQ(ports1, ports2);
  EXPECT_EQ(times1, times2);
  EXPECT_EQ(c1.lost, c2.lost);
  EXPECT_EQ(c1.duplicated, c2.duplicated);
  EXPECT_EQ(c1.reordered, c2.reordered);
  EXPECT_EQ(c1.jittered, c2.jittered);
}

TEST(FaultSim, ZeroFaultPlanDrawsNoRandomness) {
  // A plan with only zero-valued knobs must leave the DRBG untouched, so a
  // "chaos-ready" harness at fault-rate 0 stays byte-identical to one with
  // no plan at all.
  Simulator with_plan(/*seed=*/9), without(/*seed=*/9);
  Recorder wa(with_plan, "a"), wb(with_plan, "b");
  Recorder na(without, "a"), nb(without, "b");
  with_plan.fault_plan().set_link(wa.id(), wb.id(), LinkFaults{});
  ASSERT_FALSE(with_plan.fault_plan().empty());  // plan set, knobs all zero
  for (int i = 0; i < 100; ++i) {
    wa.send(wb.id(), 1, {});
    na.send(nb.id(), 1, {});
  }
  with_plan.run();
  without.run();
  EXPECT_EQ(wb.received.size(), nb.received.size());
  EXPECT_EQ(wb.times, nb.times);
  EXPECT_EQ(with_plan.rng().bytes(32), without.rng().bytes(32));
}

TEST(FaultSim, LinkWindowDropsDuringOutage) {
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b");
  sim.fault_plan().add_link_window(a.id(), b.id(), 0.0, 1.0);
  a.send(b.id(), 1, {});  // posted at t=0: inside the window
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(sim.fault_plan().counters().window_dropped, 1u);

  // Advance past the window via a timer, then the link works again.
  sim.schedule_timer(2.0, kInvalidNode, [] {});
  sim.run();
  ASSERT_GE(sim.now(), 1.0);
  a.send(b.id(), 2, {});
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].port, 2u);
}

TEST(FaultSim, NodeWindowDropsSendsAndArrivals) {
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b"), c(sim, "c");
  sim.fault_plan().add_node_window(b.id(), 0.0, 1.0);
  a.send(b.id(), 1, {});  // to the down node: dropped
  b.send(c.id(), 2, {});  // from the down node: dropped
  a.send(c.id(), 3, {});  // unrelated pair: delivered
  sim.run();
  EXPECT_TRUE(b.received.empty());
  ASSERT_EQ(c.received.size(), 1u);
  EXPECT_EQ(c.received[0].port, 3u);
  EXPECT_EQ(sim.fault_plan().counters().window_dropped, 2u);
}

TEST(FaultSim, NodeWindowCatchesInFlightArrivals) {
  // Message posted before the outage but arriving inside it is dropped at
  // delivery time (the node is down when the bits arrive).
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b");
  sim.set_latency(a.id(), b.id(), 0.5);
  sim.fault_plan().add_node_window(b.id(), 0.1, 1.0);
  a.send(b.id(), 1, {});  // posted at t=0 (node up), arrives t=0.5 (down)
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(sim.fault_plan().counters().window_dropped, 1u);
}

TEST(FaultSim, PartitionCutsCrossSideTrafficOnly) {
  // The split-brain primitive: {a, b} | {c}. Cross-side messages drop in
  // both directions; same-side traffic is untouched.
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b"), c(sim, "c");
  sim.fault_plan().add_partition({a.id(), b.id()}, {c.id()}, 0.0, 1.0);
  a.send(c.id(), 1, {});  // crosses the cut: dropped
  c.send(b.id(), 2, {});  // crosses the cut (other direction): dropped
  a.send(b.id(), 3, {});  // same side: delivered
  sim.run();
  EXPECT_TRUE(c.received.empty());
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].port, 3u);
  EXPECT_EQ(sim.fault_plan().counters().partitioned, 2u);
}

TEST(FaultSim, PartitionWindowExpires) {
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b");
  sim.fault_plan().add_partition({a.id()}, {b.id()}, 0.0, 1.0);
  EXPECT_FALSE(sim.fault_plan().partition_up(a.id(), b.id(), 0.5));
  EXPECT_FALSE(sim.fault_plan().partition_up(b.id(), a.id(), 0.5));  // symmetric
  EXPECT_TRUE(sim.fault_plan().partition_up(a.id(), b.id(), 1.0));  // half-open

  a.send(b.id(), 1, {});  // inside the window: dropped
  sim.run();
  sim.schedule_timer(2.0, kInvalidNode, [] {});
  sim.run();
  a.send(b.id(), 2, {});  // after the window: delivered
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].port, 2u);
  EXPECT_EQ(sim.fault_plan().counters().partitioned, 1u);
}

TEST(FaultSim, PartitionDoesNotAffectUnlistedNodes) {
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b"), d(sim, "d");
  sim.fault_plan().add_partition({a.id()}, {b.id()}, 0.0, 1.0);
  a.send(d.id(), 1, {});  // d is on neither side
  d.send(b.id(), 2, {});
  sim.run();
  ASSERT_EQ(d.received.size(), 1u);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(sim.fault_plan().counters().partitioned, 0u);
}

TEST(FaultPlan, PartitionRejectsNodeOnBothSides) {
  FaultPlan plan;
  EXPECT_THROW(plan.add_partition({1, 2}, {2, 3}, 0.0, 1.0),
               std::invalid_argument);
}

TEST(Timer, FiresAtScheduledTime) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_timer(0.25, kInvalidNode, [&] { fired.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(fired[0], 0.25);
}

TEST(Timer, NegativeDelayRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_timer(-0.1, kInvalidNode, [] {}),
               std::invalid_argument);
}

TEST(Timer, CancelPreventsFiringWithoutAdvancingClock) {
  Simulator sim;
  bool fired = false;
  const TimerId id = sim.schedule_timer(5.0, kInvalidNode, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel_timer(id));
  EXPECT_FALSE(sim.cancel_timer(id));  // second cancel: already gone
  sim.run();
  EXPECT_FALSE(fired);
  // Discarding the cancelled event must not move time to t=5.
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Timer, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel_timer(12345));
}

TEST(Timer, CancelAfterFiringReturnsFalse) {
  Simulator sim;
  const TimerId id = sim.schedule_timer(0.1, kInvalidNode, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel_timer(id));
}

TEST(Timer, TieBreakIsSchedulingOrder) {
  // Two timers at the same instant fire in the order they were scheduled
  // ((time, seq) ordering), every run.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_timer(1.0, kInvalidNode, [&] { order.push_back(1); });
  sim.schedule_timer(1.0, kInvalidNode, [&] { order.push_back(2); });
  sim.schedule_timer(0.5, kInvalidNode, [&] { order.push_back(0); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Timer, InterleavesDeterministicallyWithMessages) {
  // A timer and a message due at the same instant: the one enqueued first
  // wins the (time, seq) tie-break.
  class OrderNode : public Node {
   public:
    OrderNode(Simulator& s, std::string n, std::vector<std::string>* order)
        : Node(s, std::move(n)), order_(order) {}
    void handle_message(const Message&) override {
      order_->emplace_back("msg");
    }
    std::vector<std::string>* order_;
  };
  Simulator sim;
  std::vector<std::string> order;
  OrderNode a(sim, "a", &order), b(sim, "b", &order);
  sim.set_latency(a.id(), b.id(), 0.5);
  a.send(b.id(), 1, {});  // arrives t=0.5, enqueued first
  sim.schedule_timer(0.5, kInvalidNode, [&] { order.emplace_back("timer"); });
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "msg");
  EXPECT_EQ(order[1], "timer");
}

TEST(Timer, OwnerDeathDiscardsTimer) {
  Simulator sim;
  bool fired = false;
  {
    Recorder ephemeral(sim, "ephemeral");
    sim.schedule_timer(1.0, ephemeral.id(), [&] { fired = true; });
  }  // node unregisters; its timer must never run
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, TimersChainAndKeepClockMonotone) {
  Simulator sim;
  std::vector<double> ticks;
  std::function<void()> tick = [&] {
    ticks.push_back(sim.now());
    if (ticks.size() < 3) sim.schedule_timer(0.1, kInvalidNode, tick);
  };
  sim.schedule_timer(0.1, kInvalidNode, tick);
  sim.run();
  ASSERT_EQ(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks[0], 0.1);
  EXPECT_DOUBLE_EQ(ticks[1], 0.2);
  EXPECT_DOUBLE_EQ(ticks[2], 0.3);
}

}  // namespace
}  // namespace tenet::netsim
