// Data-plane record path (DESIGN.md §13): batched sealing, in-place opens,
// suspend/resume snapshots, and the SessionCache hot tier must all be
// byte-identical to the straightforward one-record-at-a-time channel — the
// bench's 3× speedup claim is only meaningful if the fast path is the same
// protocol.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "crypto/multibuf.h"
#include "crypto/rng.h"
#include "netsim/robust_channel.h"
#include "netsim/session_cache.h"
#include "test_seed.h"

namespace tenet::netsim {
namespace {

using crypto::Bytes;
using crypto::BytesView;
using crypto::Drbg;

Bytes channel_key(uint8_t tag = 0) {
  Bytes key(SecureChannel::kKeySize, 0);
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0xC3 ^ i ^ tag);
  }
  return key;
}

TEST(Dataplane, SealBatchMatchesSequentialSeal) {
  const Bytes key = channel_key();
  Drbg rng = Drbg::from_label(tenet::test::seed(90), "dp.batch");

  std::vector<Bytes> plains;
  for (const size_t n : {size_t{0}, size_t{1}, size_t{17}, size_t{64},
                         size_t{1500}, size_t{4096}}) {
    plains.push_back(rng.bytes(n));
  }

  SecureChannel sequential(key, /*initiator=*/true);
  std::vector<Bytes> expected;
  for (const Bytes& p : plains) expected.push_back(sequential.seal(p));

  SecureChannel batched(key, /*initiator=*/true);
  std::vector<Bytes> actual;
  for (const Bytes& p : plains) {
    actual.emplace_back(SecureChannel::sealed_size(p.size()));
  }
  std::vector<SecureChannel::SealSlot> slots;
  for (size_t i = 0; i < plains.size(); ++i) {
    slots.push_back(SecureChannel::SealSlot{plains[i], actual[i].data()});
  }
  batched.seal_batch(slots);

  EXPECT_EQ(actual, expected);
  EXPECT_EQ(batched.records_sent(), sequential.records_sent());

  // The receiver accepts the batched records in order.
  SecureChannel receiver(key, /*initiator=*/false);
  for (size_t i = 0; i < actual.size(); ++i) {
    const auto opened = receiver.open(actual[i]);
    ASSERT_TRUE(opened.has_value()) << "record " << i;
    EXPECT_EQ(*opened, plains[i]);
  }
}

TEST(Dataplane, SealBatchInterleavedWithScalarStaysInSequence) {
  // A channel that alternates between single seals and batches must produce
  // exactly the stream a seal-only channel produces (mid-batch "rekey
  // boundary" shape: batch, single, batch).
  const Bytes key = channel_key(1);
  Drbg rng = Drbg::from_label(tenet::test::seed(91), "dp.mix");
  std::vector<Bytes> plains;
  for (int i = 0; i < 9; ++i) plains.push_back(rng.bytes(48 + i));

  SecureChannel reference(key, true);
  std::vector<Bytes> expected;
  for (const Bytes& p : plains) expected.push_back(reference.seal(p));

  SecureChannel mixed(key, true);
  std::vector<Bytes> actual(plains.size());
  auto run_batch = [&](size_t begin, size_t end) {
    std::vector<SecureChannel::SealSlot> slots;
    for (size_t i = begin; i < end; ++i) {
      actual[i].resize(SecureChannel::sealed_size(plains[i].size()));
      slots.push_back(SecureChannel::SealSlot{plains[i], actual[i].data()});
    }
    mixed.seal_batch(slots);
  };
  run_batch(0, 4);
  actual[4] = mixed.seal(plains[4]);
  run_batch(5, 9);

  EXPECT_EQ(actual, expected);
}

TEST(Dataplane, SealBatchRespectsNonceLimitAtomically) {
  const Bytes key = channel_key(2);
  SecureChannel chan(key, true);
  chan.set_seq_limit(4, /*rekey_margin=*/1);
  chan.advance_send_seq(2);

  Bytes p(8, 0xEE);
  std::vector<Bytes> out(3, Bytes(SecureChannel::sealed_size(p.size())));
  std::vector<SecureChannel::SealSlot> slots;
  for (Bytes& o : out) slots.push_back(SecureChannel::SealSlot{p, o.data()});

  // 2 + 3 > 4: the whole batch must be refused before any record is sealed.
  EXPECT_THROW(chan.seal_batch(slots), NonceExhaustedError);
  EXPECT_EQ(chan.records_sent(), 2u);
  std::vector<SecureChannel::SealSlot> fits(slots.begin(), slots.begin() + 2);
  chan.seal_batch(fits);
  EXPECT_EQ(chan.records_sent(), 4u);
}

TEST(Dataplane, OpenInPlaceMatchesOpen) {
  const Bytes key = channel_key(3);
  Drbg rng = Drbg::from_label(tenet::test::seed(92), "dp.oip");
  SecureChannel alice(key, true);
  SecureChannel bob_copy(key, false);
  SecureChannel bob_in_place(key, false);

  for (const size_t n : {size_t{0}, size_t{1}, size_t{64}, size_t{1500}}) {
    const Bytes plain = rng.bytes(n);
    const Bytes record = alice.seal(plain);

    const auto copied = bob_copy.open(record);
    ASSERT_TRUE(copied.has_value());

    Bytes buf = record;
    const auto len = bob_in_place.open_in_place(std::span<uint8_t>(buf));
    ASSERT_TRUE(len.has_value());
    EXPECT_EQ(*len, copied->size());
    EXPECT_EQ(Bytes(buf.begin() + crypto::Aead::kHeaderSize,
                    buf.begin() + crypto::Aead::kHeaderSize +
                        static_cast<ptrdiff_t>(*len)),
              *copied);
    EXPECT_EQ(bob_in_place.next_recv_seq(), bob_copy.next_recv_seq());
  }

  // Replay: the same record fails identically on both paths.
  const Bytes record = alice.seal(rng.bytes(20));
  Bytes buf = record;
  ASSERT_TRUE(bob_in_place.open_in_place(std::span<uint8_t>(buf)).has_value());
  Bytes replay = record;
  EXPECT_FALSE(
      bob_in_place.open_in_place(std::span<uint8_t>(replay)).has_value());
  ASSERT_TRUE(bob_copy.open(record).has_value());
  EXPECT_FALSE(bob_copy.open(record).has_value());
}

TEST(Dataplane, OpenBatchMatchesScalarOnMixedBatch) {
  // A batch mixing fresh records, an in-batch replay, and a tampered
  // record must make exactly the per-record decisions the scalar loop
  // makes — same results, same buffer bytes (rejected buffers untouched),
  // same final sequence state.
  const Bytes key = channel_key(5);
  Drbg rng = Drbg::from_label(tenet::test::seed(94), "dp.obatch");
  SecureChannel alice(key, true);

  std::vector<Bytes> plains;
  std::vector<Bytes> records;
  for (const size_t n : {size_t{0}, size_t{33}, size_t{256}, size_t{1500}}) {
    plains.push_back(rng.bytes(n));
    records.push_back(alice.seal(plains.back()));
  }
  Bytes tampered = records[2];
  tampered.back() ^= 0x01;  // breaks the MAC
  // Batch shape: fresh, fresh, replay of 1, tampered 2, genuine 2, fresh.
  const std::vector<Bytes> batch_src = {records[0], records[1], records[1],
                                        tampered,   records[2], records[3]};

  SecureChannel bob_scalar(key, false);
  SecureChannel bob_batch(key, false);
  std::vector<Bytes> scalar_bufs = batch_src;
  std::vector<Bytes> batch_bufs = batch_src;

  std::vector<std::optional<size_t>> expected;
  for (Bytes& buf : scalar_bufs) {
    expected.push_back(bob_scalar.open_in_place(std::span<uint8_t>(buf)));
  }

  std::vector<std::span<uint8_t>> spans;
  for (Bytes& buf : batch_bufs) spans.emplace_back(buf);
  std::vector<std::optional<size_t>> results(spans.size());
  bob_batch.open_batch(spans, results);

  EXPECT_EQ(results, expected);
  EXPECT_EQ(batch_bufs, scalar_bufs);  // incl. untouched rejected buffers
  EXPECT_EQ(bob_batch.next_recv_seq(), bob_scalar.next_recv_seq());
  EXPECT_EQ(bob_batch.records_received(), bob_scalar.records_received());

  // Both receivers are in the same state: the next record still opens.
  const Bytes follow = alice.seal(rng.bytes(64));
  Bytes a = follow;
  Bytes b = follow;
  EXPECT_TRUE(bob_scalar.open_in_place(std::span<uint8_t>(a)).has_value());
  EXPECT_TRUE(bob_batch.open_in_place(std::span<uint8_t>(b)).has_value());
}

TEST(Dataplane, RobustChannelOpenBatchPassThrough) {
  const Bytes key = channel_key(6);
  Drbg rng = Drbg::from_label(tenet::test::seed(95), "dp.robatch");
  SecureChannel alice(key, true);

  auto make_spans = [](std::vector<Bytes>& bufs) {
    std::vector<std::span<uint8_t>> spans;
    for (Bytes& b : bufs) spans.emplace_back(b);
    return spans;
  };

  // No key installed: every result nullopt, no failure recorded.
  RobustChannel idle;
  std::vector<Bytes> cold = {alice.seal(rng.bytes(16))};
  auto cold_spans = make_spans(cold);
  std::vector<std::optional<size_t>> cold_res(1);
  idle.open_batch(cold_spans, cold_res);
  EXPECT_FALSE(cold_res[0].has_value());
  EXPECT_EQ(idle.consecutive_failures(), 0u);

  // Installed: per-record failure bookkeeping matches the scalar path.
  SecureChannel sender(key, true);
  RobustChannel scalar;
  RobustChannel batched;
  scalar.install(key, false);
  batched.install(key, false);

  std::vector<Bytes> recs;
  for (int i = 0; i < 3; ++i) recs.push_back(sender.seal(rng.bytes(40)));
  Bytes bad1 = recs[1];
  bad1[bad1.size() / 2] ^= 0x80;
  Bytes bad2 = recs[2];
  bad2[bad2.size() / 2] ^= 0x80;
  // good, tampered, tampered: failures accumulate past the last success.
  std::vector<Bytes> scalar_bufs = {recs[0], bad1, bad2};
  std::vector<Bytes> batch_bufs = scalar_bufs;

  std::vector<std::optional<size_t>> expected;
  for (Bytes& buf : scalar_bufs) {
    expected.push_back(scalar.open_in_place(std::span<uint8_t>(buf)));
  }
  auto spans = make_spans(batch_bufs);
  std::vector<std::optional<size_t>> results(spans.size());
  batched.open_batch(spans, results);

  EXPECT_EQ(results, expected);
  EXPECT_TRUE(results[0].has_value());
  EXPECT_FALSE(results[1].has_value());
  EXPECT_FALSE(results[2].has_value());
  EXPECT_EQ(batched.consecutive_failures(), scalar.consecutive_failures());
  EXPECT_EQ(batched.consecutive_failures(), 2u);
}

TEST(Dataplane, ResumeSealsByteIdentically) {
  const Bytes key = channel_key(4);
  Drbg rng = Drbg::from_label(tenet::test::seed(93), "dp.resume");

  SecureChannel live(key, true);
  SecureChannel snapshot_source(key, true);
  for (int i = 0; i < 5; ++i) {
    const Bytes p = rng.bytes(40);
    const Bytes a = live.seal(p);
    const Bytes b = snapshot_source.seal(p);
    ASSERT_EQ(a, b);
  }

  // Suspend/resume mid-stream: the resumed channel continues the exact
  // record stream of the channel that never left memory.
  SecureChannel resumed(key, true, snapshot_source.resume_state());
  for (int i = 0; i < 5; ++i) {
    const Bytes p = rng.bytes(40);
    EXPECT_EQ(resumed.seal(p), live.seal(p));
  }
  EXPECT_EQ(resumed.records_sent(), live.records_sent());
}

TEST(Dataplane, SessionCacheResumeIsByteIdentical) {
  SessionCache cache(/*hot_capacity=*/2);
  const Bytes key = channel_key(5);
  cache.install(7, key, /*initiator=*/true);

  SecureChannel reference(key, true);
  Drbg rng = Drbg::from_label(tenet::test::seed(94), "dp.cache");

  for (int round = 0; round < 4; ++round) {
    SecureChannel* chan = cache.find(7);
    ASSERT_NE(chan, nullptr);
    const Bytes p = rng.bytes(64);
    EXPECT_EQ(chan->seal(p), reference.seal(p)) << "round " << round;
    // Force the write-back + re-materialize path every round.
    cache.evict(7);
  }
  EXPECT_GE(cache.stats().resumes, 3u);
  EXPECT_GE(cache.stats().evictions, 3u);
}

TEST(Dataplane, SessionCacheUnknownPeerAndRekey) {
  SessionCache cache(4);
  EXPECT_EQ(cache.find(99), nullptr);
  EXPECT_FALSE(cache.contains(99));

  const Bytes key1 = channel_key(6);
  const Bytes key2 = channel_key(7);
  cache.install(1, key1, true);
  SecureChannel* chan = cache.find(1);
  ASSERT_NE(chan, nullptr);
  (void)chan->seal(Bytes(16, 0xAA));
  EXPECT_EQ(chan->records_sent(), 1u);

  // Re-install (rekey): sequence numbers reset, new key takes effect.
  cache.install(1, key2, true);
  chan = cache.find(1);
  ASSERT_NE(chan, nullptr);
  EXPECT_EQ(chan->records_sent(), 0u);
  SecureChannel fresh(key2, true);
  const Bytes p(16, 0xBB);
  EXPECT_EQ(chan->seal(p), fresh.seal(p));
  EXPECT_EQ(cache.size(), 1u);
}

// Property: under a seeded random workload over many more peers than hot
// slots, every record sealed through the cache is byte-identical to a
// ground-truth map of always-live channels, regardless of eviction order.
// Re-rolls with TENET_TEST_SEED.
TEST(Property, SessionCacheMatchesAlwaysLiveChannels) {
  const uint64_t seed = tenet::test::seed(95);
  Drbg rng = Drbg::from_label(seed, "dp.prop");

  constexpr size_t kPeers = 64;
  constexpr size_t kHot = 8;
  constexpr int kOps = 2000;

  SessionCache cache(kHot);
  std::map<uint64_t, SecureChannel> truth;

  for (int op = 0; op < kOps; ++op) {
    const uint64_t peer = rng.uniform(kPeers);
    const bool installed = cache.contains(peer);
    // 2% rekey rate keeps the install path warm throughout.
    if (!installed || rng.uniform(50) == 0) {
      const Bytes key = rng.bytes(SecureChannel::kKeySize);
      const bool initiator = rng.uniform(2) == 0;
      cache.install(peer, key, initiator);
      truth.erase(peer);
      truth.emplace(peer, SecureChannel(key, initiator));
    }
    SecureChannel* chan = cache.find(peer);
    ASSERT_NE(chan, nullptr);
    const Bytes payload = rng.bytes(1 + rng.uniform(256));
    const Bytes got = chan->seal(payload);
    const Bytes want = truth.at(peer).seal(payload);
    ASSERT_EQ(got, want) << "op " << op << " peer " << peer << " seed "
                         << seed;
  }

  EXPECT_EQ(cache.size(), truth.size());
  EXPECT_LE(cache.hot_size(), kHot);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().hot_hits + cache.stats().resumes,
            static_cast<uint64_t>(kOps));
}

// The batched backend and the scalar backend drive the same channel state:
// a receiver keyed off a scalar-backend sender accepts a batched-backend
// sender's records interchangeably.
TEST(Dataplane, BackendsInterchangeableOnTheWire) {
  const Bytes key = channel_key(8);
  Drbg rng = Drbg::from_label(tenet::test::seed(96), "dp.wire");

  const crypto::mb::Backend prev =
      crypto::mb::set_backend(crypto::mb::Backend::kBatched);
  SecureChannel sender(key, true);
  Bytes p1 = rng.bytes(300);
  Bytes r1(SecureChannel::sealed_size(p1.size()));
  sender.seal_batch(std::vector<SecureChannel::SealSlot>{
      SecureChannel::SealSlot{p1, r1.data()}});

  crypto::mb::set_backend(crypto::mb::Backend::kScalar);
  SecureChannel receiver(key, false);
  const auto opened = receiver.open(r1);
  crypto::mb::set_backend(prev);

  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, p1);
}

}  // namespace
}  // namespace tenet::netsim
